module github.com/pythia-db/pythia

go 1.22
