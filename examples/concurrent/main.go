// Concurrency study: the paper's §5.4 — Pythia with multiple queries and no
// cache flushing in between. Shows the three regimes of Figure 13:
// back-to-back warm-cache runs, same-template concurrency (prefetches help
// siblings), and mixed-template concurrency (neighbours contend).
package main

import (
	"fmt"
	"time"

	"github.com/pythia-db/pythia"
)

func main() {
	fmt.Println("building DSB database and training t18/t19/t91 (this takes a few minutes)...")
	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 15, Seed: 7})
	sys := pythia.New(gen.DB(), pythia.DefaultConfig())

	var tests [][]*pythia.Instance
	for _, tpl := range []string{"t18", "t19", "t91"} {
		w := gen.Workload(tpl, 50, 1)
		train, test := w.Split(0.2, 3)
		start := time.Now()
		sys.Train(tpl, train)
		fmt.Printf("  %s trained in %s\n", tpl, time.Since(start).Round(time.Second))
		tests = append(tests, test)
	}

	totalSpeedup := func(insts []*pythia.Instance, arrivals []time.Duration) float64 {
		dflt := sys.Run(insts, arrivals, nil)
		py := sys.Run(insts, arrivals, sys.Prefetch)
		return float64(dflt.TotalElapsed()) / float64(py.TotalElapsed())
	}

	// --- 13a: sequential, warm cache -------------------------------------
	fmt.Println("\nsequential multi-query (warm cache, one query of each template):")
	mixed := []*pythia.Instance{tests[0][0], tests[1][0], tests[2][0]}
	var arrivals []time.Duration
	var at time.Duration
	for _, q := range mixed {
		arrivals = append(arrivals, at)
		solo := sys.Run([]*pythia.Instance{q}, nil, nil)
		at += solo.TotalElapsed() * 12 / 10
	}
	fmt.Printf("  total-latency speedup: %.2fx\n", totalSpeedup(mixed, arrivals))

	// --- 13b: concurrent, single template ---------------------------------
	fmt.Println("\nconcurrent queries, single template (t91):")
	for _, n := range []int{1, 2, 4} {
		insts := make([]*pythia.Instance, n)
		for i := range insts {
			insts[i] = tests[2][i%len(tests[2])]
		}
		fmt.Printf("  %d concurrent: %.2fx\n", n, totalSpeedup(insts, make([]time.Duration, n)))
	}

	// --- 13c: concurrent, mixed templates ---------------------------------
	fmt.Println("\nconcurrent queries, mixed templates:")
	for _, n := range []int{2, 3} {
		insts := make([]*pythia.Instance, n)
		for i := range insts {
			insts[i] = tests[i%3][i/3]
		}
		fmt.Printf("  %d concurrent: %.2fx\n", n, totalSpeedup(insts, make([]time.Duration, n)))
	}

	fmt.Println("\nsame-template neighbours share prefetched pages; mixed-template")
	fmt.Println("neighbours contend for the buffer — the Figure 13b/13c contrast.")
}
