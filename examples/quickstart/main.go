// Quickstart: the whole Pythia lifecycle on a small DSB database in a few
// minutes — generate a workload, collect traces, train the models
// (Algorithm 1), then predict and prefetch for unseen queries (Algorithm 3)
// and measure the cold-cache speedup against default execution and against
// the ORCL oracle.
package main

import (
	"fmt"
	"time"

	"github.com/pythia-db/pythia"
)

func main() {
	// A small DSB database: 24 relations, templates t18/t19/t91. Scale 15
	// keeps this example fast; the paper's experiments correspond to
	// ScaleFactor 100.
	fmt.Println("building DSB database (scale factor 15)...")
	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 15, Seed: 7})

	// Template t91 is the paper's high-speedup template: a small fact table
	// joined to six dimensions, five of them through indexes, so most of
	// its I/O is non-sequential — exactly where prefetching pays.
	fmt.Println("executing 60 instances of template t91 and collecting traces...")
	w := gen.Workload("t91", 60, 1)
	train, test := w.Split(0.1, 3)
	fmt.Printf("  %d training queries, %d unseen test queries\n\n", len(train), len(test))

	sys := pythia.New(gen.DB(), pythia.DefaultConfig())

	start := time.Now()
	tw := sys.Train("t91", train)
	fmt.Printf("trained %d models (%d parameters) in %s\n\n",
		len(tw.Pred.Models()), tw.Pred.ParamCount(), time.Since(start).Round(time.Second))

	fmt.Println("unseen queries — predicted page set quality and speedup:")
	var f1Sum, pySum, orclSum float64
	for _, q := range test {
		predicted := sys.Prefetch(q) // one-shot inference + limited prefetch bound
		f1 := pythia.F1(predicted, q.Pages)
		py := sys.SpeedupColdCache(q, sys.Prefetch)
		orcl := sys.SpeedupColdCache(q, pythia.Oracle)
		f1Sum += f1
		pySum += py
		orclSum += orcl
		fmt.Printf("  query #%d: %3d pages predicted / %3d actual   F1 %.2f   Pythia %.2fx   ORCL %.2fx\n",
			q.Query.Instance, len(predicted), len(q.Pages), f1, py, orcl)
	}
	n := float64(len(test))
	fmt.Printf("\nmeans: F1 %.2f, Pythia speedup %.2fx, oracle bound %.2fx\n",
		f1Sum/n, pySum/n, orclSum/n)
	fmt.Println("\n(the oracle knows the exact blocks; Pythia predicts them from the plan alone)")
}
