// DSB study: trains Pythia on all three paper templates (t18, t19, t91) and
// reproduces the Figure 5 / Figure 6 comparison against the idealized
// baselines — the nearest-neighbor predictor (which peeks at the test
// query's own blocks) and the ORCL oracle — plus the Figure 1 contrast
// between prefetching sequential and non-sequential reads.
package main

import (
	"fmt"
	"time"

	"github.com/pythia-db/pythia"
)

func main() {
	fmt.Println("building DSB database (scale factor 25)...")
	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 25, Seed: 7})
	sys := pythia.New(gen.DB(), pythia.DefaultConfig())

	type result struct {
		template            string
		pyF1, nnF1          float64
		pySp, orclSp, nnSp  float64
		seqOnlySp, nonSeqSp float64
	}
	var results []result

	for _, tpl := range []string{"t18", "t19", "t91"} {
		fmt.Printf("\n=== template %s ===\n", tpl)
		w := gen.Workload(tpl, 80, 1)
		train, test := w.Split(0.12, 3)
		start := time.Now()
		sys.Train(tpl, train)
		fmt.Printf("trained on %d queries in %s; evaluating %d unseen queries\n",
			len(train), time.Since(start).Round(time.Second), len(test))

		var r result
		r.template = tpl
		nn := func(q *pythia.Instance) []pythia.PageID {
			return pythia.NearestNeighbor(q, train)
		}
		for _, q := range test {
			r.pyF1 += pythia.F1(sys.Prefetch(q), q.Pages)
			r.nnF1 += pythia.F1(nn(q), q.Pages)
			r.pySp += sys.SpeedupColdCache(q, sys.Prefetch)
			r.orclSp += sys.SpeedupColdCache(q, pythia.Oracle)
			r.nnSp += sys.SpeedupColdCache(q, nn)
			r.seqOnlySp += sys.SpeedupColdCache(q, pythia.OracleSequential)
			r.nonSeqSp += sys.SpeedupColdCache(q, pythia.Oracle)
		}
		n := float64(len(test))
		r.pyF1 /= n
		r.nnF1 /= n
		r.pySp /= n
		r.orclSp /= n
		r.nnSp /= n
		r.seqOnlySp /= n
		r.nonSeqSp /= n
		results = append(results, r)
	}

	fmt.Println("\n--- Figure 5 analog: F1 on unseen queries ---")
	fmt.Printf("%-6s  %-8s  %-8s\n", "tpl", "Pythia", "NN")
	for _, r := range results {
		fmt.Printf("%-6s  %-8.3f  %-8.3f\n", r.template, r.pyF1, r.nnF1)
	}

	fmt.Println("\n--- Figure 6 analog: cold-cache speedup ---")
	fmt.Printf("%-6s  %-8s  %-8s  %-8s\n", "tpl", "Pythia", "ORCL", "NN")
	for _, r := range results {
		fmt.Printf("%-6s  %-8.2f  %-8.2f  %-8.2f\n", r.template, r.pySp, r.orclSp, r.nnSp)
	}

	fmt.Println("\n--- Figure 1 analog: what is worth prefetching ---")
	fmt.Printf("%-6s  %-16s  %-16s\n", "tpl", "seq-only oracle", "non-seq oracle")
	for _, r := range results {
		fmt.Printf("%-6s  %-16.2f  %-16.2f\n", r.template, r.seqOnlySp, r.nonSeqSp)
	}
	fmt.Println("\nsequential reads are already served by OS readahead; the wins come from")
	fmt.Println("the non-sequential index probes — which is what Pythia predicts.")
}
