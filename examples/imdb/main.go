// IMDB study: the paper's second workload (§5.1) — CEB template 1a over an
// IMDB-style schema. The defining feature is cast_info: a relation so large
// that a single query's predicted pages can exceed the buffer pool, which
// exercises Pythia's limited-prefetching path ("we perform limited
// prefetching to stay within buffer memory bounds").
package main

import (
	"fmt"
	"time"

	"github.com/pythia-db/pythia"
)

func main() {
	fmt.Println("building IMDB database (scale 25)...")
	gen := pythia.NewIMDB(pythia.IMDBConfig{Scale: 25, Seed: 17})

	cast := gen.CastInfo()
	fmt.Printf("cast_info: %d rows over %d pages — the dominant relation\n",
		cast.Rows, cast.Heap.Pages)

	fmt.Println("executing 50 instances of template 1a...")
	w := gen.Workload(50, 1)
	train, test := w.Split(0.12, 3)

	// Size the buffer deliberately below the big instances' page sets so
	// limited prefetching engages.
	cfg := pythia.DefaultConfig()
	cfg.Replay.BufferPages = gen.DB().Registry.TotalPages() / 12
	sys := pythia.New(gen.DB(), cfg)

	start := time.Now()
	sys.Train("imdb1a", train)
	fmt.Printf("trained in %s (buffer: %d pages)\n\n",
		time.Since(start).Round(time.Second), cfg.Replay.BufferPages)

	budget := int(float64(cfg.Replay.BufferPages) * 0.75)
	var f1Sum, spSum float64
	limitedCount := 0
	for _, q := range test {
		pred := sys.Prefetch(q)
		limited := ""
		if len(pred) >= budget {
			limited = "  [limited prefetch: prediction truncated to buffer budget]"
			limitedCount++
		}
		f1 := pythia.F1(pred, q.Pages)
		sp := sys.SpeedupColdCache(q, sys.Prefetch)
		f1Sum += f1
		spSum += sp
		fmt.Printf("query #%2d: truth %4d pages, prefetching %4d, F1 %.2f, speedup %.2fx%s\n",
			q.Query.Instance, len(q.Pages), len(pred), f1, sp, limited)
	}
	n := float64(len(test))
	fmt.Printf("\nmeans over %d unseen queries: F1 %.2f, speedup %.2fx (%d/%d queries hit the prefetch budget)\n",
		len(test), f1Sum/n, spSum/n, limitedCount, len(test))
}
