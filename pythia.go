// Package pythia is a Go implementation of Pythia — "Pythia: A Neural Model
// for Data Prefetching" (Bapat, Thirumuruganathan, Koudas; EDBT 2025) — a
// learned page prefetcher for RDBMS buffer managers, together with the full
// simulated substrate the paper's evaluation needs: a page-granular storage
// engine with a buffer pool and OS page cache, a star-join planner and
// executor, DSB- and IMDB-style workload generators, the paper's baselines,
// and an experiment harness that regenerates every table and figure of the
// evaluation.
//
// # Quick start
//
//	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 20, Seed: 7})
//	w := gen.Workload("t91", 60, 1)           // plan + execute + trace
//	train, test := w.Split(0.1, 3)            // hold out unseen queries
//
//	sys := pythia.New(gen.DB(), pythia.DefaultConfig())
//	sys.Train("t91", train)                   // Algorithm 1
//
//	for _, q := range test {
//	    pages := sys.Prefetch(q)              // Algorithm 3: one-shot set
//	    speedup := sys.SpeedupColdCache(q, sys.Prefetch)
//	    _ = pages
//	    _ = speedup
//	}
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the paper-to-package map.
package pythia

import (
	"github.com/pythia-db/pythia/internal/baselines"
	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/experiments"
	"github.com/pythia-db/pythia/internal/imdb"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/obs"
	core "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/scheduler"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// Core system types.
type (
	// System is the trained Pythia instance over one database: workload
	// matching, prediction, prefetching, and replay-based timing.
	System = core.System
	// Config assembles a System.
	Config = core.Config
	// Trained is one workload Pythia has models for.
	Trained = core.Trained
	// PrefetchFunc maps a query instance to its prefetch set; Pythia and
	// every baseline fit this shape.
	PrefetchFunc = core.PrefetchFunc
)

// Workload types.
type (
	// Workload is a set of executed query instances over one database.
	Workload = workload.Workload
	// Instance is one executed query: plan, access script, and trace.
	Instance = workload.Instance
	// Database is a catalog of relations and indexes.
	Database = catalog.Database
)

// Generator configurations.
type (
	// DSBConfig parameterizes the DSB benchmark generator.
	DSBConfig = dsb.Config
	// IMDBConfig parameterizes the IMDB/CEB generator.
	IMDBConfig = imdb.Config
	// ModelConfig sizes Pythia's multilabel classifiers.
	ModelConfig = model.Config
)

// New assembles a Pythia system over db. It panics on an invalid Config;
// validate with Config.Normalize first to handle errors gracefully.
func New(db *Database, cfg Config) *System { return core.New(db, cfg) }

// Observability: every cache, disk, and prefetcher occurrence in a replay
// (and every workload-matching decision of a System) can be streamed to a
// Recorder — per-level hit/miss/IO accounting while a run executes, not
// only as end-of-run aggregates. Set Config.Recorder to enable; nil costs
// one nil-check per event site.
type (
	// Recorder receives typed observability events.
	Recorder = obs.Recorder
	// ObsEvent is one typed occurrence (kind, query, page, virtual time).
	ObsEvent = obs.Event
	// ObsKind enumerates event types (see the obs package constants).
	ObsKind = obs.Kind
	// ObsCounters is the allocation-free counting Recorder for
	// single-threaded replays.
	ObsCounters = obs.Counters
	// ObsEventLog retains the full event stream for trace dumps.
	ObsEventLog = obs.EventLog
)

// NewEventLog returns an event log retaining at most limit events
// (limit <= 0 = unbounded).
func NewEventLog(limit int) *ObsEventLog { return obs.NewEventLog(limit) }

// DefaultConfig returns the standard system configuration (Clock buffer,
// readahead window 1024, limited prefetching at 75% of the buffer).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDSB builds the DSB-style benchmark database and query generator
// (7 fact + 17 dimension relations, templates t18/t19/t91).
func NewDSB(cfg DSBConfig) *dsb.Generator { return dsb.NewGenerator(cfg) }

// NewIMDB builds the IMDB/CEB-style database and template-1a generator.
func NewIMDB(cfg IMDBConfig) *imdb.Generator { return imdb.NewGenerator(cfg) }

// PaperModelConfig returns the paper's full-size hyperparameters (§5.1:
// dim 100, 10 heads, 2 layers, decoder hidden 800).
func PaperModelConfig() ModelConfig { return model.PaperConfig() }

// Baselines (§5.2).
var (
	// Oracle prefetches the exact blocks the query reads (ORCL).
	Oracle = baselines.Oracle
	// OracleSequential prefetches only the sequentially read blocks
	// (the Figure 1 contrast).
	OracleSequential = baselines.OracleSequential
	// NearestNeighbor is the idealized NN baseline.
	NearestNeighbor = baselines.NearestNeighbor
)

// PageID names one disk block.
type PageID = storage.PageID

// F1 scores a predicted page set against the ground truth.
func F1(predicted, truth []PageID) float64 { return metrics.Score(predicted, truth).F1 }

// Experiments harness.
type (
	// ExperimentSuite regenerates the paper's tables and figures.
	ExperimentSuite = experiments.Suite
	// ExperimentConfig scales the suite.
	ExperimentConfig = experiments.Config
	// ResultTable is one experiment's output.
	ResultTable = experiments.Table
)

// NewExperiments builds an experiment suite.
func NewExperiments(cfg ExperimentConfig) *ExperimentSuite { return experiments.NewSuite(cfg) }

// DefaultExperimentConfig is the harness's reference scale; FastExperiments
// is small enough for CI.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// FastExperimentConfig returns a CI-scale configuration.
func FastExperimentConfig() ExperimentConfig { return experiments.Fast() }

// ExperimentNames lists every reproducible table/figure id.
func ExperimentNames() []string { return experiments.Names() }

// Scheduling (the paper's §7 future-work direction, implemented as an
// extension): order a batch of queries by predicted page overlap so
// consecutive queries share buffered pages.
type SchedulerPrediction = scheduler.Prediction

// ScheduleByOverlap orders predictions greedily by consecutive Jaccard
// overlap and returns the instances in scheduled order.
func ScheduleByOverlap(preds []SchedulerPrediction) []*Instance {
	return scheduler.Apply(preds, scheduler.Order(preds))
}
