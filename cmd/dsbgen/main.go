// Command dsbgen builds the synthetic DSB database at a chosen scale and
// reports its schema inventory; optionally it generates and executes a
// template workload and prints its Table-1-style statistics.
//
// Usage:
//
//	dsbgen -sf 100                     # schema inventory
//	dsbgen -sf 100 -template t18 -n 50 # plus a workload's statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/pythia-db/pythia"
)

func main() {
	var (
		sf       = flag.Int("sf", 100, "scale factor (paper: 25, 50, 100)")
		seed     = flag.Uint64("seed", 7, "generator seed")
		template = flag.String("template", "", "also execute a workload of this template (t18, t19, t91)")
		n        = flag.Int("n", 50, "workload instances when -template is set")
	)
	flag.Parse()

	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: *sf, Seed: *seed})
	db := gen.DB()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "relation\tkind\trows\tpages\tindexes\n")
	total := 0
	for _, rel := range db.Relations() {
		total += int(rel.Heap.Pages)
		idx := ""
		for _, ix := range rel.Indexes() {
			if idx != "" {
				idx += ","
			}
			idx += ix.Name
			total += int(ix.Tree.Object().Pages)
		}
		fmt.Fprintf(w, "%s\ttable\t%d\t%d\t%s\n", rel.Name, rel.Rows, rel.Heap.Pages, idx)
	}
	w.Flush()
	fmt.Printf("\ntotal pages (heaps + indexes): %d  (scale factor %d)\n", db.Registry.TotalPages(), *sf)

	if *template == "" {
		return
	}
	fmt.Printf("\nexecuting %d instances of %s...\n", *n, *template)
	wl := gen.Workload(*template, *n, *seed+1)
	st := wl.ComputeStats()
	fmt.Printf("sequential IO (total):        %d\n", st.SeqIO)
	fmt.Printf("distinct non-sequential IO:   min %d, max %d\n", st.MinDistinctNS, st.MaxDistinctNS)
	fmt.Printf("distinct query plans:         %d\n", st.DistinctPlans)
	fmt.Printf("relations joined (max idx):   %d(%d)\n", st.RelationsJoined, st.MaxIndexScanned)
}
