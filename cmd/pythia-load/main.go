// Command pythia-load is a closed-loop load generator for the pythia-serve
// HTTP surface. It drives POST /v1/predict at a fixed concurrency (and,
// optionally, a paced QPS target) over a corpus of planned DSB queries with a
// configurable hot-set repeat ratio — the knob that moves the server between
// cache-hit-heavy steady state and cache-miss-heavy inference load — and
// reports per-route latency quantiles, error/shed/breaker counts, and the
// server's own cache statistics as BENCH_load.json.
//
// Two modes:
//
//   - Self-hosted (default): trains a model once, builds the serving stack
//     in-process for each -sweep replica count, and serves it over a real
//     loopback TCP listener — the whole HTTP path is on the clock. This is
//     how the replica-scaling numbers in BENCH_load.json are produced:
//
//     pythia-load -sf 4 -n 24 -sweep 1,4 -concurrency 16 -duration 10s
//
//   - Remote (-target): drives an already-running pythia-serve; the corpus
//     is built from the same -templates/-sf/-seed flags, which must match
//     the server's or every request falls back.
//
//     pythia-load -target http://localhost:8080 -duration 30s -qps 200
//
// With -swap-at F (self-hosted mode), the harness saves a model snapshot
// before the run and POSTs /v1/admin/reload at fraction F of -duration,
// measuring the zero-downtime claim under its own sustained load: the run
// fails if any request around the swap answers non-2xx.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serve"
	"github.com/pythia-db/pythia/internal/spec"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of a running pythia-serve (empty = self-hosted)")
		templates   = flag.String("templates", "t91", "comma-separated DSB templates for the corpus")
		sf          = flag.Int("sf", 4, "scale factor")
		n           = flag.Int("n", 24, "corpus instances per template")
		seed        = flag.Uint64("seed", 7, "seed")
		threads     = flag.Int("threads", 1, "nn kernel worker shards per model in self-hosted mode")
		sweep       = flag.String("sweep", "1", "comma-separated replica counts to benchmark in self-hosted mode, e.g. 1,4")
		cacheFlag   = flag.Int("cache-entries", 0, "serve cache capacity in self-hosted mode (0 = default, negative disables)")
		qps         = flag.Float64("qps", 0, "paced request rate across all workers (0 = closed-loop unthrottled)")
		concurrency = flag.Int("concurrency", 8, "concurrent closed-loop workers")
		duration    = flag.Duration("duration", 10*time.Second, "load duration per sweep point")
		repeat      = flag.Float64("repeat", 0, "probability a request re-sends a hot-set plan (0 = uniform over the corpus, i.e. cache-miss-heavy)")
		hotSet      = flag.Int("hot-set", 4, "distinct plans in the hot set -repeat draws from")
		swapAt      = flag.Float64("swap-at", 0, "fraction of -duration after which to POST /v1/admin/reload (0 = no swap; self-hosted mode)")
		out         = flag.String("out", "BENCH_load.json", "report path")
		allowErrors = flag.Bool("allow-errors", false, "exit 0 even if some requests answered non-2xx")

		maxP99       = flag.Duration("max-p99", 0, "fail (exit nonzero) if any sweep point's p99 exceeds this (0 = no gate)")
		maxErrorRate = flag.Float64("max-error-rate", -1, "fail (exit nonzero) if any sweep point's error rate (errors/requests) exceeds this fraction (negative = no gate)")

		feedbackRate    = flag.Float64("feedback", 0, "probability a 2xx predict is followed by a POST /v1/feedback report with the corpus instance's true pages (0 = no feedback traffic)")
		maxMinPrecision = flag.Float64("max-min-precision", -1, "fail (exit nonzero) if any sweep point's windowed feedback precision falls below this floor (negative = no gate; implies -feedback 1 when -feedback is 0)")
		failOnAlarm     = flag.Bool("fail-on-drift-alarm", false, "fail (exit nonzero) if any sweep point ends with drift state \"alarm\" (sustained drift; transient alarms that recover before the run ends still show in drift_alarms)")

		chaosReplica   = flag.Int("chaos-replica", -1, "self-hosted chaos drill: replica index whose inferences fail mid-run (negative = off)")
		chaosRate      = flag.Float64("chaos-rate", 1, "fault probability for the -chaos-replica drill")
		chaosAt        = flag.Float64("chaos-at", 0.25, "fraction of -duration after which the replica fault arms")
		chaosClear     = flag.Float64("chaos-clear", 0.6, "fraction of -duration after which the replica fault clears (recovery window; 0 = never clears)")
		expectRecovery = flag.Bool("expect-recovery", false, "fail unless /stats shows at least one replica quarantine AND one recovery (use with -chaos-replica)")
		brkCooldown    = flag.Duration("breaker-cooldown", 0, "self-hosted breaker cooldown override (0 = serve default; chaos drills want one that fits inside -duration)")
		quarBackoff    = flag.Duration("quarantine-backoff", 0, "self-hosted quarantine probe backoff override (0 = serve default)")
	)
	flag.Parse()

	sweepCounts, err := parseSweep(*sweep)
	if err != nil {
		log.Fatalf("pythia-load: -sweep: %v", err)
	}
	if *target != "" && (len(sweepCounts) != 1 || sweepCounts[0] != 1) {
		log.Fatal("pythia-load: -sweep needs self-hosted mode (-target drives one fixed server)")
	}
	if *target != "" && *swapAt > 0 {
		log.Fatal("pythia-load: -swap-at needs self-hosted mode (it must save a snapshot to swap to)")
	}
	if *chaosReplica >= 0 {
		if *target != "" {
			log.Fatal("pythia-load: -chaos-replica needs self-hosted mode (it retargets the in-process fault injector)")
		}
		if *chaosRate < 0 || *chaosRate > 1 {
			log.Fatalf("pythia-load: -chaos-rate %g outside [0, 1]", *chaosRate)
		}
		if *chaosClear > 0 && *chaosClear <= *chaosAt {
			log.Fatal("pythia-load: -chaos-clear must be after -chaos-at")
		}
	}
	if *expectRecovery && *chaosReplica < 0 {
		log.Fatal("pythia-load: -expect-recovery needs -chaos-replica")
	}
	if *feedbackRate < 0 || *feedbackRate > 1 {
		log.Fatalf("pythia-load: -feedback %g outside [0, 1]", *feedbackRate)
	}
	if *maxMinPrecision >= 0 && *feedbackRate == 0 {
		// The precision gate reads the server's feedback window, which stays
		// empty without feedback traffic — an ungated run would always pass.
		*feedbackRate = 1
		log.Printf("-max-min-precision set: defaulting -feedback to 1")
	}

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	corpus := buildCorpus(gen, *templates, *n, *seed)
	log.Printf("corpus: %d requests across %s", len(corpus), *templates)

	var sys *corepythia.System
	if *target == "" {
		sys = trainSystem(gen, *templates, *n, *seed, *threads)
	}

	report := loadReport{
		Benchmark:   "pythia-load",
		Templates:   *templates,
		Corpus:      len(corpus),
		Concurrency: *concurrency,
		QPS:         *qps,
		Repeat:      *repeat,
		DurationSec: duration.Seconds(),
	}
	failed := false
	gateFailed := false
	for _, replicas := range sweepCounts {
		res, err := runPoint(pointConfig{
			target: *target, gen: gen, sys: sys, replicas: replicas,
			cacheEntries: *cacheFlag, corpus: corpus, qps: *qps, feedback: *feedbackRate,
			concurrency: *concurrency, duration: *duration,
			repeat: *repeat, hotSet: *hotSet, swapAt: *swapAt, seed: *seed,
			chaosReplica: *chaosReplica, chaosRate: *chaosRate,
			chaosAt: *chaosAt, chaosClear: *chaosClear,
			breakerCooldown: *brkCooldown, quarantineBackoff: *quarBackoff,
		})
		if err != nil {
			log.Fatalf("pythia-load: replicas=%d: %v", replicas, err)
		}
		report.Results = append(report.Results, res)
		log.Printf("replicas=%d: %.0f req/s, p50=%.2fms p95=%.2fms p99=%.2fms, errors=%d (rate %.4f) shed=%d failovers=%d, cache-hit-rate=%.2f",
			replicas, res.ThroughputRPS, res.P50MS, res.P95MS, res.P99MS,
			res.Errors, res.ErrorRate, res.Shed, res.Failovers, res.CacheHitRate)
		if res.Errors > 0 {
			failed = true
		}
		// Regression gates: breaches fail the run even when every response was
		// a well-formed non-2xx the -allow-errors escape hatch would tolerate.
		if *maxP99 > 0 && res.P99MS > float64(maxP99.Microseconds())/1000 {
			log.Printf("GATE BREACH: replicas=%d p99 %.2fms > -max-p99 %s", replicas, res.P99MS, maxP99)
			gateFailed = true
		}
		if *maxErrorRate >= 0 && res.ErrorRate > *maxErrorRate {
			log.Printf("GATE BREACH: replicas=%d error rate %.4f > -max-error-rate %g", replicas, res.ErrorRate, *maxErrorRate)
			gateFailed = true
		}
		if *expectRecovery && (res.Quarantines == 0 || res.Recoveries == 0) {
			log.Printf("GATE BREACH: replicas=%d expected a quarantine+recovery cycle, saw quarantines=%d recoveries=%d",
				replicas, res.Quarantines, res.Recoveries)
			gateFailed = true
		}
		if res.Feedbacks > 0 {
			log.Printf("replicas=%d: quality feedback=%d (errors %d) precision=%.4f recall=%.4f drift=%s (score %.4f)",
				replicas, res.Feedbacks, res.FeedbackErrors, res.Precision, res.Recall, res.DriftState, res.DriftScore)
		}
		if *maxMinPrecision >= 0 {
			if res.QualityScored == 0 {
				log.Printf("GATE BREACH: replicas=%d precision gate set but no feedback was scored", replicas)
				gateFailed = true
			} else if res.Precision < *maxMinPrecision {
				log.Printf("GATE BREACH: replicas=%d windowed precision %.4f < -max-min-precision %g",
					replicas, res.Precision, *maxMinPrecision)
				gateFailed = true
			}
		}
		if *failOnAlarm && res.DriftState == "alarm" {
			log.Printf("GATE BREACH: replicas=%d run ended in drift alarm (%d alarms, score %.4f)",
				replicas, res.DriftAlarms, res.DriftScore)
			gateFailed = true
		}
	}
	if len(report.Results) > 1 {
		base := report.Results[0].ThroughputRPS
		if base > 0 {
			last := report.Results[len(report.Results)-1]
			report.SpeedupThroughput = last.ThroughputRPS / base
			log.Printf("throughput %dx replicas vs %dx: %.2fx",
				report.Results[len(report.Results)-1].Replicas, report.Results[0].Replicas, report.SpeedupThroughput)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("pythia-load: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("pythia-load: %v", err)
	}
	log.Printf("wrote %s", *out)
	if gateFailed {
		log.Fatal("pythia-load: regression gate breached (see GATE BREACH lines above)")
	}
	if failed && !*allowErrors {
		log.Fatal("pythia-load: some requests answered non-2xx (pass -allow-errors to tolerate)")
	}
}

// loadReport is the whole BENCH_load.json document.
type loadReport struct {
	Benchmark         string       `json:"benchmark"`
	Templates         string       `json:"templates"`
	Corpus            int          `json:"corpus_requests"`
	Concurrency       int          `json:"concurrency"`
	QPS               float64      `json:"qps_target"`
	Repeat            float64      `json:"repeat_ratio"`
	DurationSec       float64      `json:"duration_seconds"`
	Results           []loadResult `json:"results"`
	SpeedupThroughput float64      `json:"speedup_throughput,omitempty"`
}

// loadResult is one sweep point's row.
type loadResult struct {
	Replicas      int               `json:"replicas"`
	Requests      uint64            `json:"requests"`
	Errors        uint64            `json:"errors"`
	ErrorRate     float64           `json:"error_rate"`
	Seconds       float64           `json:"seconds"`
	ThroughputRPS float64           `json:"throughput_rps"`
	P50MS         float64           `json:"p50_ms"`
	P95MS         float64           `json:"p95_ms"`
	P99MS         float64           `json:"p99_ms"`
	StatusCounts  map[string]uint64 `json:"status_counts"`
	CacheHitRate  float64           `json:"cache_hit_rate"`
	CacheHits     uint64            `json:"cache_hits"`
	CacheMisses   uint64            `json:"cache_misses"`
	Shed          uint64            `json:"requests_shed"`
	Timeouts      uint64            `json:"inference_timeouts"`
	Failovers     uint64            `json:"replica_failovers"`
	Hedges        uint64            `json:"request_hedges"`
	Quarantines   uint64            `json:"replica_quarantines"`
	Probes        uint64            `json:"replica_probes"`
	Recoveries    uint64            `json:"replica_recoveries"`
	BreakerState  string            `json:"breaker_state"`
	HealthState   string            `json:"health_state"`
	Generation    uint64            `json:"generation"`
	Swaps         uint64            `json:"swaps"`
	SwapMS        float64           `json:"swap_ms,omitempty"`

	// Quality and drift snapshot scraped from /stats at the end of the run:
	// the server's own windowed scores over the -feedback ground-truth
	// traffic, and the drift detector's aggregate verdict.
	Feedbacks      uint64  `json:"feedbacks_sent"`
	FeedbackErrors uint64  `json:"feedback_errors"`
	QualityScored  uint64  `json:"quality_scored"`
	QualityWindow  int     `json:"quality_window"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	WastedRatio    float64 `json:"wasted_ratio"`
	DriftState     string  `json:"drift_state"`
	DriftScore     float64 `json:"drift_score"`
	DriftWarnings  uint64  `json:"drift_warnings"`
	DriftAlarms    uint64  `json:"drift_alarms"`
	BaselineHash   string  `json:"baseline_hash,omitempty"`
}

type pointConfig struct {
	target       string
	gen          *dsb.Generator
	sys          *corepythia.System
	replicas     int
	cacheEntries int
	corpus       []corpusEntry
	qps          float64
	feedback     float64
	concurrency  int
	duration     time.Duration
	repeat       float64
	hotSet       int
	swapAt       float64
	seed         uint64
	chaosReplica int
	chaosRate    float64
	chaosAt      float64
	chaosClear   float64

	// breakerCooldown and quarantineBackoff override the serve defaults when
	// positive — chaos drills need recovery cycles that fit inside -duration.
	breakerCooldown   time.Duration
	quarantineBackoff time.Duration
}

// latencyBounds is denser than the serve-side request histogram so p99
// interpolation in the sub-millisecond to tens-of-milliseconds range stays
// sharp.
func latencyBounds() []time.Duration {
	var bounds []time.Duration
	for _, ms := range []float64{0.1, 0.2, 0.5, 1, 2, 3, 5, 8, 12, 20, 35, 60, 100, 200, 500, 1000, 2000, 5000} {
		bounds = append(bounds, time.Duration(ms*float64(time.Millisecond)))
	}
	return bounds
}

// runPoint drives one sweep point: build (or point at) a server, run the
// closed loop for the duration, scrape /stats, and assemble the row.
func runPoint(pc pointConfig) (loadResult, error) {
	res := loadResult{Replicas: pc.replicas, StatusCounts: map[string]uint64{}}
	base := pc.target
	var snapPath string
	var srv *serve.Server // self-hosted handle; chaos drills retarget its injector
	if pc.target == "" {
		var err error
		srv, err = serve.New(pc.gen.DB(), pc.sys, serve.NewMetrics(nil), serve.Options{
			Replicas:          pc.replicas,
			CacheEntries:      pc.cacheEntries,
			BreakerCooldown:   pc.breakerCooldown,
			QuarantineBackoff: pc.quarantineBackoff,
		})
		if err != nil {
			return res, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		//pythia:goleak-ok Serve returns when the deferred httpSrv.Close below tears the listener down at the end of the run
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		if pc.swapAt > 0 {
			f, err := os.CreateTemp("", "pythia-load-snap-*.bin")
			if err != nil {
				return res, err
			}
			snapPath = f.Name()
			defer os.Remove(snapPath)
			if err := pc.sys.Save(f); err != nil {
				f.Close()
				return res, err
			}
			if err := f.Close(); err != nil {
				return res, err
			}
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	url := base + "/v1/predict"
	hist := obs.NewHistogram(latencyBounds())
	var (
		requests, errCount      atomic.Uint64
		feedbacks, feedbackErrs atomic.Uint64
		statusMu                sync.Mutex
	)
	interval := time.Duration(0)
	if pc.qps > 0 {
		interval = time.Duration(float64(time.Second) / pc.qps)
	}
	hot := pc.hotSet
	if hot < 1 || hot > len(pc.corpus) {
		hot = len(pc.corpus)
	}

	start := time.Now()
	deadline := start.Add(pc.duration)
	var slot atomic.Int64 // global pacing slot counter for the QPS target
	var wg sync.WaitGroup
	for g := 0; g < pc.concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-worker PRNG: fixed seed so corpora draws are reproducible,
			// offset so workers don't lockstep on the same plans.
			rng := rand.New(rand.NewSource(int64(pc.seed) + int64(g)*7919))
			for time.Now().Before(deadline) {
				if interval > 0 {
					// Paced mode: the next global slot's fire time.
					mine := slot.Add(1) - 1
					at := start.Add(time.Duration(mine) * interval)
					if wait := time.Until(at); wait > 0 {
						time.Sleep(wait)
					}
					if !time.Now().Before(deadline) {
						return
					}
				}
				var entry corpusEntry
				if pc.repeat > 0 && rng.Float64() < pc.repeat {
					entry = pc.corpus[rng.Intn(hot)]
				} else {
					entry = pc.corpus[rng.Intn(len(pc.corpus))]
				}
				wantFeedback := pc.feedback > 0 && rng.Float64() < pc.feedback
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(entry.body))
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
					statusMu.Lock()
					res.StatusCounts["transport_error"]++
					statusMu.Unlock()
					continue
				}
				var predictionID string
				if wantFeedback && resp.StatusCode == http.StatusOK {
					var pr struct {
						PredictionID string `json:"prediction_id"`
					}
					if json.NewDecoder(resp.Body).Decode(&pr) == nil {
						predictionID = pr.PredictionID
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0))
				statusMu.Lock()
				res.StatusCounts[strconv.Itoa(resp.StatusCode)]++
				statusMu.Unlock()
				if resp.StatusCode < 200 || resp.StatusCode > 299 {
					errCount.Add(1)
				}
				// Close the ground-truth loop: report the instance's true
				// pages back as the "touched" set. Feedback traffic is
				// accounted separately from predict throughput.
				if predictionID != "" {
					if err := postFeedback(client, base, predictionID, entry.truth); err != nil {
						feedbackErrs.Add(1)
					} else {
						feedbacks.Add(1)
					}
				}
			}
		}(g)
	}

	// Chaos drill: arm a replica-targeted fault plan partway through the run
	// and (optionally) clear it later, leaving a recovery window in which the
	// quarantined replica's backoff probes can re-admit it. The injected
	// faults themselves never reach the client — the pool fails the shard
	// over — so the drill asserts self-healing, not error tolerance.
	if pc.chaosReplica >= 0 && srv != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(float64(pc.duration) * pc.chaosAt))
			srv.SetFault(fault.New(fault.Plan{ReplicaRate: pc.chaosRate, ReplicaIndex: pc.chaosReplica}, pc.seed))
			log.Printf("chaos: replica %d faulting at rate %g", pc.chaosReplica, pc.chaosRate)
			if pc.chaosClear <= 0 {
				return
			}
			time.Sleep(time.Duration(float64(pc.duration) * (pc.chaosClear - pc.chaosAt)))
			srv.SetFault(nil)
			log.Printf("chaos: replica %d fault cleared (recovery window)", pc.chaosReplica)
		}()
	}

	if pc.swapAt > 0 && snapPath != "" {
		swapDelay := time.Duration(float64(pc.duration) * pc.swapAt)
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(swapDelay)
			t0 := time.Now()
			if err := postReload(client, base, snapPath); err != nil {
				errCount.Add(1)
				statusMu.Lock()
				res.StatusCounts["reload_error"]++
				statusMu.Unlock()
				log.Printf("mid-run reload failed: %v", err)
				return
			}
			swapMS := float64(time.Since(t0).Microseconds()) / 1000
			statusMu.Lock()
			res.SwapMS = swapMS
			statusMu.Unlock()
			log.Printf("mid-run model swap completed in %.1fms", swapMS)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Requests = requests.Load()
	res.Errors = errCount.Load()
	res.Feedbacks = feedbacks.Load()
	res.FeedbackErrors = feedbackErrs.Load()
	if res.Requests > 0 {
		res.ErrorRate = float64(res.Errors) / float64(res.Requests)
	}
	res.Seconds = elapsed.Seconds()
	if res.Seconds > 0 {
		res.ThroughputRPS = float64(res.Requests) / res.Seconds
	}
	res.P50MS = float64(hist.Quantile(0.50).Microseconds()) / 1000
	res.P95MS = float64(hist.Quantile(0.95).Microseconds()) / 1000
	res.P99MS = float64(hist.Quantile(0.99).Microseconds()) / 1000
	if err := scrapeStats(client, base, &res); err != nil {
		log.Printf("stats scrape failed (report row incomplete): %v", err)
	}
	return res, nil
}

// postFeedback POSTs one ground-truth report for a prediction.
func postFeedback(client *http.Client, base, predictionID string, truth json.RawMessage) error {
	body, err := json.Marshal(struct {
		PredictionID string          `json:"prediction_id"`
		Pages        json.RawMessage `json:"pages"`
	}{predictionID, truth})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("feedback status %d", resp.StatusCode)
	}
	return nil
}

// postReload POSTs the admin reload endpoint with an explicit snapshot path.
func postReload(client *http.Client, base, snapPath string) error {
	body, err := json.Marshal(map[string]string{"path": snapPath})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("reload status %d: %s", resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// scrapeStats folds the server's own /stats accounting into the result row:
// cache hit rate, sheds, timeouts, breaker state, and swap/generation counts.
func scrapeStats(client *http.Client, base string, res *loadResult) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st struct {
		Shed         uint64            `json:"requests_shed"`
		Timeouts     uint64            `json:"inference_timeouts"`
		Failovers    uint64            `json:"replica_failovers"`
		Hedges       uint64            `json:"request_hedges"`
		BreakerState string            `json:"breaker_state"`
		HealthState  string            `json:"health_state"`
		Generation   uint64            `json:"generation"`
		Swaps        uint64            `json:"swaps"`
		Events       map[string]uint64 `json:"events"`
		PredCache    *struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"predcache"`
		Quality struct {
			Scored      uint64  `json:"scored"`
			Window      int     `json:"window"`
			Precision   float64 `json:"precision"`
			Recall      float64 `json:"recall"`
			WastedRatio float64 `json:"wasted_ratio"`
		} `json:"quality"`
		Drift struct {
			State    string  `json:"state"`
			Score    float64 `json:"score"`
			Warnings uint64  `json:"warnings"`
			Alarms   uint64  `json:"alarms"`
		} `json:"drift"`
		Baseline *struct {
			Hash string `json:"hash"`
		} `json:"baseline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	res.Shed = st.Shed
	res.Timeouts = st.Timeouts
	res.Failovers = st.Failovers
	res.Hedges = st.Hedges
	res.BreakerState = st.BreakerState
	res.HealthState = st.HealthState
	res.Generation = st.Generation
	res.Swaps = st.Swaps
	res.Quarantines = st.Events["replica_quarantined"]
	res.Probes = st.Events["replica_probe"]
	res.Recoveries = st.Events["replica_recovered"]
	if st.PredCache != nil {
		res.CacheHits = st.PredCache.Hits
		res.CacheMisses = st.PredCache.Misses
		if total := st.PredCache.Hits + st.PredCache.Misses; total > 0 {
			res.CacheHitRate = float64(st.PredCache.Hits) / float64(total)
		}
	}
	res.QualityScored = st.Quality.Scored
	res.QualityWindow = st.Quality.Window
	res.Precision = st.Quality.Precision
	res.Recall = st.Quality.Recall
	res.WastedRatio = st.Quality.WastedRatio
	res.DriftState = st.Drift.State
	res.DriftScore = st.Drift.Score
	res.DriftWarnings = st.Drift.Warnings
	res.DriftAlarms = st.Drift.Alarms
	if st.Baseline != nil {
		res.BaselineHash = st.Baseline.Hash
	}
	return nil
}

// corpusEntry is one pre-encoded request: the QuerySpec body for
// /v1/predict and the instance's true page set, pre-marshaled for
// /v1/feedback so the feedback path does zero encoding work per request.
type corpusEntry struct {
	body  []byte
	truth json.RawMessage
}

// buildCorpus encodes every workload instance's QuerySpec (and ground-truth
// page list) once up front so the load loop does zero encoding work.
func buildCorpus(gen *dsb.Generator, templates string, n int, seed uint64) []corpusEntry {
	type pageJSON struct {
		Object string `json:"object"`
		Page   uint32 `json:"page"`
	}
	reg := gen.DB().Registry
	var corpus []corpusEntry
	for _, tpl := range strings.Split(templates, ",") {
		tpl = strings.TrimSpace(tpl)
		if tpl == "" {
			continue
		}
		w := gen.Workload(tpl, n, seed+1)
		for _, inst := range w.Instances {
			var buf bytes.Buffer
			if err := spec.FromQuery(inst.Query).Encode(&buf); err != nil {
				log.Fatalf("pythia-load: encoding corpus: %v", err)
			}
			truth := make([]pageJSON, 0, len(inst.Pages))
			for _, p := range inst.Pages {
				name := ""
				if obj := reg.Lookup(p.Object); obj != nil {
					name = obj.Name
				}
				truth = append(truth, pageJSON{Object: name, Page: uint32(p.Page)})
			}
			raw, err := json.Marshal(truth)
			if err != nil {
				log.Fatalf("pythia-load: encoding ground truth: %v", err)
			}
			corpus = append(corpus, corpusEntry{body: buf.Bytes(), truth: raw})
		}
	}
	if len(corpus) == 0 {
		log.Fatal("pythia-load: empty corpus")
	}
	return corpus
}

// trainSystem trains the self-hosted serving models, mirroring pythia-serve's
// training loop with the same flags so remote corpora stay compatible.
func trainSystem(gen *dsb.Generator, templates string, n int, seed uint64, threads int) *corepythia.System {
	cfg := corepythia.DefaultConfig()
	cfg.Predictor.Model.Threads = threads
	cfg, err := cfg.Normalize()
	if err != nil {
		log.Fatalf("pythia-load: %v", err)
	}
	sys := corepythia.New(gen.DB(), cfg)
	for _, tpl := range strings.Split(templates, ",") {
		tpl = strings.TrimSpace(tpl)
		if tpl == "" {
			continue
		}
		log.Printf("training %s (%d instances)...", tpl, n)
		start := time.Now()
		w := gen.Workload(tpl, n, seed+1)
		sys.Train(tpl, w.Instances)
		log.Printf("trained %s in %s", tpl, time.Since(start).Round(time.Millisecond))
	}
	return sys
}

// parseSweep parses "1,4" into replica counts, deduplicated and in order.
func parseSweep(s string) ([]int, error) {
	var counts []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("replica count %d < 1", v)
		}
		if !seen[v] {
			seen[v] = true
			counts = append(counts, v)
		}
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no replica counts in %q", s)
	}
	sort.Ints(counts)
	return counts, nil
}
