// Command pythia-serve runs Pythia as an HTTP prediction service: it trains
// (or loads) models for the requested DSB templates, then answers page-set
// predictions for JSON query specifications — the deployment shape a real
// integration would use, with training offline and inference served from
// persisted models.
//
//	pythia-serve -templates t91 -sf 20 -n 60 -addr :8080 &
//	curl -s localhost:8080/v1/predict -d '{"fact":"catalog_returns", ...}'
//	curl -s localhost:8080/metrics
//
// Endpoints (see internal/serve for the full contract):
//
//	POST /v1/predict   QuerySpec JSON → predicted pages + matched workload
//	POST /v1/explain   QuerySpec JSON → plan display + Algorithm 2 tokens
//	GET  /v1/healthz   liveness + model inventory
//	GET  /metrics      Prometheus text exposition
//	GET  /stats        JSON statistics snapshot
//
// The unversioned /predict, /explain, and /healthz aliases remain for one
// release and answer with a Deprecation header.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		templates = flag.String("templates", "t91", "comma-separated DSB templates to train")
		sf        = flag.Int("sf", 20, "scale factor")
		n         = flag.Int("n", 60, "training instances per template")
		seed      = flag.Uint64("seed", 7, "seed")
		threads   = flag.Int("threads", 0, "nn kernel worker shards per model (0 = NumCPU or PYTHIA_THREADS, 1 = serial; results are identical for any value)")
	)
	flag.Parse()

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	metrics := serve.NewMetrics(nil)
	cfg := corepythia.DefaultConfig()
	cfg.Predictor.Model.Threads = *threads
	cfg.Recorder = metrics.Events()
	cfg, err := cfg.Normalize()
	if err != nil {
		log.Fatalf("pythia-serve: invalid config: %v", err)
	}
	sys := corepythia.New(gen.DB(), cfg)
	for _, tpl := range strings.Split(*templates, ",") {
		tpl = strings.TrimSpace(tpl)
		if tpl == "" {
			continue
		}
		log.Printf("training %s (%d instances)...", tpl, *n)
		start := time.Now()
		w := gen.Workload(tpl, *n, *seed+1)
		sys.Train(tpl, w.Instances)
		log.Printf("trained %s in %s", tpl, time.Since(start).Round(time.Second))
	}

	srv := serve.New(gen.DB(), sys, metrics)
	log.Printf("pythia-serve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
