// Command pythia-serve runs Pythia as an HTTP prediction service: it trains
// (or loads) models for the requested DSB templates, then answers page-set
// predictions for JSON query specifications — the deployment shape a real
// integration would use, with training offline and inference served from
// persisted models.
//
//	pythia-serve -templates t91 -sf 20 -n 60 -addr :8080 &
//	curl -s localhost:8080/predict -d '{"fact":"catalog_returns", ...}'
//
// Endpoints:
//
//	GET  /healthz     liveness + model inventory
//	POST /predict     QuerySpec JSON → predicted pages + matched workload
//	POST /explain     QuerySpec JSON → plan display + Algorithm 2 tokens
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/spec"
)

type server struct {
	gen *dsb.Generator
	sys *corepythia.System
}

type predictResponse struct {
	Workload  string     `json:"workload"`
	Fallback  bool       `json:"fallback"`
	Pages     []pageJSON `json:"pages"`
	PageCount int        `json:"page_count"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Plan      string     `json:"plan,omitempty"`
	Tokens    []string   `json:"tokens,omitempty"`
}

type pageJSON struct {
	Object string `json:"object"`
	Page   uint32 `json:"page"`
}

func (s *server) decodeQuery(w http.ResponseWriter, r *http.Request) (plan.Query, *plan.Node, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a QuerySpec JSON document", http.StatusMethodNotAllowed)
		return plan.Query{}, nil, false
	}
	qs, err := spec.Decode(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return plan.Query{}, nil, false
	}
	q, err := qs.ToQuery()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return plan.Query{}, nil, false
	}
	pl := plan.NewPlanner(s.gen.DB())
	var root *plan.Node
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, fmt.Sprint(rec), http.StatusBadRequest)
				root = nil
			}
		}()
		root = pl.Plan(q)
	}()
	if root == nil {
		return plan.Query{}, nil, false
	}
	return q, root, true
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	start := time.Now()
	resp := predictResponse{}
	if tw := s.sys.Match(q); tw != nil {
		resp.Workload = tw.Name
		for _, p := range s.sys.LimitPrefetch(tw.Pred.PredictParallel(root)) {
			obj := s.gen.DB().Registry.Lookup(p.Object)
			name := fmt.Sprint(p.Object)
			if obj != nil {
				name = obj.Name
			}
			resp.Pages = append(resp.Pages, pageJSON{Object: name, Page: uint32(p.Page)})
		}
	} else {
		resp.Fallback = true
	}
	resp.PageCount = len(resp.Pages)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, resp)
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	_, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	writeJSON(w, predictResponse{
		Plan:   root.Display(),
		Tokens: serialize.Serialize(root, serialize.DefaultConfig()),
	})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	type workloadInfo struct {
		Name   string `json:"name"`
		Models int    `json:"models"`
		Params int    `json:"params"`
	}
	var info []workloadInfo
	for _, tw := range s.sys.Workloads() {
		info = append(info, workloadInfo{
			Name: tw.Name, Models: len(tw.Pred.Models()), Params: tw.Pred.ParamCount(),
		})
	}
	writeJSON(w, map[string]any{"status": "ok", "workloads": info})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("pythia-serve: encoding response: %v", err)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		templates = flag.String("templates", "t91", "comma-separated DSB templates to train")
		sf        = flag.Int("sf", 20, "scale factor")
		n         = flag.Int("n", 60, "training instances per template")
		seed      = flag.Uint64("seed", 7, "seed")
		threads   = flag.Int("threads", 0, "nn kernel worker shards per model (0 = NumCPU or PYTHIA_THREADS, 1 = serial; results are identical for any value)")
	)
	flag.Parse()

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	cfg := corepythia.DefaultConfig()
	cfg.Predictor.Model.Threads = *threads
	sys := corepythia.New(gen.DB(), cfg)
	for _, tpl := range strings.Split(*templates, ",") {
		tpl = strings.TrimSpace(tpl)
		if tpl == "" {
			continue
		}
		log.Printf("training %s (%d instances)...", tpl, *n)
		start := time.Now()
		w := gen.Workload(tpl, *n, *seed+1)
		sys.Train(tpl, w.Instances)
		log.Printf("trained %s in %s", tpl, time.Since(start).Round(time.Second))
	}

	srv := &server{gen: gen, sys: sys}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", srv.handlePredict)
	mux.HandleFunc("/explain", srv.handleExplain)
	mux.HandleFunc("/healthz", srv.handleHealth)
	log.Printf("pythia-serve listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
