// Command pythia-serve runs Pythia as an HTTP prediction service: it trains
// (or loads) models for the requested DSB templates, then answers page-set
// predictions for JSON query specifications — the deployment shape a real
// integration would use, with training offline and inference served from
// persisted models.
//
//	pythia-serve -templates t91 -sf 20 -n 60 -addr :8080 &
//	curl -s localhost:8080/v1/predict -d '{"fact":"catalog_returns", ...}'
//	curl -s localhost:8080/metrics
//
// Endpoints (see internal/serve for the full contract):
//
//	POST /v1/predict          QuerySpec JSON → predicted pages + matched workload
//	POST /v1/explain          QuerySpec JSON → plan display + Algorithm 2 tokens
//	GET  /v1/healthz          liveness + model inventory
//	POST /v1/admin/reload     zero-downtime model swap from the -snapshot file
//	GET  /v1/admin/replicas   replica topology
//	GET  /metrics             Prometheus text exposition
//	GET  /stats               JSON statistics snapshot
//
// The unversioned aliases remain for one release and answer with a
// Deprecation header.
//
// With -replicas N the trained system is cloned into N independent model
// replicas behind a consistent-hash router (see internal/serve's Pool).
// With -snapshot the trained system is persisted to (or, when the file
// already exists, loaded from) the given path; SIGHUP — or POST
// /v1/admin/reload — swaps the serving models from that snapshot without
// dropping a request.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/fault"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serve"
	"github.com/pythia-db/pythia/internal/span"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		templates = flag.String("templates", "t91", "comma-separated DSB templates to train")
		sf        = flag.Int("sf", 20, "scale factor")
		n         = flag.Int("n", 60, "training instances per template")
		seed      = flag.Uint64("seed", 7, "seed")
		threads   = flag.Int("threads", 0, "nn kernel worker shards per model (0 = NumCPU or PYTHIA_THREADS, 1 = serial; results are identical for any value)")

		reqTimeout    = flag.Duration("request-timeout", 5*time.Second, "per-request inference budget (negative disables)")
		maxInflight   = flag.Int("max-inflight", 64, "concurrent model requests before load shedding (negative disables)")
		maxBody       = flag.Int64("max-body", 1<<20, "request body cap in bytes (negative disables)")
		brkThreshold  = flag.Int("breaker-threshold", 5, "consecutive model errors that trip the circuit breaker (negative disables)")
		brkCooldown   = flag.Duration("breaker-cooldown", 10*time.Second, "how long the breaker stays open before half-opening")
		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "drain deadline after SIGINT/SIGTERM")
		cacheEntries  = flag.Int("cache-entries", 4096, "plan-fingerprint prediction cache capacity (negative disables)")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "how long a cache miss waits to coalesce with concurrent misses (negative disables)")
		maxBatch      = flag.Int("max-batch", 16, "max requests coalesced into one batched forward pass")
		quantize      = flag.Bool("quantize", false, "run int8-quantized inference (per-tensor symmetric weights; ~Jaccard 0.9 agreement with float32)")
		replicas      = flag.Int("replicas", 1, "independent model replicas behind the consistent-hash router")
		queueDepth    = flag.Int("queue-depth", 32, "per-replica bounded work queue (negative disables)")
		snapshot      = flag.String("snapshot", "", "model snapshot path: loaded instead of training when it exists, written after training otherwise; SIGHUP and /v1/admin/reload swap from it (empty = off)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "how long a superseded model generation drains after a swap")
		quarThreshold = flag.Int("quarantine-threshold", 5, "sliding-window model-path failures that quarantine a replica (negative disables health tracking)")
		quarBackoff   = flag.Duration("quarantine-backoff", time.Second, "initial probe backoff for a quarantined replica (doubles per failed probe, capped at 16x)")
		quarProbes    = flag.Int("quarantine-probes", 3, "consecutive probe successes that re-admit a quarantined replica")
		maxFailovers  = flag.Int("max-failovers", 2, "ring successors a request may fail over to past an unhealthy replica (negative disables failover)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "floor for the p95-derived request-hedging delay; a second attempt races on the ring successor (0 = hedging off; needs -replicas > 1)")
		faultPlan     = flag.String("fault-plan", "", "fault-injection plan for chaos drills, e.g. serve=0.2 (empty = none)")
		faultSeed     = flag.Uint64("fault-seed", 1, "fault-injection PRNG seed")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this loopback address, e.g. localhost:6060 (empty = off)")
		traceOut      = flag.String("trace-out", "", "on shutdown, write HTTP request spans as Chrome trace-event JSON to this file (empty = off)")
	)
	flag.Parse()

	// Validate -pprof before training: a bad address should fail in
	// milliseconds, not after minutes of model building. The profiling
	// endpoints expose heap contents and symbol tables, so they run on a
	// separate server that must be bound to loopback — never on the public
	// listener.
	if *pprofAddr != "" {
		host, _, err := net.SplitHostPort(*pprofAddr)
		if err != nil {
			log.Fatalf("pythia-serve: -pprof %q: %v", *pprofAddr, err)
		}
		if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			log.Fatalf("pythia-serve: -pprof must bind a loopback address, got %q", *pprofAddr)
		}
	}

	plan, err := fault.ParsePlan(*faultPlan)
	if err != nil {
		log.Fatalf("pythia-serve: %v", err)
	}
	var inj *fault.Injector
	if !plan.IsZero() {
		inj = fault.New(plan, *faultSeed)
		log.Printf("fault injection armed: %s (seed %d)", plan, *faultSeed)
	}

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	metrics := serve.NewMetrics(nil)
	var tracer *span.Sync
	if *traceOut != "" {
		tracer = span.NewSync()
		metrics.SetTracer(tracer)
	}
	cfg := corepythia.DefaultConfig()
	cfg.Predictor.Model.Threads = *threads
	cfg.Recorder = metrics.Events()
	cfg, err = cfg.Normalize()
	if err != nil {
		log.Fatalf("pythia-serve: invalid config: %v", err)
	}
	sys := corepythia.New(gen.DB(), cfg)
	if *snapshot != "" && fileExists(*snapshot) {
		log.Printf("loading snapshot %s (skipping training)...", *snapshot)
		loaded, err := loadSnapshot(gen, cfg, *snapshot)
		if err != nil {
			log.Fatalf("pythia-serve: loading -snapshot: %v", err)
		}
		sys = loaded
	} else {
		for _, tpl := range strings.Split(*templates, ",") {
			tpl = strings.TrimSpace(tpl)
			if tpl == "" {
				continue
			}
			log.Printf("training %s (%d instances)...", tpl, *n)
			start := time.Now()
			w := gen.Workload(tpl, *n, *seed+1)
			sys.Train(tpl, w.Instances)
			log.Printf("trained %s in %s", tpl, time.Since(start).Round(time.Second))
		}
		if *snapshot != "" {
			if err := saveSnapshot(sys, *snapshot); err != nil {
				log.Fatalf("pythia-serve: writing -snapshot: %v", err)
			}
			log.Printf("wrote snapshot %s", *snapshot)
		}
	}

	srv, err := serve.New(gen.DB(), sys, metrics, serve.Options{
		RequestTimeout:      *reqTimeout,
		MaxInFlight:         *maxInflight,
		MaxBodyBytes:        *maxBody,
		BreakerThreshold:    *brkThreshold,
		BreakerCooldown:     *brkCooldown,
		Fault:               inj,
		CacheEntries:        *cacheEntries,
		BatchWindow:         *batchWindow,
		MaxBatch:            *maxBatch,
		Quantize:            *quantize,
		Replicas:            *replicas,
		QueueDepth:          *queueDepth,
		SnapshotPath:        *snapshot,
		DrainTimeout:        *drainTimeout,
		QuarantineThreshold: *quarThreshold,
		QuarantineBackoff:   *quarBackoff,
		QuarantineProbes:    *quarProbes,
		MaxFailovers:        *maxFailovers,
		HedgeAfter:          *hedgeAfter,
	})
	if err != nil {
		log.Fatalf("pythia-serve: %v", err)
	}
	defer srv.Close()
	// Log the resolved effective options (after Options.Normalize applies the
	// zero=default / negative=disable convention) so a deployment's actual
	// protections, fast-path, and topology configuration are visible in its
	// logs.
	eff := srv.Options()
	log.Printf("effective options: request-timeout=%s max-inflight=%d max-body=%d breaker-threshold=%d breaker-cooldown=%s cache-entries=%d batch-window=%s max-batch=%d quantize=%v replicas=%d queue-depth=%d drain-timeout=%s snapshot=%q quarantine-threshold=%d quarantine-backoff=%s quarantine-probes=%d max-failovers=%d hedge-after=%s",
		eff.RequestTimeout, eff.MaxInFlight, eff.MaxBodyBytes, eff.BreakerThreshold,
		eff.BreakerCooldown, eff.CacheEntries, eff.BatchWindow, eff.MaxBatch, eff.Quantize,
		eff.Replicas, eff.QueueDepth, eff.DrainTimeout, eff.SnapshotPath,
		eff.QuarantineThreshold, eff.QuarantineBackoff, eff.QuarantineProbes,
		eff.MaxFailovers, eff.HedgeAfter)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The shutdown context is created before any helper goroutine spawns so
	// each of them can bound itself on ctx.Done(); it is consumed by the
	// graceful-shutdown select at the bottom.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGHUP is the operator's model-roll signal: swap the serving models
	// from the -snapshot file without dropping a request. The listener exits
	// on shutdown rather than ranging over the signal channel forever — a
	// reload must not start while the server is draining.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
			}
			log.Print("SIGHUP: reloading model snapshot...")
			st, err := srv.ReloadSnapshot("")
			if err != nil {
				log.Printf("reload failed (still serving the old generation): %v", err)
				continue
			}
			log.Printf("reloaded: generation %d across %d replicas", st.Generation, len(st.Replicas))
		}
	}()

	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//pythia:goleak-ok debug listener is deliberately process-lifetime; it holds no model state and dies with the process
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM flip healthz to draining (so load
	// balancers stop routing here), then let in-flight requests finish under
	// the grace deadline before exiting.
	errc := make(chan error, 1)
	//pythia:goleak-ok exits when httpSrv.Shutdown below makes ListenAndServe return; errc is buffered so the send never blocks
	go func() {
		log.Printf("pythia-serve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		srv.SetDraining(true)
		log.Printf("signal received; draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
		if tracer != nil {
			if err := writeTrace(*traceOut, tracer.Snapshot()); err != nil {
				log.Printf("trace-out: %v", err)
			} else {
				log.Printf("wrote %s", *traceOut)
			}
		}
		log.Print("pythia-serve stopped")
	}
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

// loadSnapshot decodes a persisted trained system against the generator's
// catalog.
func loadSnapshot(gen *dsb.Generator, cfg corepythia.Config, path string) (*corepythia.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return corepythia.LoadSystem(gen.DB(), cfg, f)
}

// saveSnapshot persists the trained system for later -snapshot starts and
// SIGHUP / admin reloads. SaveFile is atomic (temp + fsync + rename), so a
// crash mid-save can never tear a snapshot a reload would then trip over.
func saveSnapshot(sys *corepythia.System, path string) error {
	return sys.SaveFile(path)
}

// writeTrace dumps the recorded HTTP spans as Perfetto-loadable JSON.
func writeTrace(path string, spans []span.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := span.ExportChrome(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
