// Command pythia-experiments regenerates the paper's evaluation: every
// table and figure, at a configurable scale, printed as aligned text tables.
//
// Usage:
//
//	pythia-experiments                     # run everything at default scale
//	pythia-experiments -exp fig6,fig9      # run selected experiments
//	pythia-experiments -fast               # CI-scale quick pass
//	pythia-experiments -list               # list experiment ids
//	pythia-experiments -scale 100 -n 400   # closer to paper counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/pythia-db/pythia"
	"github.com/pythia-db/pythia/internal/fault"
)

func main() {
	var (
		expList   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		fast      = flag.Bool("fast", false, "run at CI scale instead of the default scale")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		scale     = flag.Int("scale", 0, "override DSB scale factor")
		perTpl    = flag.Int("n", 0, "override query instances per DSB template")
		imdbN     = flag.Int("imdb-n", 0, "override IMDB template-1a instances")
		seed      = flag.Uint64("seed", 0, "override random seed")
		threads   = flag.Int("threads", 0, "nn kernel worker shards per model (0 = NumCPU or PYTHIA_THREADS, 1 = serial; results are identical for any value)")
		outPath   = flag.String("o", "", "also append output to this file")
		faultPlan = flag.String("fault-plan", "", "deterministic fault-injection plan for every replay, e.g. prefetch=0.05,exec=0.01 (empty = none; ext-chaos sweeps its own plans)")
		faultSeed = flag.Uint64("fault-seed", 1, "fault-injection PRNG seed")
	)
	flag.Parse()

	if *list {
		for _, id := range pythia.ExperimentNames() {
			fmt.Println(id)
		}
		return
	}

	cfg := pythia.DefaultExperimentConfig()
	if *fast {
		cfg = pythia.FastExperimentConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *perTpl > 0 {
		cfg.PerTemplate = *perTpl
	}
	if *imdbN > 0 {
		cfg.IMDBInstances = *imdbN
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	cfg.Model.Threads = *threads
	plan, err := fault.ParsePlan(*faultPlan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-experiments:", err)
		os.Exit(1)
	}
	cfg.FaultPlan = plan
	cfg.FaultSeed = *faultSeed

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	ids := pythia.ExperimentNames()
	if *expList != "all" {
		ids = strings.Split(*expList, ",")
	}

	suite := pythia.NewExperiments(cfg)
	fmt.Fprintf(out, "pythia-experiments: scale=%d instances/template=%d imdb=%d seed=%d fault=%s\n\n",
		cfg.Scale, cfg.PerTemplate, cfg.IMDBInstances, cfg.Seed, cfg.FaultPlan)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		tab, err := suite.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, tab.String())
		fmt.Fprintf(out, "(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
