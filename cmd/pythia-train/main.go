// Command pythia-train trains Pythia's models for one workload template and
// reports prediction quality and speedup on the held-out unseen queries —
// the end-to-end lifecycle of §3 and §5.1 in one command.
//
// Usage:
//
//	pythia-train -template t91 -sf 40 -n 120
//	pythia-train -workload imdb1a -n 60
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/pythia-db/pythia"
)

func main() {
	var (
		template = flag.String("template", "t91", "DSB template (t18, t19, t91) or imdb1a via -workload")
		workload = flag.String("workload", "", "set to imdb1a to use the IMDB workload instead of DSB")
		sf       = flag.Int("sf", 40, "scale factor")
		n        = flag.Int("n", 120, "query instances (paper: 1000 per DSB template)")
		testFrac = flag.Float64("test-frac", 0.1, "held-out fraction of unseen queries (paper: 0.05)")
		seed     = flag.Uint64("seed", 7, "seed")
		threads  = flag.Int("threads", 0, "nn kernel worker shards per model (0 = NumCPU or PYTHIA_THREADS, 1 = serial; results are identical for any value)")
	)
	flag.Parse()

	var (
		db   *pythia.Database
		name string
		w    *pythia.Workload
	)
	start := time.Now()
	if *workload == "imdb1a" {
		gen := pythia.NewIMDB(pythia.IMDBConfig{Scale: *sf, Seed: *seed})
		db, name = gen.DB(), "imdb1a"
		w = gen.Workload(*n, *seed+1)
	} else {
		gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: *sf, Seed: *seed})
		db, name = gen.DB(), *template
		w = gen.Workload(*template, *n, *seed+1)
	}
	fmt.Printf("workload %s: %d instances executed and traced in %s\n",
		name, len(w.Instances), time.Since(start).Round(time.Millisecond))

	train, test := w.Split(*testFrac, *seed+2)
	fmt.Printf("split: %d train / %d unseen test queries\n", len(train), len(test))

	cfg := pythia.DefaultConfig()
	cfg.Predictor.Model.Threads = *threads
	sys := pythia.New(db, cfg)
	start = time.Now()
	tw := sys.Train(name, train)
	fmt.Printf("trained %d models (%d parameters, vocab %d) in %s\n",
		len(tw.Pred.Models()), tw.Pred.ParamCount(), tw.Pred.VocabSize(),
		time.Since(start).Round(time.Millisecond))

	var sumF1, sumSp float64
	for _, inst := range test {
		pred := sys.Prefetch(inst)
		f1 := pythia.F1(pred, inst.Pages)
		sp := sys.SpeedupColdCache(inst, sys.Prefetch)
		sumF1 += f1
		sumSp += sp
		fmt.Printf("  unseen query %s#%d: predicted %d pages, truth %d, F1 %.3f, speedup %.2fx\n",
			inst.Query.Template, inst.Query.Instance, len(pred), len(inst.Pages), f1, sp)
	}
	if len(test) == 0 {
		fmt.Fprintln(os.Stderr, "pythia-train: no test queries (raise -n or -test-frac)")
		os.Exit(1)
	}
	fmt.Printf("mean over %d unseen queries: F1 %.3f, speedup %.2fx\n",
		len(test), sumF1/float64(len(test)), sumSp/float64(len(test)))
}
