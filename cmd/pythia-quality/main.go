// Command pythia-quality replays DSB workloads through the online quality
// scorer and reports prediction quality against ground truth: per-query and
// per-workload precision/recall/coverage/wasted-prefetch, the drift
// detector's verdict against the training-time baseline, and the baseline
// identity the verdict was measured against. Output is a text report plus a
// BENCH_quality.json document shaped for CI trend tracking.
//
// Two mixes drive the two interesting cases:
//
//   - Training mix (default): replay the held-out split of the same
//     templates the models trained on. Precision/recall measure model
//     quality; drift must stay "ok".
//
//     pythia-quality -templates t91 -sf 8 -n 40
//
//   - Held-out mix (-replay differs from -templates): replay templates the
//     baseline never saw. The drift alarm must fire — this is the CLI face
//     of the deterministic-drift acceptance test.
//
//     pythia-quality -templates t18 -replay t91 -fail-on-drift-alarm=false
//
// Gates for CI: -min-precision / -min-recall fail the run when the total
// set scores fall below the floor; -fail-on-drift-alarm fails it when the
// detector ends in (or ever reached) alarm.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/obs"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/workload"
)

func main() {
	var (
		templates = flag.String("templates", "t91", "comma-separated DSB templates to train on")
		replayTpl = flag.String("replay", "", "comma-separated templates to replay and score (empty = held-out split of -templates; a disjoint mix exercises the drift alarm)")
		sf        = flag.Int("sf", 8, "scale factor")
		n         = flag.Int("n", 40, "query instances per template")
		testFrac  = flag.Float64("test-frac", 0.3, "held-out fraction of each training workload replayed when -replay is empty")
		seed      = flag.Uint64("seed", 7, "seed")
		threads   = flag.Int("threads", 1, "nn kernel worker shards per model")
		snapshot  = flag.String("snapshot", "", "load a model snapshot instead of training (baseline identity comes from the envelope)")
		out       = flag.String("out", "BENCH_quality.json", "JSON report path (empty = text only)")

		minPrecision = flag.Float64("min-precision", -1, "fail (exit nonzero) if total set precision falls below this floor (negative = no gate)")
		minRecall    = flag.Float64("min-recall", -1, "fail (exit nonzero) if total set recall falls below this floor (negative = no gate)")
		failOnAlarm  = flag.Bool("fail-on-drift-alarm", false, "fail (exit nonzero) if the drift detector ever reached alarm")
	)
	flag.Parse()

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})

	var counters obs.Counters
	scorer := quality.NewScorer(quality.Options{})
	cfg := corepythia.DefaultConfig()
	cfg.Predictor.Model.Threads = *threads
	cfg.Recorder = &counters
	cfg.Quality = scorer
	cfg, err := cfg.Normalize()
	if err != nil {
		log.Fatalf("pythia-quality: %v", err)
	}

	// Train (or load) the system, then arm drift detection against its
	// training-time baseline before anything replays.
	var sys *corepythia.System
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			log.Fatalf("pythia-quality: %v", err)
		}
		sys, err = corepythia.LoadSystem(gen.DB(), cfg, f)
		f.Close()
		if err != nil {
			log.Fatalf("pythia-quality: loading %s: %v", *snapshot, err)
		}
		log.Printf("loaded snapshot %s (%d workloads)", *snapshot, len(sys.Workloads()))
	} else {
		sys = corepythia.New(gen.DB(), cfg)
	}

	// held-out test splits per training template, replayed when -replay is
	// empty so scores measure generalization, not memorization.
	heldOut := map[string][]*workload.Instance{}
	for _, tpl := range splitList(*templates) {
		w := gen.Workload(tpl, *n, *seed+1)
		train, test := w.Split(*testFrac, *seed+2)
		heldOut[tpl] = test
		if *snapshot == "" {
			start := time.Now()
			sys.Train(tpl, train)
			log.Printf("trained %s on %d instances in %s", tpl, len(train), time.Since(start).Round(time.Millisecond))
		}
	}
	scorer.SetBaseline(sys.Baseline())

	// Assemble the replay mix: held-out splits of the training templates by
	// default, or full corpora of an explicit (possibly disjoint) -replay mix.
	var insts []*workload.Instance
	mix := splitList(*replayTpl)
	if len(mix) == 0 {
		for _, tpl := range splitList(*templates) {
			insts = append(insts, heldOut[tpl]...)
		}
	} else {
		for _, tpl := range mix {
			insts = append(insts, gen.Workload(tpl, *n, *seed+1).Instances...)
		}
	}
	if len(insts) == 0 {
		log.Fatal("pythia-quality: empty replay mix (raise -n or -test-frac)")
	}

	res := sys.Run(insts, nil, sys.Prefetch)
	report := scorer.Report()
	reconcile(report, &counters)

	doc := qualityDoc{
		Benchmark: "pythia-quality",
		Templates: *templates,
		Replay:    *replayTpl,
		Scale:     *sf,
		Instances: *n,
		Seed:      *seed,
		Replayed:  len(res.Queries),
		Baseline:  sys.BaselineID(),
		Report:    report,
	}
	printReport(doc)
	if *out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("pythia-quality: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("pythia-quality: %v", err)
		}
		log.Printf("wrote %s", *out)
	}

	gateFailed := false
	if *minPrecision >= 0 && report.Total.Precision < *minPrecision {
		log.Printf("GATE BREACH: total precision %.4f < -min-precision %g", report.Total.Precision, *minPrecision)
		gateFailed = true
	}
	if *minRecall >= 0 && report.Total.Recall < *minRecall {
		log.Printf("GATE BREACH: total recall %.4f < -min-recall %g", report.Total.Recall, *minRecall)
		gateFailed = true
	}
	if *failOnAlarm && (report.Drift.Alarms > 0 || report.Drift.State == quality.DriftAlarm.String()) {
		log.Printf("GATE BREACH: drift alarm fired (state %s, %d alarms, score %.4f)",
			report.Drift.State, report.Drift.Alarms, report.Drift.Score)
		gateFailed = true
	}
	if gateFailed {
		log.Fatal("pythia-quality: quality gate breached (see GATE BREACH lines above)")
	}
}

// qualityDoc is the whole BENCH_quality.json document: run parameters, the
// baseline identity, and the scorer's full report (per-query rows included,
// so CI diffs can drill down without rerunning).
type qualityDoc struct {
	Benchmark string                 `json:"benchmark"`
	Templates string                 `json:"templates"`
	Replay    string                 `json:"replay_templates,omitempty"`
	Scale     int                    `json:"scale_factor"`
	Instances int                    `json:"instances_per_template"`
	Seed      uint64                 `json:"seed"`
	Replayed  int                    `json:"queries_replayed"`
	Baseline  *corepythia.BaselineID `json:"baseline,omitempty"`
	Report    *quality.Report        `json:"report"`
}

// reconcile cross-checks the scorer's event totals against the obs counters
// that observed the same replay — the 1:1 identity the reconciliation test
// pins, enforced here on every CLI run so a report that would lie fails loud.
func reconcile(r *quality.Report, c *obs.Counters) {
	ev := r.Total.Events
	identities := []struct {
		name   string
		scorer uint64
		kind   obs.Kind
	}{
		{"prefetched", ev.Prefetched, obs.PrefetchedIn},
		{"useful", ev.Useful, obs.PrefetchHit},
		{"wasted", ev.Wasted, obs.PrefetchWasted},
		{"fallback_sync_reads", ev.Fallbacks, obs.FallbackSyncRead},
		{"buffer_misses", ev.BufferMisses, obs.BufferMiss},
	}
	for _, id := range identities {
		if got := c.Get(id.kind); id.scorer != got {
			log.Fatalf("pythia-quality: reconciliation failure: scorer %s total %d != obs counter %d",
				id.name, id.scorer, got)
		}
	}
}

// printReport renders the aligned text view: one row per workload, the
// total, and the drift verdict.
func printReport(doc qualityDoc) {
	r := doc.Report
	fmt.Printf("%-10s %8s %10s %8s %10s %8s %11s %9s %8s\n",
		"workload", "queries", "precision", "recall", "coverage", "wasted", "prefetched", "useful", "fallback")
	rows := append([]quality.WorkloadReport{}, r.Workloads...)
	rows = append(rows, r.Total)
	for _, w := range rows {
		name := w.Workload
		if name == "" {
			name = "(fallback)"
		}
		fmt.Printf("%-10s %8d %10.4f %8.4f %10.4f %8.4f %11d %9d %8d\n",
			name, w.Queries, w.Precision, w.Recall, w.Coverage, w.WastedRatio,
			w.Events.Prefetched, w.Events.Useful, w.Events.Fallbacks)
	}
	fmt.Printf("drift: state=%s score=%.4f evaluations=%d warnings=%d alarms=%d recoveries=%d\n",
		r.Drift.State, r.Drift.Score, r.Drift.Evaluations, r.Drift.Warnings, r.Drift.Alarms, r.Drift.Recoveries)
	if doc.Baseline != nil {
		fmt.Printf("baseline: hash=%s plans=%d workloads=%d train_time=%s\n",
			doc.Baseline.Hash, doc.Baseline.Plans, doc.Baseline.Workloads, doc.Baseline.TrainTime.Round(time.Millisecond))
	}
}

// splitList splits a comma-separated flag into trimmed non-empty parts.
func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}
