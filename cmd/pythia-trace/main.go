// Command pythia-trace makes one query's life visible: it plans a template
// instance, prints the EXPLAIN-style physical plan, the Algorithm 2 token
// serialization, the raw access-script statistics, and the processed
// (Algorithm 1) per-object trace that Pythia trains on.
//
// Usage:
//
//	pythia-trace -template t91 -sf 20 -instance 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/exec"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/trace"
)

func main() {
	var (
		template = flag.String("template", "t91", "DSB template (t18, t19, t91)")
		sf       = flag.Int("sf", 20, "scale factor")
		seed     = flag.Uint64("seed", 7, "seed")
		instance = flag.Int("instance", 0, "which generated instance to trace")
	)
	flag.Parse()

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	queries := gen.Queries(*template, *instance+1, *seed+1)
	q := queries[*instance]

	pl := plan.NewPlanner(gen.DB())
	root, err := pl.Plan(q)
	if err != nil {
		log.Fatalf("pythia-trace: %v", err)
	}

	fmt.Printf("=== %s instance %d ===\n\n", *template, *instance)
	fmt.Println("physical plan:")
	fmt.Println(root.Display())

	fmt.Println("serialized plan (Algorithm 2):")
	toks := serialize.Serialize(root, serialize.DefaultConfig())
	fmt.Println(" ", strings.Join(toks, " "))
	fmt.Printf("  (%d tokens)\n\n", len(toks))

	res := exec.Run(root)
	st := trace.ComputeStats(res.Requests)
	fmt.Printf("execution: %d output rows, %d page requests\n", res.Rows, len(res.Requests))
	fmt.Printf("  sequential requests:       %d\n", st.SeqRequests)
	fmt.Printf("  non-sequential requests:   %d (%d distinct)\n\n", st.NonSeqRequests, st.DistinctNonSeq)

	processed := trace.Process(res.Requests)
	fmt.Println("processed trace (Algorithm 1 — per object, sorted offsets):")
	for _, obj := range gen.DB().Registry.Objects() {
		pages := processed.Object(obj.ID)
		if len(pages) == 0 {
			continue
		}
		preview := ""
		for i, p := range pages {
			if i == 12 {
				preview += " ..."
				break
			}
			preview += fmt.Sprintf(" %d", p)
		}
		fmt.Printf("  %-45s (%s, %4d pages):%s\n", obj.Name, obj.Kind, len(pages), preview)
	}
}
