// Command pythia-timeline replays a workload with span tracing on and emits
// the execution timeline two ways: Chrome trace-event JSON (open it at
// https://ui.perfetto.dev) and a per-query / per-object stall-attribution
// report on stdout — where the virtual time went (blocked on disk, copying
// from the OS cache) and how much disk time asynchronous prefetching hid.
//
//	pythia-timeline -template t91 -sf 4 -n 8 -mode oracle -out t91.trace.json
//
// Not to be confused with pythia-trace, which EXPLAINs one query's Algorithm
// 1/2 artifacts (plan tree, tokens, access trace). pythia-trace answers
// "which pages will this query touch"; pythia-timeline answers "where did
// the replay's time go".
//
// Modes:
//
//	oracle  prefetch each query's exact non-sequential page set (the ORCL
//	        baseline — no training, fast; isolates replay mechanics)
//	pythia  train on -train instances, then prefetch model predictions
//	none    default execution, no prefetching (the DFLT baseline)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/obs"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

func main() {
	var (
		template = flag.String("template", "t91", "DSB template to replay (t18, t19, t91)")
		sf       = flag.Int("sf", 4, "scale factor")
		seed     = flag.Uint64("seed", 7, "generator seed")
		n        = flag.Int("n", 8, "queries to replay")
		mode     = flag.String("mode", "oracle", "prefetch strategy: oracle, pythia, or none")
		train    = flag.Int("train", 40, "training instances (pythia mode only)")
		window   = flag.Int("window", 1024, "readahead window R (pinned prefetched pages)")
		out      = flag.String("out", "pythia.trace.json", "Perfetto trace output path (empty = skip)")
		report   = flag.Bool("report", true, "print the stall-attribution report")
	)
	flag.Parse()

	gen := dsb.NewGenerator(dsb.Config{ScaleFactor: *sf, Seed: *seed})
	cfg := corepythia.DefaultConfig()
	cfg.Window = *window
	tracer := span.New()
	cfg.Tracer = tracer
	counters := &obs.Counters{}
	cfg.Recorder = counters
	sys := corepythia.New(gen.DB(), cfg)

	var strategy corepythia.PrefetchFunc
	switch *mode {
	case "oracle":
		// The ORCL baseline: the query's own processed trace is the
		// prediction. No model, so the timeline isolates replay mechanics.
		strategy = func(inst *workload.Instance) []storage.PageID { return inst.Pages }
	case "pythia":
		log.Printf("training %s (%d instances)...", *template, *train)
		tw := gen.Workload(*template, *train, *seed+1)
		sys.Train(*template, tw.Instances)
		strategy = sys.Prefetch
	case "none":
		strategy = nil
	default:
		log.Fatalf("pythia-timeline: unknown -mode %q (want oracle, pythia, or none)", *mode)
	}

	w := gen.Workload(*template, *n, *seed+2)
	insts := w.Instances
	log.Printf("replaying %d %s queries (mode %s, window %d)...", len(insts), *template, *mode, *window)
	res := sys.Run(insts, nil, strategy)
	log.Printf("replay done: %v total virtual time, %d spans recorded", res.TotalElapsed(), tracer.Len())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("pythia-timeline: %v", err)
		}
		if err := span.ExportChrome(f, tracer.Spans()); err != nil {
			log.Fatalf("pythia-timeline: exporting trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("pythia-timeline: %v", err)
		}
		log.Printf("wrote %s (load it at https://ui.perfetto.dev)", *out)
	}

	if *report {
		rep := span.BuildReport(tracer.Spans())
		reg := gen.DB().Registry
		err := rep.WriteText(os.Stdout, func(id storage.ObjectID) string {
			if obj := reg.Lookup(id); obj != nil {
				return obj.Name
			}
			return ""
		})
		if err != nil {
			log.Fatalf("pythia-timeline: %v", err)
		}
		fmt.Printf("\nobs reconciliation: disk_read=%d prefetch_hit=%d oscache_hit=%d\n",
			counters.Get(obs.DiskRead), counters.Get(obs.PrefetchHit), counters.Get(obs.OSCacheHit))
	}
}
