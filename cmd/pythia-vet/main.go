// Command pythia-vet runs the repo's custom static-analysis suite: detclock
// (no wall clock or global math/rand in deterministic packages), mapiter (no
// output-reaching map iteration there), noalloc (//pythia:noalloc functions
// must not allocate per call), errdiscard (Plan/Build/Normalize errors must
// be handled), lockorder (one global mutex order, no re-entrant Lock),
// atomicfield (no plain access to atomically accessed fields), goleak
// (every go statement provably bounded), and metricsdrift (Prometheus
// families and obs.Kind names in sync with the goldens). See DESIGN.md
// "Static invariants".
//
// Usage:
//
//	go run ./cmd/pythia-vet ./...        # whole module (what CI runs)
//	go run ./cmd/pythia-vet ./internal/sim ./internal/replay/...
//	go run ./cmd/pythia-vet -selfcheck   # run the analyzer fixture suite
//	go run ./cmd/pythia-vet -json ./...  # machine-readable diagnostics
//	go run ./cmd/pythia-vet -gha ./...   # GitHub ::error annotations
//
// -timing <file> writes a per-analyzer wall-time table (markdown; "-" for
// stdout) so CI can publish lint cost in the job summary.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/pythia-db/pythia/internal/analysis"
)

func main() {
	selfcheck := flag.Bool("selfcheck", false, "run the analyzer suite over its own golden fixtures and exit")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	gha := flag.Bool("gha", false, "emit diagnostics as GitHub Actions ::error annotations")
	timing := flag.String("timing", "", "write a per-analyzer timing table (markdown) to this file, or - for stdout")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, module, err := analysis.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	if *selfcheck {
		os.Exit(runSelfcheck(root, module))
	}

	paths, err := resolvePatterns(root, module, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader(root, module)
	var diags []analysis.Diagnostic
	elapsed := make(map[string]time.Duration, len(analysis.All))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		pkg.Deterministic = analysis.IsDeterministic(module, path)
		for _, a := range analysis.All {
			start := time.Now()
			diags = append(diags, a.Analyze(pkg)...)
			elapsed[a.Name] += time.Since(start)
		}
	}
	analysis.SortDiagnostics(diags)

	if *timing != "" {
		if err := writeTiming(*timing, elapsed, len(paths)); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, cwd, diags); err != nil {
			fatal(err)
		}
	case *gha:
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=pythia-vet %s::%s\n",
				relName(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, ghaEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relName(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape of -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders diagnostics as one JSON array ([] when clean).
func writeJSON(w *os.File, base string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relName(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeTiming renders the per-analyzer wall-time table CI appends to the
// job summary.
func writeTiming(dest string, elapsed map[string]time.Duration, pkgs int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### pythia-vet timing (%d packages)\n\n", pkgs)
	b.WriteString("| analyzer | wall time |\n|---|---|\n")
	var total time.Duration
	for _, a := range analysis.All {
		fmt.Fprintf(&b, "| %s | %s |\n", a.Name, elapsed[a.Name].Round(time.Microsecond))
		total += elapsed[a.Name]
	}
	fmt.Fprintf(&b, "| **total** | **%s** |\n", total.Round(time.Microsecond))
	if dest == "-" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(dest, []byte(b.String()), 0o644)
}

// relName shortens filename relative to base when it stays inside it.
func relName(base, filename string) string {
	if rel, err := filepath.Rel(base, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// ghaEscape encodes the characters GitHub workflow commands reserve.
func ghaEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// resolvePatterns expands the command-line package patterns ("./...",
// "./dir/...", "./dir", or bare module-relative paths) into import paths.
func resolvePatterns(root, module, cwd string, args []string) ([]string, error) {
	loader := analysis.NewLoader(root, module)
	all, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		recursive := false
		if arg == "all" {
			arg = "./..."
		}
		if strings.HasSuffix(arg, "/...") || arg == "..." {
			recursive = true
			arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if arg == "" {
				arg = "."
			}
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pythia-vet: %s is outside module %s", arg, module)
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		if !recursive {
			add(path)
			continue
		}
		for _, p := range all {
			if p == path || strings.HasPrefix(p, path+"/") || path == module {
				add(p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// runSelfcheck runs the fixture suite and reports per-fixture results.
func runSelfcheck(root, module string) int {
	reports, err := analysis.RunFixtures(root, module, filepath.Join(root, "internal", "analysis", "testdata"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-vet: selfcheck:", err)
		return 2
	}
	failed := 0
	for _, r := range reports {
		if len(r.Problems) == 0 {
			fmt.Printf("ok   fixture %s\n", r.Name)
			continue
		}
		failed++
		fmt.Printf("FAIL fixture %s\n", r.Name)
		for _, p := range r.Problems {
			fmt.Printf("     %s\n", p)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: selfcheck: %d fixture(s) failed\n", failed)
		return 1
	}
	fmt.Printf("selfcheck: %d fixtures ok\n", len(reports))
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-vet:", err)
	os.Exit(2)
}
