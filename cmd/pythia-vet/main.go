// Command pythia-vet runs the repo's custom static-analysis suite: detclock
// (no wall clock or global math/rand in deterministic packages), mapiter (no
// output-reaching map iteration there), noalloc (//pythia:noalloc functions
// must not allocate per call), and errdiscard (Plan/Build/Normalize errors
// must be handled). See DESIGN.md "Static invariants".
//
// Usage:
//
//	go run ./cmd/pythia-vet ./...        # whole module (what CI runs)
//	go run ./cmd/pythia-vet ./internal/sim ./internal/replay/...
//	go run ./cmd/pythia-vet -selfcheck   # run the analyzer fixture suite
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/pythia-db/pythia/internal/analysis"
)

func main() {
	selfcheck := flag.Bool("selfcheck", false, "run the analyzer suite over its own golden fixtures and exit")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, module, err := analysis.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	if *selfcheck {
		os.Exit(runSelfcheck(root, module))
	}

	paths, err := resolvePatterns(root, module, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader(root, module)
	var diags []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		pkg.Deterministic = analysis.IsDeterministic(module, path)
		diags = append(diags, analysis.RunAll(pkg)...)
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// resolvePatterns expands the command-line package patterns ("./...",
// "./dir/...", "./dir", or bare module-relative paths) into import paths.
func resolvePatterns(root, module, cwd string, args []string) ([]string, error) {
	loader := analysis.NewLoader(root, module)
	all, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		recursive := false
		if arg == "all" {
			arg = "./..."
		}
		if strings.HasSuffix(arg, "/...") || arg == "..." {
			recursive = true
			arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if arg == "" {
				arg = "."
			}
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pythia-vet: %s is outside module %s", arg, module)
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		if !recursive {
			add(path)
			continue
		}
		for _, p := range all {
			if p == path || strings.HasPrefix(p, path+"/") || path == module {
				add(p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// runSelfcheck runs the fixture suite and reports per-fixture results.
func runSelfcheck(root, module string) int {
	reports, err := analysis.RunFixtures(root, module, filepath.Join(root, "internal", "analysis", "testdata"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-vet: selfcheck:", err)
		return 2
	}
	failed := 0
	for _, r := range reports {
		if len(r.Problems) == 0 {
			fmt.Printf("ok   fixture %s\n", r.Name)
			continue
		}
		failed++
		fmt.Printf("FAIL fixture %s\n", r.Name)
		for _, p := range r.Problems {
			fmt.Printf("     %s\n", p)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: selfcheck: %d fixture(s) failed\n", failed)
		return 1
	}
	fmt.Printf("selfcheck: %d fixtures ok\n", len(reports))
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-vet:", err)
	os.Exit(2)
}
