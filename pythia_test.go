package pythia_test

import (
	"bytes"
	"testing"

	"github.com/pythia-db/pythia"
)

// TestPublicAPI exercises the facade end to end at tiny scale: build,
// trace, train, predict, score, replay, persist.
func TestPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end API test in -short mode")
	}
	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 6, Seed: 7})
	w := gen.Workload("t91", 30, 1)
	if len(w.Instances) != 30 {
		t.Fatalf("workload built %d instances", len(w.Instances))
	}
	train, test := w.Split(0.1, 3)

	sys := pythia.New(gen.DB(), pythia.DefaultConfig())
	tw := sys.Train("t91", train)
	if tw.Pred.ParamCount() <= 0 {
		t.Fatal("no parameters trained")
	}

	sawPages := false
	for _, q := range test {
		pages := sys.Prefetch(q)
		if len(pages) > 0 {
			sawPages = true
		}
		f1 := pythia.F1(pages, q.Pages)
		if f1 < 0 || f1 > 1 {
			t.Fatalf("F1 out of range: %f", f1)
		}
		if sp := sys.SpeedupColdCache(q, sys.Prefetch); sp <= 0 {
			t.Fatalf("speedup %f", sp)
		}
		// Baselines compose with the same PrefetchFunc shape.
		if sp := sys.SpeedupColdCache(q, pythia.Oracle); sp < 1 {
			t.Fatalf("oracle slowdown: %f", sp)
		}
	}
	if !sawPages {
		t.Fatal("no test query produced predictions")
	}

	// Persistence round-trips through the facade types.
	var buf bytes.Buffer
	if err := sys.SaveWorkload("t91", &buf); err != nil {
		t.Fatal(err)
	}
	sys2 := pythia.New(gen.DB(), pythia.DefaultConfig())
	if _, err := sys2.LoadWorkload(&buf); err != nil {
		t.Fatal(err)
	}
	for _, q := range test[:1] {
		a, b := sys.Prefetch(q), sys2.Prefetch(q)
		if len(a) != len(b) {
			t.Fatal("loaded system predicts differently")
		}
	}
}

func TestFacadeConstructors(t *testing.T) {
	if cfg := pythia.DefaultConfig(); cfg.Window == 0 && cfg.PrefetchBufferFraction == 0 {
		t.Fatal("default config empty")
	}
	if pc := pythia.PaperModelConfig(); pc.Dim != 100 || pc.Heads != 10 {
		t.Fatalf("paper config wrong: %+v", pc)
	}
	if len(pythia.ExperimentNames()) < 21 {
		t.Fatal("experiment registry incomplete")
	}
	if gen := pythia.NewIMDB(pythia.IMDBConfig{Scale: 5, Seed: 1}); gen.CastInfo() == nil {
		t.Fatal("IMDB generator broken")
	}
}
