package pythia_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/pythia-db/pythia"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. One benchmark per artifact; each prints its result table the
// first time it runs, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation and its numbers. Set PYTHIA_BENCH=full to
// run at the default (paper-shaped) scale instead of the CI scale.
var (
	suiteOnce  sync.Once
	benchSuite *pythia.ExperimentSuite
	printed    sync.Map
)

func sharedSuite() *pythia.ExperimentSuite {
	suiteOnce.Do(func() {
		cfg := pythia.FastExperimentConfig()
		if os.Getenv("PYTHIA_BENCH") == "full" {
			cfg = pythia.DefaultExperimentConfig()
		}
		benchSuite = pythia.NewExperiments(cfg)
	})
	return benchSuite
}

// runExperiment executes an experiment once per benchmark iteration and
// reports the key figure-of-merit metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]string) {
	b.Helper()
	s := sharedSuite()
	var tab *pythia.ResultTable
	for i := 0; i < b.N; i++ {
		t, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	if _, dup := printed.LoadOrStore(id, true); !dup {
		fmt.Println(tab.String())
	}
	for name, key := range metrics {
		if tab.Has(key[0], key[1]) {
			b.ReportMetric(tab.Get(key[0], key[1]), name)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", map[string][2]string{
		"t91-plans": {"t91", "plans"},
		"t18-plans": {"t18", "plans"},
	})
}

func BenchmarkFigure1(b *testing.B) {
	runExperiment(b, "fig1", map[string][2]string{
		"t91-nonseq-speedup": {"t91", "nonseq"},
		"t91-seq-speedup":    {"t91", "seq"},
	})
}

func BenchmarkFigure5(b *testing.B) {
	runExperiment(b, "fig5", map[string][2]string{
		"t91-pythia-f1": {"t91", "pythia"},
		"t91-nn-f1":     {"t91", "nn"},
	})
}

func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "fig6", map[string][2]string{
		"t91-pythia-speedup": {"t91", "pythia"},
		"t91-orcl-speedup":   {"t91", "orcl"},
	})
}

func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "fig7", map[string][2]string{
		"t18-high-f1": {"t18", "high"},
	})
}

func BenchmarkFigure8(b *testing.B) {
	runExperiment(b, "fig8", map[string][2]string{
		"t18-high-speedup": {"t18", "high"},
	})
}

func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, "fig9", map[string][2]string{
		"pythia-f1":        {"pythia", "f1"},
		"seq32-f1":         {"seq-raw-32", "f1"},
		"seq32-infer1M-s":  {"seq-raw-32", "infer1m"},
		"pythia-infer1M-s": {"pythia", "infer1m"},
	})
}

func BenchmarkFigure10(b *testing.B) {
	runExperiment(b, "fig10", map[string][2]string{
		"t91-high-f1": {"t91", "high"},
	})
}

func BenchmarkFigure11(b *testing.B) {
	runExperiment(b, "fig11", map[string][2]string{
		"t91-high-speedup": {"t91", "high"},
	})
}

func BenchmarkFigure12a(b *testing.B) {
	runExperiment(b, "fig12a", map[string][2]string{
		"sf25-f1":  {"SF25", "f1"},
		"sf100-f1": {"SF100", "f1"},
	})
}

func BenchmarkFigure12b(b *testing.B) {
	runExperiment(b, "fig12b", map[string][2]string{
		"10pct-f1":  {"10%", "f1"},
		"100pct-f1": {"100%", "f1"},
	})
}

func BenchmarkFigure12c(b *testing.B) {
	runExperiment(b, "fig12c", map[string][2]string{
		"homogeneous-t18-f1":   {"homogeneous", "t18"},
		"heterogeneous-t18-f1": {"heterogeneous", "t18"},
	})
}

func BenchmarkFigure12d(b *testing.B) {
	runExperiment(b, "fig12d", map[string][2]string{
		"separate-f1": {"separate", "f1"},
		"combined-f1": {"combined", "f1"},
	})
}

func BenchmarkFigure12e(b *testing.B) {
	runExperiment(b, "fig12e", map[string][2]string{
		"clock-speedup": {"clock", "speedup"},
		"lru-speedup":   {"lru", "speedup"},
		"mru-speedup":   {"mru", "speedup"},
	})
}

func BenchmarkFigure12f(b *testing.B) {
	runExperiment(b, "fig12f", map[string][2]string{
		"quarter-buffer-speedup": {"x0.25", "speedup"},
		"double-buffer-speedup":  {"x2", "speedup"},
	})
}

func BenchmarkFigure12g(b *testing.B) {
	runExperiment(b, "fig12g", map[string][2]string{
		"window16-speedup":   {"16", "speedup"},
		"window1024-speedup": {"1024", "speedup"},
	})
}

func BenchmarkFigure12h(b *testing.B) {
	runExperiment(b, "fig12h", map[string][2]string{
		"top25-speedup": {"top 25%", "speedup"},
		"full-speedup":  {"full", "speedup"},
	})
}

func BenchmarkFigure13a(b *testing.B) {
	runExperiment(b, "fig13a", map[string][2]string{
		"pythia-speedup": {"mean", "pythia"},
		"orcl-speedup":   {"mean", "orcl"},
	})
}

func BenchmarkFigure13b(b *testing.B) {
	runExperiment(b, "fig13b", map[string][2]string{
		"concurrency8-speedup": {"8", "speedup"},
	})
}

func BenchmarkFigure13c(b *testing.B) {
	runExperiment(b, "fig13c", map[string][2]string{
		"concurrency8-speedup": {"8", "speedup"},
	})
}

func BenchmarkFigure13d(b *testing.B) {
	runExperiment(b, "fig13d", map[string][2]string{
		"overlap100-speedup": {"100%", "speedup"},
	})
}

func BenchmarkExtDrift(b *testing.B) {
	runExperiment(b, "ext-drift", map[string][2]string{
		"future-before-f1": {"future-before", "f1"},
		"future-after-f1":  {"future-after", "f1"},
	})
}

func BenchmarkExtSerialization(b *testing.B) {
	runExperiment(b, "ext-serialization", map[string][2]string{
		"multi-resolution-f1": {"multi-resolution (8/32/128)", "f1"},
	})
}

func BenchmarkExtScheduler(b *testing.B) {
	runExperiment(b, "ext-scheduler", map[string][2]string{
		"scheduled-speedup": {"scheduled", "speedup"},
		"scheduled-overlap": {"scheduled", "overlap"},
	})
}

// BenchmarkTrainParallelScaling trains one workload end to end at 1, 2 and
// NumCPU kernel threads. Per-object-model fan-out (Predictor.Parallel) is
// off so the benchmark isolates the intra-kernel sharding; the trained
// parameters are bitwise identical across all thread counts (the kernels'
// determinism contract), so every variant does exactly the same arithmetic.
func BenchmarkTrainParallelScaling(b *testing.B) {
	gen := pythia.NewDSB(pythia.DSBConfig{ScaleFactor: 8, Seed: 7})
	w := gen.Workload("t91", 24, 8)
	for _, threads := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			cfg := pythia.DefaultConfig()
			cfg.Predictor.Parallel = false
			cfg.Predictor.Model.Threads = threads
			for i := 0; i < b.N; i++ {
				sys := pythia.New(gen.DB(), cfg)
				sys.Train("t91", w.Instances)
			}
		})
	}
}
