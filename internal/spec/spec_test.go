package spec

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/plan"
)

func i64(v int64) *int64 { return &v }

func TestToQueryBounds(t *testing.T) {
	q, err := (QuerySpec{
		Fact: "f",
		FactPreds: []Pred{
			{Col: "a", Lo: i64(1), Hi: i64(5)},
			{Col: "b", Lo: i64(10)},
			{Col: "c", Hi: i64(3)},
		},
	}).ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	if q.FactPreds[0] != plan.Between("a", 1, 5) {
		t.Fatalf("between wrong: %+v", q.FactPreds[0])
	}
	if q.FactPreds[1].Hi != math.MaxInt64 || q.FactPreds[1].Lo != 10 {
		t.Fatalf("open-hi wrong: %+v", q.FactPreds[1])
	}
	if q.FactPreds[2].Lo != math.MinInt64 || q.FactPreds[2].Hi != 3 {
		t.Fatalf("open-lo wrong: %+v", q.FactPreds[2])
	}
}

func TestToQueryErrors(t *testing.T) {
	cases := []QuerySpec{
		{},                                 // missing fact
		{Fact: "f", FactPreds: []Pred{{}}}, // predicate without col
		{Fact: "f", FactPreds: []Pred{{Col: "a"}}},                         // no bounds
		{Fact: "f", FactPreds: []Pred{{Col: "a", Lo: i64(9), Hi: i64(1)}}}, // inverted
		{Fact: "f", Dims: []Dim{{Dim: "d"}}},                               // incomplete join
		{Fact: "f", Dims: []Dim{{Dim: "d", FactFK: "k", DimKey: "s", ForceHash: true, ForceIndex: true}}},
	}
	for i, c := range cases {
		if _, err := c.ToQuery(); err == nil {
			t.Fatalf("case %d did not error", i)
		}
	}
}

func TestRoundTripThroughJSON(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	for _, tpl := range g.Templates() {
		orig := g.Queries(tpl, 3, 1)
		for _, q := range orig {
			var buf bytes.Buffer
			if err := FromQuery(q).Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			back, err := decoded.ToQuery()
			if err != nil {
				t.Fatal(err)
			}
			if back.Fact != q.Fact || back.Template != q.Template || len(back.Dims) != len(q.Dims) {
				t.Fatalf("%s: round trip changed structure", tpl)
			}
			for i := range q.FactPreds {
				if back.FactPreds[i] != q.FactPreds[i] {
					t.Fatalf("%s: fact pred %d changed: %+v vs %+v", tpl, i, back.FactPreds[i], q.FactPreds[i])
				}
			}
			for i := range q.Dims {
				if back.Dims[i].Dim != q.Dims[i].Dim || back.Dims[i].ForceIndex != q.Dims[i].ForceIndex {
					t.Fatalf("%s: dim %d changed", tpl, i)
				}
				for j := range q.Dims[i].Preds {
					if back.Dims[i].Preds[j] != q.Dims[i].Preds[j] {
						t.Fatalf("%s: dim pred changed", tpl)
					}
				}
			}
			// The round-tripped query plans to the same shape.
			pl := plan.NewPlanner(g.DB())
			if pl.MustPlan(back).Shape() != pl.MustPlan(q).Shape() {
				t.Fatalf("%s: round trip changed plan shape", tpl)
			}
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"fact":"f","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
