package spec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the serving tier's request
// decoder: Decode and ToQuery must reject garbage with errors, never panic,
// and anything that decodes cleanly must survive an Encode/Decode round
// trip unchanged at the query level.
func FuzzDecode(f *testing.F) {
	f.Add(`{"fact":"store_sales"}`)
	f.Add(`{"fact":"catalog_returns","template":"t91","instance":3,` +
		`"fact_preds":[{"col":"cr_returned_date_sk","lo":10,"hi":90}],` +
		`"dims":[{"dim":"date_dim","fact_fk":"cr_returned_date_sk","dim_key":"d_date_sk",` +
		`"preds":[{"col":"d_year","lo":1,"hi":2}]}]}`)
	f.Add(`{"fact":""}`)
	f.Add(`{"fact":"x","dims":[{"dim":"d","fact_fk":"f","dim_key":"k","force_hash":true,"force_index":true}]}`)
	f.Add(`{"fact":"x","fact_preds":[{"col":"c","lo":5,"hi":1}]}`)
	f.Add(`{"unknown_field":1}`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, in string) {
		qs, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		q, err := qs.ToQuery()
		if err != nil {
			return
		}
		// Valid specs round-trip: Encode → Decode → ToQuery yields the same
		// planner query.
		var buf bytes.Buffer
		if err := FromQuery(q).Encode(&buf); err != nil {
			t.Fatalf("encode of decoded spec failed: %v", err)
		}
		qs2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		q2, err := qs2.ToQuery()
		if err != nil {
			t.Fatalf("re-converted query failed: %v", err)
		}
		if q.Fact != q2.Fact || q.Template != q2.Template ||
			len(q.FactPreds) != len(q2.FactPreds) || len(q.Dims) != len(q2.Dims) {
			t.Fatalf("round trip changed the query:\n%+v\n%+v", q, q2)
		}
	})
}
