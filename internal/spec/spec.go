// Package spec defines a JSON interchange format for query specifications,
// so external tools (and the pythia-serve HTTP service) can submit star-join
// queries without linking the planner: a QuerySpec document maps one-to-one
// onto plan.Query.
//
// Predicates use explicit nullable bounds — {"col":"x","lo":5,"hi":9} is
// 5 ≤ x ≤ 9, omitting lo or hi leaves that side open — which round-trips the
// planner's open-interval sentinels without exposing math.MinInt64 in JSON.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/pythia-db/pythia/internal/plan"
)

// Pred is one predicate in interchange form.
type Pred struct {
	Col string `json:"col"`
	Lo  *int64 `json:"lo,omitempty"`
	Hi  *int64 `json:"hi,omitempty"`
}

// Dim is one dimension join in interchange form.
type Dim struct {
	Dim        string `json:"dim"`
	FactFK     string `json:"fact_fk"`
	DimKey     string `json:"dim_key"`
	Preds      []Pred `json:"preds,omitempty"`
	ForceHash  bool   `json:"force_hash,omitempty"`
	ForceIndex bool   `json:"force_index,omitempty"`
}

// QuerySpec is a star-join query in interchange form.
type QuerySpec struct {
	Template  string `json:"template,omitempty"`
	Instance  int    `json:"instance,omitempty"`
	Fact      string `json:"fact"`
	FactPreds []Pred `json:"fact_preds,omitempty"`
	Dims      []Dim  `json:"dims,omitempty"`
}

func toPlanPred(p Pred) (plan.Pred, error) {
	if p.Col == "" {
		return plan.Pred{}, fmt.Errorf("spec: predicate missing col")
	}
	out := plan.Pred{Col: p.Col, Lo: math.MinInt64, Hi: math.MaxInt64}
	if p.Lo != nil {
		out.Lo = *p.Lo
	}
	if p.Hi != nil {
		out.Hi = *p.Hi
	}
	if p.Lo == nil && p.Hi == nil {
		return plan.Pred{}, fmt.Errorf("spec: predicate on %s has no bounds", p.Col)
	}
	if out.Lo > out.Hi {
		return plan.Pred{}, fmt.Errorf("spec: predicate on %s has lo > hi", p.Col)
	}
	return out, nil
}

func fromPlanPred(p plan.Pred) Pred {
	out := Pred{Col: p.Col}
	if p.Lo != math.MinInt64 {
		lo := p.Lo
		out.Lo = &lo
	}
	if p.Hi != math.MaxInt64 {
		hi := p.Hi
		out.Hi = &hi
	}
	return out
}

// ToQuery converts the interchange form into a planner query.
func (q QuerySpec) ToQuery() (plan.Query, error) {
	if q.Fact == "" {
		return plan.Query{}, fmt.Errorf("spec: query missing fact relation")
	}
	out := plan.Query{Fact: q.Fact, Template: q.Template, Instance: q.Instance}
	for _, p := range q.FactPreds {
		pp, err := toPlanPred(p)
		if err != nil {
			return plan.Query{}, err
		}
		out.FactPreds = append(out.FactPreds, pp)
	}
	for _, d := range q.Dims {
		if d.Dim == "" || d.FactFK == "" || d.DimKey == "" {
			return plan.Query{}, fmt.Errorf("spec: dim join needs dim, fact_fk, dim_key")
		}
		dj := plan.DimJoin{
			Dim: d.Dim, FactFK: d.FactFK, DimKey: d.DimKey,
			ForceHash: d.ForceHash, ForceIndex: d.ForceIndex,
		}
		if d.ForceHash && d.ForceIndex {
			return plan.Query{}, fmt.Errorf("spec: dim %s forces both hash and index", d.Dim)
		}
		for _, p := range d.Preds {
			pp, err := toPlanPred(p)
			if err != nil {
				return plan.Query{}, err
			}
			dj.Preds = append(dj.Preds, pp)
		}
		out.Dims = append(out.Dims, dj)
	}
	return out, nil
}

// FromQuery converts a planner query into interchange form.
func FromQuery(q plan.Query) QuerySpec {
	out := QuerySpec{Fact: q.Fact, Template: q.Template, Instance: q.Instance}
	for _, p := range q.FactPreds {
		out.FactPreds = append(out.FactPreds, fromPlanPred(p))
	}
	for _, d := range q.Dims {
		dj := Dim{
			Dim: d.Dim, FactFK: d.FactFK, DimKey: d.DimKey,
			ForceHash: d.ForceHash, ForceIndex: d.ForceIndex,
		}
		for _, p := range d.Preds {
			dj.Preds = append(dj.Preds, fromPlanPred(p))
		}
		out.Dims = append(out.Dims, dj)
	}
	return out
}

// Decode reads one QuerySpec JSON document.
func Decode(r io.Reader) (QuerySpec, error) {
	var q QuerySpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return QuerySpec{}, fmt.Errorf("spec: %w", err)
	}
	return q, nil
}

// Encode writes the spec as indented JSON.
func (q QuerySpec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(q)
}
