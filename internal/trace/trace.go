// Package trace implements the paper's trace construction and
// post-processing (Algorithm 1, lines 5–13): intercept the page requests a
// query issues, strip sequentially accessed blocks, deduplicate (sibling
// leaves share their root path, so raw traces repeat index pages heavily),
// segregate the remainder per database object, and sort each object's set by
// block offset — the order the prefetcher consumes.
package trace

import (
	"sort"

	"github.com/pythia-db/pythia/internal/storage"
)

// Processed is one query's training-ready trace: for each database object
// accessed non-sequentially, the sorted set of distinct block offsets.
type Processed struct {
	PerObject map[storage.ObjectID][]storage.PageNum
}

// Process applies Algorithm 1's post-processing to a raw request stream.
func Process(reqs []storage.Request) *Processed {
	seen := make(map[storage.PageID]struct{})
	per := make(map[storage.ObjectID][]storage.PageNum)
	for _, r := range reqs {
		if r.Sequential {
			continue // line 8: remove sequential accesses
		}
		if _, dup := seen[r.Page]; dup {
			continue // line 9: deduplicate
		}
		seen[r.Page] = struct{}{}
		per[r.Page.Object] = append(per[r.Page.Object], r.Page.Page) // line 11
	}
	for id := range per {
		p := per[id]
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] }) // line 12
	}
	return &Processed{PerObject: per}
}

// Pages flattens the trace into a single sorted []PageID — the ground-truth
// set used to score predictions (F1) and to compute Jaccard similarities.
func (p *Processed) Pages() []storage.PageID {
	out := make([]storage.PageID, 0, p.Count())
	for id, pages := range p.PerObject {
		for _, n := range pages {
			out = append(out, storage.PageID{Object: id, Page: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Count returns the number of distinct non-sequential pages.
func (p *Processed) Count() int {
	n := 0
	for _, pages := range p.PerObject {
		n += len(pages)
	}
	return n
}

// Object returns the sorted offsets for one object (nil if untouched).
func (p *Processed) Object(id storage.ObjectID) []storage.PageNum {
	return p.PerObject[id]
}

// Stats summarizes a raw request stream; Table 1 reports these per
// workload.
type Stats struct {
	SeqRequests    int // total sequential page requests
	NonSeqRequests int // total non-sequential page requests (with repeats)
	DistinctNonSeq int // distinct non-sequential pages
}

// ComputeStats tallies a raw request stream.
func ComputeStats(reqs []storage.Request) Stats {
	var s Stats
	seen := make(map[storage.PageID]struct{})
	for _, r := range reqs {
		if r.Sequential {
			s.SeqRequests++
			continue
		}
		s.NonSeqRequests++
		if _, dup := seen[r.Page]; !dup {
			seen[r.Page] = struct{}{}
			s.DistinctNonSeq++
		}
	}
	return s
}

// Jaccard computes |a ∩ b| / |a ∪ b| over two sorted PageID slices. Two
// empty sets have similarity 1 (identical behaviour). The paper uses this
// both to characterize workload membership and for the idealized
// nearest-neighbor baseline.
func Jaccard(a, b []storage.PageID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Intersection returns |a ∩ b| for sorted slices; precision/recall use it.
func Intersection(a, b []storage.PageID) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	return inter
}
