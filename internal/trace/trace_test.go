package trace

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

func req(o, n uint32, seq bool) storage.Request {
	return storage.Request{
		Page:       storage.PageID{Object: storage.ObjectID(o), Page: storage.PageNum(n)},
		Sequential: seq,
	}
}

func TestProcessStripsSequential(t *testing.T) {
	p := Process([]storage.Request{
		req(1, 0, true), req(1, 1, true), req(2, 5, false), req(1, 2, true),
	})
	if p.Count() != 1 {
		t.Fatalf("Count = %d, want 1", p.Count())
	}
	if len(p.Object(1)) != 0 {
		t.Fatal("sequential pages leaked into trace")
	}
	if got := p.Object(2); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Object(2) = %v", got)
	}
}

func TestProcessDeduplicates(t *testing.T) {
	// Sibling-leaf pattern: the root path (page 0) repeats per probe.
	p := Process([]storage.Request{
		req(3, 0, false), req(3, 7, false),
		req(3, 0, false), req(3, 8, false),
		req(3, 0, false), req(3, 7, false),
	})
	if got := p.Object(3); len(got) != 3 {
		t.Fatalf("dedup failed: %v", got)
	}
}

func TestProcessSortsByOffset(t *testing.T) {
	p := Process([]storage.Request{
		req(1, 9, false), req(1, 2, false), req(1, 5, false), req(1, 1, false),
	})
	got := p.Object(1)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("trace not sorted: %v", got)
		}
	}
}

func TestProcessSegregatesPerObject(t *testing.T) {
	p := Process([]storage.Request{
		req(1, 3, false), req(2, 3, false), req(1, 4, false),
	})
	if len(p.PerObject) != 2 {
		t.Fatalf("PerObject has %d objects", len(p.PerObject))
	}
	if len(p.Object(1)) != 2 || len(p.Object(2)) != 1 {
		t.Fatal("segregation wrong")
	}
}

func TestPagesFlattensSorted(t *testing.T) {
	p := Process([]storage.Request{
		req(2, 1, false), req(1, 9, false), req(1, 2, false),
	})
	pages := p.Pages()
	if len(pages) != 3 {
		t.Fatalf("Pages = %v", pages)
	}
	for i := 1; i < len(pages); i++ {
		if !pages[i-1].Less(pages[i]) {
			t.Fatalf("Pages not sorted: %v", pages)
		}
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats([]storage.Request{
		req(1, 0, true), req(1, 1, true),
		req(2, 5, false), req(2, 5, false), req(2, 6, false),
	})
	if s.SeqRequests != 2 || s.NonSeqRequests != 3 || s.DistinctNonSeq != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestJaccardBasics(t *testing.T) {
	a := []storage.PageID{{Object: 1, Page: 1}, {Object: 1, Page: 2}}
	b := []storage.PageID{{Object: 1, Page: 2}, {Object: 1, Page: 3}}
	if j := Jaccard(a, b); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %f, want 1/3", j)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self-Jaccard != 1")
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("empty-empty Jaccard != 1")
	}
	if Jaccard(a, nil) != 0 {
		t.Fatal("disjoint Jaccard != 0")
	}
	if Intersection(a, b) != 1 {
		t.Fatal("Intersection wrong")
	}
}

// Property: Jaccard is symmetric, bounded to [0,1], and 1 iff sets are equal.
func TestJaccardProperties(t *testing.T) {
	mkSet := func(r *sim.Rand, n int) []storage.PageID {
		seen := map[storage.PageID]bool{}
		for i := 0; i < n; i++ {
			seen[storage.PageID{Object: 1, Page: storage.PageNum(r.Intn(30))}] = true
		}
		p := Process(nil) // reuse sorting by building via requests
		_ = p
		out := make([]storage.PageID, 0, len(seen))
		for k := range seen {
			out = append(out, k)
		}
		// Sort via Processed machinery: simple insertion sort here.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	if err := quick.Check(func(seed uint64, na, nb uint8) bool {
		r := sim.NewRand(seed)
		a := mkSet(r, int(na%40))
		b := mkSet(r, int(nb%40))
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 || j1 < 0 || j1 > 1 {
			return false
		}
		if j1 == 1 {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Process output is always sorted, duplicate-free, and contains
// exactly the distinct non-sequential pages of the input.
func TestProcessInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		r := sim.NewRand(seed)
		reqs := make([]storage.Request, n)
		want := map[storage.PageID]bool{}
		for i := range reqs {
			reqs[i] = req(uint32(1+r.Intn(3)), uint32(r.Intn(20)), r.Intn(2) == 0)
			if !reqs[i].Sequential {
				want[reqs[i].Page] = true
			}
		}
		p := Process(reqs)
		if p.Count() != len(want) {
			return false
		}
		for id, pages := range p.PerObject {
			for i, pgn := range pages {
				if i > 0 && pages[i-1] >= pgn {
					return false
				}
				if !want[storage.PageID{Object: id, Page: pgn}] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
