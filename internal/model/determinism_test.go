package model

import (
	"testing"

	"github.com/pythia-db/pythia/internal/nn"
)

// TestTrainThreadsDeterminism is the reproducibility contract of the
// parallel kernels at the model level: training the same model with serial
// kernels and with parallel kernels must produce byte-identical parameters,
// because every kernel shards by output ownership and keeps the serial
// per-element accumulation order. Config.Threads documents this test as the
// assertion backing its "results are identical for any value" promise.
func TestTrainThreadsDeterminism(t *testing.T) {
	labels, samples := trainingFixture()
	cfg := smallCfg()
	cfg.Epochs = 8

	train := func(threads int) (float64, map[string][]float64) {
		c := cfg
		c.Threads = threads
		m := New(12, labels, c)
		loss := m.Train(samples)
		return loss, nn.Snapshot(append(m.enc.Params(), m.dec.Params()...))
	}

	refLoss, refSnap := train(1)
	for _, threads := range []int{2, 4, 8} {
		loss, snap := train(threads)
		if loss != refLoss {
			t.Fatalf("threads=%d: loss %v, want %v (bitwise)", threads, loss, refLoss)
		}
		if len(snap) != len(refSnap) {
			t.Fatalf("threads=%d: %d params, want %d", threads, len(snap), len(refSnap))
		}
		for name, want := range refSnap {
			got, ok := snap[name]
			if !ok {
				t.Fatalf("threads=%d: missing param %s", threads, name)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("threads=%d: param %s[%d] = %v, want %v (bitwise)",
						threads, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPredictThreadsDeterminism extends the contract to inference: scores
// from a trained model must be bitwise identical at any thread count.
func TestPredictThreadsDeterminism(t *testing.T) {
	labels, samples := trainingFixture()
	cfg := smallCfg()
	cfg.Epochs = 8

	score := func(threads int) []float64 {
		c := cfg
		c.Threads = threads
		m := New(12, labels, c)
		m.Train(samples)
		return m.Scores([]int{2, 5, 3})
	}

	want := score(1)
	got := score(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %v serial vs %v parallel", i, want[i], got[i])
		}
	}
}
