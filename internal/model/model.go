// Package model implements Pythia's multilabel classifier: a transformer
// encoder over the serialized query plan feeding a feed-forward decoder with
// one output per data block of a database object (paper §3.3, Figure 3).
//
// A Model owns one label space — a list of (object, page) labels. Pythia's
// standard configuration gives each database object its own model; large
// objects are split into page-range partitions with one model each; the
// Figure 12d ablation builds one combined model spanning an index and its
// base table; the Figure 12h ablation restricts the label space to the top-k
// most frequently accessed pages.
package model

import (
	"sort"
	"sync"

	"github.com/pythia-db/pythia/internal/nn"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// Config sizes and trains a model. The paper's configuration is Dim 100,
// Heads 10, Layers 2, DecoderHidden 800; the experiment defaults are scaled
// down to train hundreds of models on CPU in seconds.
type Config struct {
	Dim           int
	Heads         int
	Layers        int
	FFHidden      int // defaults to 4×Dim
	DecoderHidden int
	Epochs        int
	LR            float64
	PosWeight     float64 // BCE positive-class weight (default 2)
	Threshold     float64 // sigmoid cutoff for predicting a page (default 0.5)
	Seed          uint64
	// Threads is the worker-shard count for the nn compute kernels: 0
	// selects the process default (PYTHIA_THREADS or NumCPU), 1 forces
	// serial execution, N shards kernels N ways. Training is bitwise
	// deterministic across all values — the kernels preserve the serial
	// floating-point accumulation order — so Threads is purely a speed
	// knob (asserted by TestTrainThreadsDeterminism).
	Threads int
}

// DefaultConfig returns the scaled-down training configuration used by the
// experiment harness.
func DefaultConfig() Config {
	return Config{
		Dim:           32,
		Heads:         4,
		Layers:        2,
		DecoderHidden: 64,
		Epochs:        50,
		LR:            1e-3,
		PosWeight:     5,
		Threshold:     0.5,
		Seed:          1,
	}
}

// PaperConfig returns the paper's full-size hyperparameters (§5.1).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Dim = 100
	c.Heads = 10
	c.DecoderHidden = 800
	return c
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Heads <= 0 {
		c.Heads = d.Heads
	}
	if c.Layers <= 0 {
		c.Layers = d.Layers
	}
	if c.DecoderHidden <= 0 {
		c.DecoderHidden = d.DecoderHidden
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.PosWeight <= 0 {
		c.PosWeight = d.PosWeight
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	return c
}

// Sample is one training example: the encoded plan tokens and the pages the
// query accessed non-sequentially (any object; the model selects the subset
// in its own label space).
type Sample struct {
	TokenIDs []int
	Pages    []storage.PageID
}

// Model is one trained multilabel classifier over a fixed label space.
type Model struct {
	Labels []storage.PageID // label j ↔ Labels[j]

	cfg      Config
	labelIdx map[storage.PageID]int
	enc      *nn.Encoder
	dec      *nn.Decoder

	// rt carries the model's worker pool and scratch arena. The arena is
	// single-owner, so mu serializes Train/Predict/Scores on one model;
	// distinct models stay fully concurrent (the predictor's fan-out), and
	// the pools all share one process-wide worker set, so concurrent
	// models never oversubscribe the machine.
	rt nn.Runtime
	mu sync.Mutex

	// targetBuf is the reusable 0/1 target vector for training steps.
	targetBuf []float64
}

// New builds an untrained model over the label space for a vocabulary of
// vocabSize tokens. Labels must be non-empty.
func New(vocabSize int, labels []storage.PageID, cfg Config) *Model {
	if len(labels) == 0 {
		panic("model: empty label space")
	}
	cfg = cfg.withDefaults()
	r := sim.NewRand(cfg.Seed)
	m := &Model{
		Labels:   labels,
		cfg:      cfg,
		labelIdx: make(map[storage.PageID]int, len(labels)),
		enc: nn.NewEncoder(nn.EncoderConfig{
			Vocab: vocabSize, Dim: cfg.Dim, Heads: cfg.Heads,
			Layers: cfg.Layers, FFHidden: cfg.FFHidden,
		}, r),
	}
	m.dec = nn.NewDecoder("dec", cfg.Dim, cfg.DecoderHidden, len(labels), r)
	m.rt = nn.Runtime{Pool: nn.NewPool(cfg.Threads), Arena: nn.NewArena()}
	m.enc.SetRuntime(m.rt)
	m.dec.SetRuntime(m.rt)
	// Start every page logit clearly negative: almost all labels are 0 for
	// any one query, so beginning from "predict nothing" lets training
	// spend its gradient budget on the positives instead of first pushing
	// thousands of outputs below threshold.
	for i := range m.dec.L2.Bias.W.Data {
		m.dec.L2.Bias.W.Data[i] = -2
	}
	for i, l := range labels {
		m.labelIdx[l] = i
	}
	return m
}

// ParamCount returns the model's scalar parameter count ("model size").
func (m *Model) ParamCount() int {
	return nn.ParamCount(append(m.enc.Params(), m.dec.Params()...))
}

// targets fills the reusable 0/1 vector for a sample, ignoring pages
// outside the label space (they belong to other models or partitions).
func (m *Model) targets(pages []storage.PageID) []float64 {
	if m.targetBuf == nil {
		m.targetBuf = make([]float64, len(m.Labels))
	}
	t := m.targetBuf
	for i := range t {
		t[i] = 0
	}
	for _, p := range pages {
		if j, ok := m.labelIdx[p]; ok {
			t[j] = 1
		}
	}
	return t
}

// Train runs end-to-end training (encoder and decoder jointly, as in the
// paper) over the samples and returns the final mean epoch loss.
func (m *Model) Train(samples []Sample) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	params := append(m.enc.Params(), m.dec.Params()...)
	opt := nn.NewAdam(m.cfg.LR, params)
	opt.Clip = 5
	// Sum reduction keeps the gradient scale independent of the label-space
	// size, so models over large objects train as fast as small ones.
	bce := nn.BCEWithLogits{PosWeight: m.cfg.PosWeight, Sum: true, Scratch: m.rt.Arena}
	r := sim.NewRand(m.cfg.Seed ^ 0x5eed)

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var epochLoss float64
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		for _, i := range order {
			s := samples[i]
			// Recycle the previous step's activations and scratch: after
			// the first step the forward/backward pass allocates nothing.
			m.rt.Arena.Release()
			opt.ZeroGrad()
			rep := m.enc.Forward(s.TokenIDs)
			logits := m.dec.Forward(rep)
			loss, dLogits := bce.Loss(logits, m.targets(s.Pages))
			epochLoss += loss
			dRep := m.dec.Backward(dLogits)
			m.enc.Backward(dRep)
			opt.Step()
		}
		if len(samples) > 0 {
			epochLoss /= float64(len(samples))
		}
	}
	return epochLoss
}

// Predict runs one-shot inference: the pages whose sigmoid probability
// crosses the threshold, in label (file-storage) order. Safe for
// concurrent callers (inference on one model is serialized; run distinct
// models concurrently for parallel inference, as the predictor does).
func (m *Model) Predict(tokenIDs []int) []storage.PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rt.Arena.Release()
	logits := m.dec.Forward(m.enc.Forward(tokenIDs))
	var out []storage.PageID
	for j, x := range logits.Data {
		if nn.Sigmoid(x) >= m.cfg.Threshold {
			out = append(out, m.Labels[j])
		}
	}
	return out
}

// PredictBatch runs inference for several token sequences in one pass. The
// encoder handles each sequence independently (sequence lengths differ), but
// the decoder — where a model's FLOPs live, via the wide per-page output
// layer — sees all B representations as one B×Dim matrix, so its two
// matmuls run at batch width. Each decoder output row is computed with the
// same k-ascending accumulation order as the 1×Dim case, so results are
// bitwise identical to calling Predict per sequence (asserted by
// TestPredictBatchMatchesPredict).
func (m *Model) PredictBatch(seqs [][]int) [][]storage.PageID {
	out := make([][]storage.PageID, len(seqs))
	if len(seqs) == 0 {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rt.Arena.Release()
	// Encode per sequence, gathering the 1×Dim representations into a B×Dim
	// matrix. reps is allocated before the encoder passes so the arena can
	// recycle their scratch without touching it.
	reps := m.rt.Arena.Get(len(seqs), m.cfg.Dim)
	for i, ids := range seqs {
		copy(reps.Row(i), m.enc.Forward(ids).Row(0))
	}
	logits := m.dec.Forward(reps)
	for i := range seqs {
		var pages []storage.PageID
		for j, x := range logits.Row(i) {
			if nn.Sigmoid(x) >= m.cfg.Threshold {
				pages = append(pages, m.Labels[j])
			}
		}
		out[i] = pages
	}
	return out
}

// Quantize switches the model's linear layers (attention projections, FFN,
// and decoder) to the int8 inference path. Irreversible and inference-only:
// Train on a quantized model panics in the first backward pass.
func (m *Model) Quantize() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, l := range m.enc.Layers {
		l.Attn.Wq.Quantize()
		l.Attn.Wk.Quantize()
		l.Attn.Wv.Quantize()
		l.Attn.Wo.Quantize()
		l.FF.L1.Quantize()
		l.FF.L2.Quantize()
	}
	m.dec.L1.Quantize()
	m.dec.L2.Quantize()
}

// Scores returns the per-label probabilities (diagnostics and tests).
func (m *Model) Scores(tokenIDs []int) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rt.Arena.Release()
	logits := m.dec.Forward(m.enc.Forward(tokenIDs))
	out := make([]float64, len(logits.Data))
	for i, x := range logits.Data {
		out[i] = nn.Sigmoid(x)
	}
	return out
}

// ObjectLabels builds the full label space of one object: every page.
func ObjectLabels(obj *storage.Object) []storage.PageID {
	out := make([]storage.PageID, obj.Pages)
	for i := range out {
		out[i] = storage.PageID{Object: obj.ID, Page: storage.PageNum(i)}
	}
	return out
}

// PartitionLabels splits an object's pages into partitions of at most
// maxPages each — "we split large tables into several smaller partitions and
// then train one model for each" (§3.3).
func PartitionLabels(obj *storage.Object, maxPages int) [][]storage.PageID {
	if maxPages <= 0 {
		return [][]storage.PageID{ObjectLabels(obj)}
	}
	var out [][]storage.PageID
	for start := 0; start < int(obj.Pages); start += maxPages {
		end := start + maxPages
		if end > int(obj.Pages) {
			end = int(obj.Pages)
		}
		part := make([]storage.PageID, 0, end-start)
		for p := start; p < end; p++ {
			part = append(part, storage.PageID{Object: obj.ID, Page: storage.PageNum(p)})
		}
		out = append(out, part)
	}
	return out
}

// TopKLabels restricts a label space to the k pages most frequently accessed
// across the training samples (Figure 12h). Ties break toward lower offsets
// for determinism.
func TopKLabels(samples []Sample, obj storage.ObjectID, k int) []storage.PageID {
	counts := make(map[storage.PageID]int)
	for _, s := range samples {
		for _, p := range s.Pages {
			if p.Object == obj {
				counts[p]++
			}
		}
	}
	all := make([]storage.PageID, 0, len(counts))
	for p := range counts {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool {
		if counts[all[i]] != counts[all[j]] {
			return counts[all[i]] > counts[all[j]]
		}
		return all[i].Less(all[j])
	})
	if k < len(all) {
		all = all[:k]
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	return all
}

// CombinedLabels concatenates two objects' label spaces — the single
// index+table model of the Figure 12d ablation.
func CombinedLabels(objs ...*storage.Object) []storage.PageID {
	var out []storage.PageID
	for _, o := range objs {
		out = append(out, ObjectLabels(o)...)
	}
	return out
}
