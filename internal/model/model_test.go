package model

import (
	"testing"

	"github.com/pythia-db/pythia/internal/storage"
)

func pg(o, n uint32) storage.PageID {
	return storage.PageID{Object: storage.ObjectID(o), Page: storage.PageNum(n)}
}

func smallCfg() Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Heads = 2
	c.Layers = 1
	c.DecoderHidden = 32
	c.Epochs = 120
	c.LR = 5e-3
	return c
}

// Two query "types" with disjoint page sets: the model must learn the
// mapping and generalize it to a repeated token pattern.
func trainingFixture() (labels []storage.PageID, samples []Sample) {
	for i := uint32(0); i < 20; i++ {
		labels = append(labels, pg(1, i))
	}
	// Token id 5 ↔ pages {0..4}; token id 9 ↔ pages {10..14}. A shared
	// prefix token 2 plays the role of structural plan tokens.
	for rep := 0; rep < 6; rep++ {
		samples = append(samples,
			Sample{TokenIDs: []int{2, 5, 3}, Pages: []storage.PageID{pg(1, 0), pg(1, 1), pg(1, 2), pg(1, 3), pg(1, 4)}},
			Sample{TokenIDs: []int{2, 9, 3}, Pages: []storage.PageID{pg(1, 10), pg(1, 11), pg(1, 12), pg(1, 13), pg(1, 14)}},
		)
	}
	return labels, samples
}

func TestModelLearnsPageSets(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	loss := m.Train(samples)
	if loss > 0.2 {
		t.Fatalf("training loss did not collapse: %f", loss)
	}
	got := m.Predict([]int{2, 5, 3})
	want := map[storage.PageID]bool{pg(1, 0): true, pg(1, 1): true, pg(1, 2): true, pg(1, 3): true, pg(1, 4): true}
	if len(got) != len(want) {
		t.Fatalf("Predict = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("Predict included wrong page %v", p)
		}
	}
}

func TestPredictReturnsSortedLabels(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Train(samples)
	got := m.Predict([]int{2, 9, 3})
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("predictions not in file-storage order: %v", got)
		}
	}
}

func TestScoresInRange(t *testing.T) {
	labels, _ := trainingFixture()
	m := New(12, labels, smallCfg())
	scores := m.Scores([]int{2, 5, 3})
	if len(scores) != len(labels) {
		t.Fatal("score length mismatch")
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %f out of range", s)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	labels, samples := trainingFixture()
	cfg := smallCfg()
	cfg.Epochs = 10
	a := New(12, labels, cfg)
	b := New(12, labels, cfg)
	if a.Train(samples) != b.Train(samples) {
		t.Fatal("training not deterministic")
	}
}

func TestTargetsIgnoreForeignPages(t *testing.T) {
	labels := []storage.PageID{pg(1, 0), pg(1, 1)}
	m := New(12, labels, smallCfg())
	tg := m.targets([]storage.PageID{pg(1, 1), pg(2, 7), pg(1, 99)})
	if tg[0] != 0 || tg[1] != 1 {
		t.Fatalf("targets = %v", tg)
	}
}

func TestEmptyLabelSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty label space did not panic")
		}
	}()
	New(12, nil, smallCfg())
}

func TestParamCountPositiveAndScales(t *testing.T) {
	labels := make([]storage.PageID, 50)
	for i := range labels {
		labels[i] = pg(1, uint32(i))
	}
	small := New(12, labels[:10], smallCfg())
	large := New(12, labels, smallCfg())
	if small.ParamCount() <= 0 || large.ParamCount() <= small.ParamCount() {
		t.Fatalf("ParamCount: small=%d large=%d", small.ParamCount(), large.ParamCount())
	}
}

func TestObjectLabels(t *testing.T) {
	reg := storage.NewRegistry()
	obj := reg.Register("t", storage.KindTable, 5)
	labels := ObjectLabels(obj)
	if len(labels) != 5 || labels[4] != (storage.PageID{Object: obj.ID, Page: 4}) {
		t.Fatalf("ObjectLabels = %v", labels)
	}
}

func TestPartitionLabels(t *testing.T) {
	reg := storage.NewRegistry()
	obj := reg.Register("t", storage.KindTable, 10)
	parts := PartitionLabels(obj, 4)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	if len(parts[0]) != 4 || len(parts[2]) != 2 {
		t.Fatalf("partition sizes wrong: %d,%d,%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	total := 0
	seen := map[storage.PageID]bool{}
	for _, p := range parts {
		for _, l := range p {
			if seen[l] {
				t.Fatal("page appears in two partitions")
			}
			seen[l] = true
			total++
		}
	}
	if total != 10 {
		t.Fatalf("partitions cover %d pages", total)
	}
	// maxPages <= 0 → single partition.
	if got := PartitionLabels(obj, 0); len(got) != 1 || len(got[0]) != 10 {
		t.Fatal("unpartitioned labels wrong")
	}
}

func TestTopKLabels(t *testing.T) {
	samples := []Sample{
		{Pages: []storage.PageID{pg(1, 0), pg(1, 1)}},
		{Pages: []storage.PageID{pg(1, 0), pg(1, 2)}},
		{Pages: []storage.PageID{pg(1, 0), pg(2, 5)}}, // other object ignored
	}
	top := TopKLabels(samples, 1, 2)
	if len(top) != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if top[0] != pg(1, 0) {
		t.Fatalf("most frequent page missing: %v", top)
	}
	for _, p := range top {
		if p.Object != 1 {
			t.Fatal("foreign object leaked into top-k")
		}
	}
	// k larger than distinct pages → all of them.
	if got := TopKLabels(samples, 1, 100); len(got) != 3 {
		t.Fatalf("overlarge k = %v", got)
	}
}

func TestCombinedLabels(t *testing.T) {
	reg := storage.NewRegistry()
	a := reg.Register("a", storage.KindTable, 3)
	b := reg.Register("b", storage.KindIndex, 2)
	labels := CombinedLabels(a, b)
	if len(labels) != 5 {
		t.Fatalf("CombinedLabels = %v", labels)
	}
	if labels[0].Object != a.ID || labels[4].Object != b.ID {
		t.Fatal("combined order wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Dim == 0 || c.Epochs == 0 || c.LR == 0 || c.Threshold == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	p := PaperConfig()
	if p.Dim != 100 || p.Heads != 10 || p.DecoderHidden != 800 || p.Layers != 2 {
		t.Fatalf("PaperConfig deviates from §5.1: %+v", p)
	}
}
