package model

import (
	"bytes"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Train(samples)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range [][]int{{2, 5, 3}, {2, 9, 3}, {1, 1, 1}} {
		a := m.Predict(seq)
		b := loaded.Predict(seq)
		if len(a) != len(b) {
			t.Fatalf("loaded model differs on %v: %d vs %d pages", seq, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("loaded model differs on %v", seq)
			}
		}
		// Scores match exactly, not just thresholded predictions.
		sa, sb := m.Scores(seq), loaded.Scores(seq)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("loaded scores differ at %d: %v vs %v", i, sa[i], sb[i])
			}
		}
	}
	if loaded.ParamCount() != m.ParamCount() {
		t.Fatal("parameter counts differ after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage did not error")
	}
}

func TestLoadedModelTrainsIncrementally(t *testing.T) {
	labels, samples := trainingFixture()
	cfg := smallCfg()
	cfg.Epochs = 40
	m := New(12, labels, cfg)
	m.Train(samples[:4])

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental training on the rest of the data must run (and not panic
	// on the reset optimizer state) and keep predictions sane.
	loss := loaded.TrainIncremental(samples, 60)
	if loss < 0 {
		t.Fatalf("negative loss %f", loss)
	}
	got := loaded.Predict([]int{2, 5, 3})
	if len(got) == 0 {
		t.Fatal("incrementally trained model predicts nothing")
	}
}

func TestTrainIncrementalDefaultEpochs(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Train(samples)
	// epochs <= 0 falls back to a quarter of the configured budget.
	m.TrainIncremental(samples[:2], 0)
	if m.cfg.Epochs != smallCfg().Epochs {
		t.Fatal("TrainIncremental leaked its temporary epoch override")
	}
}
