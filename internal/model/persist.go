package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/pythia-db/pythia/internal/nn"
	"github.com/pythia-db/pythia/internal/storage"
)

// persistedModel is the on-disk form of a trained Model. It stores the
// architecture configuration, the label space, and a name→weights snapshot;
// loading rebuilds the identical architecture and restores the weights, so a
// loaded model predicts exactly what the saved one did.
type persistedModel struct {
	Version   int
	Cfg       Config
	VocabSize int
	Labels    []storage.PageID
	Weights   map[string][]float64
}

const persistVersion = 1

// Save writes the model to w (encoding/gob).
func (m *Model) Save(w io.Writer) error {
	state := persistedModel{
		Version:   persistVersion,
		Cfg:       m.cfg,
		VocabSize: m.enc.Emb.V,
		Labels:    m.Labels,
		Weights:   nn.Snapshot(append(m.enc.Params(), m.dec.Params()...)),
	}
	return gob.NewEncoder(w).Encode(&state)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var state persistedModel
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("model: decoding persisted model: %w", err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("model: unsupported persisted version %d", state.Version)
	}
	if len(state.Labels) == 0 {
		return nil, fmt.Errorf("model: persisted model has empty label space")
	}
	m := New(state.VocabSize, state.Labels, state.Cfg)
	if err := nn.Restore(append(m.enc.Params(), m.dec.Params()...), state.Weights); err != nil {
		return nil, fmt.Errorf("model: restoring weights: %w", err)
	}
	return m, nil
}

// TrainIncremental continues training an existing (possibly loaded) model on
// additional samples for the given number of epochs — the paper's
// incremental-training observation: "every new query run can be used as a
// new training data point to improve Pythia models" (§5.3). A fresh
// optimizer is used; pages outside the model's label space are ignored as
// usual.
func (m *Model) TrainIncremental(samples []Sample, epochs int) float64 {
	if epochs <= 0 {
		epochs = m.cfg.Epochs / 4
		if epochs < 1 {
			epochs = 1
		}
	}
	saved := m.cfg.Epochs
	m.cfg.Epochs = epochs
	defer func() { m.cfg.Epochs = saved }()
	return m.Train(samples)
}
