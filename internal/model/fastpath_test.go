package model

import (
	"reflect"
	"testing"

	"github.com/pythia-db/pythia/internal/storage"
)

// TestPredictBatchMatchesPredict: batching is a pure execution-shape change
// — every sequence's prediction set must equal the single-shot path exactly
// (the batched decoder preserves the serial accumulation order per row).
func TestPredictBatchMatchesPredict(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Train(samples)

	seqs := [][]int{{2, 5, 3}, {2, 9, 3}, {2, 5, 3}, {2, 9, 3, 3}}
	want := make([][]storage.PageID, len(seqs))
	for i, s := range seqs {
		want[i] = m.Predict(s)
	}
	got := m.PredictBatch(seqs)
	if len(got) != len(seqs) {
		t.Fatalf("PredictBatch returned %d results for %d sequences", len(got), len(seqs))
	}
	for i := range seqs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("sequence %d: batch %v vs single %v", i, got[i], want[i])
		}
	}
	// Empty and single-element batches are valid.
	if r := m.PredictBatch(nil); len(r) != 0 {
		t.Fatalf("empty batch returned %v", r)
	}
	one := m.PredictBatch([][]int{{2, 5, 3}})
	if !reflect.DeepEqual(one[0], want[0]) {
		t.Fatalf("singleton batch %v vs single %v", one[0], want[0])
	}
}

// setAgreement is the Jaccard similarity of two prediction sets (1 when
// both are empty: agreeing on "prefetch nothing" is agreement).
func setAgreement(a, b []storage.PageID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	in := map[storage.PageID]bool{}
	for _, p := range a {
		in[p] = true
	}
	inter := 0
	union := len(a)
	for _, p := range b {
		if in[p] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// quantAgreementBudget is the pinned accuracy budget for int8 inference:
// the mean Jaccard agreement between float and quantized prediction sets on
// the seed workload must not drop below this. Per-tensor symmetric int8
// perturbs logits by well under the sigmoid-threshold margin of a trained
// model, so in practice agreement is 1.0; the budget leaves room only for
// borderline labels sitting exactly at the threshold.
const quantAgreementBudget = 0.9

// TestQuantizedParityAgreement trains two identical models (training is
// deterministic, so their weights are bitwise equal), quantizes one, and
// pins the prediction-set agreement.
func TestQuantizedParityAgreement(t *testing.T) {
	labels, samples := trainingFixture()
	fm := New(12, labels, smallCfg())
	qm := New(12, labels, smallCfg())
	fm.Train(samples)
	qm.Train(samples)
	qm.Quantize()

	queries := [][]int{{2, 5, 3}, {2, 9, 3}, {2, 5, 3, 3}, {2, 9}}
	total := 0.0
	for _, q := range queries {
		total += setAgreement(fm.Predict(q), qm.Predict(q))
	}
	if mean := total / float64(len(queries)); mean < quantAgreementBudget {
		t.Fatalf("quantized agreement %.3f below pinned budget %.2f", mean, quantAgreementBudget)
	}
}

// TestQuantizedBatchMatchesSingle: the two fast-path stages compose — a
// quantized model's batched predictions equal its single-shot ones (integer
// accumulation is exact, so this holds bitwise too).
func TestQuantizedBatchMatchesSingle(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Train(samples)
	m.Quantize()
	seqs := [][]int{{2, 5, 3}, {2, 9, 3}}
	got := m.PredictBatch(seqs)
	for i, s := range seqs {
		if want := m.Predict(s); !reflect.DeepEqual(got[i], want) {
			t.Fatalf("sequence %d: quantized batch %v vs single %v", i, got[i], want)
		}
	}
}

// TestQuantizedTrainPanics: quantization is an inference-only commitment —
// the first backward pass must refuse loudly, not silently corrupt weights.
func TestQuantizedTrainPanics(t *testing.T) {
	labels, samples := trainingFixture()
	m := New(12, labels, smallCfg())
	m.Quantize()
	defer func() {
		if recover() == nil {
			t.Fatal("Train on quantized model did not panic")
		}
	}()
	m.Train(samples)
}

// benchModel builds an untrained paper-scale model (inference cost does not
// depend on the weights' values, only their shapes).
func benchModel(quantize bool) (*Model, []int) {
	cfg := DefaultConfig()
	cfg.Dim = 64
	cfg.Heads = 8
	cfg.Layers = 2
	cfg.DecoderHidden = 512
	labels := make([]storage.PageID, 4000)
	for i := range labels {
		labels[i] = pg(1, uint32(i))
	}
	m := New(64, labels, cfg)
	if quantize {
		m.Quantize()
	}
	seq := make([]int, 24)
	for i := range seq {
		seq[i] = i % 64
	}
	return m, seq
}

func BenchmarkInferFloat32(b *testing.B) {
	m, seq := benchModel(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(seq)
	}
}

func BenchmarkInferInt8(b *testing.B) {
	m, seq := benchModel(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(seq)
	}
}
