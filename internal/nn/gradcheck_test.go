package nn

import (
	"math"
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

// numericalGrad perturbs each element of p.W and measures the loss change.
func numericalGrad(p *Param, loss func() float64) *Mat {
	const h = 1e-5
	g := NewMat(p.W.Rows, p.W.Cols)
	for i := range p.W.Data {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + h
		lp := loss()
		p.W.Data[i] = orig - h
		lm := loss()
		p.W.Data[i] = orig
		g.Data[i] = (lp - lm) / (2 * h)
	}
	return g
}

func maxRelErr(analytic, numeric *Mat) float64 {
	worst := 0.0
	for i := range analytic.Data {
		a, n := analytic.Data[i], numeric.Data[i]
		diff := math.Abs(a - n)
		if diff < 1e-7 {
			// Both effectively zero (e.g. the key bias, whose true gradient
			// is exactly zero because softmax is shift-invariant per row):
			// finite-difference noise dominates any relative metric.
			continue
		}
		denom := math.Max(1e-4, math.Abs(a)+math.Abs(n))
		if e := diff / denom; e > worst {
			worst = e
		}
	}
	return worst
}

// scalarize turns a matrix output into a deterministic scalar "loss" so any
// layer can be gradient-checked: L = Σ wᵢⱼ yᵢⱼ with fixed pseudo-weights.
func scalarize(y *Mat) float64 {
	s := 0.0
	for i, v := range y.Data {
		s += v * math.Sin(float64(i)+1)
	}
	return s
}

func scalarizeGrad(y *Mat) *Mat {
	g := NewMat(y.Rows, y.Cols)
	for i := range g.Data {
		g.Data[i] = math.Sin(float64(i) + 1)
	}
	return g
}

func TestLinearGradients(t *testing.T) {
	r := sim.NewRand(1)
	l := NewLinear("t", 4, 3, r)
	x := randMat(r, 5, 4)
	loss := func() float64 { return scalarize(l.Forward(x)) }

	y := l.Forward(x)
	l.Weight.ZeroGrad()
	l.Bias.ZeroGrad()
	dx := l.Backward(scalarizeGrad(y))

	for _, p := range l.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.G, num); e > 1e-6 {
			t.Fatalf("%s grad err %.2e", p.Name, e)
		}
	}
	// Input gradient via perturbation.
	numDx := NewMat(x.Rows, x.Cols)
	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		numDx.Data[i] = (lp - lm) / (2 * h)
	}
	if e := maxRelErr(dx, numDx); e > 1e-6 {
		t.Fatalf("linear dX err %.2e", e)
	}
}

func TestLayerNormGradients(t *testing.T) {
	r := sim.NewRand(2)
	ln := NewLayerNorm("t", 6)
	// Non-trivial gain/bias so their gradients are exercised.
	for i := range ln.Gain.W.Data {
		ln.Gain.W.Data[i] = 0.5 + r.Float64()
		ln.Bias.W.Data[i] = r.NormFloat64() * 0.1
	}
	x := randMat(r, 4, 6)
	loss := func() float64 { return scalarize(ln.Forward(x)) }

	y := ln.Forward(x)
	ln.Gain.ZeroGrad()
	ln.Bias.ZeroGrad()
	dx := ln.Backward(scalarizeGrad(y))

	for _, p := range ln.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.G, num); e > 1e-5 {
			t.Fatalf("%s grad err %.2e", p.Name, e)
		}
	}
	numDx := NewMat(x.Rows, x.Cols)
	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		numDx.Data[i] = (lp - lm) / (2 * h)
	}
	if e := maxRelErr(dx, numDx); e > 1e-5 {
		t.Fatalf("layernorm dX err %.2e", e)
	}
}

func TestMHSAGradients(t *testing.T) {
	r := sim.NewRand(3)
	a := NewMHSA("t", 8, 2, r)
	x := randMat(r, 5, 8)
	loss := func() float64 { return scalarize(a.Forward(x)) }

	y := a.Forward(x)
	for _, p := range a.Params() {
		p.ZeroGrad()
	}
	dx := a.Backward(scalarizeGrad(y))

	for _, p := range a.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.G, num); e > 1e-4 {
			t.Fatalf("%s grad err %.2e", p.Name, e)
		}
	}
	numDx := NewMat(x.Rows, x.Cols)
	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		numDx.Data[i] = (lp - lm) / (2 * h)
	}
	if e := maxRelErr(dx, numDx); e > 1e-4 {
		t.Fatalf("MHSA dX err %.2e", e)
	}
}

func TestEncoderLayerGradients(t *testing.T) {
	r := sim.NewRand(4)
	layer := NewEncoderLayer("t", 8, 2, 16, r)
	x := randMat(r, 4, 8)
	loss := func() float64 { return scalarize(layer.Forward(x)) }

	y := layer.Forward(x)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	layer.Backward(scalarizeGrad(y))

	// Spot-check a representative subset (full sweep is covered by the
	// individual layer tests; this validates the residual wiring).
	checked := 0
	for _, p := range layer.Params() {
		if len(p.W.Data) > 200 {
			continue
		}
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.G, num); e > 1e-4 {
			t.Fatalf("%s grad err %.2e", p.Name, e)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

func TestEmbeddingAndEncoderGradients(t *testing.T) {
	r := sim.NewRand(5)
	enc := NewEncoder(EncoderConfig{Vocab: 12, Dim: 8, Heads: 2, Layers: 1, FFHidden: 16}, r)
	ids := []int{3, 7, 1, 3, 9}
	loss := func() float64 { return scalarize(enc.Forward(ids)) }

	rep := enc.Forward(ids)
	for _, p := range enc.Params() {
		p.ZeroGrad()
	}
	enc.Backward(scalarizeGrad(rep))

	num := numericalGrad(enc.Emb.Table, loss)
	if e := maxRelErr(enc.Emb.Table.G, num); e > 1e-4 {
		t.Fatalf("embedding grad err %.2e", e)
	}
}

func TestBCEWithLogitsGradients(t *testing.T) {
	r := sim.NewRand(6)
	logits := randMat(r, 1, 10)
	targets := make([]float64, 10)
	for i := range targets {
		if r.Float64() < 0.3 {
			targets[i] = 1
		}
	}
	for _, pw := range []float64{1, 3} {
		bce := BCEWithLogits{PosWeight: pw}
		_, grad := bce.Loss(logits, targets)
		const h = 1e-6
		for i := range logits.Data {
			orig := logits.Data[i]
			logits.Data[i] = orig + h
			lp, _ := bce.Loss(logits, targets)
			logits.Data[i] = orig - h
			lm, _ := bce.Loss(logits, targets)
			logits.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad.Data[i]) > 1e-5 {
				t.Fatalf("pw=%v: BCE grad[%d] = %f, numeric %f", pw, i, grad.Data[i], num)
			}
		}
	}
}

func TestDecoderGradients(t *testing.T) {
	r := sim.NewRand(7)
	dec := NewDecoder("t", 6, 10, 8, r)
	rep := randMat(r, 1, 6)
	loss := func() float64 { return scalarize(dec.Forward(rep)) }
	y := dec.Forward(rep)
	for _, p := range dec.Params() {
		p.ZeroGrad()
	}
	dec.Backward(scalarizeGrad(y))
	for _, p := range dec.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.G, num); e > 1e-5 {
			t.Fatalf("%s grad err %.2e", p.Name, e)
		}
	}
}
