package nn

import (
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := sim.NewRand(4)
	enc := NewEncoder(EncoderConfig{Vocab: 10, Dim: 8, Heads: 2, Layers: 1}, r)
	dec := NewDecoder("d", 8, 8, 4, r)
	params := append(enc.Params(), dec.Params()...)
	before := dec.Forward(enc.Forward([]int{1, 2, 3})).Clone()

	snap := Snapshot(params)

	// Perturb everything, then restore.
	for _, p := range params {
		for i := range p.W.Data {
			p.W.Data[i] += 1.5
		}
	}
	if err := Restore(params, snap); err != nil {
		t.Fatal(err)
	}
	after := dec.Forward(enc.Forward([]int{1, 2, 3}))
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("restore did not reproduce outputs exactly")
		}
	}
	// Snapshot must be a copy, not an alias.
	snap2 := Snapshot(params)
	params[0].W.Data[0] += 7
	for name := range snap2 {
		_ = name
	}
	if snap2[params[0].Name][0] == params[0].W.Data[0] {
		t.Fatal("snapshot aliases live weights")
	}
}

func TestRestoreErrors(t *testing.T) {
	r := sim.NewRand(4)
	l := NewLinear("x", 2, 2, r)
	if err := Restore(l.Params(), map[string][]float64{}); err == nil {
		t.Fatal("missing parameter did not error")
	}
	if err := Restore(l.Params(), map[string][]float64{
		"x.w": {1}, "x.b": {0, 0},
	}); err == nil {
		t.Fatal("size mismatch did not error")
	}
}

func TestSnapshotDuplicateNamePanics(t *testing.T) {
	a := NewParam("same", 1, 1)
	b := NewParam("same", 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	Snapshot([]*Param{a, b})
}

func TestRestoreResetsOptimizerState(t *testing.T) {
	r := sim.NewRand(4)
	l := NewLinear("x", 2, 2, r)
	opt := NewAdam(0.1, l.Params())
	l.Weight.G.Data[0] = 1
	opt.Step()
	snap := Snapshot(l.Params())
	if err := Restore(l.Params(), snap); err != nil {
		t.Fatal(err)
	}
	if l.Weight.adamM.Norm() != 0 || l.Weight.adamV.Norm() != 0 {
		t.Fatal("Adam moments survived restore")
	}
	if l.Weight.G.Norm() != 0 {
		t.Fatal("gradient survived restore")
	}
}
