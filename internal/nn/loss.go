package nn

import (
	"math"

	"github.com/pythia-db/pythia/internal/sim"
)

// BCEWithLogits computes the multilabel binary cross-entropy loss directly
// on logits (the paper's optimization objective) and its gradient. Each
// output unit is an independent page-presence classifier.
//
// The loss uses the numerically stable formulation
// max(x,0) − x·y + log(1 + exp(−|x|)), and supports a positive-class weight
// to counter the extreme sparsity of page labels (most pages of an object
// are *not* accessed by any one query).
type BCEWithLogits struct {
	// PosWeight multiplies the positive-class term; 1 means unweighted.
	PosWeight float64
	// Sum selects sum reduction instead of the default mean. With mean
	// reduction the per-output gradient shrinks as the label space grows,
	// so a model over 10× more pages learns 10× slower at the same
	// learning rate; sum reduction (with gradient clipping) keeps the
	// effective step size independent of label-space size.
	Sum bool
	// Scratch, when set, allocates the gradient matrix from the arena
	// instead of the heap (the training loop calls Loss once per step).
	Scratch *Arena
}

// Loss returns the mean loss over all outputs and the gradient with respect
// to the logits. targets must contain 0/1 values of the same shape.
func (b BCEWithLogits) Loss(logits *Mat, targets []float64) (float64, *Mat) {
	if len(targets) != len(logits.Data) {
		panic("nn: BCE target length mismatch")
	}
	pw := b.PosWeight
	if pw <= 0 {
		pw = 1
	}
	n := float64(len(targets))
	if b.Sum {
		n = 1
	}
	grad := b.Scratch.Get(logits.Rows, logits.Cols)
	total := 0.0
	for i, x := range logits.Data {
		y := targets[i]
		// Stable BCE-with-logits, with pos_weight w applied to the y=1 term:
		// loss = (1 + (w-1)·y) · softplus(-x) + (1-y)·x   when rearranged per sign.
		var loss float64
		absX := math.Abs(x)
		softplusNegAbs := math.Log1p(math.Exp(-absX))
		maxX := math.Max(x, 0)
		// Unweighted stable form.
		base := maxX - x*y + softplusNegAbs
		if pw != 1 && y == 1 {
			// For positives the unweighted loss is softplus(-x) = max(x,0) - x + softplus(-|x|).
			loss = pw * base
		} else {
			loss = base
		}
		total += loss

		p := Sigmoid(x)
		g := p - y
		if pw != 1 && y == 1 {
			g = pw * (p - 1)
		}
		grad.Data[i] = g / n
	}
	return total / n, grad
}

// Decoder is Pythia's feed-forward multilabel head: one hidden layer of
// width Hidden with ReLU, then a logit per page of the database object
// (paper §5.1: hidden 800, output = number of blocks).
type Decoder struct {
	L1, L2 *Linear
	relu   ReLU
}

// NewDecoder builds the head.
func NewDecoder(name string, in, hidden, outputs int, r *sim.Rand) *Decoder {
	return &Decoder{
		L1: NewLinear(name+".d1", in, hidden, r),
		L2: NewLinear(name+".d2", hidden, outputs, r),
	}
}

// SetRuntime binds execution resources for the head.
func (d *Decoder) SetRuntime(rt Runtime) {
	d.L1.SetRuntime(rt)
	d.L2.SetRuntime(rt)
	d.relu.SetRuntime(rt)
}

// Params returns the head's parameters.
func (d *Decoder) Params() []*Param { return append(d.L1.Params(), d.L2.Params()...) }

// Forward maps a 1×D query representation to 1×outputs logits.
func (d *Decoder) Forward(rep *Mat) *Mat {
	return d.L2.Forward(d.relu.Forward(d.L1.Forward(rep)))
}

// Backward returns the gradient with respect to the representation.
func (d *Decoder) Backward(dLogits *Mat) *Mat {
	return d.L1.Backward(d.relu.Backward(d.L2.Backward(dLogits)))
}
