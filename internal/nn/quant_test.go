package nn

import (
	"math"
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

// quantize a random activation matrix for kernel tests.
func quantFixture(r *sim.Rand, rows, k int) (*Mat, []int8, []float64) {
	x := randMat(r, rows, k)
	qx := make([]int8, rows*k)
	scales := make([]float64, rows)
	QuantizeRows(x, qx, scales)
	return x, qx, scales
}

// TestMatMulQ8MatchesSerialBitwise: the pooled int8 kernel must agree with
// the serial reference bit for bit at every thread count — integer
// accumulation makes this exact, not approximate.
func TestMatMulQ8MatchesSerialBitwise(t *testing.T) {
	for _, threads := range []int{2, 3, 7, 16} {
		p := NewPool(threads)
		r := sim.NewRand(uint64(threads) + 100)
		for _, s := range kernelShapes {
			_, qa, scales := quantFixture(r, s.m, s.k)
			b := QuantizeMat(randMat(r, s.k, s.n))
			got := NewMat(s.m, s.n)
			p.MatMulQ8Into(got, qa, scales, s.m, b)
			bitwiseEq(t, "MatMulQ8Into", got, MatMulQ8(qa, scales, s.m, b))
		}
	}
}

// TestQuantizedMatMulApproximatesFloat pins the dequantization error of the
// full int8 pipeline (quantized activations × quantized weights) against
// the float kernel: per-tensor symmetric int8 keeps each operand within
// 1/254 of its max magnitude, so the dot-product error stays well under 2%
// of the output scale for the shapes the model uses.
func TestQuantizedMatMulApproximatesFloat(t *testing.T) {
	r := sim.NewRand(42)
	for _, s := range kernelShapes {
		a := randMat(r, s.m, s.k)
		bw := randMat(r, s.k, s.n)
		want := MatMul(a, bw)

		qa := make([]int8, s.m*s.k)
		scales := make([]float64, s.m)
		QuantizeRows(a, qa, scales)
		got := MatMulQ8(qa, scales, s.m, QuantizeMat(bw))

		// Bound the error relative to the largest output magnitude.
		maxOut := 0.0
		for _, v := range want.Data {
			if m := math.Abs(v); m > maxOut {
				maxOut = m
			}
		}
		for i := range want.Data {
			if err := math.Abs(got.Data[i] - want.Data[i]); err > 0.02*maxOut {
				t.Fatalf("shape %dx%dx%d element %d: int8 %v vs float %v (err %v > 2%% of %v)",
					s.m, s.k, s.n, i, got.Data[i], want.Data[i], err, maxOut)
			}
		}
	}
}

// TestQuantizeMatRoundTrip: dequantizing every weight must land within half
// a quantization step of the original.
func TestQuantizeMatRoundTrip(t *testing.T) {
	r := sim.NewRand(7)
	m := randMat(r, 13, 17)
	q := QuantizeMat(m)
	if q.K != m.Rows || q.N != m.Cols {
		t.Fatalf("QuantMat shape %dx%d, want %dx%d", q.K, q.N, m.Rows, m.Cols)
	}
	for rr := 0; rr < m.Rows; rr++ {
		for c := 0; c < m.Cols; c++ {
			deq := float64(q.Q[c*q.K+rr]) * q.Scale
			if err := math.Abs(deq - m.Data[rr*m.Cols+c]); err > q.Scale/2+1e-12 {
				t.Fatalf("weight (%d,%d): dequant %v vs %v, err %v > step/2 %v",
					rr, c, deq, m.Data[rr*m.Cols+c], err, q.Scale/2)
			}
		}
	}
}

// TestQuantizeZeroInputs: all-zero weights and all-zero activation rows
// must produce exactly zero output, not NaN from a zero scale.
func TestQuantizeZeroInputs(t *testing.T) {
	zw := QuantizeMat(NewMat(5, 4))
	if zw.Scale != 1 {
		t.Fatalf("all-zero weight scale = %v, want 1", zw.Scale)
	}
	x := NewMat(2, 5) // all-zero rows
	qx := make([]int8, 10)
	scales := []float64{99, 99}
	QuantizeRows(x, qx, scales)
	if scales[0] != 0 || scales[1] != 0 {
		t.Fatalf("zero-row scales = %v, want zeros", scales)
	}
	out := MatMulQ8(qx, scales, 2, zw)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("zero×zero output element %d = %v, want 0", i, v)
		}
	}
}

// TestLinearQuantizedForward: a quantized layer must keep Forward close to
// the float layer and refuse Backward.
func TestLinearQuantizedForward(t *testing.T) {
	r := sim.NewRand(11)
	l := NewLinear("q", 24, 40, r)
	for i := range l.Bias.W.Data {
		l.Bias.W.Data[i] = r.NormFloat64()
	}
	x := randMat(r, 3, 24)
	want := l.Forward(x)
	if l.Quantized() {
		t.Fatal("layer quantized before Quantize call")
	}

	l.Quantize()
	if !l.Quantized() {
		t.Fatal("Quantized() false after Quantize")
	}
	got := l.Forward(x)
	maxOut := 0.0
	for _, v := range want.Data {
		if m := math.Abs(v); m > maxOut {
			maxOut = m
		}
	}
	for i := range want.Data {
		if err := math.Abs(got.Data[i] - want.Data[i]); err > 0.02*maxOut {
			t.Fatalf("element %d: quantized %v vs float %v", i, got.Data[i], want.Data[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Backward on quantized layer did not panic")
		}
	}()
	l.Backward(NewMat(3, 40))
}

// Kernel-level comparison at the inference hot shape (1×hidden @
// hidden×pages, the decoder output layer).
func benchQuantOperands(rows int) (x *Mat, qx []int8, scales []float64, w *Mat, qw *QuantMat, dst *Mat) {
	r := sim.NewRand(4)
	const k, n = 512, 4000
	x = randMat(r, rows, k)
	w = randMat(r, k, n)
	qw = QuantizeMat(w)
	qx = make([]int8, rows*k)
	scales = make([]float64, rows)
	QuantizeRows(x, qx, scales)
	return x, qx, scales, w, qw, NewMat(rows, n)
}

func BenchmarkMatMulQ8(b *testing.B) {
	x, qx, scales, w, qw, dst := benchQuantOperands(1)
	b.Run("float-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matMulRows(dst, x, w, 0, x.Rows)
		}
	})
	b.Run("q8-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matMulQ8Block(dst, qx, scales, qw, 0, x.Rows, 0, qw.N)
		}
	})
}
