package nn

import (
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

// bitwiseEq fails the test unless got and want match bit for bit — the
// determinism contract is exact equality, not tolerance.
func bitwiseEq(t *testing.T, op string, got, want *Mat) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", op, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", op, i, got.Data[i], want.Data[i])
		}
	}
}

// kernelShapes covers both sharding regimes: tall outputs (row-sharded)
// and the decoder's flat 1×D @ D×wide shape (column-sharded), plus odd
// sizes that don't divide evenly by any thread count. Shapes are large
// enough to clear parallelMinWork so the pool really fans out.
var kernelShapes = []struct{ m, k, n int }{
	{37, 29, 41},
	{64, 64, 256},
	{1, 64, 1024},
	{3, 128, 65},
	{128, 16, 16},
}

func TestParallelKernelsMatchSerialBitwise(t *testing.T) {
	for _, threads := range []int{2, 3, 7, 16} {
		p := NewPool(threads)
		r := sim.NewRand(uint64(threads))
		for _, s := range kernelShapes {
			a := randMat(r, s.m, s.k)
			b := randMat(r, s.k, s.n)
			got := NewMat(s.m, s.n)
			p.MatMulInto(got, a, b)
			bitwiseEq(t, "MatMulInto", got, MatMul(a, b))

			at := randMat(r, s.k, s.m) // aᵀ @ b with a: k×m, b: k×n → m×n
			bt := randMat(r, s.k, s.n)
			got = NewMat(s.m, s.n)
			p.MatMulT1Into(got, at, bt)
			bitwiseEq(t, "MatMulT1Into", got, MatMulT1(at, bt))

			c := randMat(r, s.m, s.k)
			d := randMat(r, s.n, s.k) // c @ dᵀ → m×n
			got = NewMat(s.m, s.n)
			p.MatMulT2Into(got, c, d)
			bitwiseEq(t, "MatMulT2Into", got, MatMulT2(c, d))
		}
	}
}

func TestAccumT1MatchesSerialAccumulation(t *testing.T) {
	p := NewPool(5)
	r := sim.NewRand(9)
	x := randMat(r, 48, 33)
	// Half-sparse activations, like ReLU output.
	for i := range x.Data {
		if i%2 == 0 {
			x.Data[i] = 0
		}
	}
	dy := randMat(r, 48, 67)

	// Serial reference: the original r-outer skip loop.
	want := NewMat(33, 67)
	for i := range want.Data {
		want.Data[i] = 0.5 // nonzero start: accumulation must add, not overwrite
	}
	for rr := 0; rr < x.Rows; rr++ {
		xrow := x.Row(rr)
		dyrow := dy.Row(rr)
		for i, xv := range xrow {
			if xv == 0 {
				continue
			}
			orow := want.Row(i)
			for j, dv := range dyrow {
				orow[j] += xv * dv
			}
		}
	}

	got := NewMat(33, 67)
	for i := range got.Data {
		got.Data[i] = 0.5
	}
	p.AccumT1Into(got, x, dy)
	bitwiseEq(t, "AccumT1Into", got, want)
}

func TestPoolElementwiseAndSoftmax(t *testing.T) {
	p := NewPool(4)
	r := sim.NewRand(3)
	a := randMat(r, 130, 70)
	b := randMat(r, 130, 70)

	sum := NewMat(130, 70)
	p.AddInto(sum, a, b)
	bitwiseEq(t, "AddInto", sum, Add(a, b))

	acc := a.Clone()
	p.AddInPlace(acc, b)
	bitwiseEq(t, "AddInPlace", acc, sum)

	sm := a.Clone()
	p.SoftmaxRows(sm)
	want := a.Clone()
	want.SoftmaxRows()
	bitwiseEq(t, "SoftmaxRows", sm, want)
}

func TestPoolRunCoversAllTasksOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 5, 9} {
		p := NewPool(threads)
		counts := make([]int32, 23)
		p.Run(len(counts), func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("threads=%d: task %d ran %d times", threads, i, c)
			}
		}
	}
}

func TestPoolNilAndThreadClamping(t *testing.T) {
	var p *Pool
	if p.Threads() != 1 {
		t.Fatalf("nil pool threads = %d", p.Threads())
	}
	ran := false
	p.shard(4, 1<<20, func(lo, hi int) {
		if lo != 0 || hi != 4 {
			t.Fatalf("nil pool shard [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil pool did not run shard")
	}
	if NewPool(0).Threads() != DefaultThreads() {
		t.Fatal("NewPool(0) did not take the process default")
	}
}

// TestEncoderParallelBitwiseDeterminism runs the full encoder+decoder
// forward/backward — attention heads fanned out, layernorm row-sharded,
// arena-allocated scratch — under several thread counts and demands
// bit-identical gradients and outputs versus the unbound serial modules.
func TestEncoderParallelBitwiseDeterminism(t *testing.T) {
	build := func() (*Encoder, *Decoder) {
		r := sim.NewRand(11)
		enc := NewEncoder(EncoderConfig{Vocab: 30, Dim: 24, Heads: 4, Layers: 2, FFHidden: 48}, r)
		dec := NewDecoder("d", 24, 32, 40, r)
		return enc, dec
	}
	ids := []int{3, 17, 4, 9, 22, 1, 5, 12}
	run := func(enc *Encoder, dec *Decoder) (*Mat, map[string][]float64) {
		rep := enc.Forward(ids)
		logits := dec.Forward(rep)
		bce := BCEWithLogits{PosWeight: 3, Sum: true}
		targets := make([]float64, 40)
		for i := 0; i < 40; i += 3 {
			targets[i] = 1
		}
		_, dLogits := bce.Loss(logits, targets)
		enc.Backward(dec.Backward(dLogits))
		grads := map[string][]float64{}
		for _, p := range append(enc.Params(), dec.Params()...) {
			g := make([]float64, len(p.G.Data))
			copy(g, p.G.Data)
			grads[p.Name] = g
		}
		return logits.Clone(), grads
	}

	refEnc, refDec := build()
	wantLogits, wantGrads := run(refEnc, refDec)

	for _, threads := range []int{1, 2, 4, 8} {
		enc, dec := build()
		rt := Runtime{Pool: NewPool(threads), Arena: NewArena()}
		enc.SetRuntime(rt)
		dec.SetRuntime(rt)
		gotLogits, gotGrads := run(enc, dec)
		bitwiseEq(t, "logits", gotLogits, wantLogits)
		for name, want := range wantGrads {
			got := gotGrads[name]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("threads=%d: grad %s[%d] = %v, want %v", threads, name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestArenaRecyclesBuffers(t *testing.T) {
	a := NewArena()
	m1 := a.Get(4, 8)
	m1.Data[0] = 42
	if a.Live() != 1 {
		t.Fatalf("Live = %d", a.Live())
	}
	a.Release()
	if a.Live() != 0 {
		t.Fatalf("Live after Release = %d", a.Live())
	}
	m2 := a.Get(8, 4) // same element count, different shape: must recycle and zero
	if &m1.Data[0] != &m2.Data[0] {
		t.Fatal("arena did not recycle the buffer")
	}
	if m2.Rows != 8 || m2.Cols != 4 {
		t.Fatalf("recycled shape %dx%d", m2.Rows, m2.Cols)
	}
	if m2.Data[0] != 0 {
		t.Fatal("recycled buffer not zeroed")
	}
	m3 := a.Get(4, 8)
	if &m3.Data[0] == &m2.Data[0] {
		t.Fatal("arena handed out a live buffer")
	}

	// Nil arena degrades to plain allocation.
	var nilA *Arena
	if m := nilA.Get(2, 2); m == nil || len(m.Data) != 4 {
		t.Fatal("nil arena Get failed")
	}
	nilA.Release()
}

// TestArenaSteadyStateAllocs verifies the zero-alloc claim: after the
// first training step, a full encoder+decoder forward/backward allocates
// (essentially) nothing from the heap.
func TestArenaSteadyStateAllocs(t *testing.T) {
	r := sim.NewRand(2)
	enc := NewEncoder(EncoderConfig{Vocab: 30, Dim: 16, Heads: 4, Layers: 2}, r)
	dec := NewDecoder("d", 16, 32, 64, r)
	rt := Runtime{Pool: NewPool(1), Arena: NewArena()}
	enc.SetRuntime(rt)
	dec.SetRuntime(rt)
	bce := BCEWithLogits{Sum: true, Scratch: rt.Arena}
	targets := make([]float64, 64)
	ids := []int{1, 2, 3, 4, 5, 6}
	step := func() {
		rt.Arena.Release()
		rep := enc.Forward(ids)
		logits := dec.Forward(rep)
		_, dLogits := bce.Loss(logits, targets)
		enc.Backward(dec.Backward(dLogits))
	}
	step() // warm the arena
	step()
	allocs := testing.AllocsPerRun(10, step)
	// Every matrix comes from the arena, scratch pointer slices are
	// retained on the modules, and at Threads=1 the kernels never build a
	// shard closure — so a warm step is allocation-free. The seed code
	// allocated hundreds of matrices per step.
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %v objects; arena is not recycling", allocs)
	}
}
