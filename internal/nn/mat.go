// Package nn is a small, dependency-free neural network library sufficient
// to implement Pythia's hybrid model exactly as the paper specifies: a token
// embedding with sinusoidal position information, a multi-layer multi-head
// self-attention transformer encoder, a feed-forward multilabel decoder,
// BCE-with-logits loss, and Adam. Every layer implements a hand-derived
// backward pass, validated against numerical gradients in the test suite.
//
// The library is deliberately CPU-first and deterministic: all randomness
// flows from an explicit sim.Rand, so training the same model twice yields
// identical parameters — which is what makes the experiment harness
// reproducible. The compute kernels run row-sharded across a shared worker
// pool (pool.go, kernels.go) with ownership-based sharding that preserves
// the serial floating-point accumulation order, so the reproducibility
// contract extends across thread counts: Threads=1 and Threads=N train to
// bitwise-identical parameters. Scratch matrices come from a per-model
// frame arena (arena.go) so the steady-state training loop allocates
// nothing.
package nn

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("nn: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// shapeCheck panics with a clear message on dimension mismatches; every
// mismatch is a programming error in the model wiring.
func shapeCheck(cond bool, op string, a, b *Mat) {
	if !cond {
		panic(fmt.Sprintf("nn: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a @ b. This is the serial reference implementation the
// parallel kernels (Pool.MatMulInto) are golden-tested against; the hot
// paths use the destination-passing variants in kernels.go.
func MatMul(a, b *Mat) *Mat {
	shapeCheck(a.Cols == b.Rows, "matmul", a, b)
	out := NewMat(a.Rows, b.Cols)
	// i-k-j loop order: the inner loop walks both b and out rows
	// contiguously, which matters for the decoder's wide output layer.
	// No zero-skip: post-embedding activations are dense, and the branch
	// only costs on dense inputs (BenchmarkMatMulSkip).
	matMulRows(out, a, b, 0, a.Rows)
	return out
}

// MatMulT1 returns aᵀ @ b (used for weight gradients: dW = Xᵀ dY). Serial
// reference for Pool.MatMulT1Into; shares the restructured output-row-major
// loop so the two are bitwise identical by construction.
func MatMulT1(a, b *Mat) *Mat {
	shapeCheck(a.Rows == b.Rows, "matmulT1", a, b)
	out := NewMat(a.Cols, b.Cols)
	matMulT1Rows(out, a, b, 0, a.Cols)
	return out
}

// MatMulT2 returns a @ bᵀ (used for input gradients: dX = dY Wᵀ). Serial
// reference for Pool.MatMulT2Into.
func MatMulT2(a, b *Mat) *Mat {
	shapeCheck(a.Cols == b.Cols, "matmulT2", a, b)
	out := NewMat(a.Rows, b.Rows)
	matMulT2Rows(out, a, b, 0, a.Rows)
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Mat) *Mat {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	out := NewMat(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Mat) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Mat) Scale(s float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVec adds vector v (length Cols) to every row of m in place.
func (m *Mat) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic("nn: AddRowVec length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Mat) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		softmaxRow(m.Row(i))
	}
}

// softmaxRow is the shared per-row softmax used by both the serial method
// and the pool's row-sharded variant.
func softmaxRow(row []float64) {
	maxv := math.Inf(-1)
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for j, v := range row {
		e := math.Exp(v - maxv)
		row[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range row {
		row[j] *= inv
	}
}

// Sigmoid returns the element-wise logistic function of x, computed in a
// numerically stable branch-free-ish way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Norm returns the Frobenius norm (tests use it to compare gradients).
func (m *Mat) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
