package nn

// Arena is a free-list of sized matrices that eliminates the per-step
// allocation churn of the training loop. model.Train runs Forward/Backward
// once per sample per epoch; without reuse every step allocates dozens of
// activation and scratch matrices that die immediately, and the garbage
// collector ends up on the profile next to the matmuls themselves.
//
// The lifetime model is a frame arena: Get hands out matrices during one
// training or inference step, and Release at a step boundary returns
// everything handed out since the previous Release to the free lists. After
// the first step, steady-state Get calls are pure recycles — zero heap
// allocation.
//
// An Arena is owned by exactly one model and is NOT safe for concurrent
// use: all Get/Release calls must come from the goroutine driving that
// model. Parallel kernels keep this easy — worker shards only compute into
// matrices the caller already allocated. A nil *Arena is valid and falls
// back to plain NewMat allocation.
type Arena struct {
	free map[int][]*Mat // element count → reusable matrices
	used []*Mat         // everything handed out since the last Release
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]*Mat)}
}

// Get returns a zeroed rows×cols matrix, recycling a previously released
// buffer of the same element count when one exists. Nil-safe. Steady-state
// calls are pure recycles (amortized append growth aside, which the noalloc
// analyzer deliberately permits).
//
//pythia:noalloc
func (a *Arena) Get(rows, cols int) *Mat {
	if a == nil {
		return NewMat(rows, cols)
	}
	n := rows * cols
	if s := a.free[n]; len(s) > 0 {
		m := s[len(s)-1]
		s[len(s)-1] = nil
		a.free[n] = s[:len(s)-1]
		m.Rows, m.Cols = rows, cols
		m.Zero()
		a.used = append(a.used, m)
		return m
	}
	m := NewMat(rows, cols)
	a.used = append(a.used, m)
	return m
}

// GetVec returns a zeroed 1×n matrix.
//
//pythia:noalloc
func (a *Arena) GetVec(n int) *Mat { return a.Get(1, n) }

// Release returns every matrix handed out since the previous Release to
// the free lists. Call it at step boundaries only: matrices obtained from
// Get must not be read or written after the Release that recycles them.
// Nil-safe.
//
//pythia:noalloc
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i, m := range a.used {
		a.free[len(m.Data)] = append(a.free[len(m.Data)], m)
		a.used[i] = nil
	}
	a.used = a.used[:0]
}

// Live reports how many matrices are currently handed out (tests use it to
// check step hygiene).
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	return len(a.used)
}

// Runtime bundles the execution resources a module computes with: a worker
// pool for deterministic parallel kernels and a scratch arena for
// step-scoped matrices. The zero value is valid and means serial execution
// with garbage-collected allocation — exactly the pre-parallelism behavior
// — so modules work unbound, and tests can construct layers directly.
type Runtime struct {
	Pool  *Pool
	Arena *Arena
}

// get allocates a zeroed rows×cols matrix from the arena (or the heap when
// no arena is bound).
//
//pythia:noalloc
func (rt Runtime) get(rows, cols int) *Mat { return rt.Arena.Get(rows, cols) }

// add returns a + b, allocated from the runtime and computed on the pool.
//
//pythia:noalloc
func (rt Runtime) add(a, b *Mat) *Mat {
	dst := rt.get(a.Rows, a.Cols)
	rt.Pool.AddInto(dst, a, b)
	return dst
}
