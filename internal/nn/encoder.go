package nn

import "github.com/pythia-db/pythia/internal/sim"

// FFN is the transformer's position-wise feed-forward block:
// Linear → ReLU → Linear.
type FFN struct {
	L1, L2 *Linear
	relu   ReLU
}

// SetRuntime binds execution resources for the block.
func (f *FFN) SetRuntime(rt Runtime) {
	f.L1.SetRuntime(rt)
	f.L2.SetRuntime(rt)
	f.relu.SetRuntime(rt)
}

// NewFFN builds the block with the given hidden width.
func NewFFN(name string, d, hidden int, r *sim.Rand) *FFN {
	return &FFN{
		L1: NewLinear(name+".ffn1", d, hidden, r),
		L2: NewLinear(name+".ffn2", hidden, d, r),
	}
}

// Params returns both linear layers' parameters.
func (f *FFN) Params() []*Param {
	return append(f.L1.Params(), f.L2.Params()...)
}

// Forward applies the block.
func (f *FFN) Forward(x *Mat) *Mat {
	return f.L2.Forward(f.relu.Forward(f.L1.Forward(x)))
}

// Backward returns dX.
func (f *FFN) Backward(dy *Mat) *Mat {
	return f.L1.Backward(f.relu.Backward(f.L2.Backward(dy)))
}

// EncoderLayer is one post-norm transformer encoder layer:
// x ← LN1(x + MHSA(x)); x ← LN2(x + FFN(x)).
type EncoderLayer struct {
	Attn *MHSA
	FF   *FFN
	LN1  *LayerNorm
	LN2  *LayerNorm

	rt Runtime
}

// SetRuntime binds execution resources for the layer and its blocks.
func (e *EncoderLayer) SetRuntime(rt Runtime) {
	e.rt = rt
	e.Attn.SetRuntime(rt)
	e.FF.SetRuntime(rt)
	e.LN1.SetRuntime(rt)
	e.LN2.SetRuntime(rt)
}

// NewEncoderLayer builds one layer.
func NewEncoderLayer(name string, d, heads, ffHidden int, r *sim.Rand) *EncoderLayer {
	return &EncoderLayer{
		Attn: NewMHSA(name+".attn", d, heads, r),
		FF:   NewFFN(name, d, ffHidden, r),
		LN1:  NewLayerNorm(name+".ln1", d),
		LN2:  NewLayerNorm(name+".ln2", d),
	}
}

// Params returns all the layer's parameters.
func (e *EncoderLayer) Params() []*Param {
	var out []*Param
	out = append(out, e.Attn.Params()...)
	out = append(out, e.FF.Params()...)
	out = append(out, e.LN1.Params()...)
	out = append(out, e.LN2.Params()...)
	return out
}

// Forward runs the layer over an n×D sequence.
func (e *EncoderLayer) Forward(x *Mat) *Mat {
	h := e.LN1.Forward(e.rt.add(x, e.Attn.Forward(x)))
	return e.LN2.Forward(e.rt.add(h, e.FF.Forward(h)))
}

// Backward returns dX.
func (e *EncoderLayer) Backward(dy *Mat) *Mat {
	d2 := e.LN2.Backward(dy)
	dh := e.rt.add(d2, e.FF.Backward(d2))
	d1 := e.LN1.Backward(dh)
	return e.rt.add(d1, e.Attn.Backward(d1))
}

// Encoder is Pythia's query encoder: token embedding + sinusoidal positions,
// a stack of encoder layers, and the *last token's* embedding as the query
// representation ("we use ... finally the last token's embedding as the
// final query representation", paper §3.3).
type Encoder struct {
	Emb    *Embedding
	Layers []*EncoderLayer
	D      int

	rt         Runtime
	lastSeqLen int
}

// SetRuntime binds the worker pool and scratch arena the encoder computes
// with; it propagates to every layer. Call once after construction (and
// before any concurrent use).
func (e *Encoder) SetRuntime(rt Runtime) {
	e.rt = rt
	e.Emb.SetRuntime(rt)
	for _, l := range e.Layers {
		l.SetRuntime(rt)
	}
}

// EncoderConfig sizes the encoder. The paper's configuration is Dim 100,
// Heads 10, Layers 2.
type EncoderConfig struct {
	Vocab    int
	Dim      int
	Heads    int
	Layers   int
	FFHidden int // defaults to 4×Dim
}

// NewEncoder builds the encoder.
func NewEncoder(cfg EncoderConfig, r *sim.Rand) *Encoder {
	if cfg.FFHidden <= 0 {
		cfg.FFHidden = 4 * cfg.Dim
	}
	enc := &Encoder{
		Emb: NewEmbedding("enc", cfg.Vocab, cfg.Dim, r),
		D:   cfg.Dim,
	}
	for i := 0; i < cfg.Layers; i++ {
		enc.Layers = append(enc.Layers, NewEncoderLayer("enc.l"+string(rune('0'+i)), cfg.Dim, cfg.Heads, cfg.FFHidden, r))
	}
	return enc
}

// Params returns every parameter in the encoder.
func (e *Encoder) Params() []*Param {
	out := append([]*Param{}, e.Emb.Params()...)
	for _, l := range e.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward encodes a token-id sequence into a 1×D query representation.
func (e *Encoder) Forward(ids []int) *Mat {
	if len(ids) == 0 {
		panic("nn: encoding empty sequence")
	}
	e.lastSeqLen = len(ids)
	x := e.Emb.Forward(ids)
	AddPositional(x)
	for _, l := range e.Layers {
		x = l.Forward(x)
	}
	out := e.rt.get(1, e.D)
	copy(out.Row(0), x.Row(x.Rows-1))
	return out
}

// Backward propagates the 1×D representation gradient back through the
// stack into the embedding table.
func (e *Encoder) Backward(dRep *Mat) {
	dx := e.rt.get(e.lastSeqLen, e.D)
	copy(dx.Row(e.lastSeqLen-1), dRep.Row(0))
	for i := len(e.Layers) - 1; i >= 0; i-- {
		dx = e.Layers[i].Backward(dx)
	}
	e.Emb.Backward(dx)
}
