package nn

import "fmt"

// Snapshot captures every parameter's weights by name. Names are unique
// within one model (layer constructors namespace them), which is what makes
// snapshot/restore safe across identically configured models.
func Snapshot(params []*Param) map[string][]float64 {
	out := make(map[string][]float64, len(params))
	for _, p := range params {
		if _, dup := out[p.Name]; dup {
			panic("nn: duplicate parameter name " + p.Name)
		}
		w := make([]float64, len(p.W.Data))
		copy(w, p.W.Data)
		out[p.Name] = w
	}
	return out
}

// Restore loads a snapshot into parameters of the same architecture. Every
// parameter must be present with matching size; optimizer state is reset
// (restored models are for inference or fresh fine-tuning).
func Restore(params []*Param, snap map[string][]float64) error {
	for _, p := range params {
		w, ok := snap[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %s", p.Name)
		}
		if len(w) != len(p.W.Data) {
			return fmt.Errorf("nn: parameter %s has %d weights, snapshot has %d",
				p.Name, len(p.W.Data), len(w))
		}
		copy(p.W.Data, w)
		p.G.Zero()
		p.adamM.Zero()
		p.adamV.Zero()
	}
	return nil
}
