package nn

import (
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

// Kernel microbenchmarks at decoder-realistic shapes. The hot shape in
// training is the decoder head: a hidden activation (batch×hidden) against a
// hidden×pages weight with pages in the thousands. 64×64 @ 64×4096 mirrors
// that. Run with:
//
//	go test ./internal/nn -bench 'MatMul|Attention|TrainStep' -benchmem
//
// On a multi-core machine the parallel variants should approach
// min(threads, 8)× the serial rate at these shapes; on one core they match
// serial (the pool degrades to the serial schedule, and results are bitwise
// identical either way).

const (
	benchM = 64
	benchK = 64
	benchN = 4096
)

func benchMats(r *sim.Rand) (a, b, dst *Mat) {
	return randMat(r, benchM, benchK), randMat(r, benchK, benchN), NewMat(benchM, benchN)
}

func BenchmarkMatMul(b *testing.B) {
	r := sim.NewRand(1)
	x, w, dst := benchMats(r)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matMulRows(dst, x, w, 0, x.Rows)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		p := NewPool(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.MatMulInto(dst, x, w)
		}
	})
}

func BenchmarkMatMulT1(b *testing.B) {
	r := sim.NewRand(2)
	x := randMat(r, benchK, benchM) // xᵀ @ dy: contraction over rows
	dy := randMat(r, benchK, benchN)
	dst := NewMat(benchM, benchN)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matMulT1Rows(dst, x, dy, 0, x.Cols)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		p := NewPool(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.MatMulT1Into(dst, x, dy)
		}
	})
}

func BenchmarkMatMulT2(b *testing.B) {
	r := sim.NewRand(3)
	dy := randMat(r, benchM, benchN) // dy @ wᵀ: the input-gradient shape
	w := randMat(r, benchK, benchN)
	dst := NewMat(benchM, benchK)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matMulT2Rows(dst, dy, w, 0, dy.Rows)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		p := NewPool(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.MatMulT2Into(dst, dy, w)
		}
	})
}

// BenchmarkAttention measures a full MHSA forward+backward at an
// encoder-realistic shape (sequence 64, the paper's Dim-100-ish width,
// 8 heads), serial vs head-parallel.
func BenchmarkAttention(b *testing.B) {
	run := func(b *testing.B, threads int) {
		r := sim.NewRand(4)
		a := NewMHSA("bench", 96, 8, r)
		rt := Runtime{Pool: NewPool(threads), Arena: NewArena()}
		a.SetRuntime(rt)
		x := randMat(r, 64, 96)
		dy := randMat(r, 64, 96)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Arena.Release()
			a.Forward(x)
			a.Backward(dy)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// matMulRowsSkip is the seed kernel's inner loop with the av == 0 skip
// branch, retained here only so BenchmarkMatMulSkip can document why the
// dense kernels dropped it (see the header comment in kernels.go).
func matMulRowsSkip(dst, a, b *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// BenchmarkMatMulSkip compares the skip-branch kernel against the straight
// kernel on fully dense activations — the post-embedding reality of every
// matmul call site in the model. The branch costs a compare per k on inputs
// that are never zero, which is why MatMul/MatMulT1 no longer carry it.
func BenchmarkMatMulSkip(b *testing.B) {
	r := sim.NewRand(5)
	x, w, dst := benchMats(r) // dense: randMat never produces exact zeros
	b.Run("skip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matMulRowsSkip(dst, x, w, 0, x.Rows)
		}
	})
	b.Run("noskip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matMulRows(dst, x, w, 0, x.Rows)
		}
	})
}

// accumT1RowsNoSkip is AccumT1Into's kernel without the zero skip, for the
// sparse comparison below.
func accumT1RowsNoSkip(dst, a, b *Mat, ilo, ihi int) {
	for i := ilo; i < ihi; i++ {
		orow := dst.Row(i)
		for r := 0; r < a.Rows; r++ {
			av := a.Data[r*a.Cols+i]
			brow := b.Row(r)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// BenchmarkAccumT1Sparse justifies keeping the skip in AccumT1Into: the
// activation feeding the decoder-head weight gradient is ReLU output, where
// roughly half the entries are exactly zero, and each skipped entry saves a
// whole 4096-wide row walk.
func BenchmarkAccumT1Sparse(b *testing.B) {
	r := sim.NewRand(6)
	x := randMat(r, benchK, benchM)
	for i := range x.Data {
		if x.Data[i] < 0 { // ReLU-like: about half exactly zero
			x.Data[i] = 0
		}
	}
	dy := randMat(r, benchK, benchN)
	dst := NewMat(benchM, benchN)
	b.Run("skip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			accumT1Rows(dst, x, dy, 0, x.Cols)
		}
	})
	b.Run("noskip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			accumT1RowsNoSkip(dst, x, dy, 0, x.Cols)
		}
	})
}

// BenchmarkTrainStep measures one full encoder+decoder forward/backward at
// a model-realistic size, with and without the scratch arena. The arena
// variant should report ~0 allocs/op against hundreds for the heap variant —
// the zero-alloc claim of the training hot path.
func BenchmarkTrainStep(b *testing.B) {
	run := func(b *testing.B, rt Runtime) {
		r := sim.NewRand(7)
		enc := NewEncoder(EncoderConfig{Vocab: 64, Dim: 32, Heads: 4, Layers: 2}, r)
		dec := NewDecoder("d", 32, 64, 2048, r)
		enc.SetRuntime(rt)
		dec.SetRuntime(rt)
		bce := BCEWithLogits{Sum: true, Scratch: rt.Arena}
		targets := make([]float64, 2048)
		for i := 0; i < len(targets); i += 7 {
			targets[i] = 1
		}
		ids := []int{3, 17, 4, 9, 22, 1, 5, 12, 40, 2, 33, 8}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Arena.Release()
			rep := enc.Forward(ids)
			logits := dec.Forward(rep)
			_, dLogits := bce.Loss(logits, targets)
			enc.Backward(dec.Backward(dLogits))
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, Runtime{}) })
	b.Run("arena", func(b *testing.B) { run(b, Runtime{Pool: NewPool(1), Arena: NewArena()}) })
	b.Run("arena-parallel", func(b *testing.B) { run(b, Runtime{Pool: NewPool(0), Arena: NewArena()}) })
}
