package nn

import (
	"math"

	"github.com/pythia-db/pythia/internal/sim"
)

// MHSA is multi-head self-attention (Vaswani et al.): per head h,
// Attention(Qh, Kh, Vh) = softmax(Qh Khᵀ / √dₕ) Vh, heads concatenated and
// projected. Pythia's encoder stacks two of these with 10 heads at model
// dimension 100 (paper §5.1); the experiment configs scale the dimensions
// down but keep the architecture.
//
// Heads are independent by construction, so Forward and Backward fan the
// per-head work out across the worker pool (Pool.Run): each head task
// computes with serial kernels into scratch the caller pre-allocated, and
// writes only its own head's column block of the shared outputs. The
// per-head math is byte-for-byte the serial loop body, so results are
// bitwise identical at any thread count.
type MHSA struct {
	D, H, Dh int
	Wq, Wk   *Linear
	Wv, Wo   *Linear

	rt Runtime

	// caches for backward
	q, k, v *Mat
	attn    []*Mat // per-head attention probabilities (n×n)
	concat  *Mat

	// Per-head scratch pointer slices, retained across steps so the only
	// per-step allocations are arena recycles. The matrices they point at
	// come from the arena each step; only the slice headers persist.
	qh, kh, vh, oh []*Mat
	bs             []headScratch
}

// headScratch is one head's backward-pass scratch.
type headScratch struct {
	doh, qh, kh, vh, dvh, dattn, dscores, dqh, dkh *Mat
}

// NewMHSA builds an attention block. D must be divisible by H.
func NewMHSA(name string, d, heads int, r *sim.Rand) *MHSA {
	if heads <= 0 || d%heads != 0 {
		panic("nn: model dim must be divisible by head count")
	}
	return &MHSA{
		D: d, H: heads, Dh: d / heads,
		Wq: NewLinear(name+".q", d, d, r),
		Wk: NewLinear(name+".k", d, d, r),
		Wv: NewLinear(name+".v", d, d, r),
		Wo: NewLinear(name+".o", d, d, r),
	}
}

// SetRuntime binds execution resources for the block and its projections.
func (a *MHSA) SetRuntime(rt Runtime) {
	a.rt = rt
	a.Wq.SetRuntime(rt)
	a.Wk.SetRuntime(rt)
	a.Wv.SetRuntime(rt)
	a.Wo.SetRuntime(rt)
}

// Params returns all projection parameters.
func (a *MHSA) Params() []*Param {
	var out []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		out = append(out, l.Params()...)
	}
	return out
}

// headViewInto copies the n×Dh slice of m for head h into dst.
func (a *MHSA) headViewInto(dst, m *Mat, h int) {
	off := h * a.Dh
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[off:off+a.Dh])
	}
}

// headAccum adds src (n×Dh) into dst's columns for head h. Distinct heads
// touch disjoint column ranges, so concurrent head tasks may call this on
// the same dst.
func (a *MHSA) headAccum(dst, src *Mat, h int) {
	off := h * a.Dh
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(i)[off : off+a.Dh]
		srow := src.Row(i)
		for j := range srow {
			drow[j] += srow[j]
		}
	}
}

// Forward computes self-attention over the n×D sequence x.
func (a *MHSA) Forward(x *Mat) *Mat {
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)
	n := x.Rows
	if cap(a.attn) < a.H {
		a.attn = make([]*Mat, a.H)
	}
	a.attn = a.attn[:a.H]
	a.concat = a.rt.get(n, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	// Pre-allocate every head's scratch on the calling goroutine — the
	// arena is single-owner, so worker tasks must not call Get. The pointer
	// slices live on the struct so steady-state steps allocate nothing.
	if cap(a.qh) < a.H {
		a.qh = make([]*Mat, a.H)
		a.kh = make([]*Mat, a.H)
		a.vh = make([]*Mat, a.H)
		a.oh = make([]*Mat, a.H)
	}
	a.qh, a.kh, a.vh, a.oh = a.qh[:a.H], a.kh[:a.H], a.vh[:a.H], a.oh[:a.H]
	for h := 0; h < a.H; h++ {
		a.qh[h] = a.rt.get(n, a.Dh)
		a.kh[h] = a.rt.get(n, a.Dh)
		a.vh[h] = a.rt.get(n, a.Dh)
		a.oh[h] = a.rt.get(n, a.Dh)
		a.attn[h] = a.rt.get(n, n)
	}
	if a.rt.Pool.Threads() == 1 {
		for h := 0; h < a.H; h++ {
			a.forwardHead(h, n, scale)
		}
	} else {
		a.rt.Pool.Run(a.H, func(h int) { a.forwardHead(h, n, scale) })
	}
	return a.Wo.Forward(a.concat)
}

// forwardHead computes one head's attention into its scratch and accumulates
// the result into the head's column block of concat — the Pool.Run task unit.
func (a *MHSA) forwardHead(h, n int, scale float64) {
	a.headViewInto(a.qh[h], a.q, h)
	a.headViewInto(a.kh[h], a.k, h)
	a.headViewInto(a.vh[h], a.v, h)
	scores := a.attn[h]
	matMulT2Rows(scores, a.qh[h], a.kh[h], 0, n)
	scores.Scale(scale)
	scores.SoftmaxRows()
	matMulRows(a.oh[h], scores, a.vh[h], 0, n)
	a.headAccum(a.concat, a.oh[h], h)
}

// Backward propagates dY through the attention block and returns dX.
func (a *MHSA) Backward(dy *Mat) *Mat {
	dConcat := a.Wo.Backward(dy)
	n := dy.Rows
	dq := a.rt.get(n, a.D)
	dk := a.rt.get(n, a.D)
	dv := a.rt.get(n, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	if cap(a.bs) < a.H {
		a.bs = make([]headScratch, a.H)
	}
	a.bs = a.bs[:a.H]
	for h := range a.bs {
		a.bs[h] = headScratch{
			doh: a.rt.get(n, a.Dh), qh: a.rt.get(n, a.Dh), kh: a.rt.get(n, a.Dh),
			vh: a.rt.get(n, a.Dh), dvh: a.rt.get(n, a.Dh),
			dattn: a.rt.get(n, n), dscores: a.rt.get(n, n),
			dqh: a.rt.get(n, a.Dh), dkh: a.rt.get(n, a.Dh),
		}
	}
	if a.rt.Pool.Threads() == 1 {
		for h := 0; h < a.H; h++ {
			a.backwardHead(h, n, scale, dConcat, dq, dk, dv)
		}
	} else {
		a.rt.Pool.Run(a.H, func(h int) { a.backwardHead(h, n, scale, dConcat, dq, dk, dv) })
	}
	dx := a.Wq.Backward(dq)
	a.rt.Pool.AddInPlace(dx, a.Wk.Backward(dk))
	a.rt.Pool.AddInPlace(dx, a.Wv.Backward(dv))
	return dx
}

// backwardHead propagates one head's gradient through attention and
// accumulates into the head's column blocks of dq/dk/dv — the Pool.Run task
// unit of Backward.
func (a *MHSA) backwardHead(h, n int, scale float64, dConcat, dq, dk, dv *Mat) {
	s := &a.bs[h]
	a.headViewInto(s.doh, dConcat, h)
	a.headViewInto(s.qh, a.q, h)
	a.headViewInto(s.kh, a.k, h)
	a.headViewInto(s.vh, a.v, h)
	attn := a.attn[h]

	matMulT1Rows(s.dvh, attn, s.doh, 0, n)   // n×Dh
	matMulT2Rows(s.dattn, s.doh, s.vh, 0, n) // n×n
	// Softmax backward, row-wise: dS = A ⊙ (dA − Σⱼ dAⱼAⱼ).
	for i := 0; i < n; i++ {
		arow := attn.Row(i)
		darow := s.dattn.Row(i)
		dot := 0.0
		for j := range arow {
			dot += arow[j] * darow[j]
		}
		dsrow := s.dscores.Row(i)
		for j := range arow {
			dsrow[j] = arow[j] * (darow[j] - dot)
		}
	}
	s.dscores.Scale(scale)
	matMulRows(s.dqh, s.dscores, s.kh, 0, n)   // n×Dh
	matMulT1Rows(s.dkh, s.dscores, s.qh, 0, n) // n×Dh
	a.headAccum(dq, s.dqh, h)
	a.headAccum(dk, s.dkh, h)
	a.headAccum(dv, s.dvh, h)
}
