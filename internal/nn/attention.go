package nn

import (
	"math"

	"github.com/pythia-db/pythia/internal/sim"
)

// MHSA is multi-head self-attention (Vaswani et al.): per head h,
// Attention(Qh, Kh, Vh) = softmax(Qh Khᵀ / √dₕ) Vh, heads concatenated and
// projected. Pythia's encoder stacks two of these with 10 heads at model
// dimension 100 (paper §5.1); the experiment configs scale the dimensions
// down but keep the architecture.
type MHSA struct {
	D, H, Dh int
	Wq, Wk   *Linear
	Wv, Wo   *Linear

	// caches for backward
	q, k, v *Mat
	attn    []*Mat // per-head attention probabilities (n×n)
	concat  *Mat
}

// NewMHSA builds an attention block. D must be divisible by H.
func NewMHSA(name string, d, heads int, r *sim.Rand) *MHSA {
	if heads <= 0 || d%heads != 0 {
		panic("nn: model dim must be divisible by head count")
	}
	return &MHSA{
		D: d, H: heads, Dh: d / heads,
		Wq: NewLinear(name+".q", d, d, r),
		Wk: NewLinear(name+".k", d, d, r),
		Wv: NewLinear(name+".v", d, d, r),
		Wo: NewLinear(name+".o", d, d, r),
	}
}

// Params returns all projection parameters.
func (a *MHSA) Params() []*Param {
	var out []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		out = append(out, l.Params()...)
	}
	return out
}

// headView returns the n×Dh slice of m for head h as a fresh matrix.
func (a *MHSA) headView(m *Mat, h int) *Mat {
	out := NewMat(m.Rows, a.Dh)
	off := h * a.Dh
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[off:off+a.Dh])
	}
	return out
}

// headAccum adds src (n×Dh) into dst's columns for head h.
func (a *MHSA) headAccum(dst, src *Mat, h int) {
	off := h * a.Dh
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(i)[off : off+a.Dh]
		srow := src.Row(i)
		for j := range srow {
			drow[j] += srow[j]
		}
	}
}

// Forward computes self-attention over the n×D sequence x.
func (a *MHSA) Forward(x *Mat) *Mat {
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)
	n := x.Rows
	a.attn = make([]*Mat, a.H)
	a.concat = NewMat(n, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	for h := 0; h < a.H; h++ {
		qh := a.headView(a.q, h)
		kh := a.headView(a.k, h)
		vh := a.headView(a.v, h)
		scores := MatMulT2(qh, kh).Scale(scale) // n×n
		scores.SoftmaxRows()
		a.attn[h] = scores
		oh := MatMul(scores, vh)
		a.headAccum(a.concat, oh, h)
	}
	return a.Wo.Forward(a.concat)
}

// Backward propagates dY through the attention block and returns dX.
func (a *MHSA) Backward(dy *Mat) *Mat {
	dConcat := a.Wo.Backward(dy)
	n := dy.Rows
	dq := NewMat(n, a.D)
	dk := NewMat(n, a.D)
	dv := NewMat(n, a.D)
	scale := 1 / math.Sqrt(float64(a.Dh))
	for h := 0; h < a.H; h++ {
		doh := a.headView(dConcat, h)
		qh := a.headView(a.q, h)
		kh := a.headView(a.k, h)
		vh := a.headView(a.v, h)
		attn := a.attn[h]

		dvh := MatMulT1(attn, doh) // n×Dh
		dattn := MatMulT2(doh, vh) // n×n
		// Softmax backward, row-wise: dS = A ⊙ (dA − Σⱼ dAⱼAⱼ).
		dscores := NewMat(n, n)
		for i := 0; i < n; i++ {
			arow := attn.Row(i)
			darow := dattn.Row(i)
			dot := 0.0
			for j := range arow {
				dot += arow[j] * darow[j]
			}
			dsrow := dscores.Row(i)
			for j := range arow {
				dsrow[j] = arow[j] * (darow[j] - dot)
			}
		}
		dscores.Scale(scale)
		dqh := MatMul(dscores, kh)   // n×Dh
		dkh := MatMulT1(dscores, qh) // n×Dh
		a.headAccum(dq, dqh, h)
		a.headAccum(dk, dkh, h)
		a.headAccum(dv, dvh, h)
	}
	dx := a.Wq.Backward(dq)
	AddInPlace(dx, a.Wk.Backward(dk))
	AddInPlace(dx, a.Wv.Backward(dv))
	return dx
}
