package nn

import (
	"math"
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMul(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Mat{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	r := sim.NewRand(1)
	a := randMat(r, 4, 3)
	b := randMat(r, 4, 5)
	// aᵀ @ b via explicit transpose must equal MatMulT1.
	at := NewMat(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	got := MatMulT1(a, b)
	want := MatMul(at, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatal("MatMulT1 disagrees with explicit transpose")
		}
	}
	c := randMat(r, 6, 5)
	bt := NewMat(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got2 := MatMulT2(c, b)
	want2 := MatMul(c, bt)
	for i := range want2.Data {
		if !almostEq(got2.Data[i], want2.Data[i], 1e-12) {
			t.Fatal("MatMulT2 disagrees with explicit transpose")
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3))
}

func TestSoftmaxRows(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 1000, 1000, 1000}}
	m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", m.Row(i))
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-12) {
			t.Fatalf("softmax row sums to %f", sum)
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	// Second row exercises numerical stability (exp(1000) overflows naive code).
	if !almostEq(m.At(1, 0), 1.0/3, 1e-12) {
		t.Fatal("softmax unstable on large inputs")
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(1000) != 1 || !almostEq(Sigmoid(-1000), 0, 1e-12) {
		t.Fatal("Sigmoid saturation wrong")
	}
	if !almostEq(Sigmoid(2)+Sigmoid(-2), 1, 1e-12) {
		t.Fatal("Sigmoid symmetry broken")
	}
}

func TestAddAndScale(t *testing.T) {
	a := &Mat{Rows: 1, Cols: 3, Data: []float64{1, 2, 3}}
	b := &Mat{Rows: 1, Cols: 3, Data: []float64{10, 20, 30}}
	c := Add(a, b)
	if c.Data[2] != 33 {
		t.Fatal("Add wrong")
	}
	AddInPlace(a, b)
	if a.Data[0] != 11 {
		t.Fatal("AddInPlace wrong")
	}
	a.Scale(2)
	if a.Data[0] != 22 {
		t.Fatal("Scale wrong")
	}
	a.AddRowVec([]float64{1, 1, 1})
	if a.Data[0] != 23 {
		t.Fatal("AddRowVec wrong")
	}
	a.Zero()
	if a.Norm() != 0 {
		t.Fatal("Zero/Norm wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := &Mat{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone aliases source")
	}
}

func randMat(r *sim.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}
