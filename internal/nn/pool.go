package nn

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// This file implements the deterministic worker pool behind the parallel
// compute kernels. The design has two halves:
//
//   - A single process-wide set of persistent worker goroutines, sized once
//     to the machine. Every Pool handle shares it, so however many models
//     train or infer concurrently (the predictor fans out across per-object
//     models), the total kernel-level concurrency stays bounded by the
//     hardware — there is no pool-per-model oversubscription.
//
//   - Pool handles, which carry only a shard-count policy (how many pieces
//     to cut each kernel into). Shards are *owned*, not stolen: shard k of a
//     row-sharded kernel always covers the same contiguous output rows, and
//     every output element is written by exactly one shard using the same
//     floating-point accumulation order as the serial reference kernel.
//     Results are therefore bitwise identical for any thread count — the
//     repo's reproducibility contract (train twice, get identical
//     parameters) holds at Threads=1 and Threads=N alike.
//
// Deadlock/saturation policy: the submitting goroutine executes shard 0
// itself and hands the rest to idle persistent workers; if no worker is
// free (e.g. many models are already training in parallel), the shard runs
// inline on the submitter instead of queueing. Kernel tasks never submit
// sub-tasks, so the pool cannot deadlock, and a saturated system degrades
// to exactly the serial schedule rather than spawning extra goroutines.

// workCh feeds the shared persistent workers. It is unbuffered on purpose:
// a send succeeds only if an idle worker is parked on the receive, which is
// what lets submitters detect saturation and run shards inline instead.
var (
	workerMu    sync.Mutex
	workerCount int
	workCh      = make(chan func())
)

// ensureWorkers grows the shared worker set to at least n goroutines.
// Workers are cheap (a parked goroutine) and live for the process.
func ensureWorkers(n int) {
	workerMu.Lock()
	defer workerMu.Unlock()
	for ; workerCount < n; workerCount++ {
		//pythia:goleak-ok shared process-lifetime workers, parked on an unbuffered channel when idle; bounding them per call would re-spawn on every parallel section
		go func() {
			for f := range workCh {
				f()
			}
		}()
	}
}

// defaultThreads resolves the process default shard count: the
// PYTHIA_THREADS environment variable when set to a positive integer,
// otherwise runtime.NumCPU().
var defaultThreads = sync.OnceValue(func() int {
	if s := os.Getenv("PYTHIA_THREADS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
})

// DefaultThreads returns the process-wide default thread count used when a
// Pool is built with threads <= 0: PYTHIA_THREADS if set, else NumCPU.
func DefaultThreads() int { return defaultThreads() }

// Pool is a handle on the shared worker set with a fixed shard-count
// policy. A nil Pool (or one with one thread) runs every kernel serially;
// the zero-ish serial behavior is what all layers get until a Runtime is
// bound, so existing construction paths stay valid.
type Pool struct {
	threads int
}

// NewPool returns a pool that cuts kernels into up to threads shards.
// threads <= 0 selects DefaultThreads(). The persistent workers backing the
// pool are shared process-wide.
func NewPool(threads int) *Pool {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > 1 {
		ensureWorkers(threads - 1)
	}
	return &Pool{threads: threads}
}

// Threads reports the shard count. Nil-safe: a nil pool is serial.
func (p *Pool) Threads() int {
	if p == nil || p.threads < 1 {
		return 1
	}
	return p.threads
}

// parallelMinWork is the approximate scalar-op count below which the
// fan-out overhead (~1µs of channel/WaitGroup traffic per shard) exceeds
// the win. The cutoff depends only on shapes, so whether a kernel fans out
// is itself deterministic — and because sharding never changes results,
// the cutoff affects speed only.
const parallelMinWork = 16 * 1024

// shard splits [0, n) into at most p.Threads() contiguous chunks and runs
// fn on each, returning after all complete. work is the approximate total
// scalar-op count of the kernel; small kernels run inline. fn must touch
// only the elements its [lo, hi) range owns.
func (p *Pool) shard(n, work int, fn func(lo, hi int)) {
	t := p.Threads()
	if t > n {
		t = n
	}
	if t <= 1 || work < parallelMinWork {
		fn(0, n)
		return
	}
	chunk := (n + t - 1) / t
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		task := func() {
			fn(lo, hi)
			wg.Done()
		}
		select {
		case workCh <- task:
		default:
			// Every worker is busy (other models are training on the same
			// shared set): run the shard here rather than oversubscribe.
			task()
		}
	}
	fn(0, chunk)
	wg.Wait()
}

// Run executes fn(0) … fn(n-1) across the pool and returns when all have
// completed. Task i is owned by shard i mod t, so the assignment is
// deterministic. Used for head-parallel attention, where the n tasks are
// independent by construction; fn must not submit pool work itself.
func (p *Pool) Run(n int, fn func(i int)) {
	t := p.Threads()
	if t > n {
		t = n
	}
	if t <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < t; w++ {
		w := w
		wg.Add(1)
		task := func() {
			for i := w; i < n; i += t {
				fn(i)
			}
			wg.Done()
		}
		select {
		case workCh <- task:
		default:
			task()
		}
	}
	for i := 0; i < n; i += t {
		fn(i)
	}
	wg.Wait()
}
