package nn

import "math"

// Int8 quantization for the inference-only path. Training stays float64
// end to end; after training, Linear.Quantize snapshots the weight matrix
// into per-tensor symmetric int8 form and subsequent Forwards run the
// int8×int8→int32 kernel below. The win on CPU is memory traffic: the
// decoder's wide output layer reads 8× fewer bytes per forward, which is
// what bounds a 1×hidden @ hidden×pages matmul.
//
// Scheme (per-tensor symmetric, zero-point 0):
//
//	scale  = max|w| / 127
//	q(w)   = clamp(round(w / scale), -127, 127)
//	y[i,j] = rowScale(x,i) · scale · Σ_r qx[i,r]·qw[r,j]    (+ float bias)
//
// Activations are quantized dynamically per row at each forward (their
// range is input-dependent), weights once at Quantize time. The integer
// accumulator is int32: |Σ| ≤ K·127² requires K ≤ ~133 000, far above any
// layer width in this repo (dstCheck panics come first).
//
// Determinism: integer accumulation is exact, so the kernel's result is
// independent of shard count by construction; the r-ascending loop order is
// kept anyway to match the repo's kernel idiom.

// qmax is the symmetric int8 quantization ceiling (the -128 slot is unused
// so that the grid is symmetric around zero).
const qmax = 127

// QuantMat is a per-tensor symmetric int8 quantization of a K×N float64
// weight matrix, stored TRANSPOSED (Q[j*K+r] holds W[r,j]): the inference
// matmul walks one activation row and one weight column together, and the
// transposed layout makes both contiguous.
type QuantMat struct {
	K, N  int
	Q     []int8
	Scale float64
}

// QuantizeMat quantizes a float64 matrix (per-tensor symmetric, transposed
// storage). An all-zero matrix gets scale 1 so dequantization stays exact.
func QuantizeMat(m *Mat) *QuantMat {
	maxAbs := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	q := &QuantMat{K: m.Rows, N: m.Cols, Q: make([]int8, len(m.Data)), Scale: 1}
	if maxAbs > 0 {
		q.Scale = maxAbs / qmax
	}
	inv := 1 / q.Scale
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, v := range row {
			q.Q[j*q.K+r] = clampQ8(math.Round(v * inv))
		}
	}
	return q
}

// clampQ8 saturates a rounded value to the symmetric int8 grid.
func clampQ8(v float64) int8 {
	if v > qmax {
		return qmax
	}
	if v < -qmax {
		return -qmax
	}
	return int8(v)
}

// QuantizeRows quantizes each row of x symmetrically into q (len ≥
// Rows×Cols) and writes the per-row scale into scales (len ≥ Rows). An
// all-zero row gets scale 0, which zeroes its output row exactly.
//
//pythia:noalloc
func QuantizeRows(x *Mat, q []int8, scales []float64) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		qrow := q[i*x.Cols : (i+1)*x.Cols]
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			scales[i] = 0
			for j := range qrow {
				qrow[j] = 0
			}
			continue
		}
		scale := maxAbs / qmax
		scales[i] = scale
		inv := 1 / scale
		for j, v := range row {
			qrow[j] = clampQ8(math.Round(v * inv))
		}
	}
}

// MatMulQ8Into computes dst = dequant(qa @ b): qa holds rows×b.K row-major
// int8 activations with per-row scales, b is a quantized (transposed)
// weight matrix. Each output element is one int32 dot product scaled back
// to float64. Sharding follows MatMulInto: rows when there are enough to
// feed the workers, columns for the single-row inference shape.
func (p *Pool) MatMulQ8Into(dst *Mat, qa []int8, scaleA []float64, rows int, b *QuantMat) {
	if len(qa) < rows*b.K || len(scaleA) < rows {
		panic("nn: matmulQ8 activation buffer too small")
	}
	dstCheck(dst, rows, b.N, "matmulQ8")
	work := rows * b.K * b.N
	if p.serial(work) {
		matMulQ8Block(dst, qa, scaleA, b, 0, rows, 0, b.N)
		return
	}
	if rows >= p.Threads() || rows >= b.N {
		p.shard(rows, work, func(lo, hi int) { matMulQ8Block(dst, qa, scaleA, b, lo, hi, 0, b.N) })
	} else {
		p.shard(b.N, work, func(lo, hi int) { matMulQ8Block(dst, qa, scaleA, b, 0, rows, lo, hi) })
	}
}

// matMulQ8Block computes output rows [ilo, ihi) × columns [jlo, jhi). Both
// the activation row and the (transposed) weight column are contiguous, so
// the int32 dot product streams both operands.
//
//pythia:noalloc
func matMulQ8Block(dst *Mat, qa []int8, scaleA []float64, b *QuantMat, ilo, ihi, jlo, jhi int) {
	k := b.K
	for i := ilo; i < ihi; i++ {
		arow := qa[i*k : (i+1)*k]
		orow := dst.Row(i)
		s := scaleA[i] * b.Scale
		// Four weight columns per pass share each activation load (the
		// activation row is sign-extended once per four dot products).
		// Integer addition is associative, so the regrouping is exact —
		// results stay bitwise identical to the naive dot product.
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			b0 := b.Q[j*k : (j+1)*k]
			b1 := b.Q[(j+1)*k : (j+2)*k]
			b2 := b.Q[(j+2)*k : (j+3)*k]
			b3 := b.Q[(j+3)*k : (j+4)*k]
			var c0, c1, c2, c3 int32
			for r, av := range arow {
				a := int32(av)
				c0 += a * int32(b0[r])
				c1 += a * int32(b1[r])
				c2 += a * int32(b2[r])
				c3 += a * int32(b3[r])
			}
			orow[j] = float64(c0) * s
			orow[j+1] = float64(c1) * s
			orow[j+2] = float64(c2) * s
			orow[j+3] = float64(c3) * s
		}
		for ; j < jhi; j++ {
			brow := b.Q[j*k : (j+1)*k]
			var acc int32
			for r, av := range arow {
				acc += int32(av) * int32(brow[r])
			}
			orow[j] = float64(acc) * s
		}
	}
}

// MatMulQ8 is the serial reference implementation the pool kernel is
// golden-tested against.
func MatMulQ8(qa []int8, scaleA []float64, rows int, b *QuantMat) *Mat {
	out := NewMat(rows, b.N)
	matMulQ8Block(out, qa, scaleA, b, 0, rows, 0, b.N)
	return out
}
