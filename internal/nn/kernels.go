package nn

import "fmt"

// Destination-passing compute kernels. Each kernel writes into a
// caller-supplied matrix (usually from an Arena) instead of allocating, and
// each has a range form that computes only the output elements in [lo, hi)
// — the unit the Pool shards across workers.
//
// Determinism: every output element is owned by exactly one shard, and the
// per-element floating-point accumulation order (ascending over the
// contracted index) is identical in the range kernels and the serial
// reference implementations in mat.go. Sharding therefore changes which
// goroutine computes an element, never the bit pattern of the result; see
// the golden tests in pool_test.go.
//
// The dense kernels carry no zero-skip branch. The seed code skipped
// multiplications where the activation was exactly zero (useful for one-hot
// rows), but post-embedding activations are dense: BenchmarkMatMulSkip
// measures the branch as a wash there (a never-taken branch predicts
// perfectly), and no matmul call site in the model feeds one-hot rows, so
// the dense kernels drop it as dead weight. The one place exact zeros are
// common — ReLU outputs feeding a weight-gradient accumulation, where one
// skip saves a whole b-row walk — keeps it in AccumT1Into, a measured ~2×
// win at half-sparsity (BenchmarkAccumT1Sparse).

// dstCheck panics when dst does not have the required shape.
func dstCheck(dst *Mat, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("nn: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// serial reports whether a kernel of roughly work scalar ops should skip the
// fan-out entirely. Every Pool method checks this *before* constructing its
// shard closure: a func literal is heap-allocated at the point it appears,
// so keeping it out of the serial path is what makes steady-state training
// steps allocation-free at Threads=1 (TestArenaSteadyStateAllocs).
func (p *Pool) serial(work int) bool {
	return p.Threads() <= 1 || work < parallelMinWork
}

// MatMulInto computes dst = a @ b. dst must not alias a or b.
func (p *Pool) MatMulInto(dst, a, b *Mat) {
	shapeCheck(a.Cols == b.Rows, "matmul", a, b)
	dstCheck(dst, a.Rows, b.Cols, "matmul")
	work := a.Rows * a.Cols * b.Cols
	if p.serial(work) {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	// Row-shard when there are enough output rows to feed every worker;
	// otherwise (e.g. the decoder's 1×D @ D×pages layer) shard the output
	// columns. Both preserve the per-element k-ascending accumulation
	// order, so the choice affects speed only.
	if a.Rows >= p.Threads() || a.Rows >= b.Cols {
		p.shard(a.Rows, work, func(lo, hi int) { matMulRows(dst, a, b, lo, hi) })
	} else {
		p.shard(b.Cols, work, func(lo, hi int) { matMulCols(dst, a, b, lo, hi) })
	}
}

// matMulRows computes dst rows [lo, hi) of a @ b in i-k-j order: the inner
// loop walks b and dst rows contiguously, which matters for the decoder's
// wide output layer.
//
//pythia:noalloc
func matMulRows(dst, a, b *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulCols computes dst columns [jlo, jhi) of a @ b for all rows.
//
//pythia:noalloc
func matMulCols(dst, a, b *Mat, jlo, jhi int) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)[jlo:jhi]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			brow := b.Row(k)[jlo:jhi]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT1Into computes dst = aᵀ @ b (weight-gradient shape: dW = Xᵀ dY).
// Restructured from the serial r-outer loop so that each *output* row i
// (column i of a) is owned by exactly one worker; the contraction still
// runs r-ascending per element, so results match MatMulT1 bitwise.
func (p *Pool) MatMulT1Into(dst, a, b *Mat) {
	shapeCheck(a.Rows == b.Rows, "matmulT1", a, b)
	dstCheck(dst, a.Cols, b.Cols, "matmulT1")
	work := a.Rows * a.Cols * b.Cols
	if p.serial(work) {
		matMulT1Rows(dst, a, b, 0, a.Cols)
		return
	}
	p.shard(a.Cols, work, func(lo, hi int) { matMulT1Rows(dst, a, b, lo, hi) })
}

//pythia:noalloc
func matMulT1Rows(dst, a, b *Mat, ilo, ihi int) {
	for i := ilo; i < ihi; i++ {
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for r := 0; r < a.Rows; r++ {
			av := a.Data[r*a.Cols+i]
			brow := b.Row(r)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AccumT1Into computes dst += aᵀ @ b without clearing dst — the in-place
// weight-gradient accumulation (dW += Xᵀ dY). Rows of dst are owned by one
// worker each, like MatMulT1Into. The zero-skip stays here on purpose: a is
// an activation matrix that is ReLU output at the decoder and FFN second
// layers, where roughly half the entries are exactly zero and skipping a
// whole b-row walk per zero is a measured win (BenchmarkAccumT1Sparse) that
// costs little on dense inputs.
func (p *Pool) AccumT1Into(dst, a, b *Mat) {
	shapeCheck(a.Rows == b.Rows, "accumT1", a, b)
	dstCheck(dst, a.Cols, b.Cols, "accumT1")
	work := a.Rows * a.Cols * b.Cols
	if p.serial(work) {
		accumT1Rows(dst, a, b, 0, a.Cols)
		return
	}
	p.shard(a.Cols, work, func(lo, hi int) { accumT1Rows(dst, a, b, lo, hi) })
}

//pythia:noalloc
func accumT1Rows(dst, a, b *Mat, ilo, ihi int) {
	for i := ilo; i < ihi; i++ {
		orow := dst.Row(i)
		for r := 0; r < a.Rows; r++ {
			av := a.Data[r*a.Cols+i]
			if av == 0 {
				continue
			}
			brow := b.Row(r)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT2Into computes dst = a @ bᵀ (input-gradient shape: dX = dY Wᵀ).
func (p *Pool) MatMulT2Into(dst, a, b *Mat) {
	shapeCheck(a.Cols == b.Cols, "matmulT2", a, b)
	dstCheck(dst, a.Rows, b.Rows, "matmulT2")
	work := a.Rows * a.Cols * b.Rows
	if p.serial(work) {
		matMulT2Rows(dst, a, b, 0, a.Rows)
		return
	}
	if a.Rows >= p.Threads() || a.Rows >= b.Rows {
		p.shard(a.Rows, work, func(lo, hi int) { matMulT2Rows(dst, a, b, lo, hi) })
	} else {
		p.shard(b.Rows, work, func(lo, hi int) { matMulT2Cols(dst, a, b, lo, hi) })
	}
}

//pythia:noalloc
func matMulT2Rows(dst, a, b *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

//pythia:noalloc
func matMulT2Cols(dst, a, b *Mat, jlo, jhi int) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := jlo; j < jhi; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// AddInto computes dst = a + b element-wise. Elements are owned, not
// accumulated, so any sharding is trivially deterministic.
func (p *Pool) AddInto(dst, a, b *Mat) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	dstCheck(dst, a.Rows, a.Cols, "add")
	if p.serial(len(a.Data)) {
		addRange(dst, a, b, 0, len(a.Data))
		return
	}
	p.shard(len(a.Data), len(a.Data), func(lo, hi int) { addRange(dst, a, b, lo, hi) })
}

//pythia:noalloc
func addRange(dst, a, b *Mat, lo, hi int) {
	da, db, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
	for i := range dd {
		dd[i] = da[i] + db[i]
	}
}

// AddInPlace accumulates b into a.
func (p *Pool) AddInPlace(a, b *Mat) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	if p.serial(len(a.Data)) {
		accumRange(a, b, 0, len(a.Data))
		return
	}
	p.shard(len(a.Data), len(a.Data), func(lo, hi int) { accumRange(a, b, lo, hi) })
}

//pythia:noalloc
func accumRange(a, b *Mat, lo, hi int) {
	da, db := a.Data[lo:hi], b.Data[lo:hi]
	for i := range db {
		da[i] += db[i]
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of m in
// place, sharding rows across the pool (rows are independent).
func (p *Pool) SoftmaxRows(m *Mat) {
	if p.serial(len(m.Data) * 4) {
		softmaxRowRange(m, 0, m.Rows)
		return
	}
	p.shard(m.Rows, len(m.Data)*4, func(lo, hi int) { softmaxRowRange(m, lo, hi) })
}

//pythia:noalloc
func softmaxRowRange(m *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		softmaxRow(m.Row(i))
	}
}
