package nn

import (
	"math"

	"github.com/pythia-db/pythia/internal/sim"
)

// Param is one learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	Name  string
	W, G  *Mat
	adamM *Mat
	adamV *Mat
}

// NewParam allocates a parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		W:     NewMat(rows, cols),
		G:     NewMat(rows, cols),
		adamM: NewMat(rows, cols),
		adamV: NewMat(rows, cols),
	}
}

// XavierInit fills the parameter with Glorot-uniform values.
func (p *Param) XavierInit(r *sim.Rand) {
	limit := math.Sqrt(6.0 / float64(p.W.Rows+p.W.Cols))
	for i := range p.W.Data {
		p.W.Data[i] = (2*r.Float64() - 1) * limit
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Module is anything owning parameters; the optimizer walks Params().
type Module interface {
	Params() []*Param
}

// Linear is a fully connected layer Y = X W + b.
type Linear struct {
	In, Out int
	Weight  *Param // In×Out
	Bias    *Param // 1×Out

	x *Mat // cached input for backward
}

// NewLinear builds a Xavier-initialized linear layer.
func NewLinear(name string, in, out int, r *sim.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam(name+".w", in, out),
		Bias:   NewParam(name+".b", 1, out),
	}
	l.Weight.XavierInit(r)
	return l
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward computes X W + b, caching X for Backward.
func (l *Linear) Forward(x *Mat) *Mat {
	l.x = x
	y := MatMul(x, l.Weight.W)
	y.AddRowVec(l.Bias.W.Data)
	return y
}

// Backward accumulates dW, db and returns dX. The weight gradient is
// accumulated in place (dW += xᵀ dy) rather than through a temporary
// matrix: for wide output layers (the per-page decoder head) the temporary
// would allocate In×Out floats per training step, dominating runtime via
// the garbage collector.
func (l *Linear) Backward(dy *Mat) *Mat {
	shapeCheck(l.x.Rows == dy.Rows, "linear backward", l.x, dy)
	wg := l.Weight.G
	for r := 0; r < l.x.Rows; r++ {
		xrow := l.x.Row(r)
		dyrow := dy.Row(r)
		for i, xv := range xrow {
			if xv == 0 {
				continue
			}
			grow := wg.Row(i)
			for j, dv := range dyrow {
				grow[j] += xv * dv
			}
		}
	}
	bg := l.Bias.G.Data
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			bg[j] += row[j]
		}
	}
	return MatMulT2(dy, l.Weight.W)
}

// Embedding maps token ids to D-dimensional vectors.
type Embedding struct {
	V, D  int
	Table *Param // V×D

	ids []int // cached for backward
}

// NewEmbedding builds an embedding table with small-normal init.
func NewEmbedding(name string, vocab, dim int, r *sim.Rand) *Embedding {
	e := &Embedding{V: vocab, D: dim, Table: NewParam(name+".emb", vocab, dim)}
	for i := range e.Table.W.Data {
		e.Table.W.Data[i] = r.NormFloat64() * 0.02
	}
	return e
}

// Params returns the table.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Forward gathers the rows for ids into an n×D matrix.
func (e *Embedding) Forward(ids []int) *Mat {
	e.ids = ids
	out := NewMat(len(ids), e.D)
	for i, id := range ids {
		if id < 0 || id >= e.V {
			panic("nn: embedding id out of range")
		}
		copy(out.Row(i), e.Table.W.Row(id))
	}
	return out
}

// Backward scatters the output gradient back into the used rows.
func (e *Embedding) Backward(dy *Mat) {
	for i, id := range e.ids {
		grow := e.Table.G.Row(id)
		drow := dy.Row(i)
		for j := range drow {
			grow[j] += drow[j]
		}
	}
}

// AddPositional adds sinusoidal position encodings (Vaswani et al.) to x in
// place — "the serialized query tokens are first appended with sequence
// information to be used by a transformer" (paper §5.1).
func AddPositional(x *Mat) {
	d := x.Cols
	for pos := 0; pos < x.Rows; pos++ {
		row := x.Row(pos)
		for j := 0; j < d; j++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(j/2))/float64(d))
			if j%2 == 0 {
				row[j] += math.Sin(angle)
			} else {
				row[j] += math.Cos(angle)
			}
		}
	}
}

// LayerNorm normalizes each row to zero mean / unit variance, then applies a
// learned gain and bias.
type LayerNorm struct {
	D    int
	Gain *Param // 1×D
	Bias *Param // 1×D

	x     *Mat
	xhat  *Mat
	invSD []float64
}

const lnEps = 1e-5

// NewLayerNorm builds a layer norm with unit gain and zero bias.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{D: d, Gain: NewParam(name+".g", 1, d), Bias: NewParam(name+".b", 1, d)}
	for i := range ln.Gain.W.Data {
		ln.Gain.W.Data[i] = 1
	}
	return ln
}

// Params returns gain and bias.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gain, ln.Bias} }

// Forward normalizes each row.
func (ln *LayerNorm) Forward(x *Mat) *Mat {
	ln.x = x
	ln.xhat = NewMat(x.Rows, x.Cols)
	ln.invSD = make([]float64, x.Rows)
	out := NewMat(x.Rows, x.Cols)
	g, b := ln.Gain.W.Data, ln.Bias.W.Data
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+lnEps)
		ln.invSD[i] = inv
		xh := ln.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			orow[j] = xh[j]*g[j] + b[j]
		}
	}
	return out
}

// Backward returns dX and accumulates gain/bias gradients.
func (ln *LayerNorm) Backward(dy *Mat) *Mat {
	dx := NewMat(dy.Rows, dy.Cols)
	g := ln.Gain.W.Data
	gg, bg := ln.Gain.G.Data, ln.Bias.G.Data
	n := float64(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		// Accumulate parameter grads.
		for j, d := range dyr {
			gg[j] += d * xh[j]
			bg[j] += d
		}
		// dxhat = dy * g; dx = invSD*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)).
		var sum1, sum2 float64
		dxh := make([]float64, dy.Cols)
		for j, d := range dyr {
			dxh[j] = d * g[j]
			sum1 += dxh[j]
			sum2 += dxh[j] * xh[j]
		}
		inv := ln.invSD[i]
		dxr := dx.Row(i)
		for j := range dxr {
			dxr[j] = inv * (dxh[j] - sum1/n - xh[j]*sum2/n)
		}
	}
	return dx
}

// ReLU is the rectifier with cached mask.
type ReLU struct {
	mask []bool
}

// Forward zeroes negatives.
func (r *ReLU) Forward(x *Mat) *Mat {
	out := NewMat(x.Rows, x.Cols)
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the gradient through the cached mask.
func (r *ReLU) Backward(dy *Mat) *Mat {
	dx := NewMat(dy.Rows, dy.Cols)
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}
