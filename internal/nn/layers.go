package nn

import (
	"math"

	"github.com/pythia-db/pythia/internal/sim"
)

// Param is one learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	Name  string
	W, G  *Mat
	adamM *Mat
	adamV *Mat
}

// NewParam allocates a parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		W:     NewMat(rows, cols),
		G:     NewMat(rows, cols),
		adamM: NewMat(rows, cols),
		adamV: NewMat(rows, cols),
	}
}

// XavierInit fills the parameter with Glorot-uniform values.
func (p *Param) XavierInit(r *sim.Rand) {
	limit := math.Sqrt(6.0 / float64(p.W.Rows+p.W.Cols))
	for i := range p.W.Data {
		p.W.Data[i] = (2*r.Float64() - 1) * limit
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Module is anything owning parameters; the optimizer walks Params().
type Module interface {
	Params() []*Param
}

// Linear is a fully connected layer Y = X W + b.
type Linear struct {
	In, Out int
	Weight  *Param // In×Out
	Bias    *Param // 1×Out

	rt Runtime
	x  *Mat // cached input for backward

	// qw, when set by Quantize, switches Forward to the int8 inference
	// kernel; qx/qscale are the per-forward activation-quantization scratch
	// (grown once, reused thereafter — the path stays noalloc at steady
	// state).
	qw     *QuantMat
	qx     []int8
	qscale []float64
}

// SetRuntime binds the worker pool and scratch arena the layer computes
// with. The zero Runtime (the default) means serial, heap-allocating.
func (l *Linear) SetRuntime(rt Runtime) { l.rt = rt }

// NewLinear builds a Xavier-initialized linear layer.
func NewLinear(name string, in, out int, r *sim.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam(name+".w", in, out),
		Bias:   NewParam(name+".b", 1, out),
	}
	l.Weight.XavierInit(r)
	return l
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Quantize snapshots the float weights into int8 form and switches Forward
// to the quantized kernel. The float weights stay in place (the bias is
// applied in float either way), but Backward refuses to run: quantization
// is an inference-only commitment.
func (l *Linear) Quantize() {
	l.qw = QuantizeMat(l.Weight.W)
}

// Quantized reports whether the layer runs the int8 inference path.
func (l *Linear) Quantized() bool { return l.qw != nil }

// Forward computes X W + b, caching X for Backward. A quantized layer
// instead quantizes the activations per row and runs the int8 kernel; the
// bias add stays float.
func (l *Linear) Forward(x *Mat) *Mat {
	l.x = x
	y := l.rt.get(x.Rows, l.Out)
	if l.qw != nil {
		need := x.Rows * x.Cols
		if cap(l.qx) < need {
			l.qx = make([]int8, need)
		}
		if cap(l.qscale) < x.Rows {
			l.qscale = make([]float64, x.Rows)
		}
		QuantizeRows(x, l.qx[:need], l.qscale[:x.Rows])
		l.rt.Pool.MatMulQ8Into(y, l.qx[:need], l.qscale[:x.Rows], x.Rows, l.qw)
		y.AddRowVec(l.Bias.W.Data)
		return y
	}
	l.rt.Pool.MatMulInto(y, x, l.Weight.W)
	y.AddRowVec(l.Bias.W.Data)
	return y
}

// Backward accumulates dW, db and returns dX. The weight gradient is
// accumulated in place (dW += xᵀ dy) rather than through a temporary
// matrix: for wide output layers (the per-page decoder head) the temporary
// would allocate In×Out floats per training step, dominating runtime via
// the garbage collector. AccumT1Into row-shards the accumulation across the
// pool (each dW row owned by one worker) and keeps the zero-skip for
// ReLU-sparse activations.
func (l *Linear) Backward(dy *Mat) *Mat {
	if l.qw != nil {
		panic("nn: Backward on a quantized Linear (quantization is inference-only)")
	}
	shapeCheck(l.x.Rows == dy.Rows, "linear backward", l.x, dy)
	l.rt.Pool.AccumT1Into(l.Weight.G, l.x, dy)
	bg := l.Bias.G.Data
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			bg[j] += row[j]
		}
	}
	dx := l.rt.get(dy.Rows, l.In)
	l.rt.Pool.MatMulT2Into(dx, dy, l.Weight.W)
	return dx
}

// Embedding maps token ids to D-dimensional vectors.
type Embedding struct {
	V, D  int
	Table *Param // V×D

	rt  Runtime
	ids []int // cached for backward
}

// SetRuntime binds execution resources.
func (e *Embedding) SetRuntime(rt Runtime) { e.rt = rt }

// NewEmbedding builds an embedding table with small-normal init.
func NewEmbedding(name string, vocab, dim int, r *sim.Rand) *Embedding {
	e := &Embedding{V: vocab, D: dim, Table: NewParam(name+".emb", vocab, dim)}
	for i := range e.Table.W.Data {
		e.Table.W.Data[i] = r.NormFloat64() * 0.02
	}
	return e
}

// Params returns the table.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Forward gathers the rows for ids into an n×D matrix.
func (e *Embedding) Forward(ids []int) *Mat {
	e.ids = ids
	out := e.rt.get(len(ids), e.D)
	for i, id := range ids {
		if id < 0 || id >= e.V {
			panic("nn: embedding id out of range")
		}
		copy(out.Row(i), e.Table.W.Row(id))
	}
	return out
}

// Backward scatters the output gradient back into the used rows. The
// scatter stays serial: a token id can repeat within a sequence, so rows of
// the gradient table are not exclusively owned, and the work is O(n·D) —
// negligible next to the matmuls.
func (e *Embedding) Backward(dy *Mat) {
	for i, id := range e.ids {
		grow := e.Table.G.Row(id)
		drow := dy.Row(i)
		for j := range drow {
			grow[j] += drow[j]
		}
	}
}

// AddPositional adds sinusoidal position encodings (Vaswani et al.) to x in
// place — "the serialized query tokens are first appended with sequence
// information to be used by a transformer" (paper §5.1).
func AddPositional(x *Mat) {
	d := x.Cols
	for pos := 0; pos < x.Rows; pos++ {
		row := x.Row(pos)
		for j := 0; j < d; j++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(j/2))/float64(d))
			if j%2 == 0 {
				row[j] += math.Sin(angle)
			} else {
				row[j] += math.Cos(angle)
			}
		}
	}
}

// LayerNorm normalizes each row to zero mean / unit variance, then applies a
// learned gain and bias.
type LayerNorm struct {
	D    int
	Gain *Param // 1×D
	Bias *Param // 1×D

	rt    Runtime
	x     *Mat
	xhat  *Mat
	invSD []float64
}

// SetRuntime binds execution resources.
func (ln *LayerNorm) SetRuntime(rt Runtime) { ln.rt = rt }

const lnEps = 1e-5

// NewLayerNorm builds a layer norm with unit gain and zero bias.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{D: d, Gain: NewParam(name+".g", 1, d), Bias: NewParam(name+".b", 1, d)}
	for i := range ln.Gain.W.Data {
		ln.Gain.W.Data[i] = 1
	}
	return ln
}

// Params returns gain and bias.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gain, ln.Bias} }

// Forward normalizes each row. Rows are independent, so the loop is
// row-sharded across the pool.
func (ln *LayerNorm) Forward(x *Mat) *Mat {
	ln.x = x
	ln.xhat = ln.rt.get(x.Rows, x.Cols)
	if cap(ln.invSD) < x.Rows {
		ln.invSD = make([]float64, x.Rows)
	}
	ln.invSD = ln.invSD[:x.Rows]
	out := ln.rt.get(x.Rows, x.Cols)
	if work := len(x.Data) * 6; ln.rt.Pool.serial(work) {
		ln.forwardRows(out, 0, x.Rows)
	} else {
		ln.rt.Pool.shard(x.Rows, work, func(lo, hi int) { ln.forwardRows(out, lo, hi) })
	}
	return out
}

// forwardRows normalizes rows [lo, hi) — the shard unit of Forward.
func (ln *LayerNorm) forwardRows(out *Mat, lo, hi int) {
	g, b := ln.Gain.W.Data, ln.Bias.W.Data
	for i := lo; i < hi; i++ {
		row := ln.x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(row))
		inv := 1 / math.Sqrt(variance+lnEps)
		ln.invSD[i] = inv
		xh := ln.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			orow[j] = xh[j]*g[j] + b[j]
		}
	}
}

// Backward returns dX and accumulates gain/bias gradients. The dX rows are
// independent and row-sharded; the gain/bias gradients reduce *across*
// rows, so they stay on the calling goroutine to keep the row-ascending
// accumulation order (and hence bitwise results) of the serial code.
func (ln *LayerNorm) Backward(dy *Mat) *Mat {
	dx := ln.rt.get(dy.Rows, dy.Cols)
	dxhat := ln.rt.get(dy.Rows, dy.Cols)
	gg, bg := ln.Gain.G.Data, ln.Bias.G.Data
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		for j, d := range dyr {
			gg[j] += d * xh[j]
			bg[j] += d
		}
	}
	if work := len(dy.Data) * 5; ln.rt.Pool.serial(work) {
		ln.backwardRows(dx, dxhat, dy, 0, dy.Rows)
	} else {
		ln.rt.Pool.shard(dy.Rows, work, func(lo, hi int) { ln.backwardRows(dx, dxhat, dy, lo, hi) })
	}
	return dx
}

// backwardRows computes dX rows [lo, hi) — the shard unit of Backward.
func (ln *LayerNorm) backwardRows(dx, dxhat, dy *Mat, lo, hi int) {
	g := ln.Gain.W.Data
	n := float64(dy.Cols)
	for i := lo; i < hi; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		// dxhat = dy * g; dx = invSD*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)).
		var sum1, sum2 float64
		dxh := dxhat.Row(i)
		for j, d := range dyr {
			dxh[j] = d * g[j]
			sum1 += dxh[j]
			sum2 += dxh[j] * xh[j]
		}
		inv := ln.invSD[i]
		dxr := dx.Row(i)
		for j := range dxr {
			dxr[j] = inv * (dxh[j] - sum1/n - xh[j]*sum2/n)
		}
	}
}

// ReLU is the rectifier. Instead of materializing a mask it caches the
// input matrix, which Backward re-tests (v > 0) — one allocation fewer per
// step, and the input is alive anyway as the previous layer's cache.
type ReLU struct {
	rt Runtime
	x  *Mat
}

// SetRuntime binds execution resources.
func (r *ReLU) SetRuntime(rt Runtime) { r.rt = rt }

// Forward zeroes negatives.
func (r *ReLU) Forward(x *Mat) *Mat {
	r.x = x
	out := r.rt.get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward gates the gradient where the cached input was positive.
func (r *ReLU) Backward(dy *Mat) *Mat {
	dx := r.rt.get(dy.Rows, dy.Cols)
	xd := r.x.Data
	for i, v := range dy.Data {
		if xd[i] > 0 {
			dx.Data[i] = v
		}
	}
	return dx
}
