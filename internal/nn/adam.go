package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter set.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64 // global gradient-norm clip; 0 disables
	params []*Param
	t      int
}

// NewAdam returns an optimizer with the usual defaults (lr as given,
// β1=0.9, β2=0.999, ε=1e-8) over params.
func NewAdam(lr float64, params []*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
}

// ZeroGrad clears every parameter's gradient.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, p := range a.params {
		for _, g := range p.G.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update using the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	scale := 1.0
	if a.Clip > 0 {
		if norm := a.GradNorm(); norm > a.Clip {
			scale = a.Clip / norm
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		w, g := p.W.Data, p.G.Data
		m, v := p.adamM.Data, p.adamV.Data
		for i := range w {
			gi := g[i] * scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			w[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// ParamCount returns the total number of scalar parameters — the harness
// reports it as "model size", matching the paper's model-size discussion.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W.Data)
	}
	return n
}
