package nn

import (
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
)

// TestEndToEndOverfit trains the full Pythia architecture (encoder +
// decoder + BCE-with-logits + Adam) on a tiny synthetic mapping from token
// sequences to label sets and checks the loss collapses and the labels are
// recovered — the smoke test that the whole stack learns.
func TestEndToEndOverfit(t *testing.T) {
	r := sim.NewRand(42)
	const (
		vocab   = 20
		dim     = 16
		heads   = 4
		outputs = 12
	)
	enc := NewEncoder(EncoderConfig{Vocab: vocab, Dim: dim, Heads: heads, Layers: 2, FFHidden: 32}, r)
	dec := NewDecoder("dec", dim, 24, outputs, r)
	params := append(enc.Params(), dec.Params()...)
	opt := NewAdam(0.01, params)
	opt.Clip = 5

	// Four distinct "queries", each mapping to a distinct page set.
	seqs := [][]int{
		{2, 5, 7, 3},
		{2, 9, 7, 4},
		{11, 5, 13},
		{11, 9, 13, 8, 6},
	}
	labels := [][]float64{
		{1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0},
		{0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1},
		{0, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 0},
	}
	bce := BCEWithLogits{}

	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		total := 0.0
		for i, seq := range seqs {
			opt.ZeroGrad()
			rep := enc.Forward(seq)
			logits := dec.Forward(rep)
			loss, dLogits := bce.Loss(logits, labels[i])
			total += loss
			dRep := dec.Backward(dLogits)
			enc.Backward(dRep)
			opt.Step()
		}
		if epoch == 0 {
			first = total
		}
		last = total
	}
	if last >= first/10 {
		t.Fatalf("loss did not collapse: first=%.4f last=%.4f", first, last)
	}
	// Thresholded predictions must recover the training labels exactly.
	for i, seq := range seqs {
		logits := dec.Forward(enc.Forward(seq))
		for j, x := range logits.Data {
			pred := 0.0
			if Sigmoid(x) >= 0.5 {
				pred = 1
			}
			if pred != labels[i][j] {
				t.Fatalf("seq %d label %d not recovered (p=%.3f want %v)", i, j, Sigmoid(x), labels[i][j])
			}
		}
	}
}

func TestAdamStepReducesLossOnQuadratic(t *testing.T) {
	p := NewParam("x", 1, 3)
	p.W.Data = []float64{5, -3, 2}
	opt := NewAdam(0.1, []*Param{p})
	lossOf := func() float64 {
		s := 0.0
		for _, v := range p.W.Data {
			s += v * v
		}
		return s
	}
	start := lossOf()
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		for j, v := range p.W.Data {
			p.G.Data[j] = 2 * v
		}
		opt.Step()
	}
	if end := lossOf(); end > start/100 {
		t.Fatalf("Adam failed to minimize quadratic: %f -> %f", start, end)
	}
}

func TestAdamClip(t *testing.T) {
	p := NewParam("x", 1, 2)
	opt := NewAdam(0.1, []*Param{p})
	opt.Clip = 1
	p.G.Data = []float64{300, 400} // norm 500
	if n := opt.GradNorm(); n != 500 {
		t.Fatalf("GradNorm = %f", n)
	}
	opt.Step()
	// With clipping, both moments were fed gradients scaled by 1/500; the
	// step size is bounded by LR regardless, so just verify no explosion.
	for _, v := range p.W.Data {
		if v > 0 || v < -0.2 {
			t.Fatalf("clipped step moved weight to %f", v)
		}
	}
}

func TestParamCount(t *testing.T) {
	r := sim.NewRand(0)
	l := NewLinear("t", 3, 4, r)
	if got := ParamCount(l.Params()); got != 3*4+4 {
		t.Fatalf("ParamCount = %d", got)
	}
}

func TestBCELossValues(t *testing.T) {
	bce := BCEWithLogits{}
	logits := &Mat{Rows: 1, Cols: 2, Data: []float64{0, 0}}
	loss, _ := bce.Loss(logits, []float64{1, 0})
	// −log(0.5) for each output.
	if !almostEq(loss, 0.6931471805599453, 1e-12) {
		t.Fatalf("BCE at logit 0 = %f", loss)
	}
	// Confident correct predictions → tiny loss.
	logits.Data = []float64{20, -20}
	loss, _ = bce.Loss(logits, []float64{1, 0})
	if loss > 1e-8 {
		t.Fatalf("confident-correct loss = %g", loss)
	}
	// Confident wrong predictions → large loss, no NaN/Inf.
	logits.Data = []float64{-40, 40}
	loss, grad := bce.Loss(logits, []float64{1, 0})
	if loss < 10 || loss != loss {
		t.Fatalf("confident-wrong loss = %f", loss)
	}
	for _, g := range grad.Data {
		if g != g {
			t.Fatal("NaN gradient")
		}
	}
}

func TestPosWeightScalesPositives(t *testing.T) {
	logits := &Mat{Rows: 1, Cols: 1, Data: []float64{0}}
	l1, g1 := BCEWithLogits{PosWeight: 1}.Loss(logits, []float64{1})
	l3, g3 := BCEWithLogits{PosWeight: 3}.Loss(logits, []float64{1})
	if !almostEq(l3, 3*l1, 1e-12) {
		t.Fatalf("pos-weighted loss %f != 3×%f", l3, l1)
	}
	if !almostEq(g3.Data[0], 3*g1.Data[0], 1e-12) {
		t.Fatal("pos-weighted gradient not scaled")
	}
	// Negatives unaffected.
	ln1, _ := BCEWithLogits{PosWeight: 1}.Loss(logits, []float64{0})
	ln3, _ := BCEWithLogits{PosWeight: 3}.Loss(logits, []float64{0})
	if ln1 != ln3 {
		t.Fatal("pos weight leaked into negatives")
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() float64 {
		r := sim.NewRand(9)
		enc := NewEncoder(EncoderConfig{Vocab: 10, Dim: 8, Heads: 2, Layers: 1}, r)
		dec := NewDecoder("d", 8, 8, 4, r)
		opt := NewAdam(0.01, append(enc.Params(), dec.Params()...))
		bce := BCEWithLogits{}
		var loss float64
		for i := 0; i < 20; i++ {
			opt.ZeroGrad()
			logits := dec.Forward(enc.Forward([]int{1, 2, 3}))
			var d *Mat
			loss, d = bce.Loss(logits, []float64{1, 0, 1, 0})
			enc.Backward(dec.Backward(d))
			opt.Step()
		}
		return loss
	}
	if build() != build() {
		t.Fatal("training is not deterministic")
	}
}
