// Package replay is the timing engine: it replays one or more queries' page
// request scripts through the full cache hierarchy (buffer pool → OS page
// cache → disk) on a discrete-event timeline, optionally with an
// asynchronous Pythia-style prefetcher per query, and reports per-query
// elapsed times. Speedup — the paper's headline metric — is the ratio of a
// query's replayed time without prefetching to its time with.
//
// The model mirrors the paper's modified Postgres (§4):
//
//   - The executor always uses the default synchronous read path: buffer hit,
//     else OS-cache copy, else disk read ("we modify Postgres to never request
//     page from the AIO structure but always using the default read call").
//   - The prefetcher works through an AIO queue of sorted block offsets,
//     keeps at most Window prefetched-but-unconsumed pages pinned, and each
//     executor read files a "dummy request" that releases one entry so the
//     next prefetch can be initiated.
//   - Prefetch reads and foreground misses share the same disk channels, so
//     prefetch I/O can contend with foreground I/O under concurrency.
//   - Sequential executor reads benefit from OS readahead; the prefetcher
//     issues its reads in file-storage order to earn the same benefit.
package replay

import (
	"fmt"
	"time"

	"github.com/pythia-db/pythia/internal/buffer"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/oscache"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// QuerySpec is one query to replay.
type QuerySpec struct {
	// ID labels the query in results.
	ID string
	// Arrival is the virtual time the query starts.
	Arrival sim.Duration
	// Requests is the executor's ordered page-access script.
	Requests []storage.Request
	// Prefetch is the sorted set of pages to prefetch asynchronously; nil
	// or empty replays the default (no-prefetch) strategy.
	Prefetch []storage.PageID
	// Window is the readahead window R — the maximum number of prefetched,
	// not-yet-consumed pages kept pinned (paper default 1024). Zero
	// disables pinning-based flow control and is replaced by the config
	// default.
	Window int
}

// Config shapes one replay run.
type Config struct {
	Cost sim.CostModel
	// BufferPages sizes the RDBMS buffer pool in pages.
	BufferPages int
	// BufferPolicy selects the replacement policy (Clock by default).
	BufferPolicy buffer.Policy
	// OSCachePages sizes the OS page cache (default: 4× buffer).
	OSCachePages int
	// ReadaheadMax caps the OS readahead window in pages.
	ReadaheadMax int
	// PrefetchWorkers bounds a query's in-flight asynchronous prefetch
	// reads (the AIO queue depth per backend, default 4).
	PrefetchWorkers int
	// DefaultWindow is used when a QuerySpec leaves Window zero.
	DefaultWindow int
	// Recorder, when non-nil, receives a typed obs.Event for every cache,
	// disk, and prefetcher occurrence of the run, each stamped with the
	// active query index and virtual time, and enables the per-query and
	// per-object counter snapshots on RunResult. Nil (the default) costs the
	// hot path one nil-check per event site and nothing else.
	Recorder obs.Recorder
	// Fault, when non-nil, injects deterministic transient faults into the
	// run's device reads (see internal/fault). Faults only ever change
	// timing and cache state, never which pages a query reads or how many
	// tuples it processes: the executor retries failed foreground reads
	// until the device delivers, and abandoned prefetches degrade to
	// synchronous executor reads. Build a fresh injector (same plan + seed)
	// per run for bitwise-reproducible timelines.
	Fault *fault.Injector
	// Tracer, when non-nil, records the run's virtual-time span timeline:
	// query lifetimes, executor disk waits and OS copies, asynchronous
	// prefetch reads with causal links to the buffer hits they produce,
	// retry/backoff windows, and degradation marks (see internal/span). Like
	// Recorder, nil costs one nil-check per event site, and the timeline is
	// bitwise identical with tracing on or off. Use a fresh tracer per run:
	// spans accumulate, and Run attaches the run's virtual clock to it.
	Tracer *span.Tracer
	// MaxRetries bounds the backoff retries after a failed device read
	// (default 3). The prefetcher abandons a page once they are exhausted;
	// the executor's final attempt always succeeds — the fault model is
	// transient, and a query must complete regardless of fault rate.
	MaxRetries int
	// RetryBackoff is the virtual-time delay before the first retry of a
	// failed read; it doubles per subsequent attempt, capped at 8× (default
	// 250µs).
	RetryBackoff sim.Duration
	// MaxAbandons is the number of consecutive abandoned prefetch pages
	// after which a query's prefetcher gives up entirely — the last rung of
	// the degradation ladder, bounding wasted device traffic so a faulty
	// run converges to the no-prefetch baseline instead of undercutting it
	// (default 8).
	MaxAbandons int
}

// Normalize validates the configuration and fills unset (zero) fields with
// defaults. Negative values are rejected rather than silently patched: a
// negative knob is always a caller bug, and the paper's sweeps depend on
// configs meaning what they say. The returned Config is the one to run with.
func (c Config) Normalize() (Config, error) {
	switch {
	case c.BufferPages < 0:
		return c, fmt.Errorf("replay: negative BufferPages %d", c.BufferPages)
	case c.OSCachePages < 0:
		return c, fmt.Errorf("replay: negative OSCachePages %d", c.OSCachePages)
	case c.ReadaheadMax < 0:
		return c, fmt.Errorf("replay: negative ReadaheadMax %d", c.ReadaheadMax)
	case c.PrefetchWorkers < 0:
		return c, fmt.Errorf("replay: negative PrefetchWorkers %d", c.PrefetchWorkers)
	case c.DefaultWindow < 0:
		return c, fmt.Errorf("replay: negative DefaultWindow %d", c.DefaultWindow)
	case c.MaxRetries < 0:
		return c, fmt.Errorf("replay: negative MaxRetries %d", c.MaxRetries)
	case c.RetryBackoff < 0:
		return c, fmt.Errorf("replay: negative RetryBackoff %v", c.RetryBackoff)
	case c.MaxAbandons < 0:
		return c, fmt.Errorf("replay: negative MaxAbandons %d", c.MaxAbandons)
	}
	if c.Fault != nil {
		if err := c.Fault.Plan().Validate(); err != nil {
			return c, err
		}
	}
	if c.Cost.DiskRead < 0 || c.Cost.SeqDiskRead < 0 || c.Cost.BufferHit < 0 ||
		c.Cost.OSCacheCopy < 0 || c.Cost.PredictLatency < 0 {
		return c, fmt.Errorf("replay: negative cost constant in %+v", c.Cost)
	}
	if c.Cost == (sim.CostModel{}) {
		c.Cost = sim.DefaultCostModel()
	}
	if c.Cost.SeqDiskRead == 0 {
		c.Cost.SeqDiskRead = c.Cost.DiskRead / 16
	}
	if c.BufferPages == 0 {
		c.BufferPages = 1024
	}
	if c.OSCachePages == 0 {
		c.OSCachePages = 4 * c.BufferPages
	}
	if c.PrefetchWorkers == 0 {
		c.PrefetchWorkers = 4
	}
	if c.DefaultWindow == 0 {
		c.DefaultWindow = 1024
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 250 * time.Microsecond
	}
	if c.MaxAbandons == 0 {
		c.MaxAbandons = 8
	}
	return c, nil
}

// backoff returns the virtual-time delay before retry number attempt
// (0-based): RetryBackoff doubling per attempt, capped at 8×.
func (c *Config) backoff(attempt int) sim.Duration {
	d := c.RetryBackoff
	for i := 0; i < attempt && d < 8*c.RetryBackoff; i++ {
		d *= 2
	}
	if cap := 8 * c.RetryBackoff; d > cap {
		d = cap
	}
	return d
}

// QueryResult is one query's timing and counters.
type QueryResult struct {
	ID      string
	Start   sim.Time
	End     sim.Time
	Elapsed sim.Duration

	BufferHits   uint64
	OSCopies     uint64
	DiskReads    uint64 // foreground (executor-blocking) disk reads
	Prefetched   uint64 // pages the prefetcher brought in
	PrefetchSkip uint64 // prefetches skipped (already buffered / dropped)
	WindowStalls uint64 // prefetcher pump attempts blocked by a full window

	ReadFailures      uint64 // failed device read attempts (foreground + prefetch)
	PrefetchRetries   uint64 // backoff retries the prefetcher scheduled
	PrefetchAbandons  uint64 // prefetch pages abandoned after retry exhaustion
	FallbackSyncReads uint64 // abandoned pages the executor served synchronously
	PrefetchGaveUp    bool   // prefetcher hit MaxAbandons and disabled itself

	// Counters is the query's full per-kind event snapshot (buffer, OS
	// cache, disk, and prefetcher events attributed to this query). It is
	// nil unless Config.Recorder was set.
	Counters *obs.Counters
}

// RunResult aggregates a replay.
type RunResult struct {
	Queries []QueryResult
	Buffer  buffer.Stats
	OS      oscache.Stats
	Disk    uint64 // total device reads including readahead and prefetch
	End     sim.Time

	// ReadFailures, PrefetchRetries, PrefetchAbandons, and
	// FallbackSyncReads total the per-query degradation counters, so a
	// chaos sweep reads the whole run's fault response at a glance.
	ReadFailures      uint64
	PrefetchRetries   uint64
	PrefetchAbandons  uint64
	FallbackSyncReads uint64
	// InferenceDeadlineMisses counts queries whose model inference blew its
	// virtual-time budget and degraded to the no-prefetch path. It is
	// stamped by pythia.System.Run (the replay engine itself never sees
	// inference).
	InferenceDeadlineMisses uint64

	// Objects holds per-object event snapshots (which relation/index drew
	// the hits, misses, and prefetches). It is nil unless Config.Recorder
	// was set.
	Objects map[storage.ObjectID]*obs.Counters
}

// Elapsed returns the result for query id, panicking if absent (harness
// bookkeeping bug).
func (r *RunResult) Elapsed(id string) sim.Duration {
	for i := range r.Queries {
		if r.Queries[i].ID == id {
			return r.Queries[i].Elapsed
		}
	}
	panic("replay: no result for query " + id)
}

// TotalElapsed sums all queries' elapsed times (used by the multi-query
// speedup experiments, which compare aggregate time).
func (r *RunResult) TotalElapsed() sim.Duration {
	var total sim.Duration
	for i := range r.Queries {
		total += r.Queries[i].Elapsed
	}
	return total
}

// tagger is the run-local observability hub: every event from the buffer
// pool, OS cache, and the runners passes through it. It stamps the active
// query index and the virtual time, feeds the per-query and per-object
// snapshot counters, and forwards to the user's recorder. The simulator is
// single-threaded, so "active query" is a plain field the runners set on
// entry to their callbacks.
type tagger struct {
	eng     *sim.Engine
	sink    obs.Recorder // user recorder (may be nil: snapshots only)
	current int32        // query index whose callback is executing
	perQ    []obs.Counters
	perObj  map[storage.ObjectID]*obs.Counters
}

// Record implements obs.Recorder.
//
//pythia:noalloc
func (t *tagger) Record(e obs.Event) {
	if e.Query == obs.NoQuery {
		e.Query = t.current
	}
	if e.At == 0 {
		e.At = t.eng.Now()
	}
	if e.Query >= 0 && int(e.Query) < len(t.perQ) {
		t.perQ[e.Query].Record(e)
	}
	if e.Page.Object != storage.InvalidObject {
		t.objCounters(e.Page.Object).Record(e)
	}
	if t.sink != nil {
		t.sink.Record(e)
	}
}

// objCounters returns the per-object counter bucket, creating it on first
// use. The lazy allocation lives here, outside the //pythia:noalloc Record
// body: it runs once per object, not once per event.
func (t *tagger) objCounters(obj storage.ObjectID) *obs.Counters {
	c := t.perObj[obj]
	if c == nil {
		c = &obs.Counters{}
		t.perObj[obj] = c
	}
	return c
}

// Run replays the queries against a cold buffer pool and OS cache. It
// panics on an invalid Config (call Config.Normalize first to handle
// validation errors gracefully).
func Run(reg *storage.Registry, cfg Config, queries []QuerySpec) *RunResult {
	cfg, err := cfg.Normalize()
	if err != nil {
		panic(err.Error())
	}
	eng := sim.NewEngine()
	disk := sim.NewDisk(cfg.Cost.DiskRead, cfg.Cost.IOWorkers)
	pool := buffer.New(cfg.BufferPages, cfg.BufferPolicy)
	osc := oscache.New(cfg.OSCachePages, cfg.ReadaheadMax)

	res := &RunResult{Queries: make([]QueryResult, len(queries))}
	cfg.Tracer.SetClock(&eng.Clock)
	pool.SetTracer(cfg.Tracer)
	osc.SetTracer(cfg.Tracer)
	var tag *tagger
	if cfg.Recorder != nil {
		tag = &tagger{
			eng:    eng,
			sink:   cfg.Recorder,
			perQ:   make([]obs.Counters, len(queries)),
			perObj: make(map[storage.ObjectID]*obs.Counters),
		}
		pool.SetRecorder(tag)
		osc.SetRecorder(tag)
	}
	for i := range queries {
		q := &queries[i]
		res.Queries[i].ID = q.ID
		qr := &runner{
			eng: eng, disk: disk, pool: pool, osc: osc, reg: reg,
			cfg: cfg, spec: q, result: &res.Queries[i],
			tag: tag, tr: cfg.Tracer, idx: int32(i),
		}
		eng.At(sim.Time(q.Arrival), qr.start)
	}
	res.End = eng.Run()
	res.Buffer = pool.Stats()
	res.OS = osc.Stats()
	res.Disk = disk.Reads()
	for i := range res.Queries {
		q := &res.Queries[i]
		res.ReadFailures += q.ReadFailures
		res.PrefetchRetries += q.PrefetchRetries
		res.PrefetchAbandons += q.PrefetchAbandons
		res.FallbackSyncReads += q.FallbackSyncReads
	}
	if tag != nil {
		for i := range res.Queries {
			res.Queries[i].Counters = &tag.perQ[i]
		}
		res.Objects = tag.perObj
	}
	return res
}

// runner executes one query (executor process + optional prefetcher).
type runner struct {
	eng  *sim.Engine
	disk *sim.Disk
	pool *buffer.Pool
	osc  *oscache.Cache
	reg  *storage.Registry
	cfg  Config
	spec *QuerySpec

	result *QueryResult

	tag *tagger      // nil = observability off
	tr  *span.Tracer // nil = span tracing off
	idx int32        // run-local query index for event attribution

	// lifeSpan is the query's open QuerySpan (NoSpan when tracing is off).
	lifeSpan span.SpanID

	execStream *oscache.Stream
	pf         *prefetcher
	reqIdx     int

	// abandoned holds pages the prefetcher gave up on, so the executor's
	// synchronous read of them is visible as the degradation fallback. Nil
	// until the first abandonment, so fault-free runs pay one nil-check.
	abandoned map[storage.PageID]bool
}

// enter marks this runner's query as the active event source; every
// engine callback of the runner or its prefetcher calls it first so that
// buffer/oscache events fired during the callback are attributed correctly.
func (r *runner) enter() {
	if r.tag != nil {
		r.tag.current = r.idx
	}
	r.tr.SetQuery(r.idx)
}

// record emits one runner-level event (a kind the lower layers cannot see:
// query lifecycle, foreground disk reads, prefetcher decisions).
//
//pythia:noalloc
func (r *runner) record(k obs.Kind, pg storage.PageID) {
	if r.tag != nil {
		r.tag.Record(obs.Event{Kind: k, Query: r.idx, Page: pg})
	}
}

func (r *runner) objPages(p storage.PageID) storage.PageNum {
	obj := r.reg.Lookup(p.Object)
	if obj == nil {
		panic(fmt.Sprintf("replay: request for unknown object %d", p.Object))
	}
	return obj.Pages
}

func (r *runner) start() {
	r.enter()
	r.result.Start = r.eng.Now()
	r.record(obs.QueryStart, storage.PageID{})
	r.lifeSpan = r.tr.BeginLabel(span.QuerySpan, r.spec.ID, storage.PageID{}, r.result.Start)
	r.execStream = r.osc.NewStream()
	if len(r.spec.Prefetch) > 0 {
		window := r.spec.Window
		if window <= 0 {
			window = r.cfg.DefaultWindow
		}
		r.pf = newPrefetcher(r, r.spec.Prefetch, window)
		// Prediction latency gates the prefetcher, not the executor: model
		// inference runs on the side while execution begins (§3.3).
		r.tr.Complete(span.InferWait, storage.PageID{}, r.result.Start,
			r.result.Start.Add(r.cfg.Cost.PredictLatency))
		r.eng.Schedule(r.cfg.Cost.PredictLatency, r.pf.start)
	}
	r.eng.Schedule(0, r.step)
}

// step services request reqIdx and schedules the next one at its completion
// time.
func (r *runner) step() {
	r.enter()
	if r.reqIdx >= len(r.spec.Requests) {
		r.finish()
		return
	}
	req := r.spec.Requests[r.reqIdx]
	r.reqIdx++

	cost := r.cfg.Cost
	delay := cost.CPUPerRequest + sim.Duration(req.Tuples)*cost.CPUPerTuple

	if r.pool.Get(req.Page) {
		r.result.BufferHits++
		delay += cost.BufferHit
	} else {
		if r.abandoned != nil && r.abandoned[req.Page] {
			// The prefetcher gave this page up; the executor now pays for
			// it synchronously — the degradation path that converges to
			// the no-prefetch baseline. The mark links back to the
			// abandoned PrefetchRead span that caused it.
			delete(r.abandoned, req.Page)
			r.result.FallbackSyncReads++
			r.record(obs.FallbackSyncRead, req.Page)
			r.tr.InstantLink(span.FallbackSyncMark, req.Page, 0, r.tr.TakeStash(req.Page))
		}
		hit, readahead := r.osc.Read(r.execStream, req.Page, r.objPages(req.Page))
		// Kernel readahead occupies device channels in the background
		// without blocking the foreground read; it streams at the
		// sequential-transfer rate (no seeks within a run).
		now := r.eng.Now()
		for range readahead {
			r.disk.ReadWith(now, cost.SeqDiskRead)
		}
		if hit {
			r.result.OSCopies++
			delay += cost.OSCacheCopy
			r.tr.Complete(span.ExecOSCopy, req.Page, now, now.Add(cost.OSCacheCopy))
		} else {
			r.result.DiskReads++
			r.record(obs.DiskRead, req.Page)
			sid := r.tr.Begin(span.ExecDiskWait, req.Page, now)
			done := r.syncRead(now, req.Page)
			r.tr.End(sid, done)
			r.tr.Complete(span.ExecOSCopy, req.Page, done, done.Add(cost.OSCacheCopy))
			delay += done.Sub(now) + cost.OSCacheCopy
		}
		r.pool.Insert(req.Page, false)
	}

	// The dummy AIO request: executor progress releases one prefetched page
	// so the prefetcher can initiate the next (§4, "Decoupling AIO from
	// Postgres read call").
	if r.pf != nil {
		r.pf.onExecutorRead(req.Page)
	}
	r.eng.Schedule(delay, r.step)
}

// syncRead performs one foreground device read issued at time at, retrying
// transient injected failures with bounded backoff. Each failed attempt
// still occupies a device channel (the device serviced a read that errored).
// After MaxRetries failures the final attempt succeeds unconditionally: the
// fault model is transient, and the executor's synchronous path must always
// deliver the page — faults cost time, never results.
func (r *runner) syncRead(at sim.Time, page storage.PageID) sim.Time {
	inj := r.cfg.Fault
	t := at
	for attempt := 0; ; attempt++ {
		lat := r.cfg.Cost.DiskRead
		if inj != nil {
			lat = inj.ReadLatency(t, lat)
		}
		done := r.disk.ReadWith(t, lat)
		if inj == nil || attempt >= r.cfg.MaxRetries || !inj.Fire(fault.ExecRead, t) {
			return done
		}
		r.result.ReadFailures++
		r.record(obs.DiskReadFailed, page)
		next := done.Add(r.cfg.backoff(attempt))
		r.tr.Complete(span.ExecRetryWait, page, done, next)
		t = next
	}
}

func (r *runner) finish() {
	r.result.End = r.eng.Now()
	r.result.Elapsed = r.result.End.Sub(r.result.Start)
	r.record(obs.QueryFinish, storage.PageID{})
	r.tr.End(r.lifeSpan, r.result.End)
	if r.pf != nil {
		r.pf.shutdown()
	}
}
