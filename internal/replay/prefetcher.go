package replay

import (
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/oscache"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// prefetcher is the per-query AIO structure: it drains a queue of predicted
// block offsets (already in file-storage order), keeps at most window
// prefetched-but-unconsumed pages pinned in the buffer pool, and bounds its
// in-flight reads by the configured AIO depth. Its reads go through the OS
// page cache with their own readahead stream — reading in file order means
// many prefetches become OS-cache copies, exactly the cooperation the paper
// engineers (§3.3, Prefetcher).
type prefetcher struct {
	r      *runner
	queue  []storage.PageID
	next   int
	window int

	stream   *oscache.Stream
	inflight int
	pinned   []storage.PageID // FIFO of pages pinned on the query's behalf
	started  bool             // model inference finished; prefetching may begin
	done     bool

	// consecAbandons counts abandoned pages since the last successful
	// arrival; reaching Config.MaxAbandons disables prefetching for the
	// query (graceful degradation to the no-prefetch path).
	consecAbandons int
}

func newPrefetcher(r *runner, pages []storage.PageID, window int) *prefetcher {
	return &prefetcher{
		r:      r,
		queue:  pages,
		window: window,
		stream: r.osc.NewStream(),
	}
}

// start marks the model's predictions as available and begins prefetching.
// Until then pump is a no-op: executor progress (dummy requests) must not
// start I/O for predictions that do not exist yet.
func (p *prefetcher) start() {
	p.r.enter()
	p.started = true
	p.pump()
}

// pump issues prefetches while the window and AIO depth allow. A pump
// attempt with queued pages but a full window is a window stall — the
// flow-control event the readahead window R exists to create; it is counted
// so window-sweep experiments can see the stall pressure, not just the
// end-to-end time.
func (p *prefetcher) pump() {
	if p.done || !p.started {
		return
	}
	for p.next < len(p.queue) &&
		len(p.pinned)+p.inflight < p.window &&
		p.inflight < p.r.cfg.PrefetchWorkers {
		page := p.queue[p.next]
		p.next++
		p.issue(page)
	}
	if p.next < len(p.queue) && len(p.pinned)+p.inflight >= p.window {
		p.r.result.WindowStalls++
		p.r.record(obs.WindowStall, storage.PageID{})
		p.r.tr.Instant(span.WindowStallMark, storage.PageID{}, 0)
	}
}

// issue starts one asynchronous prefetch read.
func (p *prefetcher) issue(page storage.PageID) {
	if p.r.pool.Contains(page) {
		// Already resident: "nothing happens except increasing its use
		// count" — refresh and move on without I/O.
		p.r.pool.Insert(page, false)
		p.r.result.PrefetchSkip++
		p.r.record(obs.PrefetchSkipped, page)
		return
	}
	p.r.record(obs.PrefetchIssued, page)
	p.inflight++
	// One PrefetchRead span covers the read from issue to arrival (or
	// abandonment), retries included — disk time off the executor's critical
	// path. Its ID rides along the attempt/retry chain.
	sid := p.r.tr.Begin(span.PrefetchRead, page, p.r.eng.Now())
	p.attempt(page, 0, sid)
}

// attempt runs one read attempt for an in-flight prefetch. On a transient
// device-read fault it schedules a backoff retry; when retries are exhausted
// it abandons the page to the executor's synchronous-read fallback. With no
// injector configured the body reduces exactly to the original fault-free
// read path.
func (p *prefetcher) attempt(page storage.PageID, attempt int, sid span.SpanID) {
	now := p.r.eng.Now()
	hit, readahead := p.r.osc.Read(p.stream, page, p.r.objPages(page))
	for range readahead {
		p.r.disk.ReadWith(now, p.r.cfg.Cost.SeqDiskRead)
	}
	var arrive sim.Time
	if hit {
		arrive = now.Add(p.r.cfg.Cost.OSCacheCopy)
	} else {
		inj := p.r.cfg.Fault
		lat := p.r.cfg.Cost.DiskRead
		if inj != nil {
			lat = inj.ReadLatency(now, lat)
		}
		done := p.r.disk.ReadWith(now, lat)
		if inj.Fire(fault.PrefetchRead, now) {
			// The failed read still occupied a disk channel, but the page
			// never arrived: undo the OS cache's speculative insert so the
			// retry (or the executor's fallback read) re-pays the miss.
			p.r.osc.Drop(page)
			p.r.result.ReadFailures++
			p.r.record(obs.DiskReadFailed, page)
			if attempt >= p.r.cfg.MaxRetries {
				p.abandon(page, sid, done)
				return
			}
			p.r.result.PrefetchRetries++
			p.r.record(obs.PrefetchRetried, page)
			next := done.Add(p.r.cfg.backoff(attempt))
			p.r.tr.Complete(span.PrefetchRetryWait, page, done, next)
			p.r.eng.At(next, func() {
				p.retry(page, attempt+1, sid)
			})
			return
		}
		arrive = done
	}
	p.r.eng.At(arrive, func() { p.arrived(page, sid) })
}

// retry re-runs a failed prefetch attempt after its backoff delay.
func (p *prefetcher) retry(page storage.PageID, attempt int, sid span.SpanID) {
	p.r.enter()
	if p.done {
		p.inflight--
		p.r.tr.End(sid, 0)
		return
	}
	p.attempt(page, attempt, sid)
}

// abandon gives up on one page after exhausting retries: the executor will
// read it synchronously when it gets there (FallbackSyncRead). Too many
// consecutive abandons disable prefetching for the rest of the query — the
// bottom rung of the degradation ladder, converging to the no-prefetch
// baseline instead of burning device channels on a failing path.
func (p *prefetcher) abandon(page storage.PageID, sid span.SpanID, done sim.Time) {
	p.inflight--
	p.consecAbandons++
	p.r.result.PrefetchAbandons++
	p.r.record(obs.PrefetchAbandoned, page)
	// The span ends in abandonment; stash it so the executor's fallback
	// synchronous read links back to the I/O that failed to deliver.
	p.r.tr.EndDetail(sid, done, span.DetailAbandoned)
	p.r.tr.Stash(page, sid)
	if p.r.abandoned == nil {
		p.r.abandoned = make(map[storage.PageID]bool)
	}
	p.r.abandoned[page] = true
	if p.r.cfg.MaxAbandons > 0 && p.consecAbandons >= p.r.cfg.MaxAbandons && !p.done {
		p.r.result.PrefetchGaveUp = true
		p.shutdown()
		return
	}
	p.pump()
}

// arrived lands a prefetched page in the buffer pool and pins it.
func (p *prefetcher) arrived(page storage.PageID, sid span.SpanID) {
	p.r.enter()
	p.inflight--
	p.r.tr.End(sid, 0)
	if p.done {
		return
	}
	p.consecAbandons = 0
	if p.r.pool.Insert(page, true) {
		p.r.pool.Pin(page)
		p.pinned = append(p.pinned, page)
		p.r.result.Prefetched++
		p.r.record(obs.PrefetchPinned, page)
		// Stash the read span: the buffer pool links the eventual hit (or
		// wasted eviction) of this frame back to it.
		p.r.tr.Stash(page, sid)
	} else {
		// Every frame pinned: limited prefetching backs off rather than
		// deadlocking the pool.
		p.r.result.PrefetchSkip++
		p.r.record(obs.PrefetchSkipped, page)
	}
	p.pump()
}

// onExecutorRead is the dummy AIO request: each executor read releases one
// prefetched page — the page itself if it was pinned for this query,
// otherwise the oldest pinned page ("the page that it returns from this
// dummy request is just discarded (not used, but it stays in the buffer)").
func (p *prefetcher) onExecutorRead(page storage.PageID) {
	if len(p.pinned) > 0 {
		idx := 0
		for i, q := range p.pinned {
			if q == page {
				idx = i
				break
			}
		}
		released := p.pinned[idx]
		p.pinned = append(p.pinned[:idx], p.pinned[idx+1:]...)
		p.r.pool.Unpin(released)
	}
	p.pump()
}

// shutdown unpins everything still held when the query completes.
func (p *prefetcher) shutdown() {
	p.done = true
	for _, page := range p.pinned {
		p.r.pool.Unpin(page)
	}
	p.pinned = nil
}
