package replay

import (
	"testing"

	"github.com/pythia-db/pythia/internal/buffer"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/oscache"
	"github.com/pythia-db/pythia/internal/storage"
)

// TestRecorderReconcilesWithAggregates replays a golden two-query run (one
// prefetched, one default) with a counting recorder and checks that every
// event total reconciles exactly with the legacy aggregate stats — the
// property that makes the observability layer trustworthy as a measurement
// surface rather than a second, drifting set of numbers.
func TestRecorderReconcilesWithAggregates(t *testing.T) {
	reg := testRegistry()
	reqsA := script(reg, 500, 300, 41)
	reqsB := script(reg, 300, 200, 42)
	var c obs.Counters
	cfgRec := cfg()
	cfgRec.Recorder = &c
	res := Run(reg, cfgRec, []QuerySpec{
		{ID: "a", Requests: reqsA, Prefetch: nonSeqPages(reqsA), Window: 4},
		{ID: "b", Requests: reqsB},
	})

	var sumHits, sumOSCopies, sumDisk, sumPrefetched, sumSkip, sumStalls uint64
	for _, q := range res.Queries {
		sumHits += q.BufferHits
		sumOSCopies += q.OSCopies
		sumDisk += q.DiskReads
		sumPrefetched += q.Prefetched
		sumSkip += q.PrefetchSkip
		sumStalls += q.WindowStalls
	}

	checks := []struct {
		name      string
		kind      obs.Kind
		aggregate uint64
	}{
		{"buffer hits", obs.BufferHit, res.Buffer.Hits},
		{"buffer hits (per-query)", obs.BufferHit, sumHits},
		{"buffer misses", obs.BufferMiss, res.Buffer.Misses},
		{"buffer inserts", obs.BufferInsert, res.Buffer.Inserts},
		{"buffer evictions", obs.BufferEvict, res.Buffer.Evictions},
		{"failed inserts", obs.BufferInsertFailed, res.Buffer.FailedInserts},
		{"prefetched in", obs.PrefetchedIn, res.Buffer.PrefetchedIn},
		{"prefetch hits", obs.PrefetchHit, res.Buffer.PrefetchHits},
		{"prefetch wasted", obs.PrefetchWasted, res.Buffer.PrefetchWasted},
		{"oscache hits", obs.OSCacheHit, res.OS.Hits},
		{"oscache misses", obs.OSCacheMiss, res.OS.Misses},
		{"readahead pages", obs.OSReadaheadPage, res.OS.ReadaheadPages},
		{"oscache evictions", obs.OSCacheEvict, res.OS.Evictions},
		{"foreground disk reads", obs.DiskRead, sumDisk},
		{"prefetch pinned", obs.PrefetchPinned, sumPrefetched},
		{"prefetch skipped", obs.PrefetchSkipped, sumSkip},
		{"window stalls", obs.WindowStall, sumStalls},
		{"query starts", obs.QueryStart, uint64(len(res.Queries))},
		{"query finishes", obs.QueryFinish, uint64(len(res.Queries))},
	}
	for _, ck := range checks {
		if got := c.Get(ck.kind); got != ck.aggregate {
			t.Errorf("%s: recorder %d != aggregate %d", ck.name, got, ck.aggregate)
		}
	}
	// A pinned arrival whose page the executor faulted in first touches a
	// resident frame, so pinned can exceed the pool's prefetched-in count,
	// never trail it.
	if c.Get(obs.PrefetchPinned) < res.Buffer.PrefetchedIn {
		t.Errorf("pinned %d < pool prefetched-in %d",
			c.Get(obs.PrefetchPinned), res.Buffer.PrefetchedIn)
	}
	// Executor misses split exactly into OS-cache copies and foreground
	// disk reads; device reads split exactly into cache misses + readahead.
	if c.Get(obs.BufferMiss) != sumOSCopies+sumDisk {
		t.Errorf("buffer misses %d != OS copies %d + disk reads %d",
			c.Get(obs.BufferMiss), sumOSCopies, sumDisk)
	}
	if res.Disk != c.Get(obs.OSCacheMiss)+c.Get(obs.OSReadaheadPage) {
		t.Errorf("device reads %d != cache misses %d + readahead %d",
			res.Disk, c.Get(obs.OSCacheMiss), c.Get(obs.OSReadaheadPage))
	}
	if sumPrefetched == 0 || sumStalls == 0 {
		t.Fatalf("golden run not exercising prefetch path: pinned=%d stalls=%d", sumPrefetched, sumStalls)
	}
}

// TestPerQueryAndPerObjectSnapshots checks the RunResult snapshots: each
// query's counter snapshot matches its own legacy counters, and per-object
// totals partition the run's totals.
func TestPerQueryAndPerObjectSnapshots(t *testing.T) {
	reg := testRegistry()
	reqsA := script(reg, 400, 300, 43)
	reqsB := script(reg, 200, 100, 44)
	var c obs.Counters
	cfgRec := cfg()
	cfgRec.Recorder = &c
	res := Run(reg, cfgRec, []QuerySpec{
		{ID: "a", Requests: reqsA, Prefetch: nonSeqPages(reqsA), Window: 128},
		{ID: "b", Requests: reqsB},
	})

	for _, q := range res.Queries {
		if q.Counters == nil {
			t.Fatalf("query %s has no counter snapshot", q.ID)
		}
		if got := q.Counters.Get(obs.BufferHit); got != q.BufferHits {
			t.Errorf("%s buffer hits: snapshot %d != %d", q.ID, got, q.BufferHits)
		}
		if got := q.Counters.Get(obs.DiskRead); got != q.DiskReads {
			t.Errorf("%s disk reads: snapshot %d != %d", q.ID, got, q.DiskReads)
		}
		if got := q.Counters.Get(obs.PrefetchPinned); got != q.Prefetched {
			t.Errorf("%s prefetched: snapshot %d != %d", q.ID, got, q.Prefetched)
		}
		if got := q.Counters.Get(obs.WindowStall); got != q.WindowStalls {
			t.Errorf("%s stalls: snapshot %d != %d", q.ID, got, q.WindowStalls)
		}
	}
	if res.Queries[1].Counters.Get(obs.PrefetchPinned) != 0 {
		t.Error("default-path query attributed prefetch events")
	}

	if len(res.Objects) == 0 {
		t.Fatal("no per-object snapshots")
	}
	for _, kind := range []obs.Kind{obs.BufferHit, obs.OSCacheMiss, obs.DiskRead, obs.PrefetchPinned} {
		var sum uint64
		for _, oc := range res.Objects {
			sum += oc.Get(kind)
		}
		if sum != c.Get(kind) {
			t.Errorf("%v: per-object sum %d != total %d", kind, sum, c.Get(kind))
		}
	}

	// Without a recorder, snapshots stay nil — the hot path stays bare.
	plain := Run(reg, cfg(), []QuerySpec{{ID: "a", Requests: reqsA}})
	if plain.Queries[0].Counters != nil || plain.Objects != nil {
		t.Fatal("snapshots materialized without a recorder")
	}
}

// TestRecorderDoesNotPerturbTiming: observability must be read-only — the
// replayed timeline with a recorder attached is bitwise identical to the
// timeline without one.
func TestRecorderDoesNotPerturbTiming(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 400, 400, 45)
	pf := nonSeqPages(reqs)
	base := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	var c obs.Counters
	cfgRec := cfg()
	cfgRec.Recorder = &c
	observed := Run(reg, cfgRec, []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	if base.Elapsed("q") != observed.Elapsed("q") || base.Disk != observed.Disk {
		t.Fatalf("recorder perturbed replay: %v/%d vs %v/%d",
			base.Elapsed("q"), base.Disk, observed.Elapsed("q"), observed.Disk)
	}
}

// TestEventLogCarriesAttribution spot-checks that events flowing to a user
// recorder are stamped with query index and virtual time.
func TestEventLogCarriesAttribution(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 100, 46)
	l := obs.NewEventLog(0)
	cfgRec := cfg()
	cfgRec.Recorder = l
	Run(reg, cfgRec, []QuerySpec{{ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 32}})
	if l.Len() == 0 {
		t.Fatal("no events logged")
	}
	sawTimed := false
	for _, e := range l.Events() {
		if e.Query != 0 {
			t.Fatalf("event %v attributed to query %d", e.Kind, e.Query)
		}
		if e.At > 0 {
			sawTimed = true
		}
	}
	if !sawTimed {
		t.Fatal("no event carried a virtual timestamp")
	}
}

// TestInstrumentationAllocFree pins the disabled-path cost: buffer and OS
// cache hot operations allocate nothing extra whether the recorder is nil
// or a plain counter.
func TestInstrumentationAllocFree(t *testing.T) {
	page := storage.PageID{Object: 1, Page: 0}
	for _, withRec := range []bool{false, true} {
		pool := buffer.New(64, buffer.Clock)
		osc := oscache.New(64, 0)
		var c obs.Counters
		if withRec {
			pool.SetRecorder(&c)
			osc.SetRecorder(&c)
		}
		pool.Insert(page, false)
		stream := osc.NewStream()
		osc.Read(stream, page, 16)
		if allocs := testing.AllocsPerRun(1000, func() { pool.Get(page) }); allocs != 0 {
			t.Errorf("pool.Get allocates %v/op (recorder=%v)", allocs, withRec)
		}
		if allocs := testing.AllocsPerRun(1000, func() { osc.Read(stream, page, 16) }); allocs != 0 {
			t.Errorf("osc.Read allocates %v/op (recorder=%v)", allocs, withRec)
		}
	}
}

// BenchmarkReplayDefault / BenchmarkReplayObserved make allocation or time
// regressions in the instrumented hot path visible:
//
//	go test -run=NONE -bench=BenchmarkReplay -benchmem ./internal/replay/
func BenchmarkReplayDefault(b *testing.B) {
	reg := testRegistry()
	reqs := script(reg, 500, 300, 47)
	pf := nonSeqPages(reqs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	}
}

func BenchmarkReplayObserved(b *testing.B) {
	reg := testRegistry()
	reqs := script(reg, 500, 300, 47)
	pf := nonSeqPages(reqs)
	var c obs.Counters
	cfgRec := cfg()
	cfgRec.Recorder = &c
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(reg, cfgRec, []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	}
}
