package replay

import (
	"reflect"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/storage"
)

// execPages extracts the executor's served page sequence from an event log:
// the buffer pool emits exactly one BufferHit or BufferMiss per executor
// request, in request order.
func execPages(log *obs.EventLog) []storage.PageID {
	var out []storage.PageID
	for _, e := range log.Events() {
		if e.Kind == obs.BufferHit || e.Kind == obs.BufferMiss {
			out = append(out, e.Page)
		}
	}
	return out
}

func faultSpecs(reqs []storage.Request) []QuerySpec {
	return []QuerySpec{{ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs)}}
}

// TestFaultsNeverChangeResults is the tentpole invariant: faults only ever
// change timing and cache state, never which pages the executor serves or
// whether the query completes. At any fault rate the executor's page
// sequence and per-request accounting identity are those of the fault-free
// run.
func TestFaultsNeverChangeResults(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 500, 300, 1)

	run := func(inj *fault.Injector) (*RunResult, []storage.PageID) {
		log := obs.NewEventLog(0)
		c := cfg()
		c.Recorder = log
		c.Fault = inj
		res := Run(reg, c, faultSpecs(reqs))
		return res, execPages(log)
	}

	baseline, basePages := run(nil)
	if len(basePages) != len(reqs) {
		t.Fatalf("baseline served %d pages, script has %d", len(basePages), len(reqs))
	}

	for _, rate := range []float64{0, 0.05, 0.2, 0.9} {
		plan := fault.Plan{
			ExecReadRate:     rate,
			PrefetchReadRate: rate,
			LatencySpikeRate: rate / 2,
		}
		res, pages := run(fault.New(plan, 99))
		if !reflect.DeepEqual(pages, basePages) {
			t.Fatalf("rate %g: executor page sequence diverged from fault-free run", rate)
		}
		qr := res.Queries[0]
		if int(qr.BufferHits+qr.OSCopies+qr.DiskReads) != len(reqs) {
			t.Fatalf("rate %g: request accounting broken: %+v vs %d requests",
				rate, qr, len(reqs))
		}
		if qr.Elapsed <= 0 {
			t.Fatalf("rate %g: query did not complete", rate)
		}
		if rate == 0 {
			// An all-zero plan must be timeline-identical to no injector.
			if res.End != baseline.End || qr.Elapsed != baseline.Queries[0].Elapsed {
				t.Fatal("zero plan perturbed the fault-free timeline")
			}
		}
		if rate >= 0.2 && res.ReadFailures == 0 {
			t.Fatalf("rate %g: no read failures recorded", rate)
		}
	}
}

// TestFaultRunsBitwiseReproducible: two runs with fresh injectors built from
// the same plan and seed produce bitwise-identical results.
func TestFaultRunsBitwiseReproducible(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 400, 200, 2)
	plan := fault.Plan{ExecReadRate: 0.1, PrefetchReadRate: 0.3, LatencySpikeRate: 0.05}

	run := func() *RunResult {
		c := cfg()
		c.Fault = fault.New(plan, 1234)
		return Run(reg, c, faultSpecs(reqs))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan+seed produced different RunResults")
	}
	// A different seed moves the faults (sanity check the comparison has
	// teeth).
	c := cfg()
	c.Fault = fault.New(plan, 4321)
	if other := Run(reg, c, faultSpecs(reqs)); reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical fault timelines")
	}
}

// TestDegradationAccounting exercises the retry → abandon → fallback ladder
// and checks its counters reconcile.
func TestDegradationAccounting(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 300, 400, 3)
	c := cfg()
	c.Fault = fault.New(fault.Plan{PrefetchReadRate: 0.6}, 7)
	c.MaxRetries = 2
	c.MaxAbandons = 1 << 20 // never give up: every abandoned page falls back
	res := Run(reg, c, faultSpecs(reqs))
	qr := res.Queries[0]

	if qr.ReadFailures == 0 || qr.PrefetchRetries == 0 || qr.PrefetchAbandons == 0 {
		t.Fatalf("degradation ladder unexercised: %+v", qr)
	}
	if qr.FallbackSyncReads == 0 {
		t.Fatal("no abandoned page was served by the executor fallback")
	}
	if qr.FallbackSyncReads > qr.PrefetchAbandons {
		t.Fatalf("more fallbacks (%d) than abandons (%d)",
			qr.FallbackSyncReads, qr.PrefetchAbandons)
	}
	// Aggregates mirror the per-query counters (single query).
	if res.ReadFailures != qr.ReadFailures || res.PrefetchAbandons != qr.PrefetchAbandons ||
		res.PrefetchRetries != qr.PrefetchRetries || res.FallbackSyncReads != qr.FallbackSyncReads {
		t.Fatalf("run aggregates diverge from per-query counters: %+v vs %+v", res, qr)
	}
	if qr.PrefetchGaveUp {
		t.Fatal("prefetcher gave up despite effectively unbounded MaxAbandons")
	}
	if int(qr.BufferHits+qr.OSCopies+qr.DiskReads) != len(reqs) {
		t.Fatalf("accounting identity broken under degradation: %+v", qr)
	}
}

// TestPrefetcherGivesUp: a near-certain prefetch fault rate with a small
// abandon budget disables prefetching for the query, which still completes.
func TestPrefetcherGivesUp(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 300, 4)
	c := cfg()
	c.Fault = fault.New(fault.Plan{PrefetchReadRate: 0.98}, 5)
	c.MaxRetries = 1
	c.MaxAbandons = 4
	res := Run(reg, c, faultSpecs(reqs))
	qr := res.Queries[0]
	if !qr.PrefetchGaveUp {
		t.Fatalf("prefetcher did not give up: %+v", qr)
	}
	if int(qr.BufferHits+qr.OSCopies+qr.DiskReads) != len(reqs) {
		t.Fatalf("query incomplete after give-up: %+v", qr)
	}
}

// TestExecReadRetriesAlwaysComplete: even at a 90% foreground failure rate
// the executor's bounded retries end in a guaranteed final attempt, so the
// query completes — slower, never wrong.
func TestExecReadRetriesAlwaysComplete(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 200, 400, 5)
	base := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})

	c := cfg()
	c.Fault = fault.New(fault.Plan{ExecReadRate: 0.9}, 6)
	res := Run(reg, c, []QuerySpec{{ID: "q", Requests: reqs}})
	qr := res.Queries[0]
	if int(qr.BufferHits+qr.OSCopies+qr.DiskReads) != len(reqs) {
		t.Fatalf("accounting identity broken: %+v", qr)
	}
	if qr.ReadFailures == 0 {
		t.Fatal("no foreground read failures at 90% rate")
	}
	if res.End <= base.End {
		t.Fatalf("retries did not cost time: faulty end %v vs clean %v", res.End, base.End)
	}
	if qr.DiskReads != base.Queries[0].DiskReads {
		t.Fatalf("faults changed foreground disk-read count: %d vs %d",
			qr.DiskReads, base.Queries[0].DiskReads)
	}
}

// TestBackoffSchedule pins the doubling-with-cap backoff shape.
func TestBackoffSchedule(t *testing.T) {
	c := Config{RetryBackoff: time.Millisecond}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := c.backoff(attempt); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
}
