package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/pythia-db/pythia/internal/buffer"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/oscache"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// traceRun replays the golden two-query mix (one prefetched, one default)
// with a fresh tracer and returns it.
func traceRun(t *testing.T) *span.Tracer {
	t.Helper()
	reg := testRegistry()
	reqsA := script(reg, 40, 20, 91)
	reqsB := script(reg, 20, 10, 92)
	tr := span.New()
	c := cfg()
	c.Tracer = tr
	Run(reg, c, []QuerySpec{
		{ID: "a", Requests: reqsA, Prefetch: nonSeqPages(reqsA), Window: 8},
		{ID: "b", Requests: reqsB},
	})
	return tr
}

// TestTracerGoldenTimeline pins the full traced replay end to end: same seed
// and workload → byte-identical Perfetto JSON, across runs and against the
// checked-in golden. Regenerate with UPDATE_GOLDEN=1.
func TestTracerGoldenTimeline(t *testing.T) {
	var a, b bytes.Buffer
	if err := span.ExportChrome(&a, traceRun(t).Spans()); err != nil {
		t.Fatal(err)
	}
	if err := span.ExportChrome(&b, traceRun(t).Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two traced replays of the same workload differ")
	}

	path := filepath.Join("testdata", "replay.trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, a.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(a.Bytes(), want) {
		t.Errorf("traced replay diverged from golden (%d vs %d bytes); "+
			"inspect with git diff after UPDATE_GOLDEN=1", a.Len(), len(want))
	}
}

// TestTracerExactStallArithmetic checks the strongest acceptance property on
// a contention-free run: a single query, no prefetcher, purely non-sequential
// requests (so no readahead and no shared disk channels). Every foreground
// miss then costs exactly cost.DiskRead, and the stall report must reconcile
// to the nanosecond with the obs counters times the cost model.
func TestTracerExactStallArithmetic(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 0, 200, 93)
	tr := span.New()
	var cnt obs.Counters
	c := cfg()
	c.Tracer = tr
	c.Recorder = &cnt
	res := Run(reg, c, []QuerySpec{{ID: "solo", Requests: reqs}})
	cost := sim.DefaultCostModel()

	rep := span.BuildReport(tr.Spans())
	if len(rep.Queries) != 1 {
		t.Fatalf("queries in report = %d", len(rep.Queries))
	}
	q := rep.Queries[0]
	disk := cnt.Get(obs.DiskRead)
	if disk == 0 {
		t.Fatal("run exercised no disk reads")
	}
	if q.DiskReads != disk {
		t.Errorf("span disk reads %d != obs disk_read %d", q.DiskReads, disk)
	}
	if want := sim.Duration(disk) * cost.DiskRead; q.DiskBlocked != want {
		t.Errorf("disk_blocked %v != %d reads x %v = %v", q.DiskBlocked, disk, cost.DiskRead, want)
	}
	// Every buffer miss ends in one kernel→user copy: OS-cache hits copy
	// directly, disk reads copy after the device returns.
	copies := cnt.Get(obs.OSCacheHit) + disk
	if q.OSCopies != copies {
		t.Errorf("span OS copies %d != oscache_hit %d + disk_read %d", q.OSCopies, cnt.Get(obs.OSCacheHit), disk)
	}
	if want := sim.Duration(copies) * cost.OSCacheCopy; q.OSCopy != want {
		t.Errorf("os_copy %v != %d copies x %v = %v", q.OSCopy, copies, cost.OSCacheCopy, want)
	}
	if q.Elapsed != sim.Duration(res.Elapsed("solo")) {
		t.Errorf("span elapsed %v != result elapsed %v", q.Elapsed, res.Elapsed("solo"))
	}
	if q.Inference != 0 || q.PrefetchHits != 0 || q.RetryBackoff != 0 {
		t.Errorf("no-prefetch run leaked prefetch attribution: %+v", q)
	}
}

// TestTracerReconcilesWithCounters replays the golden prefetched mix with
// both a tracer and a recorder attached and cross-checks every mark count
// against the matching obs counter — two independent instrumentation layers
// must tell one story.
func TestTracerReconcilesWithCounters(t *testing.T) {
	reg := testRegistry()
	reqsA := script(reg, 400, 300, 94)
	reqsB := script(reg, 200, 100, 95)
	tr := span.New()
	var cnt obs.Counters
	c := cfg()
	c.Tracer = tr
	c.Recorder = &cnt
	res := Run(reg, c, []QuerySpec{
		{ID: "a", Requests: reqsA, Prefetch: nonSeqPages(reqsA), Window: 16},
		{ID: "b", Requests: reqsB},
	})

	counts := map[span.Kind]uint64{}
	for _, s := range tr.Spans() {
		counts[s.Kind]++
	}
	checks := []struct {
		name string
		kind span.Kind
		want uint64
	}{
		{"disk waits", span.ExecDiskWait, cnt.Get(obs.DiskRead)},
		{"prefetch hits", span.PrefetchHitMark, cnt.Get(obs.PrefetchHit)},
		{"window stalls", span.WindowStallMark, cnt.Get(obs.WindowStall)},
		{"buffer hits", span.BufferHitMark, cnt.Get(obs.BufferHit)},
		{"buffer misses", span.BufferMissMark, cnt.Get(obs.BufferMiss)},
		{"buffer evicts", span.BufferEvictMark, cnt.Get(obs.BufferEvict)},
		{"wasted prefetches", span.PrefetchWastedMark, cnt.Get(obs.PrefetchWasted)},
		{"oscache hits", span.OSCacheHitMark, cnt.Get(obs.OSCacheHit)},
		{"oscache misses", span.OSCacheMissMark, cnt.Get(obs.OSCacheMiss)},
		{"oscache evicts", span.OSCacheEvictMark, cnt.Get(obs.OSCacheEvict)},
		{"query spans", span.QuerySpan, cnt.Get(obs.QueryStart)},
	}
	for _, ck := range checks {
		if got := counts[ck.kind]; got != ck.want {
			t.Errorf("%s: %d spans != %d counter events", ck.name, got, ck.want)
		}
	}

	rep := span.BuildReport(tr.Spans())
	for i, q := range res.Queries {
		if got := rep.Queries[i].DiskReads; got != q.DiskReads {
			t.Errorf("query %s: report disk reads %d != result %d", q.ID, got, q.DiskReads)
		}
		if got := rep.Queries[i].Elapsed; got != sim.Duration(q.End-q.Start) {
			t.Errorf("query %s: report elapsed %v != result %v", q.ID, got, q.End-q.Start)
		}
		if rep.Queries[i].Label != q.ID {
			t.Errorf("query %d labeled %q, want %q", i, rep.Queries[i].Label, q.ID)
		}
	}
	if rep.Queries[0].PrefetchHidden == 0 {
		t.Error("prefetched query hid no disk time")
	}
	if rep.Queries[1].PrefetchHits != 0 || rep.Queries[1].Inference != 0 {
		t.Errorf("default-path query attributed prefetch work: %+v", rep.Queries[1])
	}
}

// TestTracerDoesNotPerturbTiming: tracing must be read-only — the replayed
// timeline with a tracer attached is bitwise identical to the timeline
// without one.
func TestTracerDoesNotPerturbTiming(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 400, 400, 96)
	pf := nonSeqPages(reqs)
	base := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	c := cfg()
	c.Tracer = span.New()
	traced := Run(reg, c, []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 64}})
	if base.Elapsed("q") != traced.Elapsed("q") || base.Disk != traced.Disk {
		t.Fatalf("tracer perturbed replay: %v/%d vs %v/%d",
			base.Elapsed("q"), base.Disk, traced.Elapsed("q"), traced.Disk)
	}
}

// TestTracerAllocFreeInHotPath mirrors TestInstrumentationAllocFree for the
// tracer: buffer and OS cache hot operations allocate nothing extra whether
// the tracer is nil or attached (with capacity reserved).
func TestTracerAllocFreeInHotPath(t *testing.T) {
	page := storage.PageID{Object: 1, Page: 0}
	for _, withTr := range []bool{false, true} {
		pool := buffer.New(64, buffer.Clock)
		osc := oscache.New(64, 0)
		if withTr {
			tr := span.New()
			tr.Reserve(4 * 2100)
			pool.SetTracer(tr)
			osc.SetTracer(tr)
		}
		pool.Insert(page, false)
		stream := osc.NewStream()
		osc.Read(stream, page, 16)
		if allocs := testing.AllocsPerRun(1000, func() { pool.Get(page) }); allocs != 0 {
			t.Errorf("pool.Get allocates %v/op (tracer=%v)", allocs, withTr)
		}
		if allocs := testing.AllocsPerRun(1000, func() { osc.Read(stream, page, 16) }); allocs != 0 {
			t.Errorf("osc.Read allocates %v/op (tracer=%v)", allocs, withTr)
		}
	}
}
