package replay

import (
	"sort"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// fixture: object 1 is a big "dimension" heap probed randomly, object 2 a
// "fact" heap scanned sequentially.
func testRegistry() *storage.Registry {
	reg := storage.NewRegistry()
	reg.Register("dim", storage.KindTable, 20000)
	reg.Register("fact", storage.KindTable, 2000)
	return reg
}

// script builds an interleaved request stream: a sequential scan of fact
// pages with nonSeq random dim-page probes sprinkled through it.
func script(reg *storage.Registry, seqPages, nonSeq int, seed uint64) []storage.Request {
	r := sim.NewRand(seed)
	dim := reg.LookupName("dim")
	fact := reg.LookupName("fact")
	var reqs []storage.Request
	probeEvery := 1
	if nonSeq > 0 {
		probeEvery = seqPages/nonSeq + 1
	}
	probes := 0
	for i := 0; i < seqPages; i++ {
		reqs = append(reqs, storage.Request{
			Page:       storage.PageID{Object: fact.ID, Page: storage.PageNum(i)},
			Sequential: true,
			Tuples:     50,
		})
		if probes < nonSeq && i%probeEvery == 0 {
			reqs = append(reqs, storage.Request{
				Page:   storage.PageID{Object: dim.ID, Page: storage.PageNum(r.Intn(int(dim.Pages)))},
				Tuples: 1,
			})
			probes++
		}
	}
	for probes < nonSeq {
		reqs = append(reqs, storage.Request{
			Page:   storage.PageID{Object: dim.ID, Page: storage.PageNum(r.Intn(int(dim.Pages)))},
			Tuples: 1,
		})
		probes++
	}
	return reqs
}

// nonSeqPages extracts the sorted distinct non-sequential pages of a script
// (an oracle prediction).
func nonSeqPages(reqs []storage.Request) []storage.PageID {
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, r := range reqs {
		if !r.Sequential && !seen[r.Page] {
			seen[r.Page] = true
			out = append(out, r.Page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func seqPages(reqs []storage.Request) []storage.PageID {
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, r := range reqs {
		if r.Sequential && !seen[r.Page] {
			seen[r.Page] = true
			out = append(out, r.Page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func cfg() Config {
	return Config{BufferPages: 4096, OSCachePages: 8192}
}

func TestDefaultReplayDeterministic(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 500, 300, 1)
	a := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	b := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	if a.Elapsed("q") != b.Elapsed("q") {
		t.Fatal("replay not deterministic")
	}
	if a.Elapsed("q") <= 0 {
		t.Fatal("zero elapsed time")
	}
	qr := a.Queries[0]
	if qr.DiskReads == 0 {
		t.Fatal("cold run had no disk reads")
	}
	if int(qr.BufferHits+qr.OSCopies+qr.DiskReads) != len(reqs) {
		t.Fatalf("request accounting mismatch: %+v vs %d", qr, len(reqs))
	}
}

func TestSequentialScanServedByReadahead(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 1000, 0, 2)
	res := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	qr := res.Queries[0]
	// With OS readahead, the vast majority of sequential reads are memory
	// copies, not disk reads.
	if qr.OSCopies < 900 {
		t.Fatalf("readahead ineffective: %+v", qr)
	}
	if qr.DiskReads > 100 {
		t.Fatalf("too many foreground disk reads on sequential scan: %d", qr.DiskReads)
	}
}

func TestOraclePrefetchSpeedsUpNonSequential(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 500, 400, 3)
	dflt := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	pref := Run(reg, cfg(), []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 1024,
	}})
	speedup := float64(dflt.Elapsed("q")) / float64(pref.Elapsed("q"))
	if speedup < 1.5 {
		t.Fatalf("oracle non-seq prefetch speedup = %.2f, want > 1.5", speedup)
	}
	if pref.Queries[0].Prefetched == 0 {
		t.Fatal("nothing was prefetched")
	}
}

// TestFigure1Mechanism reproduces the paper's Figure 1 contrast: prefetching
// sequentially read blocks barely helps (OS readahead already serves them),
// while prefetching the non-sequential blocks helps a lot.
func TestFigure1Mechanism(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 800, 400, 4)
	dflt := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	seqOnly := Run(reg, cfg(), []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: seqPages(reqs), Window: 1024,
	}})
	nonSeqOnly := Run(reg, cfg(), []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 1024,
	}})
	base := float64(dflt.Elapsed("q"))
	seqSpeedup := base / float64(seqOnly.Elapsed("q"))
	nonSeqSpeedup := base / float64(nonSeqOnly.Elapsed("q"))
	if nonSeqSpeedup <= seqSpeedup {
		t.Fatalf("non-seq prefetch (%.2fx) should beat seq prefetch (%.2fx)", nonSeqSpeedup, seqSpeedup)
	}
	if seqSpeedup > 1.5 {
		t.Fatalf("seq prefetch speedup %.2fx implausibly high (readahead should already cover it)", seqSpeedup)
	}
}

func TestPrefetchAccountingAndPins(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 200, 5)
	res := Run(reg, cfg(), []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 64,
	}})
	qr := res.Queries[0]
	if qr.Prefetched == 0 {
		t.Fatal("no prefetches landed")
	}
	if res.Buffer.PrefetchHits == 0 {
		t.Fatal("no prefetched page was ever used")
	}
}

func TestSmallWindowStillCompletes(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 200, 300, 6)
	for _, w := range []int{1, 2, 8, 64, 100000} {
		res := Run(reg, cfg(), []QuerySpec{{
			ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: w,
		}})
		if res.Elapsed("q") <= 0 {
			t.Fatalf("window %d: no elapsed time", w)
		}
	}
}

func TestLargerWindowNotSlower(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 400, 500, 7)
	pf := nonSeqPages(reqs)
	small := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 2}})
	large := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: pf, Window: 512}})
	if large.Elapsed("q") > small.Elapsed("q")*11/10 {
		t.Fatalf("large window slower: %v vs %v", large.Elapsed("q"), small.Elapsed("q"))
	}
}

func TestTinyBufferLimitedPrefetchCompletes(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 500, 8)
	c := cfg()
	c.BufferPages = 32 // far fewer frames than predicted pages
	res := Run(reg, c, []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 1024,
	}})
	if res.Elapsed("q") <= 0 {
		t.Fatal("query did not complete")
	}
	if res.Buffer.Evictions == 0 {
		t.Fatal("tiny buffer never evicted")
	}
}

func TestConcurrentQueriesShareBuffer(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 300, 300, 9)
	// Two identical queries arriving together: the second benefits from the
	// first's reads, so combined disk reads are fewer than 2× solo.
	solo := Run(reg, cfg(), []QuerySpec{{ID: "a", Requests: reqs}})
	both := Run(reg, cfg(), []QuerySpec{
		{ID: "a", Requests: reqs},
		{ID: "b", Requests: reqs},
	})
	if both.Disk >= 2*solo.Disk {
		t.Fatalf("concurrent identical queries did not share: solo=%d both=%d", solo.Disk, both.Disk)
	}
	for _, q := range both.Queries {
		if q.Elapsed <= 0 {
			t.Fatalf("query %s did not finish", q.ID)
		}
	}
}

func TestArrivalTimesRespected(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 50, 50, 10)
	res := Run(reg, cfg(), []QuerySpec{
		{ID: "a", Requests: reqs},
		{ID: "b", Requests: reqs, Arrival: 50 * time.Millisecond},
	})
	var a, b QueryResult
	for _, q := range res.Queries {
		if q.ID == "a" {
			a = q
		} else {
			b = q
		}
	}
	if b.Start.Sub(a.Start) != 50*time.Millisecond {
		t.Fatalf("arrival offset wrong: a=%v b=%v", a.Start, b.Start)
	}
}

func TestWarmSecondRunFaster(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 200, 200, 11)
	// Sequential (non-overlapping) execution of the same query twice in one
	// run: the second should be much faster thanks to warm caches.
	res := Run(reg, cfg(), []QuerySpec{
		{ID: "cold", Requests: reqs},
		{ID: "warm", Requests: reqs, Arrival: time.Minute},
	})
	if res.Elapsed("warm") >= res.Elapsed("cold") {
		t.Fatalf("warm run not faster: cold=%v warm=%v", res.Elapsed("cold"), res.Elapsed("warm"))
	}
}

func TestPrefetchUnknownObjectPanics(t *testing.T) {
	reg := testRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown object did not panic")
		}
	}()
	Run(reg, cfg(), []QuerySpec{{
		ID:       "q",
		Requests: []storage.Request{{Page: storage.PageID{Object: 99, Page: 0}}},
	}})
}

func TestElapsedUnknownIDPanics(t *testing.T) {
	res := &RunResult{}
	defer func() {
		if recover() == nil {
			t.Fatal("Elapsed of unknown id did not panic")
		}
	}()
	res.Elapsed("nope")
}

func TestTotalElapsed(t *testing.T) {
	res := &RunResult{Queries: []QueryResult{{Elapsed: time.Second}, {Elapsed: 2 * time.Second}}}
	if res.TotalElapsed() != 3*time.Second {
		t.Fatal("TotalElapsed wrong")
	}
}
