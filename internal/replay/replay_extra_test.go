package replay

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/buffer"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

func TestConfigNormalizeFillsDefaults(t *testing.T) {
	c, err := (Config{}).Normalize()
	if err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if c.BufferPages != 1024 || c.OSCachePages != 4096 {
		t.Fatalf("size defaults wrong: %+v", c)
	}
	if c.PrefetchWorkers != 4 || c.DefaultWindow != 1024 {
		t.Fatalf("prefetch defaults wrong: %+v", c)
	}
	if c.Cost.DiskRead == 0 {
		t.Fatal("cost model default missing")
	}
	// Explicit values are preserved.
	c2, err := (Config{BufferPages: 77, OSCachePages: 99, PrefetchWorkers: 2, DefaultWindow: 5}).Normalize()
	if err != nil {
		t.Fatalf("explicit config invalid: %v", err)
	}
	if c2.BufferPages != 77 || c2.OSCachePages != 99 || c2.PrefetchWorkers != 2 || c2.DefaultWindow != 5 {
		t.Fatalf("explicit config clobbered: %+v", c2)
	}
}

func TestConfigNormalizeRejectsNegatives(t *testing.T) {
	bad := []Config{
		{BufferPages: -1},
		{OSCachePages: -8},
		{ReadaheadMax: -2},
		{PrefetchWorkers: -1},
		{DefaultWindow: -64},
		{Cost: sim.CostModel{DiskRead: -time.Millisecond}},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Fatalf("config %d (%+v) accepted", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run with invalid config did not panic")
		}
	}()
	Run(testRegistry(), Config{BufferPages: -1}, nil)
}

func TestZeroWindowUsesDefault(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 100, 21)
	c := cfg()
	c.DefaultWindow = 4
	res := Run(reg, c, []QuerySpec{{
		ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), // Window: 0
	}})
	if res.Elapsed("q") <= 0 {
		t.Fatal("query with defaulted window did not run")
	}
	if res.Queries[0].Prefetched == 0 {
		t.Fatal("no prefetches with defaulted window")
	}
}

func TestEmptyRequestListCompletesImmediately(t *testing.T) {
	reg := testRegistry()
	res := Run(reg, cfg(), []QuerySpec{{ID: "noop"}})
	if res.Elapsed("noop") != 0 {
		t.Fatalf("empty query elapsed %v", res.Elapsed("noop"))
	}
}

func TestPrefetchOfUnrequestedPagesHarmless(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 300, 300, 22)
	// Prefetch entirely wrong pages: correctness must hold (the paper's
	// "an incorrectly predicted page does not affect performance unless it
	// evicts a page required from the buffer").
	dim := reg.LookupName("dim")
	var wrong []storage.PageID
	for i := 0; i < 200; i++ {
		wrong = append(wrong, storage.PageID{Object: dim.ID, Page: storage.PageNum(10000 + i)})
	}
	dflt := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs}})
	bad := Run(reg, cfg(), []QuerySpec{{ID: "q", Requests: reqs, Prefetch: wrong, Window: 64}})
	// With a large buffer the regression must be negligible (< 10%).
	if float64(bad.Elapsed("q")) > float64(dflt.Elapsed("q"))*1.1 {
		t.Fatalf("wrong prefetches caused regression: %v vs %v", bad.Elapsed("q"), dflt.Elapsed("q"))
	}
	// The script's probes are uniform over the dimension, so a handful of
	// accidental collisions with the "wrong" range are possible — but no
	// more than that.
	if bad.Buffer.PrefetchHits > 5 {
		t.Fatalf("wrong prefetches counted as useful: %d hits", bad.Buffer.PrefetchHits)
	}
}

func TestMRUPolicyRuns(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 100, 200, 23)
	for _, pol := range []buffer.Policy{buffer.Clock, buffer.LRU, buffer.MRU} {
		c := cfg()
		c.BufferPolicy = pol
		c.BufferPages = 128
		res := Run(reg, c, []QuerySpec{{
			ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs), Window: 32,
		}})
		if res.Elapsed("q") <= 0 {
			t.Fatalf("%v replay failed", pol)
		}
	}
}

func TestDiskContentionBetweenQueries(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 0, 400, 24)
	c := cfg()
	c.Cost = sim.DefaultCostModel()
	c.Cost.IOWorkers = 1 // a single service channel maximizes contention
	solo := Run(reg, c, []QuerySpec{{ID: "a", Requests: reqs}})
	// A second query with disjoint pages (different seed) contends for the
	// only disk channel, so each query runs slower than alone.
	reqsB := script(reg, 0, 400, 25)
	both := Run(reg, c, []QuerySpec{
		{ID: "a", Requests: reqs},
		{ID: "b", Requests: reqsB},
	})
	if both.Elapsed("a") <= solo.Elapsed("a") {
		t.Fatalf("no contention visible: solo %v, contended %v", solo.Elapsed("a"), both.Elapsed("a"))
	}
}

func TestPredictLatencyDelaysPrefetchOnly(t *testing.T) {
	reg := testRegistry()
	reqs := script(reg, 10, 10, 26)
	c := cfg()
	c.Cost = sim.DefaultCostModel()
	c.Cost.PredictLatency = time.Hour // absurdly slow model
	dflt := Run(reg, c, []QuerySpec{{ID: "q", Requests: reqs}})
	pref := Run(reg, c, []QuerySpec{{ID: "q", Requests: reqs, Prefetch: nonSeqPages(reqs)}})
	// The query finishes long before the "model" does: no prefetch benefit,
	// but crucially no blocking on the model either.
	if pref.Elapsed("q") > dflt.Elapsed("q")*2 {
		t.Fatalf("prediction latency blocked the query: %v vs %v", pref.Elapsed("q"), dflt.Elapsed("q"))
	}
	if pref.Queries[0].Prefetched > 0 {
		t.Fatal("prefetches landed before the hour-long prediction finished")
	}
}
