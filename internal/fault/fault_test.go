package fault

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/sim"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var i *Injector
	for s := Site(0); s < SiteCount; s++ {
		if i.Fire(s, 0) {
			t.Fatalf("nil injector fired at %v", s)
		}
	}
	if !i.Plan().IsZero() || i.Seed() != 0 || i.Clone() != nil {
		t.Fatal("nil injector accessors not zero")
	}
}

func TestZeroPlanDrawsNothing(t *testing.T) {
	i := New(Plan{}, 42)
	for n := 0; n < 1000; n++ {
		for s := Site(0); s < SiteCount; s++ {
			if i.Fire(s, sim.Time(n)) {
				t.Fatalf("zero plan fired at %v", s)
			}
		}
	}
	// The streams never advanced: they are bit-identical to a fresh clone's.
	j := New(Plan{}, 42)
	for s := range i.rngs {
		if i.rngs[s].Uint64() != j.rngs[s].Uint64() {
			t.Fatal("zero-rate Fire advanced a stream")
		}
	}
}

func TestFireDeterministicAndRateShaped(t *testing.T) {
	plan := Plan{ExecReadRate: 0.3, PrefetchReadRate: 0.05}
	a := New(plan, 7)
	b := New(plan, 7)
	fires := 0
	const n = 20000
	for k := 0; k < n; k++ {
		fa := a.Fire(ExecRead, sim.Time(k))
		if fb := b.Fire(ExecRead, sim.Time(k)); fa != fb {
			t.Fatalf("same plan+seed diverged at draw %d", k)
		}
		if fa {
			fires++
		}
	}
	got := float64(fires) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("exec fire rate %.3f, want ≈0.30", got)
	}
	// Reset rewinds to the identical sequence.
	a.Reset()
	c := New(plan, 7)
	for k := 0; k < 100; k++ {
		if a.Fire(ExecRead, 0) != c.Fire(ExecRead, 0) {
			t.Fatal("Reset did not rewind the stream")
		}
	}
}

func TestSitesAreIndependentStreams(t *testing.T) {
	// Same seed, but plan B additionally draws heavily at PrefetchRead;
	// the ExecRead decision sequence must be unchanged.
	a := New(Plan{ExecReadRate: 0.5}, 11)
	b := New(Plan{ExecReadRate: 0.5, PrefetchReadRate: 0.9}, 11)
	for k := 0; k < 5000; k++ {
		b.Fire(PrefetchRead, sim.Time(k)) // extra draws on another site
		if a.Fire(ExecRead, sim.Time(k)) != b.Fire(ExecRead, sim.Time(k)) {
			t.Fatalf("prefetch draws perturbed exec stream at %d", k)
		}
	}
}

func TestWindowsOverrideBaseRate(t *testing.T) {
	plan := Plan{
		ExecReadRate: 0,
		Windows: []Window{
			{Site: ExecRead, From: sim.Time(100), To: sim.Time(200), Rate: 1},
		},
	}
	i := New(plan, 3)
	if i.Fire(ExecRead, sim.Time(50)) {
		t.Fatal("fired outside window")
	}
	if !i.Fire(ExecRead, sim.Time(150)) {
		t.Fatal("did not fire inside certain window")
	}
	if i.Fire(ExecRead, sim.Time(200)) {
		t.Fatal("fired at window end (To is exclusive)")
	}
	// Later windows shadow earlier ones.
	shadow := Plan{Windows: []Window{
		{Site: ExecRead, From: 0, To: sim.Time(1000), Rate: 1},
		{Site: ExecRead, From: sim.Time(400), To: sim.Time(600), Rate: 0},
	}}
	j := New(shadow, 3)
	if !j.Fire(ExecRead, sim.Time(10)) || j.Fire(ExecRead, sim.Time(500)) {
		t.Fatal("window shadowing wrong")
	}
}

func TestReadLatency(t *testing.T) {
	i := New(Plan{LatencySpikeRate: 1, LatencyMultiplier: 4}, 9)
	if got := i.ReadLatency(0, time.Millisecond); got != 4*time.Millisecond {
		t.Fatalf("spiked latency %v, want 4ms", got)
	}
	quiet := New(Plan{}, 9)
	if got := quiet.ReadLatency(0, time.Millisecond); got != time.Millisecond {
		t.Fatalf("unspiked latency %v, want 1ms", got)
	}
	// Default multiplier fills to 8×.
	d := New(Plan{LatencySpikeRate: 1}, 9)
	if got := d.ReadLatency(0, time.Millisecond); got != 8*time.Millisecond {
		t.Fatalf("default multiplier latency %v, want 8ms", got)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("exec=0.01,prefetch=0.05, latency=0.02 ,infer=0.1,serve=0.2,mult=16")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		ExecReadRate: 0.01, PrefetchReadRate: 0.05, LatencySpikeRate: 0.02,
		InferenceRate: 0.1, ServeRate: 0.2, LatencyMultiplier: 16,
	}
	if p.ExecReadRate != want.ExecReadRate || p.PrefetchReadRate != want.PrefetchReadRate ||
		p.LatencySpikeRate != want.LatencySpikeRate || p.InferenceRate != want.InferenceRate ||
		p.ServeRate != want.ServeRate || p.LatencyMultiplier != want.LatencyMultiplier {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if empty, err := ParsePlan("  "); err != nil || !empty.IsZero() {
		t.Fatalf("empty plan: %+v, %v", empty, err)
	}
	for _, bad := range []string{"exec", "exec=x", "bogus=0.1", "exec=1.5", "mult=-1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) did not error", bad)
		}
	}
}

func TestParsePlanReplicaSite(t *testing.T) {
	p, err := ParsePlan("replica=1,replica-id=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.ReplicaRate != 1 || p.ReplicaIndex != 2 {
		t.Fatalf("parsed %+v, want replica=1 replica-id=2", p)
	}
	if p.IsZero() {
		t.Fatal("replica-only plan reported zero")
	}
	if s := p.String(); s != "replica=1,replica-id=2" {
		t.Fatalf("plan renders %q", s)
	}
	// replica-id without a rate does not render (it is inert).
	if s := (Plan{ReplicaIndex: 3}).String(); s != "none" {
		t.Fatalf("rate-less replica-id renders %q", s)
	}
	for _, bad := range []string{"replica=2", "replica-id=1.5", "replica-id=-1", "replica-id=x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) did not error", bad)
		}
	}
}

func TestFireReplicaTargetsOneIndex(t *testing.T) {
	i := New(Plan{ReplicaRate: 1, ReplicaIndex: 2}, 5)
	for k := 0; k < 100; k++ {
		if i.FireReplica(0, sim.Time(k)) || i.FireReplica(1, sim.Time(k)) {
			t.Fatal("untargeted replica drew a fault")
		}
		if !i.FireReplica(2, sim.Time(k)) {
			t.Fatal("targeted replica did not fault at rate 1")
		}
	}
	// Partial rates stay deterministic across same-seed injectors.
	a := New(Plan{ReplicaRate: 0.4, ReplicaIndex: 1}, 17)
	b := New(Plan{ReplicaRate: 0.4, ReplicaIndex: 1}, 17)
	fires := 0
	const n = 20000
	for k := 0; k < n; k++ {
		fa := a.FireReplica(1, sim.Time(k))
		if fb := b.FireReplica(1, sim.Time(k)); fa != fb {
			t.Fatalf("same plan+seed diverged at draw %d", k)
		}
		if fa {
			fires++
		}
	}
	if got := float64(fires) / n; got < 0.36 || got > 0.44 {
		t.Fatalf("replica fire rate %.3f, want ≈0.40", got)
	}
	var nilInj *Injector
	if nilInj.FireReplica(0, 0) {
		t.Fatal("nil injector fired replica fault")
	}
}

func TestValidate(t *testing.T) {
	good := Plan{ExecReadRate: 0.5, Windows: []Window{{Site: Serve, From: 0, To: 10, Rate: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Plan{
		{ExecReadRate: -0.1},
		{ServeRate: 1.1},
		{ReplicaRate: -0.5},
		{ReplicaIndex: -1},
		{LatencyMultiplier: -2},
		{Windows: []Window{{Site: SiteCount, From: 0, To: 10, Rate: 0.5}}},
		{Windows: []Window{{Site: ExecRead, From: 10, To: 10, Rate: 0.5}}},
		{Windows: []Window{{Site: ExecRead, From: 0, To: 10, Rate: 2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("plan %+v validated", bad)
		}
	}
}

func TestPlanString(t *testing.T) {
	if s := (Plan{}).String(); s != "none" {
		t.Fatalf("zero plan renders %q", s)
	}
	p := Plan{ExecReadRate: 0.01, LatencyMultiplier: 8}
	if s := p.String(); s != "exec=0.01,mult=8" {
		t.Fatalf("plan renders %q", s)
	}
}
