// Package fault is the deterministic fault-injection layer for the I/O and
// serving stack. A Plan names per-site fault rates (plus scripted
// virtual-time windows that override them); an Injector seeded from
// internal/sim's PRNG turns the plan into concrete per-call decisions. Every
// decision is a pure function of (seed, site, call ordinal), so a replay
// under any plan is bitwise reproducible: the same plan and seed fire the
// same faults at the same sites in the same order, run after run.
//
// The injected faults are the failure modes a deployed learned prefetcher
// must degrade through (the paper's safety argument, §3.3, is that
// prefetching is advisory — a missing or late page costs speed, never
// correctness):
//
//   - ExecRead: the executor's synchronous device read fails transiently.
//   - PrefetchRead: an asynchronous prefetch device read fails transiently.
//   - LatencySpike: a device read completes but at a tail-latency multiple.
//   - Inference: model inference blows its virtual-time deadline.
//   - Serve: the serving tier's model path throws a transient error.
//
// Each site draws from its own Split-derived stream, so raising one site's
// rate never perturbs another site's decisions, and a plan with a zero rate
// at a site draws nothing there at all — an all-zero plan is timeline-
// identical to no injector.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/pythia-db/pythia/internal/sim"
)

// Site enumerates the places a fault can fire.
type Site uint8

const (
	// ExecRead: a foreground (executor-blocking) device read fails.
	ExecRead Site = iota
	// PrefetchRead: an asynchronous prefetch device read fails.
	PrefetchRead
	// LatencySpike: a device read is served at a tail-latency multiple.
	LatencySpike
	// Inference: model inference exceeds its virtual-time budget.
	Inference
	// Serve: the HTTP serving tier's model path errors transiently.
	Serve
	// Replica: one chosen serving replica's inferences (and standby builds
	// during a model swap) fail, leaving its siblings healthy — the site the
	// pool's quarantine → failover → probe → recovery cycle is drilled with.
	Replica
	// SiteCount sizes per-site arrays; it must remain last.
	SiteCount
)

var siteNames = [SiteCount]string{
	ExecRead:     "exec",
	PrefetchRead: "prefetch",
	LatencySpike: "latency",
	Inference:    "infer",
	Serve:        "serve",
	Replica:      "replica",
}

// String returns the site's short name (the key used by ParsePlan).
func (s Site) String() string {
	if s < SiteCount {
		return siteNames[s]
	}
	return "unknown"
}

// Window scripts a fault burst: within [From, To) on the virtual timeline,
// the site fires at Rate instead of its base rate. Later windows shadow
// earlier ones where they overlap, so a plan can carve exceptions out of a
// burst.
type Window struct {
	Site     Site
	From, To sim.Time
	Rate     float64
}

// Plan is the declarative fault configuration: a base rate per site, the
// tail-latency multiplier LatencySpike applies, and scripted windows. The
// zero Plan injects nothing.
type Plan struct {
	// ExecReadRate is the probability a foreground device read fails.
	ExecReadRate float64
	// PrefetchReadRate is the probability a prefetch device read fails.
	PrefetchReadRate float64
	// LatencySpikeRate is the probability a device read is spiked.
	LatencySpikeRate float64
	// InferenceRate is the probability one query's inference times out.
	InferenceRate float64
	// ServeRate is the probability the serving tier's model path errors.
	ServeRate float64
	// ReplicaRate is the probability the targeted replica's model path (or
	// its standby build during a swap) errors. Unlike Serve, which fires on
	// whichever replica draws next, Replica faults are pinned to the replica
	// whose pool index equals ReplicaIndex — the "kill exactly this replica"
	// knob chaos drills need.
	ReplicaRate float64
	// ReplicaIndex is the pool index Replica faults target (default 0).
	ReplicaIndex int
	// LatencyMultiplier scales a spiked read's latency (default 8×).
	LatencyMultiplier float64
	// Windows script rate overrides on the virtual timeline.
	Windows []Window
}

// rate returns the effective rate for site at virtual time at, applying the
// last matching window override.
func (p *Plan) rate(site Site, at sim.Time) float64 {
	r := 0.0
	switch site {
	case ExecRead:
		r = p.ExecReadRate
	case PrefetchRead:
		r = p.PrefetchReadRate
	case LatencySpike:
		r = p.LatencySpikeRate
	case Inference:
		r = p.InferenceRate
	case Serve:
		r = p.ServeRate
	case Replica:
		r = p.ReplicaRate
	}
	for _, w := range p.Windows {
		if w.Site == site && !at.Before(w.From) && at.Before(w.To) {
			r = w.Rate
		}
	}
	return r
}

// IsZero reports whether the plan injects nothing.
func (p Plan) IsZero() bool {
	return p.ExecReadRate == 0 && p.PrefetchReadRate == 0 &&
		p.LatencySpikeRate == 0 && p.InferenceRate == 0 && p.ServeRate == 0 &&
		p.ReplicaRate == 0 && len(p.Windows) == 0
}

// Validate rejects rates outside [0, 1] and malformed windows.
func (p Plan) Validate() error {
	check := func(name string, r float64) error {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0, 1]", name, r)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		rate float64
	}{
		{"exec", p.ExecReadRate}, {"prefetch", p.PrefetchReadRate},
		{"latency", p.LatencySpikeRate}, {"infer", p.InferenceRate},
		{"serve", p.ServeRate}, {"replica", p.ReplicaRate},
	} {
		if err := check(c.name, c.rate); err != nil {
			return err
		}
	}
	if p.LatencyMultiplier < 0 {
		return fmt.Errorf("fault: negative latency multiplier %g", p.LatencyMultiplier)
	}
	if p.ReplicaIndex < 0 {
		return fmt.Errorf("fault: negative replica index %d", p.ReplicaIndex)
	}
	for _, w := range p.Windows {
		if w.Site >= SiteCount {
			return fmt.Errorf("fault: window on unknown site %d", w.Site)
		}
		if !w.From.Before(w.To) {
			return fmt.Errorf("fault: empty window [%v, %v)", w.From, w.To)
		}
		if err := check(w.Site.String()+" window", w.Rate); err != nil {
			return err
		}
	}
	return nil
}

// ParsePlan parses the CLI plan syntax: a comma-separated list of
// "site=rate" entries over the site names exec, prefetch, latency, infer,
// serve, and replica, plus an optional "mult=N" latency multiplier and a
// "replica-id=N" index naming which replica the replica site targets.
// Example:
//
//	exec=0.01,prefetch=0.05,latency=0.02,mult=8
//	replica=1,replica-id=1
//
// An empty string parses to the zero (inject-nothing) plan. Scripted windows
// have no CLI syntax; build the Plan in code for those.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: plan entry %q is not key=value", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: plan entry %q: %v", part, err)
		}
		switch key {
		case "exec":
			p.ExecReadRate = f
		case "prefetch":
			p.PrefetchReadRate = f
		case "latency":
			p.LatencySpikeRate = f
		case "infer":
			p.InferenceRate = f
		case "serve":
			p.ServeRate = f
		case "replica":
			p.ReplicaRate = f
		case "replica-id":
			if f != float64(int(f)) || f < 0 {
				return Plan{}, fmt.Errorf("fault: replica-id %q is not a non-negative integer", val)
			}
			p.ReplicaIndex = int(f)
		case "mult":
			p.LatencyMultiplier = f
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q (have exec, prefetch, latency, infer, serve, replica, replica-id, mult)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in ParsePlan syntax (windows are appended in a
// bracketed suffix for logs; they do not round-trip).
func (p Plan) String() string {
	var parts []string
	add := func(key string, r float64) {
		if r != 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(r, 'g', -1, 64))
		}
	}
	add("exec", p.ExecReadRate)
	add("prefetch", p.PrefetchReadRate)
	add("latency", p.LatencySpikeRate)
	add("infer", p.InferenceRate)
	add("serve", p.ServeRate)
	add("replica", p.ReplicaRate)
	if p.ReplicaRate != 0 {
		add("replica-id", float64(p.ReplicaIndex))
	}
	add("mult", p.LatencyMultiplier)
	out := strings.Join(parts, ",")
	if len(p.Windows) > 0 {
		out += fmt.Sprintf("+%d windows", len(p.Windows))
	}
	if out == "" {
		out = "none"
	}
	return out
}

// Injector turns a Plan into per-call fault decisions. It is stateful (each
// decision advances its site's PRNG stream) and, like the rest of the
// simulation substrate, not synchronized — callers outside the
// single-threaded simulator (the HTTP tier) serialize access themselves.
// Build a fresh Injector (or call Reset) per run to reproduce a timeline.
//
// A nil *Injector is valid everywhere and never fires, so call sites need no
// nil-checks.
type Injector struct {
	plan Plan
	seed uint64
	rngs [SiteCount]*sim.Rand
}

// New returns an injector for plan seeded with seed. It panics on an invalid
// plan (call Plan.Validate first to handle errors gracefully) and fills an
// unset LatencyMultiplier with the default 8×.
func New(plan Plan, seed uint64) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err.Error())
	}
	if plan.LatencyMultiplier == 0 {
		plan.LatencyMultiplier = 8
	}
	i := &Injector{plan: plan, seed: seed}
	i.Reset()
	return i
}

// Reset rewinds every site stream to its initial state, so the next run
// replays the identical fault sequence.
func (i *Injector) Reset() {
	root := sim.NewRand(i.seed)
	for s := range i.rngs {
		i.rngs[s] = root.Split()
	}
}

// Clone returns a fresh injector with the same plan and seed, rewound to the
// start — the way to run a fault-identical replay without perturbing this
// injector's streams.
func (i *Injector) Clone() *Injector {
	if i == nil {
		return nil
	}
	return New(i.plan, i.seed)
}

// Plan returns the injector's plan.
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Seed returns the injector's seed.
func (i *Injector) Seed() uint64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Fire decides whether site faults at virtual time at. A zero effective rate
// draws nothing from the site's stream, so disabled sites cost nothing and
// never shift the decisions of enabled ones.
func (i *Injector) Fire(site Site, at sim.Time) bool {
	if i == nil || site >= SiteCount {
		return false
	}
	r := i.plan.rate(site, at)
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	return i.rngs[site].Float64() < r
}

// FireReplica decides whether the Replica site faults for the replica with
// the given pool index. Only the plan's targeted ReplicaIndex ever draws, so
// the chosen replica fails deterministically while its siblings' behaviour —
// and every other site's stream — is untouched.
func (i *Injector) FireReplica(id int, at sim.Time) bool {
	if i == nil || id != i.plan.ReplicaIndex {
		return false
	}
	return i.Fire(Replica, at)
}

// ReadLatency applies the tail-latency fault to one device read: base when
// the LatencySpike site does not fire, base × LatencyMultiplier when it does.
func (i *Injector) ReadLatency(at sim.Time, base sim.Duration) sim.Duration {
	if i.Fire(LatencySpike, at) {
		return sim.Duration(float64(base) * i.plan.LatencyMultiplier)
	}
	return base
}
