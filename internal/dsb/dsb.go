// Package dsb synthesizes the Decision Support Benchmark substrate the
// paper evaluates on (§5.1). DSB is TPC-DS's entity model — 7 fact and 17
// dimension relations — with skewed, correlated data distributions replacing
// TPC-DS's uniform ones, and parameterized SPJ query templates.
//
// This generator rebuilds that substrate at simulation scale: the full
// 24-relation schema with page geometries proportional to TPC-DS row counts,
// Zipf skew on hot foreign keys, cross-column correlations (a fact's item
// foreign key tracks its sold-date, so a date-range predicate selects a
// correlated set of dimension pages — the structure Pythia learns), and the
// three representative templates the paper reports (18, 19, 91) shaped to
// land in the same access-pattern regimes as Table 1:
//
//	T18 — large fact (catalog_sales), 6 relations, ≤4 index-scanned dims,
//	      many distinct plans (borderline hash/index cost decisions);
//	T19 — largest fact (store_sales), 6 relations, fewer distinct plans;
//	T91 — small fact (catalog_returns), 7 relations, ≤5 index-scanned dims,
//	      the highest non-sequential fraction (and thus the best speedup).
//
// ScaleFactor maps linearly onto page counts: 100 is the reference
// "SF 100" simulation scale; 25 and 50 reproduce Figure 12a's database-size
// sweep. Tests use smaller factors for speed.
package dsb

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/workload"
)

// Config parameterizes database construction.
type Config struct {
	// ScaleFactor scales all fact (and most dimension) row counts linearly;
	// 100 is the reference scale.
	ScaleFactor int
	// Seed drives all value generators.
	Seed uint64
	// Index overrides B+tree geometry (defaults are production-like).
	Index index.Config
}

// DefaultConfig returns the reference SF-100 configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 100, Seed: 7, Index: index.Config{LeafCap: 128, Fanout: 64}}
}

// Generator owns a DSB database and produces template query instances.
type Generator struct {
	cfg Config
	db  *catalog.Database

	// Domain bounds the templates draw parameters from.
	dateLo, dateHi   int64
	priceLo, priceHi int64
}

// scaled returns base rows scaled by the configured factor (reference 100),
// with a floor of 20 rows so tiny scale factors stay well formed.
func (g *Generator) scaled(base int64) int64 {
	rows := base * int64(g.cfg.ScaleFactor) / 100
	if rows < 20 {
		rows = 20
	}
	return rows
}

// NewGenerator builds the 24-relation DSB database at the configured scale.
func NewGenerator(cfg Config) *Generator {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 100
	}
	if cfg.Index.LeafCap == 0 {
		cfg.Index = DefaultConfig().Index
	}
	g := &Generator{cfg: cfg, db: catalog.NewDatabase()}
	g.dateLo, g.dateHi = 0, 2400 // ~6.5 years of day numbers
	g.priceLo, g.priceHi = 0, 30000

	seed := cfg.Seed
	next := func() uint64 { seed += 0x9e3779b97f4a7c15; return seed }

	// --- Dimension relations (17) -------------------------------------
	// Row counts follow TPC-DS proportions at simulation scale. Dims whose
	// TPC-DS size is static keep a fixed size; item/customer families scale.
	itemRows := g.scaled(20400)
	custRows := g.scaled(20000)
	addrRows := g.scaled(10000)
	cdRows := g.scaled(19200)
	hdRows := int64(7200)

	dim := func(name string, rows int64, perPage int, extra ...catalog.Column) *catalog.Relation {
		cols := append([]catalog.Column{
			{Name: name + "_sk", Gen: catalog.Serial{}},
		}, extra...)
		rel := g.db.AddRelation(name, rows, perPage, cols)
		g.db.BuildIndex(rel, name+"_sk", g.cfg.Index)
		return rel
	}

	dim("date_dim", 7305, 20, catalog.Column{Name: "d_year", Gen: catalog.Uniform{Lo: 1998, Hi: 2004, Seed: next()}})
	dim("time_dim", 8640, 20)
	dim("item", itemRows, 12,
		catalog.Column{Name: "i_category", Gen: catalog.Uniform{Lo: 0, Hi: 10, Seed: next()}},
		catalog.Column{Name: "i_brand", Gen: catalog.NewZipf(0, 400, 1.1, next())},
	)
	dim("customer", custRows, 10,
		catalog.Column{Name: "c_birth_year", Gen: catalog.Uniform{Lo: 1930, Hi: 2000, Seed: next()}},
	)
	dim("customer_address", addrRows, 10,
		catalog.Column{Name: "ca_state", Gen: catalog.NewZipf(0, 50, 1.0, next())},
	)
	dim("customer_demographics", cdRows, 20,
		catalog.Column{Name: "cd_dep_count", Gen: catalog.Uniform{Lo: 0, Hi: 10, Seed: next()}},
	)
	dim("household_demographics", hdRows, 20,
		catalog.Column{Name: "hd_income_band", Gen: catalog.Uniform{Lo: 0, Hi: 20, Seed: next()}},
	)
	dim("store", 40, 10)
	dim("call_center", 24, 10)
	dim("catalog_page", 1200, 20)
	dim("web_site", 30, 10)
	dim("web_page", 120, 20)
	dim("warehouse", 15, 10)
	dim("ship_mode", 20, 20)
	dim("reason", 35, 20)
	dim("income_band", 20, 20)
	dim("promotion", 300, 20)

	// --- Fact relations (7) --------------------------------------------
	// Each fact's dimension foreign keys are correlated with its sold-date
	// column (DSB's cross-column correlation): filtering a date range
	// concentrates the probed dimension rows, which is the signal Pythia's
	// models pick up. A Zipf overlay skews popularity (hot items/customers).
	fact := func(name string, rows int64, perPage int, fks []fkSpec) {
		dateGen := catalog.Uniform{Lo: g.dateLo, Hi: g.dateHi, Seed: next()}
		cols := []catalog.Column{
			{Name: name + "_sold_date", Gen: dateGen},
			{Name: name + "_price", Gen: catalog.NewZipf(g.priceLo, int(g.priceHi), 0.6, next())},
			{Name: name + "_quantity", Gen: catalog.Uniform{Lo: 1, Hi: 100, Seed: next()}},
		}
		for _, fk := range fks {
			target := g.db.Relation(fk.dim)
			stride := target.Rows * 3 / (g.dateHi - g.dateLo) // date → key region
			if stride < 1 {
				stride = 1
			}
			window := target.Rows / 64
			if window < 4 {
				window = 4
			}
			cols = append(cols, catalog.Column{
				Name: fk.col,
				Gen: moduloWrap{
					base: catalog.Noisy{
						Base: catalog.Correlated{
							Base:      dateGen,
							Transform: func(stride int64) func(int64) int64 { return func(v int64) int64 { return v * stride } }(stride),
							Lo:        0, Hi: target.Rows,
						},
						Range: window,
						Seed:  next(),
					},
					mod: target.Rows,
				},
			})
		}
		g.db.AddRelation(name, rows, perPage, cols)
	}

	fact("store_sales", g.scaled(288000), 48, []fkSpec{
		{"ss_item_sk", "item"}, {"ss_customer_sk", "customer"},
		{"ss_store_sk", "store"}, {"ss_hdemo_sk", "household_demographics"},
		{"ss_sold_date_sk", "date_dim"},
	})
	fact("catalog_sales", g.scaled(144000), 48, []fkSpec{
		{"cs_item_sk", "item"}, {"cs_bill_customer_sk", "customer"},
		{"cs_bill_addr_sk", "customer_address"}, {"cs_bill_cdemo_sk", "customer_demographics"},
		{"cs_sold_date_sk", "date_dim"},
	})
	fact("web_sales", g.scaled(72000), 48, []fkSpec{
		{"ws_item_sk", "item"}, {"ws_bill_customer_sk", "customer"},
		{"ws_web_site_sk", "web_site"},
	})
	fact("store_returns", g.scaled(28800), 48, []fkSpec{
		{"sr_item_sk", "item"}, {"sr_customer_sk", "customer"},
	})
	fact("catalog_returns", g.scaled(14400), 48, []fkSpec{
		{"cr_item_sk", "item"}, {"cr_returning_customer_sk", "customer"},
		{"cr_returning_addr_sk", "customer_address"}, {"cr_returning_cdemo_sk", "customer_demographics"},
		{"cr_returning_hdemo_sk", "household_demographics"}, {"cr_call_center_sk", "call_center"},
	})
	fact("web_returns", g.scaled(7200), 48, []fkSpec{
		{"wr_item_sk", "item"}, {"wr_returning_customer_sk", "customer"},
	})
	fact("inventory", g.scaled(100000), 96, []fkSpec{
		{"inv_item_sk", "item"}, {"inv_warehouse_sk", "warehouse"},
	})

	return g
}

type fkSpec struct {
	col string
	dim string
}

// moduloWrap wraps a generator's output into [0, mod) so correlated keys
// stay valid foreign keys.
type moduloWrap struct {
	base catalog.Generator
	mod  int64
}

func (m moduloWrap) Value(row int64) int64 {
	v := m.base.Value(row) % m.mod
	if v < 0 {
		v += m.mod
	}
	return v
}

func (m moduloWrap) Domain() (int64, int64) { return 0, m.mod }

// DB returns the generated database.
func (g *Generator) DB() *catalog.Database { return g.db }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Templates lists the implemented template names.
func (g *Generator) Templates() []string { return []string{"t18", "t19", "t91"} }

// Queries generates n uniformly sampled instances of the named template
// ("we use DSB's standard query generator, which uses uniform sampling for
// parameters", §5.1).
func (g *Generator) Queries(template string, n int, seed uint64) []plan.Query {
	r := sim.NewRand(seed ^ g.cfg.Seed)
	out := make([]plan.Query, n)
	for i := range out {
		var q plan.Query
		switch template {
		case "t18":
			q = g.t18(r)
		case "t19":
			q = g.t19(r)
		case "t91":
			q = g.t91(r)
		default:
			panic(fmt.Sprintf("dsb: unknown template %q", template))
		}
		q.Template = template
		q.Instance = i
		out[i] = q
	}
	return out
}

// Workload generates, plans, and executes n instances of the template.
func (g *Generator) Workload(template string, n int, seed uint64) *workload.Workload {
	return workload.MustBuild(template, g.db, g.Queries(template, n, seed))
}

// dateWindow draws a date-range predicate: the start is snapped to a
// discrete grid and the width comes from the template's fixed menu. DSB's
// query generator samples parameters uniformly from *finite per-parameter
// domains* — individual values recur across the workload's instances and
// only their combinations are new — which is exactly what makes unseen
// queries learnable (and what "total distinct queries ... are in billions"
// refers to: the combinatorial product, not continuous values).
func (g *Generator) dateWindow(r *sim.Rand, grid int64, widths []int64) (int64, int64) {
	width := widths[r.Intn(len(widths))]
	slots := (g.dateHi - g.dateLo - width) / grid
	lo := g.dateLo + grid*r.Int63n(slots)
	return lo, lo + width
}

// pick draws uniformly from a finite parameter domain.
func pick(r *sim.Rand, values ...int64) int64 { return values[r.Intn(len(values))] }

// t18 is the catalog_sales template: a date+price filtered fact scan joined
// to customer_demographics, customer, customer_address, date_dim, and item.
// The demographic/price parameters move dimension selectivities across the
// planner's hash/index break-even points, which is what yields T18's large
// number of distinct plans.
func (g *Generator) t18(r *sim.Rand) plan.Query {
	dLo, dHi := g.dateWindow(r, 60, []int64{7, 14, 21, 35, 49})
	priceCap := g.priceLo + pick(r, 200, 1500, 3000, 4500, 6000, 9000, 12000, 15000, 21000, 30000)
	depCount := r.Int63n(10)
	stateCap := pick(r, 5, 15, 25, 35, 45)
	catCap := pick(r, 1, 3, 5, 7, 9)
	dims := []plan.DimJoin{
		{Dim: "customer_demographics", FactFK: "cs_bill_cdemo_sk", DimKey: "customer_demographics_sk",
			Preds: []plan.Pred{plan.Eq("cd_dep_count", depCount)}},
		{Dim: "customer", FactFK: "cs_bill_customer_sk", DimKey: "customer_sk"},
		{Dim: "customer_address", FactFK: "cs_bill_addr_sk", DimKey: "customer_address_sk",
			Preds: []plan.Pred{plan.AtMost("ca_state", stateCap)}},
		{Dim: "item", FactFK: "cs_item_sk", DimKey: "item_sk",
			Preds: []plan.Pred{plan.AtMost("i_category", catCap)}},
	}
	// Emulate optimizer join ordering: most selective dimension first. The
	// order depends on the instance's parameters, so different instances
	// yield structurally different plans — the source of T18's many
	// distinct plans in Table 1.
	sel := map[string]float64{
		"customer_demographics": 0.1,
		"customer":              1.0,
		"customer_address":      float64(stateCap) / 50,
		"item":                  float64(catCap) / 10,
	}
	for i := 1; i < len(dims); i++ {
		for j := i; j > 0 && sel[dims[j].Dim] < sel[dims[j-1].Dim]; j-- {
			dims[j], dims[j-1] = dims[j-1], dims[j]
		}
	}
	dims = append(dims, plan.DimJoin{
		Dim: "date_dim", FactFK: "cs_sold_date_sk", DimKey: "date_dim_sk", ForceHash: true,
	})
	return plan.Query{
		Fact: "catalog_sales",
		FactPreds: []plan.Pred{
			plan.Between("catalog_sales_sold_date", dLo, dHi),
			plan.AtMost("catalog_sales_price", priceCap),
		},
		Dims: dims,
	}
}

// t19 is the store_sales template: the largest fact, joined to item,
// customer, store, household_demographics, and date_dim. Fewer parameters
// cross cost break-evens, so it exhibits fewer distinct plans than t18.
func (g *Generator) t19(r *sim.Rand) plan.Query {
	dLo, dHi := g.dateWindow(r, 60, []int64{7, 10, 14})
	return plan.Query{
		Fact: "store_sales",
		FactPreds: []plan.Pred{
			plan.Between("store_sales_sold_date", dLo, dHi),
			plan.AtMost("store_sales_price", g.priceLo+pick(r, 1000, 2000, 4000, 6000, 8000, 10000)),
		},
		Dims: []plan.DimJoin{
			{Dim: "item", FactFK: "ss_item_sk", DimKey: "item_sk",
				Preds: []plan.Pred{plan.AtMost("i_brand", pick(r, 50, 150, 250, 350))}},
			{Dim: "customer", FactFK: "ss_customer_sk", DimKey: "customer_sk"},
			{Dim: "store", FactFK: "ss_store_sk", DimKey: "store_sk", ForceHash: true},
			{Dim: "household_demographics", FactFK: "ss_hdemo_sk", DimKey: "household_demographics_sk",
				Preds: []plan.Pred{plan.AtMost("hd_income_band", pick(r, 4, 8, 12, 16))}},
			{Dim: "date_dim", FactFK: "ss_sold_date_sk", DimKey: "date_dim_sk", ForceHash: true},
		},
	}
}

// t91 is the catalog_returns template: a small fact joined to call_center,
// customer, customer_demographics, household_demographics, customer_address,
// and date via the customer — 7 relations, up to 5 index-scanned. Because
// the fact is tiny, the non-sequential fraction of its I/O is the highest of
// the three templates, which is where the paper reports its best speedups.
func (g *Generator) t91(r *sim.Rand) plan.Query {
	// Mostly narrow windows (few returns), occasionally a wide one — the
	// source of T91's 30× min-to-max spread in distinct non-sequential IO
	// and of its second plan shape (wide windows push the item join across
	// the hash-join break-even).
	widths := []int64{2, 3, 4}
	if r.Float64() < 0.12 {
		widths = []int64{45, 90}
	}
	dLo, dHi := g.dateWindow(r, 60, widths)
	return plan.Query{
		Fact: "catalog_returns",
		FactPreds: []plan.Pred{
			plan.Between("catalog_returns_sold_date", dLo, dHi),
		},
		Dims: []plan.DimJoin{
			{Dim: "call_center", FactFK: "cr_call_center_sk", DimKey: "call_center_sk", ForceHash: true},
			{Dim: "customer", FactFK: "cr_returning_customer_sk", DimKey: "customer_sk", ForceIndex: true},
			{Dim: "customer_demographics", FactFK: "cr_returning_cdemo_sk", DimKey: "customer_demographics_sk", ForceIndex: true},
			{Dim: "household_demographics", FactFK: "cr_returning_hdemo_sk", DimKey: "household_demographics_sk", ForceIndex: true},
			{Dim: "customer_address", FactFK: "cr_returning_addr_sk", DimKey: "customer_address_sk", ForceIndex: true},
			{Dim: "item", FactFK: "cr_item_sk", DimKey: "item_sk"},
		},
	}
}
