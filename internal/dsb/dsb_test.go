package dsb

import "testing"

func TestSchemaComplete(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 5, Seed: 7})
	db := g.DB()
	facts := []string{"store_sales", "store_returns", "catalog_sales", "catalog_returns", "web_sales", "web_returns", "inventory"}
	dims := []string{"date_dim", "time_dim", "item", "customer", "customer_address",
		"customer_demographics", "household_demographics", "store", "catalog_page",
		"web_site", "web_page", "warehouse", "ship_mode", "reason", "income_band",
		"promotion", "call_center"}
	if len(facts) != 7 || len(dims) != 17 {
		t.Fatal("test fixture miscounts DSB relations")
	}
	for _, n := range append(facts, dims...) {
		rel := db.Relation(n)
		if rel == nil {
			t.Fatalf("relation %s missing", n)
		}
		if rel.Rows <= 0 || rel.Heap.Pages == 0 {
			t.Fatalf("relation %s has no data", n)
		}
	}
	// Every dimension has an index on its surrogate key.
	for _, n := range dims {
		if db.Relation(n).IndexOn(n+"_sk") == nil {
			t.Fatalf("dimension %s lacks its key index", n)
		}
	}
}

func TestScaleFactorScalesFacts(t *testing.T) {
	small := NewGenerator(Config{ScaleFactor: 25, Seed: 7})
	large := NewGenerator(Config{ScaleFactor: 100, Seed: 7})
	s := small.DB().Relation("store_sales")
	l := large.DB().Relation("store_sales")
	if l.Rows != 4*s.Rows {
		t.Fatalf("SF scaling wrong: 25→%d rows, 100→%d rows", s.Rows, l.Rows)
	}
	// Static dims do not scale.
	if small.DB().Relation("date_dim").Rows != large.DB().Relation("date_dim").Rows {
		t.Fatal("date_dim should be scale-independent")
	}
	if small.DB().Registry.TotalPages() >= large.DB().Registry.TotalPages() {
		t.Fatal("total pages did not grow with scale")
	}
}

func TestForeignKeysAreValid(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 5, Seed: 7})
	db := g.DB()
	checks := map[string][2]string{
		"cs_item_sk":            {"catalog_sales", "item"},
		"ss_customer_sk":        {"store_sales", "customer"},
		"cr_returning_cdemo_sk": {"catalog_returns", "customer_demographics"},
		"cr_call_center_sk":     {"catalog_returns", "call_center"},
	}
	for col, pair := range checks {
		fact := db.Relation(pair[0])
		target := db.Relation(pair[1])
		for row := int64(0); row < fact.Rows; row += 37 {
			v := fact.Value(col, row)
			if v < 0 || v >= target.Rows {
				t.Fatalf("%s.%s = %d out of [0,%d)", pair[0], col, v, target.Rows)
			}
		}
	}
}

func TestFKCorrelatedWithDate(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 10, Seed: 7})
	fact := g.DB().Relation("catalog_sales")
	// Rows with nearby dates should map to nearby customer keys far more
	// often than random pairs would.
	custRows := g.DB().Relation("customer").Rows
	nearCount := 0
	samples := 0
	for row := int64(0); row < fact.Rows-1 && samples < 3000; row++ {
		d1 := fact.Value("catalog_sales_sold_date", row)
		for other := row + 1; other < row+40 && other < fact.Rows; other++ {
			d2 := fact.Value("catalog_sales_sold_date", other)
			if d1-d2 > 3 || d2-d1 > 3 {
				continue
			}
			samples++
			k1 := fact.Value("cs_bill_customer_sk", row)
			k2 := fact.Value("cs_bill_customer_sk", other)
			diff := k1 - k2
			if diff < 0 {
				diff = -diff
			}
			if diff < custRows/4 {
				nearCount++
			}
		}
	}
	if samples < 100 {
		t.Fatalf("too few same-date pairs sampled: %d", samples)
	}
	frac := float64(nearCount) / float64(samples)
	if frac < 0.6 {
		t.Fatalf("date→key correlation too weak: %.2f of same-date pairs are key-near", frac)
	}
}

func TestQueriesDeterministicAndTagged(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 5, Seed: 7})
	a := g.Queries("t18", 10, 3)
	b := g.Queries("t18", 10, 3)
	for i := range a {
		if a[i].Template != "t18" || a[i].Instance != i {
			t.Fatalf("query %d tags wrong: %+v", i, a[i])
		}
		if len(a[i].FactPreds) != len(b[i].FactPreds) || a[i].FactPreds[0] != b[i].FactPreds[0] {
			t.Fatal("query generation not deterministic")
		}
	}
	c := g.Queries("t18", 10, 4)
	same := 0
	for i := range a {
		if a[i].FactPreds[0] == c[i].FactPreds[0] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestUnknownTemplatePanics(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 5, Seed: 7})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown template did not panic")
		}
	}()
	g.Queries("t99", 1, 1)
}

func TestTemplateRegimesMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("workload execution in -short mode")
	}
	g := NewGenerator(Config{ScaleFactor: 20, Seed: 7})
	stats := map[string]struct {
		seqPerQuery int
		plans       int
		rels        int
		idx         int
	}{}
	n := 60
	for _, tpl := range g.Templates() {
		w := g.Workload(tpl, n, 1)
		st := w.ComputeStats()
		stats[tpl] = struct {
			seqPerQuery int
			plans       int
			rels        int
			idx         int
		}{st.SeqIO / n, st.DistinctPlans, st.RelationsJoined, st.MaxIndexScanned}
	}
	// Relations joined and max index-scanned dims (Table 1 row 4).
	if stats["t18"].rels != 6 || stats["t19"].rels != 6 || stats["t91"].rels != 7 {
		t.Fatalf("relations joined: %+v", stats)
	}
	if stats["t91"].idx < stats["t18"].idx || stats["t91"].idx < 5 {
		t.Fatalf("t91 should index-scan the most dims: %+v", stats)
	}
	// t91's fact is by far the smallest (its seq IO per query is lowest);
	// t19's is the largest — the Table 1 Sequential IO ordering.
	if !(stats["t91"].seqPerQuery < stats["t18"].seqPerQuery && stats["t18"].seqPerQuery < stats["t19"].seqPerQuery) {
		t.Fatalf("sequential IO ordering wrong: %+v", stats)
	}
	// Distinct plan ordering: t18 most, t91 fewest (21 / 8 / 2 in Table 1).
	if !(stats["t18"].plans >= stats["t19"].plans && stats["t19"].plans > stats["t91"].plans) {
		t.Fatalf("distinct plan ordering wrong: %+v", stats)
	}
}

func TestWorkloadInstancesHaveNonSeqReads(t *testing.T) {
	g := NewGenerator(Config{ScaleFactor: 10, Seed: 7})
	w := g.Workload("t91", 20, 2)
	withNS := 0
	for _, inst := range w.Instances {
		if len(inst.Pages) > 0 {
			withNS++
		}
		// Trace pages must reference registered objects.
		for _, p := range inst.Pages {
			obj := g.DB().Registry.Lookup(p.Object)
			if obj == nil || p.Page >= obj.Pages {
				t.Fatalf("trace page %v out of bounds", p)
			}
		}
	}
	if withNS < len(w.Instances)/2 {
		t.Fatalf("only %d/%d instances had non-sequential reads", withNS, len(w.Instances))
	}
}

func TestModuloWrap(t *testing.T) {
	m := moduloWrap{base: plainGen{-7}, mod: 5}
	if v := m.Value(0); v < 0 || v >= 5 {
		t.Fatalf("moduloWrap produced %d", v)
	}
	lo, hi := m.Domain()
	if lo != 0 || hi != 5 {
		t.Fatal("moduloWrap domain wrong")
	}
}

type plainGen struct{ v int64 }

func (p plainGen) Value(int64) int64      { return p.v }
func (p plainGen) Domain() (int64, int64) { return p.v, p.v + 1 }
