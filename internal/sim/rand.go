package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). Every stochastic component in the
// repository (data generators, query samplers, model initialization, Poisson
// arrivals) draws from a Rand seeded explicitly, so that experiments are
// reproducible bit-for-bit across runs and machines.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expansion of the seed into the xoshiro state, as recommended
	// by the xoshiro authors to avoid correlated low-entropy states.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator from r. The child stream is a pure
// function of r's current state, so deriving per-component generators keeps
// components decoupled: adding draws to one does not perturb another.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1. Scale by 1/λ for
// rate λ; used by the Poisson arrival sampler in the concurrency experiments.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes n elements in place using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s >= 0.
// s = 0 degenerates to uniform; larger s concentrates mass on small ranks.
// It uses inverse-CDF sampling over a lazily built cumulative table, which is
// exact and fast for the table sizes the data generators use.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Poisson samples a Poisson variate with mean lambda (Knuth's method for
// small lambda, normal approximation above 30). Used to derive integer
// counts in the synthetic data generators.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
