// Package sim provides the deterministic simulation substrate shared by the
// rest of the repository: a virtual clock, a reproducible random number
// generator, a discrete-event engine, and the I/O latency cost model that
// stands in for the paper's real PostgreSQL-on-disk testbed.
//
// All experiments in the repository run on virtual time. A query "executes"
// by paying simulated latencies for each page request (buffer hit, OS cache
// copy, or disk read), so speedup ratios are deterministic and independent of
// the host machine.
package sim

import (
	"fmt"
	"time"
)

// Time is a point on the virtual timeline, expressed as a duration since the
// start of the simulation. The zero value is the simulation epoch.
type Time time.Duration

// Duration aliases time.Duration for virtual intervals, so call sites read
// naturally (sim.Time + sim.Duration = sim.Time).
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the interval t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u on the timeline.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u on the timeline.
func (t Time) After(u Time) bool { return t > u }

// String formats the virtual time as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Clock tracks the current virtual time. It is advanced only by the event
// engine (or directly by single-threaded replays); it never reads the wall
// clock.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It panics if d is negative: virtual
// time never rewinds, and a negative advance always indicates a bookkeeping
// bug in the caller.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving backward panics for the
// same reason Advance does.
func (c *Clock) AdvanceTo(t Time) {
	if t.Before(c.now) {
		panic(fmt.Sprintf("sim: clock moved backward from %v to %v", c.now, t))
	}
	c.now = t
}

// Reset rewinds the clock to the epoch so a Clock can be reused between
// independent simulation runs.
func (c *Clock) Reset() { c.now = 0 }
