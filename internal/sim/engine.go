package sim

import "container/heap"

// Event is a unit of scheduled work on the virtual timeline.
type Event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. Actors (query
// replays, prefetch workers, the disk) schedule callbacks; Run dispatches
// them in timestamp order, advancing the shared Clock. Determinism comes from
// the (time, sequence) total order: two events at the same instant run in the
// order they were scheduled.
type Engine struct {
	Clock Clock
	pq    eventHeap
	seq   uint64
	steps uint64
}

// NewEngine returns an empty engine at the simulation epoch.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.Clock.Now() }

// Schedule runs fn after delay. A negative delay panics: events cannot be
// scheduled in the past.
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		panic("sim: Schedule with negative delay")
	}
	e.At(e.Now().Add(delay), fn)
}

// At runs fn at absolute virtual time t, which must not precede the current
// time.
func (e *Engine) At(t Time, fn func()) {
	if t.Before(e.Now()) {
		panic("sim: At with time in the past")
	}
	e.seq++
	heap.Push(&e.pq, &Event{at: t, seq: e.seq, fn: fn})
}

// Run dispatches events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() Time {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		e.Clock.AdvanceTo(ev.at)
		e.steps++
		ev.fn()
	}
	return e.Now()
}

// Steps returns the number of events dispatched so far; useful for tests and
// for asserting that simulations terminate.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.pq) }
