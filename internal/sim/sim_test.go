package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(10 * time.Millisecond)
	if got := c.Now(); got != Time(15*time.Millisecond) {
		t.Fatalf("Now() = %v, want 15ms", got)
	}
	c.AdvanceTo(Time(20 * time.Millisecond))
	if got := c.Now(); got != Time(20*time.Millisecond) {
		t.Fatalf("AdvanceTo: Now() = %v, want 20ms", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: Now() = %v, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestClockBackwardAdvanceToPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backward AdvanceTo did not panic")
		}
	}()
	var c Clock
	c.Advance(time.Second)
	c.AdvanceTo(Time(time.Millisecond))
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After disagree with ordering")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	child := r.Split()
	// Drawing from the child must not perturb the parent's future stream.
	r2 := NewRand(7)
	_ = r2.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatalf("parent stream perturbed by child draws at %d", i)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(10) heavily skewed: value %d drawn %d/10000", v, c)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf(1.2) not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Uniform case: exponent 0 should be roughly flat.
	z0 := NewZipf(r, 10, 0)
	c0 := make([]int, 10)
	for i := 0; i < 10000; i++ {
		c0[z0.Next()]++
	}
	sort.Ints(c0)
	if c0[0] < 700 || c0[9] > 1300 {
		t.Fatalf("Zipf(0) not ~uniform: %v", c0)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(3)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(9)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %f, want ~1", mean)
	}
}

func TestPoisson(t *testing.T) {
	r := NewRand(13)
	for _, lambda := range []float64{0.5, 4, 50} {
		n := 5000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.1 {
			t.Fatalf("Poisson(%v) mean = %f", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() {
		order = append(order, 2)
		// Nested scheduling during the run.
		e.Schedule(0, func() { order = append(order, 20) })
	})
	end := e.Run()
	want := []int{1, 2, 20, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != Time(3*time.Millisecond) {
		t.Fatalf("Run ended at %v, want 3ms", end)
	}
	if e.Steps() != 4 {
		t.Fatalf("Steps = %d, want 4", e.Steps())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Clock.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(Time(time.Millisecond), func() {})
}

func TestDiskSerialization(t *testing.T) {
	d := NewDisk(10*time.Millisecond, 1)
	t1 := d.Read(0)
	t2 := d.Read(0)
	t3 := d.Read(t2)
	if t1 != Time(10*time.Millisecond) {
		t.Fatalf("first read done at %v", t1)
	}
	if t2 != Time(20*time.Millisecond) {
		t.Fatalf("second read (queued) done at %v, want 20ms", t2)
	}
	if t3 != Time(30*time.Millisecond) {
		t.Fatalf("third read done at %v, want 30ms", t3)
	}
	if d.Reads() != 3 {
		t.Fatalf("Reads = %d", d.Reads())
	}
}

func TestDiskParallelChannels(t *testing.T) {
	d := NewDisk(10*time.Millisecond, 4)
	var done []Time
	for i := 0; i < 4; i++ {
		done = append(done, d.Read(0))
	}
	for _, dt := range done {
		if dt != Time(10*time.Millisecond) {
			t.Fatalf("parallel reads should all finish at 10ms, got %v", done)
		}
	}
	// Fifth read queues behind one of the four.
	if d5 := d.Read(0); d5 != Time(20*time.Millisecond) {
		t.Fatalf("queued read done at %v, want 20ms", d5)
	}
	d.Reset()
	if d.Reads() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if dt := d.Read(0); dt != Time(10*time.Millisecond) {
		t.Fatalf("post-Reset read done at %v", dt)
	}
}

func TestDefaultCostModelOrdering(t *testing.T) {
	cm := DefaultCostModel()
	if !(cm.DiskRead > cm.OSCacheCopy && cm.OSCacheCopy > cm.BufferHit) {
		t.Fatalf("cost ordering violated: %+v", cm)
	}
	if cm.IOWorkers <= 0 {
		t.Fatal("IOWorkers must be positive")
	}
}
