package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatal("events remained after Run")
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

// Property: regardless of the (delay, order) mix scheduled, Run dispatches
// in non-decreasing time order and the clock ends at the latest event.
func TestEngineDispatchOrderProperty(t *testing.T) {
	if err := quick.Check(func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		var max Duration
		for _, d := range delays {
			delay := Duration(d) * time.Microsecond
			if delay > max {
				max = delay
			}
			e.Schedule(delay, func() { seen = append(seen, e.Now()) })
		}
		end := e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		if len(delays) > 0 && end != Time(max) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the disk never completes a read before its issue time plus
// latency, and per-channel completions never overlap beyond the channel
// count.
func TestDiskServiceProperty(t *testing.T) {
	if err := quick.Check(func(issues []uint16, workers8 uint8) bool {
		workers := int(workers8%7) + 1
		d := NewDisk(time.Millisecond, workers)
		sort.Slice(issues, func(i, j int) bool { return issues[i] < issues[j] })
		var completions []Time
		for _, at := range issues {
			issue := Time(Duration(at) * time.Microsecond)
			done := d.Read(issue)
			if done.Sub(issue) < time.Millisecond {
				return false
			}
			completions = append(completions, done)
			// With ascending issue times, at most `workers` reads may still
			// be in service when a new one is issued — so among all
			// completions, no more than `workers` may exceed this read's
			// completion minus the service latency.
			inService := 0
			for _, c := range completions {
				if c.After(done.Add(-time.Millisecond)) {
					inService++
				}
			}
			if inService > workers {
				return false
			}
		}
		return d.Reads() == uint64(len(issues))
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
