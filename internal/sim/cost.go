package sim

import "time"

// CostModel holds the latency constants that stand in for the paper's
// physical testbed (4-core machine, spinning/SSD storage, Linux page cache).
// The three read outcomes mirror the paper's description of Postgres' read
// path: "buffer hit if found in buffer, memory copy if buffer miss but
// present in OS buffer, disk copy if miss in both buffers".
//
// Absolute values are unimportant — speedups are ratios — but the ordering
// DiskRead >> OSCacheCopy >> BufferHit is what makes prefetching matter, and
// the defaults keep roughly the proportions of a commodity SSD system.
type CostModel struct {
	// BufferHit is the cost of finding the page already in the RDBMS buffer
	// pool (a hash-table lookup and a pin).
	BufferHit Duration
	// OSCacheCopy is the cost of a buffer miss that hits the OS page cache:
	// a memcpy from kernel to user space plus bookkeeping.
	OSCacheCopy Duration
	// DiskRead is the cost of a read that misses both caches and goes to the
	// storage device with a seek (a random page read).
	DiskRead Duration
	// SeqDiskRead is the per-page device cost of a *sequential* transfer —
	// the rate OS readahead streams at. On seek-bound devices this is far
	// below DiskRead (no head movement), which is exactly why sequential
	// scans don't need Pythia (Figure 1) while non-sequential reads do.
	SeqDiskRead Duration
	// CPUPerTuple is the executor's processing cost per tuple visited; it
	// provides the non-I/O floor that bounds achievable speedup.
	CPUPerTuple Duration
	// CPUPerRequest is the per-page-request executor overhead (locating the
	// page, validating headers) independent of where the page is found.
	CPUPerRequest Duration
	// IOWorkers is the number of read requests the storage device services
	// concurrently (queue depth). Both foreground reads and asynchronous
	// prefetch reads compete for these slots, which is how prefetch
	// saturation and contention between concurrent queries arise.
	IOWorkers int
	// PredictLatency charges Pythia's end-to-end inference cost (plan
	// serialization, encoding, workload matching, model forward passes)
	// before prefetching begins; the paper measures 1–1.5 s against
	// multi-minute queries, i.e. well under 0.5% of runtime. Scaled runs use
	// a proportionally scaled value.
	PredictLatency Duration
}

// DefaultCostModel returns the cost model used by the experiment harness at
// the reduced "simulation scale". The random-read latency models a
// seek-bound device (the paper's multi-minute scans of a 100 GB database
// imply HDD-class storage): a random page read costs ~250× an OS-cache copy
// and far more than a page's share of a streaming sequential scan, which is
// the asymmetry that makes non-sequential prefetching worth 2–6× end to end
// (Figure 6). For SSD-like studies, shrink DiskRead.
func DefaultCostModel() CostModel {
	return CostModel{
		BufferHit:      200 * time.Nanosecond,
		OSCacheCopy:    4 * time.Microsecond,
		DiskRead:       1 * time.Millisecond,
		SeqDiskRead:    60 * time.Microsecond,
		CPUPerTuple:    50 * time.Nanosecond,
		CPUPerRequest:  100 * time.Nanosecond,
		IOWorkers:      8,
		PredictLatency: 500 * time.Microsecond,
	}
}

// Disk models the storage device as IOWorkers parallel service channels with
// fixed per-read latency. It is shared on one Engine timeline by foreground
// reads and prefetch reads, so saturating it with prefetch I/O delays
// foreground misses exactly as on a real device.
type Disk struct {
	latency Duration
	free    []Time // next free instant of each channel
	reads   uint64
}

// NewDisk returns a disk with the given per-read latency and queue depth.
func NewDisk(latency Duration, workers int) *Disk {
	if workers <= 0 {
		workers = 1
	}
	return &Disk{latency: latency, free: make([]Time, workers)}
}

// Read schedules a random read issued at time at and returns its completion
// time. The read occupies the earliest-available channel; if all channels
// are busy the read queues behind the one that frees first.
func (d *Disk) Read(at Time) (done Time) { return d.ReadWith(at, d.latency) }

// ReadWith schedules a read with an explicit service latency — sequential
// transfers (readahead) pass a streaming latency far below the seek-bound
// default.
func (d *Disk) ReadWith(at Time, latency Duration) (done Time) {
	best := 0
	for i, f := range d.free {
		if f.Before(d.free[best]) {
			best = i
		}
	}
	start := at
	if d.free[best].After(start) {
		start = d.free[best]
	}
	done = start.Add(latency)
	d.free[best] = done
	d.reads++
	return done
}

// Reads returns the number of device reads serviced so far.
func (d *Disk) Reads() uint64 { return d.reads }

// Latency returns the per-read service latency.
func (d *Disk) Latency() Duration { return d.latency }

// Reset clears the disk's channel state and counters for a fresh run.
func (d *Disk) Reset() {
	for i := range d.free {
		d.free[i] = 0
	}
	d.reads = 0
}
