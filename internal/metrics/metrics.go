// Package metrics implements the paper's evaluation measures: set-based
// precision/recall/F1 over predicted vs actual page sets (§5.1,
// "Performance Metrics"), speedup ratios, quantile bucketization (bottom /
// middle / top 25%, used by Figures 7–8 and 10–11), and summary statistics.
package metrics

import (
	"math"
	"sort"

	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/trace"
)

// PRF is one query's precision, recall, and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Score compares a predicted page set against the ground truth (both sorted
// by PageID). An empty truth with an empty prediction scores a perfect 1;
// an empty truth with predictions scores 0 precision.
func Score(predicted, truth []storage.PageID) PRF {
	if len(predicted) == 0 && len(truth) == 0 {
		return PRF{Precision: 1, Recall: 1, F1: 1}
	}
	inter := float64(trace.Intersection(predicted, truth))
	var p, r float64
	if len(predicted) > 0 {
		p = inter / float64(len(predicted))
	}
	if len(truth) > 0 {
		r = inter / float64(len(truth))
	}
	f1 := 0.0
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F1: f1}
}

// Speedup is baselineTime / variantTime; values above 1 mean the variant is
// faster.
func Speedup(baseline, variant float64) float64 {
	if variant <= 0 {
		return math.Inf(1)
	}
	return baseline / variant
}

// Summary holds distribution statistics of a sample.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	P25, P75     float64
}

// Summarize computes a Summary; an empty sample returns the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Median: Quantile(s, 0.5),
		Min:    s[0],
		Max:    s[len(s)-1],
		P25:    Quantile(s, 0.25),
		P75:    Quantile(s, 0.75),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample with linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Bucket identifies a quantile bucket.
type Bucket int

const (
	// Low is the bottom 25% of the bucketization key.
	Low Bucket = iota
	// Mid is the middle 50%.
	Mid
	// High is the top 25%.
	High
)

// String names the bucket as the figures label them.
func (b Bucket) String() string {
	switch b {
	case Low:
		return "low"
	case Mid:
		return "mid"
	default:
		return "high"
	}
}

// Bucketize assigns each item to Low (bottom 25% by key), High (top 25%), or
// Mid — the quantile split Figures 7–8 and 10–11 use. Ties at the
// boundaries resolve by key comparison against the exact quartile values.
func Bucketize(keys []float64) []Bucket {
	if len(keys) == 0 {
		return nil
	}
	s := append([]float64(nil), keys...)
	sort.Float64s(s)
	q1 := Quantile(s, 0.25)
	q3 := Quantile(s, 0.75)
	out := make([]Bucket, len(keys))
	for i, k := range keys {
		switch {
		case k <= q1:
			out[i] = Low
		case k > q3:
			out[i] = High
		default:
			out[i] = Mid
		}
	}
	return out
}

// GroupByBucket averages values per bucket; buckets with no members report
// NaN so callers can distinguish "no data" from zero.
func GroupByBucket(buckets []Bucket, values []float64) map[Bucket]float64 {
	if len(buckets) != len(values) {
		panic("metrics: buckets/values length mismatch")
	}
	sums := map[Bucket]float64{}
	counts := map[Bucket]int{}
	for i, b := range buckets {
		sums[b] += values[i]
		counts[b]++
	}
	out := map[Bucket]float64{Low: math.NaN(), Mid: math.NaN(), High: math.NaN()}
	for b, c := range counts {
		out[b] = sums[b] / float64(c)
	}
	return out
}
