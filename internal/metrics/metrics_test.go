package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pythia-db/pythia/internal/storage"
)

func pages(ns ...uint32) []storage.PageID {
	out := make([]storage.PageID, len(ns))
	for i, n := range ns {
		out[i] = storage.PageID{Object: 1, Page: storage.PageNum(n)}
	}
	return out
}

func TestScoreExact(t *testing.T) {
	s := Score(pages(1, 2, 3), pages(1, 2, 3))
	if s.Precision != 1 || s.Recall != 1 || s.F1 != 1 {
		t.Fatalf("perfect prediction scored %+v", s)
	}
}

func TestScorePartial(t *testing.T) {
	// predicted {1,2,3,4}, truth {3,4,5}: inter=2, p=0.5, r=2/3.
	s := Score(pages(1, 2, 3, 4), pages(3, 4, 5))
	if math.Abs(s.Precision-0.5) > 1e-12 || math.Abs(s.Recall-2.0/3) > 1e-12 {
		t.Fatalf("partial score %+v", s)
	}
	wantF1 := 2 * 0.5 * (2.0 / 3) / (0.5 + 2.0/3)
	if math.Abs(s.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %f, want %f", s.F1, wantF1)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if s := Score(nil, nil); s.F1 != 1 {
		t.Fatalf("empty-empty F1 = %f", s.F1)
	}
	if s := Score(pages(1), nil); s.F1 != 0 || s.Precision != 0 {
		t.Fatalf("false-positive-only score %+v", s)
	}
	if s := Score(nil, pages(1)); s.F1 != 0 || s.Recall != 0 {
		t.Fatalf("miss-only score %+v", s)
	}
	if s := Score(pages(1, 2), pages(3, 4)); s.F1 != 0 {
		t.Fatalf("disjoint F1 = %f", s.F1)
	}
}

func TestScoreBounds(t *testing.T) {
	if err := quick.Check(func(a, b []uint8) bool {
		toPages := func(xs []uint8) []storage.PageID {
			seen := map[uint8]bool{}
			var out []storage.PageID
			for _, x := range xs {
				x %= 50
				if !seen[x] {
					seen[x] = true
					out = append(out, storage.PageID{Object: 1, Page: storage.PageNum(x)})
				}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		}
		s := Score(toPages(a), toPages(b))
		return s.Precision >= 0 && s.Precision <= 1 &&
			s.Recall >= 0 && s.Recall <= 1 &&
			s.F1 >= 0 && s.F1 <= 1 &&
			s.F1 <= s.Precision+s.Recall
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Fatal("Speedup wrong")
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Fatal("zero variant should be +Inf")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 || Quantile(s, 0.5) != 3 {
		t.Fatal("Quantile endpoints/median wrong")
	}
	if q := Quantile(s, 0.25); q != 2 {
		t.Fatalf("Q1 = %f", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Fatalf("interpolated median = %f", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestBucketizeQuartiles(t *testing.T) {
	keys := make([]float64, 100)
	for i := range keys {
		keys[i] = float64(i)
	}
	buckets := Bucketize(keys)
	var low, mid, high int
	for _, b := range buckets {
		switch b {
		case Low:
			low++
		case Mid:
			mid++
		case High:
			high++
		}
	}
	if low < 20 || low > 30 || high < 20 || high > 30 {
		t.Fatalf("bucket sizes low=%d mid=%d high=%d", low, mid, high)
	}
	// Ordering invariant: every Low key <= every Mid key <= every High key.
	maxOf := map[Bucket]float64{Low: -1, Mid: -1, High: -1}
	minOf := map[Bucket]float64{Low: 1e18, Mid: 1e18, High: 1e18}
	for i, b := range buckets {
		if keys[i] > maxOf[b] {
			maxOf[b] = keys[i]
		}
		if keys[i] < minOf[b] {
			minOf[b] = keys[i]
		}
	}
	if maxOf[Low] > minOf[Mid] || maxOf[Mid] > minOf[High] {
		t.Fatal("bucket ordering violated")
	}
	if Bucketize(nil) != nil {
		t.Fatal("empty bucketize should be nil")
	}
}

func TestGroupByBucket(t *testing.T) {
	buckets := []Bucket{Low, Low, High}
	vals := []float64{1, 3, 10}
	g := GroupByBucket(buckets, vals)
	if g[Low] != 2 || g[High] != 10 {
		t.Fatalf("group = %v", g)
	}
	if !math.IsNaN(g[Mid]) {
		t.Fatal("empty bucket should be NaN")
	}
}

func TestGroupByBucketMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	GroupByBucket([]Bucket{Low}, []float64{1, 2})
}

func TestBucketString(t *testing.T) {
	if Low.String() != "low" || Mid.String() != "mid" || High.String() != "high" {
		t.Fatal("bucket names wrong")
	}
}
