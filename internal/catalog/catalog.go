// Package catalog describes databases: relations with typed columns, their
// heap geometry, and their indexes. Because the simulator is trace-driven,
// column values are not stored on pages; every column carries a
// deterministic generator that maps a row number to its value. This is what
// lets DSB-style datasets "scale" (the paper's SF 25/50/100 experiment)
// without materializing gigabytes — the access-pattern geometry scales, and
// that is all the prefetcher can observe.
package catalog

import (
	"fmt"
	"math"

	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/storage"
)

// Generator deterministically maps a row number to a column value.
type Generator interface {
	// Value returns the column value for the given zero-based row.
	Value(row int64) int64
	// Domain returns the half-open value range [lo, hi) the generator can
	// produce; the planner and workload generators use it to draw predicate
	// constants.
	Domain() (lo, hi int64)
}

func mix(seed, row uint64) uint64 {
	z := seed ^ (row * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func mixFloat(seed, row uint64) float64 {
	return float64(mix(seed, row)>>11) / (1 << 53)
}

// Serial numbers rows sequentially starting at Start — the usual surrogate
// primary key.
type Serial struct{ Start int64 }

// Value returns Start + row.
func (s Serial) Value(row int64) int64 { return s.Start + row }

// Domain is unbounded in principle; generators report a wide range.
func (s Serial) Domain() (int64, int64) { return s.Start, math.MaxInt64 }

// Uniform draws values uniformly from [Lo, Hi), hashed per row.
type Uniform struct {
	Lo, Hi int64
	Seed   uint64
}

// Value returns the uniform value for row.
func (u Uniform) Value(row int64) int64 {
	span := u.Hi - u.Lo
	if span <= 0 {
		return u.Lo
	}
	return u.Lo + int64(mix(u.Seed, uint64(row))%uint64(span))
}

// Domain returns [Lo, Hi).
func (u Uniform) Domain() (int64, int64) { return u.Lo, u.Hi }

// Zipf draws values from [Lo, Lo+N) with Zipfian skew S — the paper uses DSB
// precisely because it adds skew and correlation that TPC-DS lacks. Rank 0
// (value Lo) is the most frequent. Sampling is by inverse CDF over a
// precomputed table, so values remain a pure function of the row.
type Zipf struct {
	Lo   int64
	N    int
	S    float64
	Seed uint64

	cdf []float64
}

// NewZipf precomputes the sampler's CDF table.
func NewZipf(lo int64, n int, s float64, seed uint64) *Zipf {
	if n <= 0 {
		panic("catalog: Zipf with non-positive N")
	}
	z := &Zipf{Lo: lo, N: n, S: s, Seed: seed, cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Value returns the skewed value for row.
func (z *Zipf) Value(row int64) int64 {
	u := mixFloat(z.Seed, uint64(row))
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.Lo + int64(lo)
}

// Domain returns [Lo, Lo+N).
func (z *Zipf) Domain() (int64, int64) { return z.Lo, z.Lo + int64(z.N) }

// Correlated derives a value from another generator's output on the same
// row: Value(row) = Transform(Base.Value(row)). DSB's cross-column
// correlations (e.g. a date column correlated with a region column) are
// expressed this way, so predicates on the derived column select correlated
// row sets.
type Correlated struct {
	Base      Generator
	Transform func(int64) int64
	Lo, Hi    int64 // declared domain of the transformed values
}

// Value applies the transform to the base value.
func (c Correlated) Value(row int64) int64 { return c.Transform(c.Base.Value(row)) }

// Domain returns the declared transformed range.
func (c Correlated) Domain() (int64, int64) { return c.Lo, c.Hi }

// Noisy perturbs a base generator with bounded uniform noise, weakening a
// correlation without destroying it.
type Noisy struct {
	Base  Generator
	Range int64 // noise drawn from [0, Range)
	Seed  uint64
}

// Value returns base value plus per-row noise.
func (n Noisy) Value(row int64) int64 {
	if n.Range <= 0 {
		return n.Base.Value(row)
	}
	return n.Base.Value(row) + int64(mix(n.Seed, uint64(row))%uint64(n.Range))
}

// Domain widens the base domain by the noise range, saturating at MaxInt64.
func (n Noisy) Domain() (int64, int64) {
	lo, hi := n.Base.Domain()
	if hi > math.MaxInt64-n.Range {
		return lo, math.MaxInt64
	}
	return lo, hi + n.Range
}

// Column is a named, generated column.
type Column struct {
	Name string
	Gen  Generator
}

// Relation is a heap table: rows packed into pages, generated columns, and
// any indexes built over it.
type Relation struct {
	Name        string
	Rows        int64
	RowsPerPage int
	Columns     []Column
	Heap        *storage.Object

	colIdx  map[string]int
	indexes map[string]*Index
}

// Index pairs a B+tree with the column it indexes.
type Index struct {
	Name   string
	Column string
	Tree   *index.BTree
}

// Database owns the object registry and the set of relations.
type Database struct {
	Registry  *storage.Registry
	relations map[string]*Relation
	order     []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		Registry:  storage.NewRegistry(),
		relations: make(map[string]*Relation),
	}
}

// AddRelation creates a relation, registering its heap object sized from
// rows and rowsPerPage. Duplicate names panic (schema construction is
// program-controlled).
func (db *Database) AddRelation(name string, rows int64, rowsPerPage int, cols []Column) *Relation {
	if rows < 0 || rowsPerPage <= 0 {
		panic("catalog: invalid relation geometry for " + name)
	}
	if _, dup := db.relations[name]; dup {
		panic("catalog: duplicate relation " + name)
	}
	pages := storage.PageNum((rows + int64(rowsPerPage) - 1) / int64(rowsPerPage))
	if pages == 0 {
		pages = 1
	}
	rel := &Relation{
		Name:        name,
		Rows:        rows,
		RowsPerPage: rowsPerPage,
		Columns:     cols,
		Heap:        db.Registry.Register(name, storage.KindTable, pages),
		colIdx:      make(map[string]int, len(cols)),
		indexes:     make(map[string]*Index),
	}
	for i, c := range cols {
		if _, dup := rel.colIdx[c.Name]; dup {
			panic("catalog: duplicate column " + c.Name + " in " + name)
		}
		rel.colIdx[c.Name] = i
	}
	db.relations[name] = rel
	db.order = append(db.order, name)
	return rel
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.relations[name] }

// Relations returns all relations in creation order.
func (db *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.relations[n])
	}
	return out
}

// BuildIndex materializes a B+tree over column col of rel by evaluating the
// column generator for every row. The index is named rel_col_idx.
func (db *Database) BuildIndex(rel *Relation, col string, cfg index.Config) *Index {
	ci, ok := rel.colIdx[col]
	if !ok {
		panic(fmt.Sprintf("catalog: no column %s in %s", col, rel.Name))
	}
	gen := rel.Columns[ci].Gen
	entries := make([]index.Entry, rel.Rows)
	for row := int64(0); row < rel.Rows; row++ {
		entries[row] = index.Entry{Key: gen.Value(row), Row: row}
	}
	name := rel.Name + "_" + col + "_idx"
	idx := &Index{Name: name, Column: col, Tree: index.Build(db.Registry, name, entries, cfg)}
	rel.indexes[col] = idx
	return idx
}

// ColumnIndex returns the position of col, or -1.
func (r *Relation) ColumnIndex(col string) int {
	if i, ok := r.colIdx[col]; ok {
		return i
	}
	return -1
}

// Value evaluates column col for the given row. It panics on unknown columns
// or out-of-range rows — both indicate planner bugs, not user input.
func (r *Relation) Value(col string, row int64) int64 {
	i, ok := r.colIdx[col]
	if !ok {
		panic(fmt.Sprintf("catalog: no column %s in %s", col, r.Name))
	}
	if row < 0 || row >= r.Rows {
		panic(fmt.Sprintf("catalog: row %d out of range for %s", row, r.Name))
	}
	return r.Columns[i].Gen.Value(row)
}

// IndexOn returns the index over col, or nil.
func (r *Relation) IndexOn(col string) *Index { return r.indexes[col] }

// Indexes returns the relation's indexes (unordered).
func (r *Relation) Indexes() []*Index {
	out := make([]*Index, 0, len(r.indexes))
	for _, ix := range r.indexes {
		out = append(out, ix)
	}
	return out
}

// HeapPage maps a row to its heap PageID.
func (r *Relation) HeapPage(row int64) storage.PageID {
	return storage.PageID{Object: r.Heap.ID, Page: storage.RowPage(row, r.RowsPerPage)}
}
