package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/storage"
)

func TestSerial(t *testing.T) {
	g := Serial{Start: 10}
	if g.Value(0) != 10 || g.Value(5) != 15 {
		t.Fatal("Serial values wrong")
	}
}

func TestUniformDeterministicAndInRange(t *testing.T) {
	g := Uniform{Lo: 100, Hi: 200, Seed: 7}
	for row := int64(0); row < 1000; row++ {
		v := g.Value(row)
		if v < 100 || v >= 200 {
			t.Fatalf("Uniform out of range: %d", v)
		}
		if v != g.Value(row) {
			t.Fatal("Uniform not deterministic")
		}
	}
	if (Uniform{Lo: 5, Hi: 5}).Value(3) != 5 {
		t.Fatal("degenerate Uniform should return Lo")
	}
}

func TestUniformCoversDomain(t *testing.T) {
	g := Uniform{Lo: 0, Hi: 10, Seed: 3}
	seen := map[int64]bool{}
	for row := int64(0); row < 500; row++ {
		seen[g.Value(row)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Uniform covered %d/10 values", len(seen))
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	g := NewZipf(1000, 50, 1.3, 9)
	counts := map[int64]int{}
	for row := int64(0); row < 20000; row++ {
		v := g.Value(row)
		if v < 1000 || v >= 1050 {
			t.Fatalf("Zipf out of domain: %d", v)
		}
		counts[v]++
		if v != g.Value(row) {
			t.Fatal("Zipf not deterministic")
		}
	}
	if counts[1000] <= counts[1025] {
		t.Fatalf("Zipf not skewed: head=%d mid=%d", counts[1000], counts[1025])
	}
	lo, hi := g.Domain()
	if lo != 1000 || hi != 1050 {
		t.Fatalf("Zipf domain = [%d,%d)", lo, hi)
	}
}

func TestCorrelatedTracksBase(t *testing.T) {
	base := Uniform{Lo: 0, Hi: 100, Seed: 1}
	c := Correlated{Base: base, Transform: func(v int64) int64 { return v * 2 }, Lo: 0, Hi: 200}
	for row := int64(0); row < 100; row++ {
		if c.Value(row) != base.Value(row)*2 {
			t.Fatal("Correlated does not track base")
		}
	}
}

func TestNoisyStaysNearBase(t *testing.T) {
	base := Serial{}
	n := Noisy{Base: base, Range: 5, Seed: 2}
	for row := int64(0); row < 200; row++ {
		d := n.Value(row) - base.Value(row)
		if d < 0 || d >= 5 {
			t.Fatalf("noise out of range: %d", d)
		}
	}
	exact := Noisy{Base: base, Range: 0}
	if exact.Value(7) != 7 {
		t.Fatal("zero-range Noisy should be exact")
	}
	lo, hi := n.Domain()
	if lo != 0 || hi != math.MaxInt64 {
		t.Fatalf("Noisy domain = [%d,%d)", lo, hi)
	}
}

func newTestDB() (*Database, *Relation) {
	db := NewDatabase()
	rel := db.AddRelation("item", 1000, 10, []Column{
		{Name: "id", Gen: Serial{Start: 1}},
		{Name: "price", Gen: Uniform{Lo: 1, Hi: 100, Seed: 5}},
	})
	return db, rel
}

func TestAddRelationGeometry(t *testing.T) {
	_, rel := newTestDB()
	if rel.Heap.Pages != 100 {
		t.Fatalf("heap pages = %d, want 100", rel.Heap.Pages)
	}
	if rel.Heap.Kind != storage.KindTable {
		t.Fatal("heap kind wrong")
	}
	if rel.HeapPage(0).Page != 0 || rel.HeapPage(999).Page != 99 {
		t.Fatal("HeapPage mapping wrong")
	}
	db := NewDatabase()
	tiny := db.AddRelation("tiny", 0, 10, nil)
	if tiny.Heap.Pages != 1 {
		t.Fatal("empty relation should still occupy one page")
	}
}

func TestRelationValueAndErrors(t *testing.T) {
	_, rel := newTestDB()
	if rel.Value("id", 0) != 1 {
		t.Fatal("Value wrong")
	}
	if rel.ColumnIndex("price") != 1 || rel.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown column did not panic")
			}
		}()
		rel.Value("nope", 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range row did not panic")
			}
		}()
		rel.Value("id", 1000)
	}()
}

func TestDuplicateRelationPanics(t *testing.T) {
	db, _ := newTestDB()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate relation did not panic")
		}
	}()
	db.AddRelation("item", 10, 10, nil)
}

func TestDuplicateColumnPanics(t *testing.T) {
	db := NewDatabase()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column did not panic")
		}
	}()
	db.AddRelation("x", 10, 10, []Column{
		{Name: "a", Gen: Serial{}}, {Name: "a", Gen: Serial{}},
	})
}

func TestBuildIndexAgreesWithGenerator(t *testing.T) {
	db, rel := newTestDB()
	idx := db.BuildIndex(rel, "price", index.Config{LeafCap: 16, Fanout: 8})
	if err := idx.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if rel.IndexOn("price") != idx {
		t.Fatal("IndexOn lookup failed")
	}
	if len(rel.Indexes()) != 1 {
		t.Fatal("Indexes() wrong")
	}
	// Every row the index returns for a key must actually have that key.
	probe := idx.Tree.Scan(50, 60)
	if len(probe.Rows) == 0 {
		t.Fatal("probe found no rows for a 10% range over 1000 rows")
	}
	for _, row := range probe.Rows {
		v := rel.Value("price", row)
		if v < 50 || v > 60 {
			t.Fatalf("index returned row %d with price %d outside [50,60]", row, v)
		}
	}
	// And no qualifying row may be missing.
	want := 0
	for row := int64(0); row < rel.Rows; row++ {
		if v := rel.Value("price", row); v >= 50 && v <= 60 {
			want++
		}
	}
	if len(probe.Rows) != want {
		t.Fatalf("index returned %d rows, linear scan finds %d", len(probe.Rows), want)
	}
}

func TestDatabaseRelationsOrder(t *testing.T) {
	db := NewDatabase()
	db.AddRelation("b", 1, 1, nil)
	db.AddRelation("a", 1, 1, nil)
	rels := db.Relations()
	if len(rels) != 2 || rels[0].Name != "b" || rels[1].Name != "a" {
		t.Fatal("Relations not in creation order")
	}
	if db.Relation("a") == nil || db.Relation("zz") != nil {
		t.Fatal("Relation lookup wrong")
	}
}

// Property: index probes over random ranges always agree with a linear scan
// of the generator, for skewed generators too.
func TestIndexLinearEquivalence(t *testing.T) {
	db := NewDatabase()
	rel := db.AddRelation("skewed", 2000, 17, []Column{
		{Name: "k", Gen: NewZipf(0, 40, 1.1, 77)},
	})
	idx := db.BuildIndex(rel, "k", index.Config{LeafCap: 13, Fanout: 5})
	if err := quick.Check(func(a, b uint8) bool {
		lo, hi := int64(a%45), int64(b%45)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := len(idx.Tree.Scan(lo, hi).Rows)
		want := 0
		for row := int64(0); row < rel.Rows; row++ {
			if v := rel.Value("k", row); v >= lo && v <= hi {
				want++
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
