package buffer

import (
	"testing"
	"testing/quick"

	"github.com/pythia-db/pythia/internal/storage"
)

func pg(o, n uint32) storage.PageID {
	return storage.PageID{Object: storage.ObjectID(o), Page: storage.PageNum(n)}
}

func TestHitMissAccounting(t *testing.T) {
	p := New(4, Clock)
	if p.Get(pg(1, 0)) {
		t.Fatal("hit on empty pool")
	}
	p.Insert(pg(1, 0), false)
	if !p.Get(pg(1, 0)) {
		t.Fatal("miss after insert")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRatio(); r != 0.5 {
		t.Fatalf("HitRatio = %f", r)
	}
}

func TestCapacityAndEviction(t *testing.T) {
	for _, pol := range []Policy{Clock, LRU, MRU} {
		p := New(3, pol)
		for i := uint32(0); i < 5; i++ {
			if !p.Insert(pg(1, i), false) {
				t.Fatalf("%v: insert %d failed", pol, i)
			}
		}
		if p.Len() != 3 {
			t.Fatalf("%v: Len = %d, want 3", pol, p.Len())
		}
		if p.Stats().Evictions != 2 {
			t.Fatalf("%v: evictions = %d, want 2", pol, p.Stats().Evictions)
		}
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := New(3, LRU)
	p.Insert(pg(1, 0), false)
	p.Insert(pg(1, 1), false)
	p.Insert(pg(1, 2), false)
	p.Get(pg(1, 0)) // page 0 is now most recent; page 1 is least recent
	p.Insert(pg(1, 3), false)
	if p.Contains(pg(1, 1)) {
		t.Fatal("LRU kept the least recently used page")
	}
	if !p.Contains(pg(1, 0)) || !p.Contains(pg(1, 2)) {
		t.Fatal("LRU evicted the wrong page")
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	p := New(3, MRU)
	p.Insert(pg(1, 0), false)
	p.Insert(pg(1, 1), false)
	p.Insert(pg(1, 2), false)
	p.Get(pg(1, 0)) // page 0 is most recently used
	p.Insert(pg(1, 3), false)
	if p.Contains(pg(1, 0)) {
		t.Fatal("MRU kept the most recently used page")
	}
	if !p.Contains(pg(1, 1)) || !p.Contains(pg(1, 2)) {
		t.Fatal("MRU evicted the wrong page")
	}
}

func TestClockSecondChance(t *testing.T) {
	p := New(3, Clock)
	p.Insert(pg(1, 0), false)
	p.Insert(pg(1, 1), false)
	p.Insert(pg(1, 2), false)
	// Touch page 0 so its ref bit is set again; pages 1 and 2 have ref bits
	// from insertion. First sweep clears bits; page inserted order 0,1,2 so
	// the hand clears 0,1,2 then evicts 0? Touching keeps ref set, so after
	// one clearing pass the first frame encountered with a clear bit is the
	// victim. Ensure the recently touched page survives longer than one of
	// the untouched ones.
	p.Get(pg(1, 0))
	p.Insert(pg(1, 3), false)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.Contains(pg(1, 3)) {
		t.Fatal("new page not resident")
	}
	// Clock approximates LRU: with all ref bits initially set the hand
	// clears 0, then 1, then 2, wraps, and evicts 0 — unless 0 was re-set
	// by the Get, in which case 1 goes. Either way exactly one of {0,1,2}
	// was evicted.
	resident := 0
	for _, q := range []storage.PageID{pg(1, 0), pg(1, 1), pg(1, 2)} {
		if p.Contains(q) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("resident old pages = %d, want 2", resident)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	for _, pol := range []Policy{Clock, LRU, MRU} {
		p := New(2, pol)
		p.Insert(pg(1, 0), false)
		p.Insert(pg(1, 1), false)
		if !p.Pin(pg(1, 0)) || !p.Pin(pg(1, 1)) {
			t.Fatalf("%v: pin failed", pol)
		}
		if p.Insert(pg(1, 2), false) {
			t.Fatalf("%v: insert succeeded with all frames pinned", pol)
		}
		if p.Stats().FailedInserts != 1 {
			t.Fatalf("%v: FailedInserts = %d", pol, p.Stats().FailedInserts)
		}
		p.Unpin(pg(1, 0))
		if !p.Insert(pg(1, 2), false) {
			t.Fatalf("%v: insert failed after unpin", pol)
		}
		if p.Contains(pg(1, 0)) {
			t.Fatalf("%v: unpinned page not chosen as victim", pol)
		}
		if !p.Contains(pg(1, 1)) {
			t.Fatalf("%v: pinned page was evicted", pol)
		}
	}
}

func TestPinCountsNest(t *testing.T) {
	p := New(1, Clock)
	p.Insert(pg(1, 0), false)
	p.Pin(pg(1, 0))
	p.Pin(pg(1, 0))
	if p.Pinned(pg(1, 0)) != 2 {
		t.Fatalf("Pinned = %d", p.Pinned(pg(1, 0)))
	}
	p.Unpin(pg(1, 0))
	if p.Insert(pg(1, 1), false) {
		t.Fatal("still-pinned page evicted")
	}
	p.Unpin(pg(1, 0))
	if !p.Insert(pg(1, 1), false) {
		t.Fatal("fully unpinned page not evictable")
	}
	if p.PinnedCount() != 0 {
		t.Fatalf("PinnedCount = %d", p.PinnedCount())
	}
}

func TestUnpinErrorsPanic(t *testing.T) {
	p := New(1, Clock)
	p.Insert(pg(1, 0), false)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unpin of unpinned page did not panic")
			}
		}()
		p.Unpin(pg(1, 0))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unpin of absent page did not panic")
			}
		}()
		p.Unpin(pg(9, 9))
	}()
}

func TestPinAbsentPage(t *testing.T) {
	p := New(1, Clock)
	if p.Pin(pg(1, 0)) {
		t.Fatal("Pin of absent page succeeded")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	p := New(4, Clock)
	p.Insert(pg(1, 0), true)
	p.Insert(pg(1, 1), true)
	p.Get(pg(1, 0)) // useful prefetch
	p.Get(pg(1, 0)) // second hit is a plain hit, not another prefetch hit
	s := p.Stats()
	if s.PrefetchedIn != 2 {
		t.Fatalf("PrefetchedIn = %d", s.PrefetchedIn)
	}
	if s.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d", s.PrefetchHits)
	}
}

func TestInsertExistingBumpsUsage(t *testing.T) {
	p := New(2, LRU)
	p.Insert(pg(1, 0), false)
	p.Insert(pg(1, 1), false)
	p.Insert(pg(1, 0), false) // re-insert should act like a touch
	p.Insert(pg(1, 2), false)
	if p.Contains(pg(1, 1)) {
		t.Fatal("re-insert did not refresh recency")
	}
	if !p.Contains(pg(1, 0)) {
		t.Fatal("refreshed page evicted")
	}
	if p.Stats().Inserts != 3 {
		t.Fatalf("Inserts = %d, want 3 (re-insert is not a new insert)", p.Stats().Inserts)
	}
}

func TestClearKeepsStats(t *testing.T) {
	p := New(2, Clock)
	p.Insert(pg(1, 0), false)
	p.Get(pg(1, 0))
	p.Clear()
	if p.Len() != 0 {
		t.Fatal("Clear left pages resident")
	}
	if p.Stats().Hits != 1 {
		t.Fatal("Clear dropped stats")
	}
	// Pool must be fully usable after Clear (clock ring rebuilt).
	for i := uint32(0); i < 5; i++ {
		if !p.Insert(pg(2, i), false) {
			t.Fatal("insert after Clear failed")
		}
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Clock)
}

// Property: under any request mix, residency never exceeds capacity and a
// Get immediately after a successful Insert always hits.
func TestPoolInvariants(t *testing.T) {
	for _, pol := range []Policy{Clock, LRU, MRU} {
		pol := pol
		if err := quick.Check(func(ops []uint16) bool {
			p := New(8, pol)
			for _, op := range ops {
				page := pg(1, uint32(op%64))
				switch op % 3 {
				case 0:
					if p.Insert(page, op%5 == 0) && !p.Get(page) {
						return false
					}
				case 1:
					p.Get(page)
				case 2:
					if p.Contains(page) {
						p.Pin(page)
						p.Unpin(page)
					}
				}
				if p.Len() > p.Cap() {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Clock.String() != "clock" || LRU.String() != "lru" || MRU.String() != "mru" {
		t.Fatal("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}
