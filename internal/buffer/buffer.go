// Package buffer implements the RDBMS buffer pool the prefetcher cooperates
// with: a fixed number of page frames, a replacement policy (Clock by
// default, matching Postgres; LRU and MRU added exactly as the paper's §5.3
// experiment adds them), pin counts, and hit/miss accounting.
//
// The pool stores page identities only — the simulator is trace-driven — but
// its replacement behaviour is exact: Clock sweeps a ring of reference bits,
// LRU evicts the least recently used unpinned frame, MRU the most recently
// used. Pinned frames are never evicted, which is how Pythia's readahead
// window guarantees prefetched pages survive until the executor consumes
// them.
package buffer

import (
	"container/list"
	"fmt"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// Policy selects the replacement algorithm.
type Policy int

const (
	// Clock is Postgres' clock-sweep approximation of LRU (the default).
	Clock Policy = iota
	// LRU evicts the least recently used unpinned page.
	LRU
	// MRU evicts the most recently used unpinned page.
	MRU
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case Clock:
		return "clock"
	case LRU:
		return "lru"
	case MRU:
		return "mru"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Stats counts buffer pool events for one run.
type Stats struct {
	Hits           uint64 // requests served from the pool
	Misses         uint64 // requests that had to read below the pool
	Evictions      uint64 // frames replaced
	Inserts        uint64 // pages brought into the pool
	PrefetchedIn   uint64 // pages inserted by the prefetcher
	PrefetchHits   uint64 // prefetched pages later hit by the executor
	PrefetchWasted uint64 // prefetched pages evicted before any executor use
	FailedInserts  uint64 // inserts refused because every frame was pinned
}

// HitRatio returns hits / (hits+misses), or 0 for an idle pool.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	page       storage.PageID
	pins       int
	ref        bool          // clock reference bit
	elem       *list.Element // LRU/MRU list position
	slot       int           // clock ring slot
	prefetched bool          // inserted by the prefetcher, not yet used
}

// Pool is a buffer pool of capacity page frames under one replacement
// policy. The zero value is unusable; construct with New.
type Pool struct {
	capacity int
	policy   Policy
	frames   map[storage.PageID]*frame
	stats    Stats
	rec      obs.Recorder // nil = observability off (one nil-check per event)
	tr       *span.Tracer // nil = span tracing off

	// Clock state: a ring of frames and the sweep hand. Holes (nil) are
	// reused before the ring grows.
	ring     []*frame
	hand     int
	freeSlot []int

	// LRU/MRU state: front = most recently used.
	lru *list.List
}

// New returns a pool with the given frame capacity and policy. Capacity must
// be positive.
func New(capacity int, policy Policy) *Pool {
	if capacity <= 0 {
		panic("buffer: non-positive capacity")
	}
	return &Pool{
		capacity: capacity,
		policy:   policy,
		frames:   make(map[storage.PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Cap returns the pool's frame capacity.
func (p *Pool) Cap() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int { return len(p.frames) }

// Policy returns the replacement policy.
func (p *Pool) Policy() Policy { return p.policy }

// Stats returns a copy of the pool's counters.
func (p *Pool) Stats() Stats { return p.stats }

// SetRecorder attaches an event recorder (nil detaches). The pool emits
// BufferHit/BufferMiss on Get, BufferInsert/PrefetchedIn on Insert,
// BufferEvict/PrefetchWasted on eviction, BufferInsertFailed when every
// frame is pinned, and PrefetchHit when the executor consumes a prefetched
// frame.
func (p *Pool) SetRecorder(rec obs.Recorder) { p.rec = rec }

// SetTracer attaches a span tracer (nil detaches). The pool marks hits,
// misses, and evictions as timeline instants, and links prefetched-frame
// hits and wasted evictions back to the PrefetchRead span that brought the
// page in (via the tracer's page stash).
func (p *Pool) SetTracer(tr *span.Tracer) { p.tr = tr }

//pythia:noalloc
func (p *Pool) record(k obs.Kind, pg storage.PageID) {
	if p.rec != nil {
		p.rec.Record(obs.Event{Kind: k, Query: obs.NoQuery, Page: pg})
	}
}

// Contains reports residency without touching usage information or stats;
// the prefetcher uses it to skip pages already in the pool.
func (p *Pool) Contains(pg storage.PageID) bool {
	_, ok := p.frames[pg]
	return ok
}

// Pinned returns the pin count of a resident page (0 if absent).
func (p *Pool) Pinned(pg storage.PageID) int {
	if f, ok := p.frames[pg]; ok {
		return f.pins
	}
	return 0
}

// Get looks up a page for the executor. On a hit it bumps the page's usage
// (reference bit or recency) and returns true; on a miss it returns false and
// the caller is responsible for reading the page and calling Insert. A hit on
// a prefetched frame is counted as a useful prefetch, mirroring the paper's
// "if it is found in the buffer, nothing happens except increasing its use
// count".
func (p *Pool) Get(pg storage.PageID) bool {
	f, ok := p.frames[pg]
	if !ok {
		p.stats.Misses++
		p.record(obs.BufferMiss, pg)
		p.tr.Instant(span.BufferMissMark, pg, 0)
		return false
	}
	p.stats.Hits++
	p.record(obs.BufferHit, pg)
	p.tr.Instant(span.BufferHitMark, pg, 0)
	if f.prefetched {
		f.prefetched = false
		p.stats.PrefetchHits++
		p.record(obs.PrefetchHit, pg)
		p.tr.InstantLink(span.PrefetchHitMark, pg, 0, p.tr.TakeStash(pg))
	}
	p.touch(f)
	return true
}

// Insert brings a page into the pool after a miss read. prefetched marks
// inserts performed by the prefetcher. If the page is already resident,
// Insert just bumps its usage. If the pool is full and every frame is
// pinned, the insert is refused and Insert returns false — the caller (the
// prefetcher) must back off rather than deadlock.
func (p *Pool) Insert(pg storage.PageID, prefetched bool) bool {
	if f, ok := p.frames[pg]; ok {
		p.touch(f)
		return true
	}
	if len(p.frames) >= p.capacity {
		victim := p.victim()
		if victim == nil {
			p.stats.FailedInserts++
			p.record(obs.BufferInsertFailed, pg)
			return false
		}
		p.evict(victim)
	}
	f := &frame{page: pg, prefetched: prefetched}
	p.frames[pg] = f
	p.attach(f)
	p.stats.Inserts++
	p.record(obs.BufferInsert, pg)
	if prefetched {
		p.stats.PrefetchedIn++
		p.record(obs.PrefetchedIn, pg)
	}
	return true
}

// Pin increments the page's pin count, protecting it from eviction. It
// returns false if the page is not resident.
func (p *Pool) Pin(pg storage.PageID) bool {
	f, ok := p.frames[pg]
	if !ok {
		return false
	}
	f.pins++
	return true
}

// Unpin decrements the page's pin count. Unpinning an absent or unpinned
// page panics: pin balance bugs corrupt eviction and must surface loudly.
func (p *Pool) Unpin(pg storage.PageID) {
	f, ok := p.frames[pg]
	if !ok {
		panic("buffer: Unpin of non-resident page " + pg.String())
	}
	if f.pins == 0 {
		panic("buffer: Unpin of unpinned page " + pg.String())
	}
	f.pins--
}

// PinnedCount returns the number of frames with at least one pin.
func (p *Pool) PinnedCount() int {
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Clear empties the pool (a "restart Postgres" between cold-cache runs) but
// keeps counters; use ResetStats to clear those too.
func (p *Pool) Clear() {
	p.frames = make(map[storage.PageID]*frame, p.capacity)
	p.ring = p.ring[:0]
	p.freeSlot = p.freeSlot[:0]
	p.hand = 0
	p.lru.Init()
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// --- policy plumbing ---

func (p *Pool) attach(f *frame) {
	switch p.policy {
	case Clock:
		f.ref = true
		if n := len(p.freeSlot); n > 0 {
			slot := p.freeSlot[n-1]
			p.freeSlot = p.freeSlot[:n-1]
			f.slot = slot
			p.ring[slot] = f
		} else {
			f.slot = len(p.ring)
			p.ring = append(p.ring, f)
		}
	default: // LRU, MRU
		f.elem = p.lru.PushFront(f)
	}
}

func (p *Pool) touch(f *frame) {
	switch p.policy {
	case Clock:
		f.ref = true
	default:
		p.lru.MoveToFront(f.elem)
	}
}

func (p *Pool) detach(f *frame) {
	switch p.policy {
	case Clock:
		p.ring[f.slot] = nil
		p.freeSlot = append(p.freeSlot, f.slot)
	default:
		p.lru.Remove(f.elem)
	}
}

func (p *Pool) evict(f *frame) {
	p.detach(f)
	delete(p.frames, f.page)
	p.stats.Evictions++
	p.record(obs.BufferEvict, f.page)
	p.tr.Instant(span.BufferEvictMark, f.page, 0)
	if f.prefetched {
		p.stats.PrefetchWasted++
		p.record(obs.PrefetchWasted, f.page)
		p.tr.InstantLink(span.PrefetchWastedMark, f.page, 0, p.tr.TakeStash(f.page))
	}
}

// victim selects an unpinned frame to evict, or nil if none exists.
func (p *Pool) victim() *frame {
	switch p.policy {
	case Clock:
		return p.clockVictim()
	case LRU:
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			if f := e.Value.(*frame); f.pins == 0 {
				return f
			}
		}
		return nil
	case MRU:
		for e := p.lru.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*frame); f.pins == 0 {
				return f
			}
		}
		return nil
	default:
		panic("buffer: unknown policy")
	}
}

// clockVictim sweeps the ring: a frame with its reference bit set gets a
// second chance (bit cleared); the first unpinned frame with a clear bit is
// the victim. Two full sweeps with no candidate means everything is pinned.
func (p *Pool) clockVictim() *frame {
	if len(p.ring) == 0 {
		return nil
	}
	for pass := 0; pass < 2*len(p.ring); pass++ {
		f := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if f == nil || f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f
	}
	return nil
}
