package predictor

import (
	"testing"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/exec"
	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/trace"
)

// workloadDB builds a DSB-flavoured micro-schema: the fact's foreign key is
// correlated with its date column, so a date-range predicate determines
// (noisily) which dimension pages the query probes — the correlation Pythia
// exploits.
func workloadDB() *catalog.Database {
	db := catalog.NewDatabase()
	dateGen := catalog.Uniform{Lo: 0, Hi: 1000, Seed: 11}
	db.AddRelation("fact", 4000, 20, []catalog.Column{
		{Name: "f_date", Gen: dateGen},
		{Name: "f_item_fk", Gen: catalog.Noisy{
			Base: catalog.Correlated{
				Base:      dateGen,
				Transform: func(v int64) int64 { return v * 3 },
				Lo:        0, Hi: 3000,
			},
			Range: 300, Seed: 13,
		}},
	})
	item := db.AddRelation("item", 3300, 10, []catalog.Column{
		{Name: "i_sk", Gen: catalog.Serial{}},
	})
	db.BuildIndex(item, "i_sk", index.Config{LeafCap: 32, Fanout: 16})
	return db
}

func templateQuery(p int64) plan.Query {
	return plan.Query{
		Fact:      "fact",
		FactPreds: []plan.Pred{plan.Between("f_date", p, p+60)},
		Dims: []plan.DimJoin{{
			Dim: "item", FactFK: "f_item_fk", DimKey: "i_sk", ForceIndex: true,
		}},
		Template: "t1",
	}
}

func buildSamples(t *testing.T, db *catalog.Database, params []int64) ([]TrainSample, []*plan.Node, []*trace.Processed) {
	t.Helper()
	pl := plan.NewPlanner(db)
	var samples []TrainSample
	var plans []*plan.Node
	var traces []*trace.Processed
	for _, p := range params {
		root := pl.MustPlan(templateQuery(p))
		res := exec.Run(root)
		tr := trace.Process(res.Requests)
		samples = append(samples, TrainSample{Plan: root, Trace: tr})
		plans = append(plans, root)
		traces = append(traces, tr)
	}
	return samples, plans, traces
}

func fastOpts() Options {
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.DecoderHidden = 32
	cfg.Epochs = 25
	return Options{Model: cfg, ObservedOnly: true}
}

func TestPredictorLearnsWorkload(t *testing.T) {
	db := workloadDB()
	r := sim.NewRand(3)
	var trainParams, testParams []int64
	for i := 0; i < 48; i++ {
		trainParams = append(trainParams, r.Int63n(900))
	}
	for i := 0; i < 8; i++ {
		testParams = append(testParams, r.Int63n(900))
	}
	samples, _, _ := buildSamples(t, db, trainParams)
	p := Train(db.Registry, samples, fastOpts())

	if p.TrainTime <= 0 {
		t.Fatal("TrainTime not recorded")
	}
	if p.VocabSize() <= 3 {
		t.Fatal("vocabulary did not grow")
	}
	if len(p.Models()) == 0 {
		t.Fatal("no models trained")
	}
	if p.ParamCount() <= 0 {
		t.Fatal("ParamCount wrong")
	}

	_, testPlans, testTraces := buildSamples(t, db, testParams)
	var f1s []float64
	for i, root := range testPlans {
		pred := p.Predict(root)
		f1s = append(f1s, metrics.Score(pred, testTraces[i].Pages()).F1)
	}
	mean := metrics.Summarize(f1s).Mean
	if mean < 0.5 {
		t.Fatalf("unseen-query mean F1 = %.3f, want >= 0.5 (%v)", mean, f1s)
	}
}

func TestPredictDeterministicAndSorted(t *testing.T) {
	db := workloadDB()
	samples, plans, _ := buildSamples(t, db, []int64{100, 300, 500, 700, 100, 300, 500, 700})
	p := Train(db.Registry, samples, fastOpts())
	a := p.Predict(plans[0])
	b := p.Predict(plans[0])
	if len(a) != len(b) {
		t.Fatal("prediction not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prediction not deterministic")
		}
		if i > 0 && !a[i-1].Less(a[i]) {
			t.Fatal("prediction not sorted/deduped")
		}
	}
	// Parallel inference returns the same set.
	c := p.PredictParallel(plans[0])
	if len(a) != len(c) {
		t.Fatalf("parallel inference differs: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("parallel inference differs")
		}
	}
}

func TestPredictIgnoresIrrelevantPlans(t *testing.T) {
	db := workloadDB()
	samples, _, _ := buildSamples(t, db, []int64{100, 300, 500, 700})
	p := Train(db.Registry, samples, fastOpts())
	// A plan with no index scans has no non-sequential scan nodes; Pythia
	// predicts nothing (Algorithm 3 only engages for non-sequential scans).
	pl := plan.NewPlanner(db)
	q := templateQuery(100)
	q.Dims[0].ForceIndex = false
	q.Dims[0].ForceHash = true
	root := pl.MustPlan(q)
	if got := p.Predict(root); len(got) != 0 {
		t.Fatalf("hash-only plan predicted %d pages", len(got))
	}
}

func TestPartitioningSplitsModels(t *testing.T) {
	db := workloadDB()
	samples, _, _ := buildSamples(t, db, []int64{100, 300, 500, 700})
	opts := fastOpts()
	single := Train(db.Registry, samples, opts)
	opts.MaxPartitionPages = 20
	parted := Train(db.Registry, samples, opts)
	if len(parted.Models()) <= len(single.Models()) {
		t.Fatalf("partitioning did not increase model count: %d vs %d",
			len(parted.Models()), len(single.Models()))
	}
	// Partitioned prediction still works end to end.
	pl := plan.NewPlanner(db)
	if got := parted.Predict(pl.MustPlan(templateQuery(100))); len(got) == 0 {
		t.Fatal("partitioned predictor predicted nothing")
	}
}

func TestTopKRestrictsLabelSpace(t *testing.T) {
	db := workloadDB()
	samples, _, _ := buildSamples(t, db, []int64{100, 300, 500, 700, 200, 400})
	opts := fastOpts()
	opts.TopK = 5
	p := Train(db.Registry, samples, opts)
	for _, m := range p.Models() {
		if len(m.Labels) > 5 {
			t.Fatalf("model label space %d exceeds TopK", len(m.Labels))
		}
	}
}

func TestGroupsCombineObjects(t *testing.T) {
	db := workloadDB()
	// Each parameter repeats so the combined model sees every page set
	// several times per epoch and grows confident on heap pages too.
	samples, _, _ := buildSamples(t, db, []int64{
		100, 300, 500, 700, 100, 300, 500, 700, 100, 300, 500, 700,
	})
	item := db.Relation("item")
	opts := fastOpts()
	opts.Model.Epochs = 50
	opts.Groups = [][]storage.ObjectID{
		{item.Heap.ID, item.IndexOn("i_sk").Tree.Object().ID},
	}
	p := Train(db.Registry, samples, opts)
	if len(p.Models()) != 1 {
		t.Fatalf("combined group trained %d models, want 1", len(p.Models()))
	}
	// The combined model still predicts pages from both objects.
	pl := plan.NewPlanner(db)
	pred := p.Predict(pl.MustPlan(templateQuery(100)))
	objs := map[uint32]bool{}
	for _, pg := range pred {
		objs[uint32(pg.Object)] = true
	}
	if len(objs) < 2 {
		t.Fatalf("combined model predicted only objects %v", objs)
	}
}

func TestParallelTrainingMatchesSerial(t *testing.T) {
	db := workloadDB()
	samples, plans, _ := buildSamples(t, db, []int64{100, 300, 500, 700})
	serial := Train(db.Registry, samples, fastOpts())
	popts := fastOpts()
	popts.Parallel = true
	parallel := Train(db.Registry, samples, popts)
	a := serial.Predict(plans[0])
	b := parallel.Predict(plans[0])
	if len(a) != len(b) {
		t.Fatalf("parallel training changed predictions: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel training changed predictions")
		}
	}
}
