package predictor

import "github.com/pythia-db/pythia/internal/wallclock"

// Wall-clock indirection for cost measurement (TrainTime feeds the Figure 9
// comparison, never a simulation result). Tests swap these for a fake clock
// to assert the timing fields; detclock forbids direct time.Now here.
var (
	timeNow   = wallclock.Now
	timeSince = wallclock.Since
)
