// Package predictor orchestrates Pythia's training (Algorithm 1) and
// one-shot inference (Algorithm 3): it serializes query plans, builds the
// token vocabulary, constructs per-object (or combined, or top-k) label
// spaces from training traces, trains one multilabel model per label space,
// and at query time feeds the serialized plan to every model relevant to the
// plan's non-sequential scans, unioning their page predictions.
package predictor

import (
	"sort"
	"sync"
	"time"

	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/nn"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/trace"
)

// TrainSample pairs a training query's plan with its processed trace.
type TrainSample struct {
	Plan  *plan.Node
	Trace *trace.Processed
}

// Options configures training.
type Options struct {
	// Model sizes the per-object classifiers.
	Model model.Config
	// Serialize controls plan tokenization.
	Serialize serialize.Config
	// MaxPartitionPages splits an object's label space into partitions of
	// at most this many pages, each with its own model (§3.3). Zero means
	// no partitioning.
	MaxPartitionPages int
	// ObservedOnly restricts each label space to pages actually observed in
	// the training traces. Pages never positive in training converge to
	// "never predict" anyway, so this changes no prediction — it only
	// removes provably dead output units. Disable to train the paper's full
	// page-per-output-node decoder.
	ObservedOnly bool
	// TopK further restricts each object's labels to its k most frequently
	// accessed pages (Figure 12h ablation). Zero disables.
	TopK int
	// Groups overrides the one-model-per-object default: each group's
	// objects share one combined model (Figure 12d trains index+base-table
	// pairs together). Objects absent from all groups keep their own model.
	Groups [][]storage.ObjectID
	// Parallel trains and infers models concurrently ("model inferences can
	// be parallelized", §3.3). The fan-out is bounded by the thread budget
	// (Model.Threads, or the process default when zero), and the nn
	// kernels of every model share one process-wide worker set, so
	// model-level and kernel-level parallelism compose without
	// oversubscribing the machine: whatever cores the fan-out does not
	// cover, the per-model kernels soak up, and vice versa.
	Parallel bool
}

// Predictor is a trained Pythia predictor for one workload.
type Predictor struct {
	vocab  *serialize.Vocab
	serCfg serialize.Config
	models []*model.Model
	// modelObjs[i] lists the objects models[i] covers (kept for matching
	// and persistence).
	modelObjs [][]storage.ObjectID
	// objModels indexes models by the objects their labels cover.
	objModels map[storage.ObjectID][]*model.Model

	// TrainTime is the wall-clock time Train spent fitting models; the
	// Figure 9 cost comparison against sequence models reports it.
	TrainTime time.Duration
}

// Train builds and fits a predictor from the workload's samples.
func Train(reg *storage.Registry, samples []TrainSample, opts Options) *Predictor {
	start := timeNow()
	p := &Predictor{
		vocab:     serialize.NewVocab(),
		serCfg:    opts.Serialize,
		objModels: make(map[storage.ObjectID][]*model.Model),
	}

	// Tokenize all plans and build the vocabulary.
	msamples := make([]model.Sample, len(samples))
	for i, s := range samples {
		toks := serialize.Serialize(s.Plan, p.serCfg)
		p.vocab.AddAll(toks)
		msamples[i] = model.Sample{Pages: s.Trace.Pages()}
	}
	p.vocab.Freeze()
	for i, s := range samples {
		msamples[i].TokenIDs = p.vocab.Encode(serialize.Serialize(s.Plan, p.serCfg))
	}

	// Objects accessed non-sequentially anywhere in the workload get models.
	accessed := map[storage.ObjectID]bool{}
	for _, s := range samples {
		for id := range s.Trace.PerObject {
			accessed[id] = true
		}
	}

	// Resolve groups: explicit groups first, then singleton groups for the
	// remaining accessed objects, in ID order for determinism.
	grouped := map[storage.ObjectID]bool{}
	var groups [][]storage.ObjectID
	for _, g := range opts.Groups {
		var kept []storage.ObjectID
		for _, id := range g {
			if accessed[id] {
				kept = append(kept, id)
				grouped[id] = true
			}
		}
		if len(kept) > 0 {
			groups = append(groups, kept)
		}
	}
	var rest []storage.ObjectID
	for id := range accessed {
		if !grouped[id] {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, id := range rest {
		groups = append(groups, []storage.ObjectID{id})
	}

	// Build one label space per group.
	type job struct {
		labels []storage.PageID
		objs   []storage.ObjectID
	}
	var jobs []job
	seed := opts.Model.Seed
	for _, g := range groups {
		var labels []storage.PageID
		for _, id := range g {
			labels = append(labels, p.objectLabels(reg, id, msamples, opts)...)
		}
		if len(labels) == 0 {
			continue
		}
		if opts.MaxPartitionPages > 0 && len(labels) > opts.MaxPartitionPages {
			for start := 0; start < len(labels); start += opts.MaxPartitionPages {
				end := start + opts.MaxPartitionPages
				if end > len(labels) {
					end = len(labels)
				}
				jobs = append(jobs, job{labels: labels[start:end], objs: g})
			}
		} else {
			jobs = append(jobs, job{labels: labels, objs: g})
		}
	}

	// Train one model per job.
	p.models = make([]*model.Model, len(jobs))
	trainOne := func(i int) {
		cfg := opts.Model
		cfg.Seed = seed + uint64(i)*0x9e37
		m := model.New(p.vocab.Size(), jobs[i].labels, cfg)
		m.Train(msamples)
		p.models[i] = m
	}
	if opts.Parallel && len(jobs) > 1 {
		// Bounded fan-out: at most one worker per thread of budget. Each
		// job writes only its own slot, and per-model seeds depend only on
		// the job index, so the schedule cannot affect the result.
		workers := opts.Model.Threads
		if workers <= 0 {
			workers = nn.DefaultThreads()
		}
		if workers > len(jobs) {
			workers = len(jobs)
		}
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					trainOne(i)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range jobs {
			trainOne(i)
		}
	}
	for i, j := range jobs {
		p.modelObjs = append(p.modelObjs, j.objs)
		for _, id := range j.objs {
			p.objModels[id] = append(p.objModels[id], p.models[i])
		}
	}
	p.TrainTime = timeSince(start)
	return p
}

// objectLabels builds one object's label space under the options.
func (p *Predictor) objectLabels(reg *storage.Registry, id storage.ObjectID, samples []model.Sample, opts Options) []storage.PageID {
	if opts.TopK > 0 {
		return model.TopKLabels(samples, id, opts.TopK)
	}
	if opts.ObservedOnly {
		seen := map[storage.PageID]bool{}
		var out []storage.PageID
		for _, s := range samples {
			for _, pg := range s.Pages {
				if pg.Object == id && !seen[pg] {
					seen[pg] = true
					out = append(out, pg)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	obj := reg.Lookup(id)
	if obj == nil {
		panic("predictor: trace references unknown object")
	}
	return model.ObjectLabels(obj)
}

// Models returns the trained models (diagnostics: count, sizes).
func (p *Predictor) Models() []*model.Model { return p.models }

// ParamCount sums all models' parameters — the harness's "total model size".
func (p *Predictor) ParamCount() int {
	n := 0
	for _, m := range p.models {
		n += m.ParamCount()
	}
	return n
}

// VocabSize returns the frozen vocabulary size.
func (p *Predictor) VocabSize() int { return p.vocab.Size() }

// relevantObjects collects the objects touched by the plan's non-sequential
// scan nodes: each index scan's index object and its base table's heap
// (Algorithm 3, line 8: "for all non-sequential scan nodes").
func relevantObjects(root *plan.Node) map[storage.ObjectID]bool {
	out := map[storage.ObjectID]bool{}
	root.Walk(func(n *plan.Node) {
		if n.Kind == plan.KindIndexScan {
			if n.Index != nil {
				out[n.Index.Tree.Object().ID] = true
			}
			if n.Rel != nil {
				out[n.Rel.Heap.ID] = true
			}
		}
	})
	return out
}

// EncodePlan serializes a plan and encodes it against the frozen vocabulary
// — the token-ID sequence every inference path (single, batched, and the
// serve tier's cache fingerprint) starts from.
func (p *Predictor) EncodePlan(root *plan.Node) []int {
	return p.vocab.Encode(serialize.Serialize(root, p.serCfg))
}

// FNV-64a parameters (hash/fnv spelled out so the hot path hashes a []int
// without converting to bytes or allocating a hash.Hash64).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint hashes a token-ID sequence with FNV-64a, one byte per octet
// of each ID (little-endian). Equal sequences — identical serialized plans
// — collide by construction; the serve tier keys its prediction cache on
// this value.
//
//pythia:noalloc
func Fingerprint(ids []int) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		v := uint64(id)
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}

// planModels returns the models relevant to the plan — every model covering
// an object the plan scans non-sequentially — plus the relevant-object set
// used to filter combined models' predictions. Walk the relevant objects in
// ID order so the model list (and with it any parallel-inference work
// assignment) never depends on map order.
func (p *Predictor) planModels(root *plan.Node) ([]*model.Model, map[storage.ObjectID]bool) {
	relevant := relevantObjects(root)
	objs := make([]storage.ObjectID, 0, len(relevant))
	for id := range relevant {
		objs = append(objs, id)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	seen := map[*model.Model]bool{}
	var ms []*model.Model
	for _, id := range objs {
		for _, m := range p.objModels[id] {
			if !seen[m] {
				seen[m] = true
				ms = append(ms, m)
			}
		}
	}
	return ms, relevant
}

// collect filters one model's predictions to relevant objects, merges into
// out, and returns it; callers sort+dedupe once at the end.
func collect(out []storage.PageID, pred []storage.PageID, relevant map[storage.ObjectID]bool) []storage.PageID {
	for _, page := range pred {
		if relevant[page.Object] {
			out = append(out, page)
		}
	}
	return out
}

// Quantize switches every model to int8 inference (see model.Quantize).
func (p *Predictor) Quantize() {
	for _, m := range p.models {
		m.Quantize()
	}
}

// Predict runs Algorithm 3's prediction step: serialize the plan once, feed
// it to every model covering an object the plan scans non-sequentially, and
// return the union of predicted pages in file-storage order.
func (p *Predictor) Predict(root *plan.Node) []storage.PageID {
	return p.predict(root, false)
}

// PredictParallel is Predict with concurrent model inference.
func (p *Predictor) PredictParallel(root *plan.Node) []storage.PageID {
	return p.predict(root, true)
}

func (p *Predictor) predict(root *plan.Node, parallel bool) []storage.PageID {
	ids := p.EncodePlan(root)
	ms, relevant := p.planModels(root)
	preds := make([][]storage.PageID, len(ms))
	if parallel {
		var wg sync.WaitGroup
		for i, m := range ms {
			wg.Add(1)
			go func(i int, m *model.Model) {
				defer wg.Done()
				preds[i] = m.Predict(ids)
			}(i, m)
		}
		wg.Wait()
	} else {
		for i, m := range ms {
			preds[i] = m.Predict(ids)
		}
	}
	var out []storage.PageID
	for _, pr := range preds {
		// Keep only pages of relevant objects (a combined model may cover
		// an object the plan does not touch).
		out = collect(out, pr, relevant)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return dedupe(out)
}

// PredictBatch runs PredictParallel for several plans at once, sharing
// model forward passes: plans are grouped by the models they need, and each
// model sees its group's sequences as one batched decoder pass
// (model.PredictBatch). Per-plan results are identical to PredictParallel —
// the batched decoder is bitwise-equal to the single-row one — so the serve
// tier's micro-batcher can use this without changing any response.
func (p *Predictor) PredictBatch(roots []*plan.Node) [][]storage.PageID {
	out := make([][]storage.PageID, len(roots))
	if len(roots) == 0 {
		return out
	}
	type planInfo struct {
		ids      []int
		relevant map[storage.ObjectID]bool
	}
	infos := make([]planInfo, len(roots))
	// Group plan indices under each distinct model, keeping first-seen model
	// order (deterministic: it follows plan order and the ID-ordered
	// planModels walk).
	groups := make(map[*model.Model][]int)
	var order []*model.Model
	for i, root := range roots {
		ms, relevant := p.planModels(root)
		infos[i] = planInfo{ids: p.EncodePlan(root), relevant: relevant}
		for _, m := range ms {
			if _, ok := groups[m]; !ok {
				order = append(order, m)
			}
			groups[m] = append(groups[m], i)
		}
	}
	// One batched pass per model, models in parallel (the same fan-out shape
	// as PredictParallel; each model's mutex serializes nothing here because
	// each appears once).
	preds := make([][][]storage.PageID, len(order))
	var wg sync.WaitGroup
	for gi, m := range order {
		wg.Add(1)
		go func(gi int, m *model.Model) {
			defer wg.Done()
			idx := groups[m]
			seqs := make([][]int, len(idx))
			for k, pi := range idx {
				seqs[k] = infos[pi].ids
			}
			preds[gi] = m.PredictBatch(seqs)
		}(gi, m)
	}
	wg.Wait()
	// Scatter: union each plan's model outputs, filter, sort, dedupe.
	for gi, m := range order {
		for k, pi := range groups[m] {
			out[pi] = collect(out[pi], preds[gi][k], infos[pi].relevant)
		}
	}
	for i := range out {
		pr := out[i]
		sort.Slice(pr, func(a, b int) bool { return pr[a].Less(pr[b]) })
		out[i] = dedupe(pr)
	}
	return out
}

func dedupe(pages []storage.PageID) []storage.PageID {
	if len(pages) < 2 {
		return pages
	}
	out := pages[:1]
	for _, p := range pages[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
