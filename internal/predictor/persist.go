package predictor

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/storage"
)

// persistedPredictor is the on-disk form of a trained predictor: the frozen
// vocabulary, the serializer configuration, and each model together with
// the database objects it covers.
type persistedPredictor struct {
	Version     int
	SerCfg      serialize.Config
	VocabTokens []string
	Models      [][]byte
	ModelObjs   [][]storage.ObjectID
	TrainTime   time.Duration
}

const persistVersion = 1

// Save writes the predictor to w. Loaded predictors produce byte-identical
// predictions for the same plans.
func (p *Predictor) Save(w io.Writer) error {
	state := persistedPredictor{
		Version:     persistVersion,
		SerCfg:      p.serCfg,
		VocabTokens: p.vocab.Tokens(),
		ModelObjs:   p.modelObjs,
		TrainTime:   p.TrainTime,
	}
	for _, m := range p.models {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return fmt.Errorf("predictor: saving model: %w", err)
		}
		state.Models = append(state.Models, buf.Bytes())
	}
	return gob.NewEncoder(w).Encode(&state)
}

// Load reads a predictor previously written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var state persistedPredictor
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("predictor: decoding: %w", err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("predictor: unsupported persisted version %d", state.Version)
	}
	if len(state.Models) != len(state.ModelObjs) {
		return nil, fmt.Errorf("predictor: %d models but %d coverage entries",
			len(state.Models), len(state.ModelObjs))
	}
	vocab, err := serialize.VocabFromTokens(state.VocabTokens)
	if err != nil {
		return nil, err
	}
	p := &Predictor{
		vocab:     vocab,
		serCfg:    state.SerCfg,
		modelObjs: state.ModelObjs,
		objModels: make(map[storage.ObjectID][]*model.Model),
		TrainTime: state.TrainTime,
	}
	for i, raw := range state.Models {
		m, err := model.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("predictor: model %d: %w", i, err)
		}
		p.models = append(p.models, m)
		for _, id := range state.ModelObjs[i] {
			p.objModels[id] = append(p.objModels[id], m)
		}
	}
	return p, nil
}

// Update incrementally trains every model on new samples ("Pythia can be
// trained incrementally ... every new query run can be used as a new
// training data point", §5.3). Pages belonging to objects no model covers
// are ignored — extending coverage to new objects requires retraining,
// which the paper notes is cheap.
func (p *Predictor) Update(samples []TrainSample, epochs int) {
	msamples := make([]model.Sample, len(samples))
	for i, s := range samples {
		msamples[i] = model.Sample{
			TokenIDs: p.vocab.Encode(serialize.Serialize(s.Plan, p.serCfg)),
			Pages:    s.Trace.Pages(),
		}
	}
	for _, m := range p.models {
		m.TrainIncremental(msamples, epochs)
	}
}
