package predictor

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/sim"
)

// TestTrainTimeUsesInjectedClock pins the clock plumbing: with the package's
// timeNow/timeSince vars swapped for a fake, TrainTime is exactly the faked
// interval. Direct time.Now calls here would both break this test and be
// rejected by the detclock analyzer.
func TestTrainTimeUsesInjectedClock(t *testing.T) {
	const step = 42 * time.Millisecond
	savedNow, savedSince := timeNow, timeSince
	timeNow = func() time.Time { return time.Unix(0, 0) }
	timeSince = func(time.Time) time.Duration { return step }
	t.Cleanup(func() { timeNow, timeSince = savedNow, savedSince })

	db := workloadDB()
	r := sim.NewRand(9)
	var params []int64
	for i := 0; i < 8; i++ {
		params = append(params, r.Int63n(900))
	}
	samples, _, _ := buildSamples(t, db, params)
	opts := fastOpts()
	opts.Model.Epochs = 2
	p := Train(db.Registry, samples, opts)
	if p.TrainTime != step {
		t.Fatalf("TrainTime = %v, want exactly %v from the injected clock", p.TrainTime, step)
	}
}
