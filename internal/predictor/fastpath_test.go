package predictor

import (
	"reflect"
	"testing"

	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/sim"
)

// trainedFixture builds a small trained predictor plus a few distinct test
// plans from the shared workload fixture.
func trainedFixture(t *testing.T) (*Predictor, []*plan.Node) {
	t.Helper()
	db := workloadDB()
	r := sim.NewRand(17)
	var params []int64
	for i := 0; i < 32; i++ {
		params = append(params, r.Int63n(900))
	}
	samples, _, _ := buildSamples(t, db, params)
	p := Train(db.Registry, samples, fastOpts())
	pl := plan.NewPlanner(db)
	var roots []*plan.Node
	for _, q := range []int64{100, 400, 700, 100} {
		roots = append(roots, pl.MustPlan(templateQuery(q)))
	}
	return p, roots
}

// TestFingerprintProperties: equal token sequences collide, different ones
// (here: distinct plan parameters, and prefix/extension pairs) do not, and
// the hash is a pure function of the sequence.
func TestFingerprintProperties(t *testing.T) {
	a := []int{3, 1, 4, 1, 5}
	if Fingerprint(a) != Fingerprint([]int{3, 1, 4, 1, 5}) {
		t.Fatal("equal sequences hash differently")
	}
	distinct := [][]int{{}, {0}, {1}, {3, 1}, {1, 3}, {3, 1, 4}, a, {3, 1, 4, 1, 5, 0}}
	seen := map[uint64][]int{}
	for _, s := range distinct {
		h := Fingerprint(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between %v and %v", prev, s)
		}
		seen[h] = s
	}
}

// TestEncodePlanMatchesPredictTokens: fingerprinting two identical-template
// plans with equal params must collide; different params must not (their
// serializations differ in the predicate constants).
func TestEncodePlanFingerprint(t *testing.T) {
	p, roots := trainedFixture(t)
	if got, want := Fingerprint(p.EncodePlan(roots[0])), Fingerprint(p.EncodePlan(roots[3])); got != want {
		t.Fatal("identical plans fingerprint differently")
	}
	if Fingerprint(p.EncodePlan(roots[0])) == Fingerprint(p.EncodePlan(roots[1])) {
		t.Fatal("distinct plans collided (parameters should tokenize differently)")
	}
}

// TestPredictBatchMatchesPredictParallel: the batched entry point must
// return, for every plan, exactly what the single-plan path returns —
// including duplicated plans within one batch.
func TestPredictBatchMatchesPredictParallel(t *testing.T) {
	p, roots := trainedFixture(t)
	got := p.PredictBatch(roots)
	if len(got) != len(roots) {
		t.Fatalf("PredictBatch returned %d results for %d plans", len(got), len(roots))
	}
	for i, root := range roots {
		want := p.PredictParallel(root)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("plan %d: batch %v vs single %v", i, got[i], want)
		}
	}
	if r := p.PredictBatch(nil); len(r) != 0 {
		t.Fatalf("empty batch returned %v", r)
	}
}

// TestQuantizedPredictorAgreement: quantizing the whole predictor keeps
// per-plan prediction sets within the pinned agreement budget of the float
// path (and stays consistent between batch and single entry points).
func TestQuantizedPredictorAgreement(t *testing.T) {
	p, roots := trainedFixture(t)
	floatPreds := make(map[int]int) // plan → float set size (for sanity)
	want := p.PredictParallel(roots[0])
	floatPreds[0] = len(want)

	p.Quantize()
	got := p.PredictParallel(roots[0])
	// Pinned agreement budget: Jaccard ≥ 0.9 on the seed workload.
	in := map[string]bool{}
	for _, pg := range want {
		in[pg.String()] = true
	}
	inter, union := 0, len(want)
	for _, pg := range got {
		if in[pg.String()] {
			inter++
		} else {
			union++
		}
	}
	agreement := 1.0
	if union > 0 {
		agreement = float64(inter) / float64(union)
	}
	if agreement < 0.9 {
		t.Fatalf("quantized agreement %.3f below pinned budget 0.90 (float %d pages, int8 %d pages)",
			agreement, len(want), len(got))
	}

	batch := p.PredictBatch(roots[:1])
	if !reflect.DeepEqual(batch[0], got) {
		t.Fatal("quantized batch result differs from quantized single result")
	}
}
