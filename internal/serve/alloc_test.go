package serve

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/storage"
)

// TestServeHotPathAllocs pins the per-request units of the serving fast path
// at zero heap allocations per call. Every function exercised here carries
// //pythia:noalloc, so the static analyzer rejects the allocation *patterns*
// at vet time; this test closes the loop at runtime, catching anything the
// shallow analyzer cannot see (interface boxing inside callees, map growth,
// escape-analysis regressions from a toolchain bump).
//
// The units mirror one cache-hit request end to end: fingerprint the plan,
// route it on the ring (with failover successors into a caller-owned
// scratch slice), check breaker and health admission, hit the prediction
// cache, and record the health outcome.
func TestServeHotPathAllocs(t *testing.T) {
	rec := &obs.AtomicCounters{}

	t.Run("fingerprint", func(t *testing.T) {
		ids := []int{3, 1, 4, 1, 5, 9, 2, 6}
		if a := testing.AllocsPerRun(1000, func() {
			_ = fingerprint("workload", ids)
		}); a != 0 {
			t.Errorf("fingerprint allocates %v/op", a)
		}
	})

	t.Run("predcache-hit", func(t *testing.T) {
		c := newPredCache(64, rec)
		key := fingerprint("workload", []int{3, 1, 4})
		c.put(key, []storage.PageID{{Object: 1, Page: 7}})
		if a := testing.AllocsPerRun(1000, func() {
			if _, hit := c.get(key); !hit {
				t.Fatal("seeded key missed")
			}
		}); a != 0 {
			t.Errorf("predCache.get hit allocates %v/op", a)
		}
	})

	t.Run("ring-lookup", func(t *testing.T) {
		r := newRing(4)
		fps := testFingerprints(8)
		if a := testing.AllocsPerRun(1000, func() {
			for _, fp := range fps {
				_ = r.lookup(fp)
			}
		}); a != 0 {
			t.Errorf("hashRing.lookup allocates %v/op", a)
		}
		dst := make([]int, 0, 4)
		if a := testing.AllocsPerRun(1000, func() {
			for _, fp := range fps {
				dst = r.lookupN(fp, dst[:0], 3)
			}
		}); a != 0 {
			t.Errorf("hashRing.lookupN allocates %v/op", a)
		}
	})

	t.Run("health-steady-state", func(t *testing.T) {
		h := newHealth(3, time.Second, 2, rec)
		if a := testing.AllocsPerRun(1000, func() {
			h.success()
			if !h.serving() {
				t.Fatal("healthy replica not serving")
			}
		}); a != 0 {
			t.Errorf("health success/serving allocates %v/op", a)
		}
	})

	t.Run("breaker-steady-state", func(t *testing.T) {
		b := newBreaker(3, time.Second, rec)
		if a := testing.AllocsPerRun(1000, func() {
			if !b.allow() {
				t.Fatal("closed breaker refused")
			}
			b.success()
			if b.blocked() {
				t.Fatal("closed breaker blocked")
			}
		}); a != 0 {
			t.Errorf("breaker allow/success/blocked allocates %v/op", a)
		}
	})
}
