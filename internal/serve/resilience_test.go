package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/workload"
)

// resilienceServer builds a server sharing the fixture's trained system but
// with its own metrics and options, so resilience tests can trip breakers
// and shed load without perturbing the shared fixture's counters.
func resilienceServer(t *testing.T, opts Options) (*Server, *workload.Workload) {
	t.Helper()
	base, w := testServer(t)
	return mustServer(t, base.db, fixtureSys, NewMetrics(nil), opts), w
}

func matchedBody(t *testing.T, w *workload.Workload) *strings.Reader {
	t.Helper()
	b := specBody(t, spec.FromQuery(w.Instances[0].Query))
	return strings.NewReader(b.String())
}

func TestBodyCapAnswers413(t *testing.T) {
	srv, _ := resilienceServer(t, Options{MaxBodyBytes: 64})
	big := `{"fact":"` + strings.Repeat("x", 200) + `"}`
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(big))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeTooLarge {
		t.Fatalf("envelope wrong: %+v", env)
	}
	// A small valid body still works on the same server.
	rr = doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":"inventory"}`))
	if rr.Code != http.StatusOK {
		t.Fatalf("small body status %d: %s", rr.Code, rr.Body.String())
	}
}

func TestLoadSheddingAnswers503(t *testing.T) {
	srv, w := resilienceServer(t, Options{MaxInFlight: 1})
	// Saturate the in-flight slot, then observe the next request shed.
	srv.inflight.Add(1)
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeOverloaded {
		t.Fatalf("envelope wrong: %+v", env)
	}
	if srv.metrics.sheds.Load() != 1 {
		t.Fatalf("sheds counter %d, want 1", srv.metrics.sheds.Load())
	}
	// Releasing the slot restores service.
	srv.inflight.Add(-1)
	rr = doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusOK {
		t.Fatalf("post-shed status %d: %s", rr.Code, rr.Body.String())
	}
}

func TestInferenceTimeoutAnswers504(t *testing.T) {
	srv, w := resilienceServer(t, Options{RequestTimeout: time.Nanosecond})
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeDeadline {
		t.Fatalf("envelope wrong: %+v", env)
	}
	if srv.metrics.timeouts.Load() == 0 {
		t.Fatal("timeout not counted")
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	inj := fault.New(fault.Plan{ServeRate: 1}, 1)
	srv, w := resilienceServer(t, Options{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Fault:            inj,
	})
	// Fake clock so the cooldown needs no sleeping.
	now := time.Unix(0, 0)
	srv.inst().breaker.now = func() time.Time { return now }

	// Two consecutive injected model errors trip the breaker.
	for i := 0; i < 2; i++ {
		rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
		if rr.Code != http.StatusInternalServerError {
			t.Fatalf("fault %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
		if env := decodeEnvelope(t, rr); env.Error.Code != CodeModelError {
			t.Fatalf("envelope wrong: %+v", env)
		}
	}
	if s := srv.inst().breaker.State(); s != "open" {
		t.Fatalf("breaker %s after threshold errors, want open", s)
	}

	// Open: predictions answer from the fallback path, degraded but 200.
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusOK {
		t.Fatalf("open-breaker status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback || resp.Degraded != "breaker_open" {
		t.Fatalf("open breaker did not degrade: %+v", resp)
	}

	// Cooldown elapses; the half-open trial still hits the injected fault
	// and re-opens the breaker.
	now = now.Add(2 * time.Minute)
	rr = doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("half-open trial status %d: %s", rr.Code, rr.Body.String())
	}
	if s := srv.inst().breaker.State(); s != "open" {
		t.Fatalf("breaker %s after failed trial, want open", s)
	}

	// Fault clears; the next trial succeeds and closes the breaker.
	srv.SetFault(nil)
	now = now.Add(2 * time.Minute)
	rr = doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusOK {
		t.Fatalf("recovery status %d: %s", rr.Code, rr.Body.String())
	}
	if s := srv.inst().breaker.State(); s != "closed" {
		t.Fatalf("breaker %s after successful trial, want closed", s)
	}

	// Every transition left an event on the metrics surface.
	snap := srv.metrics.Events().Snapshot()
	if snap.Get(obs.BreakerOpen) != 2 || snap.Get(obs.BreakerHalfOpen) != 2 || snap.Get(obs.BreakerClosed) != 1 {
		t.Fatalf("transition events wrong: open=%d half=%d closed=%d",
			snap.Get(obs.BreakerOpen), snap.Get(obs.BreakerHalfOpen), snap.Get(obs.BreakerClosed))
	}

	// /metrics exposes the gauge and counters.
	text := doRequest(t, srv, http.MethodGet, "/metrics", nil).Body.String()
	for _, want := range []string{
		"pythia_breaker_state 0",
		"pythia_requests_shed_total 0",
		"pythia_inference_timeouts_total 0",
		"pythia_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestDrainingHealthz(t *testing.T) {
	srv, _ := resilienceServer(t, Options{})
	rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthy status %d", rr.Code)
	}
	srv.SetDraining(true)
	rr = doRequest(t, srv, http.MethodGet, "/v1/healthz", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d", rr.Code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("status %q, want draining", health.Status)
	}
	var stats statsResponse
	rr = doRequest(t, srv, http.MethodGet, "/stats", nil)
	if err := json.NewDecoder(rr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Draining || stats.BreakerState != "closed" {
		t.Fatalf("stats resilience fields wrong: %+v", stats)
	}
	srv.SetDraining(false)
	if rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("undrained status %d", rr.Code)
	}
}
