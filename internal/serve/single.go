package serve

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
)

// Single is the one-replica Inferencer: the deployment shape the server had
// before the replica pool, now with the same zero-downtime Swap contract.
// The serving instance sits behind an atomic pointer; Swap builds a standby
// instance from a snapshot, warms it on recently served plans, swings the
// pointer, and drains the old instance in the background.
type Single struct {
	db      *catalog.Database
	metrics *Metrics
	opts    Options
	fgate   *faultGate
	warm    *warmer

	cur    atomic.Pointer[instance]
	swapMu sync.Mutex // serializes Swap; Predict never takes it
	swaps  atomic.Uint64
}

// NewSingle builds a single-instance Inferencer over a trained system.
// Options are normalized here; most callers want New, which picks Single or
// Pool from Options.Replicas and wraps it in the HTTP server.
func NewSingle(db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) (*Single, error) {
	norm, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	return newSingle(db, sys, metrics, &faultGate{inj: norm.Fault}, norm), nil
}

// newSingle is the internal constructor: opts are already normalized and the
// fault gate is shared with the owning Server.
func newSingle(db *catalog.Database, sys *corepythia.System, metrics *Metrics, fgate *faultGate, opts Options) *Single {
	if opts.Quantize {
		quantizeSystem(sys)
	}
	s := &Single{db: db, metrics: metrics, opts: opts, fgate: fgate, warm: newWarmer()}
	s.cur.Store(newInstance(0, 1, sys, metrics, fgate, s.warm, opts))
	return s
}

// Predict answers one query on the current instance.
func (s *Single) Predict(ctx context.Context, q plan.Query, root *plan.Node) (Prediction, error) {
	return s.cur.Load().predict(ctx, q, root, false)
}

// PredictBatch answers many queries concurrently on the current instance
// (concurrent misses coalesce in its micro-batcher).
func (s *Single) PredictBatch(ctx context.Context, qs []plan.Query, roots []*plan.Node) ([]Prediction, error) {
	return predictAll(ctx, s, qs, roots)
}

// Explain renders a plan without inference.
func (s *Single) Explain(root *plan.Node) Explanation { return explainPlan(root) }

// Workloads returns the current instance's trained workloads.
func (s *Single) Workloads() []*corepythia.Trained { return s.cur.Load().sys.Workloads() }

// Status reports the single replica's topology row.
func (s *Single) Status() InfStatus {
	ins := s.cur.Load()
	return InfStatus{
		Generation: ins.gen,
		Swaps:      s.swaps.Load(),
		Replicas:   []ReplicaStatus{ins.status()},
	}
}

// Swap loads a pythia.System snapshot (pythia.System.Save) into a standby
// instance, warms its caches on recently served plans, atomically makes it
// the serving instance, and drains the old one in the background. In-flight
// requests finish on the instance that admitted them; no request ever sees
// a half-loaded model.
func (s *Single) Swap(r io.Reader) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.cur.Load()
	sys, err := corepythia.LoadSystem(s.db, old.sys.Config(), r)
	if err != nil {
		return err
	}
	if len(sys.Workloads()) == 0 {
		return errors.New("serve: snapshot contains no trained workloads")
	}
	if s.opts.Quantize {
		quantizeSystem(sys)
	}
	next := newInstance(0, old.gen+1, sys, s.metrics, s.fgate, s.warm, s.opts)
	warmThrough(s.warm.snapshot(), s.opts.RequestTimeout, func(uint64) *instance { return next })
	s.cur.Store(next)
	s.swaps.Add(1)
	//pythia:goleak-ok drain is deadline-bounded: drainInstance polls in-flight counts for at most DrainTimeout before force-closing
	go drainInstance(old, s.opts.DrainTimeout)
	return nil
}

// BaselineID reports the serving system's drift-baseline identity (nil when
// untrained or the snapshot predates baselines).
func (s *Single) BaselineID() *corepythia.BaselineID { return s.cur.Load().sys.BaselineID() }

// Close tears down the current instance's batch collector.
func (s *Single) Close() { s.cur.Load().close() }
