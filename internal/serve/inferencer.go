package serve

import (
	"context"
	"errors"
	"io"
	"sync"

	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/storage"
)

// baseliner is the optional Inferencer extension exposing the serving
// system's drift-baseline identity. Single and Pool implement it; stubbed
// test Inferencers need not — /stats then omits the baseline block, exactly
// like an untrained system.
type baseliner interface {
	BaselineID() *corepythia.BaselineID
}

// Inferencer is the seam between the HTTP surface and the model tier. The
// Server decodes and plans requests, applies global shedding and timeouts,
// and renders responses; everything that touches a trained model — matching,
// caching, batching, the circuit breaker, and inference itself — happens
// behind this interface. Two production implementations exist: Single (one
// model instance, the pre-pool deployment shape) and Pool (N independent
// replicas behind a consistent-hash router). Tests stub it to exercise the
// HTTP surface without training anything.
type Inferencer interface {
	// Predict answers one decoded, planned query. Sentinel errors map to
	// HTTP statuses in the Server: ErrSaturated → 503, errModelFault → 500,
	// context.DeadlineExceeded → 504, context.Canceled → 499.
	Predict(ctx context.Context, q plan.Query, root *plan.Node) (Prediction, error)
	// PredictBatch answers many queries concurrently (each routed
	// independently, so a pool spreads the batch across replicas and each
	// replica's micro-batcher coalesces what lands together).
	PredictBatch(ctx context.Context, qs []plan.Query, roots []*plan.Node) ([]Prediction, error)
	// Explain renders a plan without running inference.
	Explain(root *plan.Node) Explanation
	// Workloads returns the trained workloads of the serving view (for a
	// pool: the routing replica's — all replicas hold identical inventories).
	Workloads() []*corepythia.Trained
	// Status reports the replica topology for /stats, /metrics, and
	// /v1/admin/replicas.
	Status() InfStatus
	// Swap is the zero-downtime model-swap hook: it loads a pythia.System
	// snapshot (see pythia.System.Save) into a standby generation, warms it
	// on recently served plans, atomically swings the serving pointer, and
	// drains the superseded generation in the background. Requests in flight
	// during the swap complete on the generation that admitted them.
	Swap(r io.Reader) error
	// Close tears down background machinery (micro-batch collectors).
	Close()
}

// Prediction is the outcome of one routed inference.
type Prediction struct {
	// Workload is the matched trained workload ("" on fallback).
	Workload string
	// Pages is the predicted, buffer-bounded prefetch set.
	Pages []storage.PageID
	// Fallback reports that no workload matched (or the model path was
	// skipped) and the empty advisory answer was served.
	Fallback bool
	// Cached reports the answer came from the prediction cache with zero
	// inference.
	Cached bool
	// Degraded names why the model path was skipped (e.g. "breaker_open").
	Degraded string
	// Replica is the serving replica's index (-1 when the request never
	// routed, e.g. a pool-level fallback).
	Replica int
	// Generation is the model generation that answered; it increments on
	// every successful Swap.
	Generation uint64
}

// Explanation is the model-free plan rendering behind POST /v1/explain.
type Explanation struct {
	Plan   string
	Tokens []string
}

// explainPlan renders a plan exactly as the pre-pool server did.
func explainPlan(root *plan.Node) Explanation {
	return Explanation{
		Plan:   root.Display(),
		Tokens: serialize.Serialize(root, serialize.DefaultConfig()),
	}
}

// ErrSaturated reports that the routed replica's bounded work queue was full;
// the Server sheds the request with 503 + Retry-After.
var ErrSaturated = errors.New("serve: replica work queue is full")

// errModelFault is the injected transient model error (chaos drills); the
// Server answers 500 model_error, exactly like the pre-pool fault path.
var errModelFault = errors.New("serve: transient model error (injected)")

// errNoSnapshot reports a reload request with no snapshot path configured.
var errNoSnapshot = errors.New("serve: no snapshot path configured")

// InfStatus is the replica topology snapshot behind /v1/admin/replicas.
type InfStatus struct {
	// Generation is the current serving generation (1 at construction).
	Generation uint64 `json:"generation"`
	// Swaps counts completed model swaps.
	Swaps uint64 `json:"swaps"`
	// Replicas holds one row per serving replica.
	Replicas []ReplicaStatus `json:"replicas"`
}

// ReplicaStatus is one replica's row in InfStatus.
type ReplicaStatus struct {
	ID             int      `json:"id"`
	Generation     uint64   `json:"generation"`
	Served         uint64   `json:"served"`
	Shed           uint64   `json:"shed"`
	InFlight       int64    `json:"in_flight"`
	QueueDepth     int      `json:"queue_depth"`
	Breaker        string   `json:"breaker"`
	Health         string   `json:"health"`
	CacheEntries   int      `json:"cache_entries"`
	CacheCapacity  int      `json:"cache_capacity"`
	CacheHits      uint64   `json:"cache_hits"`
	CacheMisses    uint64   `json:"cache_misses"`
	CacheEvictions uint64   `json:"cache_evictions"`
	Batches        uint64   `json:"batches"`
	BatchedReqs    uint64   `json:"batched_requests"`
	Workloads      []string `json:"workloads"`
	Params         int      `json:"params"`

	// QualityScored counts feedback reports scored against this replica's
	// predictions; Precision and Recall are micro-averaged over its sliding
	// feedback window (0 with no feedback — "no data" must not read as
	// perfect).
	QualityScored uint64  `json:"quality_scored"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	// Drift is the replica's drift-detector snapshot (state "ok" with zero
	// counters when the serving system carries no training baseline).
	Drift quality.DriftStats `json:"drift"`

	// BreakerValue is the breaker state as a gauge (closed=0, half_open=1,
	// open=2), for aggregation on /metrics; the name is in Breaker.
	BreakerValue int `json:"-"`
	// HealthValue is the health state as a gauge (healthy=0, degraded=1,
	// probation=2, quarantined=3); the name is in Health.
	HealthValue int `json:"-"`
}

// faultGate serializes draws on the shared chaos injector (fault.Injector is
// not synchronized and replicas fire it concurrently) and lets tests clear
// the injector on a live server.
type faultGate struct {
	mu  sync.Mutex
	inj *fault.Injector
}

func (g *faultGate) fire() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inj == nil {
		return false
	}
	return g.inj.Fire(fault.Serve, 0)
}

// fireModel draws the model-path fault decision for one replica: the shared
// Serve site plus the replica-targeted Replica site. Both streams always draw
// (no short-circuit), so enabling one site never shifts the other's
// deterministic sequence.
func (g *faultGate) fireModel(id int) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inj == nil {
		return false
	}
	s := g.inj.Fire(fault.Serve, 0)
	r := g.inj.FireReplica(id, 0)
	return s || r
}

// fireReplica draws only the replica-targeted site — the hook Pool.Swap uses
// to fail a chosen replica's standby build during a swap.
func (g *faultGate) fireReplica(id int) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inj == nil {
		return false
	}
	return g.inj.FireReplica(id, 0)
}

func (g *faultGate) set(inj *fault.Injector) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.inj = inj
	g.mu.Unlock()
}

// warmSetSize bounds the recently-served plan set replayed through a standby
// generation before it starts taking traffic.
const warmSetSize = 8

// warmEntry is one recently served plan: the routing fingerprint plus enough
// of the request to re-run it through a fresh instance.
type warmEntry struct {
	fp   uint64
	q    plan.Query
	root *plan.Node
}

// warmer remembers the last warmSetSize distinct plans that reached the
// model tier. A model swap replays them through the standby generation so it
// comes up with hot prediction caches instead of serving its first requests
// cold. It outlives generations: the Single/Pool owns it, instances feed it.
type warmer struct {
	mu      sync.Mutex
	entries []warmEntry
	next    int
	seen    map[uint64]bool
}

func newWarmer() *warmer { return &warmer{seen: make(map[uint64]bool, warmSetSize)} }

// note records one served plan, ring-evicting the oldest past warmSetSize.
func (w *warmer) note(fp uint64, q plan.Query, root *plan.Node) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen[fp] {
		return
	}
	if len(w.entries) < warmSetSize {
		w.entries = append(w.entries, warmEntry{fp: fp, q: q, root: root})
		w.seen[fp] = true
		return
	}
	delete(w.seen, w.entries[w.next].fp)
	w.entries[w.next] = warmEntry{fp: fp, q: q, root: root}
	w.seen[fp] = true
	w.next = (w.next + 1) % warmSetSize
}

// snapshot copies the current warm set.
func (w *warmer) snapshot() []warmEntry {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]warmEntry(nil), w.entries...)
}

// predictAll fans qs across Predict concurrently and returns the first error
// (all predictions still complete).
func predictAll(ctx context.Context, inf Inferencer, qs []plan.Query, roots []*plan.Node) ([]Prediction, error) {
	out := make([]Prediction, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = inf.Predict(ctx, qs[i], roots[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// workloadNames lists a system's trained workload names for status rows.
func workloadNames(sys *corepythia.System) []string {
	var names []string
	for _, tw := range sys.Workloads() {
		names = append(names, tw.Name)
	}
	return names
}

// quantizeSystem flips every trained model in sys to int8 inference.
func quantizeSystem(sys *corepythia.System) {
	for _, tw := range sys.Workloads() {
		tw.Pred.Quantize()
	}
}
