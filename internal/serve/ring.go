package serve

import (
	"sort"
	"strconv"
)

// ringVNodes is how many virtual nodes each replica contributes to the hash
// ring. More virtual nodes smooth the key distribution (and the remap
// fraction when the replica count changes) at the cost of a slightly larger
// sorted array; 64 keeps the per-replica load within a few percent of even
// for the fingerprint distributions FNV-64a produces.
const ringVNodes = 64

// hashRing is a consistent-hash ring over replica indices. Plan fingerprints
// (predictor.Fingerprint with the workload name folded in — the same key the
// prediction cache uses) map to the first ring point at or clockwise after
// the fingerprint, so the same plan always lands on the same replica and its
// cached prediction stays resident exactly once across the pool. Changing
// the replica count remaps only the arc segments owned by the added or
// removed replica — roughly 1/N of the key space — so most of the pool's
// cache investment survives a resize.
//
// The ring is immutable after construction: lookups are a binary search over
// a sorted slice, safe for any number of concurrent readers.
type hashRing struct {
	points []ringPoint
}

// ringPoint is one virtual node: a hash position and the replica owning it.
type ringPoint struct {
	hash    uint64
	replica int
}

// newRing builds the ring for a replica count. Virtual-node positions hash
// the label "replica-<r>/<v>" with FNV-64a — a pure function of (r, v), so
// routing is identical across processes and runs.
func newRing(replicas int) *hashRing {
	if replicas < 1 {
		replicas = 1
	}
	points := make([]ringPoint, 0, replicas*ringVNodes)
	for r := 0; r < replicas; r++ {
		for v := 0; v < ringVNodes; v++ {
			label := "replica-" + strconv.Itoa(r) + "/" + strconv.Itoa(v)
			points = append(points, ringPoint{hash: mix64(fnv64a(label)), replica: r})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// A 64-bit collision between labels is vanishingly unlikely, but the
		// tie-break keeps the sort — and therefore routing — deterministic
		// even then.
		return points[i].replica < points[j].replica
	})
	return &hashRing{points: points}
}

// lookup returns the replica owning a fingerprint: the first point at or
// after it, wrapping to the ring's start. Binary search is written out
// rather than using sort.Search so the hot routing path stays closure- and
// allocation-free.
//
//pythia:noalloc
func (r *hashRing) lookup(fp uint64) int {
	fp = mix64(fp)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < fp {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].replica
}

// lookupN appends to dst the first n distinct replicas encountered walking
// clockwise from the fingerprint's position: the owner first, then its
// failover successors in ring order. Walking the ring (rather than numeric
// index order) keeps failover affinity consistent — every request for the
// same fingerprint fails over to the same successor, so the successor's cache
// absorbs the sick replica's shard instead of scattering it. n is clamped to
// the replica count; the returned slice is dst extended in place when its
// capacity allows.
//
//pythia:noalloc
func (r *hashRing) lookupN(fp uint64, dst []int, n int) []int {
	fp = mix64(fp)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < fp {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var seen uint64 // replica-index bitmask; rings are far below 64 replicas
	for i := 0; i < len(r.points) && n > 0; i++ {
		rep := r.points[(lo+i)%len(r.points)].replica
		if rep < 64 {
			if seen&(1<<uint(rep)) != 0 {
				continue
			}
			seen |= 1 << uint(rep)
		} else {
			dup := false
			for _, d := range dst {
				if d == rep {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		dst = append(dst, rep)
		n--
	}
	return dst
}

// replicas returns the replica count the ring was built for.
func (r *hashRing) replicas() int {
	n := 0
	for _, p := range r.points {
		if p.replica+1 > n {
			n = p.replica + 1
		}
	}
	return n
}

// mix64 is the splitmix64 finalizer. FNV-64a of short, similar strings (and
// the FNV-folded plan fingerprints) clusters in the upper bits, which is
// exactly what ring positioning sorts on — without a finalizer the arc
// lengths skew several-fold. One multiply-xorshift round restores uniform
// spread while staying a pure, allocation-free function.
//
//pythia:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64a hashes a label with FNV-64a (the repo's standard non-cryptographic
// hash; see predictor.Fingerprint and the prediction cache).
//
//pythia:noalloc
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
