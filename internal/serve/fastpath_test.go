package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/predictor"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/workload"
)

// fastServer builds a server sharing the fixture's trained system but with
// its own metrics, cache, and batcher, so fast-path tests see clean counters.
func fastServer(t *testing.T, opts Options) (*Server, *workload.Workload) {
	t.Helper()
	base, w := testServer(t)
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), opts)
	t.Cleanup(srv.Close)
	return srv, w
}

// predictOK posts one instance query and decodes the 200 response.
func predictOK(t *testing.T, srv *Server, w *workload.Workload, inst int) predictResponse {
	t.Helper()
	body := specBody(t, spec.FromQuery(w.Instances[inst].Query))
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("instance %d: status %d: %s", inst, rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// distinctInstances returns indices of n workload instances whose plans have
// pairwise distinct cache fingerprints (generated parameters can repeat, so
// instance index alone does not guarantee distinct plans).
func distinctInstances(t testing.TB, srv *Server, w *workload.Workload, n int) []int {
	t.Helper()
	pl := plan.NewPlanner(srv.db)
	seen := map[uint64]bool{}
	var idx []int
	for i := range w.Instances {
		tw := srv.inst().sys.Lookup(w.Instances[i].Query)
		if tw == nil {
			continue
		}
		root, err := pl.Plan(w.Instances[i].Query)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint(tw.Name, tw.Pred.EncodePlan(root))
		if seen[fp] {
			continue
		}
		seen[fp] = true
		idx = append(idx, i)
		if len(idx) == n {
			return idx
		}
	}
	t.Fatalf("workload has only %d distinct plans, need %d", len(idx), n)
	return nil
}

// TestCacheHitSkipsInference: the second request for an identical plan must
// answer from the cache with zero inference — asserted through the obs
// counters, not timing.
func TestCacheHitSkipsInference(t *testing.T) {
	srv, w := fastServer(t, Options{})
	first := predictOK(t, srv, w, 0)
	if first.Cached {
		t.Fatal("first request claims a cache hit")
	}
	snap := srv.metrics.Events().Snapshot()
	if snap.Get(obs.InferenceRun) != 1 || snap.Get(obs.PredCacheMiss) != 1 {
		t.Fatalf("after miss: inference_run=%d predcache_miss=%d, want 1/1",
			snap.Get(obs.InferenceRun), snap.Get(obs.PredCacheMiss))
	}

	second := predictOK(t, srv, w, 0)
	if !second.Cached || second.Workload != first.Workload {
		t.Fatalf("second request not served from cache: %+v", second)
	}
	if !reflect.DeepEqual(second.Pages, first.Pages) {
		t.Fatalf("cached pages diverge: %v vs %v", second.Pages, first.Pages)
	}
	snap = srv.metrics.Events().Snapshot()
	if snap.Get(obs.InferenceRun) != 1 {
		t.Fatalf("cache hit ran inference: inference_run=%d", snap.Get(obs.InferenceRun))
	}
	if snap.Get(obs.PredCacheHit) != 1 {
		t.Fatalf("predcache_hit=%d, want 1", snap.Get(obs.PredCacheHit))
	}
	if h := srv.inst().cache.hits.Load(); h != 1 {
		t.Fatalf("cache hits=%d, want 1", h)
	}
}

// TestCacheConcurrentIdentity: many goroutines hammering a mix of plans must
// each get exactly the single-threaded answer, hit or miss. Run under -race
// this also exercises the sharded-LRU locking.
func TestCacheConcurrentIdentity(t *testing.T) {
	srv, w := fastServer(t, Options{})
	insts := distinctInstances(t, srv, w, 4)
	// Single-threaded reference answers.
	want := map[int][]pageJSON{}
	for _, i := range insts {
		want[i] = predictOK(t, srv, w, i).Pages
	}
	const workers, iters = 8, 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := insts[(g+it)%len(insts)]
				resp := predictOK(t, srv, w, i)
				if !reflect.DeepEqual(resp.Pages, want[i]) {
					t.Errorf("instance %d: concurrent answer %v, want %v", i, resp.Pages, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := srv.metrics.Events().Snapshot()
	if snap.Get(obs.PredCacheHit) == 0 {
		t.Fatal("concurrent run recorded no cache hits")
	}
}

// TestCacheEvictionAtCapacity: a cache bounded below the distinct-plan count
// must evict (counted on obs and /metrics) and never exceed its capacity.
func TestCacheEvictionAtCapacity(t *testing.T) {
	srv, w := fastServer(t, Options{CacheEntries: 4})
	if got := srv.inst().cache.capacity(); got != 4 {
		t.Fatalf("capacity %d, want 4", got)
	}
	insts := distinctInstances(t, srv, w, 6)
	for _, i := range insts {
		predictOK(t, srv, w, i)
	}
	if n := srv.inst().cache.len(); n > 4 {
		t.Fatalf("cache holds %d entries past capacity 4", n)
	}
	if ev := srv.inst().cache.evictions.Load(); ev != 2 {
		t.Fatalf("evictions=%d, want 2 (6 distinct plans into 4 slots)", ev)
	}
	if snap := srv.metrics.Events().Snapshot(); snap.Get(obs.PredCacheEvict) != 2 {
		t.Fatalf("predcache_evict event=%d, want 2", snap.Get(obs.PredCacheEvict))
	}
	// LRU order: the oldest plan was evicted, so repeating it misses again.
	before := srv.inst().cache.misses.Load()
	predictOK(t, srv, w, insts[0])
	if srv.inst().cache.misses.Load() != before+1 {
		t.Fatal("evicted plan did not miss on re-request")
	}
}

// TestShedDoesNotPoisonBatch: a shed request must be refused before it
// reaches the miss path — nothing enqueued on the batcher, nothing stored in
// the cache — and the next admitted request must answer normally.
func TestShedDoesNotPoisonBatch(t *testing.T) {
	srv, w := fastServer(t, Options{MaxInFlight: 1})
	srv.inflight.Add(1) // saturate the only slot
	body := specBody(t, spec.FromQuery(w.Instances[0].Query))
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if n := srv.inst().cache.len(); n != 0 {
		t.Fatalf("shed request left %d cache entries", n)
	}
	if n := srv.inst().missInflight.Load(); n != 0 {
		t.Fatalf("shed request left missInflight=%d", n)
	}
	if b := srv.inst().batcher.batches.Load(); b != 0 {
		t.Fatalf("shed request dispatched %d batches", b)
	}
	srv.inflight.Add(-1)
	if resp := predictOK(t, srv, w, 0); resp.Fallback || resp.Cached {
		t.Fatalf("post-shed request degraded: %+v", resp)
	}
}

// TestBatchedMatchesDirect: requests coalesced into one batched forward pass
// must answer exactly what the unbatched path answers for the same plans
// (the kernels are bitwise deterministic at any batch width).
func TestBatchedMatchesDirect(t *testing.T) {
	direct, w := fastServer(t, Options{BatchWindow: -1})
	batched, _ := fastServer(t, Options{BatchWindow: 50 * time.Millisecond, MaxBatch: 4})
	insts := distinctInstances(t, direct, w, 4)

	want := map[int][]pageJSON{}
	for _, i := range insts {
		want[i] = predictOK(t, direct, w, i).Pages
	}

	// Hold an artificial miss in flight so every concurrent request routes to
	// the batcher instead of the direct path.
	batched.inst().missInflight.Add(1)
	var wg sync.WaitGroup
	got := make([]predictResponse, len(insts))
	for k, i := range insts {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			got[k] = predictOK(t, batched, w, i)
		}(k, i)
	}
	wg.Wait()
	batched.inst().missInflight.Add(-1)

	for k, i := range insts {
		if got[k].Cached {
			t.Fatalf("instance %d: batched first request claims cache hit", i)
		}
		if !reflect.DeepEqual(got[k].Pages, want[i]) {
			t.Fatalf("instance %d: batched %v, want direct %v", i, got[k].Pages, want[i])
		}
	}
	if b := batched.inst().batcher.batches.Load(); b == 0 {
		t.Fatal("no multi-request batch dispatched")
	}
	if n := batched.inst().batcher.batched.Load(); n < 2 {
		t.Fatalf("only %d requests batched, want >=2", n)
	}
	snap := batched.metrics.Events().Snapshot()
	if snap.Get(obs.InferenceBatched) < 2 {
		t.Fatalf("inference_batched=%d, want >=2", snap.Get(obs.InferenceBatched))
	}
	if snap.Get(obs.InferenceRun) != uint64(len(insts)) {
		t.Fatalf("inference_run=%d, want %d", snap.Get(obs.InferenceRun), len(insts))
	}
}

// TestQuantizedServer: Options.Quantize flips every model to int8 inference
// at construction; the server still answers and its answers stay
// self-consistent between the miss and cache-hit paths. Quantization is
// irreversible, so this test trains its own system instead of mutating the
// shared fixture's models.
func TestQuantizedServer(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	w := g.Workload("t91", 8, 1)
	mcfg := model.DefaultConfig()
	mcfg.Dim = 16
	mcfg.Heads = 2
	mcfg.Layers = 1
	mcfg.DecoderHidden = 32
	mcfg.Epochs = 10
	cfg := corepythia.DefaultConfig()
	cfg.Predictor = predictor.Options{Model: mcfg, ObservedOnly: true}
	cfg.Replay.BufferPages = 1024
	sys := corepythia.New(g.DB(), cfg)
	sys.Train("t91", w.Instances)
	srv := mustServer(t, g.DB(), sys, NewMetrics(nil), Options{Quantize: true})
	t.Cleanup(srv.Close)

	first := predictOK(t, srv, w, 0)
	if first.Fallback {
		t.Fatalf("quantized server fell back: %+v", first)
	}
	second := predictOK(t, srv, w, 0)
	if !second.Cached || !reflect.DeepEqual(second.Pages, first.Pages) {
		t.Fatalf("quantized cache hit diverges: %+v vs %+v", second, first)
	}
}
