package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/storage"
)

// qualityWindowSize is each replica's sliding feedback-score window: fresh
// enough to reflect the current mix, deep enough that windowed precision is
// not one noisy query.
const qualityWindowSize = 512

// serveDriftEvalEvery slows the drift detector's evaluation cadence on the
// serve tier relative to the replay default. A sustained load run evaluates
// thousands of times where a replay evaluates a handful, so the detector's
// per-evaluation false-positive probability gets multiplied by a factor the
// replay tier never sees; a longer cadence both shrinks that factor and
// quadruples the decayed live sample each PSI reading is computed from.
const serveDriftEvalEvery = 64

// instance is one serving replica: an independent trained system with its
// own prediction cache, micro-batcher, circuit breaker, and bounded work
// queue. Replicas share nothing but the metrics hub, the fault gate, and the
// warm set — each holds its own model weights (clones decoded from one
// snapshot), so inference on different replicas runs truly in parallel
// instead of serializing on one model's mutex.
type instance struct {
	id   int
	gen  uint64
	sys  *corepythia.System
	opts Options

	metrics *Metrics
	fgate   *faultGate
	warm    *warmer

	// cache and batcher are the PR-6 inference fast path, now per replica:
	// consistent-hash routing sends a plan fingerprint to the same replica
	// every time, so each replica's cache holds a disjoint hot set instead of
	// N copies of the same entries. Either may be nil when disabled.
	cache   *predCache
	batcher *batcher
	breaker *breaker

	// health is the replica's self-healing state machine (see health.go):
	// the pool consults it when routing, so a quarantined replica's shard
	// fails over to ring successors until probes re-admit it.
	health *health

	// queue bounds concurrently admitted requests on this replica (nil =
	// unbounded). Routing is by plan hash, not load, so a replica stuck on a
	// slow inference sheds its own overflow instead of queueing unboundedly
	// while its siblings idle.
	queue chan struct{}

	// qmu serializes the replica's quality state: the sliding window of
	// feedback scores and the drift monitor (Monitor is not synchronized by
	// design — its other owner, the replay scorer, is single-threaded). qmon
	// is nil when the replica's system carries no training baseline (untrained
	// server, or a snapshot predating baselines) — drift detection off.
	qmu  sync.Mutex
	qwin *quality.Window
	qmon *quality.Monitor

	// missInflight counts requests currently on the miss (inference) path;
	// a miss only routes to the batcher when others are already inferring,
	// so an idle replica's p50 never pays the batch window.
	missInflight atomic.Int64
	inflight     atomic.Int64
	served       atomic.Uint64
	shed         atomic.Uint64

	closeOnce sync.Once
}

func newInstance(id int, gen uint64, sys *corepythia.System, metrics *Metrics, fgate *faultGate, warm *warmer, opts Options) *instance {
	ins := &instance{
		id: id, gen: gen, sys: sys, opts: opts,
		metrics: metrics, fgate: fgate, warm: warm,
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, metrics.Events()),
		health:  newHealth(opts.QuarantineThreshold, opts.QuarantineBackoff, opts.QuarantineProbes, metrics.Events()),
		qwin:    quality.NewWindow(qualityWindowSize),
		qmon:    quality.NewMonitor(sys.Baseline(), quality.Options{EvalEvery: serveDriftEvalEvery}),
	}
	if opts.CacheEntries > 0 {
		ins.cache = newPredCache(opts.CacheEntries, metrics.Events())
	}
	if opts.BatchWindow > 0 && opts.MaxBatch > 1 {
		ins.batcher = newBatcher(opts.BatchWindow, opts.MaxBatch)
	}
	if opts.QueueDepth > 0 {
		ins.queue = make(chan struct{}, opts.QueueDepth)
	}
	return ins
}

// predict runs the full model path for one planned query. routed reports the
// caller already matched the query once on its routing view (the pool's
// router); the replica then resolves its own Trained handle quietly with
// Lookup so one request never records two matching events.
//
// Stage order is exactly the single-server PR-6 path: bounded-queue
// admission → workload matching → prediction cache → circuit breaker →
// fault injection → (batched) inference → cache fill.
func (ins *instance) predict(ctx context.Context, q plan.Query, root *plan.Node, routed bool) (Prediction, error) {
	p := Prediction{Replica: ins.id, Generation: ins.gen}
	if ins.queue != nil {
		select {
		case ins.queue <- struct{}{}:
			defer func() { <-ins.queue }()
		default:
			// An admission shed counts as a health failure: a replica that
			// cannot accept its shard's traffic is unhealthy from the
			// router's point of view, whatever the cause.
			ins.shed.Add(1)
			ins.health.failure()
			return p, ErrSaturated
		}
	}
	ins.inflight.Add(1)
	defer ins.inflight.Add(-1)
	defer ins.served.Add(1)

	// Every admitted request feeds the drift monitor — matched or fallback:
	// a flood of unmatched plans is exactly the shift drift detection exists
	// to catch.
	ins.observeDrift(root)

	var tw *corepythia.Trained
	if routed {
		tw = ins.sys.Lookup(q)
	} else {
		tw = ins.sys.Match(q)
	}

	// Stage 1: prediction cache. Checked before the breaker and fault hooks —
	// a hit performs zero inference and cannot fail, so cached plans keep
	// answering even while the model path is degraded.
	var fp uint64
	cacheable := tw != nil && ins.cache != nil
	if cacheable {
		fp = fingerprint(tw.Name, tw.Pred.EncodePlan(root))
		ins.warm.note(fp, q, root)
		if pages, hit := ins.cache.get(fp); hit {
			// Cache hits count as health successes: a replica answering its
			// shard from cache is serving, and counting them keeps a probe
			// that happens to hit the cache from wedging quarantine.
			ins.metrics.markCache(true)
			ins.health.success()
			p.Workload = tw.Name
			p.Cached = true
			p.Pages = pages
			return p, nil
		}
		ins.metrics.markCache(false)
	}

	if tw != nil && !ins.breaker.allow() {
		// Breaker open: answer from the fallback path without touching the
		// model. The client still gets a well-formed (empty) prediction —
		// prefetching is advisory, so degraded beats unavailable.
		p.Degraded = "breaker_open"
		tw = nil
	}
	if tw == nil {
		p.Fallback = true
		return p, nil
	}
	if ins.fgate.fireModel(ins.id) {
		ins.breaker.failure()
		ins.health.failure()
		return p, errModelFault
	}
	p.Workload = tw.Name
	pages, err := ins.infer(ctx, tw, root)
	if err != nil {
		return p, err
	}
	if cacheable {
		// Only successful inferences populate the cache; faulted or
		// timed-out requests never do, so the cache cannot serve poison.
		ins.cache.put(fp, pages)
	}
	p.Pages = pages
	return p, nil
}

// infer runs the miss (inference) path. Stage 2 routing: a miss that arrives
// while other misses are in flight joins the micro-batcher; otherwise it
// runs the single-plan inference directly, so an idle replica never pays the
// batch window. Either way the slow step runs off the caller's goroutine so
// a disconnected client (or an expired budget) aborts the wait, not the
// work. Context errors come back verbatim for the Server to map to 504/499.
func (ins *instance) infer(ctx context.Context, tw *corepythia.Trained, root *plan.Node) ([]storage.PageID, error) {
	n := ins.missInflight.Add(1)
	defer ins.missInflight.Add(-1)
	done := make(chan batchRes, 1)
	if !(n > 1 && ins.batcher != nil && ins.batcher.enqueue(batchReq{tw: tw, root: root, res: done})) {
		//pythia:goleak-ok one-shot inference; done is buffered so the sender exits even when the select below took the ctx branch
		go func() { done <- batchRes{pages: tw.Pred.PredictParallel(root), size: 1} }()
	}
	select {
	case res := <-done:
		ins.breaker.success()
		ins.health.success()
		if rec := ins.metrics.Events(); rec != nil {
			rec.Record(obs.Event{Kind: obs.InferenceRun})
			if res.size > 1 {
				rec.Record(obs.Event{Kind: obs.InferenceBatched})
			}
		}
		return ins.sys.LimitPrefetch(res.pages), nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// A deadline miss is a model-path failure; a canceled request
			// (client gone, or a hedge loser) says nothing about the replica
			// and records neither way.
			ins.metrics.timeouts.Add(1)
			ins.breaker.failure()
			ins.health.failure()
		}
		return nil, ctx.Err()
	}
}

// observeDrift folds one planned query into the replica's live distribution
// profile and surfaces any drift-state transition as obs events and span
// marks. One mutex acquisition when armed; a nil-check when not.
func (ins *instance) observeDrift(root *plan.Node) {
	if ins.qmon == nil {
		return
	}
	ins.qmu.Lock()
	tr := ins.qmon.Observe(corepythia.DriftTokens(root))
	ins.qmu.Unlock()
	if !tr.Changed {
		return
	}
	if rec := ins.metrics.Events(); rec != nil {
		rec.Record(obs.Event{Kind: quality.DriftEventKind(tr.To), Query: obs.NoQuery})
	}
	ins.metrics.markDrift(quality.DriftMarkKind(tr.To))
}

// feedback folds one scored prediction into the replica's quality window
// (called by the server when /v1/feedback resolves to this replica).
func (ins *instance) feedback(sc quality.Score) {
	ins.qmu.Lock()
	ins.qwin.Add(sc)
	ins.qmu.Unlock()
}

// status reports this replica's row for InfStatus.
func (ins *instance) status() ReplicaStatus {
	st := ReplicaStatus{
		ID:           ins.id,
		Generation:   ins.gen,
		Served:       ins.served.Load(),
		Shed:         ins.shed.Load(),
		InFlight:     ins.inflight.Load(),
		QueueDepth:   cap(ins.queue),
		Breaker:      ins.breaker.State(),
		BreakerValue: ins.breaker.stateValue(),
		Health:       ins.health.State(),
		HealthValue:  ins.health.stateValue(),
		Workloads:    workloadNames(ins.sys),
	}
	for _, tw := range ins.sys.Workloads() {
		st.Params += tw.Pred.ParamCount()
	}
	if ins.cache != nil {
		st.CacheEntries = ins.cache.len()
		st.CacheCapacity = ins.cache.capacity()
		st.CacheHits = ins.cache.hits.Load()
		st.CacheMisses = ins.cache.misses.Load()
		st.CacheEvictions = ins.cache.evictions.Load()
	}
	if ins.batcher != nil {
		st.Batches = ins.batcher.batches.Load()
		st.BatchedReqs = ins.batcher.batched.Load()
	}
	ins.qmu.Lock()
	st.QualityScored = ins.qwin.Seen()
	st.Precision = ins.qwin.Precision()
	st.Recall = ins.qwin.Recall()
	st.Drift = ins.qmon.Stats()
	ins.qmu.Unlock()
	return st
}

// serving reports whether the pool should route normal traffic here: the
// replica is not quarantined and its breaker is not open inside an
// unelapsed cooldown (a cooldown-elapsed open breaker still takes traffic —
// the trial request is what lets it half-open).
func (ins *instance) serving() bool {
	return ins.health.serving() && !ins.breaker.blocked()
}

// close stops the replica's micro-batch collector (requests keep working on
// the direct path afterwards). Safe to call more than once.
func (ins *instance) close() {
	ins.closeOnce.Do(func() {
		if ins.batcher != nil {
			ins.batcher.close()
		}
	})
}

// drainInstance waits (bounded by timeout) for a superseded replica's
// in-flight requests to finish, then tears it down. Closing a batcher whose
// replica still has stragglers is safe — enqueue on a closed batcher reports
// false and the request completes on the direct path.
func drainInstance(ins *instance, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for ins.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ins.close()
}

// warmThrough replays the warm set through freshly built instances: pick
// maps each recorded fingerprint to its new replica (identity for a single
// instance, the hash ring for a pool) and each entry runs one quiet routed
// prediction there, populating the new generation's caches before it takes
// traffic. Failures are ignored — warming is best-effort by design.
func warmThrough(entries []warmEntry, timeout time.Duration, pick func(fp uint64) *instance) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	for _, e := range entries {
		ins := pick(e.fp)
		if ins == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		if _, err := ins.predict(ctx, e.q, e.root, true); err != nil {
			// Best-effort: a faulted or slow warm-up prediction just means a
			// cold first request for that plan.
			_ = err
		}
		cancel()
	}
}
