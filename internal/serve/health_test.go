package serve

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
)

// healthHarness builds a health tracker on a settable fake clock plus a
// recorder to observe its lifecycle events.
func healthHarness(threshold int, backoff time.Duration, probes int) (*health, *time.Time, *Metrics) {
	m := NewMetrics(nil)
	h := newHealth(threshold, backoff, probes, m.Events())
	now := time.Unix(0, 0)
	h.now = func() time.Time { return now }
	return h, &now, m
}

// TestHealthLifecycle walks the full state machine on a fake clock:
// healthy → degraded → quarantined → probe → probation → healthy, with the
// matching events recorded at each transition.
func TestHealthLifecycle(t *testing.T) {
	h, now, m := healthHarness(4, time.Second, 2)
	if !h.serving() || h.State() != "healthy" {
		t.Fatalf("fresh tracker not healthy: %s", h.State())
	}

	// degradeAt = ⌈4/2⌉ = 2 window failures mark degraded; still serving.
	h.failure()
	if h.State() != "healthy" {
		t.Fatalf("one failure already moved state: %s", h.State())
	}
	h.failure()
	if h.State() != "degraded" || !h.serving() {
		t.Fatalf("after degradeAt failures: state=%s serving=%v", h.State(), h.serving())
	}

	// Successes dilute the window back below degradeAt → healthy again.
	for i := 0; i < healthWindow; i++ {
		h.success()
	}
	if h.State() != "healthy" {
		t.Fatalf("successes did not clear degraded: %s", h.State())
	}

	// threshold failures quarantine; the replica stops serving.
	for i := 0; i < 4; i++ {
		h.failure()
	}
	if h.State() != "quarantined" || h.serving() {
		t.Fatalf("after threshold failures: state=%s serving=%v", h.State(), h.serving())
	}

	// No probe inside the backoff; exactly one probe once it elapses (the
	// admission resets the timer, so a second immediate probe is refused).
	if h.allowProbe() {
		t.Fatal("probe admitted before backoff elapsed")
	}
	*now = now.Add(time.Second)
	if !h.allowProbe() {
		t.Fatal("probe refused after backoff elapsed")
	}
	if h.allowProbe() {
		t.Fatal("second probe admitted in the same backoff window")
	}

	// Probe failure: still quarantined, backoff doubled to 2s.
	h.failure()
	*now = now.Add(time.Second)
	if h.allowProbe() {
		t.Fatal("probe admitted before the doubled backoff elapsed")
	}
	*now = now.Add(time.Second)
	if !h.allowProbe() {
		t.Fatal("probe refused after the doubled backoff elapsed")
	}

	// Probe success → probation (serving again); one more consecutive
	// success → healthy with a ReplicaRecovered event.
	h.success()
	if h.State() != "probation" || !h.serving() {
		t.Fatalf("after probe success: state=%s serving=%v", h.State(), h.serving())
	}
	h.success()
	if h.State() != "healthy" {
		t.Fatalf("after %d probe successes: %s", 2, h.State())
	}
	// Recovery reset the window: one stale failure must not re-degrade.
	h.failure()
	if h.State() != "healthy" {
		t.Fatalf("recovered tracker degraded on a single failure: %s", h.State())
	}

	// Two degradations (one before quarantine in each unhealthy phase), one
	// quarantine, two probes (the refused ones record nothing), one recovery.
	snap := m.Events().Snapshot()
	if snap.Get(obs.ReplicaDegraded) != 2 || snap.Get(obs.ReplicaQuarantined) != 1 ||
		snap.Get(obs.ReplicaProbe) != 2 || snap.Get(obs.ReplicaRecovered) != 1 {
		t.Fatalf("lifecycle events wrong: degraded=%d quarantined=%d probe=%d recovered=%d",
			snap.Get(obs.ReplicaDegraded), snap.Get(obs.ReplicaQuarantined),
			snap.Get(obs.ReplicaProbe), snap.Get(obs.ReplicaRecovered))
	}
}

// TestHealthProbationFailureRequarantines: a failure during probation drops
// straight back to quarantined and doubles the backoff — a flapping replica
// is probed ever less often.
func TestHealthProbationFailureRequarantines(t *testing.T) {
	h, now, m := healthHarness(2, time.Second, 3)
	h.failure()
	h.failure()
	if h.State() != "quarantined" {
		t.Fatalf("state %s, want quarantined", h.State())
	}
	*now = now.Add(time.Second)
	if !h.allowProbe() {
		t.Fatal("probe refused")
	}
	h.success()
	if h.State() != "probation" {
		t.Fatalf("state %s, want probation", h.State())
	}
	h.failure()
	if h.State() != "quarantined" || h.serving() {
		t.Fatalf("probation failure: state=%s serving=%v", h.State(), h.serving())
	}
	// Backoff doubled: 1s is not enough, 2s is.
	*now = now.Add(time.Second)
	if h.allowProbe() {
		t.Fatal("probe admitted before doubled backoff")
	}
	*now = now.Add(time.Second)
	if !h.allowProbe() {
		t.Fatal("probe refused after doubled backoff")
	}
	if snap := m.Events().Snapshot(); snap.Get(obs.ReplicaQuarantined) != 2 {
		t.Fatalf("quarantine events = %d, want 2", snap.Get(obs.ReplicaQuarantined))
	}
}

// TestHealthBackoffCap: repeated probe failures double the backoff only up to
// 16× the base.
func TestHealthBackoffCap(t *testing.T) {
	h, now, _ := healthHarness(1, time.Second, 1)
	h.failure() // quarantine, backoff 1s
	for i := 0; i < 10; i++ {
		*now = now.Add(time.Hour) // always past any backoff
		if !h.allowProbe() {
			t.Fatalf("round %d: probe refused", i)
		}
		h.failure()
	}
	h.mu.Lock()
	cur := h.curBackoff
	h.mu.Unlock()
	if cur != 16*time.Second {
		t.Fatalf("backoff after 10 failed probes = %v, want capped 16s", cur)
	}
	// Recovery resets the backoff to the base for the next quarantine.
	*now = now.Add(time.Hour)
	if !h.allowProbe() {
		t.Fatal("probe refused")
	}
	h.success()
	if h.State() != "healthy" {
		t.Fatalf("state %s, want healthy", h.State())
	}
	h.failure() // threshold 1: immediate re-quarantine
	h.mu.Lock()
	cur = h.curBackoff
	h.mu.Unlock()
	if cur != time.Second {
		t.Fatalf("backoff after recovery = %v, want base 1s", cur)
	}
}

// TestHealthDisabled: a zero threshold turns the tracker off — always
// serving, never probing, no state changes, and a nil tracker is safe.
func TestHealthDisabled(t *testing.T) {
	h := newHealth(0, time.Second, 3, nil)
	for i := 0; i < 100; i++ {
		h.failure()
	}
	if !h.serving() || h.State() != "healthy" || h.allowProbe() {
		t.Fatalf("disabled tracker changed state: %s", h.State())
	}
	var nilH *health
	nilH.failure()
	nilH.success()
	if !nilH.serving() || nilH.allowProbe() || nilH.stateValue() != healthHealthy {
		t.Fatal("nil tracker not inert")
	}
}
