package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
)

// poolOf unwraps the server's Inferencer as a Pool.
func poolOf(t *testing.T, srv *Server) *Pool {
	t.Helper()
	p, ok := srv.inf.(*Pool)
	if !ok {
		t.Fatalf("inferencer is %T, want *Pool", srv.inf)
	}
	return p
}

// TestPoolReroutesAroundBlockedReplica pins the satellite contract: with one
// replica's breaker forced open (inside its cooldown), requests whose plans
// that replica owns reroute to ring successors — still 200, counted as
// failovers — and the successor's cache absorbs the shard, so repeats are
// hits. When the breaker un-blocks, traffic returns to the owner.
func TestPoolReroutesAroundBlockedReplica(t *testing.T) {
	base, w := testServer(t)
	m := NewMetrics(nil)
	srv := mustServer(t, base.db, fixtureSys, m, Options{Replicas: 3})
	t.Cleanup(srv.Close)
	insts := distinctInstances(t, srv, w, 6)

	// Round 1 maps each plan to its owning replica (and warms owner caches).
	owner := map[int]int{}
	for _, i := range insts {
		owner[i] = predictOK(t, srv, w, i).Replica
	}
	target := owner[insts[0]]

	// Force the target's breaker open on a fake clock: open inside an
	// unelapsed cooldown means blocked, so the pool must route around it.
	p := poolOf(t, srv)
	ins := p.cur.Load().instances[target]
	now := time.Unix(0, 0)
	ins.breaker.now = func() time.Time { return now }
	for i := 0; i < srv.opts.BreakerThreshold; i++ {
		ins.breaker.failure()
	}
	if !ins.breaker.blocked() {
		t.Fatalf("breaker state %s not blocked after %d failures", ins.breaker.State(), srv.opts.BreakerThreshold)
	}

	// Every plan still answers 200; the target's shard lands on successors.
	rerouted := map[int]int{}
	for _, i := range insts {
		resp := predictOK(t, srv, w, i)
		if resp.Fallback {
			t.Fatalf("instance %d: fallback while 2/3 replicas are healthy: %+v", i, resp)
		}
		if resp.Replica == target {
			t.Fatalf("instance %d: routed to the blocked replica %d", i, target)
		}
		rerouted[i] = resp.Replica
	}
	if m.failovers.Load() == 0 {
		t.Fatal("rerouting recorded no failovers")
	}
	if snap := m.Events().Snapshot(); snap.Get(obs.ReplicaFailover) == 0 {
		t.Fatal("no replica_failover events recorded")
	}

	// Hit-rate recovery: the successor cached the rerouted shard, so repeats
	// are cache hits on the same successor.
	for _, i := range insts {
		if owner[i] != target {
			continue
		}
		again := predictOK(t, srv, w, i)
		if !again.Cached || again.Replica != rerouted[i] {
			t.Fatalf("instance %d: rerouted repeat cached=%v replica=%d, want hit on %d",
				i, again.Cached, again.Replica, rerouted[i])
		}
	}

	// Cooldown elapses: the half-open trial goes back to the owner, which
	// answers from its (still warm) cache and closes the breaker.
	now = now.Add(srv.opts.BreakerCooldown + time.Second)
	resp := predictOK(t, srv, w, insts[0])
	if resp.Replica != target || !resp.Cached {
		t.Fatalf("after cooldown: replica=%d cached=%v, want cached answer from owner %d",
			resp.Replica, resp.Cached, target)
	}
}

// TestReplicaShedEnvelopeParity pins the satellite contract: a replica-level
// admission shed surfaces exactly like a server-level shed — 503, Retry-After,
// and the same typed JSON envelope.
func TestReplicaShedEnvelopeParity(t *testing.T) {
	base, w := testServer(t)
	m := NewMetrics(nil)
	srv := mustServer(t, base.db, fixtureSys, m, Options{
		Replicas:     2,
		QueueDepth:   1,
		MaxFailovers: -1, // no failover: the owner's shed must reach the client
		CacheEntries: -1,
	})
	t.Cleanup(srv.Close)

	// Fill every replica's work queue so admission sheds wherever the plan
	// routes.
	p := poolOf(t, srv)
	for _, ins := range p.cur.Load().instances {
		ins.queue <- struct{}{}
	}
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("replica shed missing Retry-After")
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeOverloaded {
		t.Fatalf("envelope code %q, want %q", env.Error.Code, CodeOverloaded)
	}
	if m.sheds.Load() != 1 {
		t.Fatalf("sheds counter %d, want 1", m.sheds.Load())
	}
	var replicaSheds uint64
	for _, r := range srv.inf.Status().Replicas {
		replicaSheds += r.Shed
	}
	if replicaSheds != 1 {
		t.Fatalf("replica shed counters sum to %d, want 1", replicaSheds)
	}

	// Draining the queues restores service on the same server.
	for _, ins := range p.cur.Load().instances {
		<-ins.queue
	}
	if rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w)); rr.Code != http.StatusOK {
		t.Fatalf("post-shed status %d: %s", rr.Code, rr.Body.String())
	}
}

// TestPoolFailsOverSaturatedReplica: with failover enabled, a saturated
// owner's shard answers 200 from a ring successor instead of 503.
func TestPoolFailsOverSaturatedReplica(t *testing.T) {
	base, w := testServer(t)
	m := NewMetrics(nil)
	srv := mustServer(t, base.db, fixtureSys, m, Options{
		Replicas:     3,
		QueueDepth:   1,
		CacheEntries: -1,
	})
	t.Cleanup(srv.Close)

	first := predictOK(t, srv, w, 0)
	owner := first.Replica

	p := poolOf(t, srv)
	p.cur.Load().instances[owner].queue <- struct{}{}
	resp := predictOK(t, srv, w, 0)
	if resp.Replica == owner || resp.Fallback {
		t.Fatalf("saturated owner %d still served (or fallback): %+v", owner, resp)
	}
	if m.failovers.Load() == 0 {
		t.Fatal("failover not counted")
	}
	if shed := p.cur.Load().instances[owner].shed.Load(); shed != 1 {
		t.Fatalf("owner shed counter %d, want 1", shed)
	}
}

// TestChaosReplicaLifecycle is the acceptance drill: with a seeded replica
// fault plan killing one of three replicas' inferences, the pool quarantines
// it, fails its shard over to ring successors, re-admits it via backoff
// probes once the fault clears, and no request ever errors (0% < the 1%
// acceptance bound). Deterministic — ReplicaRate 1 targets exactly one
// replica and the probe clock is faked.
func TestChaosReplicaLifecycle(t *testing.T) {
	base, w := testServer(t)
	m := NewMetrics(nil)
	srv := mustServer(t, base.db, fixtureSys, m, Options{
		Replicas:            3,
		CacheEntries:        -1, // every request exercises the model path
		BreakerThreshold:    -1, // isolate the health machinery from the breaker
		QuarantineThreshold: 3,
		QuarantineBackoff:   time.Minute,
		QuarantineProbes:    2,
	})
	t.Cleanup(srv.Close)
	insts := distinctInstances(t, srv, w, 6)

	// Healthy round: learn which replica owns the probe plan.
	target := predictOK(t, srv, w, insts[0]).Replica
	p := poolOf(t, srv)
	ins := p.cur.Load().instances[target]
	now := time.Unix(0, 0)
	ins.health.now = func() time.Time { return now }

	// Kill the target's model path. Every request for its shard fails over:
	// the client sees 200 from a successor while the target racks up health
	// failures.
	srv.SetFault(fault.New(fault.Plan{ReplicaRate: 1, ReplicaIndex: target}, 7))
	for round := 0; round < 3; round++ {
		resp := predictOK(t, srv, w, insts[0])
		if resp.Fallback || resp.Replica == target {
			t.Fatalf("round %d: faulted replica %d answered (or fallback): %+v", round, target, resp)
		}
	}
	if st := ins.health.State(); st != "quarantined" {
		t.Fatalf("after %d faulted requests health is %s, want quarantined", 3, st)
	}

	// The topology and stats surfaces both show the quarantine.
	for _, r := range srv.inf.Status().Replicas {
		want := "healthy"
		if r.ID == target {
			want = "quarantined"
		}
		if r.Health != want {
			t.Fatalf("replica %d health %q, want %q", r.ID, r.Health, want)
		}
	}
	var stats statsResponse
	rr := doRequest(t, srv, http.MethodGet, "/stats", nil)
	if err := json.NewDecoder(rr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.HealthState != "quarantined" {
		t.Fatalf("/stats health_state %q, want quarantined", stats.HealthState)
	}
	if stats.Failovers == 0 {
		t.Fatal("/stats records no failovers")
	}

	// While quarantined (backoff unelapsed), the target is skipped outright —
	// no probe, no attempt, just a successor answering.
	if resp := predictOK(t, srv, w, insts[0]); resp.Replica == target || resp.Fallback {
		t.Fatalf("quarantined replica still serving: %+v", resp)
	}
	if snap := m.Events().Snapshot(); snap.Get(obs.ReplicaProbe) != 0 {
		t.Fatalf("%d probes admitted before the backoff elapsed", snap.Get(obs.ReplicaProbe))
	}

	// Fault clears and the backoff elapses: the next request is the probe,
	// served by the target itself; QuarantineProbes consecutive successes
	// re-admit it.
	srv.SetFault(nil)
	now = now.Add(time.Minute)
	for i := 0; i < 2; i++ {
		resp := predictOK(t, srv, w, insts[0])
		if resp.Replica != target || resp.Fallback {
			t.Fatalf("probe %d: served by %d, want recovering target %d", i, resp.Replica, target)
		}
	}
	if st := ins.health.State(); st != "healthy" {
		t.Fatalf("after %d probe successes health is %s, want healthy", 2, st)
	}
	for _, r := range srv.inf.Status().Replicas {
		if r.Health != "healthy" {
			t.Fatalf("replica %d health %q after recovery", r.ID, r.Health)
		}
	}

	// The full lifecycle left its event trail: quarantine, probe, recovery,
	// and at least one failover per faulted round.
	snap := m.Events().Snapshot()
	if snap.Get(obs.ReplicaQuarantined) < 1 || snap.Get(obs.ReplicaProbe) < 1 ||
		snap.Get(obs.ReplicaRecovered) < 1 || snap.Get(obs.ReplicaFailover) < 3 {
		t.Fatalf("lifecycle events wrong: quarantined=%d probe=%d recovered=%d failover=%d",
			snap.Get(obs.ReplicaQuarantined), snap.Get(obs.ReplicaProbe),
			snap.Get(obs.ReplicaRecovered), snap.Get(obs.ReplicaFailover))
	}
	// Every request in this drill answered 200 (predictInstance fails the
	// test otherwise): the end-to-end error rate is 0%, within the 1% bound.
}

// TestPoolDegradedWhenAllQuarantined: when every candidate replica is
// quarantined with no probe due, the pool answers the degraded fallback —
// prefetching is advisory, so degraded beats unavailable.
func TestPoolDegradedWhenAllQuarantined(t *testing.T) {
	base, w := testServer(t)
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{
		Replicas:            2,
		QuarantineThreshold: 1,
		QuarantineBackoff:   time.Hour, // no probe within the test's lifetime
		CacheEntries:        -1,
	})
	t.Cleanup(srv.Close)

	p := poolOf(t, srv)
	for _, ins := range p.cur.Load().instances {
		ins.health.failure()
	}
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback || resp.Degraded != "no_healthy_replica" || resp.Replica != -1 {
		t.Fatalf("all-quarantined response %+v, want degraded fallback", resp)
	}
}

// TestSwapRollbackOnReplicaBuildFault pins the transactional-swap contract:
// an injected fault while building one standby replica fails the whole swap,
// tears the partial standby down, and leaves the old generation serving
// untouched. Clearing the fault lets the same snapshot swap cleanly.
func TestSwapRollbackOnReplicaBuildFault(t *testing.T) {
	base, w := testServer(t)
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{Replicas: 2})
	t.Cleanup(srv.Close)
	var snap bytes.Buffer
	if err := fixtureSys.Save(&snap); err != nil {
		t.Fatal(err)
	}

	srv.SetFault(fault.New(fault.Plan{ReplicaRate: 1, ReplicaIndex: 1}, 42))
	err := srv.inf.Swap(bytes.NewReader(snap.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "standby replica 1") {
		t.Fatalf("swap error = %v, want standby replica 1 build fault", err)
	}
	st := srv.inf.Status()
	if st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("failed swap moved the generation: %+v", st)
	}
	srv.SetFault(nil)
	if resp := predictOK(t, srv, w, 0); resp.Fallback || resp.Generation != 1 {
		t.Fatalf("old generation degraded after rolled-back swap: %+v", resp)
	}

	// Same snapshot, fault cleared: the swap completes.
	if err := srv.inf.Swap(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("post-rollback swap: %v", err)
	}
	if st := srv.inf.Status(); st.Generation != 2 || st.Swaps != 1 {
		t.Fatalf("post-rollback swap state: %+v", st)
	}
}

// TestAdminReloadCorruptSnapshot pins the satellite contract: reloading from
// a truncated or zero-length snapshot answers a typed 422 envelope and the
// old generation keeps serving.
func TestAdminReloadCorruptSnapshot(t *testing.T) {
	base, w := testServer(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	var buf bytes.Buffer
	if err := fixtureSys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.snap")
	if err := os.WriteFile(truncated, buf.Bytes()[:20], 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.snap")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{Replicas: 2, SnapshotPath: good})
	t.Cleanup(srv.Close)

	for _, path := range []string{truncated, empty} {
		rr := doRequest(t, srv, http.MethodPost, "/v1/admin/reload",
			strings.NewReader(`{"path":`+jsonQuote(path)+`}`))
		if rr.Code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d: %s", filepath.Base(path), rr.Code, rr.Body.String())
		}
		if env := decodeEnvelope(t, rr); env.Error.Code != CodeSnapshotCorrupt {
			t.Fatalf("%s: envelope code %q, want %q", filepath.Base(path), env.Error.Code, CodeSnapshotCorrupt)
		}
	}
	st := srv.inf.Status()
	if st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("corrupt reloads moved the generation: %+v", st)
	}
	if resp := predictOK(t, srv, w, 0); resp.Fallback || resp.Generation != 1 {
		t.Fatalf("old generation degraded after corrupt reloads: %+v", resp)
	}

	// The intact file still reloads on the same server.
	rr := doRequest(t, srv, http.MethodPost, "/v1/admin/reload", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("good reload status %d: %s", rr.Code, rr.Body.String())
	}
	if st := srv.inf.Status(); st.Generation != 2 {
		t.Fatalf("good reload did not swap: %+v", st)
	}
}

// TestPoolHedging: with hedging armed and a floor-level delay, requests race
// a second attempt on the ring successor. Everything still answers 200, the
// hedge counter moves, and canceled losers leave every replica healthy.
func TestPoolHedging(t *testing.T) {
	base, w := testServer(t)
	m := NewMetrics(nil)
	srv := mustServer(t, base.db, fixtureSys, m, Options{
		Replicas:     2,
		HedgeAfter:   time.Nanosecond, // hedge essentially immediately
		CacheEntries: -1,              // keep both attempts on the inference path
	})
	t.Cleanup(srv.Close)
	insts := distinctInstances(t, srv, w, 4)

	for round := 0; round < 3; round++ {
		for _, i := range insts {
			resp := predictOK(t, srv, w, i)
			if resp.Fallback {
				t.Fatalf("hedged request %d degraded: %+v", i, resp)
			}
		}
	}
	if m.hedges.Load() == 0 {
		t.Fatal("no hedges launched with a 1ns hedge delay")
	}
	// Losers were canceled, not failed: nothing quarantined, breakers closed.
	for _, r := range srv.inf.Status().Replicas {
		if r.Health != "healthy" || r.Breaker != "closed" {
			t.Fatalf("replica %d after hedging: health=%s breaker=%s", r.ID, r.Health, r.Breaker)
		}
	}
	var stats statsResponse
	rr := doRequest(t, srv, http.MethodGet, "/stats", nil)
	if err := json.NewDecoder(rr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hedges == 0 {
		t.Fatal("/stats request_hedges is zero")
	}
}
