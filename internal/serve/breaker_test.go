package serve

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
)

// TestBreakerStateMachineOnFakeClock drives the breaker's full state machine
// directly — no HTTP layer, no fault injector, and crucially no sleeping:
// the entire test runs on the injected now clock, advancing a variable where
// real time would pass. The HTTP-level companion is
// TestBreakerOpensHalfOpensCloses in resilience_test.go.
func TestBreakerStateMachineOnFakeClock(t *testing.T) {
	counters := &obs.AtomicCounters{}
	b := newBreaker(3, time.Minute, counters)
	now := time.Unix(1_700_000_000, 0)
	b.now = func() time.Time { return now }

	if !b.allow() || b.State() != "closed" {
		t.Fatalf("fresh breaker: allow=%v state=%s, want allowed+closed", b.allow(), b.State())
	}

	// Failures below the threshold leave it closed; a success resets the
	// consecutive count so the streak must be rebuilt from zero.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.State() != "closed" {
		t.Fatalf("state %s after interrupted failure streak, want closed", b.State())
	}

	// The third consecutive failure trips it open at the current fake time.
	b.failure()
	if b.State() != "open" {
		t.Fatalf("state %s after threshold failures, want open", b.State())
	}
	if b.allow() {
		t.Fatal("open breaker allowed the model path before cooldown")
	}

	// One tick short of the cooldown it is still open.
	now = now.Add(time.Minute - time.Nanosecond)
	if b.allow() {
		t.Fatal("breaker half-opened before the cooldown elapsed")
	}

	// At the cooldown boundary allow() half-opens and admits a trial; a
	// failed trial re-opens immediately (no new streak needed) and restarts
	// the cooldown from the fake clock's current reading.
	now = now.Add(time.Nanosecond)
	if !b.allow() || b.State() != "half_open" {
		t.Fatalf("allow=%v state=%s at cooldown expiry, want trial+half_open", b.allow(), b.State())
	}
	b.failure()
	if b.State() != "open" {
		t.Fatalf("state %s after failed trial, want open", b.State())
	}
	if b.allow() {
		t.Fatal("re-opened breaker allowed the model path without a fresh cooldown")
	}

	// Next cooldown expires; a successful trial closes it for good.
	now = now.Add(time.Minute)
	if !b.allow() || b.State() != "half_open" {
		t.Fatalf("allow=%v state=%s after second cooldown, want trial+half_open", b.allow(), b.State())
	}
	b.success()
	if b.State() != "closed" || !b.allow() {
		t.Fatalf("state %s after successful trial, want closed+allowed", b.State())
	}

	// The whole trip is visible on the event counters.
	snap := counters.Snapshot()
	if snap.Get(obs.BreakerOpen) != 2 || snap.Get(obs.BreakerHalfOpen) != 2 || snap.Get(obs.BreakerClosed) != 1 {
		t.Fatalf("event counts open=%d half=%d closed=%d, want 2/2/1",
			snap.Get(obs.BreakerOpen), snap.Get(obs.BreakerHalfOpen), snap.Get(obs.BreakerClosed))
	}
}

// TestBreakerDisabled pins the threshold<=0 escape hatch: everything is a
// no-op and the model path is always allowed.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Minute, nil)
	b.now = func() time.Time { panic("disabled breaker read the clock") }
	for i := 0; i < 5; i++ {
		b.failure()
	}
	if !b.allow() || b.State() != "closed" {
		t.Fatalf("disabled breaker: allow=%v state=%s, want allowed+closed", b.allow(), b.State())
	}
}
