package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/predictor"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/workload"
)

// benchFixture trains one medium-sized model for the serve benchmark — big
// enough that a forward pass is in the millisecond range, so the benchmark
// measures inference against the fast path rather than HTTP plumbing.
var (
	benchOnce sync.Once
	benchSys  *corepythia.System
	benchDB   = func() *dsb.Generator { return dsb.NewGenerator(dsb.Config{ScaleFactor: 16, Seed: 11}) }()
	benchW    *workload.Workload
)

func benchSystem(b *testing.B) (*corepythia.System, *workload.Workload) {
	b.Helper()
	benchOnce.Do(func() {
		benchW = benchDB.Workload("t91", 16, 1)
		mcfg := model.DefaultConfig()
		mcfg.Dim = 48
		mcfg.Heads = 8
		mcfg.Layers = 2
		mcfg.DecoderHidden = 256
		mcfg.Epochs = 2
		cfg := corepythia.DefaultConfig()
		cfg.Predictor = predictor.Options{Model: mcfg, ObservedOnly: true}
		cfg.Replay.BufferPages = 4096
		benchSys = corepythia.New(benchDB.DB(), cfg)
		benchSys.Train("t91", benchW.Instances)
	})
	return benchSys, benchW
}

// serveBenchResult is one mode's row in BENCH_serve.json.
type serveBenchResult struct {
	Mode          string  `json:"mode"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	Seconds       float64 `json:"seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	Inferences    uint64  `json:"inferences"`
	Batched       uint64  `json:"batched_requests"`
}

// serveBenchReport is the whole BENCH_serve.json document.
type serveBenchReport struct {
	Benchmark string             `json:"benchmark"`
	Workload  string             `json:"workload"`
	Plans     int                `json:"distinct_plans"`
	Results   []serveBenchResult `json:"results"`
	Speedup   struct {
		Throughput float64 `json:"throughput"`
		P50        float64 `json:"p50"`
	} `json:"speedup_cached_vs_uncached"`
}

var serveBenchResults []serveBenchResult

// BenchmarkServePredict drives a real HTTP server (httptest.NewServer, so
// the full mux, instrumentation, and JSON round trip are on the clock) at
// fixed concurrency with a repeated-plan workload — the DSB steady state the
// prediction cache exists for. Two modes: the uncached/unbatched baseline and
// the default fast path. After both run, the comparison is written to
// BENCH_serve.json (override the path with BENCH_SERVE_OUT).
func BenchmarkServePredict(b *testing.B) {
	sys, w := benchSystem(b)
	const concurrency = 8
	const distinctPlans = 4
	modes := []struct {
		name string
		opts Options
	}{
		{"uncached", Options{CacheEntries: -1, BatchWindow: -1}},
		{"cached", Options{}},
	}
	serveBenchResults = serveBenchResults[:0]
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			srv := mustServer(b, benchDB.DB(), sys, NewMetrics(nil), mode.opts)
			defer srv.Close()
			insts := distinctInstances(b, srv, w, distinctPlans)
			bodies := make([][]byte, len(insts))
			for k, i := range insts {
				bodies[k] = specBody(b, spec.FromQuery(w.Instances[i].Query)).Bytes()
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()
			url := ts.URL + "/v1/predict"

			var next atomic.Int64
			lats := make([][]time.Duration, concurrency)
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for g := 0; g < concurrency; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for {
						idx := next.Add(1) - 1
						if idx >= int64(b.N) {
							return
						}
						body := bodies[idx%int64(len(bodies))]
						t0 := time.Now()
						resp, err := client.Post(url, "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
						lats[g] = append(lats[g], time.Since(t0))
					}
				}(g)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if b.Failed() {
				return
			}

			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(p float64) float64 {
				if len(all) == 0 {
					return 0
				}
				return float64(all[int(p*float64(len(all)-1))].Microseconds()) / 1000
			}
			snap := srv.metrics.Events().Snapshot()
			res := serveBenchResult{
				Mode:          mode.name,
				Requests:      b.N,
				Concurrency:   concurrency,
				Seconds:       elapsed.Seconds(),
				ThroughputRPS: float64(b.N) / elapsed.Seconds(),
				P50MS:         pct(0.50),
				P99MS:         pct(0.99),
				CacheHits:     snap.Get(obs.PredCacheHit),
				CacheMisses:   snap.Get(obs.PredCacheMiss),
				Inferences:    snap.Get(obs.InferenceRun),
				Batched:       snap.Get(obs.InferenceBatched),
			}
			b.ReportMetric(res.ThroughputRPS, "req/s")
			b.ReportMetric(res.P50MS, "p50-ms")
			serveBenchResults = append(serveBenchResults, res)
		})
	}
	writeServeBench(b, w, distinctPlans)
}

// writeServeBench emits BENCH_serve.json once both modes have final numbers
// (the harness reruns sub-benchmarks with growing b.N; the last, largest run
// of each mode is what lands in serveBenchResults when the parent finishes).
func writeServeBench(b *testing.B, w *workload.Workload, plans int) {
	var uncached, cached *serveBenchResult
	for i := range serveBenchResults {
		switch serveBenchResults[i].Mode {
		case "uncached":
			uncached = &serveBenchResults[i]
		case "cached":
			cached = &serveBenchResults[i]
		}
	}
	if uncached == nil || cached == nil {
		return
	}
	report := serveBenchReport{
		Benchmark: "BenchmarkServePredict",
		Workload:  w.Name,
		Plans:     plans,
		Results:   []serveBenchResult{*uncached, *cached},
	}
	if cached.Seconds > 0 && uncached.ThroughputRPS > 0 {
		report.Speedup.Throughput = cached.ThroughputRPS / uncached.ThroughputRPS
	}
	if cached.P50MS > 0 {
		report.Speedup.P50 = uncached.P50MS / cached.P50MS
	}
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		out = "BENCH_serve.json"
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH_serve.json: throughput speedup %.1fx, p50 speedup %.1fx (%s)\n",
		report.Speedup.Throughput, report.Speedup.P50, out)
}
