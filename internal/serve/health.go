package serve

import (
	"sync"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
)

// Replica health states, in gauge order (the value exported as
// pythia_replica_health). Higher is sicker.
const (
	healthHealthy     = 0
	healthDegraded    = 1
	healthProbation   = 2
	healthQuarantined = 3
)

var healthStateNames = [...]string{"healthy", "degraded", "probation", "quarantined"}

// healthWindow is the sliding outcome window each replica's health tracker
// keeps: the last healthWindow model-path outcomes (successes, failures, and
// admission sheds) decide degradation and quarantine. Small and fixed so the
// tracker is a ring of booleans, not a timestamped log.
const healthWindow = 16

// health is one replica's self-healing state machine, layered above the
// circuit breaker. The breaker protects the model path inside a replica (trip
// on consecutive errors, answer fallback); health governs whether the pool
// routes to the replica at all:
//
//	healthy ──(window failures ≥ ⌈threshold/2⌉)──▶ degraded
//	degraded ──(window failures ≥ threshold)────▶ quarantined
//	quarantined ──(backoff elapses)─────────────▶ one probe admitted
//	probe success ─────────────────────────────▶ probation
//	probation ──(probes consecutive successes)──▶ healthy  [ReplicaRecovered]
//	probe/probation failure ───────────────────▶ quarantined, backoff ×2
//
// Degraded replicas keep serving (the state is a leading indicator on
// /stats); quarantined replicas receive no routed traffic — the ring fails
// their shard over to successors — except for the single backoff-gated probe
// that tests recovery. Outcomes recorded while quarantined can only be probe
// outcomes, because probes are the only traffic admitted.
//
// Like the breaker, health never calls time.Now directly: the injected now
// field lets tests drive backoff expiry by advancing a variable. A zero
// threshold disables tracking entirely (the replica always reports healthy).
type health struct {
	threshold  int           // window failures that quarantine; 0 disables
	degradeAt  int           // window failures that mark degraded
	backoff    time.Duration // initial probe backoff
	maxBackoff time.Duration // backoff doubling cap
	probes     int           // consecutive probe successes to re-admit
	rec        obs.Recorder
	now        func() time.Time // injected clock; time.Now outside tests

	mu            sync.Mutex
	state         int
	window        [healthWindow]bool // true = failure
	windowLen     int
	windowNext    int
	failures      int // failures currently in the window
	quarantinedAt time.Time
	curBackoff    time.Duration
	probeWins     int // consecutive probation successes
}

func newHealth(threshold int, backoff time.Duration, probes int, rec obs.Recorder) *health {
	h := &health{
		threshold:  threshold,
		degradeAt:  (threshold + 1) / 2,
		backoff:    backoff,
		maxBackoff: 16 * backoff,
		probes:     probes,
		rec:        rec,
		now:        time.Now,
	}
	if h.probes < 1 {
		h.probes = 1
	}
	return h
}

//pythia:noalloc
func (h *health) record(k obs.Kind) {
	if h.rec != nil {
		h.rec.Record(obs.Event{Kind: k, Query: obs.NoQuery})
	}
}

// slide pushes one outcome into the window and returns the failure count.
//
//pythia:noalloc
func (h *health) slide(failed bool) int {
	if h.windowLen == healthWindow {
		if h.window[h.windowNext] {
			h.failures--
		}
	} else {
		h.windowLen++
	}
	h.window[h.windowNext] = failed
	if failed {
		h.failures++
	}
	h.windowNext = (h.windowNext + 1) % healthWindow
	return h.failures
}

// resetWindow clears the outcome window (used on recovery so one stale
// failure cannot instantly re-degrade a just-readmitted replica).
func (h *health) resetWindow() {
	h.window = [healthWindow]bool{}
	h.windowLen, h.windowNext, h.failures = 0, 0, 0
}

// success records one healthy model-path outcome (including prediction-cache
// hits — a replica that answers from cache is serving its shard).
//
//pythia:noalloc
func (h *health) success() {
	if h == nil || h.threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case healthQuarantined:
		// The only admitted traffic was a probe; one success starts probation.
		h.state = healthProbation
		h.probeWins = 1
		h.maybeRecover()
	case healthProbation:
		h.probeWins++
		h.maybeRecover()
	default:
		if h.slide(false) < h.degradeAt && h.state == healthDegraded {
			h.state = healthHealthy
		}
	}
}

// maybeRecover promotes a probation replica back to healthy once it has the
// required consecutive successes. Caller holds h.mu.
func (h *health) maybeRecover() {
	if h.probeWins < h.probes {
		return
	}
	h.state = healthHealthy
	h.curBackoff = 0
	h.probeWins = 0
	h.resetWindow()
	h.record(obs.ReplicaRecovered)
}

// failure records one failed model-path outcome (an inference fault, a
// deadline miss, or an admission shed — a replica that cannot accept its
// shard's traffic is unhealthy from the router's point of view).
//
//pythia:noalloc
func (h *health) failure() {
	if h == nil || h.threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case healthQuarantined:
		// A probe failed: stay quarantined and back off harder.
		h.requarantine()
	case healthProbation:
		h.state = healthQuarantined
		h.requarantine()
		h.record(obs.ReplicaQuarantined)
	default:
		fails := h.slide(true)
		if fails >= h.threshold {
			h.state = healthQuarantined
			h.curBackoff = 0
			h.requarantine()
			h.record(obs.ReplicaQuarantined)
		} else if fails >= h.degradeAt && h.state == healthHealthy {
			h.state = healthDegraded
			h.record(obs.ReplicaDegraded)
		}
	}
}

// requarantine restarts the probe backoff clock, doubling the delay (capped)
// so a persistently sick replica is probed ever less often. Caller holds
// h.mu.
func (h *health) requarantine() {
	h.quarantinedAt = h.now()
	h.probeWins = 0
	if h.curBackoff == 0 {
		h.curBackoff = h.backoff
	} else if h.curBackoff < h.maxBackoff {
		h.curBackoff *= 2
	}
	h.resetWindow()
}

// serving reports whether the replica may receive normally routed traffic
// (everything but quarantined).
//
//pythia:noalloc
func (h *health) serving() bool {
	if h == nil || h.threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state != healthQuarantined
}

// allowProbe admits one probe request to a quarantined replica whose backoff
// has elapsed. Admission restarts the backoff clock, so at most one probe is
// in flight per backoff window regardless of traffic — the single-flight
// guard cannot wedge, because it is a timer, not a flag an outcome must
// clear.
//
//pythia:noalloc
func (h *health) allowProbe() bool {
	if h == nil || h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != healthQuarantined {
		return false
	}
	if h.now().Sub(h.quarantinedAt) < h.curBackoff {
		return false
	}
	h.quarantinedAt = h.now()
	h.record(obs.ReplicaProbe)
	return true
}

// stateValue returns the state as the gauge value (healthy=0, degraded=1,
// probation=2, quarantined=3).
func (h *health) stateValue() int {
	if h == nil || h.threshold <= 0 {
		return healthHealthy
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// State returns the state's name for /stats.
func (h *health) State() string { return healthStateNames[h.stateValue()] }
