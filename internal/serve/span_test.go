package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
)

// TestHTTPSpansRecorded drives the golden request sequence through a server
// with a span tracer attached and checks each recorded HTTP span: endpoint
// label, status detail, and epoch-relative virtual timestamps derived from
// the fake clock (every clock reading steps 1ms, and instrument reads it
// twice per request).
func TestHTTPSpansRecorded(t *testing.T) {
	srv := goldenServer(t)
	tracer := span.NewSync()
	srv.metrics.SetTracer(tracer)

	doRequest(t, srv, http.MethodGet, "/v1/healthz", nil)
	doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":`))
	doRequest(t, srv, http.MethodGet, "/metrics", nil)

	spans := tracer.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// The fake clock steps 1ms per reading and setClock consumed the epoch
	// reading; healthz and metrics each read the clock once more inside their
	// handlers (uptime), so the exact bounds below pin the whole reading
	// sequence.
	ms := func(n int) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }
	want := []struct {
		label      string
		status     uint32
		start, end sim.Time
	}{
		{"healthz", http.StatusOK, ms(1), ms(3)},
		{"predict", http.StatusBadRequest, ms(4), ms(5)},
		{"metrics", http.StatusOK, ms(6), ms(8)},
	}
	for i, w := range want {
		s := spans[i]
		if s.Kind != span.HTTPSpan {
			t.Errorf("span %d kind = %v", i, s.Kind)
		}
		if s.Label != w.label || s.Detail != w.status {
			t.Errorf("span %d = %q/%d, want %q/%d", i, s.Label, s.Detail, w.label, w.status)
		}
		if s.Query != span.NoQuery {
			t.Errorf("span %d attributed to query %d", i, s.Query)
		}
		if s.Start != w.start || s.End != w.end {
			t.Errorf("span %d = [%v, %v], want [%v, %v]", i, s.Start, s.End, w.start, w.end)
		}
	}
}

// TestHTTPSpansOffByDefault: without SetTracer the hub records nothing and
// requests still flow — the nil span.Sync no-op contract.
func TestHTTPSpansOffByDefault(t *testing.T) {
	srv := goldenServer(t)
	if rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rr.Code)
	}
	if srv.metrics.tracer.Load().Len() != 0 {
		t.Errorf("untraced hub recorded %d spans", srv.metrics.tracer.Load().Len())
	}
}
