package serve

import (
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/storage"
)

// batcher coalesces concurrent prediction-cache misses into batched forward
// passes. A miss that arrives while another miss is already inferring
// enqueues here instead of running its own pass; the collector goroutine
// gathers requests until either MaxBatch are waiting or the batch window
// elapses, then runs one batched inference per workload
// (predictor.PredictBatch — the decoder's matmuls at batch width, which the
// destination-passing kernels shard across the same worker pool a single
// wide request would use).
//
// The handler only routes to the batcher when other misses are in flight
// (see handlePredict), so an idle server never pays the window: single
// requests keep their direct-path p50.
type batchReq struct {
	tw   *corepythia.Trained
	root *plan.Node
	// res receives the raw (pre-LimitPrefetch) prediction exactly once.
	// Buffered so a dispatch never blocks on a handler that gave up (timeout
	// or client disconnect).
	res chan batchRes
}

// batchRes is one request's slice of a batched pass.
type batchRes struct {
	pages []storage.PageID
	// size is the number of requests that shared this workload's batched
	// pass (1 = the request ran alone after all).
	size int
}

type batcher struct {
	ch   chan batchReq
	stop chan struct{}
	done chan struct{}

	window   time.Duration
	maxBatch int

	// batches counts dispatched multi-request groups; batched counts
	// requests that ran inside one (size > 1). Surfaced on /metrics.
	batches atomic.Uint64
	batched atomic.Uint64
}

func newBatcher(window time.Duration, maxBatch int) *batcher {
	b := &batcher{
		ch:       make(chan batchReq),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		window:   window,
		maxBatch: maxBatch,
	}
	go b.run()
	return b
}

// enqueue offers a request to the collector. It returns false when the
// batcher has been closed — the caller falls back to the direct path.
//
//pythia:noalloc
func (b *batcher) enqueue(r batchReq) bool {
	select {
	case b.ch <- r:
		return true
	case <-b.stop:
		return false
	}
}

// close stops the collector; in-flight batches still complete. Idempotent
// via Server.Close's once.
func (b *batcher) close() {
	close(b.stop)
	<-b.done
}

// run is the collector loop: block for the first request, then gather until
// the window elapses or the batch is full, then dispatch and go around.
func (b *batcher) run() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first batchReq
		select {
		case first = <-b.ch:
		case <-b.stop:
			return
		}
		batch := append(make([]batchReq, 0, b.maxBatch), first)
		timer.Reset(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.ch:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.dispatch(batch)
	}
}

// dispatch groups the batch by workload and runs one batched inference per
// group, each in its own goroutine so the collector is immediately free to
// gather the next batch.
func (b *batcher) dispatch(batch []batchReq) {
	// Group requests by trained workload, preserving arrival order.
	groups := make(map[*corepythia.Trained][]batchReq, 1)
	var order []*corepythia.Trained
	for _, r := range batch {
		if _, ok := groups[r.tw]; !ok {
			order = append(order, r.tw)
		}
		groups[r.tw] = append(groups[r.tw], r)
	}
	for _, tw := range order {
		g := groups[tw]
		if len(g) > 1 {
			b.batches.Add(1)
			b.batched.Add(uint64(len(g)))
		}
		//pythia:goleak-ok one-shot inference; exits after PredictBatch delivers into each request's buffered res channel, even if every waiter timed out
		go func(tw *corepythia.Trained, g []batchReq) {
			roots := make([]*plan.Node, len(g))
			for i, r := range g {
				roots[i] = r.root
			}
			preds := tw.Pred.PredictBatch(roots)
			for i, r := range g {
				r.res <- batchRes{pages: preds[i], size: len(g)}
			}
		}(tw, g)
	}
}
