package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/storage"
)

// expectedPages computes the reference answer a system gives for one planned
// query — the pages any replica cloned from that system must serve.
func expectedPages(t *testing.T, srv *Server, sys *corepythia.System, q plan.Query, root *plan.Node) []pageJSON {
	t.Helper()
	tw := sys.Lookup(q)
	if tw == nil {
		t.Fatal("probe query did not match a trained workload")
	}
	var resp predictResponse
	srv.writePages(&resp, sys.LimitPrefetch(tw.Pred.PredictParallel(root)))
	return resp.Pages
}

// TestPoolCacheAffinity: with consistent-hash routing, each distinct plan is
// owned by exactly one replica — the pool's aggregate cache holds one entry
// per plan, not one per (plan, replica) — and repeats land on the owner as
// cache hits.
func TestPoolCacheAffinity(t *testing.T) {
	base, w := testServer(t)
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{Replicas: 3})
	t.Cleanup(srv.Close)
	insts := distinctInstances(t, srv, w, 6)

	owner := map[int]int{}
	for _, i := range insts {
		first := predictOK(t, srv, w, i)
		if first.Cached {
			t.Fatalf("instance %d: first request claims a cache hit", i)
		}
		owner[i] = first.Replica
	}
	for _, i := range insts {
		again := predictOK(t, srv, w, i)
		if !again.Cached {
			t.Fatalf("instance %d: repeat was not a cache hit", i)
		}
		if again.Replica != owner[i] {
			t.Fatalf("instance %d: routed to replica %d then %d — no affinity", i, owner[i], again.Replica)
		}
	}

	st := srv.inf.Status()
	if len(st.Replicas) != 3 {
		t.Fatalf("status reports %d replicas, want 3", len(st.Replicas))
	}
	total := 0
	for _, r := range st.Replicas {
		total += r.CacheEntries
	}
	if total != len(insts) {
		t.Fatalf("pool holds %d cache entries for %d distinct plans — affinity should shard, not duplicate", total, len(insts))
	}
}

// TestSwapUnderLoad hammers a 2-replica pool with concurrent predictions
// while the serving models are swapped to a differently trained generation.
// Run under -race this is the zero-downtime pin: every request answers 200,
// and every response's pages equal exactly the generation it reports — no
// request ever observes a torn or half-loaded model.
func TestSwapUnderLoad(t *testing.T) {
	base, w := testServer(t)

	// Generation 2: same catalog and config, trained on a different instance
	// subset so its weights (and typically its predictions) differ from the
	// fixture's generation 1.
	cfg := fixtureSys.Config()
	cfg.Recorder = nil
	sys2 := corepythia.New(base.db, cfg)
	sys2.Train("t91", fixtureW.Instances[:10])
	var snap2 bytes.Buffer
	if err := sys2.Save(&snap2); err != nil {
		t.Fatal(err)
	}

	// Cache disabled so every request runs real inference through the serving
	// generation's weights — the strongest torn-model probe. Shedding and
	// queueing disabled so any non-200 is a real failure.
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{
		Replicas:     2,
		CacheEntries: -1,
		MaxInFlight:  -1,
		QueueDepth:   -1,
	})
	t.Cleanup(srv.Close)

	probes := distinctInstances(t, srv, w, 4)
	want := map[uint64][][]pageJSON{1: {}, 2: {}}
	bodies := make([][]byte, len(probes))
	pl := plan.NewPlanner(base.db)
	for k, i := range probes {
		q := w.Instances[i].Query
		root, err := pl.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		want[1] = append(want[1], expectedPages(t, srv, fixtureSys, q, root))
		want[2] = append(want[2], expectedPages(t, srv, sys2, q, root))
		bodies[k] = specBody(t, spec.FromQuery(q)).Bytes()
	}

	handler := srv.Handler()
	const workers, iters = 8, 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := (g + it) % len(bodies)
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[k]))
				rr := httptest.NewRecorder()
				handler.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d: %s", g, rr.Code, rr.Body.String())
					return
				}
				var resp predictResponse
				if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
					errs <- err
					return
				}
				expected, known := want[resp.Generation]
				if !known {
					errs <- fmt.Errorf("worker %d: response from unknown generation %d", g, resp.Generation)
					return
				}
				if resp.Fallback || !reflect.DeepEqual(resp.Pages, expected[k]) {
					errs <- fmt.Errorf("worker %d: generation %d answered %v, want %v — torn model state",
						g, resp.Generation, resp.Pages, expected[k])
					return
				}
			}
		}(g)
	}

	// Mid-load: swap to generation 2. Swap must not fail and must not fail
	// any in-flight request.
	time.Sleep(10 * time.Millisecond)
	if err := srv.inf.Swap(bytes.NewReader(snap2.Bytes())); err != nil {
		t.Fatalf("swap under load: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.inf.Status()
	if st.Generation != 2 || st.Swaps != 1 {
		t.Fatalf("after swap: generation=%d swaps=%d, want 2/1", st.Generation, st.Swaps)
	}
	for _, r := range st.Replicas {
		if r.Generation != 2 {
			t.Fatalf("replica %d still on generation %d", r.ID, r.Generation)
		}
	}
	// Post-swap requests serve generation 2 only.
	resp := predictOK(t, srv, w, probes[0])
	if resp.Generation != 2 || !reflect.DeepEqual(resp.Pages, want[2][0]) {
		t.Fatalf("post-swap response %+v not from generation 2", resp)
	}
}

// TestSwapRejectsBadSnapshot: a corrupt or empty snapshot must leave the old
// generation serving untouched.
func TestSwapRejectsBadSnapshot(t *testing.T) {
	base, w := testServer(t)
	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{Replicas: 2})
	t.Cleanup(srv.Close)

	if err := srv.inf.Swap(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot did not error")
	}
	// An untrained system persists fine but must be refused for serving.
	empty := corepythia.New(base.db, fixtureSys.Config())
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := srv.inf.Swap(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "no trained workloads") {
		t.Fatalf("empty snapshot error = %v", err)
	}
	st := srv.inf.Status()
	if st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("failed swaps moved the generation: %+v", st)
	}
	if resp := predictOK(t, srv, w, 0); resp.Fallback {
		t.Fatalf("server degraded after rejected swaps: %+v", resp)
	}
}

// TestAdminReloadHTTP exercises the versioned admin surface end to end:
// reload from the configured snapshot, reload from an explicit path, typed
// errors, method guards, and the deprecated unversioned alias.
func TestAdminReloadHTTP(t *testing.T) {
	base, w := testServer(t)
	snap := filepath.Join(t.TempDir(), "model.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixtureSys.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{SnapshotPath: snap})
	t.Cleanup(srv.Close)

	// Empty body → reload from the configured path.
	rr := doRequest(t, srv, http.MethodPost, "/v1/admin/reload", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", rr.Code, rr.Body.String())
	}
	var rel reloadResponse
	if err := json.NewDecoder(rr.Body).Decode(&rel); err != nil {
		t.Fatal(err)
	}
	if rel.Status != "ok" || rel.Generation != 2 || rel.Swaps != 1 || rel.Replicas != 1 || rel.Path != snap {
		t.Fatalf("reload response wrong: %+v", rel)
	}

	// Explicit body path → another swap.
	body := strings.NewReader(`{"path":` + jsonQuote(snap) + `}`)
	rr = doRequest(t, srv, http.MethodPost, "/v1/admin/reload", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("explicit-path reload status %d: %s", rr.Code, rr.Body.String())
	}

	// Topology endpoint reflects the swaps.
	rr = doRequest(t, srv, http.MethodGet, "/v1/admin/replicas", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("replicas status %d", rr.Code)
	}
	var st InfStatus
	if err := json.NewDecoder(rr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 3 || st.Swaps != 2 || len(st.Replicas) != 1 {
		t.Fatalf("replicas payload wrong: %+v", st)
	}
	// Requests still answer after two live swaps.
	if resp := predictOK(t, srv, w, 0); resp.Generation != 3 {
		t.Fatalf("serving generation %d, want 3", resp.Generation)
	}

	// Method guards.
	if rr := doRequest(t, srv, http.MethodGet, "/v1/admin/reload", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload status %d", rr.Code)
	}
	if rr := doRequest(t, srv, http.MethodPost, "/v1/admin/replicas", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST replicas status %d", rr.Code)
	}
	// Malformed body → typed 400.
	rr = doRequest(t, srv, http.MethodPost, "/v1/admin/reload", strings.NewReader(`{"path":`))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad body status %d", rr.Code)
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeInvalidSpec {
		t.Fatalf("bad body envelope: %+v", env)
	}
	// Nonexistent snapshot → typed 500.
	rr = doRequest(t, srv, http.MethodPost, "/v1/admin/reload",
		strings.NewReader(`{"path":"/nonexistent/model.snap"}`))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("missing file status %d: %s", rr.Code, rr.Body.String())
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeReloadFailed {
		t.Fatalf("missing file envelope: %+v", env)
	}

	// Deprecated unversioned alias answers with RFC 8594 headers.
	rr = doRequest(t, srv, http.MethodPost, "/admin/reload", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("alias status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Deprecation") != "true" ||
		!strings.Contains(rr.Header().Get("Link"), "</v1/admin/reload>") {
		t.Fatalf("alias missing deprecation signalling: %v", rr.Header())
	}

	// A server with no snapshot configured refuses pathless reloads with the
	// typed 400.
	bare := mustServer(t, base.db, fixtureSys, NewMetrics(nil), Options{})
	t.Cleanup(bare.Close)
	rr = doRequest(t, bare, http.MethodPost, "/v1/admin/reload", nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("no-snapshot status %d: %s", rr.Code, rr.Body.String())
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeNoSnapshot {
		t.Fatalf("no-snapshot envelope: %+v", env)
	}
}

// jsonQuote JSON-quotes a string for inline request bodies.
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// stubInferencer lets Server tests script the model tier.
type stubInferencer struct {
	pred Prediction
	err  error
}

func (s *stubInferencer) Predict(context.Context, plan.Query, *plan.Node) (Prediction, error) {
	return s.pred, s.err
}

func (s *stubInferencer) PredictBatch(ctx context.Context, qs []plan.Query, roots []*plan.Node) ([]Prediction, error) {
	return predictAll(ctx, s, qs, roots)
}

func (s *stubInferencer) Explain(root *plan.Node) Explanation { return explainPlan(root) }
func (s *stubInferencer) Workloads() []*corepythia.Trained    { return nil }
func (s *stubInferencer) Status() InfStatus                   { return InfStatus{Generation: 1} }
func (s *stubInferencer) Swap(io.Reader) error                { return nil }
func (s *stubInferencer) Close()                              {}

// TestServerWithStubInferencer: the Inferencer seam lets tests drive the HTTP
// contract without training anything — and pins the error mapping from
// Inferencer sentinels to HTTP statuses.
func TestServerWithStubInferencer(t *testing.T) {
	base, w := testServer(t)
	stub := &stubInferencer{pred: Prediction{
		Workload:   "stubbed",
		Pages:      []storage.PageID{{Object: 1, Page: 7}},
		Replica:    3,
		Generation: 9,
	}}
	srv, err := NewWithInferencer(base.db, stub, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "stubbed" || resp.Replica != 3 || resp.Generation != 9 || resp.PageCount != 1 {
		t.Fatalf("stubbed response wrong: %+v", resp)
	}

	// Sentinel error mapping.
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{ErrSaturated, http.StatusServiceUnavailable, CodeOverloaded},
		{errModelFault, http.StatusInternalServerError, CodeModelError},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadline},
		{context.Canceled, StatusClientClosedRequest, CodeClientGone},
	}
	for _, c := range cases {
		stub.err = c.err
		rr := doRequest(t, srv, http.MethodPost, "/v1/predict", matchedBody(t, w))
		if rr.Code != c.status {
			t.Errorf("%v: status %d, want %d", c.err, rr.Code, c.status)
			continue
		}
		if env := decodeEnvelope(t, rr); env.Error.Code != c.code {
			t.Errorf("%v: envelope code %q, want %q", c.err, env.Error.Code, c.code)
		}
	}
	if rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("stub healthz status %d", rr.Code)
	}
}

// TestOptionsNormalize pins the zero=default / negative=disable convention
// and the rejected combinations.
func TestOptionsNormalize(t *testing.T) {
	norm, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.RequestTimeout != 5*time.Second || norm.MaxInFlight != 64 ||
		norm.MaxBodyBytes != 1<<20 || norm.BreakerThreshold != 5 ||
		norm.BreakerCooldown != 10*time.Second || norm.CacheEntries != 4096 ||
		norm.BatchWindow != 2*time.Millisecond || norm.MaxBatch != 16 ||
		norm.Replicas != 1 || norm.QueueDepth != 32 || norm.DrainTimeout != 10*time.Second ||
		norm.QuarantineThreshold != 5 || norm.QuarantineBackoff != time.Second ||
		norm.QuarantineProbes != 3 || norm.MaxFailovers != 2 || norm.HedgeAfter != 0 {
		t.Fatalf("defaults wrong: %+v", norm)
	}
	norm, err = Options{MaxInFlight: -1, MaxBodyBytes: -1, CacheEntries: -1, QueueDepth: -1,
		BatchWindow: -1, BreakerThreshold: -1, QuarantineThreshold: -1, MaxFailovers: -1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.MaxInFlight != 0 || norm.MaxBodyBytes != 0 || norm.CacheEntries != 0 ||
		norm.QueueDepth != 0 || norm.BatchWindow != 0 || norm.BreakerThreshold != 0 ||
		norm.QuarantineThreshold != 0 || norm.MaxFailovers != 0 {
		t.Fatalf("negatives did not disable: %+v", norm)
	}

	invalid := []Options{
		{Replicas: -1},
		{DrainTimeout: -time.Second},
		{BreakerThreshold: 3, BreakerCooldown: -time.Second},
		{MaxBatch: 8, BatchWindow: -time.Millisecond},
		{MaxBatch: 32, MaxInFlight: 8},
		{QuarantineThreshold: 3, QuarantineBackoff: -time.Second},
		{HedgeAfter: -time.Millisecond, Replicas: 2},
		{HedgeAfter: 10 * time.Millisecond},              // hedging needs a successor
		{HedgeAfter: 10 * time.Millisecond, Replicas: 1}, // explicit single replica
	}
	for i, o := range invalid {
		if _, err := o.Normalize(); err == nil {
			t.Errorf("case %d: %+v normalized without error", i, o)
		}
	}
	// New surfaces the validation error instead of building a broken server.
	base, _ := testServer(t)
	if _, err := New(base.db, fixtureSys, nil, Options{Replicas: -3}); err == nil {
		t.Fatal("New accepted invalid options")
	}
}
