package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/predictor"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/workload"
)

// Training is the slow part of the fixture, so every test shares one server
// (handlers are concurrency-safe by design). fixtureSys is kept alongside the
// server so derived servers (resilience, fast path, pool) can wrap the same
// trained system without retraining.
var (
	fixtureOnce sync.Once
	fixtureSrv  *Server
	fixtureSys  *corepythia.System
	fixtureW    *workload.Workload
)

func mustServer(t testing.TB, db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) *Server {
	t.Helper()
	srv, err := New(db, sys, metrics, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testServer(t testing.TB) (*Server, *workload.Workload) {
	t.Helper()
	fixtureOnce.Do(func() {
		g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
		w := g.Workload("t91", 20, 1)
		mcfg := model.DefaultConfig()
		mcfg.Dim = 16
		mcfg.Heads = 2
		mcfg.Layers = 1
		mcfg.DecoderHidden = 32
		mcfg.Epochs = 10
		metrics := NewMetrics(nil)
		cfg := corepythia.DefaultConfig()
		cfg.Predictor = predictor.Options{Model: mcfg, ObservedOnly: true}
		cfg.Replay.BufferPages = 1024
		cfg.Recorder = metrics.Events()
		sys := corepythia.New(g.DB(), cfg)
		sys.Train("t91", w.Instances)
		fixtureSrv = mustServer(t, g.DB(), sys, metrics, Options{})
		fixtureSys = sys
		fixtureW = w
	})
	return fixtureSrv, fixtureW
}

func specBody(t testing.TB, qs spec.QuerySpec) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := qs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func doRequest(t *testing.T, srv *Server, method, path string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, body)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	return rr
}

func decodeEnvelope(t *testing.T, rr *httptest.ResponseRecorder) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.NewDecoder(rr.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not a JSON envelope: %v (%q)", err, rr.Body.String())
	}
	return env
}

func TestPredictSuccess(t *testing.T) {
	srv, w := testServer(t)
	body := specBody(t, spec.FromQuery(w.Instances[0].Query))
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fallback || resp.Workload != "t91" {
		t.Fatalf("query did not match its workload: %+v", resp)
	}
	if resp.PageCount == 0 || len(resp.Pages) != resp.PageCount {
		t.Fatalf("no pages predicted: %+v", resp)
	}
	if resp.Pages[0].Object == "" {
		t.Fatal("page object not resolved to a relation name")
	}
}

func TestPredictFallback(t *testing.T) {
	srv, _ := testServer(t)
	// inventory exists in the catalog (plans fine) but no model was trained
	// for it, so prediction falls back.
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict",
		strings.NewReader(`{"fact":"inventory"}`))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Fallback || resp.PageCount != 0 {
		t.Fatalf("unmatched query did not fall back: %+v", resp)
	}
}

func TestPredictMalformedSpec(t *testing.T) {
	srv, _ := testServer(t)
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":`))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rr.Code)
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeInvalidSpec || env.Error.Message == "" {
		t.Fatalf("envelope wrong: %+v", env)
	}
}

func TestPredictUnknownRelation(t *testing.T) {
	srv, _ := testServer(t)
	rr := doRequest(t, srv, http.MethodPost, "/v1/predict",
		strings.NewReader(`{"fact":"no_such_relation"}`))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodePlanFailed ||
		!strings.Contains(env.Error.Message, "no_such_relation") {
		t.Fatalf("envelope wrong: %+v", env)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct{ method, path string }{
		{http.MethodGet, "/v1/predict"},
		{http.MethodGet, "/v1/explain"},
		{http.MethodPost, "/v1/healthz"},
		{http.MethodPost, "/metrics"},
		{http.MethodPost, "/stats"},
	}
	for _, c := range cases {
		rr := doRequest(t, srv, c.method, c.path, nil)
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d", c.method, c.path, rr.Code)
			continue
		}
		if env := decodeEnvelope(t, rr); env.Error.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: envelope %+v", c.method, c.path, env)
		}
	}
}

func TestDeprecatedAliases(t *testing.T) {
	srv, w := testServer(t)
	rr := doRequest(t, srv, http.MethodPost, "/predict",
		specBody(t, spec.FromQuery(w.Instances[0].Query)))
	if rr.Code != http.StatusOK {
		t.Fatalf("alias status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Deprecation") != "true" {
		t.Fatal("alias missing Deprecation header")
	}
	if link := rr.Header().Get("Link"); !strings.Contains(link, "</v1/predict>") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Fatalf("alias Link header wrong: %q", link)
	}
	// The versioned endpoint itself is not deprecated.
	rr = doRequest(t, srv, http.MethodPost, "/v1/predict",
		specBody(t, spec.FromQuery(w.Instances[0].Query)))
	if rr.Header().Get("Deprecation") != "" {
		t.Fatal("/v1 endpoint marked deprecated")
	}
}

func TestExplain(t *testing.T) {
	srv, w := testServer(t)
	rr := doRequest(t, srv, http.MethodPost, "/v1/explain",
		specBody(t, spec.FromQuery(w.Instances[0].Query)))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Plan == "" || len(resp.Tokens) == 0 {
		t.Fatalf("explain incomplete: %+v", resp)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp struct {
		Status    string `json:"status"`
		Workloads []struct {
			Name   string `json:"name"`
			Params int    `json:"params"`
		} `json:"workloads"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || len(resp.Workloads) != 1 || resp.Workloads[0].Name != "t91" {
		t.Fatalf("health payload wrong: %+v", resp)
	}
	if resp.Workloads[0].Params == 0 {
		t.Fatal("model inventory missing parameter count")
	}
}

func TestMetricsExposition(t *testing.T) {
	srv, w := testServer(t)
	// Ensure at least one request of each outcome is on the books.
	doRequest(t, srv, http.MethodPost, "/v1/predict",
		specBody(t, spec.FromQuery(w.Instances[0].Query)))
	doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":`))

	rr := doRequest(t, srv, http.MethodGet, "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := rr.Body.String()
	for _, want := range []string{
		`pythia_http_requests_total{endpoint="predict",code="200"}`,
		`pythia_http_requests_total{endpoint="predict",code="400"}`,
		`pythia_http_request_duration_seconds_bucket{endpoint="predict",le="+Inf"}`,
		`pythia_http_request_duration_seconds_count{endpoint="predict"}`,
		`pythia_predictions_total{outcome="matched"}`,
		`pythia_predicted_pages_total`,
		"pythia_workloads 1",
		"pythia_model_params",
		"pythia_uptime_seconds",
		"# TYPE pythia_http_requests_total counter",
		"# TYPE pythia_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	srv, w := testServer(t)
	doRequest(t, srv, http.MethodPost, "/v1/predict",
		specBody(t, spec.FromQuery(w.Instances[0].Query)))
	rr := doRequest(t, srv, http.MethodGet, "/stats", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp statsResponse
	if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Predictions == 0 || resp.PredictedPages == 0 || resp.AvgSetSize == 0 {
		t.Fatalf("prediction accounting empty: %+v", resp)
	}
	found := false
	for _, row := range resp.Requests {
		if row.Endpoint == "predict" && row.Code == http.StatusOK && row.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no predict/200 request row: %+v", resp.Requests)
	}
	if len(resp.Latency) == 0 {
		t.Fatal("no latency rows")
	}
	// The system recorder is wired, so workload-matching events show up.
	if resp.Events["workload_matched"] == 0 {
		t.Fatalf("no workload_matched events: %v", resp.Events)
	}
}
