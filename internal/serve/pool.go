package serve

// The replica pool is the serving tier's scale-out layer. One trained
// pythia.System is snapshotted (pythia.System.Save) and decoded into N
// independent clones, each wrapped in an instance with its own prediction
// cache, micro-batcher, circuit breaker, and bounded work queue. A request
// is matched once on the routing replica, fingerprinted by its encoded plan
// (the same key the prediction cache uses), and routed through a
// consistent-hash ring to the replica that owns that fingerprint.
//
// Why route by plan hash instead of round-robin: templated workloads
// collapse to few distinct plans, so replica-affine routing means each
// distinct plan's cached prediction lives on exactly one replica — the
// pool's aggregate cache holds N shards of the hot set, not N copies of it —
// and a cache miss for a given plan always recomputes on the replica that
// will field that plan's future hits. Model weights are cloned per replica,
// so forward passes on different replicas never serialize on a shared
// model's mutex; that is where the aggregate throughput multiple comes from.
//
// A model swap builds a complete standby generation (N fresh clones from the
// new snapshot), warms it on recently served plans, and swings one atomic
// pointer. Requests in flight keep the generation pointer they loaded, so
// every request runs against exactly one coherent generation — there is no
// torn state to observe — and the superseded generation drains in the
// background.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
)

// generation is one immutable serving configuration: N instances and the
// ring that routes over them. Predict loads it once and uses only it, so a
// concurrent Swap can never hand a request instances from two generations.
type generation struct {
	id        uint64
	instances []*instance
	ring      *hashRing
}

// Pool is the N-replica Inferencer behind the serving tier.
type Pool struct {
	db      *catalog.Database
	metrics *Metrics
	opts    Options
	fgate   *faultGate
	warm    *warmer

	cur    atomic.Pointer[generation]
	swapMu sync.Mutex // serializes Swap; Predict never takes it
	swaps  atomic.Uint64
}

// NewPool builds a pool of opts.Replicas independent replicas over a trained
// system. The system is snapshotted once and decoded opts.Replicas-1 times
// (replica 0 serves the original), so construction cost scales with model
// size, not training time. Options are normalized here; most callers want
// New, which picks Single or Pool from Options.Replicas.
func NewPool(db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) (*Pool, error) {
	norm, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	return newPool(db, sys, metrics, &faultGate{inj: norm.Fault}, norm)
}

// newPool is the internal constructor: opts are already normalized and the
// fault gate is shared with the owning Server.
func newPool(db *catalog.Database, sys *corepythia.System, metrics *Metrics, fgate *faultGate, opts Options) (*Pool, error) {
	p := &Pool{db: db, metrics: metrics, opts: opts, fgate: fgate, warm: newWarmer()}
	// Snapshot before quantizing: clones decode float32 weights and quantize
	// themselves, rather than round-tripping an already-quantized model.
	var snap bytes.Buffer
	if err := sys.Save(&snap); err != nil {
		return nil, fmt.Errorf("serve: snapshotting system for replication: %w", err)
	}
	if opts.Quantize {
		quantizeSystem(sys)
	}
	instances := make([]*instance, opts.Replicas)
	instances[0] = newInstance(0, 1, sys, metrics, fgate, p.warm, opts)
	for i := 1; i < opts.Replicas; i++ {
		clone, err := corepythia.LoadSystem(db, sys.Config(), bytes.NewReader(snap.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("serve: cloning replica %d: %w", i, err)
		}
		if opts.Quantize {
			quantizeSystem(clone)
		}
		instances[i] = newInstance(i, 1, clone, metrics, fgate, p.warm, opts)
	}
	p.cur.Store(&generation{id: 1, instances: instances, ring: newRing(opts.Replicas)})
	return p, nil
}

// Predict matches the query once on the routing replica, routes its plan
// fingerprint through the ring, and answers on the owning replica. The
// routed replica resolves its own (independent) Trained handle quietly, so
// one request records exactly one workload-matching event.
func (p *Pool) Predict(ctx context.Context, q plan.Query, root *plan.Node) (Prediction, error) {
	gen := p.cur.Load()
	router := gen.instances[0]
	tw := router.sys.Match(q)
	if tw == nil {
		return Prediction{Fallback: true, Replica: -1, Generation: gen.id}, nil
	}
	fp := fingerprint(tw.Name, tw.Pred.EncodePlan(root))
	ins := gen.instances[gen.ring.lookup(fp)]
	return ins.predict(ctx, q, root, true)
}

// PredictBatch answers many queries concurrently, each routed independently;
// what lands on the same replica together coalesces in its micro-batcher.
func (p *Pool) PredictBatch(ctx context.Context, qs []plan.Query, roots []*plan.Node) ([]Prediction, error) {
	return predictAll(ctx, p, qs, roots)
}

// Explain renders a plan without inference.
func (p *Pool) Explain(root *plan.Node) Explanation { return explainPlan(root) }

// Workloads returns the routing replica's trained workloads (every replica
// holds an identical inventory).
func (p *Pool) Workloads() []*corepythia.Trained {
	return p.cur.Load().instances[0].sys.Workloads()
}

// Status reports the pool topology: one row per replica of the current
// generation.
func (p *Pool) Status() InfStatus {
	gen := p.cur.Load()
	st := InfStatus{Generation: gen.id, Swaps: p.swaps.Load()}
	for _, ins := range gen.instances {
		st.Replicas = append(st.Replicas, ins.status())
	}
	return st
}

// Swap loads a snapshot into a complete standby generation (one fresh clone
// per replica), warms it on recently served plans, atomically makes it the
// serving generation, and drains the superseded one in the background.
// Requests in flight complete on the generation that admitted them; a
// request observes exactly one generation end to end, never a mix.
func (p *Pool) Swap(r io.Reader) error {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: reading snapshot: %w", err)
	}
	old := p.cur.Load()
	cfg := old.instances[0].sys.Config()
	genID := old.id + 1
	instances := make([]*instance, len(old.instances))
	for i := range instances {
		sys, err := corepythia.LoadSystem(p.db, cfg, bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("serve: loading snapshot into replica %d: %w", i, err)
		}
		if i == 0 && len(sys.Workloads()) == 0 {
			return errors.New("serve: snapshot contains no trained workloads")
		}
		if p.opts.Quantize {
			quantizeSystem(sys)
		}
		instances[i] = newInstance(i, genID, sys, p.metrics, p.fgate, p.warm, p.opts)
	}
	next := &generation{id: genID, instances: instances, ring: old.ring}
	warmThrough(p.warm.snapshot(), p.opts.RequestTimeout, func(fp uint64) *instance {
		return next.instances[next.ring.lookup(fp)]
	})
	p.cur.Store(next)
	p.swaps.Add(1)
	go func() {
		for _, ins := range old.instances {
			drainInstance(ins, p.opts.DrainTimeout)
		}
	}()
	return nil
}

// Close tears down the current generation's batch collectors.
func (p *Pool) Close() {
	for _, ins := range p.cur.Load().instances {
		ins.close()
	}
}
