package serve

// The replica pool is the serving tier's scale-out layer. One trained
// pythia.System is snapshotted (pythia.System.Save) and decoded into N
// independent clones, each wrapped in an instance with its own prediction
// cache, micro-batcher, circuit breaker, and bounded work queue. A request
// is matched once on the routing replica, fingerprinted by its encoded plan
// (the same key the prediction cache uses), and routed through a
// consistent-hash ring to the replica that owns that fingerprint.
//
// Why route by plan hash instead of round-robin: templated workloads
// collapse to few distinct plans, so replica-affine routing means each
// distinct plan's cached prediction lives on exactly one replica — the
// pool's aggregate cache holds N shards of the hot set, not N copies of it —
// and a cache miss for a given plan always recomputes on the replica that
// will field that plan's future hits. Model weights are cloned per replica,
// so forward passes on different replicas never serialize on a shared
// model's mutex; that is where the aggregate throughput multiple comes from.
//
// A model swap builds a complete standby generation (N fresh clones from the
// new snapshot), warms it on recently served plans, and swings one atomic
// pointer. Requests in flight keep the generation pointer they loaded, so
// every request runs against exactly one coherent generation — there is no
// torn state to observe — and the superseded generation drains in the
// background.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
)

// generation is one immutable serving configuration: N instances and the
// ring that routes over them. Predict loads it once and uses only it, so a
// concurrent Swap can never hand a request instances from two generations.
type generation struct {
	id        uint64
	instances []*instance
	ring      *hashRing
}

// Pool is the N-replica Inferencer behind the serving tier.
type Pool struct {
	db      *catalog.Database
	metrics *Metrics
	opts    Options
	fgate   *faultGate
	warm    *warmer

	cur    atomic.Pointer[generation]
	swapMu sync.Mutex // serializes Swap; Predict never takes it
	swaps  atomic.Uint64

	// hist observes end-to-end pool predict latencies when hedging is armed;
	// its p95 (floored by Options.HedgeAfter) is the hedge trigger delay.
	hist *obs.Histogram
}

// NewPool builds a pool of opts.Replicas independent replicas over a trained
// system. The system is snapshotted once and decoded opts.Replicas-1 times
// (replica 0 serves the original), so construction cost scales with model
// size, not training time. Options are normalized here; most callers want
// New, which picks Single or Pool from Options.Replicas.
func NewPool(db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) (*Pool, error) {
	norm, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	return newPool(db, sys, metrics, &faultGate{inj: norm.Fault}, norm)
}

// newPool is the internal constructor: opts are already normalized and the
// fault gate is shared with the owning Server.
func newPool(db *catalog.Database, sys *corepythia.System, metrics *Metrics, fgate *faultGate, opts Options) (*Pool, error) {
	p := &Pool{db: db, metrics: metrics, opts: opts, fgate: fgate, warm: newWarmer(), hist: obs.NewHistogram(nil)}
	// Snapshot before quantizing: clones decode float32 weights and quantize
	// themselves, rather than round-tripping an already-quantized model.
	var snap bytes.Buffer
	if err := sys.Save(&snap); err != nil {
		return nil, fmt.Errorf("serve: snapshotting system for replication: %w", err)
	}
	if opts.Quantize {
		quantizeSystem(sys)
	}
	instances := make([]*instance, opts.Replicas)
	instances[0] = newInstance(0, 1, sys, metrics, fgate, p.warm, opts)
	for i := 1; i < opts.Replicas; i++ {
		clone, err := corepythia.LoadSystem(db, sys.Config(), bytes.NewReader(snap.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("serve: cloning replica %d: %w", i, err)
		}
		if opts.Quantize {
			quantizeSystem(clone)
		}
		instances[i] = newInstance(i, 1, clone, metrics, fgate, p.warm, opts)
	}
	p.cur.Store(&generation{id: 1, instances: instances, ring: newRing(opts.Replicas)})
	return p, nil
}

// failoverable reports whether a replica error is one routing may move past:
// saturation and injected model faults are properties of the replica, so a
// ring successor can still answer. Context errors are properties of the
// request (the budget is spent either way) and propagate unchanged.
func failoverable(err error) bool {
	return errors.Is(err, ErrSaturated) || errors.Is(err, errModelFault)
}

// maxFailoverCand bounds the stack-allocated candidate arrays in Predict;
// MaxFailovers past it would heap-allocate, which Normalize's default (2)
// never does.
const maxFailoverCand = 8

// Predict matches the query once on the routing replica, routes its plan
// fingerprint through the ring, and answers on the owning replica — or, when
// the owner is quarantined, saturated, or faulting, fails over to up to
// Options.MaxFailovers ring successors (each hop recorded as a failover).
// The routed replica resolves its own (independent) Trained handle quietly,
// so one request records exactly one workload-matching event.
//
// Quarantined replicas are skipped, except that a quarantined owner whose
// probe backoff has elapsed is admitted one probe request; if the probe
// fails, the request still fails over, so probing costs the client nothing.
// When every candidate is quarantined with no probe due, the request answers
// the degraded fallback rather than an error — prefetching is advisory, so
// degraded beats unavailable.
func (p *Pool) Predict(ctx context.Context, q plan.Query, root *plan.Node) (Prediction, error) {
	gen := p.cur.Load()
	router := gen.instances[0]
	tw := router.sys.Match(q)
	if tw == nil {
		return Prediction{Fallback: true, Replica: -1, Generation: gen.id}, nil
	}
	fp := fingerprint(tw.Name, tw.Pred.EncodePlan(root))
	if p.opts.HedgeAfter > 0 {
		start := time.Now()
		defer func() { p.hist.Observe(time.Since(start)) }()
	}
	var obuf [maxFailoverCand]int
	order := gen.ring.lookupN(fp, obuf[:0], p.opts.MaxFailovers+1)

	// Admission pass: a candidate takes traffic while it is serving, and a
	// quarantined candidate whose backoff has elapsed is admitted one probe.
	// pos remembers each live candidate's position in ring order, so hops
	// over skipped (quarantined) candidates are counted as failovers only
	// when a later candidate actually serves.
	var lbuf [maxFailoverCand]*instance
	var pbuf [maxFailoverCand]int
	live, pos := lbuf[:0], pbuf[:0]
	for i, idx := range order {
		ins := gen.instances[idx]
		if ins.serving() || ins.health.allowProbe() {
			live = append(live, ins)
			pos = append(pos, i)
		}
	}
	if len(live) == 0 {
		return Prediction{Fallback: true, Degraded: "no_healthy_replica", Replica: -1, Generation: gen.id}, nil
	}
	if p.opts.HedgeAfter > 0 && len(live) > 1 {
		p.noteFailovers(pos[0])
		return p.predictHedged(ctx, live[0], live[1], q, root)
	}
	var pred Prediction
	var err error
	prev := 0
	for j, ins := range live {
		// pos[j]-prev counts every candidate moved past to reach this one:
		// quarantined skips plus the previous live candidate's failed attempt.
		p.noteFailovers(pos[j] - prev)
		prev = pos[j]
		pred, err = ins.predict(ctx, q, root, true)
		if err == nil || !failoverable(err) {
			return pred, err
		}
	}
	return pred, err
}

// noteFailovers records n failover hops on the metrics surface.
func (p *Pool) noteFailovers(n int) {
	if n <= 0 {
		return
	}
	p.metrics.failovers.Add(uint64(n))
	if rec := p.metrics.Events(); rec != nil {
		for i := 0; i < n; i++ {
			rec.Record(obs.Event{Kind: obs.ReplicaFailover, Query: obs.NoQuery})
		}
	}
}

// hedgeDelay is the quantile-derived hedge trigger: the pool's observed p95
// predict latency, floored by Options.HedgeAfter so a cold histogram (or an
// all-cache-hit workload reporting microsecond p95s) does not hedge on noise.
func (p *Pool) hedgeDelay() time.Duration {
	if d := p.hist.Quantile(0.95); d > p.opts.HedgeAfter {
		return d
	}
	return p.opts.HedgeAfter
}

// predictHedged races the primary attempt against a delayed second attempt
// on the ring successor: whichever answers first wins and the loser's
// context is canceled (a canceled attempt records nothing against its
// replica's breaker or health). The hedge also launches immediately if the
// primary fails a failoverable way before the delay elapses — the sequential
// failover path wearing the hedging machinery.
func (p *Pool) predictHedged(ctx context.Context, primary, successor *instance, q plan.Query, root *plan.Node) (Prediction, error) {
	type outcome struct {
		pred Prediction
		err  error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	pch := make(chan outcome, 1)
	hch := make(chan outcome, 1)
	go func() {
		pr, err := primary.predict(pctx, q, root, true)
		pch <- outcome{pr, err}
	}()

	var primaryRes *outcome
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	select {
	case o := <-pch:
		if o.err == nil || !failoverable(o.err) {
			return o.pred, o.err
		}
		primaryRes = &o // primary already failed: hedge immediately
	case <-timer.C:
		p.metrics.hedges.Add(1)
	case <-ctx.Done():
		return Prediction{Replica: -1}, ctx.Err()
	}

	go func() {
		pr, err := successor.predict(hctx, q, root, true)
		hch <- outcome{pr, err}
	}()
	var hedgeRes *outcome
	for {
		select {
		case o := <-pch:
			if o.err == nil || !failoverable(o.err) {
				hcancel()
				return o.pred, o.err
			}
			primaryRes = &o
			if hedgeRes != nil {
				return o.pred, o.err // both failed: report the primary's error
			}
		case o := <-hch:
			if o.err == nil || !failoverable(o.err) {
				pcancel()
				if primaryRes != nil {
					// The successor rescued a failed primary: that is a
					// failover, not a hedge win.
					p.noteFailovers(1)
				} else {
					p.metrics.hedgeWins.Add(1)
				}
				return o.pred, o.err
			}
			hedgeRes = &o
			if primaryRes != nil {
				return primaryRes.pred, primaryRes.err
			}
		case <-ctx.Done():
			return Prediction{Replica: -1}, ctx.Err()
		}
	}
}

// PredictBatch answers many queries concurrently, each routed independently;
// what lands on the same replica together coalesces in its micro-batcher.
func (p *Pool) PredictBatch(ctx context.Context, qs []plan.Query, roots []*plan.Node) ([]Prediction, error) {
	return predictAll(ctx, p, qs, roots)
}

// Explain renders a plan without inference.
func (p *Pool) Explain(root *plan.Node) Explanation { return explainPlan(root) }

// Workloads returns the routing replica's trained workloads (every replica
// holds an identical inventory).
func (p *Pool) Workloads() []*corepythia.Trained {
	return p.cur.Load().instances[0].sys.Workloads()
}

// Status reports the pool topology: one row per replica of the current
// generation.
func (p *Pool) Status() InfStatus {
	gen := p.cur.Load()
	st := InfStatus{Generation: gen.id, Swaps: p.swaps.Load()}
	for _, ins := range gen.instances {
		st.Replicas = append(st.Replicas, ins.status())
	}
	return st
}

// BaselineID reports the serving generation's drift-baseline identity (every
// replica decodes the same snapshot, so the routing replica's answers for
// all).
func (p *Pool) BaselineID() *corepythia.BaselineID {
	return p.cur.Load().instances[0].sys.BaselineID()
}

// Swap loads a snapshot into a complete standby generation (one fresh clone
// per replica), warms it on recently served plans, atomically makes it the
// serving generation, and drains the superseded one in the background.
// Requests in flight complete on the generation that admitted them; a
// request observes exactly one generation end to end, never a mix.
//
// The swap is transactional: if any replica fails to build its standby —
// a corrupt or truncated snapshot (pythia.ErrSnapshotCorrupt), a version
// mismatch, or an injected replica build fault — every standby already built
// is torn down and the old generation keeps serving, untouched. The serving
// pointer only ever swings to a complete generation.
func (p *Pool) Swap(r io.Reader) error {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: reading snapshot: %w", err)
	}
	old := p.cur.Load()
	cfg := old.instances[0].sys.Config()
	genID := old.id + 1
	instances := make([]*instance, len(old.instances))
	// rollback tears down the partial standby; the old generation was never
	// touched, so it keeps serving as if the swap had not been attempted.
	rollback := func(err error) error {
		for _, ins := range instances {
			if ins != nil {
				ins.close()
			}
		}
		return err
	}
	for i := range instances {
		if p.fgate.fireReplica(i) {
			return rollback(fmt.Errorf("serve: building standby replica %d: %w", i, errModelFault))
		}
		sys, err := corepythia.LoadSystem(p.db, cfg, bytes.NewReader(data))
		if err != nil {
			return rollback(fmt.Errorf("serve: loading snapshot into replica %d: %w", i, err))
		}
		if i == 0 && len(sys.Workloads()) == 0 {
			return rollback(errors.New("serve: snapshot contains no trained workloads"))
		}
		if p.opts.Quantize {
			quantizeSystem(sys)
		}
		instances[i] = newInstance(i, genID, sys, p.metrics, p.fgate, p.warm, p.opts)
	}
	next := &generation{id: genID, instances: instances, ring: old.ring}
	warmThrough(p.warm.snapshot(), p.opts.RequestTimeout, func(fp uint64) *instance {
		return next.instances[next.ring.lookup(fp)]
	})
	p.cur.Store(next)
	p.swaps.Add(1)
	//pythia:goleak-ok drain loop is deadline-bounded: drainInstance polls in-flight counts for at most DrainTimeout per retired instance
	go func() {
		for _, ins := range old.instances {
			drainInstance(ins, p.opts.DrainTimeout)
		}
	}()
	return nil
}

// Close tears down the current generation's batch collectors.
func (p *Pool) Close() {
	for _, ins := range p.cur.Load().instances {
		ins.close()
	}
}
