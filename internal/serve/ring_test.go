package serve

import (
	"strconv"
	"testing"
)

// testFingerprints derives a deterministic spread of fingerprint keys, the
// same way production fingerprints come out of FNV-64a.
func testFingerprints(n int) []uint64 {
	fps := make([]uint64, n)
	for i := range fps {
		fps[i] = fnv64a("plan-" + strconv.Itoa(i))
	}
	return fps
}

// TestRingDeterministicRouting: routing is a pure function of (replica count,
// fingerprint) — two independently built rings agree on every key, so any
// process (or restart) routes identically.
func TestRingDeterministicRouting(t *testing.T) {
	a, b := newRing(4), newRing(4)
	if a.replicas() != 4 {
		t.Fatalf("replicas() = %d, want 4", a.replicas())
	}
	hits := make([]int, 4)
	for _, fp := range testFingerprints(4096) {
		ra, rb := a.lookup(fp), b.lookup(fp)
		if ra != rb {
			t.Fatalf("rings disagree on %#x: %d vs %d", fp, ra, rb)
		}
		if ra < 0 || ra > 3 {
			t.Fatalf("lookup(%#x) = %d out of range", fp, ra)
		}
		hits[ra]++
	}
	// 64 virtual nodes keep the key distribution roughly even: no replica may
	// starve or own the majority of the space.
	for r, n := range hits {
		if n < 4096/4/4 || n > 4096*3/4 {
			t.Fatalf("replica %d owns %d/4096 keys — distribution badly skewed: %v", r, n, hits)
		}
	}
}

// TestRingBoundedRemap: growing the pool remaps only the arcs the new replica
// takes over — about 1/(N+1) of the key space — so most cached predictions
// stay on the replica that owns them across a resize. A modulo router would
// remap ~80% here.
func TestRingBoundedRemap(t *testing.T) {
	before, after := newRing(4), newRing(5)
	fps := testFingerprints(8192)
	remapped := 0
	for _, fp := range fps {
		was, is := before.lookup(fp), after.lookup(fp)
		if was != is {
			remapped++
			// Consistent hashing only moves keys onto the added replica; a key
			// hopping between two surviving replicas would mean unrelated cache
			// entries were invalidated.
			if is != 4 {
				t.Fatalf("key %#x moved %d→%d, not to the added replica", fp, was, is)
			}
		}
	}
	frac := float64(remapped) / float64(len(fps))
	if frac == 0 {
		t.Fatal("no keys remapped — the added replica owns nothing")
	}
	if frac > 0.4 {
		t.Fatalf("%.0f%% of keys remapped adding 1 of 5 replicas, want ~20%%", frac*100)
	}
}

// TestRingSingleReplica: a one-replica ring routes everything to replica 0
// (and a nonsensical count clamps rather than panics).
func TestRingSingleReplica(t *testing.T) {
	r := newRing(1)
	for _, fp := range testFingerprints(64) {
		if r.lookup(fp) != 0 {
			t.Fatal("single-replica ring routed off replica 0")
		}
	}
	if newRing(0).replicas() != 1 {
		t.Fatal("zero-replica ring did not clamp to 1")
	}
}
