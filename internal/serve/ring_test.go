package serve

import (
	"reflect"
	"strconv"
	"testing"
)

// testFingerprints derives a deterministic spread of fingerprint keys, the
// same way production fingerprints come out of FNV-64a.
func testFingerprints(n int) []uint64 {
	fps := make([]uint64, n)
	for i := range fps {
		fps[i] = fnv64a("plan-" + strconv.Itoa(i))
	}
	return fps
}

// TestRingDeterministicRouting: routing is a pure function of (replica count,
// fingerprint) — two independently built rings agree on every key, so any
// process (or restart) routes identically.
func TestRingDeterministicRouting(t *testing.T) {
	a, b := newRing(4), newRing(4)
	if a.replicas() != 4 {
		t.Fatalf("replicas() = %d, want 4", a.replicas())
	}
	hits := make([]int, 4)
	for _, fp := range testFingerprints(4096) {
		ra, rb := a.lookup(fp), b.lookup(fp)
		if ra != rb {
			t.Fatalf("rings disagree on %#x: %d vs %d", fp, ra, rb)
		}
		if ra < 0 || ra > 3 {
			t.Fatalf("lookup(%#x) = %d out of range", fp, ra)
		}
		hits[ra]++
	}
	// 64 virtual nodes keep the key distribution roughly even: no replica may
	// starve or own the majority of the space.
	for r, n := range hits {
		if n < 4096/4/4 || n > 4096*3/4 {
			t.Fatalf("replica %d owns %d/4096 keys — distribution badly skewed: %v", r, n, hits)
		}
	}
}

// TestRingBoundedRemap: growing the pool remaps only the arcs the new replica
// takes over — about 1/(N+1) of the key space — so most cached predictions
// stay on the replica that owns them across a resize. A modulo router would
// remap ~80% here.
func TestRingBoundedRemap(t *testing.T) {
	before, after := newRing(4), newRing(5)
	fps := testFingerprints(8192)
	remapped := 0
	for _, fp := range fps {
		was, is := before.lookup(fp), after.lookup(fp)
		if was != is {
			remapped++
			// Consistent hashing only moves keys onto the added replica; a key
			// hopping between two surviving replicas would mean unrelated cache
			// entries were invalidated.
			if is != 4 {
				t.Fatalf("key %#x moved %d→%d, not to the added replica", fp, was, is)
			}
		}
	}
	frac := float64(remapped) / float64(len(fps))
	if frac == 0 {
		t.Fatal("no keys remapped — the added replica owns nothing")
	}
	if frac > 0.4 {
		t.Fatalf("%.0f%% of keys remapped adding 1 of 5 replicas, want ~20%%", frac*100)
	}
}

// TestRingSingleReplica: a one-replica ring routes everything to replica 0
// (and a nonsensical count clamps rather than panics).
func TestRingSingleReplica(t *testing.T) {
	r := newRing(1)
	for _, fp := range testFingerprints(64) {
		if r.lookup(fp) != 0 {
			t.Fatal("single-replica ring routed off replica 0")
		}
	}
	if newRing(0).replicas() != 1 {
		t.Fatal("zero-replica ring did not clamp to 1")
	}
}

// TestRingLookupN: the failover order is the owner followed by distinct ring
// successors — deterministic, duplicate-free, clamped to the replica count,
// and always led by exactly what lookup returns.
func TestRingLookupN(t *testing.T) {
	a, b := newRing(4), newRing(4)
	var buf [8]int
	for _, fp := range testFingerprints(2048) {
		order := a.lookupN(fp, buf[:0], 4)
		if len(order) != 4 {
			t.Fatalf("lookupN(%#x, 4) returned %d replicas", fp, len(order))
		}
		if order[0] != a.lookup(fp) {
			t.Fatalf("lookupN(%#x)[0] = %d, lookup = %d — owner must lead", fp, order[0], a.lookup(fp))
		}
		seen := map[int]bool{}
		for _, r := range order {
			if r < 0 || r > 3 || seen[r] {
				t.Fatalf("lookupN(%#x) = %v — out of range or duplicated", fp, order)
			}
			seen[r] = true
		}
		// Deterministic: an independently built ring produces the same order.
		if other := b.lookupN(fp, nil, 4); !reflect.DeepEqual(order, other) {
			t.Fatalf("rings disagree on %#x: %v vs %v", fp, order, other)
		}
		// n past the replica count clamps; a short n truncates the same order.
		if over := a.lookupN(fp, nil, 99); !reflect.DeepEqual(order, over) {
			t.Fatalf("lookupN(%#x, 99) = %v, want clamped %v", fp, over, order)
		}
		if two := a.lookupN(fp, nil, 2); !reflect.DeepEqual(order[:2], two) {
			t.Fatalf("lookupN(%#x, 2) = %v, want prefix of %v", fp, two, order)
		}
	}
}
