package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/dsb"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
)

// fakeClock hands out a strictly stepping wall clock: every reading advances
// one millisecond, so request latencies and uptime depend only on how many
// times the hub consulted the clock — never on the host.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(time.Millisecond)
	return now
}

// goldenServer builds a fresh untrained server whose metrics hub runs
// entirely on a fake clock. Nothing in it may read the host clock, host
// randomness, or shared fixture state.
func goldenServer(t *testing.T) *Server {
	t.Helper()
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 2, Seed: 7})
	metrics := NewMetrics(nil)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0).UTC()}
	metrics.setClock(clk.Now)
	// Build metadata varies by toolchain and checkout; pin it so the golden
	// bodies are byte-identical everywhere.
	metrics.setBuildInfo(BuildInfo{GoVersion: "go1.22.0", Path: "github.com/pythia-db/pythia", Revision: "deadbeef"})
	cfg := corepythia.DefaultConfig()
	cfg.Recorder = metrics.Events()
	sys := corepythia.New(g.DB(), cfg)
	return mustServer(t, g.DB(), sys, metrics, Options{})
}

// checkGolden compares a response body byte-for-byte against a committed
// golden file. Run with UPDATE_GOLDEN=1 to regenerate.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s body diverged from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestObservabilityGoldenBodies locks down the full /metrics and /stats
// bodies: with a fixed request sequence and a fake clock the rendered output
// must be byte-identical on every run — any map-order leak, field reorder,
// or format drift in the observability surface fails this test.
func TestObservabilityGoldenBodies(t *testing.T) {
	srv := goldenServer(t)

	// A fixed warm-up sequence: one 200 and one 400 on distinct endpoints.
	if rr := doRequest(t, srv, http.MethodGet, "/v1/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", rr.Code, rr.Body.String())
	}
	if rr := doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":`)); rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed predict status %d: %s", rr.Code, rr.Body.String())
	}

	rr := doRequest(t, srv, http.MethodGet, "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rr.Code)
	}
	checkGolden(t, "metrics.golden", rr.Body.Bytes())

	// /stats continues on the same clock, one completed /metrics request
	// later: its golden body pins the JSON field order and the sorted
	// request and latency tables.
	rr = doRequest(t, srv, http.MethodGet, "/stats", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("stats status %d", rr.Code)
	}
	checkGolden(t, "stats.golden", rr.Body.Bytes())
}

// TestGoldenBodiesStable re-runs the identical sequence on a second fresh
// server and demands byte-identical bodies — the determinism claim without
// reference to the committed files.
func TestGoldenBodiesStable(t *testing.T) {
	run := func() (metrics, stats string) {
		srv := goldenServer(t)
		doRequest(t, srv, http.MethodGet, "/v1/healthz", nil)
		doRequest(t, srv, http.MethodPost, "/v1/predict", strings.NewReader(`{"fact":`))
		metrics = doRequest(t, srv, http.MethodGet, "/metrics", nil).Body.String()
		stats = doRequest(t, srv, http.MethodGet, "/stats", nil).Body.String()
		return metrics, stats
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 {
		t.Errorf("/metrics body not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if s1 != s2 {
		t.Errorf("/stats body not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
}
