package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"time"

	corepythia "github.com/pythia-db/pythia/internal/pythia"
)

// Admin error codes of the JSON error envelope.
const (
	CodeNoSnapshot      = "no_snapshot"
	CodeReloadFailed    = "reload_failed"
	CodeSnapshotCorrupt = "snapshot_corrupt"
)

// reloadRequest is the optional POST /v1/admin/reload body. An absent or
// empty body reloads from the server's configured SnapshotPath.
type reloadRequest struct {
	// Path overrides the configured snapshot file for this reload.
	Path string `json:"path,omitempty"`
}

// reloadResponse reports a completed model swap.
type reloadResponse struct {
	Status     string  `json:"status"`
	Path       string  `json:"path"`
	Generation uint64  `json:"generation"`
	Swaps      uint64  `json:"swaps"`
	Replicas   int     `json:"replicas"`
	DurationMS float64 `json:"duration_ms"`
}

// ReloadSnapshot performs a zero-downtime model swap from a snapshot file
// (pythia.System.Save): every replica of a standby generation decodes the
// snapshot, the standby warms on recently served plans, and the serving
// pointer swings atomically. An empty path uses Options.SnapshotPath. This
// is the programmatic entry behind both POST /v1/admin/reload and
// pythia-serve's SIGHUP handler.
func (s *Server) ReloadSnapshot(path string) (InfStatus, error) {
	if path == "" {
		path = s.opts.SnapshotPath
	}
	if path == "" {
		return InfStatus{}, errNoSnapshot
	}
	f, err := os.Open(path)
	if err != nil {
		return InfStatus{}, err
	}
	defer f.Close()
	if err := s.inf.Swap(f); err != nil {
		return InfStatus{}, err
	}
	return s.inf.Status(), nil
}

// handleReload is POST /v1/admin/reload: swap the serving models from a
// snapshot file without dropping a request. The optional JSON body may name
// a snapshot path; otherwise the server's -snapshot configuration is used.
// Deliberately not wrapped in shed(): an operator must be able to roll
// models on an overloaded server.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST to reload the serving snapshot")
		return
	}
	var req reloadRequest
	body := io.Reader(r.Body)
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "reload body must be empty or {\"path\": \"...\"}")
		return
	}
	path := req.Path
	if path == "" {
		path = s.opts.SnapshotPath
	}
	start := time.Now()
	st, err := s.ReloadSnapshot(path)
	if err != nil {
		switch {
		case errors.Is(err, errNoSnapshot):
			writeError(w, http.StatusBadRequest, CodeNoSnapshot,
				"no snapshot path configured; pass {\"path\": \"...\"} or start the server with -snapshot")
		case errors.Is(err, corepythia.ErrSnapshotCorrupt), errors.Is(err, corepythia.ErrSnapshotVersion):
			// The swap already rolled back; the old generation keeps serving.
			// 422: the request was well-formed but the named snapshot is not
			// processable — replace the file, not the request.
			writeError(w, http.StatusUnprocessableEntity, CodeSnapshotCorrupt, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, CodeReloadFailed, err.Error())
		}
		return
	}
	writeJSON(w, reloadResponse{
		Status:     "ok",
		Path:       path,
		Generation: st.Generation,
		Swaps:      st.Swaps,
		Replicas:   len(st.Replicas),
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleReplicas is GET /v1/admin/replicas: the replica topology snapshot —
// per-replica generation, queue, breaker, cache, and batching state.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.inf.Status())
}
