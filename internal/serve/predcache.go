package serve

import (
	"sync"
	"sync/atomic"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/storage"
)

// predCache is the serving tier's plan-fingerprint prediction cache: a
// bounded, sharded LRU from fingerprint (FNV-64a over the workload name and
// the serialized plan's token IDs) to the predicted page set. DSB-style
// workloads draw queries from a handful of templates, so under steady
// traffic most requests repeat a recently seen plan — a hit skips the
// transformer entirely, turning a multi-millisecond forward pass into a map
// lookup.
//
// Concurrency: each shard is guarded by its own mutex; fingerprints spread
// across shards by their low bits, so concurrent handlers rarely contend.
// The cached page slices are immutable once stored (the put path hands over
// a freshly built slice and nothing writes through it afterwards), so get
// can return the slice itself without copying.
type predCache struct {
	shards []pcShard
	mask   uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// rec mirrors the counters onto the obs event surface (PredCacheHit /
	// PredCacheMiss / PredCacheEvict on /metrics and /stats).
	rec *obs.AtomicCounters
}

// pcEntry is one cached prediction on a shard's LRU list. Entry structs are
// recycled through the shard free list so a full cache churns without
// allocating list nodes; the page slices are NOT recycled — readers may
// still hold them after an eviction.
type pcEntry struct {
	key        uint64
	pages      []storage.PageID
	prev, next *pcEntry
}

// pcShard is one LRU shard: a map for lookup and an intrusive
// most-recent-first list for eviction order.
type pcShard struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*pcEntry
	head    *pcEntry // most recently used
	tail    *pcEntry // eviction candidate
	free    *pcEntry // recycled entry structs (chained via next)
}

// pcShards is the shard count (a power of two; fingerprint low bits select
// the shard).
const pcShards = 16

// newPredCache builds a cache bounded to capacity entries in total. The
// recorder (may be nil) receives one event per hit/miss/eviction.
//
// The shard count scales down with capacity (one shard per ~8 entries, up
// to pcShards): slicing a small cache 16 ways leaves each shard room for
// only an entry or two, so a working set that fits the aggregate bound
// still thrashes shard-locally. A handful of shards keeps lock contention
// negligible at the request rates a small cache implies.
func newPredCache(capacity int, rec *obs.AtomicCounters) *predCache {
	shards := 1
	for shards < pcShards && shards*16 <= capacity {
		shards *= 2
	}
	c := &predCache{shards: make([]pcShard, shards), mask: uint64(shards - 1), rec: rec}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[uint64]*pcEntry, per)
	}
	return c
}

// fingerprint keys the cache: the plan's token-ID fingerprint with the
// workload name folded in, so identical token sequences from different
// workloads' vocabularies cannot alias.
//
//pythia:noalloc
func fingerprint(workload string, ids []int) uint64 {
	h := predictor.Fingerprint(ids)
	for i := 0; i < len(workload); i++ {
		h ^= uint64(workload[i])
		h *= 1099511628211 // FNV-64 prime
	}
	return h
}

// get returns the cached prediction for a fingerprint. The hit path is the
// serving tier's fastest: one shard lock, one map lookup, two pointer
// splices — no allocation, no inference.
//
//pythia:noalloc
func (c *predCache) get(key uint64) ([]storage.PageID, bool) {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		if c.rec != nil {
			c.rec.Record(obs.Event{Kind: obs.PredCacheMiss})
		}
		return nil, false
	}
	sh.moveFront(e)
	pages := e.pages
	sh.mu.Unlock()
	c.hits.Add(1)
	if c.rec != nil {
		c.rec.Record(obs.Event{Kind: obs.PredCacheHit})
	}
	return pages, true
}

// put stores a prediction, evicting the shard's least-recently-used entry
// at capacity. The pages slice is stored as-is and must not be mutated by
// the caller afterwards.
func (c *predCache) put(key uint64, pages []storage.PageID) {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		// Concurrent misses on the same plan both infer and both store;
		// last writer wins (the results are identical anyway — inference is
		// deterministic).
		e.pages = pages
		sh.moveFront(e)
		sh.mu.Unlock()
		return
	}
	evicted := false
	if len(sh.entries) >= sh.cap {
		old := sh.tail
		sh.unlink(old)
		delete(sh.entries, old.key)
		old.pages = nil // release to GC; readers may still hold the slice
		old.next = sh.free
		sh.free = old
		evicted = true
	}
	e := sh.free
	if e != nil {
		sh.free = e.next
		e.next = nil
	} else {
		e = new(pcEntry)
	}
	e.key = key
	e.pages = pages
	sh.pushFront(e)
	sh.entries[key] = e
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		if c.rec != nil {
			c.rec.Record(obs.Event{Kind: obs.PredCacheEvict})
		}
	}
}

// len returns the total entry count across shards.
func (c *predCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}

// capacity returns the bound the cache enforces (the sum of shard caps;
// ceiling division may round the configured value up by at most
// shards-1).
func (c *predCache) capacity() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// pushFront inserts a detached entry at the head.
//
//pythia:noalloc
func (sh *pcShard) pushFront(e *pcEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes an entry from the list.
//
//pythia:noalloc
func (sh *pcShard) unlink(e *pcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveFront marks an entry most recently used.
//
//pythia:noalloc
func (sh *pcShard) moveFront(e *pcEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
