package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/spec"
)

// feedbackBody marshals a feedback request.
func feedbackBody(t *testing.T, id string, pages []pageJSON) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(feedbackRequest{PredictionID: id, Pages: pages}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestFeedbackRoundTrip drives the online ground-truth loop end to end:
// predict, report the touched pages back, and watch the score land in the
// response, the server-wide window, the serving replica's window, and the
// obs event stream.
func TestFeedbackRoundTrip(t *testing.T) {
	srv, w := testServer(t)

	rr := doRequest(t, srv, http.MethodPost, "/v1/predict",
		specBody(t, spec.FromQuery(w.Instances[1].Query)))
	if rr.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rr.Code, rr.Body.String())
	}
	var pred predictResponse
	if err := json.NewDecoder(rr.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if pred.PredictionID == "" {
		t.Fatal("predict response carries no prediction_id")
	}
	if pred.PageCount < 2 {
		t.Fatalf("fixture predicted only %d pages; the test needs a split", pred.PageCount)
	}

	// Ground truth: the executor touched half of what was prefetched and
	// nothing else, so precision = ½ (up to rounding) and recall = 1.
	touched := pred.Pages[:pred.PageCount/2]
	before := srv.metrics.events.Get(obs.QualityScored)
	rr = doRequest(t, srv, http.MethodPost, "/v1/feedback", feedbackBody(t, pred.PredictionID, touched))
	if rr.Code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", rr.Code, rr.Body.String())
	}
	var fb feedbackResponse
	if err := json.NewDecoder(rr.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	if fb.Predicted != pred.PageCount || fb.Actual != len(touched) || fb.TruePositives != len(touched) {
		t.Fatalf("score sets wrong: %+v (predicted %d, touched %d)", fb, pred.PageCount, len(touched))
	}
	if fb.Recall != 1 {
		t.Fatalf("recall = %v, want 1 (every touched page was prefetched)", fb.Recall)
	}
	if want := float64(len(touched)) / float64(pred.PageCount); fb.Precision != want {
		t.Fatalf("precision = %v, want %v", fb.Precision, want)
	}
	if fb.Workload != "t91" || fb.Replica != 0 {
		t.Fatalf("feedback not attributed: %+v", fb)
	}
	if got := srv.metrics.events.Get(obs.QualityScored); got != before+1 {
		t.Fatalf("QualityScored counter %d, want %d", got, before+1)
	}

	// The score is visible on /stats: the aggregate block and the serving
	// replica's row.
	rr = doRequest(t, srv, http.MethodGet, "/stats", nil)
	var st statsResponse
	if err := json.NewDecoder(rr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Quality.Scored == 0 || st.Quality.Window == 0 || st.Quality.Precision == 0 {
		t.Fatalf("aggregate quality block empty after feedback: %+v", st.Quality)
	}
	if len(st.Replicas) == 0 || st.Replicas[0].QualityScored == 0 {
		t.Fatalf("replica quality row empty after feedback: %+v", st.Replicas)
	}

	// One feedback per prediction: the slot is consumed.
	rr = doRequest(t, srv, http.MethodPost, "/v1/feedback", feedbackBody(t, pred.PredictionID, touched))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("duplicate feedback status %d, want 404", rr.Code)
	}
	if env := decodeEnvelope(t, rr); env.Error.Code != CodeUnknownPrediction {
		t.Fatalf("duplicate feedback code %q", env.Error.Code)
	}
}

func TestFeedbackRejectsBadInput(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"unknown id", `{"prediction_id":"p-999999999","pages":[]}`, http.StatusNotFound, CodeUnknownPrediction},
		{"malformed id", `{"prediction_id":"nope","pages":[]}`, http.StatusNotFound, CodeUnknownPrediction},
		{"malformed body", `{"prediction_id":`, http.StatusBadRequest, CodeInvalidSpec},
		{"unknown object", `{"prediction_id":"p-1","pages":[{"object":"no_such_relation","page":0}]}`, http.StatusBadRequest, CodeInvalidSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doRequest(t, srv, http.MethodPost, "/v1/feedback", strings.NewReader(tc.body))
			if rr.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", rr.Code, tc.code, rr.Body.String())
			}
			if env := decodeEnvelope(t, rr); env.Error.Code != tc.want {
				t.Fatalf("code %q, want %q", env.Error.Code, tc.want)
			}
		})
	}
	if rr := doRequest(t, srv, http.MethodGet, "/v1/feedback", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET feedback status %d, want 405", rr.Code)
	}
}

// TestServeDriftMonitorOnTrainingMix pins the serve-side drift wiring on an
// isolated server over the shared trained system: the training mix evaluates
// without alarming, /stats carries the baseline identity, and the aggregate
// drift block advances.
func TestServeDriftMonitorOnTrainingMix(t *testing.T) {
	_, w := testServer(t)
	srv := mustServer(t, fixtureSys.DB, fixtureSys, NewMetrics(nil), Options{})
	defer srv.Close()

	// 160 training-mix predictions cross the serve tier's 64-plan evaluation
	// cadence at least twice.
	for i := 0; i < 160; i++ {
		inst := w.Instances[i%len(w.Instances)]
		rr := doRequest(t, srv, http.MethodPost, "/v1/predict", specBody(t, spec.FromQuery(inst.Query)))
		if rr.Code != http.StatusOK {
			t.Fatalf("predict %d status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	rr := doRequest(t, srv, http.MethodGet, "/stats", nil)
	var st statsResponse
	if err := json.NewDecoder(rr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Drift.Evaluations < 2 {
		t.Fatalf("drift evaluations = %d, want >= 2 after 160 plans", st.Drift.Evaluations)
	}
	if st.Drift.State != "ok" || st.Drift.Alarms != 0 || st.Drift.Warnings != 0 {
		t.Fatalf("training mix drifted on serve: %+v", st.Drift)
	}
	id := fixtureSys.BaselineID()
	if id == nil {
		t.Fatal("fixture system has no baseline")
	}
	if st.Baseline == nil || st.Baseline.Hash != id.Hash {
		t.Fatalf("/stats baseline %+v, want hash %s", st.Baseline, id.Hash)
	}
	if len(st.Replicas) != 1 || st.Replicas[0].Drift.Evaluations != st.Drift.Evaluations {
		t.Fatalf("replica drift row does not reconcile with the aggregate: %+v", st.Replicas)
	}
}

// TestUptimeMonotonic pins the /stats monotonic-uptime guarantee: rewinding
// the wall clock drops Uptime but never UptimeMonotonic.
func TestUptimeMonotonic(t *testing.T) {
	m := NewMetrics(nil)
	now := time.Unix(1_700_000_000, 0)
	m.setClock(func() time.Time { return now })

	now = now.Add(10 * time.Second)
	if got := m.UptimeMonotonic(); got != 10*time.Second {
		t.Fatalf("monotonic uptime %v, want 10s", got)
	}
	// Wall clock steps back 4s (NTP correction): plain uptime follows, the
	// monotonic reading holds its high-water mark.
	now = now.Add(-4 * time.Second)
	if got := m.Uptime(); got != 6*time.Second {
		t.Fatalf("uptime %v, want 6s", got)
	}
	if got := m.UptimeMonotonic(); got != 10*time.Second {
		t.Fatalf("monotonic uptime dropped to %v after clock step", got)
	}
	// The clock catches up past the mark: monotonic resumes tracking.
	now = now.Add(10 * time.Second)
	if got := m.UptimeMonotonic(); got != 16*time.Second {
		t.Fatalf("monotonic uptime %v, want 16s", got)
	}
}
