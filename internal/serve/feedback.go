package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/pythia-db/pythia/internal/storage"
)

// trackSlots bounds the prediction tracker: the last trackSlots predictions
// are correlatable via /v1/feedback. A slot is keyed by id modulo the ring
// size, so an id naturally expires once trackSlots newer predictions have
// been issued — no sweeper, no timestamps, O(1) insert and take.
const trackSlots = 4096

// predRecord remembers one served prediction long enough for its feedback to
// arrive: the issued page set, the workload that answered, and the replica
// that served it (so the score lands on that replica's quality window).
type predRecord struct {
	id       uint64
	workload string
	replica  int
	pages    []storage.PageID
}

// predTracker is the fixed-size ring of recent predictions behind
// /v1/feedback. Insert happens on the predict path — one mutex acquisition
// and one slot write, no allocation beyond retaining the already-built page
// slice — and take consumes the slot, so each prediction accepts exactly one
// feedback report.
type predTracker struct {
	mu    sync.Mutex
	next  uint64
	slots [trackSlots]predRecord
}

// note records one served prediction and returns its wire id ("p-<n>").
func (t *predTracker) note(workload string, replica int, pages []storage.PageID) string {
	t.mu.Lock()
	t.next++
	id := t.next
	t.slots[id%trackSlots] = predRecord{id: id, workload: workload, replica: replica, pages: pages}
	t.mu.Unlock()
	return fmt.Sprintf("p-%d", id)
}

// take resolves a wire id and consumes its slot. ok is false for a malformed
// id, an id that was never issued, one already consumed, or one overwritten
// by trackSlots newer predictions.
func (t *predTracker) take(wire string) (predRecord, bool) {
	num, found := strings.CutPrefix(wire, "p-")
	if !found {
		return predRecord{}, false
	}
	id, err := strconv.ParseUint(num, 10, 64)
	if err != nil || id == 0 {
		return predRecord{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := &t.slots[id%trackSlots]
	if slot.id != id {
		return predRecord{}, false
	}
	rec := *slot
	*slot = predRecord{}
	return rec, true
}
