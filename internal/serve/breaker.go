package serve

import (
	"sync"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
)

// breaker states, in gauge order (the value exported as
// pythia_breaker_state).
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

var breakerStateNames = [...]string{"closed", "half_open", "open"}

// breaker is a consecutive-error circuit breaker over the model path.
// Closed is the healthy state; threshold consecutive model failures trip it
// open, and while open every prediction answers from the fallback path
// without touching the model. After cooldown the breaker half-opens: trial
// requests probe the model again, one success closes it, one failure
// re-opens it. A threshold <= 0 disables the breaker entirely.
//
// State transitions are recorded as obs events (BreakerOpen,
// BreakerHalfOpen, BreakerClosed) so trips are visible on /metrics.
//
// The breaker never calls time.Now directly: every clock read goes through
// the injected now field. This is the serving tier's standard clock
// convention — newBreaker wires time.Now for production, and tests assign a
// fake so cooldown expiry is driven by advancing a variable instead of
// sleeping (see breaker_test.go, and Metrics.setClock for the same pattern
// on the metrics hub). The deterministic core enforces the equivalent rule
// statically via the detclock analyzer and package-level timeNow vars.
type breaker struct {
	threshold int
	cooldown  time.Duration
	rec       obs.Recorder
	now       func() time.Time // injected clock; time.Now outside tests

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration, rec obs.Recorder) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, rec: rec, now: time.Now}
}

//pythia:noalloc
func (b *breaker) record(k obs.Kind) {
	if b.rec != nil {
		b.rec.Record(obs.Event{Kind: k, Query: obs.NoQuery})
	}
}

// allow reports whether the model path may be tried right now, half-opening
// an open breaker whose cooldown has elapsed.
//
//pythia:noalloc
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.record(obs.BreakerHalfOpen)
	}
	return true
}

// success records a healthy model response, closing a half-open breaker.
//
//pythia:noalloc
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.record(obs.BreakerClosed)
	}
}

// failure records a model error, tripping the breaker at the threshold (or
// immediately when a half-open trial fails).
//
//pythia:noalloc
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen ||
		(b.state == breakerClosed && b.consecutive >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.record(obs.BreakerOpen)
	}
}

// blocked reports whether the breaker is open with an unelapsed cooldown —
// the state in which routing to this replica is pointless, since every
// prediction answers from the fallback path. Once the cooldown elapses,
// blocked reports false even though the state is still open, so the pool
// keeps routing the trial request that lets allow() half-open the breaker.
//
//pythia:noalloc
func (b *breaker) blocked() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// stateValue returns the state as the gauge value (closed=0, half_open=1,
// open=2).
func (b *breaker) stateValue() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// State returns the state's name for /stats.
func (b *breaker) State() string { return breakerStateNames[b.stateValue()] }
