package serve

import (
	"fmt"
	"io"
	"strconv"

	"github.com/pythia-db/pythia/internal/obs"
)

// writePrometheus renders the full metrics surface in the Prometheus text
// exposition format (version 0.0.4): request counters, latency histograms,
// prediction outcomes, per-kind event totals, and derived per-level hit
// ratios. Output order is deterministic.
func (s *Server) writePrometheus(w io.Writer) {
	m := s.metrics

	fmt.Fprintln(w, "# HELP pythia_http_requests_total HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE pythia_http_requests_total counter")
	for _, row := range m.snapshotRequests() {
		fmt.Fprintf(w, "pythia_http_requests_total{endpoint=%q,code=%q} %d\n",
			row.Endpoint, strconv.Itoa(row.Code), row.Count)
	}

	fmt.Fprintln(w, "# HELP pythia_http_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE pythia_http_request_duration_seconds histogram")
	endpoints, hists := m.histograms()
	for i, ep := range endpoints {
		h := hists[i]
		cum := h.Cumulative()
		for j, bound := range h.Bounds() {
			fmt.Fprintf(w, "pythia_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(bound.Seconds()), cum[j])
		}
		fmt.Fprintf(w, "pythia_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n",
			ep, cum[len(cum)-1])
		fmt.Fprintf(w, "pythia_http_request_duration_seconds_sum{endpoint=%q} %s\n",
			ep, formatFloat(h.Sum().Seconds()))
		fmt.Fprintf(w, "pythia_http_request_duration_seconds_count{endpoint=%q} %d\n",
			ep, h.Count())
	}

	fmt.Fprintln(w, "# HELP pythia_predictions_total Served predictions by outcome.")
	fmt.Fprintln(w, "# TYPE pythia_predictions_total counter")
	total, fb := m.predictions.Load(), m.fallbacks.Load()
	fmt.Fprintf(w, "pythia_predictions_total{outcome=\"matched\"} %d\n", total-fb)
	fmt.Fprintf(w, "pythia_predictions_total{outcome=\"fallback\"} %d\n", fb)

	fmt.Fprintln(w, "# HELP pythia_predicted_pages_total Pages across all predicted sets.")
	fmt.Fprintln(w, "# TYPE pythia_predicted_pages_total counter")
	fmt.Fprintf(w, "pythia_predicted_pages_total %d\n", m.predictedPages.Load())

	fmt.Fprintln(w, "# HELP pythia_events_total Cache-hierarchy and system events by kind.")
	fmt.Fprintln(w, "# TYPE pythia_events_total counter")
	snap := m.events.Snapshot()
	for k := obs.Kind(0); k < obs.KindCount; k++ {
		fmt.Fprintf(w, "pythia_events_total{kind=%q} %d\n", k.String(), snap.Get(k))
	}

	fmt.Fprintln(w, "# HELP pythia_buffer_hit_ratio Buffer pool hit ratio over recorded events.")
	fmt.Fprintln(w, "# TYPE pythia_buffer_hit_ratio gauge")
	fmt.Fprintf(w, "pythia_buffer_hit_ratio %s\n", formatFloat(snap.HitRatio(obs.BufferHit, obs.BufferMiss)))
	fmt.Fprintln(w, "# HELP pythia_oscache_hit_ratio OS page cache hit ratio over recorded events.")
	fmt.Fprintln(w, "# TYPE pythia_oscache_hit_ratio gauge")
	fmt.Fprintf(w, "pythia_oscache_hit_ratio %s\n", formatFloat(snap.HitRatio(obs.OSCacheHit, obs.OSCacheMiss)))

	fmt.Fprintln(w, "# HELP pythia_workloads Trained workloads loaded in the server.")
	fmt.Fprintln(w, "# TYPE pythia_workloads gauge")
	fmt.Fprintf(w, "pythia_workloads %d\n", len(s.inf.Workloads()))

	params := 0
	for _, tw := range s.inf.Workloads() {
		params += tw.Pred.ParamCount()
	}
	fmt.Fprintln(w, "# HELP pythia_model_params Total trained model parameters (one replica).")
	fmt.Fprintln(w, "# TYPE pythia_model_params gauge")
	fmt.Fprintf(w, "pythia_model_params %d\n", params)

	// Replica topology. Aggregated across replicas — no per-replica labels, so
	// the exposition shape is independent of -replicas; per-replica rows live
	// on /v1/admin/replicas.
	st := s.inf.Status()
	fmt.Fprintln(w, "# HELP pythia_replicas Model replicas in the serving generation.")
	fmt.Fprintln(w, "# TYPE pythia_replicas gauge")
	fmt.Fprintf(w, "pythia_replicas %d\n", len(st.Replicas))
	fmt.Fprintln(w, "# HELP pythia_model_generation Serving model generation (increments on reload).")
	fmt.Fprintln(w, "# TYPE pythia_model_generation gauge")
	fmt.Fprintf(w, "pythia_model_generation %d\n", st.Generation)
	fmt.Fprintln(w, "# HELP pythia_model_swaps_total Completed zero-downtime model swaps.")
	fmt.Fprintln(w, "# TYPE pythia_model_swaps_total counter")
	fmt.Fprintf(w, "pythia_model_swaps_total %d\n", st.Swaps)
	var replicaSheds uint64
	for _, r := range st.Replicas {
		replicaSheds += r.Shed
	}
	fmt.Fprintln(w, "# HELP pythia_replica_sheds_total Requests shed at a replica's bounded work queue.")
	fmt.Fprintln(w, "# TYPE pythia_replica_sheds_total counter")
	fmt.Fprintf(w, "pythia_replica_sheds_total %d\n", replicaSheds)

	fmt.Fprintln(w, "# HELP pythia_requests_shed_total Requests refused at the in-flight limit.")
	fmt.Fprintln(w, "# TYPE pythia_requests_shed_total counter")
	fmt.Fprintf(w, "pythia_requests_shed_total %d\n", m.sheds.Load())

	fmt.Fprintln(w, "# HELP pythia_inference_timeouts_total Inferences that exceeded the request timeout.")
	fmt.Fprintln(w, "# TYPE pythia_inference_timeouts_total counter")
	fmt.Fprintf(w, "pythia_inference_timeouts_total %d\n", m.timeouts.Load())

	fmt.Fprintln(w, "# HELP pythia_replica_failovers_total Requests rerouted past an unhealthy, saturated, or faulting replica to a ring successor.")
	fmt.Fprintln(w, "# TYPE pythia_replica_failovers_total counter")
	fmt.Fprintf(w, "pythia_replica_failovers_total %d\n", m.failovers.Load())

	fmt.Fprintln(w, "# HELP pythia_request_hedges_total Hedge attempts launched after the hedge delay elapsed.")
	fmt.Fprintln(w, "# TYPE pythia_request_hedges_total counter")
	fmt.Fprintf(w, "pythia_request_hedges_total %d\n", m.hedges.Load())

	fmt.Fprintln(w, "# HELP pythia_request_hedge_wins_total Hedged requests where the hedge attempt answered first.")
	fmt.Fprintln(w, "# TYPE pythia_request_hedge_wins_total counter")
	fmt.Fprintf(w, "pythia_request_hedge_wins_total %d\n", m.hedgeWins.Load())

	// Inference fast path, summed across replicas. The families render whether
	// or not the cache and batcher are enabled (zeros when disabled) so the
	// exposition shape is independent of configuration.
	var pcHits, pcMisses, pcEvicts uint64
	var pcEntries, pcCap int
	for _, r := range st.Replicas {
		pcHits += r.CacheHits
		pcMisses += r.CacheMisses
		pcEvicts += r.CacheEvictions
		pcEntries += r.CacheEntries
		pcCap += r.CacheCapacity
	}
	fmt.Fprintln(w, "# HELP pythia_predcache_hits_total Prediction-cache hits (requests answered with zero inference).")
	fmt.Fprintln(w, "# TYPE pythia_predcache_hits_total counter")
	fmt.Fprintf(w, "pythia_predcache_hits_total %d\n", pcHits)
	fmt.Fprintln(w, "# HELP pythia_predcache_misses_total Prediction-cache misses (inference ran).")
	fmt.Fprintln(w, "# TYPE pythia_predcache_misses_total counter")
	fmt.Fprintf(w, "pythia_predcache_misses_total %d\n", pcMisses)
	fmt.Fprintln(w, "# HELP pythia_predcache_evictions_total Prediction-cache evictions at capacity.")
	fmt.Fprintln(w, "# TYPE pythia_predcache_evictions_total counter")
	fmt.Fprintf(w, "pythia_predcache_evictions_total %d\n", pcEvicts)
	fmt.Fprintln(w, "# HELP pythia_predcache_entries Prediction-cache resident entries.")
	fmt.Fprintln(w, "# TYPE pythia_predcache_entries gauge")
	fmt.Fprintf(w, "pythia_predcache_entries %d\n", pcEntries)
	fmt.Fprintln(w, "# HELP pythia_predcache_capacity Prediction-cache entry bound (0 = caching disabled).")
	fmt.Fprintln(w, "# TYPE pythia_predcache_capacity gauge")
	fmt.Fprintf(w, "pythia_predcache_capacity %d\n", pcCap)

	var batches, batched uint64
	for _, r := range st.Replicas {
		batches += r.Batches
		batched += r.BatchedReqs
	}
	fmt.Fprintln(w, "# HELP pythia_inference_batches_total Multi-request batched forward passes dispatched.")
	fmt.Fprintln(w, "# TYPE pythia_inference_batches_total counter")
	fmt.Fprintf(w, "pythia_inference_batches_total %d\n", batches)
	fmt.Fprintln(w, "# HELP pythia_batched_requests_total Requests served inside a multi-request batch.")
	fmt.Fprintln(w, "# TYPE pythia_batched_requests_total counter")
	fmt.Fprintf(w, "pythia_batched_requests_total %d\n", batched)

	fmt.Fprintln(w, "# HELP pythia_breaker_state Worst circuit-breaker state across replicas (0=closed, 1=half_open, 2=open).")
	fmt.Fprintln(w, "# TYPE pythia_breaker_state gauge")
	breakerValue, _ := worstBreakerState(st)
	fmt.Fprintf(w, "pythia_breaker_state %d\n", breakerValue)

	fmt.Fprintln(w, "# HELP pythia_replica_health Worst replica health state (0=healthy, 1=degraded, 2=probation, 3=quarantined).")
	fmt.Fprintln(w, "# TYPE pythia_replica_health gauge")
	healthValue, _ := worstHealthState(st)
	fmt.Fprintf(w, "pythia_replica_health %d\n", healthValue)

	// Prediction quality and workload drift. Like the fast-path families the
	// quality rows render unconditionally (zeros before any feedback), so the
	// exposition shape never depends on whether clients report ground truth.
	q := s.qualitySnapshot()
	fmt.Fprintln(w, "# HELP pythia_quality_feedback_total Predictions scored against executor ground truth via /v1/feedback.")
	fmt.Fprintln(w, "# TYPE pythia_quality_feedback_total counter")
	fmt.Fprintf(w, "pythia_quality_feedback_total %d\n", q.Scored)
	fmt.Fprintln(w, "# HELP pythia_quality_precision Windowed micro-averaged precision of scored predictions (0 = no data).")
	fmt.Fprintln(w, "# TYPE pythia_quality_precision gauge")
	fmt.Fprintf(w, "pythia_quality_precision %s\n", formatFloat(q.Precision))
	fmt.Fprintln(w, "# HELP pythia_quality_recall Windowed micro-averaged recall of scored predictions (0 = no data).")
	fmt.Fprintln(w, "# TYPE pythia_quality_recall gauge")
	fmt.Fprintf(w, "pythia_quality_recall %s\n", formatFloat(q.Recall))

	drift := aggregateDrift(st)
	fmt.Fprintln(w, "# HELP pythia_drift_state Worst drift-detector state across replicas (0=ok, 1=warning, 2=alarm).")
	fmt.Fprintln(w, "# TYPE pythia_drift_state gauge")
	driftValue := 0
	for _, r := range st.Replicas {
		if r.Drift.StateValue > driftValue {
			driftValue = r.Drift.StateValue
		}
	}
	fmt.Fprintf(w, "pythia_drift_state %d\n", driftValue)
	fmt.Fprintln(w, "# HELP pythia_drift_score Max live-vs-baseline divergence (PSI) across replicas at the last evaluation.")
	fmt.Fprintln(w, "# TYPE pythia_drift_score gauge")
	fmt.Fprintf(w, "pythia_drift_score %s\n", formatFloat(drift.Score))
	fmt.Fprintln(w, "# HELP pythia_drift_evaluations_total Drift evaluations across replicas.")
	fmt.Fprintln(w, "# TYPE pythia_drift_evaluations_total counter")
	fmt.Fprintf(w, "pythia_drift_evaluations_total %d\n", drift.Evaluations)
	fmt.Fprintln(w, "# HELP pythia_drift_warnings_total Drift warning transitions across replicas.")
	fmt.Fprintln(w, "# TYPE pythia_drift_warnings_total counter")
	fmt.Fprintf(w, "pythia_drift_warnings_total %d\n", drift.Warnings)
	fmt.Fprintln(w, "# HELP pythia_drift_alarms_total Drift alarm transitions across replicas.")
	fmt.Fprintln(w, "# TYPE pythia_drift_alarms_total counter")
	fmt.Fprintf(w, "pythia_drift_alarms_total %d\n", drift.Alarms)
	fmt.Fprintln(w, "# HELP pythia_drift_recoveries_total Drift recoveries (alarm or warning back to ok) across replicas.")
	fmt.Fprintln(w, "# TYPE pythia_drift_recoveries_total counter")
	fmt.Fprintf(w, "pythia_drift_recoveries_total %d\n", drift.Recoveries)

	fmt.Fprintln(w, "# HELP pythia_draining Whether the server is draining for shutdown.")
	fmt.Fprintln(w, "# TYPE pythia_draining gauge")
	drain := 0
	if s.draining.Load() {
		drain = 1
	}
	fmt.Fprintf(w, "pythia_draining %d\n", drain)

	fmt.Fprintln(w, "# HELP pythia_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE pythia_uptime_seconds gauge")
	fmt.Fprintf(w, "pythia_uptime_seconds %s\n", formatFloat(m.Uptime().Seconds()))

	b := m.Build()
	fmt.Fprintln(w, "# HELP pythia_build_info Build identity of the running binary (value is always 1).")
	fmt.Fprintln(w, "# TYPE pythia_build_info gauge")
	fmt.Fprintf(w, "pythia_build_info{go_version=%q,path=%q,revision=%q} 1\n",
		b.GoVersion, b.Path, b.Revision)
}

// formatFloat renders a float the way Prometheus expects (shortest exact
// decimal, no exponent surprises for the magnitudes we emit).
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
