// Package serve implements pythia-serve's HTTP surface: the versioned /v1
// prediction API, deprecated unversioned aliases, and the runtime
// observability endpoints (/metrics in Prometheus text format, /stats as
// JSON). The cmd/pythia-serve binary is a thin flag-parsing wrapper around
// this package, which keeps the whole surface testable with httptest.
//
// API contract:
//
//	POST /v1/predict   QuerySpec JSON → predicted pages + matched workload
//	POST /v1/explain   QuerySpec JSON → plan display + Algorithm 2 tokens
//	GET  /v1/healthz   liveness + model inventory
//	GET  /metrics      Prometheus text exposition
//	GET  /stats        JSON statistics snapshot
//
// The unversioned /predict, /explain, and /healthz aliases still work but
// answer with a Deprecation header pointing at their /v1 successors.
//
// Every non-200 response carries a typed JSON error envelope:
//
//	{"error": {"code": "invalid_spec", "message": "..."}}
//
// Handlers honor the request context: a prediction for a client that has
// disconnected is abandoned rather than computed to completion.
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/storage"
)

// Error codes of the JSON error envelope.
const (
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInvalidSpec      = "invalid_spec"
	CodePlanFailed       = "plan_failed"
	CodeClientGone       = "client_disconnected"
)

// StatusClientClosedRequest mirrors nginx's 499: the client disconnected
// before the response was produced. Nothing is on the wire, but the status
// is visible in metrics.
const StatusClientClosedRequest = 499

// Server answers prediction requests over one trained System.
type Server struct {
	db      *catalog.Database
	sys     *corepythia.System
	metrics *Metrics
}

// New assembles a server over a database and its trained system. A nil
// metrics hub gets a fresh one (with its own event counters); pass the hub
// whose Events() you wired into the system's Config.Recorder to surface
// workload-matching and replay events on /metrics.
func New(db *catalog.Database, sys *corepythia.System, metrics *Metrics) *Server {
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	return &Server{db: db, sys: sys, metrics: metrics}
}

// Metrics returns the server's metrics hub.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler builds the full HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	versioned := map[string]http.HandlerFunc{
		"predict": s.handlePredict,
		"explain": s.handleExplain,
		"healthz": s.handleHealth,
	}
	for name, h := range versioned {
		mux.HandleFunc("/v1/"+name, s.metrics.instrument(name, h))
		mux.HandleFunc("/"+name, s.metrics.instrument(name, deprecated(name, h)))
	}
	mux.HandleFunc("/metrics", s.metrics.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/stats", s.metrics.instrument("stats", s.handleStats))
	return mux
}

// deprecated wraps an unversioned alias: same behaviour, plus RFC 8594
// deprecation signalling toward the /v1 successor.
func deprecated(name string, h http.HandlerFunc) http.HandlerFunc {
	successor := "/v1/" + name
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

type errorEnvelope struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorEnvelope{Error: errorInfo{Code: code, Message: msg}}); err != nil {
		log.Printf("serve: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

type predictResponse struct {
	Workload  string     `json:"workload"`
	Fallback  bool       `json:"fallback"`
	Pages     []pageJSON `json:"pages"`
	PageCount int        `json:"page_count"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Plan      string     `json:"plan,omitempty"`
	Tokens    []string   `json:"tokens,omitempty"`
}

type pageJSON struct {
	Object string `json:"object"`
	Page   uint32 `json:"page"`
}

// decodeQuery parses and plans the posted QuerySpec, writing the typed
// error envelope on any failure.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (plan.Query, *plan.Node, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST a QuerySpec JSON document")
		return plan.Query{}, nil, false
	}
	qs, err := spec.Decode(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	q, err := qs.ToQuery()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	root, err := plan.NewPlanner(s.db).Plan(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodePlanFailed, err.Error())
		return plan.Query{}, nil, false
	}
	return q, root, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	start := time.Now()
	resp := predictResponse{}
	if tw := s.sys.Match(q); tw != nil {
		resp.Workload = tw.Name
		// Model inference is the slow step; run it off the handler
		// goroutine so a disconnected client aborts the request instead of
		// holding it to completion.
		done := make(chan []storage.PageID, 1)
		go func() { done <- s.sys.LimitPrefetch(tw.Pred.PredictParallel(root)) }()
		var pages []storage.PageID
		select {
		case pages = <-done:
		case <-ctx.Done():
			writeError(w, StatusClientClosedRequest, CodeClientGone, ctx.Err().Error())
			return
		}
		for _, p := range pages {
			name := fmt.Sprint(p.Object)
			if obj := s.db.Registry.Lookup(p.Object); obj != nil {
				name = obj.Name
			}
			resp.Pages = append(resp.Pages, pageJSON{Object: name, Page: uint32(p.Page)})
		}
	} else {
		resp.Fallback = true
	}
	resp.PageCount = len(resp.Pages)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.metrics.observePrediction(resp.PageCount, resp.Fallback)
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	_, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, StatusClientClosedRequest, CodeClientGone, err.Error())
		return
	}
	writeJSON(w, predictResponse{
		Plan:   root.Display(),
		Tokens: serialize.Serialize(root, serialize.DefaultConfig()),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	type workloadInfo struct {
		Name   string `json:"name"`
		Models int    `json:"models"`
		Params int    `json:"params"`
	}
	var info []workloadInfo
	for _, tw := range s.sys.Workloads() {
		info = append(info, workloadInfo{
			Name: tw.Name, Models: len(tw.Pred.Models()), Params: tw.Pred.ParamCount(),
		})
	}
	writeJSON(w, map[string]any{
		"status":         "ok",
		"workloads":      info,
		"uptime_seconds": s.metrics.Uptime().Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Requests       []requestRow      `json:"requests"`
	Latency        []latencyRow      `json:"latency"`
	Predictions    uint64            `json:"predictions"`
	Fallbacks      uint64            `json:"fallbacks"`
	FallbackRate   float64           `json:"fallback_rate"`
	PredictedPages uint64            `json:"predicted_pages"`
	AvgSetSize     float64           `json:"avg_set_size"`
	Events         map[string]uint64 `json:"events"`
	BufferHitRatio float64           `json:"buffer_hit_ratio"`
	OSHitRatio     float64           `json:"oscache_hit_ratio"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	m := s.metrics
	snap := m.events.Snapshot()
	resp := statsResponse{
		UptimeSeconds:  m.Uptime().Seconds(),
		Requests:       m.snapshotRequests(),
		Latency:        m.snapshotLatency(),
		Predictions:    m.predictions.Load(),
		Fallbacks:      m.fallbacks.Load(),
		PredictedPages: m.predictedPages.Load(),
		Events:         snap.Map(),
		BufferHitRatio: snap.HitRatio(obs.BufferHit, obs.BufferMiss),
		OSHitRatio:     snap.HitRatio(obs.OSCacheHit, obs.OSCacheMiss),
	}
	if resp.Predictions > 0 {
		resp.FallbackRate = float64(resp.Fallbacks) / float64(resp.Predictions)
		resp.AvgSetSize = float64(resp.PredictedPages) / float64(resp.Predictions)
	}
	writeJSON(w, resp)
}
