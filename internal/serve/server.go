// Package serve implements pythia-serve's HTTP surface: the versioned /v1
// prediction API, deprecated unversioned aliases, and the runtime
// observability endpoints (/metrics in Prometheus text format, /stats as
// JSON). The cmd/pythia-serve binary is a thin flag-parsing wrapper around
// this package, which keeps the whole surface testable with httptest.
//
// API contract:
//
//	POST /v1/predict          QuerySpec JSON → predicted pages + matched workload
//	POST /v1/explain          QuerySpec JSON → plan display + Algorithm 2 tokens
//	GET  /v1/healthz          liveness + model inventory
//	POST /v1/admin/reload     zero-downtime model swap from a snapshot file
//	GET  /v1/admin/replicas   replica topology (generation, queues, breakers, caches)
//	GET  /metrics             Prometheus text exposition
//	GET  /stats               JSON statistics snapshot
//
// The unversioned aliases of every /v1 endpoint still work but answer with a
// Deprecation header pointing at their /v1 successors.
//
// Every non-200 response carries a typed JSON error envelope:
//
//	{"error": {"code": "invalid_spec", "message": "..."}}
//
// Handlers honor the request context: a prediction for a client that has
// disconnected is abandoned rather than computed to completion.
//
// The server degrades rather than piles up: request bodies are capped (413),
// in-flight model requests are bounded with load shedding (503 +
// Retry-After), inference runs under a per-request timeout (504), and a
// consecutive-error circuit breaker trips the model path to the fallback
// answer, half-opening after a cooldown. All of it is visible on /metrics
// and /stats.
//
// The model tier behind the handlers is an Inferencer: a Single instance by
// default, or — with Options.Replicas > 1 — a Pool of independent model
// replicas behind a consistent-hash router keyed on plan fingerprints, with
// per-replica bounded work queues and snapshot-based zero-downtime model
// swap (POST /v1/admin/reload, or SIGHUP in pythia-serve).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/storage"
)

// Error codes of the JSON error envelope.
const (
	CodeMethodNotAllowed  = "method_not_allowed"
	CodeInvalidSpec       = "invalid_spec"
	CodePlanFailed        = "plan_failed"
	CodeClientGone        = "client_disconnected"
	CodeTooLarge          = "body_too_large"
	CodeOverloaded        = "overloaded"
	CodeDeadline          = "deadline_exceeded"
	CodeModelError        = "model_error"
	CodeUnknownPrediction = "unknown_prediction"
)

// StatusClientClosedRequest mirrors nginx's 499: the client disconnected
// before the response was produced. Nothing is on the wire, but the status
// is visible in metrics.
const StatusClientClosedRequest = 499

// Options are the server's resilience and topology knobs. The zero value of
// each field selects a sensible default; a negative value disables that
// protection entirely (useful in tests and trusted deployments) unless a
// field documents otherwise. Call Normalize to resolve the convention and
// validate combinations; New does it for you.
type Options struct {
	// RequestTimeout bounds model inference per request; an expired budget
	// answers 504 deadline_exceeded. Default 5s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served model requests (predict and
	// explain) across the whole server; excess load is shed with 503 +
	// Retry-After. Default 64.
	MaxInFlight int
	// MaxBodyBytes caps the request body; larger posts answer 413. Default
	// 1 MiB.
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive model-error count that trips a
	// replica's circuit breaker to the fallback path. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before half-opening
	// to trial requests. Default 10s. Disabling the cooldown while the
	// breaker is enabled is rejected by Normalize (the breaker could never
	// half-open).
	BreakerCooldown time.Duration
	// Fault, when non-nil, injects transient model errors at the injector's
	// Serve site — the deterministic chaos hook the breaker tests and drills
	// run against. Shared across replicas under one lock.
	Fault *fault.Injector
	// CacheEntries bounds each replica's plan-fingerprint prediction cache;
	// identical plans answer from it without running inference. Default 4096
	// entries per replica; negative disables caching.
	CacheEntries int
	// BatchWindow is how long a cache miss waits to coalesce with other
	// concurrent misses into one batched forward pass. Only misses that
	// arrive while another miss is in flight wait at all — an idle server
	// always takes the direct path. Default 2ms; negative disables
	// micro-batching.
	BatchWindow time.Duration
	// MaxBatch caps how many misses coalesce into one batched pass; a full
	// batch dispatches before the window elapses. Default 16.
	MaxBatch int
	// Quantize switches every trained model to int8 inference at server
	// construction (per-tensor symmetric weights; see nn.QuantizeMat).
	// Irreversible for the process lifetime of the models.
	Quantize bool
	// Replicas is the number of independent model replicas behind the
	// consistent-hash router. 1 (the default) serves a Single instance with
	// no routing layer; N > 1 snapshots the trained system and decodes N-1
	// clones, so forward passes on distinct replicas run truly in parallel.
	// Negative is rejected by Normalize.
	Replicas int
	// QueueDepth bounds each replica's concurrently admitted requests;
	// overflow is shed with 503 before it queues behind a busy model.
	// Default 32 per replica; negative disables the per-replica bound
	// (MaxInFlight still applies globally).
	QueueDepth int
	// SnapshotPath is the default snapshot file for POST /v1/admin/reload
	// and SIGHUP reloads (a pythia.System.Save bundle). Empty means reloads
	// must name a path explicitly.
	SnapshotPath string
	// DrainTimeout bounds how long a superseded generation waits for its
	// in-flight requests after a model swap before its batch collector is
	// torn down (requests still complete on the direct path afterwards).
	// Default 10s; negative is rejected by Normalize.
	DrainTimeout time.Duration
	// QuarantineThreshold is the failure count, within a replica's sliding
	// outcome window, that quarantines the replica: the ring fails its shard
	// over to successors and only backoff-gated probes reach it until probes
	// succeed. Default 5 (half that marks the replica degraded); negative
	// disables health tracking entirely.
	QuarantineThreshold int
	// QuarantineBackoff is the initial delay before a quarantined replica is
	// probed; each failed probe doubles it (capped at 16×). Default 1s.
	// Disabling the backoff while health tracking is enabled is rejected by
	// Normalize (a quarantined replica could never be probed).
	QuarantineBackoff time.Duration
	// QuarantineProbes is how many consecutive probe successes re-admit a
	// quarantined replica to normal routing. Default 3.
	QuarantineProbes int
	// MaxFailovers bounds the failover cascade: how many ring successors a
	// request may try past its owning replica when the owner is quarantined,
	// saturated, or faulting. Default 2; negative disables failover (requests
	// fail exactly as pre-pool: 503 on saturation, 500 on faults).
	MaxFailovers int
	// HedgeAfter arms request hedging: when a pool prediction has waited this
	// long (or the pool's observed p95 latency, whichever is larger), a
	// second attempt launches on the ring successor and the first response
	// wins, canceling the loser. Zero (the default) disables hedging — this
	// field is opt-in, not zero=default. Requires Replicas > 1; negative is
	// rejected by Normalize.
	HedgeAfter time.Duration
}

// Normalize resolves the zero=default / negative=disable convention into
// effective values and rejects contradictory combinations, mirroring the
// pythia.Config and replay.Config convention. It is what New applies;
// callers that want to fail gracefully (or log the resolved options, as
// pythia-serve does) call it themselves first.
//
// Normalize resolves "disabled" to 0, so it is not idempotent for disabled
// fields — normalize the original options, not an already-normalized copy.
func (o Options) Normalize() (Options, error) {
	if o.Replicas < 0 {
		return o, fmt.Errorf("serve: Replicas must be >= 0, got %d", o.Replicas)
	}
	if o.DrainTimeout < 0 {
		return o, fmt.Errorf("serve: negative DrainTimeout %v", o.DrainTimeout)
	}
	if o.BreakerThreshold > 0 && o.BreakerCooldown < 0 {
		return o, fmt.Errorf("serve: BreakerThreshold %d with disabled BreakerCooldown: an open breaker could never half-open (disable the breaker with a negative threshold instead)", o.BreakerThreshold)
	}
	if o.MaxBatch > 1 && o.BatchWindow < 0 {
		return o, fmt.Errorf("serve: MaxBatch %d with micro-batching disabled (negative BatchWindow)", o.MaxBatch)
	}
	if o.QuarantineThreshold > 0 && o.QuarantineBackoff < 0 {
		return o, fmt.Errorf("serve: QuarantineThreshold %d with disabled QuarantineBackoff: a quarantined replica could never be probed (disable health tracking with a negative threshold instead)", o.QuarantineThreshold)
	}
	if o.HedgeAfter < 0 {
		return o, fmt.Errorf("serve: negative HedgeAfter %v", o.HedgeAfter)
	}
	if o.HedgeAfter > 0 && o.Replicas >= 0 && o.Replicas <= 1 {
		return o, fmt.Errorf("serve: HedgeAfter %v requires Replicas > 1: a single replica has no successor to hedge on", o.HedgeAfter)
	}
	if o.MaxBatch > 0 && o.MaxInFlight > 0 && o.MaxBatch > o.MaxInFlight {
		return o, fmt.Errorf("serve: MaxBatch %d exceeds MaxInFlight %d: a full batch could never assemble", o.MaxBatch, o.MaxInFlight)
	}
	def := func(v, d time.Duration) time.Duration {
		if v == 0 {
			return d
		}
		return max(v, 0)
	}
	o.RequestTimeout = def(o.RequestTimeout, 5*time.Second)
	o.BreakerCooldown = def(o.BreakerCooldown, 10*time.Second)
	switch {
	case o.MaxInFlight == 0:
		o.MaxInFlight = 64
	case o.MaxInFlight < 0:
		o.MaxInFlight = 0
	}
	switch {
	case o.MaxBodyBytes == 0:
		o.MaxBodyBytes = 1 << 20
	case o.MaxBodyBytes < 0:
		o.MaxBodyBytes = 0
	}
	switch {
	case o.BreakerThreshold == 0:
		o.BreakerThreshold = 5
	case o.BreakerThreshold < 0:
		o.BreakerThreshold = 0
	}
	o.BatchWindow = def(o.BatchWindow, 2*time.Millisecond)
	switch {
	case o.CacheEntries == 0:
		o.CacheEntries = 4096
	case o.CacheEntries < 0:
		o.CacheEntries = 0
	}
	switch {
	case o.MaxBatch == 0:
		o.MaxBatch = 16
	case o.MaxBatch < 1:
		o.MaxBatch = 1
	}
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 32
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
	switch {
	case o.QuarantineThreshold == 0:
		o.QuarantineThreshold = 5
	case o.QuarantineThreshold < 0:
		o.QuarantineThreshold = 0
	}
	o.QuarantineBackoff = def(o.QuarantineBackoff, time.Second)
	switch {
	case o.QuarantineProbes == 0:
		o.QuarantineProbes = 3
	case o.QuarantineProbes < 0:
		o.QuarantineProbes = 1
	}
	switch {
	case o.MaxFailovers == 0:
		o.MaxFailovers = 2
	case o.MaxFailovers < 0:
		o.MaxFailovers = 0
	}
	return o, nil
}

// Server answers prediction requests over an Inferencer — a Single trained
// instance or a replica Pool. The Server owns the HTTP concerns (decoding,
// planning, global shedding, timeouts, response rendering, observability);
// the Inferencer owns everything that touches a model.
type Server struct {
	db      *catalog.Database
	inf     Inferencer
	metrics *Metrics
	opts    Options

	// fgate is the chaos-injection gate shared with the Inferencer's
	// replicas when the server built it (nil for NewWithInferencer).
	fgate *faultGate

	// tracker correlates served predictions with their /v1/feedback reports;
	// qwin is the server-wide sliding window of feedback scores (per-replica
	// windows live on the instances). qmu guards qwin only.
	tracker predTracker
	qmu     sync.Mutex
	qwin    *quality.Window

	inflight  atomic.Int64
	draining  atomic.Bool
	closeOnce sync.Once
}

// New assembles a server over a database and its trained system, building a
// Single instance or a replica Pool from Options.Replicas. A nil metrics hub
// gets a fresh one (with its own event counters); pass the hub whose
// Events() you wired into the system's Config.Recorder to surface
// workload-matching and replay events on /metrics. Options are normalized
// (see Options.Normalize); invalid combinations are errors.
func New(db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) (*Server, error) {
	norm, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	fgate := &faultGate{inj: norm.Fault}
	var inf Inferencer
	if norm.Replicas > 1 {
		pool, err := newPool(db, sys, metrics, fgate, norm)
		if err != nil {
			return nil, err
		}
		inf = pool
	} else {
		inf = newSingle(db, sys, metrics, fgate, norm)
	}
	return &Server{db: db, inf: inf, metrics: metrics, opts: norm, fgate: fgate,
		qwin: quality.NewWindow(qualityWindowSize)}, nil
}

// NewWithInferencer assembles a server over an externally built Inferencer —
// the seam server tests use to stub inference without training anything, and
// the hook for alternative model tiers. Options are normalized the same way
// as New, but topology fields (Replicas, Quantize) are the Inferencer's
// business and ignored here.
func NewWithInferencer(db *catalog.Database, inf Inferencer, metrics *Metrics, opts Options) (*Server, error) {
	norm, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	return &Server{db: db, inf: inf, metrics: metrics, opts: norm,
		qwin: quality.NewWindow(qualityWindowSize)}, nil
}

// Close tears down the inferencer's background machinery (micro-batch
// collectors; requests keep working on the direct path afterwards). Safe to
// call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { s.inf.Close() })
}

// Options returns the server's resolved effective options.
func (s *Server) Options() Options { return s.opts }

// Inferencer returns the model tier behind the server.
func (s *Server) Inferencer() Inferencer { return s.inf }

// SetDraining flips the server's draining flag: /v1/healthz answers 503 so
// load balancers stop routing here while in-flight requests finish (the
// graceful-shutdown handshake cmd/pythia-serve performs on SIGTERM).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns the server's metrics hub.
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetFault swaps the chaos injector on a live server (nil clears it).
// Production arms Options.Fault at construction; chaos drills (tests,
// cmd/pythia-load's -chaos-* flags) use this to clear or retarget injected
// faults mid-run so recovery is observable.
func (s *Server) SetFault(inj *fault.Injector) { s.fgate.set(inj) }

// inst returns the current first replica for tests that reach into the
// model path (cache, batcher, breaker state). Nil for stubbed Inferencers.
func (s *Server) inst() *instance {
	switch v := s.inf.(type) {
	case *Single:
		return v.cur.Load()
	case *Pool:
		return v.cur.Load().instances[0]
	}
	return nil
}

// Handler builds the full HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	versioned := map[string]http.HandlerFunc{
		"predict":        s.shed(s.handlePredict),
		"explain":        s.shed(s.handleExplain),
		"feedback":       s.handleFeedback,
		"healthz":        s.handleHealth,
		"admin/reload":   s.handleReload,
		"admin/replicas": s.handleReplicas,
	}
	for name, h := range versioned {
		mux.HandleFunc("/v1/"+name, s.metrics.instrument(name, h))
		mux.HandleFunc("/"+name, s.metrics.instrument(name, deprecated(name, h)))
	}
	mux.HandleFunc("/metrics", s.metrics.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/stats", s.metrics.instrument("stats", s.handleStats))
	return mux
}

// deprecated wraps an unversioned alias: same behaviour, plus RFC 8594
// deprecation signalling toward the /v1 successor.
func deprecated(name string, h http.HandlerFunc) http.HandlerFunc {
	successor := "/v1/" + name
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// shed wraps a model-path handler with bounded-concurrency load shedding:
// past MaxInFlight, requests are refused immediately with 503 + Retry-After
// instead of queueing behind a saturated model.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if limit := int64(s.opts.MaxInFlight); limit > 0 {
			if s.inflight.Add(1) > limit {
				s.inflight.Add(-1)
				s.metrics.sheds.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, CodeOverloaded,
					fmt.Sprintf("server is at its in-flight limit (%d); retry shortly", limit))
				return
			}
			defer s.inflight.Add(-1)
		}
		h(w, r)
	}
}

type errorEnvelope struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorEnvelope{Error: errorInfo{Code: code, Message: msg}}); err != nil {
		log.Printf("serve: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

type predictResponse struct {
	// PredictionID correlates this answer with a later POST /v1/feedback
	// report; it stays resolvable until trackSlots newer predictions have
	// been served.
	PredictionID string     `json:"prediction_id,omitempty"`
	Workload     string     `json:"workload"`
	Fallback     bool       `json:"fallback"`
	Cached       bool       `json:"cached,omitempty"`   // answered from the prediction cache (zero inference)
	Degraded     string     `json:"degraded,omitempty"` // why the model path was skipped (e.g. breaker_open)
	Replica      int        `json:"replica"`            // serving replica index (-1 = never routed)
	Generation   uint64     `json:"generation"`         // model generation that answered
	Pages        []pageJSON `json:"pages"`
	PageCount    int        `json:"page_count"`
	ElapsedMS    float64    `json:"elapsed_ms"`
	Plan         string     `json:"plan,omitempty"`
	Tokens       []string   `json:"tokens,omitempty"`
}

type pageJSON struct {
	Object string `json:"object"`
	Page   uint32 `json:"page"`
}

// decodeQuery parses and plans the posted QuerySpec, writing the typed
// error envelope on any failure.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (plan.Query, *plan.Node, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST a QuerySpec JSON document")
		return plan.Query{}, nil, false
	}
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, body, s.opts.MaxBodyBytes)
	}
	qs, err := spec.Decode(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return plan.Query{}, nil, false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	q, err := qs.ToQuery()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	root, err := plan.NewPlanner(s.db).Plan(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodePlanFailed, err.Error())
		return plan.Query{}, nil, false
	}
	return q, root, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	start := time.Now()
	pred, err := s.inf.Predict(ctx, q, root)
	if err != nil {
		s.writePredictError(w, err)
		return
	}
	resp := predictResponse{
		Workload:   pred.Workload,
		Fallback:   pred.Fallback,
		Cached:     pred.Cached,
		Degraded:   pred.Degraded,
		Replica:    pred.Replica,
		Generation: pred.Generation,
	}
	s.writePages(&resp, pred.Pages)
	resp.PageCount = len(resp.Pages)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	resp.PredictionID = s.tracker.note(pred.Workload, pred.Replica, pred.Pages)
	s.metrics.observePrediction(resp.PageCount, resp.Fallback)
	writeJSON(w, resp)
}

// feedbackRequest is the POST /v1/feedback body: a prediction id from a
// predict response plus the pages the query's execution actually touched
// (same shape as the predict response's pages array).
type feedbackRequest struct {
	PredictionID string     `json:"prediction_id"`
	Pages        []pageJSON `json:"pages"`
}

// feedbackResponse echoes the score computed from one feedback report.
type feedbackResponse struct {
	PredictionID  string  `json:"prediction_id"`
	Workload      string  `json:"workload,omitempty"`
	Replica       int     `json:"replica"`
	Predicted     int     `json:"predicted"`
	Actual        int     `json:"actual"`
	TruePositives int     `json:"true_positives"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	WastedRatio   float64 `json:"wasted_ratio"`
}

// handleFeedback scores a served prediction against the pages its query
// actually touched: the online ground-truth loop that makes serve-tier
// precision and recall measurable without replaying anything. The score
// lands in the server-wide quality window, the serving replica's window, the
// obs event stream (obs.QualityScored), and the span trace.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST a feedback JSON document")
		return
	}
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, body, s.opts.MaxBodyBytes)
	}
	var req feedbackRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	actual := make([]storage.PageID, 0, len(req.Pages))
	for _, p := range req.Pages {
		obj := s.db.Registry.LookupName(p.Object)
		if obj == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidSpec,
				fmt.Sprintf("unknown object %q in feedback pages", p.Object))
			return
		}
		actual = append(actual, storage.PageID{Object: obj.ID, Page: storage.PageNum(p.Page)})
	}
	rec, ok := s.tracker.take(req.PredictionID)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownPrediction,
			fmt.Sprintf("prediction %q is unknown, already scored, or expired", req.PredictionID))
		return
	}
	sc := quality.ScoreSets(rec.pages, actual)
	s.qmu.Lock()
	s.qwin.Add(sc)
	s.qmu.Unlock()
	if ins := s.instByID(rec.replica); ins != nil {
		ins.feedback(sc)
	}
	s.metrics.events.Record(obs.Event{Kind: obs.QualityScored, Query: obs.NoQuery})
	s.metrics.markQuality()
	writeJSON(w, feedbackResponse{
		PredictionID:  req.PredictionID,
		Workload:      rec.workload,
		Replica:       rec.replica,
		Predicted:     sc.Predicted,
		Actual:        sc.Actual,
		TruePositives: sc.TruePos,
		Precision:     sc.Precision(),
		Recall:        sc.Recall(),
		WastedRatio:   sc.WastedRatio(),
	})
}

// instByID resolves a replica id to the serving instance carrying it (nil
// for stubbed Inferencers, a replica id from a superseded generation, or a
// pool-level fallback that never routed).
func (s *Server) instByID(id int) *instance {
	switch v := s.inf.(type) {
	case *Single:
		if ins := v.cur.Load(); ins != nil && ins.id == id {
			return ins
		}
	case *Pool:
		for _, ins := range v.cur.Load().instances {
			if ins.id == id {
				return ins
			}
		}
	}
	return nil
}

// writePredictError maps Inferencer sentinel errors onto the HTTP error
// contract: replica saturation → 503, injected model faults → 500, expired
// budgets → 504, disconnected clients → 499.
func (s *Server) writePredictError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		s.metrics.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeOverloaded,
			"routed replica's work queue is full; retry shortly")
	case errors.Is(err, errModelFault):
		writeError(w, http.StatusInternalServerError, CodeModelError, "transient model error (injected)")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadline, "inference exceeded the request timeout")
	case errors.Is(err, context.Canceled):
		writeError(w, StatusClientClosedRequest, CodeClientGone, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeModelError, err.Error())
	}
}

// writePages resolves object names and appends the page set to the response.
func (s *Server) writePages(resp *predictResponse, pages []storage.PageID) {
	for _, p := range pages {
		name := fmt.Sprint(p.Object)
		if obj := s.db.Registry.Lookup(p.Object); obj != nil {
			name = obj.Name
		}
		resp.Pages = append(resp.Pages, pageJSON{Object: name, Page: uint32(p.Page)})
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	_, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, StatusClientClosedRequest, CodeClientGone, err.Error())
		return
	}
	e := s.inf.Explain(root)
	writeJSON(w, predictResponse{Plan: e.Plan, Tokens: e.Tokens, Replica: -1})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	type workloadInfo struct {
		Name   string `json:"name"`
		Models int    `json:"models"`
		Params int    `json:"params"`
	}
	var info []workloadInfo
	for _, tw := range s.inf.Workloads() {
		info = append(info, workloadInfo{
			Name: tw.Name, Models: len(tw.Pred.Models()), Params: tw.Pred.ParamCount(),
		})
	}
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Draining: answer 503 so load balancers stop routing here while
		// in-flight requests finish.
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"workloads":      info,
		"uptime_seconds": s.metrics.Uptime().Seconds(),
	}); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// UptimeMonotonicSeconds is the high-water uptime reading: it never
	// decreases between scrapes even when the wall clock behind
	// UptimeSeconds steps backward.
	UptimeMonotonicSeconds float64           `json:"uptime_monotonic_seconds"`
	Build                  BuildInfo         `json:"build"`
	Requests               []requestRow      `json:"requests"`
	Latency                []latencyRow      `json:"latency"`
	Predictions            uint64            `json:"predictions"`
	Fallbacks              uint64            `json:"fallbacks"`
	FallbackRate           float64           `json:"fallback_rate"`
	PredictedPages         uint64            `json:"predicted_pages"`
	AvgSetSize             float64           `json:"avg_set_size"`
	Events                 map[string]uint64 `json:"events"`
	BufferHitRatio         float64           `json:"buffer_hit_ratio"`
	OSHitRatio             float64           `json:"oscache_hit_ratio"`
	Shed                   uint64            `json:"requests_shed"`
	Timeouts               uint64            `json:"inference_timeouts"`
	Failovers              uint64            `json:"replica_failovers"`
	Hedges                 uint64            `json:"request_hedges"`
	HedgeWins              uint64            `json:"request_hedge_wins"`
	BreakerState           string            `json:"breaker_state"`
	HealthState            string            `json:"health_state"`
	Draining               bool              `json:"draining"`
	Generation             uint64            `json:"generation"`
	Swaps                  uint64            `json:"swaps"`
	Replicas               []ReplicaStatus   `json:"replicas"`
	PredCache              *predCacheStats   `json:"predcache,omitempty"`
	Batching               *batchingStats    `json:"batching,omitempty"`
	// Quality aggregates the feedback-scored prediction quality server-wide;
	// per-replica views are in the replicas rows. Always present — zeros mean
	// "no feedback yet", and rendering the block unconditionally keeps the
	// /stats shape configuration-independent.
	Quality qualityStats `json:"quality"`
	// Drift aggregates the replicas' drift detectors: worst state, max score,
	// summed counters.
	Drift driftAggStats `json:"drift"`
	// Baseline identifies the drift baseline the serving snapshot carries
	// (absent when the system is untrained, predates baselines, or the
	// Inferencer is stubbed).
	Baseline *corepythia.BaselineID `json:"baseline,omitempty"`
}

// qualityStats is the /stats view of the server-wide feedback window.
type qualityStats struct {
	// Scored is the lifetime count of feedback reports scored.
	Scored uint64 `json:"scored"`
	// Window is how many scores the sliding window currently holds.
	Window int `json:"window"`
	// Precision and Recall are micro-averaged over the window (0 when empty).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// WastedRatio is 1 − precision over the window.
	WastedRatio float64 `json:"wasted_ratio"`
}

// driftAggStats is the /stats fleet view of drift: the single-state summary
// a dashboard alerts on, aggregated across replicas the same way the breaker
// and health gauges are.
type driftAggStats struct {
	State       string  `json:"state"`
	Score       float64 `json:"score"`
	Evaluations uint64  `json:"evaluations"`
	Warnings    uint64  `json:"warnings"`
	Alarms      uint64  `json:"alarms"`
	Recoveries  uint64  `json:"recoveries"`
}

// aggregateDrift folds the replicas' drift snapshots into the fleet view:
// worst state and max score (a healthy replica must not mask an alarming
// one), summed counters.
func aggregateDrift(st InfStatus) driftAggStats {
	agg := driftAggStats{State: quality.DriftOK.String()}
	worst := 0
	for _, r := range st.Replicas {
		if r.Drift.StateValue > worst {
			worst = r.Drift.StateValue
		}
		if r.Drift.Score > agg.Score {
			agg.Score = r.Drift.Score
		}
		agg.Evaluations += r.Drift.Evaluations
		agg.Warnings += r.Drift.Warnings
		agg.Alarms += r.Drift.Alarms
		agg.Recoveries += r.Drift.Recoveries
	}
	agg.State = quality.DriftState(worst).String()
	return agg
}

// qualitySnapshot reads the server-wide feedback window.
func (s *Server) qualitySnapshot() qualityStats {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	q := qualityStats{
		Scored:    s.qwin.Seen(),
		Window:    s.qwin.Len(),
		Precision: s.qwin.Precision(),
		Recall:    s.qwin.Recall(),
	}
	if q.Window > 0 {
		q.WastedRatio = 1 - q.Precision
	}
	return q
}

// predCacheStats is the /stats view of the prediction caches, summed across
// replicas.
type predCacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// batchingStats is the /stats view of the micro-batchers, summed across
// replicas.
type batchingStats struct {
	WindowMS        float64 `json:"window_ms"`
	MaxBatch        int     `json:"max_batch"`
	Batches         uint64  `json:"batches"`
	BatchedRequests uint64  `json:"batched_requests"`
}

// worstBreakerState returns the most-degraded breaker state across replicas
// (open > half_open > closed) — the single-gauge view a fleet dashboard
// alerts on; per-replica states are in the replicas rows.
func worstBreakerState(st InfStatus) (value int, name string) {
	for _, r := range st.Replicas {
		if r.BreakerValue > value {
			value = r.BreakerValue
		}
	}
	return value, breakerStateNames[value]
}

// worstHealthState returns the most-degraded replica health state
// (quarantined > probation > degraded > healthy), the fleet-dashboard
// companion gauge to worstBreakerState.
func worstHealthState(st InfStatus) (value int, name string) {
	for _, r := range st.Replicas {
		if r.HealthValue > value {
			value = r.HealthValue
		}
	}
	return value, healthStateNames[value]
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	m := s.metrics
	snap := m.events.Snapshot()
	st := s.inf.Status()
	_, breakerName := worstBreakerState(st)
	_, healthName := worstHealthState(st)
	resp := statsResponse{
		UptimeSeconds:          m.Uptime().Seconds(),
		UptimeMonotonicSeconds: m.UptimeMonotonic().Seconds(),
		Build:                  m.Build(),
		Requests:               m.snapshotRequests(),
		Latency:                m.snapshotLatency(),
		Predictions:            m.predictions.Load(),
		Fallbacks:              m.fallbacks.Load(),
		PredictedPages:         m.predictedPages.Load(),
		Events:                 snap.Map(),
		BufferHitRatio:         snap.HitRatio(obs.BufferHit, obs.BufferMiss),
		OSHitRatio:             snap.HitRatio(obs.OSCacheHit, obs.OSCacheMiss),
		Shed:                   m.sheds.Load(),
		Timeouts:               m.timeouts.Load(),
		Failovers:              m.failovers.Load(),
		Hedges:                 m.hedges.Load(),
		HedgeWins:              m.hedgeWins.Load(),
		BreakerState:           breakerName,
		HealthState:            healthName,
		Draining:               s.draining.Load(),
		Generation:             st.Generation,
		Swaps:                  st.Swaps,
		Replicas:               st.Replicas,
		Quality:                s.qualitySnapshot(),
		Drift:                  aggregateDrift(st),
	}
	if b, ok := s.inf.(baseliner); ok {
		resp.Baseline = b.BaselineID()
	}
	if resp.Predictions > 0 {
		resp.FallbackRate = float64(resp.Fallbacks) / float64(resp.Predictions)
		resp.AvgSetSize = float64(resp.PredictedPages) / float64(resp.Predictions)
	}
	if s.opts.CacheEntries > 0 {
		pc := &predCacheStats{}
		for _, r := range st.Replicas {
			pc.Entries += r.CacheEntries
			pc.Capacity += r.CacheCapacity
			pc.Hits += r.CacheHits
			pc.Misses += r.CacheMisses
			pc.Evictions += r.CacheEvictions
		}
		resp.PredCache = pc
	}
	if s.opts.BatchWindow > 0 && s.opts.MaxBatch > 1 {
		bt := &batchingStats{
			WindowMS: float64(s.opts.BatchWindow.Microseconds()) / 1000,
			MaxBatch: s.opts.MaxBatch,
		}
		for _, r := range st.Replicas {
			bt.Batches += r.Batches
			bt.BatchedRequests += r.BatchedReqs
		}
		resp.Batching = bt
	}
	writeJSON(w, resp)
}
