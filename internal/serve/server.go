// Package serve implements pythia-serve's HTTP surface: the versioned /v1
// prediction API, deprecated unversioned aliases, and the runtime
// observability endpoints (/metrics in Prometheus text format, /stats as
// JSON). The cmd/pythia-serve binary is a thin flag-parsing wrapper around
// this package, which keeps the whole surface testable with httptest.
//
// API contract:
//
//	POST /v1/predict   QuerySpec JSON → predicted pages + matched workload
//	POST /v1/explain   QuerySpec JSON → plan display + Algorithm 2 tokens
//	GET  /v1/healthz   liveness + model inventory
//	GET  /metrics      Prometheus text exposition
//	GET  /stats        JSON statistics snapshot
//
// The unversioned /predict, /explain, and /healthz aliases still work but
// answer with a Deprecation header pointing at their /v1 successors.
//
// Every non-200 response carries a typed JSON error envelope:
//
//	{"error": {"code": "invalid_spec", "message": "..."}}
//
// Handlers honor the request context: a prediction for a client that has
// disconnected is abandoned rather than computed to completion.
//
// The server degrades rather than piles up: request bodies are capped (413),
// in-flight model requests are bounded with load shedding (503 +
// Retry-After), inference runs under a per-request timeout (504), and a
// consecutive-error circuit breaker trips the model path to the fallback
// answer, half-opening after a cooldown. All of it is visible on /metrics
// and /stats.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	corepythia "github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/spec"
	"github.com/pythia-db/pythia/internal/storage"
)

// Error codes of the JSON error envelope.
const (
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInvalidSpec      = "invalid_spec"
	CodePlanFailed       = "plan_failed"
	CodeClientGone       = "client_disconnected"
	CodeTooLarge         = "body_too_large"
	CodeOverloaded       = "overloaded"
	CodeDeadline         = "deadline_exceeded"
	CodeModelError       = "model_error"
)

// StatusClientClosedRequest mirrors nginx's 499: the client disconnected
// before the response was produced. Nothing is on the wire, but the status
// is visible in metrics.
const StatusClientClosedRequest = 499

// Options are the server's resilience knobs. The zero value of each field
// selects a sensible default; a negative value disables that protection
// entirely (useful in tests and trusted deployments).
type Options struct {
	// RequestTimeout bounds model inference per request; an expired budget
	// answers 504 deadline_exceeded. Default 5s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently served model requests (predict and
	// explain); excess load is shed with 503 + Retry-After. Default 64.
	MaxInFlight int
	// MaxBodyBytes caps the request body; larger posts answer 413. Default
	// 1 MiB.
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive model-error count that trips the
	// circuit breaker to the fallback path. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before half-opening
	// to trial requests. Default 10s.
	BreakerCooldown time.Duration
	// Fault, when non-nil, injects transient model errors at the injector's
	// Serve site — the deterministic chaos hook the breaker tests and drills
	// run against.
	Fault *fault.Injector
	// CacheEntries bounds the plan-fingerprint prediction cache; identical
	// plans answer from it without running inference. Default 4096 entries;
	// negative disables caching.
	CacheEntries int
	// BatchWindow is how long a cache miss waits to coalesce with other
	// concurrent misses into one batched forward pass. Only misses that
	// arrive while another miss is in flight wait at all — an idle server
	// always takes the direct path. Default 2ms; negative disables
	// micro-batching.
	BatchWindow time.Duration
	// MaxBatch caps how many misses coalesce into one batched pass; a full
	// batch dispatches before the window elapses. Default 16.
	MaxBatch int
	// Quantize switches every trained model to int8 inference at server
	// construction (per-tensor symmetric weights; see nn.QuantizeMat).
	// Irreversible for the process lifetime of the models.
	Quantize bool
}

// withDefaults resolves the zero/negative convention into effective values
// (zero now always means "disabled").
func (o Options) withDefaults() Options {
	def := func(v, d time.Duration) time.Duration {
		if v == 0 {
			return d
		}
		return max(v, 0)
	}
	o.RequestTimeout = def(o.RequestTimeout, 5*time.Second)
	o.BreakerCooldown = def(o.BreakerCooldown, 10*time.Second)
	switch {
	case o.MaxInFlight == 0:
		o.MaxInFlight = 64
	case o.MaxInFlight < 0:
		o.MaxInFlight = 0
	}
	switch {
	case o.MaxBodyBytes == 0:
		o.MaxBodyBytes = 1 << 20
	case o.MaxBodyBytes < 0:
		o.MaxBodyBytes = 0
	}
	switch {
	case o.BreakerThreshold == 0:
		o.BreakerThreshold = 5
	case o.BreakerThreshold < 0:
		o.BreakerThreshold = 0
	}
	o.BatchWindow = def(o.BatchWindow, 2*time.Millisecond)
	switch {
	case o.CacheEntries == 0:
		o.CacheEntries = 4096
	case o.CacheEntries < 0:
		o.CacheEntries = 0
	}
	switch {
	case o.MaxBatch == 0:
		o.MaxBatch = 16
	case o.MaxBatch < 1:
		o.MaxBatch = 1
	}
	return o
}

// Server answers prediction requests over one trained System.
type Server struct {
	db      *catalog.Database
	sys     *corepythia.System
	metrics *Metrics
	opts    Options
	breaker *breaker

	// cache and batcher are the inference fast path: identical plans answer
	// from cache (stage 1), concurrent distinct misses coalesce into batched
	// forward passes (stage 2). Either may be nil when disabled.
	cache   *predCache
	batcher *batcher
	// missInflight counts requests currently on the miss (inference) path;
	// a miss only routes to the batcher when others are already inferring,
	// so an idle server's p50 never pays the batch window.
	missInflight atomic.Int64

	inflight  atomic.Int64
	draining  atomic.Bool
	faultMu   sync.Mutex // fault.Injector is not synchronized
	closeOnce sync.Once
}

// New assembles a server over a database and its trained system. A nil
// metrics hub gets a fresh one (with its own event counters); pass the hub
// whose Events() you wired into the system's Config.Recorder to surface
// workload-matching and replay events on /metrics. Zero Options fields get
// defaults; see Options for the disable convention.
func New(db *catalog.Database, sys *corepythia.System, metrics *Metrics, opts Options) *Server {
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	opts = opts.withDefaults()
	s := &Server{
		db: db, sys: sys, metrics: metrics, opts: opts,
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, metrics.Events()),
	}
	if opts.CacheEntries > 0 {
		s.cache = newPredCache(opts.CacheEntries, metrics.Events())
	}
	if opts.BatchWindow > 0 && opts.MaxBatch > 1 {
		s.batcher = newBatcher(opts.BatchWindow, opts.MaxBatch)
	}
	if opts.Quantize {
		for _, tw := range sys.Workloads() {
			tw.Pred.Quantize()
		}
	}
	return s
}

// Close stops the micro-batching collector (requests keep working on the
// direct path afterwards). Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.batcher != nil {
			s.batcher.close()
		}
	})
}

// Options returns the server's resolved effective options.
func (s *Server) Options() Options { return s.opts }

// SetDraining flips the server's draining flag: /v1/healthz answers 503 so
// load balancers stop routing here while in-flight requests finish (the
// graceful-shutdown handshake cmd/pythia-serve performs on SIGTERM).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns the server's metrics hub.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler builds the full HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	versioned := map[string]http.HandlerFunc{
		"predict": s.shed(s.handlePredict),
		"explain": s.shed(s.handleExplain),
		"healthz": s.handleHealth,
	}
	for name, h := range versioned {
		mux.HandleFunc("/v1/"+name, s.metrics.instrument(name, h))
		mux.HandleFunc("/"+name, s.metrics.instrument(name, deprecated(name, h)))
	}
	mux.HandleFunc("/metrics", s.metrics.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/stats", s.metrics.instrument("stats", s.handleStats))
	return mux
}

// deprecated wraps an unversioned alias: same behaviour, plus RFC 8594
// deprecation signalling toward the /v1 successor.
func deprecated(name string, h http.HandlerFunc) http.HandlerFunc {
	successor := "/v1/" + name
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// shed wraps a model-path handler with bounded-concurrency load shedding:
// past MaxInFlight, requests are refused immediately with 503 + Retry-After
// instead of queueing behind a saturated model.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if limit := int64(s.opts.MaxInFlight); limit > 0 {
			if s.inflight.Add(1) > limit {
				s.inflight.Add(-1)
				s.metrics.sheds.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, CodeOverloaded,
					fmt.Sprintf("server is at its in-flight limit (%d); retry shortly", limit))
				return
			}
			defer s.inflight.Add(-1)
		}
		h(w, r)
	}
}

// serveFault draws the injector's Serve site under a lock (sim.Rand is not
// synchronized and handlers run concurrently).
func (s *Server) serveFault() bool {
	if s.opts.Fault == nil {
		return false
	}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.opts.Fault.Fire(fault.Serve, 0)
}

type errorEnvelope struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorEnvelope{Error: errorInfo{Code: code, Message: msg}}); err != nil {
		log.Printf("serve: encoding error response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

type predictResponse struct {
	Workload  string     `json:"workload"`
	Fallback  bool       `json:"fallback"`
	Cached    bool       `json:"cached,omitempty"`   // answered from the prediction cache (zero inference)
	Degraded  string     `json:"degraded,omitempty"` // why the model path was skipped (e.g. breaker_open)
	Pages     []pageJSON `json:"pages"`
	PageCount int        `json:"page_count"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Plan      string     `json:"plan,omitempty"`
	Tokens    []string   `json:"tokens,omitempty"`
}

type pageJSON struct {
	Object string `json:"object"`
	Page   uint32 `json:"page"`
}

// decodeQuery parses and plans the posted QuerySpec, writing the typed
// error envelope on any failure.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (plan.Query, *plan.Node, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST a QuerySpec JSON document")
		return plan.Query{}, nil, false
	}
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, body, s.opts.MaxBodyBytes)
	}
	qs, err := spec.Decode(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return plan.Query{}, nil, false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	q, err := qs.ToQuery()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return plan.Query{}, nil, false
	}
	root, err := plan.NewPlanner(s.db).Plan(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodePlanFailed, err.Error())
		return plan.Query{}, nil, false
	}
	return q, root, true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	start := time.Now()
	resp := predictResponse{}
	tw := s.sys.Match(q)

	// Stage 1: prediction cache. Checked before the breaker and fault hooks —
	// a hit performs zero inference and cannot fail, so cached plans keep
	// answering even while the model path is degraded.
	var fp uint64
	cacheable := tw != nil && s.cache != nil
	if cacheable {
		fp = fingerprint(tw.Name, tw.Pred.EncodePlan(root))
		if pages, hit := s.cache.get(fp); hit {
			s.metrics.markCache(true)
			resp.Workload = tw.Name
			resp.Cached = true
			s.writePages(&resp, pages)
			resp.PageCount = len(resp.Pages)
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			s.metrics.observePrediction(resp.PageCount, false)
			writeJSON(w, resp)
			return
		}
		s.metrics.markCache(false)
	}

	if tw != nil && !s.breaker.allow() {
		// Breaker open: answer from the fallback path without touching the
		// model. The client still gets a well-formed (empty) prediction —
		// prefetching is advisory, so degraded beats unavailable.
		resp.Degraded = "breaker_open"
		tw = nil
	}
	if tw != nil {
		if s.serveFault() {
			s.breaker.failure()
			writeError(w, http.StatusInternalServerError, CodeModelError, "transient model error (injected)")
			return
		}
		resp.Workload = tw.Name
		pages, ok := s.infer(ctx, w, tw, root)
		if !ok {
			return
		}
		if cacheable {
			// Only successful inferences populate the cache; faulted or
			// timed-out requests never do, so the cache cannot serve poison.
			s.cache.put(fp, pages)
		}
		s.writePages(&resp, pages)
	} else {
		resp.Fallback = true
	}
	resp.PageCount = len(resp.Pages)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.metrics.observePrediction(resp.PageCount, resp.Fallback)
	writeJSON(w, resp)
}

// infer runs the miss (inference) path. Stage 2 routing: a miss that arrives
// while other misses are in flight joins the micro-batcher; otherwise it
// runs the single-plan inference directly, so an idle server never pays the
// batch window. Either way the slow step runs off the handler goroutine so a
// disconnected client (or an expired budget) aborts the wait, not the work.
// On timeout or disconnect infer writes the error response itself and
// reports ok=false.
func (s *Server) infer(ctx context.Context, w http.ResponseWriter, tw *corepythia.Trained, root *plan.Node) (pages []storage.PageID, ok bool) {
	n := s.missInflight.Add(1)
	defer s.missInflight.Add(-1)
	done := make(chan batchRes, 1)
	if !(n > 1 && s.batcher != nil && s.batcher.enqueue(batchReq{tw: tw, root: root, res: done})) {
		go func() { done <- batchRes{pages: tw.Pred.PredictParallel(root), size: 1} }()
	}
	select {
	case res := <-done:
		s.breaker.success()
		if rec := s.metrics.Events(); rec != nil {
			rec.Record(obs.Event{Kind: obs.InferenceRun})
			if res.size > 1 {
				rec.Record(obs.Event{Kind: obs.InferenceBatched})
			}
		}
		return s.sys.LimitPrefetch(res.pages), true
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.metrics.timeouts.Add(1)
			s.breaker.failure()
			writeError(w, http.StatusGatewayTimeout, CodeDeadline, "inference exceeded the request timeout")
		} else {
			writeError(w, StatusClientClosedRequest, CodeClientGone, ctx.Err().Error())
		}
		return nil, false
	}
}

// writePages resolves object names and appends the page set to the response.
func (s *Server) writePages(resp *predictResponse, pages []storage.PageID) {
	for _, p := range pages {
		name := fmt.Sprint(p.Object)
		if obj := s.db.Registry.Lookup(p.Object); obj != nil {
			name = obj.Name
		}
		resp.Pages = append(resp.Pages, pageJSON{Object: name, Page: uint32(p.Page)})
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	_, root, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, StatusClientClosedRequest, CodeClientGone, err.Error())
		return
	}
	writeJSON(w, predictResponse{
		Plan:   root.Display(),
		Tokens: serialize.Serialize(root, serialize.DefaultConfig()),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	type workloadInfo struct {
		Name   string `json:"name"`
		Models int    `json:"models"`
		Params int    `json:"params"`
	}
	var info []workloadInfo
	for _, tw := range s.sys.Workloads() {
		info = append(info, workloadInfo{
			Name: tw.Name, Models: len(tw.Pred.Models()), Params: tw.Pred.ParamCount(),
		})
	}
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Draining: answer 503 so load balancers stop routing here while
		// in-flight requests finish.
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"workloads":      info,
		"uptime_seconds": s.metrics.Uptime().Seconds(),
	}); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Build          BuildInfo         `json:"build"`
	Requests       []requestRow      `json:"requests"`
	Latency        []latencyRow      `json:"latency"`
	Predictions    uint64            `json:"predictions"`
	Fallbacks      uint64            `json:"fallbacks"`
	FallbackRate   float64           `json:"fallback_rate"`
	PredictedPages uint64            `json:"predicted_pages"`
	AvgSetSize     float64           `json:"avg_set_size"`
	Events         map[string]uint64 `json:"events"`
	BufferHitRatio float64           `json:"buffer_hit_ratio"`
	OSHitRatio     float64           `json:"oscache_hit_ratio"`
	Shed           uint64            `json:"requests_shed"`
	Timeouts       uint64            `json:"inference_timeouts"`
	BreakerState   string            `json:"breaker_state"`
	Draining       bool              `json:"draining"`
	PredCache      *predCacheStats   `json:"predcache,omitempty"`
	Batching       *batchingStats    `json:"batching,omitempty"`
}

// predCacheStats is the /stats view of the prediction cache.
type predCacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// batchingStats is the /stats view of the micro-batcher.
type batchingStats struct {
	WindowMS        float64 `json:"window_ms"`
	MaxBatch        int     `json:"max_batch"`
	Batches         uint64  `json:"batches"`
	BatchedRequests uint64  `json:"batched_requests"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	m := s.metrics
	snap := m.events.Snapshot()
	resp := statsResponse{
		UptimeSeconds:  m.Uptime().Seconds(),
		Build:          m.Build(),
		Requests:       m.snapshotRequests(),
		Latency:        m.snapshotLatency(),
		Predictions:    m.predictions.Load(),
		Fallbacks:      m.fallbacks.Load(),
		PredictedPages: m.predictedPages.Load(),
		Events:         snap.Map(),
		BufferHitRatio: snap.HitRatio(obs.BufferHit, obs.BufferMiss),
		OSHitRatio:     snap.HitRatio(obs.OSCacheHit, obs.OSCacheMiss),
		Shed:           m.sheds.Load(),
		Timeouts:       m.timeouts.Load(),
		BreakerState:   s.breaker.State(),
		Draining:       s.draining.Load(),
	}
	if resp.Predictions > 0 {
		resp.FallbackRate = float64(resp.Fallbacks) / float64(resp.Predictions)
		resp.AvgSetSize = float64(resp.PredictedPages) / float64(resp.Predictions)
	}
	if s.cache != nil {
		resp.PredCache = &predCacheStats{
			Entries:   s.cache.len(),
			Capacity:  s.cache.capacity(),
			Hits:      s.cache.hits.Load(),
			Misses:    s.cache.misses.Load(),
			Evictions: s.cache.evictions.Load(),
		}
	}
	if s.batcher != nil {
		resp.Batching = &batchingStats{
			WindowMS:        float64(s.batcher.window.Microseconds()) / 1000,
			MaxBatch:        s.batcher.maxBatch,
			Batches:         s.batcher.batches.Load(),
			BatchedRequests: s.batcher.batched.Load(),
		}
	}
	writeJSON(w, resp)
}
