package serve

import (
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
)

// BuildInfo identifies the running binary on /metrics (the
// pythia_build_info gauge) and /stats (the build block): the Go toolchain,
// the main module path, and the VCS revision when the binary was built from
// a checkout. Unknown fields read "unknown" so the labels are always
// present.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path"`
	Revision  string `json:"revision"`
}

// readBuildInfo extracts BuildInfo from the binary's embedded build
// metadata.
func readBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: "unknown", Path: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	if info.Main.Path != "" {
		b.Path = info.Main.Path
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			b.Revision = s.Value
		}
	}
	return b
}

// Metrics aggregates everything the serving surface exposes on /metrics and
// /stats: HTTP request counts and latencies per endpoint, prediction
// outcomes (fallback rate, predicted-set sizes), and the system's
// observability counters (workload matching, and per-level cache events
// from any replay the system runs).
type Metrics struct {
	start time.Time

	// now is the clock behind uptime and request latencies. It follows the
	// same injected-clock convention as the circuit breaker: production code
	// leaves it at time.Now, tests swap in a fake via setClock so /metrics
	// and /stats bodies are byte-for-byte reproducible.
	now func() time.Time

	mu       sync.Mutex
	requests map[string]map[int]uint64 // endpoint → status code → count
	latency  map[string]*obs.Histogram // endpoint → request latency

	predictions    atomic.Uint64 // successful /predict responses
	fallbacks      atomic.Uint64 // predictions answered by the fallback path
	predictedPages atomic.Uint64 // total pages across predicted sets

	sheds     atomic.Uint64 // requests refused at the in-flight limit
	timeouts  atomic.Uint64 // inferences that blew the request timeout
	failovers atomic.Uint64 // requests rerouted past an unhealthy replica
	hedges    atomic.Uint64 // hedge attempts launched after the hedge delay
	hedgeWins atomic.Uint64 // hedged requests where the hedge answered first

	events *obs.AtomicCounters // system + replay event totals

	// monoNS is the high-water uptime reading in nanoseconds: UptimeMonotonic
	// never decreases across scrapes even if the wall clock steps backward
	// under Uptime (an NTP correction, or a test clock rewound on purpose).
	monoNS atomic.Int64

	build BuildInfo

	// tracer, when non-nil, records one span.HTTPSpan per instrumented
	// request (endpoint label, status-code detail, timestamps relative to
	// the hub's start epoch on its injected clock). Nil costs one nil-check.
	// Atomic because SetTracer runs after the hub is already shared with
	// request handlers reading it (surfaced by the atomicfield analyzer).
	tracer atomic.Pointer[span.Sync]
}

// NewMetrics returns an empty metrics hub recording system events into
// counters (a fresh AtomicCounters when nil). Wire the same counters into
// pythia's Config.Recorder so workload-matching and replay events surface
// here.
func NewMetrics(counters *obs.AtomicCounters) *Metrics {
	if counters == nil {
		counters = &obs.AtomicCounters{}
	}
	return &Metrics{
		start:    time.Now(),
		now:      time.Now,
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*obs.Histogram),
		events:   counters,
		build:    readBuildInfo(),
	}
}

// setClock replaces the wall clock and restarts the uptime epoch from it.
// Test-only: with a stepped fake clock every duration the hub reports is
// deterministic, which is what makes full-body golden tests of /metrics and
// /stats possible.
func (m *Metrics) setClock(now func() time.Time) {
	m.now = now
	m.start = now()
	m.monoNS.Store(0)
}

// setBuildInfo replaces the binary's build identity. Test-only, same role as
// setClock: ReadBuildInfo output varies by toolchain, so golden-body tests
// pin fixed values.
func (m *Metrics) setBuildInfo(b BuildInfo) { m.build = b }

// Build returns the binary's build identity as exposed on /metrics and
// /stats.
func (m *Metrics) Build() BuildInfo { return m.build }

// SetTracer attaches a concurrent span tracer recording one HTTPSpan per
// instrumented request (nil detaches). Timestamps are real time relative to
// the hub's start epoch, so a span.Report or Perfetto export of serving
// traffic lines up at zero.
func (m *Metrics) SetTracer(tr *span.Sync) { m.tracer.Store(tr) }

// Events returns the system event counters (also an obs.Recorder).
func (m *Metrics) Events() *obs.AtomicCounters { return m.events }

// Uptime reports time since the metrics hub was created.
func (m *Metrics) Uptime() time.Duration { return m.now().Sub(m.start) }

// UptimeMonotonic reports the high-water Uptime reading: guaranteed
// non-decreasing across calls, so dashboards diffing consecutive /stats
// scrapes never observe the server getting younger when the wall clock
// steps.
func (m *Metrics) UptimeMonotonic() time.Duration {
	for {
		cur := m.Uptime().Nanoseconds()
		prev := m.monoNS.Load()
		if cur <= prev {
			return time.Duration(prev)
		}
		if m.monoNS.CompareAndSwap(prev, cur) {
			return time.Duration(cur)
		}
	}
}

// observeRequest records one completed HTTP request.
func (m *Metrics) observeRequest(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h := m.latency[endpoint]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// observePrediction records one served prediction.
func (m *Metrics) observePrediction(pages int, fallback bool) {
	m.predictions.Add(1)
	if fallback {
		m.fallbacks.Add(1)
	}
	m.predictedPages.Add(uint64(pages))
}

// markCache stamps a cache-hit or cache-miss instant mark onto the span
// trace at the current clock, attributed to the predict endpoint. One
// nil-check when no tracer is attached.
func (m *Metrics) markCache(hit bool) {
	tr := m.tracer.Load()
	if tr == nil {
		return
	}
	kind := span.PredCacheMissMark
	if hit {
		kind = span.PredCacheHitMark
	}
	tr.Instant(kind, "predict", span.NoQuery, sim.Time(m.now().Sub(m.start)))
}

// markQuality stamps a quality-feedback instant mark onto the span trace,
// attributed to the feedback endpoint.
func (m *Metrics) markQuality() {
	tr := m.tracer.Load()
	if tr == nil {
		return
	}
	tr.Instant(span.QualityScoreMark, "feedback", span.NoQuery, sim.Time(m.now().Sub(m.start)))
}

// markDrift stamps a drift-transition instant mark (warning, alarm, or
// recovered) onto the span trace, attributed to the predict endpoint that
// tipped the detector.
func (m *Metrics) markDrift(kind span.Kind) {
	tr := m.tracer.Load()
	if tr == nil {
		return
	}
	tr.Instant(kind, "predict", span.NoQuery, sim.Time(m.now().Sub(m.start)))
}

// requestRow is one (endpoint, code, count) cell in snapshot order.
type requestRow struct {
	Endpoint string `json:"endpoint"`
	Code     int    `json:"code"`
	Count    uint64 `json:"count"`
}

// latencyRow is one endpoint's latency summary.
type latencyRow struct {
	Endpoint   string  `json:"endpoint"`
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	AvgSeconds float64 `json:"avg_seconds"`
}

// snapshotRequests returns the request table sorted by (endpoint, code) so
// /metrics and /stats render deterministically.
func (m *Metrics) snapshotRequests() []requestRow {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rows []requestRow
	for ep, byCode := range m.requests {
		for code, n := range byCode {
			rows = append(rows, requestRow{Endpoint: ep, Code: code, Count: n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Endpoint != rows[j].Endpoint {
			return rows[i].Endpoint < rows[j].Endpoint
		}
		return rows[i].Code < rows[j].Code
	})
	return rows
}

// snapshotLatency returns per-endpoint latency summaries, sorted.
func (m *Metrics) snapshotLatency() []latencyRow {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rows []latencyRow
	for ep, h := range m.latency {
		row := latencyRow{Endpoint: ep, Count: h.Count(), SumSeconds: h.Sum().Seconds()}
		if row.Count > 0 {
			row.AvgSeconds = row.SumSeconds / float64(row.Count)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Endpoint < rows[j].Endpoint })
	return rows
}

// histograms returns the latency histograms keyed by endpoint, sorted by
// endpoint name, for the Prometheus renderer.
func (m *Metrics) histograms() (endpoints []string, hists []*obs.Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for ep := range m.latency {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		hists = append(hists, m.latency[ep])
	}
	return endpoints, hists
}

// statusWriter captures the response status code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency observation
// under the given endpoint label.
func (m *Metrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := m.now()
		h(sw, r)
		end := m.now()
		m.observeRequest(endpoint, sw.code, end.Sub(start))
		m.tracer.Load().CompleteLabel(span.HTTPSpan, endpoint, span.NoQuery, uint32(sw.code),
			sim.Time(start.Sub(m.start)), sim.Time(end.Sub(m.start)))
	}
}
