// Package baselines implements the comparison strategies of §5.2:
//
//   - DFLT — plain Postgres: no prefetching at all (a nil prefetch set).
//   - ORCL — the idealized oracle that knows the exact blocks a query reads
//     and prefetches them with Pythia's prefetcher (perfect F1 by
//     definition).
//   - NN — the idealized nearest-neighbor: retrieve the training query with
//     the highest Jaccard similarity of *accessed blocks* to the test query
//     (idealized because it peeks at the test query's output) and prefetch
//     that neighbor's blocks.
//
// It also provides the Figure 1 splits: the sequential-only and
// non-sequential-only oracle prefetch sets.
package baselines

import (
	"sort"

	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// Oracle returns the exact distinct non-sequential pages of the instance in
// file-storage order — what ORCL prefetches.
func Oracle(inst *workload.Instance) []storage.PageID {
	return inst.Pages
}

// OracleSequential returns the distinct sequentially accessed pages in
// file-storage order — the "prefetch only sequential reads" variant of
// Figure 1.
func OracleSequential(inst *workload.Instance) []storage.PageID {
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, r := range inst.Requests {
		if r.Sequential && !seen[r.Page] {
			seen[r.Page] = true
			out = append(out, r.Page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NearestNeighbor finds the training instance with the highest Jaccard
// similarity to the test instance's accessed blocks and returns its block
// set as the prediction. Ties break toward the earlier training instance
// for determinism. It returns nil for an empty training set.
func NearestNeighbor(test *workload.Instance, train []*workload.Instance) []storage.PageID {
	var best *workload.Instance
	bestSim := -1.0
	for _, tr := range train {
		if s := workload.Similarity(test, tr); s > bestSim {
			bestSim = s
			best = tr
		}
	}
	if best == nil {
		return nil
	}
	return best.Pages
}

// Dflt returns the no-prefetch strategy's (empty) prefetch set.
func Dflt(*workload.Instance) []storage.PageID { return nil }
