package baselines

import (
	"testing"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	return g.Workload("t91", 24, 1)
}

func TestOracleIsPerfect(t *testing.T) {
	w := testWorkload(t)
	for _, inst := range w.Instances {
		s := metrics.Score(Oracle(inst), inst.Pages)
		if s.F1 != 1 {
			t.Fatalf("oracle F1 = %f", s.F1)
		}
	}
}

func TestOracleSequentialDisjointFromOracle(t *testing.T) {
	w := testWorkload(t)
	inst := w.Instances[0]
	seq := OracleSequential(inst)
	if len(seq) == 0 {
		t.Fatal("no sequential pages (fact scan missing?)")
	}
	// Sorted in file-storage order.
	for i := 1; i < len(seq); i++ {
		if !seq[i-1].Less(seq[i]) {
			t.Fatal("sequential oracle pages not sorted")
		}
	}
	// Sequential and non-sequential page sets describe different accesses;
	// heavily overlapping sets would mean the trace tagging is broken.
	if inter := metrics.Score(seq, inst.Pages); inter.Precision > 0.5 {
		t.Fatalf("seq/non-seq page sets overlap too much: %+v", inter)
	}
}

func TestNearestNeighborFindsSelf(t *testing.T) {
	w := testWorkload(t)
	// If the test instance itself is in the training set, NN returns its
	// exact pages (Jaccard 1 with itself).
	inst := w.Instances[0]
	pred := NearestNeighbor(inst, w.Instances)
	if metrics.Score(pred, inst.Pages).F1 != 1 {
		t.Fatal("NN did not find the identical training query")
	}
}

func TestNearestNeighborReasonableOnHoldout(t *testing.T) {
	w := testWorkload(t)
	train, test := w.Split(0.2, 3)
	var f1s []float64
	for _, inst := range test {
		pred := NearestNeighbor(inst, train)
		f1s = append(f1s, metrics.Score(pred, inst.Pages).F1)
	}
	mean := metrics.Summarize(f1s).Mean
	// NN is the paper's strong idealized baseline; on a correlated template
	// its holdout F1 should be clearly above zero.
	if mean < 0.15 {
		t.Fatalf("NN holdout mean F1 = %.3f", mean)
	}
}

func TestNearestNeighborEmptyTrain(t *testing.T) {
	w := testWorkload(t)
	if NearestNeighbor(w.Instances[0], nil) != nil {
		t.Fatal("NN with no training data should be nil")
	}
}

func TestNearestNeighborDeterministicTieBreak(t *testing.T) {
	w := testWorkload(t)
	train := w.Instances[:10]
	inst := w.Instances[12]
	a := NearestNeighbor(inst, train)
	b := NearestNeighbor(inst, train)
	if len(a) != len(b) {
		t.Fatal("NN not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("NN not deterministic")
		}
	}
}

func TestDflt(t *testing.T) {
	w := testWorkload(t)
	if Dflt(w.Instances[0]) != nil {
		t.Fatal("DFLT must not prefetch")
	}
}
