package storage

import (
	"testing"
	"testing/quick"
)

func TestRegistryAssignsUniqueIDs(t *testing.T) {
	r := NewRegistry()
	a := r.Register("store_sales", KindTable, 100)
	b := r.Register("store_sales_pk", KindIndex, 10)
	if a.ID == b.ID {
		t.Fatal("duplicate object IDs")
	}
	if a.ID == InvalidObject || b.ID == InvalidObject {
		t.Fatal("registry assigned the invalid ID")
	}
	if r.Lookup(a.ID) != a || r.LookupName("store_sales_pk") != b {
		t.Fatal("lookup mismatch")
	}
	if r.Lookup(999) != nil || r.LookupName("nope") != nil {
		t.Fatal("lookup of unknown object should be nil")
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("t", KindTable, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.Register("t", KindTable, 2)
}

func TestRegistryObjectsOrderAndTotal(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c"}
	for i, n := range names {
		r.Register(n, KindTable, PageNum(10*(i+1)))
	}
	objs := r.Objects()
	if len(objs) != 3 {
		t.Fatalf("Objects() returned %d", len(objs))
	}
	for i, o := range objs {
		if o.Name != names[i] {
			t.Fatalf("objects out of ID order: %v", objs)
		}
	}
	if got := r.TotalPages(); got != 60 {
		t.Fatalf("TotalPages = %d, want 60", got)
	}
}

func TestPageIDOrdering(t *testing.T) {
	cases := []struct {
		a, b PageID
		less bool
	}{
		{PageID{1, 5}, PageID{1, 6}, true},
		{PageID{1, 6}, PageID{1, 5}, false},
		{PageID{1, 99}, PageID{2, 0}, true},
		{PageID{2, 0}, PageID{1, 99}, false},
		{PageID{1, 5}, PageID{1, 5}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Fatalf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestPageIDLessIsStrictOrder(t *testing.T) {
	if err := quick.Check(func(ao, ap, bo, bp uint32) bool {
		a := PageID{ObjectID(ao), PageNum(ap)}
		b := PageID{ObjectID(bo), PageNum(bp)}
		// Antisymmetry and totality: exactly one of <, >, == holds.
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a)
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObjectPageIDFor(t *testing.T) {
	r := NewRegistry()
	o := r.Register("t", KindTable, 10)
	p := o.PageIDFor(9)
	if p.Object != o.ID || p.Page != 9 {
		t.Fatalf("PageIDFor = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range PageIDFor did not panic")
		}
	}()
	o.PageIDFor(10)
}

func TestRowPage(t *testing.T) {
	if RowPage(0, 100) != 0 || RowPage(99, 100) != 0 || RowPage(100, 100) != 1 {
		t.Fatal("RowPage packing incorrect")
	}
	if RowPage(12345, 7) != PageNum(12345/7) {
		t.Fatal("RowPage arbitrary packing incorrect")
	}
}

func TestObjectKindString(t *testing.T) {
	if KindTable.String() != "table" || KindIndex.String() != "index" {
		t.Fatal("ObjectKind strings wrong")
	}
}

func TestPageIDString(t *testing.T) {
	if got := (PageID{3, 17}).String(); got != "3:17" {
		t.Fatalf("String = %q", got)
	}
}
