// Package storage defines the page-granular identity model shared by every
// layer of the system: database objects (heap tables and indexes), page
// numbers within an object's file, and page requests.
//
// The simulator is trace-driven, so pages carry no materialized bytes; what
// matters — and what Pythia predicts — is *which* (object, page) pairs a
// query touches and in what order. Tuple values are produced by deterministic
// column generators in the catalog package instead of being stored on pages,
// which lets the DSB-style datasets scale without allocating gigabytes.
package storage

import "fmt"

// ObjectID identifies a database object (heap table or index) uniquely
// within a database, mirroring Postgres' relfilenode.
type ObjectID uint32

// InvalidObject is the zero ObjectID, never assigned to a real object.
const InvalidObject ObjectID = 0

// PageNum is a block offset within an object's file, mirroring Postgres'
// BlockNumber.
type PageNum uint32

// PageID names one disk block: an object and a block offset within it.
type PageID struct {
	Object ObjectID
	Page   PageNum
}

// String renders the page as object:page for logs and test failures.
func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.Object, p.Page) }

// Less orders pages by (object, offset) — the file storage order the
// prefetcher uses so that its reads cooperate with OS readahead.
func (p PageID) Less(q PageID) bool {
	if p.Object != q.Object {
		return p.Object < q.Object
	}
	return p.Page < q.Page
}

// ObjectKind distinguishes heap tables from indexes; Pythia trains separate
// models per kind (one for the base table, one per index).
type ObjectKind uint8

const (
	// KindTable marks a heap table object.
	KindTable ObjectKind = iota
	// KindIndex marks a B+tree index object.
	KindIndex
)

// String returns "table" or "index".
func (k ObjectKind) String() string {
	if k == KindIndex {
		return "index"
	}
	return "table"
}

// Object describes the on-disk geometry of one database object.
type Object struct {
	ID    ObjectID
	Name  string
	Kind  ObjectKind
	Pages PageNum // number of blocks in the object's file
}

// PageIDFor returns the PageID for block n of the object. It panics if n is
// out of range, which always indicates a geometry bug upstream.
func (o *Object) PageIDFor(n PageNum) PageID {
	if n >= o.Pages {
		panic(fmt.Sprintf("storage: page %d out of range for %s (%d pages)", n, o.Name, o.Pages))
	}
	return PageID{Object: o.ID, Page: n}
}

// Registry assigns ObjectIDs and resolves them back to objects. The catalog
// builds one per database.
type Registry struct {
	next    ObjectID
	objects map[ObjectID]*Object
	byName  map[string]*Object
}

// NewRegistry returns an empty registry; the first allocated ID is 1 so that
// the zero PageID is always invalid.
func NewRegistry() *Registry {
	return &Registry{
		next:    1,
		objects: make(map[ObjectID]*Object),
		byName:  make(map[string]*Object),
	}
}

// Register allocates an ID for a new object. Names must be unique; Register
// panics on duplicates because object creation is program-controlled, not
// input-controlled.
func (r *Registry) Register(name string, kind ObjectKind, pages PageNum) *Object {
	if _, dup := r.byName[name]; dup {
		panic("storage: duplicate object name " + name)
	}
	o := &Object{ID: r.next, Name: name, Kind: kind, Pages: pages}
	r.next++
	r.objects[o.ID] = o
	r.byName[name] = o
	return o
}

// Lookup returns the object with the given ID, or nil.
func (r *Registry) Lookup(id ObjectID) *Object { return r.objects[id] }

// LookupName returns the object with the given name, or nil.
func (r *Registry) LookupName(name string) *Object { return r.byName[name] }

// Objects returns all registered objects in ID order.
func (r *Registry) Objects() []*Object {
	out := make([]*Object, 0, len(r.objects))
	for id := ObjectID(1); id < r.next; id++ {
		if o := r.objects[id]; o != nil {
			out = append(out, o)
		}
	}
	return out
}

// TotalPages returns the sum of page counts over all objects — the "database
// size" used to size buffer pools as a fraction of data (the paper uses 1%).
func (r *Registry) TotalPages() int {
	total := 0
	for _, o := range r.objects {
		total += int(o.Pages)
	}
	return total
}

// Request is one page access issued by the executor. Sequential marks
// requests produced by sequential scans (heap pages read in file order);
// Algorithm 1 strips these from training traces, and the OS readahead model
// services them from the page cache.
type Request struct {
	Page PageID
	// Sequential is true for pages read by a sequential scan.
	Sequential bool
	// Tuples is the number of tuples the executor processed since the
	// previous request; the replay engine charges CPU for them, which sets
	// the non-I/O floor on query runtime.
	Tuples int
}

// RowPage maps a zero-based row number to its heap block given the table's
// rows-per-page packing.
func RowPage(row int64, rowsPerPage int) PageNum {
	if rowsPerPage <= 0 {
		panic("storage: non-positive rowsPerPage")
	}
	return PageNum(row / int64(rowsPerPage))
}
