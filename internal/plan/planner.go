package plan

import (
	"fmt"
	"math"

	"github.com/pythia-db/pythia/internal/catalog"
)

// CostParams are the planner's cost constants, shaped after Postgres'
// defaults (seq_page_cost = 1, random_page_cost = 4, cpu_tuple_cost ≈ 0.01).
type CostParams struct {
	SeqPage    float64
	RandomPage float64
	CPUTuple   float64
}

// DefaultCostParams mirrors Postgres' defaults.
func DefaultCostParams() CostParams {
	return CostParams{SeqPage: 1, RandomPage: 4, CPUTuple: 0.01}
}

// Planner turns Query specifications into physical plan trees using simple
// System-R-style cost arithmetic. Join order follows the query spec (as
// templates fix it); the planner's per-dimension decision is index nested
// loop vs hash join, which is what produces multiple distinct plans per
// template.
type Planner struct {
	DB   *catalog.Database
	Cost CostParams
}

// NewPlanner returns a planner over db with default cost parameters.
func NewPlanner(db *catalog.Database) *Planner {
	return &Planner{DB: db, Cost: DefaultCostParams()}
}

// selectivity estimates the fraction of rows passing p given the column
// generator's domain, under the naive uniformity assumption real optimizers
// start from.
func selectivity(rel *catalog.Relation, p Pred) float64 {
	ci := rel.ColumnIndex(p.Col)
	if ci < 0 {
		return 1
	}
	lo, hi := rel.Columns[ci].Gen.Domain()
	if hi <= lo {
		return 1
	}
	from, to := p.Lo, p.Hi
	if from < lo {
		from = lo
	}
	if to > hi-1 {
		to = hi - 1
	}
	if to < from {
		return 0
	}
	sel := float64(to-from+1) / float64(hi-lo)
	if sel > 1 {
		sel = 1
	}
	return sel
}

func combinedSelectivity(rel *catalog.Relation, preds []Pred) float64 {
	sel := 1.0
	for _, p := range preds {
		sel *= selectivity(rel, p)
	}
	return sel
}

// Plan builds the physical plan for q. References to unknown relations or
// impossible force-hints are reported as errors: query specs can come from
// untrusted sources (the pythia-serve HTTP surface), so a dangling name is
// an input problem, not a panic. Callers holding generator-produced queries
// can use MustPlan.
func (pl *Planner) Plan(q Query) (*Node, error) {
	fact := pl.DB.Relation(q.Fact)
	if fact == nil {
		return nil, fmt.Errorf("plan: unknown fact relation %q", q.Fact)
	}
	// Fact access path: DSB's I/O-heavy templates sequentially scan the
	// fact table (paper §5.1); an index path could be added here, but the
	// templates under study never choose one, matching the paper.
	cur := &Node{
		Kind:    KindSeqScan,
		Rel:     fact,
		Preds:   q.FactPreds,
		EstRows: float64(fact.Rows) * combinedSelectivity(fact, q.FactPreds),
	}
	outRows := cur.EstRows

	for _, dj := range q.Dims {
		dim := pl.DB.Relation(dj.Dim)
		if dim == nil {
			return nil, fmt.Errorf("plan: unknown dimension relation %q", dj.Dim)
		}
		idx := dim.IndexOn(dj.DimKey)
		dimSel := combinedSelectivity(dim, dj.Preds)

		useIndex := idx != nil
		if useIndex && !dj.ForceIndex && !dj.ForceHash {
			useIndex = pl.nljCost(outRows, dim, idx) < pl.hashCost(dim)
		}
		if dj.ForceHash {
			useIndex = false
		}
		if dj.ForceIndex && idx == nil {
			return nil, fmt.Errorf("plan: ForceIndex on %s.%s but no index", dj.Dim, dj.DimKey)
		}

		if useIndex {
			inner := &Node{
				Kind:     KindIndexScan,
				Rel:      dim,
				Index:    idx,
				Preds:    dj.Preds,
				OuterCol: dj.FactFK,
				EstRows:  dimSel, // per probe: FK matches ~1 row, filtered
			}
			cur = &Node{
				Kind:    KindNestedLoop,
				Left:    cur,
				Right:   inner,
				EstRows: outRows * dimSel,
			}
		} else {
			build := &Node{
				Kind:    KindSeqScan,
				Rel:     dim,
				Preds:   dj.Preds,
				EstRows: float64(dim.Rows) * dimSel,
			}
			cur = &Node{
				Kind:     KindHashJoin,
				Left:     cur,
				Right:    build,
				OuterCol: dj.FactFK,
				InnerCol: dj.DimKey,
				EstRows:  outRows * dimSel,
			}
		}
		outRows = cur.EstRows
	}

	agg := &Node{Kind: KindAgg, Left: cur, EstRows: 1}
	return agg, nil
}

// MustPlan is Plan for queries known valid by construction (template
// generators, round-trip tests); a planning error there is a programming
// bug, so it panics.
func (pl *Planner) MustPlan(q Query) *Node {
	root, err := pl.Plan(q)
	if err != nil {
		panic(err.Error())
	}
	return root
}

// nljCost estimates the cost of probing dim's index once per outer row:
// each probe pays the root→leaf descent plus roughly one heap page, all
// random I/O. Upper levels are hot, so only a fraction of the descent is
// charged, mirroring Postgres' cached-inner discount.
func (pl *Planner) nljCost(outerRows float64, dim *catalog.Relation, idx *catalog.Index) float64 {
	descent := float64(idx.Tree.Height())*0.5 + 1 // cached upper levels
	perProbe := descent * pl.Cost.RandomPage
	return outerRows * (perProbe + pl.Cost.CPUTuple)
}

// hashCost estimates building a hash table from a full sequential scan of
// the dimension.
func (pl *Planner) hashCost(dim *catalog.Relation) float64 {
	return float64(dim.Heap.Pages)*pl.Cost.SeqPage + float64(dim.Rows)*pl.Cost.CPUTuple
}

// EstimateFactRows exposes the planner's fact-output estimate; the workload
// generators use it to shape template selectivities.
func (pl *Planner) EstimateFactRows(q Query) float64 {
	fact := pl.DB.Relation(q.Fact)
	if fact == nil {
		return math.NaN()
	}
	return float64(fact.Rows) * combinedSelectivity(fact, q.FactPreds)
}
