package plan

import (
	"math"
	"strings"
	"testing"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/index"
)

// starDB builds a small star schema: fact "sales" with FKs into dimensions
// "item" and "dates", both indexed on their keys.
func starDB() *catalog.Database {
	db := catalog.NewDatabase()
	db.AddRelation("sales", 2000, 10, []catalog.Column{
		{Name: "s_sk", Gen: catalog.Serial{}},
		{Name: "s_item_fk", Gen: catalog.Uniform{Lo: 0, Hi: 10000, Seed: 1}},
		{Name: "s_date_fk", Gen: catalog.Uniform{Lo: 0, Hi: 5000, Seed: 2}},
		{Name: "s_amount", Gen: catalog.Uniform{Lo: 0, Hi: 1000, Seed: 3}},
	})
	// Dimensions are large enough (hundreds of pages) that probing an index
	// a few times beats hashing the whole table — the regime where Postgres
	// picks index scans for DSB's dimension joins.
	item := db.AddRelation("item", 10000, 10, []catalog.Column{
		{Name: "i_sk", Gen: catalog.Serial{}},
		{Name: "i_cat", Gen: catalog.Uniform{Lo: 0, Hi: 10, Seed: 4}},
	})
	dates := db.AddRelation("dates", 5000, 10, []catalog.Column{
		{Name: "d_sk", Gen: catalog.Serial{}},
		{Name: "d_year", Gen: catalog.Uniform{Lo: 2000, Hi: 2005, Seed: 5}},
	})
	db.BuildIndex(item, "i_sk", index.Config{LeafCap: 8, Fanout: 4})
	db.BuildIndex(dates, "d_sk", index.Config{LeafCap: 8, Fanout: 4})
	return db
}

func TestPredHelpers(t *testing.T) {
	if !Eq("a", 5).Matches(5) || Eq("a", 5).Matches(6) {
		t.Fatal("Eq wrong")
	}
	if !Between("a", 1, 3).Matches(2) || Between("a", 1, 3).Matches(4) {
		t.Fatal("Between wrong")
	}
	if !AtLeast("a", 10).Matches(10) || AtLeast("a", 10).Matches(9) {
		t.Fatal("AtLeast wrong")
	}
	if !AtMost("a", 10).Matches(10) || AtMost("a", 10).Matches(11) {
		t.Fatal("AtMost wrong")
	}
	if !Eq("a", 5).IsEquality() || Between("a", 1, 2).IsEquality() {
		t.Fatal("IsEquality wrong")
	}
}

func TestPredString(t *testing.T) {
	cases := map[string]Pred{
		"a = 5":             Eq("a", 5),
		"a between 1 and 3": Between("a", 1, 3),
		"a >= 10":           AtLeast("a", 10),
		"a <= 10":           AtMost("a", 10),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

func TestPlannerSelectiveQueryUsesIndex(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	// A very selective fact predicate → few probes → index nested loop.
	q := Query{
		Fact:      "sales",
		FactPreds: []Pred{Between("s_amount", 0, 9)}, // ~1% of rows
		Dims:      []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk"}},
	}
	root := pl.MustPlan(q)
	if root.Kind != KindAgg {
		t.Fatalf("root = %v", root.Kind)
	}
	join := root.Left
	if join.Kind != KindNestedLoop {
		t.Fatalf("selective query planned %v, want nested loop:\n%s", join.Kind, root.Display())
	}
	if join.Right.Kind != KindIndexScan || join.Right.Index == nil {
		t.Fatal("nested loop inner is not an index scan")
	}
}

func TestPlannerUnselectiveQueryUsesHash(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	// No fact filter → 2000 probes against a 10-page dimension → hash join.
	q := Query{
		Fact: "sales",
		Dims: []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk"}},
	}
	join := pl.MustPlan(q).Left
	if join.Kind != KindHashJoin {
		t.Fatalf("unselective query planned %v, want hash join", join.Kind)
	}
	if join.Right.Kind != KindSeqScan {
		t.Fatal("hash build side is not a seq scan")
	}
}

func TestPlannerForceOverrides(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	q := Query{
		Fact: "sales",
		Dims: []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true}},
	}
	if pl.MustPlan(q).Left.Kind != KindNestedLoop {
		t.Fatal("ForceIndex ignored")
	}
	q.Dims[0].ForceIndex = false
	q.Dims[0].ForceHash = true
	q.FactPreds = []Pred{Eq("s_sk", 1)}
	if pl.MustPlan(q).Left.Kind != KindHashJoin {
		t.Fatal("ForceHash ignored")
	}
}

func TestPlanShapeDistinguishesPlans(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	selective := Query{
		Fact:      "sales",
		FactPreds: []Pred{Between("s_amount", 0, 9)},
		Dims:      []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk"}},
	}
	broad := Query{
		Fact: "sales",
		Dims: []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk"}},
	}
	s1 := pl.MustPlan(selective).Shape()
	s2 := pl.MustPlan(broad).Shape()
	if s1 == s2 {
		t.Fatal("different physical plans share a Shape")
	}
	// Same plan, different constants → same Shape.
	selective2 := selective
	selective2.FactPreds = []Pred{Between("s_amount", 20, 29)}
	if pl.MustPlan(selective2).Shape() != s1 {
		t.Fatal("constant change altered Shape")
	}
}

func TestWalkPreorder(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	q := Query{
		Fact:      "sales",
		FactPreds: []Pred{Between("s_amount", 0, 9)},
		Dims: []DimJoin{
			{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true},
			{Dim: "dates", FactFK: "s_date_fk", DimKey: "d_sk", ForceIndex: true},
		},
	}
	var kinds []Kind
	pl.MustPlan(q).Walk(func(n *Node) { kinds = append(kinds, n.Kind) })
	want := []Kind{KindAgg, KindNestedLoop, KindNestedLoop, KindSeqScan, KindIndexScan, KindIndexScan}
	if len(kinds) != len(want) {
		t.Fatalf("walk kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", kinds, want)
		}
	}
}

func TestDisplayMentionsEverything(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	q := Query{
		Fact:      "sales",
		FactPreds: []Pred{Eq("s_amount", 5)},
		Dims:      []DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true, Preds: []Pred{Eq("i_cat", 3)}}},
	}
	out := pl.MustPlan(q).Display()
	for _, want := range []string{"Aggregate", "Nested Loop", "Seq Scan on sales", "Index Scan on item", "item_i_sk_idx", "s_amount = 5", "i_cat = 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Display missing %q:\n%s", want, out)
		}
	}
}

func TestSelectivityEstimates(t *testing.T) {
	db := starDB()
	rel := db.Relation("sales")
	if s := selectivity(rel, Between("s_amount", 0, 99)); math.Abs(s-0.1) > 1e-9 {
		t.Fatalf("10%% range selectivity = %f", s)
	}
	if s := selectivity(rel, Between("s_amount", -100, 2000)); s != 1 {
		t.Fatalf("full-range selectivity = %f", s)
	}
	if s := selectivity(rel, Between("s_amount", 5000, 6000)); s != 0 {
		t.Fatalf("out-of-domain selectivity = %f", s)
	}
	if s := selectivity(rel, Eq("no_such_col", 1)); s != 1 {
		t.Fatalf("unknown column selectivity = %f (should be neutral)", s)
	}
}

func TestPlanUnknownRelationErrors(t *testing.T) {
	db := starDB()
	pl := NewPlanner(db)
	if _, err := pl.Plan(Query{Fact: "nope"}); err == nil {
		t.Fatal("unknown fact did not error")
	}
	if _, err := pl.Plan(Query{Fact: "sales", Dims: []DimJoin{{Dim: "nope", FactFK: "d", DimKey: "id"}}}); err == nil {
		t.Fatal("unknown dimension did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan on invalid query did not panic")
		}
	}()
	pl.MustPlan(Query{Fact: "nope"})
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindSeqScan: "Seq Scan", KindIndexScan: "Index Scan",
		KindNestedLoop: "Nested Loop", KindHashJoin: "Hash Join",
		KindFilter: "Filter", KindAgg: "Aggregate", KindSort: "Sort",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
