// Package plan defines query specifications, physical plan trees, and the
// cost-based planner that chooses between index scans (nested loop) and
// sequential scans (hash join) per joined dimension — the decision that, in
// the paper's DSB templates, makes different instances of the same template
// produce different plans ("Distinct query plans in workload", Table 1).
//
// Queries are star-join specifications: a fact relation with filter
// predicates, joined to dimension relations through foreign keys. That is
// exactly the shape of the paper's DSB templates 18/19/91 and the IMDB/CEB
// template 1a ("a join on one of the 7 fact tables along with some of the
// smaller dimension tables", §5.1).
package plan

import (
	"fmt"
	"math"
	"strings"

	"github.com/pythia-db/pythia/internal/catalog"
)

// Pred is a range predicate Lo <= col <= Hi. Equality is Lo == Hi; open
// sides use math.MinInt64 / math.MaxInt64.
type Pred struct {
	Col    string
	Lo, Hi int64
}

// Eq builds an equality predicate.
func Eq(col string, v int64) Pred { return Pred{Col: col, Lo: v, Hi: v} }

// Between builds an inclusive range predicate.
func Between(col string, lo, hi int64) Pred { return Pred{Col: col, Lo: lo, Hi: hi} }

// AtLeast builds col >= v.
func AtLeast(col string, v int64) Pred { return Pred{Col: col, Lo: v, Hi: math.MaxInt64} }

// AtMost builds col <= v.
func AtMost(col string, v int64) Pred { return Pred{Col: col, Lo: math.MinInt64, Hi: v} }

// Matches reports whether value v satisfies the predicate.
func (p Pred) Matches(v int64) bool { return v >= p.Lo && v <= p.Hi }

// IsEquality reports whether the predicate pins a single value.
func (p Pred) IsEquality() bool { return p.Lo == p.Hi }

// String renders the predicate for plan display.
func (p Pred) String() string {
	switch {
	case p.IsEquality():
		return fmt.Sprintf("%s = %d", p.Col, p.Lo)
	case p.Lo == math.MinInt64:
		return fmt.Sprintf("%s <= %d", p.Col, p.Hi)
	case p.Hi == math.MaxInt64:
		return fmt.Sprintf("%s >= %d", p.Col, p.Lo)
	default:
		return fmt.Sprintf("%s between %d and %d", p.Col, p.Lo, p.Hi)
	}
}

// DimJoin describes one dimension joined to the fact table: the fact's
// foreign-key column equijoined to the dimension's (indexed) key column,
// plus optional filter predicates on the dimension.
type DimJoin struct {
	Dim    string
	FactFK string
	DimKey string
	Preds  []Pred
	// ForceHash / ForceIndex override the planner's cost decision; the
	// workload generators use them to pin template plan shapes in tests.
	ForceHash  bool
	ForceIndex bool
}

// Query is a star-join query specification — the logical query before
// planning.
type Query struct {
	Fact      string
	FactPreds []Pred
	Dims      []DimJoin
	// Distinct tag used by workload bookkeeping (template id, instance id).
	Template string
	Instance int
}

// Kind enumerates physical plan operators.
type Kind uint8

const (
	// KindSeqScan reads a relation's heap pages in file order.
	KindSeqScan Kind = iota
	// KindIndexScan probes a B+tree and fetches matching heap pages.
	KindIndexScan
	// KindNestedLoop joins an outer stream against an inner index scan.
	KindNestedLoop
	// KindHashJoin builds a hash table from its right child and probes it
	// with rows from its left child.
	KindHashJoin
	// KindFilter applies residual predicates.
	KindFilter
	// KindAgg aggregates its input (terminal operator for SPJ+agg queries).
	KindAgg
	// KindSort orders its input; like the paper we serialize but otherwise
	// ignore it (it does not change page access order).
	KindSort
)

// String names the operator as in EXPLAIN output.
func (k Kind) String() string {
	switch k {
	case KindSeqScan:
		return "Seq Scan"
	case KindIndexScan:
		return "Index Scan"
	case KindNestedLoop:
		return "Nested Loop"
	case KindHashJoin:
		return "Hash Join"
	case KindFilter:
		return "Filter"
	case KindAgg:
		return "Aggregate"
	case KindSort:
		return "Sort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a physical plan operator. Scan nodes carry their relation (and
// index); join nodes carry the join columns.
type Node struct {
	Kind  Kind
	Left  *Node // outer / only child
	Right *Node // inner child for joins

	Rel   *catalog.Relation // scan nodes
	Index *catalog.Index    // index scans
	Preds []Pred            // filter predicates evaluated at this node

	// OuterCol is, for an index scan under a nested loop, the column of the
	// outer tuple whose value is probed into the index. For a hash join it
	// is the outer (probe-side) column; InnerCol is the build-side column.
	OuterCol string
	InnerCol string

	// EstRows is the planner's cardinality estimate, kept for plan display.
	EstRows float64
}

// Children returns the node's non-nil children, outer first.
func (n *Node) Children() []*Node {
	var out []*Node
	if n.Left != nil {
		out = append(out, n.Left)
	}
	if n.Right != nil {
		out = append(out, n.Right)
	}
	return out
}

// Walk visits the tree in preorder (node, then children outer→inner) — the
// traversal order Algorithm 2 serializes.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	n.Left.Walk(visit)
	n.Right.Walk(visit)
}

// Shape returns a canonical string of the plan's operator structure,
// ignoring predicate constants — two instances of a template have the same
// Shape iff the optimizer chose the same physical plan. Table 1's "distinct
// query plans in workload" counts distinct Shapes.
func (n *Node) Shape() string {
	var b strings.Builder
	n.Walk(func(m *Node) {
		b.WriteString(m.Kind.String())
		if m.Rel != nil {
			b.WriteByte(' ')
			b.WriteString(m.Rel.Name)
		}
		if m.Index != nil {
			b.WriteByte(' ')
			b.WriteString(m.Index.Name)
		}
		b.WriteByte(';')
	})
	return b.String()
}

// Display renders an EXPLAIN-style indented tree.
func (n *Node) Display() string {
	var b strings.Builder
	var rec func(m *Node, depth int)
	rec = func(m *Node, depth int) {
		if m == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(m.Kind.String())
		if m.Rel != nil {
			fmt.Fprintf(&b, " on %s", m.Rel.Name)
		}
		if m.Index != nil {
			fmt.Fprintf(&b, " using %s", m.Index.Name)
		}
		for _, p := range m.Preds {
			fmt.Fprintf(&b, " [%s]", p)
		}
		if m.EstRows > 0 {
			fmt.Fprintf(&b, " (rows=%.0f)", m.EstRows)
		}
		b.WriteByte('\n')
		rec(m.Left, depth+1)
		rec(m.Right, depth+1)
	}
	rec(n, 0)
	return b.String()
}
