// Package wallclock is the single sanctioned source of wall-clock time for
// deterministic packages. Simulation results never depend on it — the
// virtual clock in internal/sim owns simulated time — but cost measurement
// (train/inference wall time for the Figure 9 comparison) legitimately reads
// the real clock. Deterministic packages must not call time.Now directly
// (the detclock analyzer enforces this); they route through package-level
// function variables defaulting to wallclock.Now/Since, which tests swap for
// a fake clock to make timing fields assertable:
//
//	var (
//		timeNow   = wallclock.Now
//		timeSince = wallclock.Since
//	)
//
// The import is the greppable marker of every wall-clock read outside the
// serving tier and CLI mains.
package wallclock

import "time"

// Now returns the current wall-clock time.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }
