package imdb

import "testing"

func TestSchemaHasNineRelations(t *testing.T) {
	g := NewGenerator(Config{Scale: 10, Seed: 17})
	names := []string{"title", "cast_info", "name", "char_name", "company_name",
		"movie_companies", "movie_info", "role_type", "info_type"}
	if len(names) != 9 {
		t.Fatal("fixture miscounts relations")
	}
	for _, n := range names {
		if g.DB().Relation(n) == nil {
			t.Fatalf("relation %s missing", n)
		}
	}
	if g.CastInfo() == nil || g.CastInfo().Name != "cast_info" {
		t.Fatal("CastInfo accessor wrong")
	}
}

func TestCastInfoDominates(t *testing.T) {
	g := NewGenerator(Config{Scale: 50, Seed: 17})
	cast := g.CastInfo()
	for _, rel := range g.DB().Relations() {
		if rel.Name == "cast_info" {
			continue
		}
		if rel.Heap.Pages >= cast.Heap.Pages {
			t.Fatalf("%s (%d pages) not smaller than cast_info (%d)",
				rel.Name, rel.Heap.Pages, cast.Heap.Pages)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	g := NewGenerator(Config{Scale: 10, Seed: 17})
	title := g.DB().Relation("title")
	targets := map[string]string{
		"t_name_fk":    "name",
		"t_char_fk":    "char_name",
		"t_company_fk": "company_name",
		"t_mc_fk":      "movie_companies",
		"t_mi_fk":      "movie_info",
	}
	for col, tgt := range targets {
		rows := g.DB().Relation(tgt).Rows
		for row := int64(0); row < title.Rows; row += 53 {
			if v := title.Value(col, row); v < 0 || v >= rows {
				t.Fatalf("%s = %d out of [0,%d)", col, v, rows)
			}
		}
	}
}

func TestQueriesShape(t *testing.T) {
	g := NewGenerator(Config{Scale: 10, Seed: 17})
	qs := g.Queries(50, 3)
	if len(qs) != 50 {
		t.Fatal("query count wrong")
	}
	withKind, without := 0, 0
	for i, q := range qs {
		if q.Template != "imdb1a" || q.Instance != i || q.Fact != "title" {
			t.Fatalf("query %d tags wrong", i)
		}
		if len(q.Dims) != 8 {
			t.Fatalf("query %d joins %d dims, want 8", i, len(q.Dims))
		}
		if len(q.FactPreds) == 2 {
			withKind++
		} else {
			without++
		}
		hasCast := false
		for _, d := range q.Dims {
			if d.Dim == "cast_info" && d.ForceIndex {
				hasCast = true
			}
		}
		if !hasCast {
			t.Fatalf("query %d does not index-probe cast_info", i)
		}
	}
	if withKind == 0 || without == 0 {
		t.Fatalf("kind-predicate mix degenerate: %d/%d", withKind, without)
	}
}

func TestQueriesDeterministic(t *testing.T) {
	g := NewGenerator(Config{Scale: 10, Seed: 17})
	a := g.Queries(10, 3)
	b := g.Queries(10, 3)
	for i := range a {
		if a[i].FactPreds[0] != b[i].FactPreds[0] {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestWorkloadRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("workload execution in -short mode")
	}
	g := NewGenerator(Config{Scale: 25, Seed: 17})
	w := g.Workload(16, 1)
	st := w.ComputeStats()
	// The defining 1a regime: sequential IO is small relative to
	// non-sequential IO (the paper reports 4 sequential reads vs thousands
	// of non-sequential ones).
	if st.MaxDistinctNS <= st.SeqIO/len(w.Instances) {
		t.Fatalf("non-seq (%d) should dominate per-query seq IO (%d)",
			st.MaxDistinctNS, st.SeqIO/len(w.Instances))
	}
	if st.RelationsJoined != 9 {
		t.Fatalf("relations joined = %d, want 9", st.RelationsJoined)
	}
	if st.MaxIndexScanned < 6 {
		t.Fatalf("index-scanned dims = %d, want >= 6", st.MaxIndexScanned)
	}
	// Spread between smallest and largest instance (Table 1's 42× range,
	// scaled expectations: at least 2×).
	if st.MinDistinctNS*2 > st.MaxDistinctNS {
		t.Fatalf("non-seq spread too narrow: [%d,%d]", st.MinDistinctNS, st.MaxDistinctNS)
	}
	// cast_info pages appear in traces.
	castID := g.CastInfo().Heap.ID
	found := false
	for _, inst := range w.Instances {
		if len(inst.Trace.Object(castID)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no cast_info pages in any trace")
	}
}

func TestWrapGenerator(t *testing.T) {
	w := wrap{base: negGen{}, mod: 5}
	if v := w.Value(0); v < 0 || v >= 5 {
		t.Fatalf("wrap produced %d", v)
	}
	if lo, hi := w.Domain(); lo != 0 || hi != 5 {
		t.Fatal("wrap domain wrong")
	}
}

type negGen struct{}

func (negGen) Value(int64) int64      { return -13 }
func (negGen) Domain() (int64, int64) { return -13, -12 }
