// Package imdb synthesizes the IMDB / Cardinality Estimation Benchmark
// substrate of the paper's second evaluation (§5.1, "IMDB Data Workload"):
// a 9-relation movie schema whose template 1a joins the title table with
// cast_info, name, and the smaller satellite relations.
//
// The defining properties of the paper's template 1a, which this generator
// reproduces at simulation scale, are:
//
//   - almost no sequential I/O (Table 1 reports 4 sequential reads): the
//     driving title scan is tiny relative to the probed relations;
//   - cast_info is by far the largest relation, is only accessed through an
//     index (one movie → many cast rows), and a single query can touch more
//     cast_info pages than fit in the buffer pool, forcing Pythia's limited
//     prefetching path;
//   - a wide spread of distinct non-sequential reads across instances
//     (Table 1: 5 298 – 223 251, a 42× range) and many distinct plans (41).
//
// Substitution note (also recorded in DESIGN.md): the real CEB 1a navigates
// title → cast_info → name as a chain; the executor here models star joins,
// so the chain is flattened into foreign keys on the driving relation. The
// access-pattern geometry — which relation is probed how often and with what
// locality — is preserved, which is all the prefetcher observes.
package imdb

import (
	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/workload"
)

// Config parameterizes the generator.
type Config struct {
	// Scale scales the big relations (100 = reference).
	Scale int
	// Seed drives value generation.
	Seed uint64
	// Index overrides B+tree geometry.
	Index index.Config
}

// DefaultConfig returns the reference configuration.
func DefaultConfig() Config {
	return Config{Scale: 100, Seed: 17, Index: index.Config{LeafCap: 128, Fanout: 64}}
}

// Generator owns the IMDB database and produces template 1a instances.
type Generator struct {
	cfg Config
	db  *catalog.Database

	yearLo, yearHi int64
}

func (g *Generator) scaled(base int64) int64 {
	rows := base * int64(g.cfg.Scale) / 100
	if rows < 20 {
		rows = 20
	}
	return rows
}

// NewGenerator builds the 9-relation IMDB schema.
func NewGenerator(cfg Config) *Generator {
	if cfg.Scale <= 0 {
		cfg.Scale = 100
	}
	if cfg.Index.LeafCap == 0 {
		cfg.Index = DefaultConfig().Index
	}
	g := &Generator{cfg: cfg, db: catalog.NewDatabase()}
	g.yearLo, g.yearHi = 1900, 2020

	seed := cfg.Seed
	next := func() uint64 { seed += 0x9e3779b97f4a7c15; return seed }

	titleRows := g.scaled(24000)
	castRows := g.scaled(300000) // the dominant relation
	nameRows := g.scaled(48000)
	charRows := g.scaled(30000)
	companyRows := g.scaled(20000)
	mcRows := g.scaled(50000)
	miRows := g.scaled(80000)

	// The driving relation: titles ordered by production year (as IMDB ids
	// roughly are), with flattened foreign keys into the probed relations.
	// Each FK tracks the title's position, so a year window concentrates the
	// probed pages — with noise so instances differ.
	pos := catalog.Serial{}
	yearOf := catalog.Correlated{
		Base:      pos,
		Transform: func(row int64) int64 { return 1900 + row*120/titleRows },
		Lo:        1900, Hi: 2020,
	}
	fk := func(target int64, spread int64) catalog.Generator {
		return wrap{
			base: catalog.Noisy{
				Base: catalog.Correlated{
					Base:      pos,
					Transform: func(row int64) int64 { return row * target / titleRows },
					Lo:        0, Hi: target,
				},
				Range: spread,
				Seed:  next(),
			},
			mod: target,
		}
	}
	title := g.db.AddRelation("title", titleRows, 200, []catalog.Column{
		{Name: "t_id", Gen: pos},
		{Name: "t_production_year", Gen: yearOf},
		{Name: "t_kind", Gen: catalog.Uniform{Lo: 0, Hi: 7, Seed: next()}},
		// One movie has ~castRows/titleRows cast entries; the probe key is
		// the movie's id region in cast_info's movie index.
		{Name: "t_cast_fk", Gen: fk(castRows/12, castRows/200)},
		{Name: "t_name_fk", Gen: fk(nameRows, nameRows/24)},
		{Name: "t_char_fk", Gen: fk(charRows, charRows/24)},
		{Name: "t_company_fk", Gen: fk(companyRows, companyRows/24)},
		{Name: "t_mc_fk", Gen: fk(mcRows, mcRows/24)},
		{Name: "t_mi_fk", Gen: fk(miRows, miRows/24)},
		{Name: "t_role_fk", Gen: catalog.Uniform{Lo: 0, Hi: 12, Seed: next()}},
		{Name: "t_info_type_fk", Gen: catalog.Uniform{Lo: 0, Hi: 113, Seed: next()}},
	})
	_ = title

	dim := func(name, key string, rows int64, perPage int) {
		rel := g.db.AddRelation(name, rows, perPage, []catalog.Column{
			{Name: key, Gen: catalog.Serial{}},
		})
		g.db.BuildIndex(rel, key, g.cfg.Index)
	}
	// cast_info is keyed by movie group: each group key matches ~12 rows,
	// so one probe fetches a run of heap pages — one movie's cast.
	castGroups := castRows / 12
	cast := g.db.AddRelation("cast_info", castRows, 40, []catalog.Column{
		{Name: "ci_movie_group", Gen: catalog.Correlated{
			Base:      catalog.Serial{},
			Transform: func(row int64) int64 { return row % castGroups },
			Lo:        0, Hi: castGroups,
		}},
	})
	g.db.BuildIndex(cast, "ci_movie_group", g.cfg.Index)

	dim("name", "n_id", nameRows, 20)
	dim("char_name", "chn_id", charRows, 20)
	dim("company_name", "cn_id", companyRows, 20)
	dim("movie_companies", "mc_id", mcRows, 40)
	dim("movie_info", "mi_id", miRows, 40)
	dim("role_type", "rt_id", 12, 12)
	dim("info_type", "it_id", 113, 40)

	return g
}

// pick draws uniformly from a finite parameter domain.
func pick(r *sim.Rand, values ...int64) int64 { return values[r.Intn(len(values))] }

// wrap keeps correlated keys within the target domain.
type wrap struct {
	base catalog.Generator
	mod  int64
}

func (w wrap) Value(row int64) int64 {
	v := w.base.Value(row) % w.mod
	if v < 0 {
		v += w.mod
	}
	return v
}

func (w wrap) Domain() (int64, int64) { return 0, w.mod }

// DB returns the database.
func (g *Generator) DB() *catalog.Database { return g.db }

// CastInfo returns the cast_info relation — the one the paper prefetches.
func (g *Generator) CastInfo() *catalog.Relation { return g.db.Relation("cast_info") }

// Queries generates n template-1a instances (CEB ships 3000).
func (g *Generator) Queries(n int, seed uint64) []plan.Query {
	r := sim.NewRand(seed ^ g.cfg.Seed)
	out := make([]plan.Query, n)
	for i := range out {
		// Year windows from very narrow to wide: the source of the 42×
		// spread in distinct non-sequential reads.
		// Discrete parameter domains, like the CEB generator's: year-window
		// starts snap to a 4-year grid and widths come from a fixed menu, so
		// individual parameter values recur across the workload's instances.
		width := pick(r, 2, 3, 4)
		if r.Float64() < 0.3 {
			width = pick(r, 8, 16, 28)
		}
		slots := (g.yearHi - g.yearLo - width) / 4
		lo := g.yearLo + 4*r.Int63n(slots)
		kind := r.Int63n(7)
		preds := []plan.Pred{plan.Between("t_production_year", lo, lo+width)}
		// The kind filter is sometimes absent; instances without it qualify
		// 7× more titles, which is what stretches the distinct-non-seq-read
		// spread toward Table 1's 42× range and pushes wide instances past
		// the buffer size (the limited-prefetching regime).
		hasKind := r.Float64() < 0.7
		if hasKind {
			preds = append(preds, plan.Eq("t_kind", kind))
		}
		// Everything big is index-scanned, as in the paper's 1a; only the
		// two tiny type tables are hashed.
		dims := []plan.DimJoin{
			{Dim: "cast_info", FactFK: "t_cast_fk", DimKey: "ci_movie_group", ForceIndex: true},
			{Dim: "name", FactFK: "t_name_fk", DimKey: "n_id", ForceIndex: true},
			{Dim: "char_name", FactFK: "t_char_fk", DimKey: "chn_id", ForceIndex: true},
			{Dim: "company_name", FactFK: "t_company_fk", DimKey: "cn_id", ForceIndex: true},
			{Dim: "movie_companies", FactFK: "t_mc_fk", DimKey: "mc_id", ForceIndex: true},
			{Dim: "movie_info", FactFK: "t_mi_fk", DimKey: "mi_id", ForceIndex: true},
			{Dim: "role_type", FactFK: "t_role_fk", DimKey: "rt_id", ForceHash: true},
			{Dim: "info_type", FactFK: "t_info_type_fk", DimKey: "it_id", ForceHash: true},
		}
		// Optimizer-style reordering keyed on the parameters gives the
		// template its large distinct-plan count.
		if width > 10 {
			dims[1], dims[2] = dims[2], dims[1]
		}
		if kind%2 == 0 {
			dims[3], dims[4] = dims[4], dims[3]
		}
		if !hasKind {
			dims[4], dims[5] = dims[5], dims[4]
		}
		if width > 20 {
			dims[0], dims[1] = dims[1], dims[0]
		}
		out[i] = plan.Query{
			Fact:      "title",
			FactPreds: preds,
			Dims:      dims,
			Template:  "imdb1a",
			Instance:  i,
		}
	}
	return out
}

// Workload generates, plans, and executes n template-1a instances.
func (g *Generator) Workload(n int, seed uint64) *workload.Workload {
	return workload.MustBuild("imdb1a", g.db, g.Queries(n, seed))
}
