package span

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// QueryStall is one query's virtual-time attribution: where the executor's
// elapsed time went, and how much disk time the prefetcher paid off the
// critical path. Durations come straight from span bounds, so they reconcile
// exactly with the obs counters (DiskReads here == obs disk_read for the
// query, DiskBlocked == the summed ExecDiskWait spans, and so on).
type QueryStall struct {
	// Query is the run-local query index; Label the query's ID string (from
	// its QuerySpan label).
	Query int32
	Label string
	// Elapsed is the query's whole lifetime (its QuerySpan duration).
	Elapsed sim.Duration
	// DiskBlocked is executor time blocked on foreground device reads
	// (summed ExecDiskWait, retry ladders included).
	DiskBlocked sim.Duration
	// OSCopy is executor time spent in kernel→user page copies.
	OSCopy sim.Duration
	// RetryBackoff is the slice of DiskBlocked spent waiting between failed
	// attempts (summed ExecRetryWait; already included in DiskBlocked).
	RetryBackoff sim.Duration
	// PrefetchHidden is disk time the prefetcher absorbed for pages the
	// executor then consumed as buffer hits: the summed durations of the
	// PrefetchRead spans that PrefetchHitMark links point at — the stall
	// time prefetching removed from the critical path.
	PrefetchHidden sim.Duration
	// Inference is the model-inference window gating the prefetcher.
	Inference sim.Duration
	// Event counts, for reconciliation against obs counters.
	DiskReads    uint64 // ExecDiskWait spans == obs disk_read
	OSCopies     uint64 // ExecOSCopy spans (one per buffer miss)
	PrefetchHits uint64 // PrefetchHitMark == obs prefetch_hit
	Fallbacks    uint64 // FallbackSyncMark == obs fallback_sync_read
}

// ObjectStall aggregates the same attribution by database object.
type ObjectStall struct {
	Object         storage.ObjectID
	DiskBlocked    sim.Duration
	OSCopy         sim.Duration
	PrefetchHidden sim.Duration
	DiskReads      uint64
	OSCopies       uint64
	PrefetchHits   uint64
}

// Report is the stall-attribution summary built from a recorded timeline.
type Report struct {
	// Queries holds one entry per query index, dense from 0.
	Queries []QueryStall
	// Objects holds per-object aggregates sorted by ObjectID.
	Objects []ObjectStall
	// Total sums the per-query rows (Label empty, Query = NoQuery).
	Total QueryStall
}

// BuildReport derives the stall attribution from a span slice. It is a pure
// function of the spans, so a report built from a golden trace is itself
// golden.
func BuildReport(spans []Span) *Report {
	maxQ := int32(-1)
	for i := range spans {
		if spans[i].Query > maxQ {
			maxQ = spans[i].Query
		}
	}
	r := &Report{Queries: make([]QueryStall, maxQ+1)}
	for q := range r.Queries {
		r.Queries[q].Query = int32(q)
	}
	objs := make(map[storage.ObjectID]*ObjectStall)
	obj := func(id storage.ObjectID) *ObjectStall {
		if id == storage.InvalidObject {
			return nil
		}
		o := objs[id]
		if o == nil {
			o = &ObjectStall{Object: id}
			objs[id] = o
		}
		return o
	}

	for i := range spans {
		s := &spans[i]
		var q *QueryStall
		if s.Query >= 0 {
			q = &r.Queries[s.Query]
		}
		o := obj(s.Page.Object)
		switch s.Kind {
		case QuerySpan:
			if q != nil {
				q.Elapsed += s.Dur()
				if q.Label == "" {
					q.Label = s.Label
				}
			}
		case InferWait:
			if q != nil {
				q.Inference += s.Dur()
			}
		case ExecDiskWait:
			if q != nil {
				q.DiskBlocked += s.Dur()
				q.DiskReads++
			}
			if o != nil {
				o.DiskBlocked += s.Dur()
				o.DiskReads++
			}
		case ExecOSCopy:
			if q != nil {
				q.OSCopy += s.Dur()
				q.OSCopies++
			}
			if o != nil {
				o.OSCopy += s.Dur()
				o.OSCopies++
			}
		case ExecRetryWait:
			if q != nil {
				q.RetryBackoff += s.Dur()
			}
		case PrefetchHitMark:
			var hidden sim.Duration
			if s.Link != NoSpan && int(s.Link) < len(spans) {
				hidden = spans[s.Link].Dur()
			}
			if q != nil {
				q.PrefetchHidden += hidden
				q.PrefetchHits++
			}
			if o != nil {
				o.PrefetchHidden += hidden
				o.PrefetchHits++
			}
		case FallbackSyncMark:
			if q != nil {
				q.Fallbacks++
			}
		}
	}

	// Collect-then-sort: map iteration order must not reach the output.
	r.Objects = make([]ObjectStall, 0, len(objs))
	for _, o := range objs {
		r.Objects = append(r.Objects, *o)
	}
	sort.Slice(r.Objects, func(i, j int) bool { return r.Objects[i].Object < r.Objects[j].Object })

	r.Total.Query = NoQuery
	for i := range r.Queries {
		q := &r.Queries[i]
		r.Total.Elapsed += q.Elapsed
		r.Total.DiskBlocked += q.DiskBlocked
		r.Total.OSCopy += q.OSCopy
		r.Total.RetryBackoff += q.RetryBackoff
		r.Total.PrefetchHidden += q.PrefetchHidden
		r.Total.Inference += q.Inference
		r.Total.DiskReads += q.DiskReads
		r.Total.OSCopies += q.OSCopies
		r.Total.PrefetchHits += q.PrefetchHits
		r.Total.Fallbacks += q.Fallbacks
	}
	return r
}

// WriteText renders the report as fixed-width text, one row per query and
// per object plus a totals row. name resolves object IDs to names (nil
// prints raw IDs). Output is fully deterministic.
func (r *Report) WriteText(w io.Writer, name func(storage.ObjectID) string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Per-query stall attribution (virtual time):")
	fmt.Fprintf(bw, "  %-4s %-24s %14s %14s %14s %14s %14s %8s %8s %8s %8s\n",
		"q", "query", "elapsed", "disk_blocked", "os_copy", "pf_hidden", "inference",
		"reads", "copies", "pf_hits", "fallbk")
	for i := range r.Queries {
		q := &r.Queries[i]
		label := q.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(bw, "  %-4d %-24s %14s %14s %14s %14s %14s %8d %8d %8d %8d\n",
			q.Query, label, q.Elapsed, q.DiskBlocked, q.OSCopy, q.PrefetchHidden,
			q.Inference, q.DiskReads, q.OSCopies, q.PrefetchHits, q.Fallbacks)
	}
	t := &r.Total
	fmt.Fprintf(bw, "  %-4s %-24s %14s %14s %14s %14s %14s %8d %8d %8d %8d\n",
		"*", "total", t.Elapsed, t.DiskBlocked, t.OSCopy, t.PrefetchHidden,
		t.Inference, t.DiskReads, t.OSCopies, t.PrefetchHits, t.Fallbacks)

	fmt.Fprintln(bw, "")
	fmt.Fprintln(bw, "Per-object stall attribution:")
	fmt.Fprintf(bw, "  %-24s %14s %14s %14s %8s %8s %8s\n",
		"object", "disk_blocked", "os_copy", "pf_hidden", "reads", "copies", "pf_hits")
	for i := range r.Objects {
		o := &r.Objects[i]
		label := fmt.Sprintf("%d", o.Object)
		if name != nil {
			if n := name(o.Object); n != "" {
				label = n
			}
		}
		fmt.Fprintf(bw, "  %-24s %14s %14s %14s %8d %8d %8d\n",
			label, o.DiskBlocked, o.OSCopy, o.PrefetchHidden, o.DiskReads, o.OSCopies, o.PrefetchHits)
	}
	return bw.Flush()
}
