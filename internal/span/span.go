// Package span is the virtual-time span tracer: where internal/obs proves
// *that* counters moved, span proves *where virtual time went*. A Tracer
// records begin/end spans stamped with sim.Time, attributed to the query and
// page they concern, and causally linked across actors (a prefetch read →
// the executor hit that consumed it; an abandoned prefetch → the fallback
// synchronous read that paid for it) — the per-query stall breakdown the
// paper's evaluation figures rest on, reconstructable after the run instead
// of eyeballed from counters.
//
// The name: internal/trace is already taken by the paper's Algorithm 1
// access-trace construction (which pages a query touches); span is about
// execution timelines (when the executor waited, and on what).
//
// Contract, mirroring obs.Recorder:
//
//   - Nil is off. Every method is nil-receiver safe and a nil *Tracer costs
//     each event site exactly one nil-check; replay timelines are bitwise
//     identical with tracing on or off (the tracer never schedules work).
//   - Zero allocation per event when enabled. Spans are value structs
//     appended to one slice (amortized growth; Reserve pre-sizes it), and
//     the causal-link stash is one map keyed by page. Hot-path methods are
//     annotated //pythia:noalloc and enforced by pythia-vet.
//   - Single-writer. The replay simulator is single-threaded; the HTTP
//     serving tier wraps a Tracer in Sync (one mutex per event).
package span

import (
	"sync"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// Kind enumerates span types. Duration kinds describe an interval of virtual
// time; mark kinds are zero-duration annotations (Start == End).
type Kind uint8

const (
	// --- duration spans ---

	// QuerySpan covers a query's whole lifetime (start → finish). Its label
	// carries the query's ID string.
	QuerySpan Kind = iota
	// InferWait is the model-inference window that gates the prefetcher:
	// execution proceeds underneath it, prefetching begins at its end (§3.3).
	InferWait
	// ExecDiskWait is the executor blocked on a foreground device read — the
	// stall prefetching exists to remove. Covers the whole retry ladder when
	// fault injection is active.
	ExecDiskWait
	// ExecOSCopy is the kernel→user-space copy window a buffer miss pays
	// whether the page came from the OS cache or (after the read) the device.
	ExecOSCopy
	// ExecRetryWait is the executor's backoff window between failed device
	// read attempts (nested inside its ExecDiskWait).
	ExecRetryWait
	// PrefetchRead is one asynchronous prefetch read in flight, from issue to
	// arrival — disk time paid off the executor's critical path. A read
	// abandoned after retry exhaustion ends with Detail = DetailAbandoned.
	PrefetchRead
	// PrefetchRetryWait is the prefetcher's backoff window before retrying a
	// failed read.
	PrefetchRetryWait
	// HTTPSpan is one serving-tier request (real time on the metrics hub's
	// injected clock); its label is the endpoint, Detail the status code.
	HTTPSpan

	// --- marks (instant annotations) ---

	// PrefetchHitMark: the executor consumed a prefetched frame; links to the
	// PrefetchRead span that brought the page in.
	PrefetchHitMark
	// FallbackSyncMark: the executor synchronously read a page the
	// prefetcher abandoned; links to the abandoned PrefetchRead span.
	FallbackSyncMark
	// WindowStallMark: the prefetcher had queued pages but the readahead
	// window R was full.
	WindowStallMark
	// DegradeMark: model inference blew its deadline and the query degraded
	// to the default (no-prefetch) path.
	DegradeMark
	// BufferHitMark / BufferMissMark / BufferEvictMark annotate buffer-pool
	// outcomes on the timeline.
	BufferHitMark
	BufferMissMark
	BufferEvictMark
	// PrefetchWastedMark: a prefetched frame was evicted before any executor
	// use; links to the PrefetchRead span whose I/O was wasted.
	PrefetchWastedMark
	// OSCacheHitMark / OSCacheMissMark / OSCacheEvictMark annotate OS page
	// cache outcomes.
	OSCacheHitMark
	OSCacheMissMark
	OSCacheEvictMark
	// PredCacheHitMark / PredCacheMissMark annotate serving-tier prediction
	// cache outcomes: a hit means the request skipped inference entirely.
	PredCacheHitMark
	PredCacheMissMark
	// QualityScoreMark annotates one prediction scored against ground truth
	// (serve: a /v1/feedback round-trip; replay: a registered query scored).
	QualityScoreMark
	// DriftWarningMark / DriftAlarmMark / DriftRecoveredMark annotate drift
	// state transitions so trace timelines correlate latency shifts with
	// distribution shifts.
	DriftWarningMark
	DriftAlarmMark
	DriftRecoveredMark

	// KindCount is the number of span kinds; it must remain last.
	KindCount
)

var kindNames = [KindCount]string{
	QuerySpan:          "query",
	InferWait:          "inference",
	ExecDiskWait:       "disk_wait",
	ExecOSCopy:         "os_copy",
	ExecRetryWait:      "retry_wait",
	PrefetchRead:       "prefetch_read",
	PrefetchRetryWait:  "prefetch_retry_wait",
	HTTPSpan:           "http_request",
	PrefetchHitMark:    "prefetch_hit",
	FallbackSyncMark:   "fallback_sync_read",
	WindowStallMark:    "window_stall",
	DegradeMark:        "inference_degrade",
	BufferHitMark:      "buffer_hit",
	BufferMissMark:     "buffer_miss",
	BufferEvictMark:    "buffer_evict",
	PrefetchWastedMark: "prefetch_wasted",
	OSCacheHitMark:     "oscache_hit",
	OSCacheMissMark:    "oscache_miss",
	OSCacheEvictMark:   "oscache_evict",
	PredCacheHitMark:   "predcache_hit",
	PredCacheMissMark:  "predcache_miss",
	QualityScoreMark:   "quality_feedback",
	DriftWarningMark:   "drift_warning",
	DriftAlarmMark:     "drift_alarm",
	DriftRecoveredMark: "drift_recovered",
}

// String returns the kind's snake_case name (stable: it is the event name
// exported to Perfetto and printed in stall reports).
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "unknown"
}

// DetailAbandoned on a PrefetchRead span marks a read that ended in
// abandonment (retry exhaustion) rather than arrival.
const DetailAbandoned uint32 = 1

// SpanID indexes a span within its Tracer. It doubles as the causal-link
// handle and as the Perfetto flow-event ID.
type SpanID int32

// NoSpan is the absent-link sentinel.
const NoSpan SpanID = -1

// NoQuery marks a span not attributed to any query (mirrors obs.NoQuery).
const NoQuery int32 = -1

// Span is one recorded interval or mark. Marks have Start == End.
type Span struct {
	// Kind is the span type.
	Kind Kind
	// Query is the run-local query index the span belongs to, or NoQuery.
	Query int32
	// Page is the page concerned, or the zero PageID.
	Page storage.PageID
	// Start and End bound the span on the virtual timeline.
	Start, End sim.Time
	// Link is the causal predecessor span, or NoSpan.
	Link SpanID
	// Detail is kind-specific: DetailAbandoned on PrefetchRead, the HTTP
	// status code on HTTPSpan, zero otherwise.
	Detail uint32
	// Label optionally names the span (query ID, HTTP endpoint); the
	// exporter falls back to Kind.String() when empty.
	Label string
}

// Dur returns the span's duration.
func (s *Span) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Tracer records spans. The zero value is NOT ready: construct with New. A
// nil *Tracer is valid everywhere and records nothing.
type Tracer struct {
	clock   *sim.Clock // optional: resolves at == 0 to the current virtual time
	current int32      // query index stamped on new spans (SetQuery)
	spans   []Span
	stash   map[storage.PageID]SpanID // open causal links keyed by page
}

// New returns an empty tracer with no clock and the current query unset.
func New() *Tracer {
	return &Tracer{current: NoQuery, stash: make(map[storage.PageID]SpanID)}
}

// SetClock attaches the virtual clock used to resolve zero timestamps
// (emitters that do not have the current time at hand pass 0). replay.Run
// attaches its engine's clock automatically.
func (t *Tracer) SetClock(c *sim.Clock) {
	if t == nil {
		return
	}
	t.clock = c
}

// SetQuery sets the query index stamped on subsequently recorded spans; the
// replay runners call it on every engine-callback entry, exactly like the
// obs tagger's current-query field.
//
//pythia:noalloc
func (t *Tracer) SetQuery(q int32) {
	if t == nil {
		return
	}
	t.current = q
}

// Reserve grows the span store to hold at least n spans, so a bounded run
// records with zero allocations (the allocs tests pre-size this way).
func (t *Tracer) Reserve(n int) {
	if t == nil || cap(t.spans) >= n {
		return
	}
	s := make([]Span, len(t.spans), n)
	copy(s, t.spans)
	t.spans = s
}

// Reset forgets all recorded spans and stashed links, keeping capacity, so a
// tracer can be reused across independent runs.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.spans = t.spans[:0]
	for k := range t.stash {
		delete(t.stash, k)
	}
	t.current = NoQuery
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the recorded spans in record order. The slice is the
// tracer's own store: treat it as read-only and do not record concurrently.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// at resolves a zero timestamp to the attached clock's current time.
func (t *Tracer) at(at sim.Time) sim.Time {
	if at == 0 && t.clock != nil {
		return t.clock.Now()
	}
	return at
}

// push appends one span and returns its ID.
//
//pythia:noalloc
func (t *Tracer) push(s Span) SpanID {
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, s)
	return id
}

// Begin opens a span at time at (0 = now per the attached clock) and returns
// its ID for End.
//
//pythia:noalloc
func (t *Tracer) Begin(k Kind, pg storage.PageID, at sim.Time) SpanID {
	if t == nil {
		return NoSpan
	}
	start := t.at(at)
	return t.push(Span{Kind: k, Query: t.current, Page: pg, Start: start, End: start, Link: NoSpan})
}

// BeginLabel is Begin with a label (e.g. the query ID on QuerySpan).
//
//pythia:noalloc
func (t *Tracer) BeginLabel(k Kind, label string, pg storage.PageID, at sim.Time) SpanID {
	if t == nil {
		return NoSpan
	}
	start := t.at(at)
	return t.push(Span{Kind: k, Query: t.current, Page: pg, Start: start, End: start, Link: NoSpan, Label: label})
}

// End closes span id at time at (0 = now). Ending NoSpan (or any
// out-of-range ID) is a no-op, so call sites need no guards.
//
//pythia:noalloc
func (t *Tracer) End(id SpanID, at sim.Time) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	t.spans[id].End = t.at(at)
}

// EndDetail is End plus a kind-specific detail value (e.g. DetailAbandoned).
//
//pythia:noalloc
func (t *Tracer) EndDetail(id SpanID, at sim.Time, detail uint32) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	t.spans[id].End = t.at(at)
	t.spans[id].Detail = detail
}

// Complete records a span whose bounds are both known (0 = now for either).
//
//pythia:noalloc
func (t *Tracer) Complete(k Kind, pg storage.PageID, start, end sim.Time) SpanID {
	if t == nil {
		return NoSpan
	}
	return t.push(Span{Kind: k, Query: t.current, Page: pg, Start: t.at(start), End: t.at(end), Link: NoSpan})
}

// CompleteLabel is Complete with an explicit query, label, and detail — the
// serving tier's shape (endpoint label, status-code detail, no ambient
// query).
//
//pythia:noalloc
func (t *Tracer) CompleteLabel(k Kind, label string, q int32, detail uint32, start, end sim.Time) SpanID {
	if t == nil {
		return NoSpan
	}
	return t.push(Span{Kind: k, Query: q, Page: storage.PageID{}, Start: t.at(start), End: t.at(end), Link: NoSpan, Detail: detail, Label: label})
}

// Instant records a zero-duration mark at time at (0 = now).
//
//pythia:noalloc
func (t *Tracer) Instant(k Kind, pg storage.PageID, at sim.Time) SpanID {
	if t == nil {
		return NoSpan
	}
	ts := t.at(at)
	return t.push(Span{Kind: k, Query: t.current, Page: pg, Start: ts, End: ts, Link: NoSpan})
}

// InstantLink records a mark causally linked to span link (NoSpan links
// nothing).
//
//pythia:noalloc
func (t *Tracer) InstantLink(k Kind, pg storage.PageID, at sim.Time, link SpanID) SpanID {
	if t == nil {
		return NoSpan
	}
	ts := t.at(at)
	return t.push(Span{Kind: k, Query: t.current, Page: pg, Start: ts, End: ts, Link: link})
}

// Stash parks an open causal link under a page, for a later consumer that
// only knows the page: the prefetcher stashes its PrefetchRead span when the
// page lands (or is abandoned), and the buffer pool or executor takes it
// when the page is consumed.
//
//pythia:noalloc
func (t *Tracer) Stash(pg storage.PageID, id SpanID) {
	if t == nil || id == NoSpan {
		return
	}
	t.stash[pg] = id
}

// TakeStash removes and returns the link stashed under a page, or NoSpan.
//
//pythia:noalloc
func (t *Tracer) TakeStash(pg storage.PageID) SpanID {
	if t == nil {
		return NoSpan
	}
	id, ok := t.stash[pg]
	if !ok {
		return NoSpan
	}
	delete(t.stash, pg)
	return id
}

// Sync wraps a Tracer for concurrent writers (the HTTP serving tier): one
// mutex acquisition per event, no allocation. A nil *Sync records nothing.
type Sync struct {
	mu sync.Mutex
	tr *Tracer
}

// NewSync returns a Sync over a fresh tracer.
func NewSync() *Sync { return &Sync{tr: New()} }

// CompleteLabel records one completed span under the lock.
//
//pythia:noalloc
func (s *Sync) CompleteLabel(k Kind, label string, q int32, detail uint32, start, end sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tr.CompleteLabel(k, label, q, detail, start, end)
	s.mu.Unlock()
}

// Instant records one zero-duration mark with an explicit label and query
// under the lock — the serving tier's shape for cache-outcome marks.
//
//pythia:noalloc
func (s *Sync) Instant(k Kind, label string, q int32, at sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tr.push(Span{Kind: k, Query: q, Start: at, End: at, Link: NoSpan, Label: label})
	s.mu.Unlock()
}

// Len returns the number of recorded spans.
func (s *Sync) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Len()
}

// Snapshot copies the recorded spans under the lock, in record order.
func (s *Sync) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.tr.spans))
	copy(out, s.tr.spans)
	return out
}
