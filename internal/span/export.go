package span

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// ExportChrome writes spans as Chrome trace-event JSON (the format Perfetto
// and chrome://tracing load). The encoding is hand-rolled — like the serve
// tier's Prometheus exposition — so field order, number formatting, and event
// order are fully deterministic: the same span slice always yields
// byte-for-byte identical output, which is what the golden tests pin.
//
// Layout: one process ("pythia"), one thread lane per actor — lane 1 for
// system-wide spans (no query), then per query an executor lane and a
// prefetcher lane. Duration spans are "X" complete events, except
// asynchronous prefetch reads and their retry waits, which are "b"/"e" async
// pairs so overlapping in-flight reads render as separate tracks. Marks are
// thread-scoped instants, and causal links are "s"/"f" flow arrows from the
// linked span's end to the mark.
//
// Timestamps are microseconds with nanosecond precision (Perfetto accepts
// fractional µs); virtual time 0 is trace time 0.
func ExportChrome(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	// Metadata first: process name, then a name per lane any span uses, in
	// lane order. Lanes are discovered from the spans themselves.
	maxQ := int32(-1)
	for i := range spans {
		if spans[i].Query > maxQ {
			maxQ = spans[i].Query
		}
	}
	used := make(map[int64]bool, 2*(int(maxQ)+1)+1)
	for i := range spans {
		used[laneOf(&spans[i])] = true
	}
	first := true
	meta := func(tid int64, name string) {
		sep(bw, &first)
		fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", tid, strconv.Quote(name))
	}
	sep(bw, &first)
	bw.WriteString("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"pythia\"}}")
	if used[laneSystem] {
		meta(laneSystem, "system")
	}
	for q := int32(0); q <= maxQ; q++ {
		if used[laneExec(q)] {
			meta(laneExec(q), fmt.Sprintf("q%d executor", q))
		}
		if used[lanePrefetch(q)] {
			meta(lanePrefetch(q), fmt.Sprintf("q%d prefetcher", q))
		}
	}

	for i := range spans {
		s := &spans[i]
		tid := laneOf(s)
		name := s.Label
		if name == "" {
			name = s.Kind.String()
		}
		switch {
		case isMark(s.Kind):
			// Instant mark, optionally the target of a flow arrow from the
			// span it links to.
			if s.Link != NoSpan && int(s.Link) < len(spans) {
				src := &spans[s.Link]
				sep(bw, &first)
				fmt.Fprintf(bw, "{\"ph\":\"s\",\"pid\":1,\"tid\":%d,\"id\":%d,\"cat\":\"flow\",\"name\":\"link\",\"ts\":%s}", laneOf(src), i, usec(int64(src.End)))
				sep(bw, &first)
				fmt.Fprintf(bw, "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":%d,\"id\":%d,\"cat\":\"flow\",\"name\":\"link\",\"ts\":%s}", tid, i, usec(int64(s.Start)))
			}
			sep(bw, &first)
			fmt.Fprintf(bw, "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"name\":%s,\"ts\":%s", tid, strconv.Quote(name), usec(int64(s.Start)))
			writeArgs(bw, s)
			bw.WriteString("}")
		case isAsync(s.Kind):
			// Overlapping in-flight reads: async begin/end pair keyed by the
			// span's own index, emitted adjacently (trace-event JSON does not
			// require chronological order).
			sep(bw, &first)
			fmt.Fprintf(bw, "{\"ph\":\"b\",\"pid\":1,\"tid\":%d,\"id\":%d,\"cat\":\"prefetch\",\"name\":%s,\"ts\":%s", tid, i, strconv.Quote(name), usec(int64(s.Start)))
			writeArgs(bw, s)
			bw.WriteString("}")
			sep(bw, &first)
			fmt.Fprintf(bw, "{\"ph\":\"e\",\"pid\":1,\"tid\":%d,\"id\":%d,\"cat\":\"prefetch\",\"name\":%s,\"ts\":%s}", tid, i, strconv.Quote(name), usec(int64(s.End)))
		default:
			sep(bw, &first)
			fmt.Fprintf(bw, "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%s,\"ts\":%s,\"dur\":%s", tid, strconv.Quote(name), usec(int64(s.Start)), usec(int64(s.Dur())))
			writeArgs(bw, s)
			bw.WriteString("}")
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// The system lane carries spans with no query attribution; each query then
// owns an executor lane and a prefetcher lane.
const laneSystem int64 = 1

func laneExec(q int32) int64     { return 2 + 2*int64(q) }
func lanePrefetch(q int32) int64 { return 3 + 2*int64(q) }

// laneOf maps a span to its thread lane: inference windows, prefetch reads,
// retry waits, and window stalls belong to the query's prefetcher; every
// other query-attributed span belongs to its executor.
func laneOf(s *Span) int64 {
	if s.Query == NoQuery {
		return laneSystem
	}
	switch s.Kind {
	case InferWait, PrefetchRead, PrefetchRetryWait, WindowStallMark:
		return lanePrefetch(s.Query)
	}
	return laneExec(s.Query)
}

// isMark reports whether a kind is a zero-duration annotation.
func isMark(k Kind) bool { return k >= PrefetchHitMark && k < KindCount }

// isAsync reports whether a kind renders as an async begin/end pair (spans
// that legitimately overlap on one lane).
func isAsync(k Kind) bool { return k == PrefetchRead || k == PrefetchRetryWait }

// writeArgs appends the span's attribution as a trace-event args object:
// query index, page, kind-specific detail, and causal link, each only when
// meaningful, in fixed order.
func writeArgs(bw *bufio.Writer, s *Span) {
	bw.WriteString(",\"args\":{")
	comma := false
	field := func() {
		if comma {
			bw.WriteByte(',')
		}
		comma = true
	}
	if s.Query != NoQuery {
		field()
		fmt.Fprintf(bw, "\"q\":%d", s.Query)
	}
	if s.Page != (storage.PageID{}) {
		field()
		fmt.Fprintf(bw, "\"page\":%s", strconv.Quote(s.Page.String()))
	}
	if s.Detail != 0 {
		field()
		fmt.Fprintf(bw, "\"detail\":%d", s.Detail)
	}
	if s.Link != NoSpan {
		field()
		fmt.Fprintf(bw, "\"link\":%d", s.Link)
	}
	bw.WriteByte('}')
}

// sep writes the inter-event separator (",\n" after the first event).
func sep(bw *bufio.Writer, first *bool) {
	if *first {
		*first = false
		return
	}
	bw.WriteString(",\n")
}

// usec formats a nanosecond count as microseconds with three decimals
// ("1234.567"), Perfetto's fractional-µs timestamp form, with no
// float rounding anywhere.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// Compile-time guard that sim.Time converts to int64 nanoseconds the way
// usec assumes.
var _ = int64(sim.Time(0))
