package span

import (
	"testing"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

func pg(obj, n uint32) storage.PageID {
	return storage.PageID{Object: storage.ObjectID(obj), Page: storage.PageNum(n)}
}

// TestNilTracerIsSafe exercises every method on a nil *Tracer — the off
// switch must be a no-op everywhere, exactly like a nil obs.Recorder or a
// nil fault.Injector.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.SetClock(&sim.Clock{})
	tr.SetQuery(3)
	tr.Reserve(100)
	tr.Reset()
	if id := tr.Begin(ExecDiskWait, pg(1, 2), 5); id != NoSpan {
		t.Errorf("nil Begin = %d, want NoSpan", id)
	}
	if id := tr.BeginLabel(QuerySpan, "q", pg(1, 2), 5); id != NoSpan {
		t.Errorf("nil BeginLabel = %d, want NoSpan", id)
	}
	tr.End(0, 10)
	tr.EndDetail(0, 10, 1)
	if id := tr.Complete(ExecOSCopy, pg(1, 2), 5, 10); id != NoSpan {
		t.Errorf("nil Complete = %d, want NoSpan", id)
	}
	if id := tr.CompleteLabel(HTTPSpan, "predict", NoQuery, 200, 5, 10); id != NoSpan {
		t.Errorf("nil CompleteLabel = %d, want NoSpan", id)
	}
	if id := tr.Instant(BufferHitMark, pg(1, 2), 5); id != NoSpan {
		t.Errorf("nil Instant = %d, want NoSpan", id)
	}
	if id := tr.InstantLink(PrefetchHitMark, pg(1, 2), 5, 7); id != NoSpan {
		t.Errorf("nil InstantLink = %d, want NoSpan", id)
	}
	tr.Stash(pg(1, 2), 7)
	if id := tr.TakeStash(pg(1, 2)); id != NoSpan {
		t.Errorf("nil TakeStash = %d, want NoSpan", id)
	}
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Errorf("nil tracer has spans")
	}

	var sy *Sync
	sy.CompleteLabel(HTTPSpan, "predict", NoQuery, 200, 5, 10)
	if sy.Len() != 0 || sy.Snapshot() != nil {
		t.Errorf("nil Sync has spans")
	}
}

// TestSpanRecording checks ID assignment, bounds, attribution, and the
// End/EndDetail guards.
func TestSpanRecording(t *testing.T) {
	tr := New()
	tr.SetQuery(2)
	id := tr.Begin(ExecDiskWait, pg(4, 9), 100)
	if id != 0 {
		t.Fatalf("first span ID = %d", id)
	}
	tr.End(id, 350)
	s := tr.Spans()[0]
	if s.Kind != ExecDiskWait || s.Query != 2 || s.Page != pg(4, 9) || s.Start != 100 || s.End != 350 {
		t.Errorf("span = %+v", s)
	}
	if got := s.Dur(); got != 250 {
		t.Errorf("Dur = %v", got)
	}

	// Out-of-range and NoSpan ends are silent no-ops.
	tr.End(NoSpan, 999)
	tr.End(42, 999)
	tr.EndDetail(NoSpan, 999, 7)

	id2 := tr.Complete(ExecOSCopy, pg(4, 10), 350, 354)
	if id2 != 1 {
		t.Errorf("second span ID = %d", id2)
	}
	tr.EndDetail(id2, 360, DetailAbandoned)
	if s := tr.Spans()[1]; s.End != 360 || s.Detail != DetailAbandoned {
		t.Errorf("EndDetail: %+v", s)
	}

	mark := tr.InstantLink(PrefetchHitMark, pg(4, 9), 400, id)
	if s := tr.Spans()[mark]; s.Start != 400 || s.End != 400 || s.Link != id {
		t.Errorf("mark = %+v", s)
	}

	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("Len after Reset = %d", tr.Len())
	}
}

// TestClockResolution: a zero timestamp means "now" on the attached clock; a
// tracer without a clock keeps the zero.
func TestClockResolution(t *testing.T) {
	tr := New()
	var clk sim.Clock
	clk.Advance(777)
	tr.SetClock(&clk)
	id := tr.Instant(BufferHitMark, pg(1, 1), 0)
	if got := tr.Spans()[id].Start; got != 777 {
		t.Errorf("clock-resolved start = %v, want 777", got)
	}
	id = tr.Instant(BufferHitMark, pg(1, 1), 555)
	if got := tr.Spans()[id].Start; got != 555 {
		t.Errorf("explicit start = %v, want 555", got)
	}
}

// TestStash: links park under a page and are consumed exactly once.
func TestStash(t *testing.T) {
	tr := New()
	id := tr.Begin(PrefetchRead, pg(3, 7), 10)
	tr.Stash(pg(3, 7), id)
	if got := tr.TakeStash(pg(3, 7)); got != id {
		t.Errorf("TakeStash = %d, want %d", got, id)
	}
	if got := tr.TakeStash(pg(3, 7)); got != NoSpan {
		t.Errorf("second TakeStash = %d, want NoSpan", got)
	}
	// Stashing NoSpan is a no-op, so disabled-tracer IDs never pollute maps.
	tr.Stash(pg(3, 8), NoSpan)
	if got := tr.TakeStash(pg(3, 8)); got != NoSpan {
		t.Errorf("TakeStash after NoSpan stash = %d", got)
	}
}

// TestSyncSnapshot: concurrent-writer wrapper records and snapshots.
func TestSyncSnapshot(t *testing.T) {
	sy := NewSync()
	sy.CompleteLabel(HTTPSpan, "predict", NoQuery, 200, 100, 300)
	sy.CompleteLabel(HTTPSpan, "stats", NoQuery, 200, 400, 450)
	snap := sy.Snapshot()
	if len(snap) != 2 || sy.Len() != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].Label != "predict" || snap[0].Detail != 200 || snap[0].Dur() != 200 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	// The snapshot is a copy: mutating it does not touch the tracer.
	snap[0].Label = "mutated"
	if got := sy.Snapshot()[0].Label; got != "predict" {
		t.Errorf("snapshot aliases tracer store: %q", got)
	}
}

// TestKindNames: every kind has a distinct non-empty snake_case name (they
// are exported trace-event names and report labels).
func TestKindNames(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < KindCount; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if KindCount.String() != "unknown" {
		t.Errorf("KindCount.String() = %q", KindCount.String())
	}
}

// TestRecordingAllocFree proves the per-event contract: with capacity
// reserved, neither the nil-tracer path nor the enabled path allocates.
func TestRecordingAllocFree(t *testing.T) {
	var nilTr *Tracer
	p := pg(2, 5)
	if a := testing.AllocsPerRun(1000, func() {
		nilTr.SetQuery(1)
		id := nilTr.Begin(ExecDiskWait, p, 10)
		nilTr.End(id, 20)
		nilTr.Instant(BufferHitMark, p, 20)
	}); a != 0 {
		t.Errorf("nil tracer: %v allocs/event batch", a)
	}

	tr := New()
	tr.Reserve(4 * 1001)
	tr.Stash(p, 0) // pre-size the one-entry stash
	tr.TakeStash(p)
	if a := testing.AllocsPerRun(1000, func() {
		tr.SetQuery(1)
		id := tr.Begin(PrefetchRead, p, 10)
		tr.EndDetail(id, 20, DetailAbandoned)
		tr.Stash(p, id)
		tr.InstantLink(FallbackSyncMark, p, 20, tr.TakeStash(p))
	}); a != 0 {
		t.Errorf("enabled tracer: %v allocs/event batch", a)
	}
}

// TestBuildReport drives a synthetic timeline through the aggregator and
// checks the attribution arithmetic.
func TestBuildReport(t *testing.T) {
	tr := New()
	tr.SetQuery(0)
	q0 := tr.BeginLabel(QuerySpan, "alpha", storage.PageID{}, 0)
	tr.Complete(InferWait, storage.PageID{}, 0, 500)
	d0 := tr.Begin(ExecDiskWait, pg(1, 1), 500)
	tr.Complete(ExecRetryWait, pg(1, 1), 1000, 1250)
	tr.End(d0, 2000)
	tr.Complete(ExecOSCopy, pg(1, 1), 2000, 2004)
	pf := tr.Begin(PrefetchRead, pg(2, 9), 600)
	tr.End(pf, 1600)
	tr.Stash(pg(2, 9), pf)
	tr.InstantLink(PrefetchHitMark, pg(2, 9), 2100, tr.TakeStash(pg(2, 9)))
	tr.End(q0, 3000)

	tr.SetQuery(1)
	q1 := tr.BeginLabel(QuerySpan, "beta", storage.PageID{}, 0)
	tr.Complete(ExecOSCopy, pg(1, 3), 100, 104)
	tr.InstantLink(FallbackSyncMark, pg(2, 4), 300, NoSpan)
	tr.End(q1, 400)

	rep := BuildReport(tr.Spans())
	if len(rep.Queries) != 2 {
		t.Fatalf("queries = %d", len(rep.Queries))
	}
	a := rep.Queries[0]
	if a.Label != "alpha" || a.Elapsed != 3000 || a.DiskBlocked != 1500 ||
		a.RetryBackoff != 250 || a.OSCopy != 4 || a.PrefetchHidden != 1000 ||
		a.Inference != 500 || a.DiskReads != 1 || a.OSCopies != 1 || a.PrefetchHits != 1 {
		t.Errorf("q0 = %+v", a)
	}
	b := rep.Queries[1]
	if b.Label != "beta" || b.Elapsed != 400 || b.OSCopy != 4 || b.Fallbacks != 1 || b.DiskReads != 0 {
		t.Errorf("q1 = %+v", b)
	}
	if rep.Total.Elapsed != 3400 || rep.Total.DiskReads != 1 || rep.Total.OSCopies != 2 {
		t.Errorf("total = %+v", rep.Total)
	}

	// Objects sorted by ID: 1 then 2.
	if len(rep.Objects) != 2 || rep.Objects[0].Object != 1 || rep.Objects[1].Object != 2 {
		t.Fatalf("objects = %+v", rep.Objects)
	}
	if o := rep.Objects[0]; o.DiskBlocked != 1500 || o.OSCopy != 8 || o.OSCopies != 2 {
		t.Errorf("object 1 = %+v", o)
	}
	if o := rep.Objects[1]; o.PrefetchHidden != 1000 || o.PrefetchHits != 1 {
		t.Errorf("object 2 = %+v", o)
	}
}
