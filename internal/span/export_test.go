package span

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/pythia-db/pythia/internal/storage"
)

// syntheticTimeline builds a small fixed timeline touching every exporter
// shape: complete spans, async prefetch reads, instants, flow links, labels,
// details, and the system lane.
func syntheticTimeline() *Tracer {
	tr := New()
	tr.SetQuery(0)
	q0 := tr.BeginLabel(QuerySpan, "t91#0/0", storage.PageID{}, 0)
	tr.Complete(InferWait, storage.PageID{}, 0, 500_000)
	pf := tr.Begin(PrefetchRead, pg(7, 11), 500_000)
	d := tr.Begin(ExecDiskWait, pg(3, 2), 100_000)
	tr.End(d, 1_100_000)
	tr.Complete(ExecOSCopy, pg(3, 2), 1_100_000, 1_104_000)
	tr.End(pf, 1_500_000)
	tr.Stash(pg(7, 11), pf)
	tr.InstantLink(PrefetchHitMark, pg(7, 11), 1_600_000, tr.TakeStash(pg(7, 11)))
	pf2 := tr.Begin(PrefetchRead, pg(7, 12), 700_000)
	tr.EndDetail(pf2, 1_300_000, DetailAbandoned)
	tr.Stash(pg(7, 12), pf2)
	tr.InstantLink(FallbackSyncMark, pg(7, 12), 1_700_000, tr.TakeStash(pg(7, 12)))
	tr.Instant(WindowStallMark, storage.PageID{}, 800_000)
	tr.End(q0, 2_000_000)
	tr.SetQuery(NoQuery)
	tr.Instant(DegradeMark, storage.PageID{}, 50_000)
	return tr
}

// TestExportChromeGolden pins the exporter's byte-exact output; any field
// reorder, numeric reformat, or lane renumbering fails here. Regenerate with
// UPDATE_GOLDEN=1.
func TestExportChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, syntheticTimeline().Spans()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "synthetic.trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace JSON diverged from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExportChromeIsValidJSON parses the export with encoding/json and
// checks the trace-event envelope: every event has a phase, pid, and name,
// and the async begin/end events pair up.
func TestExportChromeIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, syntheticTimeline().Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	asyncB, asyncE := 0, 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Errorf("event without phase: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event without pid: %v", ev)
		}
		switch ph {
		case "b":
			asyncB++
		case "e":
			asyncE++
		}
	}
	if asyncB != 2 || asyncB != asyncE {
		t.Errorf("async pairs: %d begins, %d ends (want 2 each)", asyncB, asyncE)
	}
}

// TestExportChromeDeterministic: two exports of the same spans are
// byte-identical (the map used for lane discovery must not leak order).
func TestExportChromeDeterministic(t *testing.T) {
	spans := syntheticTimeline().Spans()
	var a, b bytes.Buffer
	if err := ExportChrome(&a, spans); err != nil {
		t.Fatal(err)
	}
	if err := ExportChrome(&b, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same spans differ")
	}
}

// TestUsec pins the fractional-microsecond timestamp format.
func TestUsec(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{999, "0.999"},
		{1000, "1.000"},
		{1_234_567, "1234.567"},
		{-1500, "-1.500"},
	}
	for _, c := range cases {
		if got := usec(c.ns); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// TestWriteTextDeterministic: the stall report text renders identically
// across runs and resolves object names through the callback.
func TestWriteTextDeterministic(t *testing.T) {
	rep := BuildReport(syntheticTimeline().Spans())
	name := func(id storage.ObjectID) string {
		if id == 7 {
			return "catalog_returns"
		}
		return ""
	}
	var a, b bytes.Buffer
	if err := rep.WriteText(&a, name); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&b, name); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders differ")
	}
	if !bytes.Contains(a.Bytes(), []byte("catalog_returns")) {
		t.Errorf("report does not resolve object names:\n%s", a.String())
	}
	if !bytes.Contains(a.Bytes(), []byte("t91#0/0")) {
		t.Errorf("report does not carry query labels:\n%s", a.String())
	}
}
