// Package index implements a page-structured B+tree over int64 keys. The
// simulator is trace-driven, so the tree's job is to produce *exactly the
// block-access geometry* a real B+tree produces: an equality or range probe
// descends root → internal → leaf (one page access per level), then walks
// sibling leaves, and finally the executor fetches heap pages for the
// matching rows in key order. Sibling leaves share their root-to-parent
// path, which is why Algorithm 1 deduplicates traces.
//
// The tree is built bottom-up from the sorted (key, row) entries of a static
// relation — the paper assumes static data — so it is perfectly balanced and
// navigation is arithmetic: no per-node search structures are needed, yet
// every page access is identical to a pointer-chasing implementation.
package index

import (
	"fmt"
	"sort"

	"github.com/pythia-db/pythia/internal/storage"
)

// DefaultLeafCap is the default number of (key, row) entries per leaf page,
// roughly a Postgres 8 KiB btree leaf of int8 keys.
const DefaultLeafCap = 256

// DefaultFanout is the default number of children per internal page.
const DefaultFanout = 256

// Entry is one (key, heap row) pair.
type Entry struct {
	Key int64
	Row int64
}

// BTree is a read-only B+tree over a static relation's column.
type BTree struct {
	obj     *storage.Object
	leafCap int
	fanout  int

	keys []int64 // entry keys, ascending (ties broken by row)
	rows []int64 // heap row for each entry

	// levelCount[k] is the number of nodes at level k; level 0 = leaves,
	// the last level has exactly one node (the root). levelStart[k] is the
	// PageNum of the first node at level k; pages are numbered root-first
	// (root = page 0), then each level downward, leaves last — so hot pages
	// have small offsets, as in a freshly built index.
	levelCount []int
	levelStart []storage.PageNum
}

// Config controls tree geometry; zero fields take defaults.
type Config struct {
	LeafCap int
	Fanout  int
}

// Build sorts entries by (key, row) and constructs the tree, registering its
// pages as a new index object named name in reg. Building an index over zero
// entries is allowed (a single empty leaf/root page).
func Build(reg *storage.Registry, name string, entries []Entry, cfg Config) *BTree {
	if cfg.LeafCap <= 0 {
		cfg.LeafCap = DefaultLeafCap
	}
	if cfg.Fanout <= 1 {
		cfg.Fanout = DefaultFanout
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].Row < entries[j].Row
	})
	t := &BTree{leafCap: cfg.LeafCap, fanout: cfg.Fanout}
	t.keys = make([]int64, len(entries))
	t.rows = make([]int64, len(entries))
	for i, e := range entries {
		t.keys[i] = e.Key
		t.rows[i] = e.Row
	}

	// Level geometry, bottom-up.
	leaves := (len(entries) + cfg.LeafCap - 1) / cfg.LeafCap
	if leaves == 0 {
		leaves = 1
	}
	t.levelCount = []int{leaves}
	for n := leaves; n > 1; {
		n = (n + cfg.Fanout - 1) / cfg.Fanout
		t.levelCount = append(t.levelCount, n)
	}

	// Page numbering: root (top level) first, then downward.
	total := 0
	for _, n := range t.levelCount {
		total += n
	}
	t.levelStart = make([]storage.PageNum, len(t.levelCount))
	next := storage.PageNum(0)
	for k := len(t.levelCount) - 1; k >= 0; k-- {
		t.levelStart[k] = next
		next += storage.PageNum(t.levelCount[k])
	}
	t.obj = reg.Register(name, storage.KindIndex, storage.PageNum(total))
	return t
}

// Object returns the index's storage object.
func (t *BTree) Object() *storage.Object { return t.obj }

// Entries returns the number of (key, row) entries.
func (t *BTree) Entries() int { return len(t.keys) }

// Height returns the number of levels (1 for a root-only tree).
func (t *BTree) Height() int { return len(t.levelCount) }

// Leaves returns the number of leaf pages.
func (t *BTree) Leaves() int { return t.levelCount[0] }

// leafPage returns the PageID of leaf node i.
func (t *BTree) leafPage(i int) storage.PageID {
	return storage.PageID{Object: t.obj.ID, Page: t.levelStart[0] + storage.PageNum(i)}
}

// pathToLeaf returns the root→leaf page path for leaf node i, excluding the
// leaf itself.
func (t *BTree) pathToLeaf(i int) []storage.PageID {
	depth := len(t.levelCount)
	path := make([]storage.PageID, 0, depth-1)
	node := i
	// Compute ancestors bottom-up, then reverse to root-first order.
	for k := 1; k < depth; k++ {
		node /= t.fanout
		path = append(path, storage.PageID{
			Object: t.obj.ID,
			Page:   t.levelStart[k] + storage.PageNum(node),
		})
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// lowerBound returns the first entry index with key >= k.
func (t *BTree) lowerBound(k int64) int {
	return sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
}

// upperBound returns the first entry index with key > k.
func (t *BTree) upperBound(k int64) int {
	return sort.Search(len(t.keys), func(i int) bool { return t.keys[i] > k })
}

// Probe is the result of a range scan: the exact sequence of index pages
// touched (root→leaf descent, then sibling leaves) and the matching heap
// rows in key order.
type Probe struct {
	IndexPages []storage.PageID
	Rows       []int64
}

// Scan probes the range [lo, hi] (inclusive). Like a real B+tree it always
// pays the root-to-leaf descent, even when the range is empty.
func (t *BTree) Scan(lo, hi int64) Probe {
	if lo > hi {
		return Probe{IndexPages: append(t.pathToLeaf(0), t.leafPage(0))}
	}
	start := t.lowerBound(lo)
	end := t.upperBound(hi)

	firstLeaf := 0
	if len(t.keys) > 0 {
		i := start
		if i >= len(t.keys) {
			i = len(t.keys) - 1
		}
		firstLeaf = i / t.leafCap
	}
	var p Probe
	p.IndexPages = append(t.pathToLeaf(firstLeaf), t.leafPage(firstLeaf))
	if start < end {
		lastLeaf := (end - 1) / t.leafCap
		for leaf := firstLeaf + 1; leaf <= lastLeaf; leaf++ {
			p.IndexPages = append(p.IndexPages, t.leafPage(leaf))
		}
		p.Rows = append(p.Rows, t.rows[start:end]...)
	}
	return p
}

// Lookup probes a single key (Scan(k, k)).
func (t *BTree) Lookup(k int64) Probe { return t.Scan(k, k) }

// KeyRange returns the minimum and maximum keys, or ok=false for an empty
// tree.
func (t *BTree) KeyRange() (min, max int64, ok bool) {
	if len(t.keys) == 0 {
		return 0, 0, false
	}
	return t.keys[0], t.keys[len(t.keys)-1], true
}

// Selectivity estimates the fraction of entries in [lo, hi]; the planner
// uses it to choose between index and sequential scans.
func (t *BTree) Selectivity(lo, hi int64) float64 {
	if len(t.keys) == 0 || lo > hi {
		return 0
	}
	n := t.upperBound(hi) - t.lowerBound(lo)
	return float64(n) / float64(len(t.keys))
}

// Validate checks structural invariants; tests call it after Build.
func (t *BTree) Validate() error {
	for i := 1; i < len(t.keys); i++ {
		if t.keys[i] < t.keys[i-1] {
			return fmt.Errorf("index %s: keys out of order at %d", t.obj.Name, i)
		}
	}
	if top := t.levelCount[len(t.levelCount)-1]; top != 1 {
		return fmt.Errorf("index %s: root level has %d nodes", t.obj.Name, top)
	}
	for k := 0; k < len(t.levelCount)-1; k++ {
		want := (t.levelCount[k] + t.fanout - 1) / t.fanout
		if t.levelCount[k+1] != want {
			return fmt.Errorf("index %s: level %d has %d nodes, want %d", t.obj.Name, k+1, t.levelCount[k+1], want)
		}
	}
	total := 0
	for _, n := range t.levelCount {
		total += n
	}
	if storage.PageNum(total) != t.obj.Pages {
		return fmt.Errorf("index %s: %d pages registered, tree has %d", t.obj.Name, t.obj.Pages, total)
	}
	return nil
}
