package index

import (
	"testing"
	"testing/quick"

	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

func buildSeq(t *testing.T, n int, cfg Config) (*storage.Registry, *BTree) {
	t.Helper()
	reg := storage.NewRegistry()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Row: int64(i)}
	}
	tree := Build(reg, "idx", entries, cfg)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	return reg, tree
}

func TestBuildGeometry(t *testing.T) {
	_, tree := buildSeq(t, 1000, Config{LeafCap: 10, Fanout: 10})
	if tree.Leaves() != 100 {
		t.Fatalf("Leaves = %d, want 100", tree.Leaves())
	}
	// 100 leaves / fanout 10 = 10 internals, / 10 = 1 root → height 3.
	if tree.Height() != 3 {
		t.Fatalf("Height = %d, want 3", tree.Height())
	}
	if tree.Object().Pages != 111 {
		t.Fatalf("Pages = %d, want 111", tree.Object().Pages)
	}
	if tree.Entries() != 1000 {
		t.Fatalf("Entries = %d", tree.Entries())
	}
}

func TestEmptyTree(t *testing.T) {
	reg := storage.NewRegistry()
	tree := Build(reg, "empty", nil, Config{LeafCap: 4, Fanout: 4})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() != 1 || tree.Leaves() != 1 {
		t.Fatalf("empty tree geometry: h=%d leaves=%d", tree.Height(), tree.Leaves())
	}
	p := tree.Lookup(42)
	if len(p.Rows) != 0 {
		t.Fatal("lookup in empty tree returned rows")
	}
	if len(p.IndexPages) != 1 {
		t.Fatalf("empty-tree probe touched %d pages, want 1 (root=leaf)", len(p.IndexPages))
	}
	if _, _, ok := tree.KeyRange(); ok {
		t.Fatal("KeyRange on empty tree reported ok")
	}
}

func TestLookupDescendsRootToLeaf(t *testing.T) {
	_, tree := buildSeq(t, 1000, Config{LeafCap: 10, Fanout: 10})
	p := tree.Lookup(555)
	if len(p.Rows) != 1 || p.Rows[0] != 555 {
		t.Fatalf("Lookup rows = %v", p.Rows)
	}
	if len(p.IndexPages) != 3 {
		t.Fatalf("probe touched %d index pages, want height 3", len(p.IndexPages))
	}
	if p.IndexPages[0].Page != 0 {
		t.Fatalf("probe did not start at root page 0: %v", p.IndexPages)
	}
	// Root page < internal page < leaf page in the root-first numbering.
	if !(p.IndexPages[0].Page < p.IndexPages[1].Page && p.IndexPages[1].Page < p.IndexPages[2].Page) {
		t.Fatalf("descent pages not in root-first order: %v", p.IndexPages)
	}
}

func TestSiblingLeavesSharePath(t *testing.T) {
	_, tree := buildSeq(t, 1000, Config{LeafCap: 10, Fanout: 10})
	a := tree.Lookup(100) // leaf 10
	b := tree.Lookup(105) // same leaf
	for i := range a.IndexPages {
		if a.IndexPages[i] != b.IndexPages[i] {
			t.Fatalf("same-leaf probes diverge: %v vs %v", a.IndexPages, b.IndexPages)
		}
	}
	c := tree.Lookup(109)
	d := tree.Lookup(110) // adjacent leaf, same parent
	if c.IndexPages[1] != d.IndexPages[1] {
		t.Fatalf("adjacent leaves should share internal page: %v vs %v", c.IndexPages, d.IndexPages)
	}
	if c.IndexPages[2] == d.IndexPages[2] {
		t.Fatal("adjacent keys in different leaves mapped to same leaf page")
	}
}

func TestRangeScanWalksSiblingLeaves(t *testing.T) {
	_, tree := buildSeq(t, 1000, Config{LeafCap: 10, Fanout: 10})
	p := tree.Scan(95, 124)
	if len(p.Rows) != 30 {
		t.Fatalf("Scan returned %d rows, want 30", len(p.Rows))
	}
	for i, r := range p.Rows {
		if r != int64(95+i) {
			t.Fatalf("rows not in key order: %v", p.Rows[:5])
		}
	}
	// Descent (3 pages incl. first leaf) + 3 more leaves (keys 95..124 span
	// leaves 9,10,11,12).
	if len(p.IndexPages) != 6 {
		t.Fatalf("Scan touched %d index pages, want 6: %v", len(p.IndexPages), p.IndexPages)
	}
}

func TestEmptyRangeStillPaysDescent(t *testing.T) {
	_, tree := buildSeq(t, 100, Config{LeafCap: 10, Fanout: 10})
	p := tree.Scan(5000, 6000)
	if len(p.Rows) != 0 {
		t.Fatal("out-of-range scan returned rows")
	}
	if len(p.IndexPages) != tree.Height() {
		t.Fatalf("empty probe touched %d pages, want height %d", len(p.IndexPages), tree.Height())
	}
	// Inverted range.
	p = tree.Scan(10, 5)
	if len(p.Rows) != 0 || len(p.IndexPages) != tree.Height() {
		t.Fatalf("inverted range probe: %d rows, %d pages", len(p.Rows), len(p.IndexPages))
	}
}

func TestDuplicateKeys(t *testing.T) {
	reg := storage.NewRegistry()
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{Key: int64(i % 10), Row: int64(i)}
	}
	tree := Build(reg, "dup", entries, Config{LeafCap: 8, Fanout: 4})
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	p := tree.Lookup(3)
	if len(p.Rows) != 10 {
		t.Fatalf("Lookup(3) returned %d rows, want 10", len(p.Rows))
	}
	for i := 1; i < len(p.Rows); i++ {
		if p.Rows[i] <= p.Rows[i-1] {
			t.Fatal("duplicate-key rows not in row order")
		}
	}
}

func TestSelectivity(t *testing.T) {
	_, tree := buildSeq(t, 1000, Config{LeafCap: 10, Fanout: 10})
	if s := tree.Selectivity(0, 999); s != 1 {
		t.Fatalf("full-range selectivity = %f", s)
	}
	if s := tree.Selectivity(0, 99); s != 0.1 {
		t.Fatalf("10%% selectivity = %f", s)
	}
	if s := tree.Selectivity(10, 5); s != 0 {
		t.Fatalf("inverted selectivity = %f", s)
	}
}

func TestKeyRange(t *testing.T) {
	reg := storage.NewRegistry()
	tree := Build(reg, "k", []Entry{{Key: 7, Row: 0}, {Key: -3, Row: 1}, {Key: 12, Row: 2}}, Config{})
	min, max, ok := tree.KeyRange()
	if !ok || min != -3 || max != 12 {
		t.Fatalf("KeyRange = %d,%d,%v", min, max, ok)
	}
}

// Property: Scan(lo,hi) returns exactly the rows whose keys fall in [lo,hi],
// in key order, for arbitrary key multisets.
func TestScanMatchesLinearFilter(t *testing.T) {
	if err := quick.Check(func(seed uint64, loRaw, hiRaw int16) bool {
		r := sim.NewRand(seed)
		n := 1 + r.Intn(500)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: int64(r.Intn(200) - 100), Row: int64(i)}
		}
		reg := storage.NewRegistry()
		tree := Build(reg, "q", append([]Entry(nil), entries...), Config{LeafCap: 7, Fanout: 3})
		if tree.Validate() != nil {
			return false
		}
		lo, hi := int64(loRaw%150), int64(hiRaw%150)
		p := tree.Scan(lo, hi)
		want := map[int64]int{}
		count := 0
		for _, e := range entries {
			if e.Key >= lo && e.Key <= hi {
				want[e.Row]++
				count++
			}
		}
		if len(p.Rows) != count {
			return false
		}
		for _, row := range p.Rows {
			if want[row] == 0 {
				return false
			}
			want[row]--
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every probe touches exactly Height() pages for the descent plus
// one page per extra leaf spanned, and all pages are within the object.
func TestProbePagesInBounds(t *testing.T) {
	_, tree := buildSeq(t, 5000, Config{LeafCap: 16, Fanout: 8})
	obj := tree.Object()
	for lo := int64(0); lo < 5000; lo += 321 {
		p := tree.Scan(lo, lo+200)
		for _, pg := range p.IndexPages {
			if pg.Object != obj.ID || pg.Page >= obj.Pages {
				t.Fatalf("probe page out of bounds: %v", pg)
			}
		}
		if len(p.IndexPages) < tree.Height() {
			t.Fatalf("probe shorter than height: %d", len(p.IndexPages))
		}
	}
}
