package obs

import (
	"bufio"
	"fmt"
	"io"
)

// EventLog is a Recorder that retains the full event stream, so the
// experiment harness can dump a per-event trace for any figure (which page
// was prefetched when, which executor read stalled on the window, …).
// Appending amortizes allocation; this recorder is the explicit opt-in to
// paying for retention.
type EventLog struct {
	events []Event
	limit  int
	drops  uint64
}

// NewEventLog returns an event log retaining at most limit events
// (limit <= 0 means unbounded). Events past the limit are counted as
// dropped rather than silently lost.
func NewEventLog(limit int) *EventLog {
	return &EventLog{limit: limit}
}

// Record implements Recorder.
func (l *EventLog) Record(e Event) {
	if l.limit > 0 && len(l.events) >= l.limit {
		l.drops++
		return
	}
	l.events = append(l.events, e)
}

// Len returns the number of retained events.
func (l *EventLog) Len() int { return len(l.events) }

// Dropped returns the number of events discarded at the retention limit.
func (l *EventLog) Dropped() uint64 { return l.drops }

// Events returns the retained events in record order. The slice is owned by
// the log; callers must not mutate it.
func (l *EventLog) Events() []Event { return l.events }

// WriteTo dumps the log as tab-separated lines — virtual time, kind, query
// index, object, page — one event per line, in record order. It implements
// io.WriterTo.
func (l *EventLog) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for i := range l.events {
		e := &l.events[i]
		c, err := fmt.Fprintf(bw, "%d\t%s\t%d\t%d\t%d\n",
			int64(e.At), e.Kind, e.Query, e.Page.Object, e.Page.Page)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}
