package obs

import "sync/atomic"

// Counters is a fixed array of per-kind event totals. It is the cheapest
// Recorder: one array increment per event, no allocation, not synchronized —
// correct for the single-threaded replay simulator. Use AtomicCounters where
// multiple goroutines record.
//
// The zero value is ready to use.
type Counters [KindCount]uint64

// Record implements Recorder.
//
//pythia:noalloc
func (c *Counters) Record(e Event) {
	if e.Kind < KindCount {
		c[e.Kind]++
	}
}

// Get returns the total for one kind.
func (c *Counters) Get(k Kind) uint64 {
	if k < KindCount {
		return c[k]
	}
	return 0
}

// Add merges other into c.
func (c *Counters) Add(other *Counters) {
	for i := range c {
		c[i] += other[i]
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Total returns the sum over all kinds (a quick "anything recorded?" probe).
func (c *Counters) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// HitRatio returns hits/(hits+misses) for a (hit, miss) kind pair, or 0
// when idle — e.g. HitRatio(BufferHit, BufferMiss).
func (c *Counters) HitRatio(hit, miss Kind) float64 {
	total := c.Get(hit) + c.Get(miss)
	if total == 0 {
		return 0
	}
	return float64(c.Get(hit)) / float64(total)
}

// Map renders the non-zero counters keyed by kind name, for JSON surfaces
// and test failure messages.
func (c *Counters) Map() map[string]uint64 {
	out := make(map[string]uint64)
	for k := Kind(0); k < KindCount; k++ {
		if c[k] != 0 {
			out[k.String()] = c[k]
		}
	}
	return out
}

// AtomicCounters is Counters for concurrent recorders (the HTTP serving
// path): one atomic add per event, no allocation.
//
// The zero value is ready to use.
type AtomicCounters [KindCount]atomic.Uint64

// Record implements Recorder.
//
//pythia:noalloc
func (c *AtomicCounters) Record(e Event) {
	if e.Kind < KindCount {
		c[e.Kind].Add(1)
	}
}

// Get returns the total for one kind.
func (c *AtomicCounters) Get(k Kind) uint64 {
	if k < KindCount {
		return c[k].Load()
	}
	return 0
}

// Snapshot copies the current totals into a plain Counters value.
func (c *AtomicCounters) Snapshot() Counters {
	var out Counters
	for i := range c {
		out[i] = c[i].Load()
	}
	return out
}
