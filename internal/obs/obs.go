// Package obs is the runtime observability layer for the cache hierarchy:
// a cheap, allocation-free Recorder interface that the buffer pool, OS page
// cache, replay engine, scheduler, and the Pythia system emit typed events
// into. Every event names which level of the hierarchy it came from and,
// when the emitting layer knows it, which query and page it concerns — the
// per-level hit/miss/IO accounting that the paper's evaluation (and SeLeP's
// and GrASP's) is built on, available while a run executes instead of only
// as end-of-run aggregates.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Every instrumented component holds a Recorder
//     interface field that defaults to nil; the hot path pays exactly one
//     nil-check per event site and performs no allocation.
//   - Zero allocation when enabled with a counting recorder. Event is a
//     small value struct; Record(Event) passes it on the stack, and Counters
//     only increments a fixed array. Event-log recorders may allocate
//     (amortized append) — that is an explicit opt-in.
//   - Single-writer by default. The replay simulator is single-threaded, so
//     Counters is not synchronized; the HTTP serving path uses
//     AtomicCounters.
package obs

import (
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
)

// Kind enumerates the observable event types, grouped by the layer that
// emits them. The groups partition the event space: no occurrence is
// reported by two layers, so counter totals reconcile exactly with the
// legacy aggregate Stats structs.
type Kind uint8

const (
	// --- buffer pool (internal/buffer) ---

	// BufferHit: an executor request was served from the buffer pool.
	BufferHit Kind = iota
	// BufferMiss: an executor request had to read below the pool.
	BufferMiss
	// BufferInsert: a page was brought into the pool.
	BufferInsert
	// BufferEvict: a frame was replaced.
	BufferEvict
	// BufferInsertFailed: an insert was refused because every frame was
	// pinned (limited prefetching backing off).
	BufferInsertFailed
	// PrefetchedIn: a page was inserted into the pool by the prefetcher.
	PrefetchedIn
	// PrefetchHit: the executor hit a prefetched-but-not-yet-used frame —
	// a useful prefetch.
	PrefetchHit
	// PrefetchWasted: a prefetched frame was evicted before the executor
	// ever used it — wasted prefetch I/O.
	PrefetchWasted

	// --- OS page cache (internal/oscache) ---

	// OSCacheHit: a read (executor or prefetcher stream) was served from the
	// OS page cache.
	OSCacheHit
	// OSCacheMiss: a read went to the device.
	OSCacheMiss
	// OSReadaheadPage: the kernel fetched one page asynchronously via
	// readahead.
	OSReadaheadPage
	// OSCacheEvict: the OS cache evicted a page.
	OSCacheEvict

	// --- replay engine (internal/replay) ---

	// QueryStart: a query began executing.
	QueryStart
	// QueryFinish: a query completed its request script.
	QueryFinish
	// DiskRead: a foreground, executor-blocking disk read (the executor
	// missed both caches and waited for the device).
	DiskRead
	// PrefetchIssued: the prefetcher initiated one asynchronous read.
	PrefetchIssued
	// PrefetchPinned: a prefetched page landed in the pool and was pinned.
	PrefetchPinned
	// PrefetchSkipped: a prefetch was skipped (already buffered) or dropped
	// (pool full of pinned frames).
	PrefetchSkipped
	// WindowStall: the prefetcher had queued pages but the readahead window
	// R was full of pinned-or-inflight pages — the flow-control stall the
	// window parameter exists to create.
	WindowStall

	// --- fault injection and degradation (internal/fault, internal/replay) ---

	// DiskReadFailed: one device read attempt (foreground or prefetch)
	// failed transiently.
	DiskReadFailed
	// PrefetchRetried: the prefetcher scheduled a backoff retry for a
	// failed prefetch read.
	PrefetchRetried
	// PrefetchAbandoned: the prefetcher exhausted its retries and abandoned
	// the page; the executor will read it synchronously.
	PrefetchAbandoned
	// FallbackSyncRead: the executor served a page the prefetcher had
	// abandoned — the degradation path that converges to the no-prefetch
	// baseline.
	FallbackSyncRead
	// InferenceDeadlineMiss: model inference exceeded its virtual-time
	// budget and the query degraded to the no-prefetch path.
	InferenceDeadlineMiss

	// --- system (internal/pythia, internal/scheduler) ---

	// WorkloadMatched: an incoming query matched a trained workload and
	// Pythia engaged.
	WorkloadMatched
	// WorkloadFallback: no trained workload matched; the query ran on the
	// default path.
	WorkloadFallback
	// PrefetchLimited: a predicted page set exceeded the buffer-bounded
	// budget and was truncated (limited prefetching, §5.1).
	PrefetchLimited
	// SchedulerScheduled: the overlap scheduler placed one query into the
	// batch order.
	SchedulerScheduled

	// --- serving tier (internal/serve) ---

	// BreakerOpen: the serving circuit breaker tripped; predictions answer
	// from the fallback path.
	BreakerOpen
	// BreakerHalfOpen: the breaker's cooldown elapsed; trial requests probe
	// the model path.
	BreakerHalfOpen
	// BreakerClosed: a trial request succeeded; the model path is restored.
	BreakerClosed
	// PredCacheHit: a prediction request was answered from the plan-
	// fingerprint cache — zero inference ran.
	PredCacheHit
	// PredCacheMiss: the plan fingerprint was absent; inference ran.
	PredCacheMiss
	// PredCacheEvict: a cached prediction was evicted at capacity.
	PredCacheEvict
	// InferenceRun: one model-path inference completed for a request
	// (whether it ran solo or inside a batch).
	InferenceRun
	// InferenceBatched: the inference ran as part of a multi-request batched
	// forward pass (a strict subset of InferenceRun).
	InferenceBatched
	// ReplicaDegraded: a pool replica's sliding error window crossed the
	// degraded threshold; it keeps serving but is one step from quarantine.
	ReplicaDegraded
	// ReplicaQuarantined: a replica crossed the quarantine threshold (or
	// failed a probation trial) and was removed from normal routing.
	ReplicaQuarantined
	// ReplicaProbe: a quarantined replica's backoff elapsed and one probe
	// request was admitted to test it.
	ReplicaProbe
	// ReplicaRecovered: a quarantined replica passed its probation trials and
	// rejoined normal routing.
	ReplicaRecovered
	// ReplicaFailover: a request moved past an unhealthy (or saturated, or
	// faulting) replica to the next replica on the hash ring.
	ReplicaFailover

	// QualityScored: one prediction was scored against ground truth — in
	// replay when a registered query finishes, in serve when a /v1/feedback
	// report correlates with a prediction ID.
	QualityScored
	// DriftWarning: the live plan-token/fingerprint distribution crossed the
	// warn divergence threshold against the training baseline.
	DriftWarning
	// DriftAlarm: divergence crossed the alarm threshold — the live stream no
	// longer resembles the training distribution.
	DriftAlarm
	// DriftRecovered: the drift state machine stepped back down to ok after
	// its hysteresis cleared.
	DriftRecovered

	// KindCount is the number of event kinds; counter arrays are sized by
	// it. It must remain last.
	KindCount
)

var kindNames = [KindCount]string{
	BufferHit:             "buffer_hit",
	BufferMiss:            "buffer_miss",
	BufferInsert:          "buffer_insert",
	BufferEvict:           "buffer_evict",
	BufferInsertFailed:    "buffer_insert_failed",
	PrefetchedIn:          "prefetched_in",
	PrefetchHit:           "prefetch_hit",
	PrefetchWasted:        "prefetch_wasted",
	OSCacheHit:            "oscache_hit",
	OSCacheMiss:           "oscache_miss",
	OSReadaheadPage:       "os_readahead_page",
	OSCacheEvict:          "oscache_evict",
	QueryStart:            "query_start",
	QueryFinish:           "query_finish",
	DiskRead:              "disk_read",
	PrefetchIssued:        "prefetch_issued",
	PrefetchPinned:        "prefetch_pinned",
	PrefetchSkipped:       "prefetch_skipped",
	WindowStall:           "window_stall",
	DiskReadFailed:        "disk_read_failed",
	PrefetchRetried:       "prefetch_retried",
	PrefetchAbandoned:     "prefetch_abandoned",
	FallbackSyncRead:      "fallback_sync_read",
	InferenceDeadlineMiss: "inference_deadline_miss",
	WorkloadMatched:       "workload_matched",
	WorkloadFallback:      "workload_fallback",
	PrefetchLimited:       "prefetch_limited",
	SchedulerScheduled:    "scheduler_scheduled",
	BreakerOpen:           "breaker_open",
	BreakerHalfOpen:       "breaker_half_open",
	BreakerClosed:         "breaker_closed",
	PredCacheHit:          "predcache_hit",
	PredCacheMiss:         "predcache_miss",
	PredCacheEvict:        "predcache_evict",
	InferenceRun:          "inference_run",
	InferenceBatched:      "inference_batched",
	ReplicaDegraded:       "replica_degraded",
	ReplicaQuarantined:    "replica_quarantined",
	ReplicaProbe:          "replica_probe",
	ReplicaRecovered:      "replica_recovered",
	ReplicaFailover:       "replica_failover",
	QualityScored:         "quality_scored",
	DriftWarning:          "drift_warning",
	DriftAlarm:            "drift_alarm",
	DriftRecovered:        "drift_recovered",
}

// String returns the kind's snake_case name (stable: it is the label
// exported on the Prometheus metrics surface).
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "unknown"
}

// NoQuery marks an event not attributed to any query.
const NoQuery int32 = -1

// Event is one typed occurrence. Emitting layers fill what they know:
// buffer and oscache know only the page; the replay engine stamps the
// active query index and the virtual time on everything that passes through
// it (see replay.Config.Recorder).
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Query is the run-local query index, or NoQuery.
	Query int32
	// Page is the page concerned, or the zero PageID.
	Page storage.PageID
	// At is the virtual time of the event (zero outside a simulation).
	At sim.Time
}

// Recorder receives events. Implementations must be cheap: Record sits on
// every page-request path of the replay engine. A nil Recorder means
// observability is off; every emitter nil-checks before calling.
type Recorder interface {
	Record(e Event)
}

// Multi fans one event out to several recorders (e.g. totals plus an event
// log). A nil entry is skipped.
type Multi []Recorder

// Record implements Recorder.
//
//pythia:noalloc
func (m Multi) Record(e Event) {
	for _, r := range m {
		if r != nil {
			r.Record(e)
		}
	}
}
