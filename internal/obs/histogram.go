package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds (inclusive) of the serving-path
// latency histogram, chosen to straddle model inference times: sub-ms cache
// hits through multi-second cold predictions.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
}

// Histogram is a fixed-bucket, lock-free duration histogram in the
// Prometheus cumulative style: bucket i counts observations ≤ bounds[i],
// with an implicit +Inf bucket. Observation is two atomic adds and never
// allocates.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64    // nanoseconds
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket bounds
// (DefaultLatencyBuckets when nil).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []time.Duration { return h.bounds }

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket that crosses the target rank — the same estimate
// Prometheus's histogram_quantile computes from this bucket layout. The
// lowest bucket interpolates from zero; a rank landing in the +Inf bucket
// reports the largest finite bound, since the histogram cannot resolve
// anything past it. Zero observations report zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := h.Cumulative()
	i := 0
	for i < len(cum) && float64(cum[i]) < rank {
		i++
	}
	if i >= len(h.bounds) {
		return h.bounds[len(h.bounds)-1]
	}
	var lower time.Duration
	var below uint64
	if i > 0 {
		lower = h.bounds[i-1]
		below = cum[i-1]
	}
	width := h.bounds[i] - lower
	inBucket := float64(cum[i] - below)
	if inBucket == 0 {
		return h.bounds[i]
	}
	frac := (rank - float64(below)) / inBucket
	return lower + time.Duration(frac*float64(width))
}

// Cumulative returns the cumulative per-bucket counts, one per bound plus a
// final +Inf entry, Prometheus-style.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}
