package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/storage"
)

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < KindCount; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if KindCount.String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

func TestCountersRecordAndDerive(t *testing.T) {
	var c Counters
	for i := 0; i < 3; i++ {
		c.Record(Event{Kind: BufferHit})
	}
	c.Record(Event{Kind: BufferMiss})
	c.Record(Event{Kind: KindCount + 7}) // out of range: ignored, no panic
	if c.Get(BufferHit) != 3 || c.Get(BufferMiss) != 1 {
		t.Fatalf("counts wrong: %v", c.Map())
	}
	if got := c.HitRatio(BufferHit, BufferMiss); got != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", got)
	}
	if c.HitRatio(OSCacheHit, OSCacheMiss) != 0 {
		t.Fatal("idle hit ratio should be 0")
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d, want 4", c.Total())
	}
	m := c.Map()
	if len(m) != 2 || m["buffer_hit"] != 3 {
		t.Fatalf("map wrong: %v", m)
	}

	var d Counters
	d.Record(Event{Kind: BufferHit})
	d.Add(&c)
	if d.Get(BufferHit) != 4 {
		t.Fatalf("add wrong: %v", d.Map())
	}
	d.Reset()
	if d.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestCountersAllocFree(t *testing.T) {
	var c Counters
	var rec Recorder = &c
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Record(Event{Kind: DiskRead, Query: 3, Page: storage.PageID{Object: 1, Page: 9}})
	})
	if allocs != 0 {
		t.Fatalf("Counters.Record allocates %v/op", allocs)
	}
}

func TestAtomicCounters(t *testing.T) {
	var c AtomicCounters
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Record(Event{Kind: OSCacheHit})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Get(OSCacheHit) != 4000 {
		t.Fatalf("atomic count = %d, want 4000", c.Get(OSCacheHit))
	}
	snap := c.Snapshot()
	if snap.Get(OSCacheHit) != 4000 {
		t.Fatal("snapshot mismatch")
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b Counters
	m := Multi{&a, nil, &b}
	m.Record(Event{Kind: PrefetchPinned})
	if a.Get(PrefetchPinned) != 1 || b.Get(PrefetchPinned) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog(2)
	l.Record(Event{Kind: BufferHit, Query: 0, Page: storage.PageID{Object: 2, Page: 5}, At: 1000})
	l.Record(Event{Kind: DiskRead, Query: 1})
	l.Record(Event{Kind: DiskRead, Query: 1}) // over the limit
	if l.Len() != 2 || l.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "buffer_hit") || !strings.Contains(lines[0], "\t2\t5") {
		t.Fatalf("dump line wrong: %q", lines[0])
	}
	if got := l.Events()[1].Kind; got != DiskRead {
		t.Fatalf("retained event wrong: %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)      // bucket 0
	h.Observe(10 * time.Millisecond) // bucket 1
	h.Observe(time.Minute)           // +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	cum := h.Cumulative()
	want := []uint64{1, 2, 3}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	if h.Sum() != time.Microsecond+10*time.Millisecond+time.Minute {
		t.Fatalf("sum = %v", h.Sum())
	}
	if len(NewHistogram(nil).Bounds()) != len(DefaultLatencyBuckets) {
		t.Fatal("default buckets not used")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zero")
	}
	// 8 observations in (10ms, 20ms], 2 in (20ms, 40ms].
	for i := 0; i < 8; i++ {
		h.Observe(15 * time.Millisecond)
	}
	h.Observe(30 * time.Millisecond)
	h.Observe(35 * time.Millisecond)

	// p50: rank 5 of 10 lands in the (10, 20] bucket, 5/8 of the way through
	// its 8 observations → 10ms + 0.625*10ms.
	if got, want := h.Quantile(0.5), 10*time.Millisecond+time.Duration(0.625*float64(10*time.Millisecond)); got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// p90: rank 9 crosses into the (20, 40] bucket halfway through its 2
	// observations → 20ms + 0.5*20ms.
	if got, want := h.Quantile(0.9), 30*time.Millisecond; got != want {
		t.Fatalf("p90 = %v, want %v", got, want)
	}
	// q clamps: out-of-range values behave as 0 and 1.
	if h.Quantile(-3) > h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Fatal("q not clamped to [0, 1]")
	}
	// A rank in the +Inf bucket reports the largest finite bound.
	h.Observe(time.Minute)
	if got := h.Quantile(1); got != 40*time.Millisecond {
		t.Fatalf("+Inf rank = %v, want the largest finite bound", got)
	}
}
