// Package workload materializes query workloads: it plans and executes each
// query instance of a template, collects its access script and processed
// trace, handles train/test splitting (the paper samples 5% of each workload
// as unseen test queries), similarity measurement between queries (Jaccard
// over accessed blocks), and workload merging (the heterogeneous-workload
// experiment, Figure 12c).
package workload

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/exec"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/trace"
)

// Instance is one executed query: its specification, physical plan, full
// access script, and processed (training-ready) trace.
type Instance struct {
	Query    plan.Query
	Plan     *plan.Node
	Requests []storage.Request
	Trace    *trace.Processed
	Pages    []storage.PageID // Trace.Pages(), cached
	Rows     int64
}

// Workload is a set of instances over one database, usually all from one
// template ("we define a workload as several query instances of a particular
// query template", §5.1).
type Workload struct {
	Name      string
	DB        *catalog.Database
	Instances []*Instance
}

// Build plans and executes every query, producing a workload. This is the
// paper's trace-collection phase: "we execute each of the 1000 queries from
// each workload on Postgres and generate the trace sequence". A planning
// error (unknown relation, impossible hint) aborts the build and is
// returned; MustBuild covers generator-produced queries that are valid by
// construction.
func Build(name string, db *catalog.Database, queries []plan.Query) (*Workload, error) {
	pl := plan.NewPlanner(db)
	w := &Workload{Name: name, DB: db}
	for _, q := range queries {
		root, err := pl.Plan(q)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", name, err)
		}
		res := exec.Run(root)
		tr := trace.Process(res.Requests)
		w.Instances = append(w.Instances, &Instance{
			Query:    q,
			Plan:     root,
			Requests: res.Requests,
			Trace:    tr,
			Pages:    tr.Pages(),
			Rows:     res.Rows,
		})
	}
	return w, nil
}

// MustBuild is Build for query sets known valid by construction (the DSB
// and IMDB template generators); it panics on a planning error.
func MustBuild(name string, db *catalog.Database, queries []plan.Query) *Workload {
	w, err := Build(name, db, queries)
	if err != nil {
		panic(err.Error())
	}
	return w
}

// Split partitions instances into train and test sets, holding out testFrac
// of them uniformly at random (the paper holds out 5%). The split is
// deterministic in seed.
func (w *Workload) Split(testFrac float64, seed uint64) (train, test []*Instance) {
	n := len(w.Instances)
	nTest := int(float64(n)*testFrac + 0.5)
	if nTest < 1 && n > 1 && testFrac > 0 {
		nTest = 1
	}
	perm := sim.NewRand(seed).Perm(n)
	testSet := make(map[int]bool, nTest)
	for _, i := range perm[:nTest] {
		testSet[i] = true
	}
	for i, inst := range w.Instances {
		if testSet[i] {
			test = append(test, inst)
		} else {
			train = append(train, inst)
		}
	}
	return train, test
}

// Merge concatenates workloads into a heterogeneous one (Figure 12c trains
// Pythia on a template-18+19 mix).
func Merge(name string, ws ...*Workload) *Workload {
	if len(ws) == 0 {
		panic("workload: Merge of nothing")
	}
	out := &Workload{Name: name, DB: ws[0].DB}
	for _, w := range ws {
		if w.DB != out.DB {
			panic("workload: Merge across databases")
		}
		out.Instances = append(out.Instances, w.Instances...)
	}
	return out
}

// Subsample returns a deterministic random fraction of instances (the
// training-data-size sweep, Figure 12b).
func Subsample(instances []*Instance, frac float64, seed uint64) []*Instance {
	n := int(float64(len(instances))*frac + 0.5)
	if n <= 0 {
		n = 1
	}
	if n >= len(instances) {
		return instances
	}
	perm := sim.NewRand(seed).Perm(len(instances))
	out := make([]*Instance, 0, n)
	for _, i := range perm[:n] {
		out = append(out, instances[i])
	}
	return out
}

// Similarity is the Jaccard coefficient between two instances' accessed
// block sets.
func Similarity(a, b *Instance) float64 {
	return trace.Jaccard(a.Pages, b.Pages)
}

// AvgSimilarity measures how similar a test query is to an entire training
// workload: the mean Jaccard similarity against every training instance
// (§5.3, "Similarity between test query and query workload").
func AvgSimilarity(test *Instance, train []*Instance) float64 {
	if len(train) == 0 {
		return 0
	}
	total := 0.0
	for _, tr := range train {
		total += Similarity(test, tr)
	}
	return total / float64(len(train))
}

// NonSeqReads returns the instance's number of distinct non-sequential
// reads — the bucketization key of Figures 10–11.
func NonSeqReads(inst *Instance) int { return len(inst.Pages) }

// DistinctPlans counts the distinct physical plan shapes in the workload
// (Table 1, "Distinct query plans in workload").
func (w *Workload) DistinctPlans() int {
	shapes := map[string]bool{}
	for _, inst := range w.Instances {
		shapes[inst.Plan.Shape()] = true
	}
	return len(shapes)
}

// Stats aggregates the Table 1 statistics for the workload.
type Stats struct {
	SeqIO           int // total sequential page requests across instances
	MinDistinctNS   int
	MaxDistinctNS   int
	DistinctPlans   int
	RelationsJoined int // relations in the template's join (fact + dims)
	MaxIndexScanned int // dimensions index-scanned in any instance
}

// ComputeStats produces the workload's Table 1 row.
func (w *Workload) ComputeStats() Stats {
	s := Stats{MinDistinctNS: 1<<31 - 1}
	for _, inst := range w.Instances {
		ts := trace.ComputeStats(inst.Requests)
		s.SeqIO += ts.SeqRequests
		if ts.DistinctNonSeq < s.MinDistinctNS {
			s.MinDistinctNS = ts.DistinctNonSeq
		}
		if ts.DistinctNonSeq > s.MaxDistinctNS {
			s.MaxDistinctNS = ts.DistinctNonSeq
		}
		rels := 1 + len(inst.Query.Dims)
		if rels > s.RelationsJoined {
			s.RelationsJoined = rels
		}
		idxScans := 0
		inst.Plan.Walk(func(n *plan.Node) {
			if n.Kind == plan.KindIndexScan {
				idxScans++
			}
		})
		if idxScans > s.MaxIndexScanned {
			s.MaxIndexScanned = idxScans
		}
	}
	if len(w.Instances) == 0 {
		s.MinDistinctNS = 0
	}
	s.DistinctPlans = w.DistinctPlans()
	return s
}
