package workload_test

import (
	"testing"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/workload"
)

func testWorkload(t *testing.T, tpl string, n int) *workload.Workload {
	t.Helper()
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	return g.Workload(tpl, n, 1)
}

func TestBuildPopulatesInstances(t *testing.T) {
	w := testWorkload(t, "t91", 10)
	if len(w.Instances) != 10 {
		t.Fatalf("instances = %d", len(w.Instances))
	}
	for i, inst := range w.Instances {
		if inst.Plan == nil || inst.Trace == nil {
			t.Fatalf("instance %d incomplete", i)
		}
		if len(inst.Requests) == 0 {
			t.Fatalf("instance %d has no requests", i)
		}
		if len(inst.Pages) != inst.Trace.Count() {
			t.Fatalf("instance %d cached Pages out of sync", i)
		}
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	w := testWorkload(t, "t18", 20)
	train, test := w.Split(0.25, 3)
	if len(test) != 5 || len(train) != 15 {
		t.Fatalf("split sizes: train=%d test=%d", len(train), len(test))
	}
	seen := map[*workload.Instance]bool{}
	for _, i := range append(append([]*workload.Instance{}, train...), test...) {
		if seen[i] {
			t.Fatal("instance in both splits")
		}
		seen[i] = true
	}
	if len(seen) != 20 {
		t.Fatal("split lost instances")
	}
	// Deterministic in seed.
	train2, _ := w.Split(0.25, 3)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Tiny fractions still hold out at least one query.
	_, testOne := w.Split(0.01, 3)
	if len(testOne) != 1 {
		t.Fatalf("minimum holdout violated: %d", len(testOne))
	}
}

func TestMerge(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	a := g.Workload("t18", 5, 1)
	b := g.Workload("t19", 5, 2)
	m := workload.Merge("hetero", a, b)
	if len(m.Instances) != 10 {
		t.Fatalf("merged instances = %d", len(m.Instances))
	}
	if m.DB != a.DB {
		t.Fatal("merged DB wrong")
	}
}

func TestMergePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty Merge did not panic")
			}
		}()
		workload.Merge("x")
	}()
	g1 := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	g2 := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 8})
	a := g1.Workload("t91", 2, 1)
	b := g2.Workload("t91", 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-database Merge did not panic")
		}
	}()
	workload.Merge("x", a, b)
}

func TestSubsample(t *testing.T) {
	w := testWorkload(t, "t91", 12)
	half := workload.Subsample(w.Instances, 0.5, 9)
	if len(half) != 6 {
		t.Fatalf("subsample = %d", len(half))
	}
	if got := workload.Subsample(w.Instances, 2.0, 9); len(got) != 12 {
		t.Fatal("overfull subsample should return all")
	}
	if got := workload.Subsample(w.Instances, 0.0001, 9); len(got) != 1 {
		t.Fatal("tiny subsample should keep one")
	}
	// Deterministic.
	again := workload.Subsample(w.Instances, 0.5, 9)
	for i := range half {
		if half[i] != again[i] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestSimilarityProperties(t *testing.T) {
	w := testWorkload(t, "t91", 8)
	a, b := w.Instances[0], w.Instances[1]
	if workload.Similarity(a, a) != 1 {
		t.Fatal("self similarity != 1")
	}
	if workload.Similarity(a, b) != workload.Similarity(b, a) {
		t.Fatal("similarity asymmetric")
	}
	s := workload.AvgSimilarity(a, w.Instances[1:])
	if s < 0 || s > 1 {
		t.Fatalf("avg similarity %f out of range", s)
	}
	if workload.AvgSimilarity(a, nil) != 0 {
		t.Fatal("empty-train similarity should be 0")
	}
}

func TestNonSeqReads(t *testing.T) {
	w := testWorkload(t, "t91", 4)
	for _, inst := range w.Instances {
		if workload.NonSeqReads(inst) != len(inst.Pages) {
			t.Fatal("NonSeqReads disagrees with Pages")
		}
	}
}

func TestComputeStats(t *testing.T) {
	w := testWorkload(t, "t91", 10)
	st := w.ComputeStats()
	if st.SeqIO <= 0 {
		t.Fatal("no sequential IO counted")
	}
	if st.MinDistinctNS > st.MaxDistinctNS {
		t.Fatalf("min %d > max %d", st.MinDistinctNS, st.MaxDistinctNS)
	}
	if st.RelationsJoined != 7 {
		t.Fatalf("t91 joins %d relations, want 7", st.RelationsJoined)
	}
	if st.DistinctPlans < 1 || st.DistinctPlans > 10 {
		t.Fatalf("distinct plans = %d", st.DistinctPlans)
	}
	empty := &workload.Workload{}
	est := empty.ComputeStats()
	if est.MinDistinctNS != 0 || est.MaxDistinctNS != 0 {
		t.Fatalf("empty workload stats: %+v", est)
	}
}
