// Package exec is the query executor: it runs a physical plan tree against
// the catalog and emits the exact ordered sequence of page requests the plan
// generates — sequential heap reads for Seq Scans, index-page descents and
// heap fetches for Index Scans under nested loops, build-side scans for hash
// joins. That request stream is the query's "trace" (paper §3.3, Trace
// Construction) and, replayed through the cache hierarchy, its runtime.
//
// The executor is push-based: each operator emits bindings to its consumer.
// For a trace-driven simulator this is equivalent to the Volcano pull model
// Postgres uses — the page access order is identical — and considerably
// simpler.
package exec

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/storage"
)

// Result summarizes one query execution.
type Result struct {
	// Rows is the number of rows that reached the plan root.
	Rows int64
	// Requests is the ordered page-access script, with per-request tuple
	// counts for CPU accounting during replay.
	Requests []storage.Request
	// TrailingTuples counts tuples processed after the final page request.
	TrailingTuples int
}

// tuple binds each relation appearing in the plan (by slot) to a row.
type tuple []int64

type colBinding struct {
	rel  *catalog.Relation
	slot int
}

type executor struct {
	slots    map[string]int // relation name -> tuple slot
	rels     []*catalog.Relation
	cols     map[string]colBinding // column name -> owning relation
	requests []storage.Request
	tuples   int // tuples processed since last request
	rows     int64
	cur      tuple
}

// Run executes the plan rooted at root and returns its result. The plan
// must have been produced against the same catalog its scan nodes reference.
// Column names must be unique across the query's relations (the DSB-style
// prefixed schemas guarantee this); Run panics otherwise, since an ambiguous
// join column is a schema bug.
func Run(root *plan.Node) *Result {
	e := &executor{slots: make(map[string]int), cols: make(map[string]colBinding)}
	root.Walk(func(n *plan.Node) {
		if n.Rel == nil {
			return
		}
		if _, ok := e.slots[n.Rel.Name]; ok {
			return
		}
		slot := len(e.slots)
		e.slots[n.Rel.Name] = slot
		e.rels = append(e.rels, n.Rel)
		for _, c := range n.Rel.Columns {
			if prev, dup := e.cols[c.Name]; dup && prev.rel != n.Rel {
				panic("exec: column " + c.Name + " is ambiguous across relations")
			}
			e.cols[c.Name] = colBinding{rel: n.Rel, slot: slot}
		}
	})
	e.cur = make(tuple, len(e.slots))
	e.run(root, func() { e.rows++ })
	return &Result{Rows: e.rows, Requests: e.requests, TrailingTuples: e.tuples}
}

// request records a page access, folding in the tuple count accumulated
// since the previous request.
func (e *executor) request(p storage.PageID, sequential bool) {
	e.requests = append(e.requests, storage.Request{
		Page:       p,
		Sequential: sequential,
		Tuples:     e.tuples,
	})
	e.tuples = 0
}

func (e *executor) slot(rel *catalog.Relation) int { return e.slots[rel.Name] }

func predsMatch(rel *catalog.Relation, row int64, preds []plan.Pred) bool {
	for _, p := range preds {
		if !p.Matches(rel.Value(p.Col, row)) {
			return false
		}
	}
	return true
}

func (e *executor) run(n *plan.Node, emit func()) {
	switch n.Kind {
	case plan.KindSeqScan:
		e.seqScan(n, emit)
	case plan.KindNestedLoop:
		inner := n.Right
		if inner == nil || inner.Kind != plan.KindIndexScan {
			panic("exec: nested loop requires an index-scan inner")
		}
		e.run(n.Left, func() { e.indexProbe(inner, emit) })
	case plan.KindHashJoin:
		e.hashJoin(n, emit)
	case plan.KindFilter:
		e.run(n.Left, func() {
			if n.Rel == nil || predsMatch(n.Rel, e.cur[e.slot(n.Rel)], n.Preds) {
				emit()
			}
		})
	case plan.KindAgg, plan.KindSort:
		// Neither changes page access order (the paper's serializer skips
		// sort/hash nodes for the same reason); aggregation consumes rows.
		e.run(n.Left, emit)
	case plan.KindIndexScan:
		panic("exec: bare index scan outside a nested loop")
	default:
		panic(fmt.Sprintf("exec: unknown plan kind %v", n.Kind))
	}
}

// seqScan reads the relation's heap in file order, one request per page,
// emitting rows that pass the node's predicates.
func (e *executor) seqScan(n *plan.Node, emit func()) {
	rel := n.Rel
	slot := e.slot(rel)
	lastPage := storage.PageNum(0)
	havePage := false
	for row := int64(0); row < rel.Rows; row++ {
		p := rel.HeapPage(row)
		if !havePage || p.Page != lastPage {
			e.request(p, true)
			lastPage, havePage = p.Page, true
		}
		e.tuples++
		if predsMatch(rel, row, n.Preds) {
			e.cur[slot] = row
			emit()
		}
	}
}

// indexProbe probes the inner index with the outer tuple's join key: the
// B+tree descent and sibling-leaf pages are requested (non-sequential), then
// each matching heap row's page is fetched (non-sequential) before the
// node's residual predicates run.
func (e *executor) indexProbe(n *plan.Node, emit func()) {
	outerVal := e.outerValue(n.OuterCol)
	probe := n.Index.Tree.Lookup(outerVal)
	for _, p := range probe.IndexPages {
		e.request(p, false)
	}
	rel := n.Rel
	slot := e.slot(rel)
	for _, row := range probe.Rows {
		e.request(rel.HeapPage(row), false)
		e.tuples++
		if predsMatch(rel, row, n.Preds) {
			e.cur[slot] = row
			emit()
		}
	}
}

// outerValue resolves the probe key: column names are unique across the
// query's relations, so the column identifies both the relation and the
// tuple slot carrying the bound row.
func (e *executor) outerValue(col string) int64 {
	b, ok := e.cols[col]
	if !ok {
		panic("exec: no relation in plan defines column " + col)
	}
	return b.rel.Value(col, e.cur[b.slot])
}

// hashJoin materializes the build side (right child, a Seq Scan with its
// predicates) into a key → rows table, then streams the outer side through
// it. Probing is pure CPU: no page requests.
func (e *executor) hashJoin(n *plan.Node, emit func()) {
	build := n.Right
	if build == nil || build.Kind != plan.KindSeqScan {
		panic("exec: hash join requires a seq-scan build side")
	}
	rel := build.Rel
	slot := e.slot(rel)
	table := make(map[int64][]int64)
	e.run(build, func() {
		row := e.cur[slot]
		k := rel.Value(n.InnerCol, row)
		table[k] = append(table[k], row)
	})
	e.run(n.Left, func() {
		k := e.outerValue(n.OuterCol)
		for _, row := range table[k] {
			e.cur[slot] = row
			e.tuples++
			emit()
		}
	})
}
