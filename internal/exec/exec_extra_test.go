package exec

import (
	"testing"

	"github.com/pythia-db/pythia/internal/plan"
)

// TestFilterNode exercises the Filter operator, which the planner does not
// emit for star joins but the executor supports for hand-built plans.
func TestFilterNode(t *testing.T) {
	db := starDB()
	rel := db.Relation("sales")
	scan := &plan.Node{Kind: plan.KindSeqScan, Rel: rel}
	filter := &plan.Node{
		Kind:  plan.KindFilter,
		Left:  scan,
		Rel:   rel,
		Preds: []plan.Pred{plan.Between("s_amount", 0, 99)},
	}
	root := &plan.Node{Kind: plan.KindAgg, Left: filter}
	res := Run(root)
	want := int64(0)
	for row := int64(0); row < rel.Rows; row++ {
		if rel.Value("s_amount", row) < 100 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("Filter rows = %d, want %d", res.Rows, want)
	}
}

// TestFilterWithoutRelation passes everything through (a residual filter
// with no relation binding is a no-op).
func TestFilterWithoutRelation(t *testing.T) {
	db := starDB()
	rel := db.Relation("sales")
	root := &plan.Node{
		Kind: plan.KindAgg,
		Left: &plan.Node{
			Kind: plan.KindFilter,
			Left: &plan.Node{Kind: plan.KindSeqScan, Rel: rel},
		},
	}
	if res := Run(root); res.Rows != rel.Rows {
		t.Fatalf("relation-less Filter dropped rows: %d", res.Rows)
	}
}

// TestSortNodePassthrough: Sort does not change page access order (the
// paper's serializer skips it for the same reason), so the request stream
// matches the plain scan.
func TestSortNodePassthrough(t *testing.T) {
	db := starDB()
	rel := db.Relation("sales")
	sorted := &plan.Node{
		Kind: plan.KindAgg,
		Left: &plan.Node{
			Kind: plan.KindSort,
			Left: &plan.Node{Kind: plan.KindSeqScan, Rel: rel},
		},
	}
	plain := &plan.Node{
		Kind: plan.KindAgg,
		Left: &plan.Node{Kind: plan.KindSeqScan, Rel: rel},
	}
	a, b := Run(sorted), Run(plain)
	if a.Rows != b.Rows || len(a.Requests) != len(b.Requests) {
		t.Fatal("Sort changed execution")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("Sort changed page access order")
		}
	}
}

func TestBareIndexScanPanics(t *testing.T) {
	db := starDB()
	item := db.Relation("item")
	root := &plan.Node{
		Kind:  plan.KindIndexScan,
		Rel:   item,
		Index: item.IndexOn("i_sk"),
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bare index scan did not panic")
		}
	}()
	Run(root)
}

func TestNestedLoopWithoutIndexPanics(t *testing.T) {
	db := starDB()
	rel := db.Relation("sales")
	root := &plan.Node{
		Kind:  plan.KindNestedLoop,
		Left:  &plan.Node{Kind: plan.KindSeqScan, Rel: rel},
		Right: &plan.Node{Kind: plan.KindSeqScan, Rel: db.Relation("item")},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nested loop without index inner did not panic")
		}
	}()
	Run(root)
}

func TestHashJoinWithoutSeqBuildPanics(t *testing.T) {
	db := starDB()
	item := db.Relation("item")
	root := &plan.Node{
		Kind: plan.KindHashJoin,
		Left: &plan.Node{Kind: plan.KindSeqScan, Rel: db.Relation("sales")},
		Right: &plan.Node{
			Kind: plan.KindIndexScan, Rel: item, Index: item.IndexOn("i_sk"),
		},
		OuterCol: "s_item_fk",
		InnerCol: "i_sk",
	}
	defer func() {
		if recover() == nil {
			t.Fatal("hash join with non-seq build did not panic")
		}
	}()
	Run(root)
}

func TestUnknownOuterColumnPanics(t *testing.T) {
	db := starDB()
	item := db.Relation("item")
	root := &plan.Node{
		Kind: plan.KindNestedLoop,
		Left: &plan.Node{Kind: plan.KindSeqScan, Rel: db.Relation("sales")},
		Right: &plan.Node{
			Kind: plan.KindIndexScan, Rel: item, Index: item.IndexOn("i_sk"),
			OuterCol: "no_such_column",
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown probe column did not panic")
		}
	}()
	Run(root)
}
