package exec

import (
	"testing"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/storage"
)

func starDB() *catalog.Database {
	db := catalog.NewDatabase()
	db.AddRelation("sales", 2000, 10, []catalog.Column{
		{Name: "s_sk", Gen: catalog.Serial{}},
		{Name: "s_item_fk", Gen: catalog.Uniform{Lo: 0, Hi: 500, Seed: 1}},
		{Name: "s_amount", Gen: catalog.Uniform{Lo: 0, Hi: 1000, Seed: 3}},
	})
	item := db.AddRelation("item", 500, 10, []catalog.Column{
		{Name: "i_sk", Gen: catalog.Serial{}},
		{Name: "i_cat", Gen: catalog.Uniform{Lo: 0, Hi: 10, Seed: 4}},
	})
	db.BuildIndex(item, "i_sk", index.Config{LeafCap: 8, Fanout: 4})
	return db
}

func TestSeqScanCountsAndRequests(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	root := pl.MustPlan(plan.Query{Fact: "sales"})
	res := Run(root)
	if res.Rows != 2000 {
		t.Fatalf("Rows = %d, want 2000", res.Rows)
	}
	if len(res.Requests) != 200 {
		t.Fatalf("Requests = %d, want 200 (one per page)", len(res.Requests))
	}
	var lastPage storage.PageNum
	for i, r := range res.Requests {
		if !r.Sequential {
			t.Fatalf("seq scan request %d not marked sequential", i)
		}
		if i > 0 && r.Page.Page != lastPage+1 {
			t.Fatalf("seq scan pages out of order at %d: %v", i, r.Page)
		}
		lastPage = r.Page.Page
	}
	// Tuples accounting: each request after the first carries 10 tuples.
	total := res.TrailingTuples
	for _, r := range res.Requests {
		total += r.Tuples
	}
	if total != 2000 {
		t.Fatalf("tuple accounting lost rows: %d", total)
	}
}

func TestSeqScanPredicateFilters(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	root := pl.MustPlan(plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", 0, 99)},
	})
	res := Run(root)
	want := int64(0)
	rel := db.Relation("sales")
	for row := int64(0); row < rel.Rows; row++ {
		if v := rel.Value("s_amount", row); v < 100 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("Rows = %d, want %d", res.Rows, want)
	}
	// Filtering must not change the page requests of the scan.
	if len(res.Requests) != 200 {
		t.Fatalf("Requests = %d, want 200", len(res.Requests))
	}
}

func TestNestedLoopProbesIndexAndHeap(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	root := pl.MustPlan(plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", 0, 19)}, // ~2%
		Dims:      []plan.DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true}},
	})
	res := Run(root)
	if res.Rows == 0 {
		t.Fatal("join produced no rows")
	}
	idxObj := db.Relation("item").IndexOn("i_sk").Tree.Object().ID
	heapObj := db.Relation("item").Heap.ID
	var idxReqs, heapReqs int
	for _, r := range res.Requests {
		switch r.Page.Object {
		case idxObj:
			if r.Sequential {
				t.Fatal("index page marked sequential")
			}
			idxReqs++
		case heapObj:
			if r.Sequential {
				t.Fatal("probed heap page marked sequential")
			}
			heapReqs++
		}
	}
	if idxReqs == 0 || heapReqs == 0 {
		t.Fatalf("probe requests: idx=%d heap=%d", idxReqs, heapReqs)
	}
	// Every probe pays the full descent; with FK keys unique, heap fetches
	// equal output rows.
	if int64(heapReqs) != res.Rows {
		t.Fatalf("heap fetches = %d, rows = %d", heapReqs, res.Rows)
	}
}

func TestHashJoinEquivalentToNestedLoop(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	base := plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", 0, 199)},
		Dims: []plan.DimJoin{{
			Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk",
			Preds: []plan.Pred{plan.Between("i_cat", 0, 4)},
		}},
	}
	nlj := base
	nlj.Dims[0].ForceIndex = true
	hj := base
	hj.Dims = []plan.DimJoin{{
		Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk",
		Preds:     []plan.Pred{plan.Between("i_cat", 0, 4)},
		ForceHash: true,
	}}
	rNLJ := Run(pl.MustPlan(nlj))
	rHJ := Run(pl.MustPlan(hj))
	if rNLJ.Rows != rHJ.Rows {
		t.Fatalf("join strategies disagree: NLJ=%d HJ=%d", rNLJ.Rows, rHJ.Rows)
	}
	// Hash join's only page requests are the two sequential scans.
	for _, r := range rHJ.Requests {
		if !r.Sequential {
			t.Fatalf("hash join issued a non-sequential request: %v", r.Page)
		}
	}
	// Build side scanned exactly once.
	itemPages := int(db.Relation("item").Heap.Pages)
	factPages := int(db.Relation("sales").Heap.Pages)
	if len(rHJ.Requests) != itemPages+factPages {
		t.Fatalf("hash join requests = %d, want %d", len(rHJ.Requests), itemPages+factPages)
	}
}

func TestHashBuildRunsBeforeProbe(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	q := plan.Query{
		Fact: "sales",
		Dims: []plan.DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceHash: true}},
	}
	res := Run(pl.MustPlan(q))
	itemObj := db.Relation("item").Heap.ID
	salesObj := db.Relation("sales").Heap.ID
	sawSales := false
	for _, r := range res.Requests {
		if r.Page.Object == salesObj {
			sawSales = true
		}
		if r.Page.Object == itemObj && sawSales {
			t.Fatal("build-side pages requested after probe began")
		}
	}
}

func TestDimensionPredicateAppliedAfterProbe(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	unfiltered := plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", 0, 99)},
		Dims:      []plan.DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true}},
	}
	filtered := unfiltered
	filtered.Dims = []plan.DimJoin{{
		Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true,
		Preds: []plan.Pred{plan.Eq("i_cat", 3)},
	}}
	ru := Run(pl.MustPlan(unfiltered))
	rf := Run(pl.MustPlan(filtered))
	if rf.Rows >= ru.Rows {
		t.Fatalf("dimension filter did not reduce rows: %d vs %d", rf.Rows, ru.Rows)
	}
	// Page requests are identical: the filter runs after the heap fetch.
	if len(rf.Requests) != len(ru.Requests) {
		t.Fatalf("dimension filter changed request count: %d vs %d", len(rf.Requests), len(ru.Requests))
	}
}

func TestDeterministicExecution(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	q := plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", 0, 49)},
		Dims:      []plan.DimJoin{{Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk", ForceIndex: true}},
	}
	a := Run(pl.MustPlan(q))
	b := Run(pl.MustPlan(q))
	if a.Rows != b.Rows || len(a.Requests) != len(b.Requests) {
		t.Fatal("re-execution differs")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between runs", i)
		}
	}
}

func TestAmbiguousColumnPanics(t *testing.T) {
	db := catalog.NewDatabase()
	db.AddRelation("a", 10, 10, []catalog.Column{{Name: "x", Gen: catalog.Serial{}}})
	b := db.AddRelation("b", 10, 10, []catalog.Column{{Name: "x", Gen: catalog.Serial{}}})
	db.BuildIndex(b, "x", index.Config{})
	pl := plan.NewPlanner(db)
	root := pl.MustPlan(plan.Query{
		Fact: "a",
		Dims: []plan.DimJoin{{Dim: "b", FactFK: "x", DimKey: "x", ForceIndex: true}},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("ambiguous column did not panic")
		}
	}()
	Run(root)
}
