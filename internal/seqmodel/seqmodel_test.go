package seqmodel

import (
	"testing"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

func t91Workload(t *testing.T) *workload.Workload {
	t.Helper()
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7})
	return g.Workload("t91", 24, 1) // the paper trains the seq baseline on t91
}

func TestNonSeqSequenceVariants(t *testing.T) {
	w := t91Workload(t)
	inst := w.Instances[0]
	raw := NonSeqSequence(inst, false)
	dedup := NonSeqSequence(inst, true)
	if len(raw) < len(dedup) {
		t.Fatalf("raw (%d) shorter than dedup (%d)", len(raw), len(dedup))
	}
	if len(dedup) != len(inst.Pages) {
		t.Fatalf("dedup sequence (%d) disagrees with trace set (%d)", len(dedup), len(inst.Pages))
	}
	seen := map[storage.PageID]bool{}
	for _, p := range dedup {
		if seen[p] {
			t.Fatal("dedup sequence has repeats")
		}
		seen[p] = true
	}
	for _, r := range inst.Requests {
		if r.Sequential {
			for _, p := range raw {
				if p == r.Page {
					t.Fatal("sequential page leaked into sequence")
				}
			}
			break
		}
	}
}

func seqsOf(insts []*workload.Instance, dedup bool) [][]storage.PageID {
	out := make([][]storage.PageID, len(insts))
	for i, inst := range insts {
		out[i] = NonSeqSequence(inst, dedup)
	}
	return out
}

func TestTrainAndPredict(t *testing.T) {
	w := t91Workload(t)
	train, test := w.Split(0.2, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := Train(seqsOf(train, true), cfg)
	if m.TrainTime <= 0 {
		t.Fatal("TrainTime not recorded")
	}
	if m.VocabSize() < 10 {
		t.Fatalf("vocab size %d too small", m.VocabSize())
	}
	var inst *workload.Instance
	for _, cand := range test {
		if len(cand.Pages) >= 8 {
			inst = cand
			break
		}
	}
	if inst == nil {
		// Tiny scale can yield only near-empty traces in the holdout; use a
		// training instance for the mechanics check instead.
		for _, cand := range train {
			if len(cand.Pages) >= 8 {
				inst = cand
				break
			}
		}
	}
	if inst == nil {
		t.Skip("no instance with enough non-sequential reads at this scale")
	}
	seedLen := len(inst.Pages) / 4
	pred := m.PredictFrom(NonSeqSequence(inst, true)[:seedLen], len(inst.Pages))
	if len(pred) == 0 {
		t.Fatal("no predictions generated")
	}
	for i := 1; i < len(pred); i++ {
		if pred[i].Less(pred[i-1]) {
			t.Fatal("predictions not sorted")
		}
	}
	if m.InferredTokens == 0 || m.PerTokenInferCost() <= 0 {
		t.Fatal("inference cost not recorded")
	}
}

// TestSequenceModelLearnsSomething: on a workload of repeated similar
// queries, the model's predicted set should beat a random baseline clearly.
func TestSequenceModelBeatsChance(t *testing.T) {
	w := t91Workload(t)
	train, test := w.Split(0.2, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 6
	m := Train(seqsOf(train, true), cfg)

	var f1s []float64
	for _, inst := range test {
		seq := NonSeqSequence(inst, true)
		if len(seq) < 8 {
			continue
		}
		pred := m.PredictFrom(seq[:len(seq)/4], len(seq))
		f1s = append(f1s, metrics.Score(pred, inst.Pages).F1)
	}
	if len(f1s) == 0 {
		t.Skip("no test instances with enough accesses")
	}
	mean := metrics.Summarize(f1s).Mean
	// Chance level: predicting |truth| blocks from a vocabulary of
	// thousands would score near zero.
	if mean < 0.05 {
		t.Fatalf("sequence model F1 = %.3f, indistinguishable from chance", mean)
	}
}

func TestStepwiseInferenceCostStructure(t *testing.T) {
	w := t91Workload(t)
	train, _ := w.Split(0.2, 3)
	m := Train(seqsOf(train, true), DefaultConfig())
	m.Predict(50)
	if m.InferredTokens < 40 {
		t.Fatalf("generated only %d tokens", m.InferredTokens)
	}
	// The defining property: inference cost grows with generated length.
	before := m.InferTime
	m.Predict(100)
	if m.InferTime <= before {
		t.Fatal("second generation did not accumulate cost")
	}
}

func TestMaxGenerateCap(t *testing.T) {
	w := t91Workload(t)
	train, _ := w.Split(0.2, 3)
	cfg := DefaultConfig()
	cfg.MaxGenerate = 10
	cfg.Epochs = 1
	m := Train(seqsOf(train, true), cfg)
	if got := m.Predict(1000); len(got) > 10 {
		t.Fatalf("generation exceeded cap: %d", len(got))
	}
}

func TestEmptyTrainingSequencesSkipped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	m := Train([][]storage.PageID{nil, {}}, cfg)
	if m.VocabSize() != 1 { // BOS only
		t.Fatalf("vocab = %d", m.VocabSize())
	}
	if got := m.Predict(5); len(got) != 0 {
		t.Fatalf("empty-vocab model predicted %d blocks", len(got))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Context != 32 || c.Dim == 0 || c.Epochs == 0 || c.MaxGenerate == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
