package seqmodel

import "github.com/pythia-db/pythia/internal/wallclock"

// Wall-clock indirection for cost measurement (TrainTime/InferTime feed the
// Figure 9 cost-structure comparison, never a simulation result). Tests swap
// these for a fake clock to assert the timing fields; detclock forbids
// direct time.Now here.
var (
	timeNow   = wallclock.Now
	timeSince = wallclock.Since
)
