package seqmodel

import (
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/storage"
)

// swapClock installs a fake wall clock for the duration of one test: every
// timeSince reading reports exactly step. This is the point of routing the
// package's clock reads through the timeNow/timeSince vars instead of
// calling time.Now directly (which the detclock analyzer forbids here).
func swapClock(t *testing.T, step time.Duration) {
	t.Helper()
	savedNow, savedSince := timeNow, timeSince
	timeNow = func() time.Time { return time.Unix(0, 0) }
	timeSince = func(time.Time) time.Duration { return step }
	t.Cleanup(func() { timeNow, timeSince = savedNow, savedSince })
}

// syntheticSeqs is a tiny repetitive corpus — enough to train one epoch.
func syntheticSeqs() [][]storage.PageID {
	seqs := make([][]storage.PageID, 6)
	for i := range seqs {
		for p := 0; p < 8; p++ {
			seqs[i] = append(seqs[i], storage.PageID{Object: 1, Page: storage.PageNum(p)})
		}
	}
	return seqs
}

// TestTimingUsesInjectedClock pins the clock plumbing: TrainTime is exactly
// one fake-clock interval and InferTime accumulates one per PredictFrom call
// — no host wall clock involved anywhere.
func TestTimingUsesInjectedClock(t *testing.T) {
	const step = 42 * time.Millisecond
	swapClock(t, step)

	seqs := syntheticSeqs()
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.Dim = 8
	cfg.Heads = 1
	m := Train(seqs, cfg)
	if m.TrainTime != step {
		t.Fatalf("TrainTime = %v, want exactly %v from the injected clock", m.TrainTime, step)
	}

	m.PredictFrom(seqs[0][:2], 4)
	if m.InferTime != step {
		t.Fatalf("InferTime = %v after one call, want %v", m.InferTime, step)
	}
	m.PredictFrom(seqs[0][:2], 4)
	if m.InferTime != 2*step {
		t.Fatalf("InferTime = %v after two calls, want %v (accumulates)", m.InferTime, 2*step)
	}
}
