// Package seqmodel implements the sequence-prediction baseline of §5.2
// ("Predicting block access patterns using Transformers"): an autoregressive
// transformer that, given the previous K block accesses, predicts the next
// block — the NLP formulation the paper argues against. Two variants exist,
// exactly as in the paper: one trained on the raw trace (with repeats) and
// one on the deduplicated trace; context windows of 32 and 64 are the
// evaluated configurations.
//
// The point of the baseline is the *cost structure*: similar prediction
// accuracy to Pythia, but training touches every sequence position and
// inference pays one full forward pass per generated block, so predicting a
// query's access set is orders of magnitude slower than Pythia's one-shot
// classification. Train and inference wall-clock times are recorded so the
// Figure 9 comparison can report the ratios.
package seqmodel

import (
	"math"
	"time"

	"github.com/pythia-db/pythia/internal/nn"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// Config shapes the baseline.
type Config struct {
	// Context is the attention window K (the paper evaluates 32 and 64).
	Context int
	// Dedup selects the deduplicated-trace variant.
	Dedup bool
	// Dim / Heads / Epochs / LR size the model and training.
	Dim    int
	Heads  int
	Epochs int
	LR     float64
	// MaxPositionsPerQuery caps training positions sampled per trace (the
	// full traces would make training intractable, which is the paper's
	// observation; the cap keeps the reproduction runnable while preserving
	// the per-position cost structure).
	MaxPositionsPerQuery int
	// MaxGenerate caps autoregressive generation length at inference.
	MaxGenerate int
	Seed        uint64
	// Threads is the worker-shard count for the nn kernels (0 = process
	// default, 1 = serial). Deterministic across values, like model.Config.
	Threads int
}

// DefaultConfig returns the context-32 raw-trace variant at reproduction
// scale.
func DefaultConfig() Config {
	return Config{
		Context:              32,
		Dim:                  16,
		Heads:                2,
		Epochs:               4,
		LR:                   3e-3,
		MaxPositionsPerQuery: 40,
		MaxGenerate:          400,
		Seed:                 5,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Context <= 0 {
		c.Context = d.Context
	}
	if c.Dim <= 0 {
		c.Dim = d.Dim
	}
	if c.Heads <= 0 {
		c.Heads = d.Heads
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.MaxPositionsPerQuery <= 0 {
		c.MaxPositionsPerQuery = d.MaxPositionsPerQuery
	}
	if c.MaxGenerate <= 0 {
		c.MaxGenerate = d.MaxGenerate
	}
	return c
}

// NonSeqSequence extracts an instance's non-sequential block sequence in
// access order — raw (with repeats) or first-occurrence deduplicated.
func NonSeqSequence(inst *workload.Instance, dedup bool) []storage.PageID {
	var out []storage.PageID
	seen := map[storage.PageID]bool{}
	for _, r := range inst.Requests {
		if r.Sequential {
			continue
		}
		if dedup {
			if seen[r.Page] {
				continue
			}
			seen[r.Page] = true
		}
		out = append(out, r.Page)
	}
	return out
}

// Model is a trained sequence predictor.
type Model struct {
	cfg Config

	vocab map[storage.PageID]int
	pages []storage.PageID // id → page (id 0 is BOS)
	enc   *nn.Encoder
	head  *nn.Linear
	rt    nn.Runtime
	// TrainTime and InferTime record wall-clock costs for the Figure 9
	// comparison. InferTime accumulates across Predict calls;
	// InferredTokens counts generated blocks.
	TrainTime      time.Duration
	InferTime      time.Duration
	InferredTokens int
}

const bosID = 0

// Train fits the baseline on the given block sequences.
func Train(seqs [][]storage.PageID, cfg Config) *Model {
	cfg = cfg.withDefaults()
	start := timeNow()
	m := &Model{cfg: cfg, vocab: map[storage.PageID]int{}}
	m.pages = append(m.pages, storage.PageID{}) // BOS placeholder
	encode := func(p storage.PageID) int {
		if id, ok := m.vocab[p]; ok {
			return id
		}
		id := len(m.pages)
		m.vocab[p] = id
		m.pages = append(m.pages, p)
		return id
	}
	encoded := make([][]int, len(seqs))
	for i, s := range seqs {
		ids := make([]int, len(s))
		for j, p := range s {
			ids[j] = encode(p)
		}
		encoded[i] = ids
	}

	r := sim.NewRand(cfg.Seed)
	m.enc = nn.NewEncoder(nn.EncoderConfig{
		Vocab: len(m.pages), Dim: cfg.Dim, Heads: cfg.Heads, Layers: 1,
	}, r)
	m.head = nn.NewLinear("seq.head", cfg.Dim, len(m.pages), r)
	m.rt = nn.Runtime{Pool: nn.NewPool(cfg.Threads), Arena: nn.NewArena()}
	m.enc.SetRuntime(m.rt)
	m.head.SetRuntime(m.rt)
	params := append(m.enc.Params(), m.head.Params()...)
	opt := nn.NewAdam(cfg.LR, params)
	opt.Clip = 5

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, ids := range encoded {
			if len(ids) == 0 {
				continue
			}
			// Sample positions uniformly (deterministically) along the trace.
			positions := len(ids)
			stride := 1
			if positions > cfg.MaxPositionsPerQuery {
				stride = positions / cfg.MaxPositionsPerQuery
			}
			for pos := 0; pos < positions; pos += stride {
				ctx := m.context(ids, pos)
				m.rt.Arena.Release()
				opt.ZeroGrad()
				logits := m.head.Forward(m.enc.Forward(ctx))
				dLogits := m.crossEntropyGrad(logits, ids[pos])
				m.enc.Backward(m.head.Backward(dLogits))
				opt.Step()
			}
		}
	}
	m.TrainTime = timeSince(start)
	return m
}

// context builds the window of up to Context ids preceding pos, with BOS at
// the front when the history is short.
func (m *Model) context(ids []int, pos int) []int {
	lo := pos - m.cfg.Context
	if lo < 0 {
		lo = 0
	}
	ctx := make([]int, 0, pos-lo+1)
	ctx = append(ctx, bosID)
	ctx = append(ctx, ids[lo:pos]...)
	return ctx
}

// crossEntropyGrad returns dLogits for -log softmax(logits)[target],
// scratch-allocated so the per-position training loop stays churn-free.
func (m *Model) crossEntropyGrad(logits *nn.Mat, target int) *nn.Mat {
	grad := m.rt.Arena.Get(logits.Rows, logits.Cols)
	copy(grad.Data, logits.Data)
	grad.SoftmaxRows()
	grad.Data[target]--
	return grad
}

// VocabSize returns the number of distinct blocks plus BOS.
func (m *Model) VocabSize() int { return len(m.pages) }

// Predict generates up to n blocks autoregressively from an empty history.
func (m *Model) Predict(n int) []storage.PageID { return m.PredictFrom(nil, n) }

// PredictFrom seeds the model with the query's first observed block accesses
// (the "past K accesses" the sequence formulation conditions on) and then
// generates up to n blocks autoregressively (greedy decoding,
// repetition-avoiding: a block already emitted is skipped in favor of the
// next best), returning the distinct predicted set in file-storage order.
// Each generated block costs one full forward pass — the step-wise inference
// the paper deems impractical for prefetching.
func (m *Model) PredictFrom(seed []storage.PageID, n int) []storage.PageID {
	start := timeNow()
	if n > m.cfg.MaxGenerate {
		n = m.cfg.MaxGenerate
	}
	ctx := []int{bosID}
	emitted := map[int]bool{}
	for _, p := range seed {
		if id, ok := m.vocab[p]; ok {
			ctx = append(ctx, id)
			emitted[id] = true
		}
	}
	var outIDs []int
	for step := 0; step < n; step++ {
		window := ctx
		if len(window) > m.cfg.Context {
			window = window[len(window)-m.cfg.Context:]
		}
		m.rt.Arena.Release()
		logits := m.head.Forward(m.enc.Forward(window))
		best, bestV := -1, math.Inf(-1)
		for id := 1; id < len(logits.Data); id++ {
			if emitted[id] {
				continue
			}
			if logits.Data[id] > bestV {
				best, bestV = id, logits.Data[id]
			}
		}
		if best < 0 {
			break
		}
		emitted[best] = true
		outIDs = append(outIDs, best)
		ctx = append(ctx, best)
	}
	m.InferTime += timeSince(start)
	m.InferredTokens += len(outIDs)

	out := make([]storage.PageID, len(outIDs))
	for i, id := range outIDs {
		out[i] = m.pages[id]
	}
	sortPages(out)
	return out
}

func sortPages(pages []storage.PageID) {
	for i := 1; i < len(pages); i++ {
		for j := i; j > 0 && pages[j].Less(pages[j-1]); j-- {
			pages[j], pages[j-1] = pages[j-1], pages[j]
		}
	}
}

// PerTokenInferCost returns the average wall-clock cost per generated block.
func (m *Model) PerTokenInferCost() time.Duration {
	if m.InferredTokens == 0 {
		return 0
	}
	return m.InferTime / time.Duration(m.InferredTokens)
}
