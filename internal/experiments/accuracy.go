package experiments

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/baselines"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/seqmodel"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// Table1 reproduces Table 1: per-workload statistics.
func (s *Suite) Table1() *Table {
	t := newTable("table1", "Statistics for template workloads",
		"workload", "seq IO", "min distinct non-seq", "max distinct non-seq",
		"distinct plans", "relations joined (max idx scanned)")
	for _, name := range []string{"imdb1a", "t18", "t19", "t91"} {
		st := s.Split(name).all.ComputeStats()
		t.addRow(name, st.SeqIO, st.MinDistinctNS, st.MaxDistinctNS,
			st.DistinctPlans, fmt.Sprintf("%d(%d)", st.RelationsJoined, st.MaxIndexScanned))
		t.set(name, "seqIO", float64(st.SeqIO))
		t.set(name, "minNS", float64(st.MinDistinctNS))
		t.set(name, "maxNS", float64(st.MaxDistinctNS))
		t.set(name, "plans", float64(st.DistinctPlans))
		t.set(name, "rels", float64(st.RelationsJoined))
		t.set(name, "idx", float64(st.MaxIndexScanned))
	}
	return t
}

// Figure1 reproduces Figure 1: oracle prefetching of sequential vs
// non-sequential reads. Non-sequential prefetch wins; sequential prefetch is
// nearly useless because OS readahead already serves those reads.
func (s *Suite) Figure1() *Table {
	t := newTable("fig1", "Prefetching sequential vs non-sequential reads (oracle)",
		"template", "seq-only speedup", "non-seq-only speedup")
	sys := s.DSBSystem() // no training needed: oracle prefetch sets
	for _, tpl := range s.Templates() {
		var seqSp, nsSp []float64
		for _, inst := range s.speedupSample(tpl) {
			seqSp = append(seqSp, sys.SpeedupColdCache(inst, baselines.OracleSequential))
			nsSp = append(nsSp, sys.SpeedupColdCache(inst, baselines.Oracle))
		}
		ms, mn := metrics.Summarize(seqSp).Mean, metrics.Summarize(nsSp).Mean
		t.addRow(tpl, ms, mn)
		t.set(tpl, "seq", ms)
		t.set(tpl, "nonseq", mn)
	}
	return t
}

// pythiaF1s scores Pythia on a workload's held-out queries.
func pythiaF1s(sys *pythia.System, test []*workload.Instance) []float64 {
	var out []float64
	for _, inst := range test {
		out = append(out, metrics.Score(sys.Prefetch(inst), inst.Pages).F1)
	}
	return out
}

// Figure5 reproduces Figure 5: Pythia's F1 vs the idealized
// nearest-neighbor baseline, per workload. (ORCL is omitted as in the
// paper — by definition it scores a perfect F1.)
func (s *Suite) Figure5() *Table {
	t := newTable("fig5", "F1: Pythia vs idealized NN baseline",
		"workload", "Pythia mean F1", "Pythia median F1", "NN mean F1", "NN median F1")
	for _, tpl := range append(s.Templates(), "imdb1a") {
		sp := s.Split(tpl)
		var sys *pythia.System
		if tpl == "imdb1a" {
			sys = s.IMDBSystem()
		} else {
			sys = s.DSBSystem(tpl)
		}
		py := metrics.Summarize(pythiaF1s(sys, sp.test))
		var nn []float64
		for _, inst := range sp.test {
			nn = append(nn, metrics.Score(baselines.NearestNeighbor(inst, sp.train), inst.Pages).F1)
		}
		nns := metrics.Summarize(nn)
		t.addRow(tpl, py.Mean, py.Median, nns.Mean, nns.Median)
		t.set(tpl, "pythia", py.Mean)
		t.set(tpl, "nn", nns.Mean)
	}
	return t
}

// Figure6 reproduces Figure 6: cold-cache speedup of Pythia vs the ORCL and
// NN idealized baselines, per template. T91 shows the largest speedups (its
// non-sequential fraction is the highest).
func (s *Suite) Figure6() *Table {
	t := newTable("fig6", "Speedup: Pythia vs ORCL vs NN",
		"template", "Pythia", "ORCL", "NN")
	for _, tpl := range s.Templates() {
		sys := s.DSBSystem(tpl)
		sp := s.Split(tpl)
		var py, orcl, nn []float64
		for _, inst := range s.speedupSample(tpl) {
			py = append(py, sys.SpeedupColdCache(inst, sys.Prefetch))
			orcl = append(orcl, sys.SpeedupColdCache(inst, baselines.Oracle))
			nn = append(nn, sys.SpeedupColdCache(inst, func(i *workload.Instance) []storage.PageID {
				return baselines.NearestNeighbor(i, sp.train)
			}))
		}
		mp, mo, mn := metrics.Summarize(py).Mean, metrics.Summarize(orcl).Mean, metrics.Summarize(nn).Mean
		t.addRow(tpl, mp, mo, mn)
		t.set(tpl, "pythia", mp)
		t.set(tpl, "orcl", mo)
		t.set(tpl, "nn", mn)
	}
	return t
}

// similarityBuckets buckets a workload's test queries by their average
// Jaccard similarity to the training workload (§5.3).
func similarityBuckets(sp *split) []metrics.Bucket {
	keys := make([]float64, len(sp.test))
	for i, inst := range sp.test {
		keys[i] = workload.AvgSimilarity(inst, sp.train)
	}
	return metrics.Bucketize(keys)
}

// Figure7 reproduces Figure 7: F1 by test-query↔workload similarity bucket.
func (s *Suite) Figure7() *Table {
	t := newTable("fig7", "F1 by similarity between test query and workload",
		"workload", "low 25%", "mid 50%", "top 25%")
	for _, tpl := range append(s.Templates(), "imdb1a") {
		sp := s.Split(tpl)
		var sys *pythia.System
		if tpl == "imdb1a" {
			sys = s.IMDBSystem()
		} else {
			sys = s.DSBSystem(tpl)
		}
		g := metrics.GroupByBucket(similarityBuckets(sp), pythiaF1s(sys, sp.test))
		t.addRow(tpl, g[metrics.Low], g[metrics.Mid], g[metrics.High])
		t.set(tpl, "low", g[metrics.Low])
		t.set(tpl, "mid", g[metrics.Mid])
		t.set(tpl, "high", g[metrics.High])
	}
	return t
}

// Figure8 reproduces Figure 8: speedup by similarity bucket.
func (s *Suite) Figure8() *Table {
	t := newTable("fig8", "Speedup by similarity between test query and workload",
		"template", "low 25%", "mid 50%", "top 25%")
	for _, tpl := range s.Templates() {
		sys := s.DSBSystem(tpl)
		sp := s.Split(tpl)
		sps := make([]float64, len(sp.test))
		for i, inst := range sp.test {
			sps[i] = sys.SpeedupColdCache(inst, sys.Prefetch)
		}
		g := metrics.GroupByBucket(similarityBuckets(sp), sps)
		t.addRow(tpl, g[metrics.Low], g[metrics.Mid], g[metrics.High])
		t.set(tpl, "low", g[metrics.Low])
		t.set(tpl, "mid", g[metrics.Mid])
		t.set(tpl, "high", g[metrics.High])
	}
	return t
}

// Figure9 reproduces Figure 9 and its cost discussion: Pythia vs the
// sequence-prediction transformers (context 32/64, raw/dedup traces) on
// template 91 — comparable F1, vastly higher train and per-query inference
// cost for the sequence models.
func (s *Suite) Figure9() *Table {
	t := newTable("fig9", "Pythia vs sequence-prediction transformers (t91)",
		"model", "median F1", "train (s)", "infer/query (ms)", "infer @1M blocks (s)", "train ×Pythia", "infer ×Pythia")
	sp := s.Split("t91")
	sys := s.DSBSystem("t91")

	py := metrics.Summarize(pythiaF1s(sys, sp.test))
	var tw *pythia.Trained
	for _, w := range sys.Workloads() {
		if w.Name == "t91" {
			tw = w
		}
	}
	pyTrain := tw.Pred.TrainTime.Seconds()
	// Pythia's per-query inference cost: measure by timing predictions.
	pyInferMS := timePerQueryMS(func() {
		for _, inst := range sp.test {
			sys.Prefetch(inst)
		}
	}, len(sp.test))
	// Pythia's inference is one-shot: its cost does not grow with the
	// length of the block sequence, so the @1M column equals its per-query
	// cost.
	t.addRow("pythia", py.Median, fmt.Sprintf("%.2f", pyTrain), fmt.Sprintf("%.2f", pyInferMS),
		fmt.Sprintf("%.3f", pyInferMS/1000), "1.0", "1.0")
	t.set("pythia", "f1", py.Median)
	t.set("pythia", "train", pyTrain)
	t.set("pythia", "infer", pyInferMS)
	t.set("pythia", "infer1m", pyInferMS/1000)

	for _, variant := range []struct {
		name  string
		ctx   int
		dedup bool
	}{
		{"seq-raw-32", 32, false},
		{"seq-raw-64", 64, false},
		{"seq-dedup-32", 32, true},
		{"seq-dedup-64", 64, true},
	} {
		cfg := seqmodel.DefaultConfig()
		cfg.Context = variant.ctx
		cfg.Dedup = variant.dedup
		seqs := make([][]storage.PageID, len(sp.train))
		for i, inst := range sp.train {
			seqs[i] = seqmodel.NonSeqSequence(inst, variant.dedup)
		}
		m := seqmodel.Train(seqs, cfg)
		var f1s []float64
		for _, inst := range sp.test {
			seq := seqmodel.NonSeqSequence(inst, variant.dedup)
			seedLen := len(seq) / 4
			pred := m.PredictFrom(seq[:seedLen], len(inst.Pages))
			f1s = append(f1s, metrics.Score(pred, inst.Pages).F1)
		}
		med := metrics.Summarize(f1s).Median
		trainS := m.TrainTime.Seconds()
		inferMS := float64(m.InferTime.Microseconds()) / 1000 / float64(len(sp.test))
		// Step-wise decoding pays one forward pass per block: extrapolating
		// the measured per-token cost to the paper's ~1M-block sequences is
		// what produces the "8500× slower inference" regime (§5.2 — 16.4
		// minutes to predict 1M blocks on a V100).
		infer1M := m.PerTokenInferCost().Seconds() * 1e6
		t.addRow(variant.name, med, fmt.Sprintf("%.2f", trainS), fmt.Sprintf("%.2f", inferMS),
			fmt.Sprintf("%.1f", infer1M),
			fmt.Sprintf("%.1f", trainS/pyTrain), fmt.Sprintf("%.1f", infer1M/(pyInferMS/1000)))
		t.set(variant.name, "f1", med)
		t.set(variant.name, "train", trainS)
		t.set(variant.name, "infer", inferMS)
		t.set(variant.name, "infer1m", infer1M)
	}
	return t
}

// nonSeqBuckets buckets a workload's test queries by their number of
// distinct non-sequential reads (§5.3).
func nonSeqBuckets(sp *split) []metrics.Bucket {
	keys := make([]float64, len(sp.test))
	for i, inst := range sp.test {
		keys[i] = float64(workload.NonSeqReads(inst))
	}
	return metrics.Bucketize(keys)
}

// Figure10 reproduces Figure 10: F1 by number of non-sequential reads.
func (s *Suite) Figure10() *Table {
	t := newTable("fig10", "F1 by number of distinct non-sequential reads",
		"workload", "low 25%", "mid 50%", "top 25%")
	for _, tpl := range append(s.Templates(), "imdb1a") {
		sp := s.Split(tpl)
		var sys *pythia.System
		if tpl == "imdb1a" {
			sys = s.IMDBSystem()
		} else {
			sys = s.DSBSystem(tpl)
		}
		g := metrics.GroupByBucket(nonSeqBuckets(sp), pythiaF1s(sys, sp.test))
		t.addRow(tpl, g[metrics.Low], g[metrics.Mid], g[metrics.High])
		t.set(tpl, "low", g[metrics.Low])
		t.set(tpl, "mid", g[metrics.Mid])
		t.set(tpl, "high", g[metrics.High])
	}
	return t
}

// Figure11 reproduces Figure 11: speedup by number of non-sequential reads.
// The IMDB high bucket is limited by buffer-bounded prefetching.
func (s *Suite) Figure11() *Table {
	t := newTable("fig11", "Speedup by number of distinct non-sequential reads",
		"workload", "low 25%", "mid 50%", "top 25%")
	for _, tpl := range append(s.Templates(), "imdb1a") {
		sp := s.Split(tpl)
		var sys *pythia.System
		if tpl == "imdb1a" {
			sys = s.IMDBSystem()
		} else {
			sys = s.DSBSystem(tpl)
		}
		sps := make([]float64, len(sp.test))
		for i, inst := range sp.test {
			sps[i] = sys.SpeedupColdCache(inst, sys.Prefetch)
		}
		g := metrics.GroupByBucket(nonSeqBuckets(sp), sps)
		t.addRow(tpl, g[metrics.Low], g[metrics.Mid], g[metrics.High])
		t.set(tpl, "low", g[metrics.Low])
		t.set(tpl, "mid", g[metrics.Mid])
		t.set(tpl, "high", g[metrics.High])
	}
	return t
}

// timePerQueryMS runs fn once and returns its mean wall-clock cost per
// query in milliseconds.
func timePerQueryMS(fn func(), queries int) float64 {
	start := timeNow()
	fn()
	elapsed := timeSince(start)
	if queries <= 0 {
		queries = 1
	}
	ms := float64(elapsed.Microseconds()) / 1000 / float64(queries)
	if ms <= 0 {
		ms = 0.001 // clamp so cost ratios stay finite
	}
	return ms
}
