package experiments

import (
	"fmt"
	"sort"
)

// Runner is one experiment's entry point.
type Runner func(*Suite) *Table

// Registry maps experiment ids to runners, one per paper table/figure.
var Registry = map[string]Runner{
	"table1": (*Suite).Table1,
	"fig1":   (*Suite).Figure1,
	"fig5":   (*Suite).Figure5,
	"fig6":   (*Suite).Figure6,
	"fig7":   (*Suite).Figure7,
	"fig8":   (*Suite).Figure8,
	"fig9":   (*Suite).Figure9,
	"fig10":  (*Suite).Figure10,
	"fig11":  (*Suite).Figure11,
	"fig12a": (*Suite).Figure12a,
	"fig12b": (*Suite).Figure12b,
	"fig12c": (*Suite).Figure12c,
	"fig12d": (*Suite).Figure12d,
	"fig12e": (*Suite).Figure12e,
	"fig12f": (*Suite).Figure12f,
	"fig12g": (*Suite).Figure12g,
	"fig12h": (*Suite).Figure12h,
	"fig13a": (*Suite).Figure13a,
	"fig13b": (*Suite).Figure13b,
	"fig13c": (*Suite).Figure13c,
	"fig13d": (*Suite).Figure13d,

	// Extensions beyond the paper's figures (documented in DESIGN.md).
	"ext-drift":         (*Suite).ExtDrift,
	"ext-serialization": (*Suite).ExtSerializationAblation,
	"ext-scheduler":     (*Suite).ExtScheduler,
	"ext-chaos":         (*Suite).ExtChaos,
}

// Names returns all experiment ids in stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func (s *Suite) Run(id string) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r(s), nil
}
