package experiments

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/buffer"
	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/replay"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// trainFreshT18 builds an independent t18 system over the given generator
// with custom predictor options (used by the retraining ablations).
func (s *Suite) trainFreshT18(g *dsb.Generator, train []*workload.Instance, opts predictor.Options, bufferPages int) *pythia.System {
	cfg := pythia.DefaultConfig()
	cfg.Predictor = opts
	cfg.Replay = replay.Config{BufferPages: bufferPages}
	sys := pythia.New(g.DB(), cfg)
	sys.Train("t18", train)
	return sys
}

// trainFresh builds an independent system over the suite's main DSB
// database and trains the named workload with custom options.
func (s *Suite) trainFresh(name string, train []*workload.Instance, opts predictor.Options) *pythia.System {
	cfg := pythia.DefaultConfig()
	cfg.Predictor = opts
	cfg.Replay = replay.Config{BufferPages: s.bufferPages()}
	sys := pythia.New(s.generator().DB(), cfg)
	sys.Train(name, train)
	return sys
}

// Figure12a reproduces Figure 12a: F1 vs database scale factor. Model
// accuracy degrades slightly as the block space grows with fixed training
// data.
func (s *Suite) Figure12a() *Table {
	t := newTable("fig12a", "F1 vs database scale factor (t18)",
		"scale factor", "mean F1")
	base := s.cfg.Scale
	for _, frac := range []struct {
		label string
		scale int
	}{
		{"SF25", base / 4},
		{"SF50", base / 2},
		{"SF100", base},
	} {
		scale := frac.scale
		if scale < 2 {
			scale = 2
		}
		g := dsb.NewGenerator(dsb.Config{ScaleFactor: scale, Seed: s.cfg.Seed})
		w := g.Workload("t18", s.cfg.PerTemplate, s.cfg.Seed+11)
		train, test := w.Split(s.cfg.TestFraction, s.cfg.Seed+23)
		sys := s.trainFreshT18(g, train, s.ablationOptions(), s.bufferPages())
		f1 := metrics.Summarize(pythiaF1s(sys, test)).Mean
		t.addRow(frac.label, f1)
		t.set(frac.label, "f1", f1)
	}
	return t
}

// Figure12b reproduces Figure 12b: F1 vs training-set size. Marginal
// improvement decreases as training data grows.
func (s *Suite) Figure12b() *Table {
	t := newTable("fig12b", "F1 vs training data fraction (t18)",
		"train fraction", "mean F1")
	sp := s.Split("t18")
	for _, frac := range []float64{0.10, 0.25, 0.50, 0.75, 1.0} {
		sub := workload.Subsample(sp.train, frac, s.cfg.Seed+31)
		sys := s.trainFreshT18(s.generator(), sub, s.ablationOptions(), s.bufferPages())
		f1 := metrics.Summarize(pythiaF1s(sys, sp.test)).Mean
		label := fmt.Sprintf("%.0f%%", frac*100)
		t.addRow(label, f1)
		t.set(label, "f1", f1)
	}
	return t
}

// Figure12c reproduces Figure 12c: homogeneous vs heterogeneous workloads.
// Training one predictor on a t18+t19 mix (same total training budget)
// degrades accuracy relative to per-template models.
func (s *Suite) Figure12c() *Table {
	t := newTable("fig12c", "Homogeneous vs heterogeneous workload (t18+t19)",
		"configuration", "t18 F1", "t19 F1")
	sys := s.DSBSystem("t18", "t19")
	sp18, sp19 := s.Split("t18"), s.Split("t19")
	homo18 := metrics.Summarize(pythiaF1s(sys, sp18.test)).Mean
	homo19 := metrics.Summarize(pythiaF1s(sys, sp19.test)).Mean
	t.addRow("homogeneous", homo18, homo19)
	t.set("homogeneous", "t18", homo18)
	t.set("homogeneous", "t19", homo19)

	// Heterogeneous: one predictor over a half-and-half mix, matching the
	// homogeneous per-template training budget.
	mixed := append(append([]*workload.Instance{},
		workload.Subsample(sp18.train, 0.5, s.cfg.Seed+41)...),
		workload.Subsample(sp19.train, 0.5, s.cfg.Seed+43)...)
	hsys := s.trainFreshT18(s.generator(), mixed, s.ablationOptions(), s.bufferPages())
	het18 := metrics.Summarize(pythiaF1s(hsys, sp18.test)).Mean
	het19 := metrics.Summarize(pythiaF1s(hsys, sp19.test)).Mean
	t.addRow("heterogeneous", het18, het19)
	t.set("heterogeneous", "t18", het18)
	t.set("heterogeneous", "t19", het19)
	return t
}

// Figure12d reproduces Figure 12d: separate models per index / base table
// vs one combined model per relation. Combined models save space but lose
// accuracy.
func (s *Suite) Figure12d() *Table {
	t := newTable("fig12d", "Separate vs combined index/base-table models (t18)",
		"configuration", "mean F1", "total params")
	sp := s.Split("t18")

	sep := s.trainFreshT18(s.generator(), sp.train, s.ablationOptions(), s.bufferPages())
	sepF1 := metrics.Summarize(pythiaF1s(sep, sp.test)).Mean
	var sepParams int
	for _, w := range sep.Workloads() {
		sepParams += w.Pred.ParamCount()
	}
	t.addRow("separate", sepF1, sepParams)
	t.set("separate", "f1", sepF1)
	t.set("separate", "params", float64(sepParams))

	// Combined: group each relation's heap with its index.
	opts := s.ablationOptions()
	for _, rel := range s.generator().DB().Relations() {
		for _, ix := range rel.Indexes() {
			opts.Groups = append(opts.Groups, []storage.ObjectID{
				rel.Heap.ID, ix.Tree.Object().ID,
			})
		}
	}
	comb := s.trainFreshT18(s.generator(), sp.train, opts, s.bufferPages())
	combF1 := metrics.Summarize(pythiaF1s(comb, sp.test)).Mean
	var combParams int
	for _, w := range comb.Workloads() {
		combParams += w.Pred.ParamCount()
	}
	t.addRow("combined", combF1, combParams)
	t.set("combined", "f1", combF1)
	t.set("combined", "params", float64(combParams))
	return t
}

// Figure12e reproduces Figure 12e: speedup under Clock, LRU, and MRU buffer
// replacement (reduced buffer so replacement actually kicks in). Pythia
// helps under all three; LRU edges out Clock; MRU trails.
func (s *Suite) Figure12e() *Table {
	t := newTable("fig12e", "Speedup by buffer replacement policy (t18, half buffer)",
		"policy", "speedup")
	sys := s.DSBSystem("t18")
	half := s.bufferPages() / 2
	for _, pol := range []buffer.Policy{buffer.Clock, buffer.LRU, buffer.MRU} {
		v := sys.WithReplay(replay.Config{BufferPages: half, BufferPolicy: pol})
		var sp []float64
		for _, inst := range s.speedupSample("t18") {
			sp = append(sp, v.SpeedupColdCache(inst, v.Prefetch))
		}
		m := metrics.Summarize(sp).Mean
		t.addRow(pol.String(), m)
		t.set(pol.String(), "speedup", m)
	}
	return t
}

// Figure12f reproduces Figure 12f: speedup vs buffer size. Larger buffers
// leave more room for prefetched pages.
func (s *Suite) Figure12f() *Table {
	t := newTable("fig12f", "Speedup vs buffer size (t18)",
		"buffer (pages)", "speedup")
	sys := s.DSBSystem("t18")
	base := s.bufferPages()
	for _, mul := range []struct {
		label string
		num   int
		den   int
	}{
		{"x0.25", 1, 4}, {"x0.5", 1, 2}, {"x1", 1, 1}, {"x2", 2, 1},
	} {
		pages := base * mul.num / mul.den
		if pages < 64 {
			pages = 64
		}
		v := sys.WithReplay(replay.Config{BufferPages: pages})
		var sp []float64
		for _, inst := range s.speedupSample("t18") {
			sp = append(sp, v.SpeedupColdCache(inst, v.Prefetch))
		}
		m := metrics.Summarize(sp).Mean
		label := fmt.Sprintf("%d", pages)
		t.addRow(label, m)
		t.set(mul.label, "speedup", m)
	}
	return t
}

// Figure12g reproduces Figure 12g: speedup vs readahead window R. Growth
// tapers past the paper's default of 1024.
func (s *Suite) Figure12g() *Table {
	t := newTable("fig12g", "Speedup vs readahead window R (t18)",
		"window", "speedup")
	sys := s.DSBSystem("t18")
	for _, w := range []int{16, 64, 256, 1024, 4096} {
		v := sys.WithWindow(w)
		var sp []float64
		for _, inst := range s.speedupSample("t18") {
			sp = append(sp, v.SpeedupColdCache(inst, v.Prefetch))
		}
		m := metrics.Summarize(sp).Mean
		t.addRow(w, m)
		t.set(fmt.Sprintf("%d", w), "speedup", m)
	}
	return t
}

// Figure12h reproduces Figure 12h: predicting only the top-k most frequent
// pages. Restricting to popular pages yields little benefit — those pages
// tend to stay buffered anyway; the bulk of the speedup comes from the
// infrequent non-sequential pages.
func (s *Suite) Figure12h() *Table {
	t := newTable("fig12h", "Speedup when predicting only top-k frequent pages (t18)",
		"label space", "speedup")
	sp := s.Split("t18")

	// Distinct observed pages define the full label-space size; the paper's
	// 20k/40k/60k sweep maps to 25% / 50% / 75% of it at this scale.
	distinct := map[storage.PageID]bool{}
	for _, inst := range sp.train {
		for _, p := range inst.Pages {
			distinct[p] = true
		}
	}
	full := len(distinct)
	variants := []struct {
		label string
		topK  int
	}{
		{"top 25%", full / 4},
		{"top 50%", full / 2},
		{"top 75%", full * 3 / 4},
		{"full", 0},
	}
	for _, v := range variants {
		opts := s.ablationOptions()
		opts.TopK = v.topK
		sys := s.trainFreshT18(s.generator(), sp.train, opts, s.bufferPages())
		var sps []float64
		for _, inst := range s.speedupSample("t18") {
			sps = append(sps, sys.SpeedupColdCache(inst, sys.Prefetch))
		}
		m := metrics.Summarize(sps).Mean
		t.addRow(v.label, m)
		t.set(v.label, "speedup", m)
	}
	return t
}
