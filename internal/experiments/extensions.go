package experiments

import (
	"math"

	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/scheduler"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/workload"
)

// ExtDrift is an extension experiment beyond the paper's figures,
// operationalizing its §5.3 observation that "Pythia can be trained
// incrementally ... every new query run can be used as a new training data
// point": the workload's parameter distribution drifts (queries move to a
// date region never seen in training), accuracy collapses, and incremental
// updates with a handful of post-drift queries recover it — without
// retraining from scratch.
func (s *Suite) ExtDrift() *Table {
	t := newTable("ext-drift", "Workload drift and incremental retraining (t18)",
		"evaluation", "mean F1")
	sp := s.Split("t18")

	// Partition instances by their date parameter: the "past" (first 60% of
	// the domain) and the drifted "future".
	split := int64(float64(2400) * 0.6)
	var past, future []*workload.Instance
	for _, inst := range sp.all.Instances {
		if inst.Query.FactPreds[0].Lo < split {
			past = append(past, inst)
		} else {
			future = append(future, inst)
		}
	}
	if len(past) < 8 || len(future) < 8 {
		// Degenerate split at tiny scales; report NaNs rather than panic.
		t.addRow("insufficient data", math.NaN())
		t.set("past", "f1", math.NaN())
		return t
	}
	pastTrain := past[:len(past)*3/4]
	pastTest := past[len(past)*3/4:]
	futureUpdate := future[:len(future)/2]
	futureTest := future[len(future)/2:]

	sys := s.trainFreshT18(s.generator(), pastTrain, s.ablationOptions(), s.bufferPages())

	eval := func(insts []*workload.Instance) float64 {
		return metrics.Summarize(pythiaF1s(sys, insts)).Mean
	}

	beforePast := eval(pastTest)
	beforeFuture := eval(futureTest)
	t.addRow("past queries (in distribution)", beforePast)
	t.set("past", "f1", beforePast)
	t.addRow("future queries (drifted)", beforeFuture)
	t.set("future-before", "f1", beforeFuture)

	// Incremental update with observed post-drift queries. New pages outside
	// the trained label spaces stay unpredictable (the paper's cheap-retrain
	// caveat), so recovery is partial but material.
	var samples []predictor.TrainSample
	for _, inst := range futureUpdate {
		samples = append(samples, predictor.TrainSample{Plan: inst.Plan, Trace: inst.Trace})
	}
	for _, tw := range sys.Workloads() {
		tw.Pred.Update(samples, s.ablationOptions().Model.Epochs)
	}
	afterFuture := eval(futureTest)
	afterPast := eval(pastTest)
	t.addRow("future queries after incremental update", afterFuture)
	t.set("future-after", "f1", afterFuture)
	t.addRow("past queries after incremental update", afterPast)
	t.set("past-after", "f1", afterPast)
	return t
}

// ExtSerializationAblation compares this implementation's multi-resolution
// predicate-value tokens against single-resolution tokenization — the
// design decision DESIGN.md calls out. Single-resolution either blurs
// constants (coarse) or fragments training coverage (fine); the ablation
// quantifies both on t91.
func (s *Suite) ExtSerializationAblation() *Table {
	t := newTable("ext-serialization", "Value tokenization ablation (t91)",
		"tokenization", "mean F1")
	sp := s.Split("t91")
	for _, v := range []struct {
		label   string
		buckets int
	}{
		{"multi-resolution (8/32/128)", 32},
		{"single coarse (8)", -8},
		{"single fine (128)", -128},
	} {
		opts := s.ablationOptions()
		if v.buckets > 0 {
			opts.Serialize.ValueBuckets = v.buckets
		} else {
			// Negative encodes the single-resolution variants: collapse the
			// multi-resolution ladder onto one rung by pinning buckets/4 ==
			// buckets*4 == buckets via the SingleResolution option.
			opts.Serialize.ValueBuckets = -v.buckets
			opts.Serialize.SingleResolution = true
		}
		sys := s.trainFresh("t91", sp.train, opts)
		f1 := metrics.Summarize(pythiaF1s(sys, sp.test)).Mean
		t.addRow(v.label, f1)
		t.set(v.label, "f1", f1)
	}
	return t
}

// ExtScheduler operationalizes the paper's §7 future-work direction: use
// Pythia's predictions to *order* a batch of queries so consecutive queries
// overlap in the pages they read. Sequential warm-cache execution of the
// scheduled order is compared against the arrival order, both with Pythia
// prefetching.
func (s *Suite) ExtScheduler() *Table {
	t := newTable("ext-scheduler", "Prefetch-aware query scheduling (t18+t19+t91)",
		"ordering", "total latency speedup vs arrival order", "chain overlap")
	sys := s.DSBSystem("t18", "t19", "t91")
	r := sim.NewRand(s.cfg.Seed + 97)

	// A batch interleaving the three templates: arrival order alternates
	// templates (worst case for sharing), so grouping by predicted overlap
	// has room to help.
	var batch []*workload.Instance
	for i := 0; i < 3; i++ {
		for _, tpl := range s.Templates() {
			test := s.Split(tpl).test
			batch = append(batch, test[r.Intn(len(test))])
		}
	}

	preds := make([]scheduler.Prediction, len(batch))
	for i, inst := range batch {
		preds[i] = scheduler.Prediction{Instance: inst, Pages: sys.Prefetch(inst)}
	}
	order := scheduler.Order(preds)
	scheduled := scheduler.Apply(preds, order)

	run := func(insts []*workload.Instance) float64 {
		arrivals := sequentialArrivals(sys, insts)
		return float64(sys.Run(insts, arrivals, sys.Prefetch).TotalElapsed())
	}
	arrivalLatency := run(batch)
	scheduledLatency := run(scheduled)

	identity := make([]int, len(batch))
	for i := range identity {
		identity[i] = i
	}
	t.addRow("arrival order", 1.0, scheduler.ChainOverlap(preds, identity))
	t.set("arrival", "speedup", 1.0)
	t.set("arrival", "overlap", scheduler.ChainOverlap(preds, identity))
	sp := arrivalLatency / scheduledLatency
	t.addRow("pythia-scheduled", sp, scheduler.ChainOverlap(preds, order))
	t.set("scheduled", "speedup", sp)
	t.set("scheduled", "overlap", scheduler.ChainOverlap(preds, order))
	return t
}
