package experiments

import (
	"sort"
	"sync"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/imdb"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/replay"
	"github.com/pythia-db/pythia/internal/workload"
)

// Config scales the experiment suite. The defaults regenerate every figure
// in a few minutes on CPU; tests use Fast() for second-scale runs. Paper
// counts (1000 instances per DSB template, 3000 for IMDB, SF 100) are
// reachable by raising these knobs.
type Config struct {
	// Scale is the DSB scale factor used by the main experiments; Figure
	// 12a additionally sweeps {Scale/4, Scale/2, Scale}.
	Scale int
	// IMDBScale scales the IMDB schema.
	IMDBScale int
	// PerTemplate is the number of query instances per DSB template.
	PerTemplate int
	// IMDBInstances is the number of template-1a instances.
	IMDBInstances int
	// TestFraction of instances held out as unseen queries (paper: 5%).
	TestFraction float64
	// SpeedupQueries caps how many held-out queries each speedup experiment
	// replays (replays are cheap but not free).
	SpeedupQueries int
	// Model configures Pythia's classifiers.
	Model model.Config
	// BufferPages sizes the pool for the main experiments; zero derives
	// ~1.5% of the database (the paper sizes the buffer at ~1% of data).
	BufferPages int
	// Seed drives everything.
	Seed uint64
	// FaultPlan, when non-zero, runs every experiment's replays under
	// deterministic fault injection (the ext-chaos experiment sweeps its
	// own plans regardless). See internal/fault.
	FaultPlan fault.Plan
	// FaultSeed seeds the fault injector (independent of Seed so fault
	// timelines can be varied without regenerating workloads).
	FaultSeed uint64
}

// DefaultConfig is the reference configuration for the harness.
func DefaultConfig() Config {
	m := model.DefaultConfig()
	m.Dim = 24
	m.Heads = 4
	m.Layers = 2
	m.DecoderHidden = 48
	m.Epochs = 40
	return Config{
		Scale:          40,
		IMDBScale:      30,
		PerTemplate:    120,
		IMDBInstances:  60,
		TestFraction:   0.15,
		SpeedupQueries: 8,
		Model:          m,
		Seed:           7,
	}
}

// Fast returns a configuration small enough for unit tests.
func Fast() Config {
	c := DefaultConfig()
	c.Scale = 8
	c.IMDBScale = 8
	c.PerTemplate = 48
	c.IMDBInstances = 28
	c.TestFraction = 0.2
	c.SpeedupQueries = 3
	c.Model.Dim = 16
	c.Model.Heads = 2
	c.Model.Layers = 1
	c.Model.DecoderHidden = 32
	c.Model.Epochs = 30
	return c
}

// split is one workload's train/test partition.
type split struct {
	all   *workload.Workload
	train []*workload.Instance
	test  []*workload.Instance
}

// Suite lazily builds and caches the expensive artifacts (databases,
// workloads, trained systems) shared by the experiments.
type Suite struct {
	cfg Config

	mu       sync.Mutex
	gen      *dsb.Generator
	imdbGen  *imdb.Generator
	splits   map[string]*split
	dsbSys   *pythia.System
	imdbSys  *pythia.System
	trainedD map[string]bool
	trainedI bool
}

// NewSuite returns a suite over cfg.
func NewSuite(cfg Config) *Suite {
	if cfg.PerTemplate <= 0 {
		cfg = DefaultConfig()
	}
	return &Suite{
		cfg:      cfg,
		splits:   map[string]*split{},
		trainedD: map[string]bool{},
	}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Templates lists the DSB templates under study.
func (s *Suite) Templates() []string { return []string{"t18", "t19", "t91"} }

func (s *Suite) generator() *dsb.Generator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen == nil {
		s.gen = dsb.NewGenerator(dsb.Config{ScaleFactor: s.cfg.Scale, Seed: s.cfg.Seed})
	}
	return s.gen
}

func (s *Suite) imdbGenerator() *imdb.Generator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.imdbGen == nil {
		s.imdbGen = imdb.NewGenerator(imdb.Config{Scale: s.cfg.IMDBScale, Seed: s.cfg.Seed})
	}
	return s.imdbGen
}

// Split builds (once) and returns the named workload's train/test split.
// Names: t18, t19, t91, imdb1a.
func (s *Suite) Split(name string) *split {
	g := s.generator() // outside the lock: may build the DB
	ig := s.imdbGenerator()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp, ok := s.splits[name]; ok {
		return sp
	}
	var w *workload.Workload
	if name == "imdb1a" {
		w = ig.Workload(s.cfg.IMDBInstances, s.cfg.Seed+101)
	} else {
		w = g.Workload(name, s.cfg.PerTemplate, s.cfg.Seed+11)
	}
	train, test := w.Split(s.cfg.TestFraction, s.cfg.Seed+23)
	sp := &split{all: w, train: train, test: test}
	s.splits[name] = sp
	return sp
}

// predictorOptions builds the standard training options.
func (s *Suite) predictorOptions() predictor.Options {
	return predictor.Options{Model: s.cfg.Model, ObservedOnly: true, Parallel: true}
}

// ablationOptions is predictorOptions at half the training epochs: the
// Figure 12 ablations retrain t18 many times and compare configurations
// *against each other*, so a consistent reduced budget preserves their
// shape while keeping the suite's total training cost bounded.
func (s *Suite) ablationOptions() predictor.Options {
	o := s.predictorOptions()
	o.Model.Epochs = o.Model.Epochs / 2
	if o.Model.Epochs < 10 {
		o.Model.Epochs = 10
	}
	return o
}

// bufferPages derives the pool size from the database (≈1.5% of data, after
// the paper's ~1% guideline, floored to keep the pool useful at tiny test
// scales).
func (s *Suite) bufferPages() int {
	if s.cfg.BufferPages > 0 {
		return s.cfg.BufferPages
	}
	p := s.generator().DB().Registry.TotalPages() * 3 / 200
	if p < 256 {
		p = 256
	}
	return p
}

// DSBSystem returns the shared DSB Pythia system with the named templates
// trained (each trained at most once).
func (s *Suite) DSBSystem(templates ...string) *pythia.System {
	// Resolve splits first: Split takes the lock itself.
	splits := map[string]*split{}
	for _, tpl := range templates {
		splits[tpl] = s.Split(tpl)
	}
	bufPages := s.bufferPages()
	s.mu.Lock()
	if s.dsbSys == nil {
		cfg := pythia.DefaultConfig()
		cfg.Predictor = s.predictorOptions()
		cfg.Replay = replay.Config{BufferPages: bufPages, Fault: s.faultInjector()}
		s.dsbSys = pythia.New(s.gen.DB(), cfg)
	}
	sys := s.dsbSys
	var toTrain []string
	for _, tpl := range templates {
		if !s.trainedD[tpl] {
			s.trainedD[tpl] = true
			toTrain = append(toTrain, tpl)
		}
	}
	s.mu.Unlock()
	sort.Strings(toTrain)
	for _, tpl := range toTrain {
		sys.Train(tpl, splits[tpl].train)
	}
	return sys
}

// IMDBSystem returns the IMDB Pythia system with template 1a trained.
func (s *Suite) IMDBSystem() *pythia.System {
	sp := s.Split("imdb1a")
	s.mu.Lock()
	if s.imdbSys == nil {
		cfg := pythia.DefaultConfig()
		cfg.Predictor = s.predictorOptions()
		// The IMDB buffer is sized so the big instances' predictions
		// overflow it — the limited-prefetching regime (§5.1).
		cfg.Replay = replay.Config{
			BufferPages: s.imdbGen.DB().Registry.TotalPages() / 12,
			Fault:       s.faultInjector(),
		}
		s.imdbSys = pythia.New(s.imdbGen.DB(), cfg)
	}
	sys := s.imdbSys
	train := !s.trainedI
	s.trainedI = true
	s.mu.Unlock()
	if train {
		sys.Train("imdb1a", sp.train)
	}
	return sys
}

// faultInjector builds the config-level injector, or nil when no plan is
// set.
func (s *Suite) faultInjector() *fault.Injector {
	if s.cfg.FaultPlan.IsZero() {
		return nil
	}
	return fault.New(s.cfg.FaultPlan, s.cfg.FaultSeed)
}

// speedupSample returns up to SpeedupQueries test instances for a workload.
func (s *Suite) speedupSample(name string) []*workload.Instance {
	test := s.Split(name).test
	if len(test) > s.cfg.SpeedupQueries {
		test = test[:s.cfg.SpeedupQueries]
	}
	return test
}
