package experiments

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/baselines"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/pythia"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/workload"
)

// sampleMixed draws n test instances uniformly across the given templates.
func (s *Suite) sampleMixed(r *sim.Rand, templates []string, n int) []*workload.Instance {
	out := make([]*workload.Instance, n)
	for i := range out {
		tpl := templates[r.Intn(len(templates))]
		test := s.Split(tpl).test
		out[i] = test[r.Intn(len(test))]
	}
	return out
}

// totalSpeedup replays insts under DFLT and under strategy with the given
// arrivals, and returns total-latency speedup (the paper's multi-query
// metric: "we calculate the speedup of all queries run instead of
// individually").
func totalSpeedup(sys *pythia.System, insts []*workload.Instance, arrivals []sim.Duration, strategy pythia.PrefetchFunc) float64 {
	dflt := sys.Run(insts, arrivals, nil)
	variant := sys.Run(insts, arrivals, strategy)
	return metrics.Speedup(float64(dflt.TotalElapsed()), float64(variant.TotalElapsed()))
}

// sequentialArrivals spaces queries so they never overlap: each arrives
// after the previous one's default-path completion (with 10% slack).
func sequentialArrivals(sys *pythia.System, insts []*workload.Instance) []sim.Duration {
	arrivals := make([]sim.Duration, len(insts))
	var at sim.Duration
	for i, inst := range insts {
		arrivals[i] = at
		solo := sys.Run([]*workload.Instance{inst}, nil, nil)
		at += solo.TotalElapsed() * 11 / 10
	}
	return arrivals
}

// Figure13a reproduces Figure 13a: several queries run back to back with a
// warm cache (no flushing in between). Pythia's gains shrink versus the
// cold-cache single-query setting — some correct prefetches are already
// resident — but remain close to the oracle's.
func (s *Suite) Figure13a() *Table {
	t := newTable("fig13a", "Sequential multi-query speedup, warm cache",
		"run", "Pythia", "ORCL")
	sys := s.DSBSystem("t18", "t19", "t91")
	r := sim.NewRand(s.cfg.Seed + 77)
	runs := 3
	var pys, orcls []float64
	for run := 0; run < runs; run++ {
		insts := s.sampleMixed(r, s.Templates(), 4)
		arrivals := sequentialArrivals(sys, insts)
		py := totalSpeedup(sys, insts, arrivals, sys.Prefetch)
		orcl := totalSpeedup(sys, insts, arrivals, baselines.Oracle)
		pys = append(pys, py)
		orcls = append(orcls, orcl)
		label := fmt.Sprintf("run%d", run+1)
		t.addRow(label, py, orcl)
		t.set(label, "pythia", py)
		t.set(label, "orcl", orcl)
	}
	t.addRow("mean", metrics.Summarize(pys).Mean, metrics.Summarize(orcls).Mean)
	t.set("mean", "pythia", metrics.Summarize(pys).Mean)
	t.set("mean", "orcl", metrics.Summarize(orcls).Mean)
	return t
}

// Figure13b reproduces Figure 13b: queries from a single template running
// concurrently. Gains grow with concurrency (one query's prefetches help
// its siblings) and eventually plateau under resource contention.
func (s *Suite) Figure13b() *Table {
	t := newTable("fig13b", "Concurrent queries, single template (t91)",
		"concurrent queries", "speedup")
	sys := s.DSBSystem("t91")
	r := sim.NewRand(s.cfg.Seed + 79)
	for _, n := range []int{1, 2, 4, 8} {
		insts := s.sampleMixed(r, []string{"t91"}, n)
		sp := totalSpeedup(sys, insts, make([]sim.Duration, n), sys.Prefetch)
		t.addRow(n, sp)
		t.set(fmt.Sprintf("%d", n), "speedup", sp)
	}
	return t
}

// Figure13c reproduces Figure 13c: concurrent queries sampled across all
// three templates. Mixed-template neighbours contend instead of helping, so
// gains dip with concurrency before levelling out.
func (s *Suite) Figure13c() *Table {
	t := newTable("fig13c", "Concurrent queries, mixed templates",
		"concurrent queries", "speedup")
	sys := s.DSBSystem("t18", "t19", "t91")
	r := sim.NewRand(s.cfg.Seed + 83)
	for _, n := range []int{1, 2, 4, 8} {
		insts := s.sampleMixed(r, s.Templates(), n)
		sp := totalSpeedup(sys, insts, make([]sim.Duration, n), sys.Prefetch)
		t.addRow(n, sp)
		t.set(fmt.Sprintf("%d", n), "speedup", sp)
	}
	return t
}

// Figure13d reproduces Figure 13d: five queries from one template with
// Poisson arrival times tuned for an expected pairwise overlap from 25% to
// 100% (same arrival instant).
func (s *Suite) Figure13d() *Table {
	t := newTable("fig13d", "Concurrent queries with different overlap (t91)",
		"expected overlap", "speedup")
	sys := s.DSBSystem("t91")
	r := sim.NewRand(s.cfg.Seed + 89)
	insts := s.sampleMixed(r, []string{"t91"}, 5)

	// Expected runtime under the default path calibrates the inter-arrival
	// scale (the paper samples arrivals from a Poisson process whose rate
	// yields the desired expected overlap).
	var meanRuntime sim.Duration
	for _, inst := range insts {
		meanRuntime += sys.Run([]*workload.Instance{inst}, nil, nil).TotalElapsed()
	}
	meanRuntime /= sim.Duration(len(insts))

	for _, overlap := range []float64{0.25, 0.50, 0.75, 1.0} {
		arrivals := make([]sim.Duration, len(insts))
		var at float64
		for i := range arrivals {
			arrivals[i] = sim.Duration(at)
			gap := float64(meanRuntime) * (1 - overlap)
			at += r.ExpFloat64() * gap
		}
		sp := totalSpeedup(sys, insts, arrivals, sys.Prefetch)
		label := fmt.Sprintf("%.0f%%", overlap*100)
		t.addRow(label, sp)
		t.set(label, "speedup", sp)
	}
	return t
}
