// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: the workload statistics of
// Table 1, the baseline comparisons of Figures 1, 5, 6, and 9, the factor
// analyses of Figures 7–8 and 10–11, the ablations of Figure 12a–h, and the
// multi-query studies of Figure 13a–d. Each experiment returns a Table whose
// rows/series correspond to the paper's plot; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: named columns and formatted rows, plus
// the raw values for assertions in tests and benches.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Values carries machine-readable numbers keyed "row/column" for tests.
	Values map[string]float64
}

// newTable constructs an empty table.
func newTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns, Values: map[string]float64{}}
}

// addRow appends a formatted row; cells may be strings or numbers.
func (t *Table) addRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// set records a machine-readable value for tests ("row/column" key).
func (t *Table) set(row, col string, v float64) {
	t.Values[row+"/"+col] = v
}

// Get returns a recorded value, panicking on unknown keys so tests fail
// loudly on typos.
func (t *Table) Get(row, col string) float64 {
	v, ok := t.Values[row+"/"+col]
	if !ok {
		panic("experiments: no value " + row + "/" + col + " in " + t.ID)
	}
	return v
}

// Has reports whether a value was recorded.
func (t *Table) Has(row, col string) bool {
	_, ok := t.Values[row+"/"+col]
	return ok
}

// String renders the table as aligned text, the way the harness prints it.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
