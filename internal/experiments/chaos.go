package experiments

import (
	"fmt"

	"github.com/pythia-db/pythia/internal/fault"
)

// ExtChaos is the degradation sweep: Pythia prefetching under deterministic
// fault injection at increasing prefetch-path fault rates, measured as
// speedup over the fault-free default (no-prefetch) baseline. The claim
// under test is the safety half of the paper's argument: prefetching is
// advisory, so faults in the prefetch path can only erode the speedup toward
// 1× (the retry → abandon → give-up ladder converges to the baseline), never
// push the system below it.
//
// Faults are confined to the prefetch path (prefetch device reads and model
// inference) — foreground-read faults would slow the baseline's own I/O and
// measure the fault model, not the degradation ladder.
func (s *Suite) ExtChaos() *Table {
	t := newTable("ext-chaos", "Fault injection and graceful degradation (t91)",
		"prefetch fault rate", "speedup", "retries", "abandons", "fallback reads", "inference misses")
	sys := s.DSBSystem("t91")
	insts := s.speedupSample("t91")

	base := sys.Run(insts, nil, nil)
	baseT := float64(base.TotalElapsed())

	for _, rate := range []float64{0, 0.01, 0.05, 0.20} {
		plan := fault.Plan{
			PrefetchReadRate: rate,
			InferenceRate:    rate / 2,
		}
		chaos := sys.WithFault(fault.New(plan, s.cfg.Seed+77))
		res := chaos.Run(insts, nil, chaos.Prefetch)
		speedup := baseT / float64(res.TotalElapsed())
		label := fmt.Sprintf("%g%%", rate*100)
		t.addRow(label, speedup, float64(res.PrefetchRetries), float64(res.PrefetchAbandons),
			float64(res.FallbackSyncReads), float64(res.InferenceDeadlineMisses))
		t.set(label, "speedup", speedup)
		t.set(label, "retries", float64(res.PrefetchRetries))
		t.set(label, "abandons", float64(res.PrefetchAbandons))
		t.set(label, "fallbacks", float64(res.FallbackSyncReads))
		t.set(label, "misses", float64(res.InferenceDeadlineMisses))
	}
	return t
}
