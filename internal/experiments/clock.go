package experiments

import "time"

// Thin indirection over the wall clock (only used to measure model
// train/inference cost, never simulation results).
var (
	timeNow   = time.Now
	timeSince = time.Since
)
