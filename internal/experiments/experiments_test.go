package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// One shared fast suite for the whole test binary: experiments share
// workloads and trained systems, so reusing the suite keeps the test run
// fast while still exercising every experiment end to end.
var (
	suiteOnce sync.Once
	fastSuite *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	suiteOnce.Do(func() { fastSuite = NewSuite(Fast()) })
	return fastSuite
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("x", "demo", "a", "bb")
	tab.addRow("r1", 1.5)
	tab.addRow("longer-cell", 2)
	tab.set("r1", "v", 1.5)
	out := tab.String()
	for _, want := range []string{"== x — demo ==", "a", "bb", "r1", "1.500", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.Get("r1", "v") != 1.5 {
		t.Fatal("Get wrong")
	}
	if !tab.Has("r1", "v") || tab.Has("zz", "v") {
		t.Fatal("Has wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get of unknown key did not panic")
		}
	}()
	tab.Get("zz", "v")
}

func TestRegistryComplete(t *testing.T) {
	// One entry per paper artifact: Table 1, Figures 1, 5–11, 12a–h, 13a–d.
	want := []string{
		"table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11",
		"fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f", "fig12g", "fig12h",
		"fig13a", "fig13b", "fig13c", "fig13d",
		"ext-drift", "ext-serialization", "ext-scheduler", "ext-chaos",
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if len(Names()) != len(want) {
		t.Fatal("Names() incomplete")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := NewSuite(Fast())
	if _, err := s.Run("nope"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestTable1Regimes(t *testing.T) {
	s := testSuite(t)
	tab := s.Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 rows = %d", len(tab.Rows))
	}
	// T91's fact is the smallest: lowest sequential IO among DSB templates.
	if !(tab.Get("t91", "seqIO") < tab.Get("t18", "seqIO") &&
		tab.Get("t18", "seqIO") < tab.Get("t19", "seqIO")) {
		t.Fatalf("sequential IO ordering wrong:\n%s", tab)
	}
	// Plan-count ordering: t18 ≥ t19 > t91 (21/8/2 in the paper).
	if !(tab.Get("t18", "plans") >= tab.Get("t19", "plans") &&
		tab.Get("t19", "plans") > tab.Get("t91", "plans")) {
		t.Fatalf("plan ordering wrong:\n%s", tab)
	}
	if tab.Get("imdb1a", "rels") != 9 || tab.Get("t91", "rels") != 7 {
		t.Fatalf("relation counts wrong:\n%s", tab)
	}
}

func TestFigure1Shape(t *testing.T) {
	s := testSuite(t)
	tab := s.Figure1()
	for _, tpl := range s.Templates() {
		seq, nonseq := tab.Get(tpl, "seq"), tab.Get(tpl, "nonseq")
		if nonseq <= seq {
			t.Fatalf("%s: non-seq prefetch (%.2fx) should beat seq prefetch (%.2fx)\n%s",
				tpl, nonseq, seq, tab)
		}
		if seq > 2 {
			t.Fatalf("%s: seq-only prefetch speedup %.2fx implausibly high\n%s", tpl, seq, tab)
		}
	}
}

func TestFigure5And6Shape(t *testing.T) {
	s := testSuite(t)
	f5 := s.Figure5()
	for _, tpl := range append(s.Templates(), "imdb1a") {
		py, nn := f5.Get(tpl, "pythia"), f5.Get(tpl, "nn")
		if py <= 0.05 {
			t.Fatalf("%s: Pythia F1 %.3f ~ zero\n%s", tpl, py, f5)
		}
		// Pythia is comparable to the idealized NN (the paper's claim);
		// allow it to trail the oracle-ish baseline but not collapse. The
		// IMDB workload at fast-suite scale trains on a handful of highly
		// heterogeneous instances, so only the DSB templates carry the
		// comparability assertion here (the default-scale harness covers
		// IMDB).
		if tpl != "imdb1a" && py < nn*0.3 {
			t.Fatalf("%s: Pythia F1 %.3f far below NN %.3f\n%s", tpl, py, nn, f5)
		}
	}
	f6 := s.Figure6()
	for _, tpl := range s.Templates() {
		if f6.Get(tpl, "pythia") < 1.0 {
			t.Fatalf("%s: Pythia slowdown\n%s", tpl, f6)
		}
		if f6.Get(tpl, "orcl") < 1.0 {
			t.Fatalf("%s: oracle slowdown\n%s", tpl, f6)
		}
	}
	// T91 gets the largest oracle speedup (highest non-seq fraction).
	if f6.Get("t91", "orcl") < f6.Get("t19", "orcl") {
		t.Fatalf("t91 should outgain t19:\n%s", f6)
	}
}

func TestFigure7Shape(t *testing.T) {
	s := testSuite(t)
	tab := s.Figure7()
	// High-similarity bucket should not be worse than the low bucket where
	// both exist (the paper's headline trend).
	for _, tpl := range s.Templates() {
		low, high := tab.Get(tpl, "low"), tab.Get(tpl, "high")
		if math.IsNaN(low) || math.IsNaN(high) {
			continue // tiny test split may leave a bucket empty
		}
		if high+0.25 < low {
			t.Fatalf("%s: high-similarity bucket (%.2f) far below low (%.2f)\n%s", tpl, high, low, tab)
		}
	}
}

func TestFigure9CostStructure(t *testing.T) {
	s := testSuite(t)
	tab := s.Figure9()
	pyInfer1M := tab.Get("pythia", "infer1m")
	for _, v := range []string{"seq-raw-32", "seq-raw-64", "seq-dedup-32", "seq-dedup-64"} {
		if tab.Get(v, "f1") < 0 || tab.Get(v, "f1") > 1 {
			t.Fatalf("%s F1 out of range\n%s", v, tab)
		}
		// The headline claim: predicting a paper-scale (~1M-block) sequence
		// step by step is orders of magnitude costlier than Pythia's
		// one-shot inference.
		if tab.Get(v, "infer1m") < 50*pyInfer1M {
			t.Fatalf("%s @1M inference (%.1fs) not clearly above Pythia (%.3fs)\n%s",
				v, tab.Get(v, "infer1m"), pyInfer1M, tab)
		}
	}
}

func TestFigure10And11Shape(t *testing.T) {
	s := testSuite(t)
	f10 := s.Figure10()
	f11 := s.Figure11()
	for _, tpl := range append(s.Templates(), "imdb1a") {
		for _, col := range []string{"low", "mid", "high"} {
			if v := f10.Get(tpl, col); !math.IsNaN(v) && (v < 0 || v > 1) {
				t.Fatalf("fig10 %s/%s out of range: %f", tpl, col, v)
			}
			if v := f11.Get(tpl, col); !math.IsNaN(v) && v < 0.2 {
				t.Fatalf("fig11 %s/%s implausible speedup: %f", tpl, col, v)
			}
		}
	}
}

func TestFigure12Ablations(t *testing.T) {
	s := testSuite(t)

	a := s.Figure12a()
	for _, sf := range []string{"SF25", "SF50", "SF100"} {
		if v := a.Get(sf, "f1"); v <= 0 || v > 1 {
			t.Fatalf("fig12a %s F1 = %f", sf, v)
		}
	}

	b := s.Figure12b()
	if b.Get("100%", "f1") < b.Get("10%", "f1")-0.15 {
		t.Fatalf("more training data should not hurt:\n%s", b)
	}

	c := s.Figure12c()
	if c.Get("homogeneous", "t18") <= 0 {
		t.Fatalf("fig12c degenerate:\n%s", c)
	}

	d := s.Figure12d()
	if d.Get("separate", "f1") <= 0 || d.Get("combined", "f1") <= 0 {
		t.Fatalf("fig12d degenerate:\n%s", d)
	}

	e := s.Figure12e()
	for _, pol := range []string{"clock", "lru", "mru"} {
		if e.Get(pol, "speedup") < 0.5 {
			t.Fatalf("fig12e %s speedup collapsed:\n%s", pol, e)
		}
	}

	f := s.Figure12f()
	if f.Get("x2", "speedup") < f.Get("x0.25", "speedup")*0.7 {
		t.Fatalf("larger buffers should not hurt substantially:\n%s", f)
	}

	g := s.Figure12g()
	if g.Get("4096", "speedup") < g.Get("16", "speedup")*0.7 {
		t.Fatalf("larger windows should not hurt substantially:\n%s", g)
	}

	h := s.Figure12h()
	if h.Get("full", "speedup") < h.Get("top 25%", "speedup")*0.8 {
		t.Fatalf("full prediction should not trail top-25%% substantially:\n%s", h)
	}
}

func TestFigure13MultiQuery(t *testing.T) {
	s := testSuite(t)

	a := s.Figure13a()
	if a.Get("mean", "pythia") < 0.8 {
		t.Fatalf("fig13a Pythia regressed badly:\n%s", a)
	}
	if a.Get("mean", "orcl") < 0.9 {
		t.Fatalf("fig13a oracle regressed:\n%s", a)
	}

	b := s.Figure13b()
	c := s.Figure13c()
	d := s.Figure13d()
	for _, tab := range []*Table{b, c} {
		for _, n := range []string{"1", "2", "4", "8"} {
			if tab.Get(n, "speedup") < 0.5 {
				t.Fatalf("%s concurrency %s collapsed:\n%s", tab.ID, n, tab)
			}
		}
	}
	for _, o := range []string{"25%", "50%", "75%", "100%"} {
		if d.Get(o, "speedup") < 0.5 {
			t.Fatalf("fig13d overlap %s collapsed:\n%s", o, d)
		}
	}
}

func TestExtensionsRun(t *testing.T) {
	s := testSuite(t)

	d := s.ExtDrift()
	if d.Has("future-before", "f1") {
		past := d.Get("past", "f1")
		before := d.Get("future-before", "f1")
		after := d.Get("future-after", "f1")
		// Drift hurts relative to in-distribution queries, and the
		// incremental update must not make the drifted queries worse.
		if before > past+0.2 {
			t.Fatalf("drifted F1 (%.2f) unexpectedly above in-distribution (%.2f)\n%s", before, past, d)
		}
		if after < before-0.1 {
			t.Fatalf("incremental update degraded drifted F1: %.2f -> %.2f\n%s", before, after, d)
		}
	}

	sch := s.ExtScheduler()
	if sch.Get("scheduled", "speedup") < 0.7 {
		t.Fatalf("scheduling regressed badly:\n%s", sch)
	}
	if sch.Get("scheduled", "overlap")+1e-9 < sch.Get("arrival", "overlap") {
		t.Fatalf("greedy schedule has lower chain overlap than arrival order:\n%s", sch)
	}

	a := s.ExtSerializationAblation()
	multi := a.Get("multi-resolution (8/32/128)", "f1")
	if multi <= 0 {
		t.Fatalf("multi-resolution F1 degenerate:\n%s", a)
	}
	for _, single := range []string{"single coarse (8)", "single fine (128)"} {
		if v := a.Get(single, "f1"); v < 0 || v > 1 {
			t.Fatalf("%s F1 out of range:\n%s", single, a)
		}
	}
}

func TestExtChaosDegradesGracefully(t *testing.T) {
	s := testSuite(t)
	tab := s.ExtChaos()

	rates := []string{"0%", "1%", "5%", "20%"}
	var speedups []float64
	for _, r := range rates {
		v := tab.Get(r, "speedup")
		if v < 0.97 {
			t.Fatalf("rate %s fell below the no-prefetch baseline (%.3f):\n%s", r, v, tab)
		}
		speedups = append(speedups, v)
	}
	// Degradation is monotone toward the baseline, within replay noise.
	for i := 1; i < len(speedups); i++ {
		if speedups[i] > speedups[i-1]*1.10 {
			t.Fatalf("speedup rose with the fault rate (%s: %.3f -> %s: %.3f):\n%s",
				rates[i-1], speedups[i-1], rates[i], speedups[i], tab)
		}
	}
	if speedups[len(speedups)-1] >= speedups[0] {
		t.Fatalf("20%% faults cost nothing (%.3f vs %.3f at 0%%):\n%s",
			speedups[len(speedups)-1], speedups[0], tab)
	}
	// The degradation ladder was actually exercised at the top rate.
	if tab.Get("20%", "retries") == 0 || tab.Get("20%", "abandons") == 0 {
		t.Fatalf("no retries/abandons at 20%% faults:\n%s", tab)
	}
}
