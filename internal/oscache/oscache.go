// Package oscache models the operating system page cache that sits between
// the RDBMS buffer pool and the disk. Postgres "relies heavily on OS
// readahead for achieving better performance" (paper §4): sequential reads
// are detected per open stream and the kernel asynchronously fetches a
// growing window of subsequent blocks, so a sequential scan's reads become
// memory copies instead of disk copies.
//
// The cache is an LRU over OS pages. Readahead is per-Stream (per file
// descriptor in the kernel): a reader that touches block n+1 right after
// block n extends a run, and each run doubles its readahead window up to a
// maximum, like Linux's ondemand readahead. Pythia's prefetcher issues its
// reads in file-storage order precisely so that this machinery turns many of
// its prefetches into cache copies.
package oscache

import (
	"container/list"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// DefaultMaxWindow is the default readahead ceiling in pages (128 KiB of
// 8 KiB pages, the common Linux default for readahead size).
const DefaultMaxWindow = 16

// Stats counts OS cache events.
type Stats struct {
	Hits            uint64 // reads served from the page cache
	Misses          uint64 // reads that went to the device
	ReadaheadPages  uint64 // pages fetched asynchronously by readahead
	ReadaheadBursts uint64 // readahead operations issued
	Evictions       uint64
}

// HitRatio returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stream is one reader's sequential-access detector (the analog of a file
// descriptor's readahead state). Each scan node and each prefetch worker
// owns its own Stream.
type Stream struct {
	object storage.ObjectID
	last   storage.PageNum
	valid  bool
	window int
}

// Cache is the OS page cache. The zero value is unusable; construct with
// New.
type Cache struct {
	capacity  int
	maxWindow int
	pages     map[storage.PageID]*list.Element
	lru       *list.List // front = most recently used
	stats     Stats
	rec       obs.Recorder // nil = observability off (one nil-check per event)
	tr        *span.Tracer // nil = span tracing off
}

// New returns a cache holding capacity pages with the given maximum
// readahead window (DefaultMaxWindow if maxWindow <= 0).
func New(capacity int, maxWindow int) *Cache {
	if capacity <= 0 {
		panic("oscache: non-positive capacity")
	}
	if maxWindow <= 0 {
		maxWindow = DefaultMaxWindow
	}
	return &Cache{
		capacity:  capacity,
		maxWindow: maxWindow,
		pages:     make(map[storage.PageID]*list.Element, capacity),
		lru:       list.New(),
	}
}

// NewStream returns a fresh readahead detector.
func (c *Cache) NewStream() *Stream { return &Stream{} }

// Cap returns the cache capacity in pages.
func (c *Cache) Cap() int { return c.capacity }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetRecorder attaches an event recorder (nil detaches). The cache emits
// OSCacheHit/OSCacheMiss per read, OSReadaheadPage per page fetched
// asynchronously, and OSCacheEvict per eviction.
func (c *Cache) SetRecorder(rec obs.Recorder) { c.rec = rec }

// SetTracer attaches a span tracer (nil detaches). The cache marks hits,
// misses, and evictions as timeline instants.
func (c *Cache) SetTracer(tr *span.Tracer) { c.tr = tr }

//pythia:noalloc
func (c *Cache) record(k obs.Kind, p storage.PageID) {
	if c.rec != nil {
		c.rec.Record(obs.Event{Kind: k, Query: obs.NoQuery, Page: p})
	}
}

// Contains reports residency without side effects.
func (c *Cache) Contains(p storage.PageID) bool {
	_, ok := c.pages[p]
	return ok
}

// Read performs one page read through stream s. objPages bounds readahead to
// the object's file size. It returns whether the read hit the cache and the
// pages the kernel fetches asynchronously via readahead (already inserted
// into the cache; the caller charges their device time in the background).
func (c *Cache) Read(s *Stream, p storage.PageID, objPages storage.PageNum) (hit bool, readahead []storage.PageID) {
	sequential := s.valid && s.object == p.Object && p.Page == s.last+1
	if sequential {
		// Extend the run: double the window up to the ceiling.
		s.window *= 2
		if s.window > c.maxWindow {
			s.window = c.maxWindow
		}
	} else {
		// New or broken run: minimal window (one page of lookahead) so a
		// run that restarts can grow again.
		s.window = 1
	}
	s.object, s.last, s.valid = p.Object, p.Page, true

	hit = c.touchOrMiss(p)

	if sequential && s.window > 0 {
		for i := 1; i <= s.window; i++ {
			n := p.Page + storage.PageNum(i)
			if n >= objPages {
				break
			}
			ra := storage.PageID{Object: p.Object, Page: n}
			if c.Contains(ra) {
				continue
			}
			c.insert(ra)
			c.record(obs.OSReadaheadPage, ra)
			readahead = append(readahead, ra)
		}
		if len(readahead) > 0 {
			c.stats.ReadaheadBursts++
			c.stats.ReadaheadPages += uint64(len(readahead))
		}
	}
	return hit, readahead
}

// touchOrMiss looks the page up, bumping recency on a hit and inserting on a
// miss (a device read always populates the cache).
func (c *Cache) touchOrMiss(p storage.PageID) bool {
	if e, ok := c.pages[p]; ok {
		c.lru.MoveToFront(e)
		c.stats.Hits++
		c.record(obs.OSCacheHit, p)
		c.tr.Instant(span.OSCacheHitMark, p, 0)
		return true
	}
	c.stats.Misses++
	c.record(obs.OSCacheMiss, p)
	c.tr.Instant(span.OSCacheMissMark, p, 0)
	c.insert(p)
	return false
}

// insert adds a page, evicting the least recently used page if full.
func (c *Cache) insert(p storage.PageID) {
	if _, ok := c.pages[p]; ok {
		return
	}
	if c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		victim := back.Value.(storage.PageID)
		c.lru.Remove(back)
		delete(c.pages, victim)
		c.stats.Evictions++
		c.record(obs.OSCacheEvict, victim)
		c.tr.Instant(span.OSCacheEvictMark, victim, 0)
	}
	c.pages[p] = c.lru.PushFront(p)
}

// Drop removes a page (used by failure-injection tests); absent pages are
// ignored.
func (c *Cache) Drop(p storage.PageID) {
	if e, ok := c.pages[p]; ok {
		c.lru.Remove(e)
		delete(c.pages, p)
	}
}

// Clear empties the cache — the experiment harness's "echo 3 >
// /proc/sys/vm/drop_caches" between cold-cache runs.
func (c *Cache) Clear() {
	c.pages = make(map[storage.PageID]*list.Element, c.capacity)
	c.lru.Init()
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }
