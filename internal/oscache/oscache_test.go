package oscache

import (
	"testing"

	"github.com/pythia-db/pythia/internal/storage"
)

func pg(o, n uint32) storage.PageID {
	return storage.PageID{Object: storage.ObjectID(o), Page: storage.PageNum(n)}
}

func TestColdReadMissesAndPopulates(t *testing.T) {
	c := New(100, 0)
	s := c.NewStream()
	hit, ra := c.Read(s, pg(1, 5), 1000)
	if hit {
		t.Fatal("cold read hit")
	}
	if len(ra) != 0 {
		t.Fatal("non-sequential first read triggered readahead")
	}
	hit, _ = c.Read(c.NewStream(), pg(1, 5), 1000)
	if !hit {
		t.Fatal("second read of same page missed")
	}
}

func TestSequentialRunTriggersReadahead(t *testing.T) {
	c := New(1000, 8)
	s := c.NewStream()
	c.Read(s, pg(1, 0), 1000)
	hit, ra := c.Read(s, pg(1, 1), 1000)
	if hit {
		t.Fatal("page 1 should miss (window starts small)")
	}
	if len(ra) == 0 {
		t.Fatal("sequential read did not trigger readahead")
	}
	// Continue the run: window doubles and subsequent reads hit the cache.
	hits := 0
	for n := uint32(2); n < 64; n++ {
		h, _ := c.Read(s, pg(1, n), 1000)
		if h {
			hits++
		}
	}
	if hits < 50 {
		t.Fatalf("sequential scan only hit %d/62 pages; readahead ineffective", hits)
	}
}

func TestReadaheadWindowDoublesUpToMax(t *testing.T) {
	c := New(10000, 8)
	s := c.NewStream()
	c.Read(s, pg(1, 0), 10000)
	sizes := []int{}
	for n := uint32(1); n <= 6; n++ {
		// Drop the next pages so each readahead burst is observable.
		_, ra := c.Read(s, pg(1, n), 10000)
		if len(ra) > 0 {
			sizes = append(sizes, len(ra))
		}
	}
	if len(sizes) == 0 {
		t.Fatal("no readahead bursts observed")
	}
	if sizes[0] != 2 {
		t.Fatalf("first burst = %d pages, want 2 (window doubled from 1)", sizes[0])
	}
	for _, sz := range sizes {
		if sz > 8 {
			t.Fatalf("burst %d exceeded max window 8", sz)
		}
	}
}

func TestRandomReadsNoReadahead(t *testing.T) {
	c := New(1000, 8)
	s := c.NewStream()
	order := []uint32{10, 3, 77, 20, 54, 9}
	for _, n := range order {
		hit, ra := c.Read(s, pg(1, n), 1000)
		if hit {
			t.Fatalf("random cold read of page %d hit", n)
		}
		if len(ra) != 0 {
			t.Fatalf("random read of page %d triggered readahead", n)
		}
	}
	if st := c.Stats(); st.ReadaheadPages != 0 || st.Misses != uint64(len(order)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadaheadStopsAtObjectEnd(t *testing.T) {
	c := New(1000, 8)
	s := c.NewStream()
	c.Read(s, pg(1, 7), 10)
	_, ra := c.Read(s, pg(1, 8), 10)
	for _, p := range ra {
		if p.Page >= 10 {
			t.Fatalf("readahead past end of object: %v", p)
		}
	}
	_, ra = c.Read(s, pg(1, 9), 10)
	if len(ra) != 0 {
		t.Fatalf("readahead at last page returned %v", ra)
	}
}

func TestPerStreamDetection(t *testing.T) {
	c := New(1000, 8)
	a, b := c.NewStream(), c.NewStream()
	// Interleave two readers on different objects; each keeps its own run.
	c.Read(a, pg(1, 0), 100)
	c.Read(b, pg(2, 50), 100)
	_, ra := c.Read(a, pg(1, 1), 100)
	if len(ra) == 0 {
		t.Fatal("stream a's run broken by stream b's access")
	}
	_, rb := c.Read(b, pg(2, 51), 100)
	if len(rb) == 0 {
		t.Fatal("stream b's run broken by stream a's access")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3, 8)
	s := c.NewStream()
	c.Read(s, pg(1, 10), 100)
	c.Read(s, pg(1, 20), 100)
	c.Read(s, pg(1, 30), 100)
	// Touch page 10 so page 20 is least recent.
	c.Read(c.NewStream(), pg(1, 10), 100)
	c.Read(c.NewStream(), pg(1, 40), 100)
	if c.Contains(pg(1, 20)) {
		t.Fatal("LRU victim not evicted")
	}
	if !c.Contains(pg(1, 10)) {
		t.Fatal("recently used page evicted")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestClearAndDrop(t *testing.T) {
	c := New(10, 8)
	s := c.NewStream()
	c.Read(s, pg(1, 0), 100)
	c.Drop(pg(1, 0))
	if c.Contains(pg(1, 0)) {
		t.Fatal("Drop did not remove page")
	}
	c.Drop(pg(1, 0)) // dropping absent page is a no-op
	c.Read(s, pg(1, 1), 100)
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left pages")
	}
	if hit, _ := c.Read(c.NewStream(), pg(1, 1), 100); hit {
		t.Fatal("page survived Clear")
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("idle HitRatio != 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("HitRatio = %f", s.HitRatio())
	}
}

func TestBrokenRunRestartsWindow(t *testing.T) {
	c := New(10000, 16)
	s := c.NewStream()
	// Build a long run to grow the window.
	for n := uint32(0); n < 20; n++ {
		c.Read(s, pg(1, n), 10000)
	}
	// Jump breaks the run.
	_, ra := c.Read(s, pg(1, 500), 10000)
	if len(ra) != 0 {
		t.Fatal("jump read triggered readahead")
	}
	// Restarting sequentially begins with the minimal window again.
	_, ra = c.Read(s, pg(1, 501), 10000)
	if len(ra) != 2 {
		t.Fatalf("restarted run burst = %d, want 2", len(ra))
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, 0)
}
