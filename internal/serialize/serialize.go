// Package serialize converts physical plan trees into token sequences — the
// paper's Algorithm 2. The serialized plan, not the SQL text, is Pythia's
// model input: it encodes join order, access paths, and the predicates
// attached to each scan, which is what determines the blocks a query reads.
//
// The serializer performs a preorder traversal. Scan nodes contribute their
// scan-type token ([SEQ]/[IDX]), the database object name(s), and one
// [PRED] col op value triple per filter predicate; every other node
// contributes only its operator token. Sort and hash-build internals do not
// change page access order, so — like the paper — Sort serializes as a bare
// token and nothing special is emitted for hashing.
//
// Predicate constants are quantized into per-column buckets before
// tokenization. The paper tokenizes raw values drawn from templated
// parameter domains; bucketing keeps the vocabulary finite while preserving
// what the model needs — *where in the column's domain* the constant falls,
// which is what moves the accessed block set.
package serialize

import (
	"fmt"
	"math"

	"github.com/pythia-db/pythia/internal/plan"
)

// Token is one unit of the serialized plan.
type Token = string

// Reserved vocabulary tokens.
const (
	TokenPad = "[PAD]"
	TokenUnk = "[UNK]"
	TokenCLS = "[CLS]" // prepended; its final embedding is the query vector
)

// Config controls serialization.
type Config struct {
	// ValueBuckets is the number of quantization buckets per column domain
	// (default 32).
	ValueBuckets int
	// SingleResolution disables the multi-resolution value-token ladder and
	// emits exactly one token per constant at ValueBuckets resolution (an
	// ablation knob; multi-resolution is the default and the better choice).
	SingleResolution bool
}

// DefaultConfig returns the configuration the experiments use.
func DefaultConfig() Config { return Config{ValueBuckets: 32} }

func (c Config) buckets() int {
	if c.ValueBuckets <= 0 {
		return 32
	}
	return c.ValueBuckets
}

func kindToken(k plan.Kind) Token {
	switch k {
	case plan.KindSeqScan:
		return "[SEQ]"
	case plan.KindIndexScan:
		return "[IDX]"
	case plan.KindNestedLoop:
		return "[NLJ]"
	case plan.KindHashJoin:
		return "[HJ]"
	case plan.KindFilter:
		return "[FILTER]"
	case plan.KindAgg:
		return "[AGG]"
	case plan.KindSort:
		return "[SORT]"
	default:
		return TokenUnk
	}
}

// valueTokens quantizes constant v for column col of the node's relation at
// three resolutions — buckets/4, buckets, and buckets×4 — so the encoder
// sees the constant's fine position whenever training covered that fine
// bucket and degrades gracefully to the coarser tokens (the fine token
// becomes [UNK]) otherwise. A single resolution either blurs nearby
// constants together (too coarse for narrow-range templates) or fragments
// the training data (too fine for small workloads); multi-resolution avoids
// both failure modes.
func valueTokens(n *plan.Node, col string, v int64, cfg Config) []Token {
	buckets := cfg.buckets()
	if v == math.MinInt64 {
		return []Token{"v:open_lo"}
	}
	if v == math.MaxInt64 {
		return []Token{"v:open_hi"}
	}
	if n.Rel != nil {
		if ci := n.Rel.ColumnIndex(col); ci >= 0 {
			lo, hi := n.Rel.Columns[ci].Gen.Domain()
			if hi > lo {
				span := float64(hi - lo)
				out := make([]Token, 0, 3)
				resolutions := []int{buckets / 4, buckets, buckets * 4}
				if cfg.SingleResolution {
					resolutions = []int{buckets}
				}
				for _, res := range resolutions {
					if res < 2 {
						continue
					}
					b := int(float64(v-lo) / span * float64(res))
					if b < 0 {
						b = 0
					}
					if b >= res {
						b = res - 1
					}
					out = append(out, fmt.Sprintf("v:%s@%d#%d", col, res, b))
				}
				return out
			}
		}
	}
	return []Token{fmt.Sprintf("v:%d", v)}
}

// serializeNode emits one node's tokens (Algorithm 2, SerializePlanNode).
func serializeNode(n *plan.Node, out []Token, cfg Config) []Token {
	out = append(out, kindToken(n.Kind))
	isScan := n.Kind == plan.KindSeqScan || n.Kind == plan.KindIndexScan
	if !isScan {
		return out
	}
	if n.Index != nil {
		out = append(out, "o:"+n.Index.Name)
	}
	if n.Rel != nil {
		out = append(out, "o:"+n.Rel.Name)
	}
	for _, p := range n.Preds {
		out = append(out, "[PRED]", "c:"+p.Col)
		switch {
		case p.IsEquality():
			out = append(out, "op:=")
			out = append(out, valueTokens(n, p.Col, p.Lo, cfg)...)
		default:
			if p.Lo != math.MinInt64 {
				out = append(out, "op:>=")
				out = append(out, valueTokens(n, p.Col, p.Lo, cfg)...)
			}
			if p.Hi != math.MaxInt64 {
				out = append(out, "op:<=")
				out = append(out, valueTokens(n, p.Col, p.Hi, cfg)...)
			}
		}
	}
	return out
}

// Serialize tokenizes the plan tree in preorder (Algorithm 2,
// SerializeQueryPlan), prefixed with [CLS].
func Serialize(root *plan.Node, cfg Config) []Token {
	out := []Token{TokenCLS}
	root.Walk(func(n *plan.Node) {
		out = serializeNode(n, out, cfg)
	})
	return out
}

// Vocab maps tokens to dense integer ids. Id 0 is [PAD], id 1 is [UNK];
// unknown tokens at encode time map to [UNK], which is how out-of-
// distribution constants degrade gracefully instead of crashing inference.
type Vocab struct {
	ids    map[string]int
	tokens []string
	frozen bool
}

// NewVocab returns a vocabulary containing only the reserved tokens.
func NewVocab() *Vocab {
	v := &Vocab{ids: make(map[string]int)}
	v.add(TokenPad)
	v.add(TokenUnk)
	v.add(TokenCLS)
	return v
}

func (v *Vocab) add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	if v.frozen {
		return v.ids[TokenUnk]
	}
	id := len(v.tokens)
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	return id
}

// AddAll registers every token of a training sequence.
func (v *Vocab) AddAll(toks []Token) {
	for _, t := range toks {
		v.add(t)
	}
}

// Freeze stops the vocabulary from growing; encoding unseen tokens then
// yields [UNK]. Training freezes the vocabulary before evaluation.
func (v *Vocab) Freeze() { v.frozen = true }

// Size returns the number of distinct tokens (including reserved ones).
func (v *Vocab) Size() int { return len(v.tokens) }

// Encode maps tokens to ids, substituting [UNK] for unknowns when frozen
// (and growing the vocabulary otherwise).
func (v *Vocab) Encode(toks []Token) []int {
	out := make([]int, len(toks))
	for i, t := range toks {
		if id, ok := v.ids[t]; ok {
			out[i] = id
		} else {
			out[i] = v.add(t)
		}
	}
	return out
}

// Tokens returns the vocabulary's token list in id order (persistence).
func (v *Vocab) Tokens() []string {
	out := make([]string, len(v.tokens))
	copy(out, v.tokens)
	return out
}

// VocabFromTokens rebuilds a frozen vocabulary from a persisted token list.
// The list must begin with the reserved tokens in their canonical order.
func VocabFromTokens(tokens []string) (*Vocab, error) {
	if len(tokens) < 3 || tokens[0] != TokenPad || tokens[1] != TokenUnk || tokens[2] != TokenCLS {
		return nil, fmt.Errorf("serialize: persisted vocabulary missing reserved prefix")
	}
	v := &Vocab{ids: make(map[string]int, len(tokens))}
	for i, t := range tokens {
		if _, dup := v.ids[t]; dup {
			return nil, fmt.Errorf("serialize: persisted vocabulary has duplicate token %q", t)
		}
		v.ids[t] = i
		v.tokens = append(v.tokens, t)
	}
	v.frozen = true
	return v, nil
}

// Token returns the token string for an id (or [UNK] if out of range).
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.tokens) {
		return TokenUnk
	}
	return v.tokens[id]
}
