package serialize

import (
	"testing"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/index"
	"github.com/pythia-db/pythia/internal/plan"
)

func starDB() *catalog.Database {
	db := catalog.NewDatabase()
	db.AddRelation("sales", 1000, 10, []catalog.Column{
		{Name: "s_sk", Gen: catalog.Serial{}},
		{Name: "s_item_fk", Gen: catalog.Uniform{Lo: 0, Hi: 200, Seed: 1}},
		{Name: "s_amount", Gen: catalog.Uniform{Lo: 0, Hi: 1000, Seed: 3}},
	})
	item := db.AddRelation("item", 200, 10, []catalog.Column{
		{Name: "i_sk", Gen: catalog.Serial{}},
		{Name: "i_cat", Gen: catalog.Uniform{Lo: 0, Hi: 10, Seed: 4}},
	})
	db.BuildIndex(item, "i_sk", index.Config{LeafCap: 8, Fanout: 4})
	return db
}

func mkPlan(db *catalog.Database, amountLo, amountHi int64, forceIndex bool) *plan.Node {
	pl := plan.NewPlanner(db)
	return pl.MustPlan(plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.Between("s_amount", amountLo, amountHi)},
		Dims: []plan.DimJoin{{
			Dim: "item", FactFK: "s_item_fk", DimKey: "i_sk",
			ForceIndex: forceIndex, ForceHash: !forceIndex,
			Preds: []plan.Pred{plan.Eq("i_cat", 3)},
		}},
	})
}

func TestSerializeStructure(t *testing.T) {
	db := starDB()
	toks := Serialize(mkPlan(db, 0, 99, true), DefaultConfig())
	if toks[0] != TokenCLS {
		t.Fatalf("first token = %q, want CLS", toks[0])
	}
	want := []string{"[AGG]", "[NLJ]", "[SEQ]", "o:sales", "[PRED]", "[IDX]", "o:item_i_sk_idx", "o:item"}
	i := 0
	for _, w := range want {
		found := false
		for ; i < len(toks); i++ {
			if toks[i] == w {
				found = true
				i++
				break
			}
		}
		if !found {
			t.Fatalf("token %q missing (in order) from %v", w, toks)
		}
	}
}

func TestSerializeScanTypeDiffers(t *testing.T) {
	db := starDB()
	nlj := Serialize(mkPlan(db, 0, 99, true), DefaultConfig())
	hj := Serialize(mkPlan(db, 0, 99, false), DefaultConfig())
	same := len(nlj) == len(hj)
	if same {
		for i := range nlj {
			if nlj[i] != hj[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("NLJ and HJ plans serialized identically")
	}
	// Hash-join plan contains [HJ], no [IDX].
	hasHJ, hasIDX := false, false
	for _, tok := range hj {
		if tok == "[HJ]" {
			hasHJ = true
		}
		if tok == "[IDX]" {
			hasIDX = true
		}
	}
	if !hasHJ || hasIDX {
		t.Fatalf("hash plan tokens wrong: %v", hj)
	}
}

func TestValueBucketing(t *testing.T) {
	db := starDB()
	cfg := Config{ValueBuckets: 10}
	// With 10 base buckets over the [0,1000) domain the finest resolution is
	// 40 buckets (width 25): values 5 and 20 share every resolution's bucket.
	a := Serialize(mkPlan(db, 5, 5, true), cfg)
	b := Serialize(mkPlan(db, 20, 20, true), cfg)
	if !equalToks(a, b) {
		t.Fatalf("same-bucket constants serialized differently:\n%v\n%v", a, b)
	}
	c := Serialize(mkPlan(db, 505, 505, true), cfg)
	if equalToks(a, c) {
		t.Fatal("different-bucket constants serialized identically")
	}
	// Nearby constants in different fine buckets still share their coarse
	// token (the multi-resolution property).
	d := Serialize(mkPlan(db, 5, 5, true), cfg)
	e := Serialize(mkPlan(db, 80, 80, true), cfg)
	shared := 0
	em := map[string]bool{}
	for _, tok := range e {
		em[tok] = true
	}
	for _, tok := range d {
		if len(tok) > 2 && tok[0] == 'v' && em[tok] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("nearby constants share no value tokens at any resolution")
	}
}

func equalToks(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangePredicateEmitsBothBounds(t *testing.T) {
	db := starDB()
	toks := Serialize(mkPlan(db, 100, 300, true), DefaultConfig())
	hasGE, hasLE := false, false
	for _, tok := range toks {
		if tok == "op:>=" {
			hasGE = true
		}
		if tok == "op:<=" {
			hasLE = true
		}
	}
	if !hasGE || !hasLE {
		t.Fatalf("range predicate bounds missing: %v", toks)
	}
}

func TestOpenBoundTokens(t *testing.T) {
	db := starDB()
	pl := plan.NewPlanner(db)
	root := pl.MustPlan(plan.Query{
		Fact:      "sales",
		FactPreds: []plan.Pred{plan.AtLeast("s_amount", 500)},
	})
	toks := Serialize(root, DefaultConfig())
	for _, tok := range toks {
		if tok == "op:<=" {
			t.Fatal("open upper bound still serialized")
		}
	}
}

func TestVocabEncodeRoundTrip(t *testing.T) {
	v := NewVocab()
	toks := []Token{"[AGG]", "o:sales", "v:x#3", "o:sales"}
	ids := v.Encode(toks)
	if ids[1] != ids[3] {
		t.Fatal("same token got different ids")
	}
	for i, id := range ids {
		if v.Token(id) != toks[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	if v.Size() < 6 { // 3 reserved + 3 distinct
		t.Fatalf("Size = %d", v.Size())
	}
}

func TestVocabFreezeMapsUnknownToUnk(t *testing.T) {
	v := NewVocab()
	v.AddAll([]Token{"a", "b"})
	v.Freeze()
	pre := v.Size()
	ids := v.Encode([]Token{"a", "zzz"})
	if v.Size() != pre {
		t.Fatal("frozen vocab grew")
	}
	if v.Token(ids[1]) != TokenUnk {
		t.Fatalf("unknown token encoded as %q", v.Token(ids[1]))
	}
	if v.Token(ids[0]) != "a" {
		t.Fatal("known token mangled after freeze")
	}
	if v.Token(-1) != TokenUnk || v.Token(9999) != TokenUnk {
		t.Fatal("out-of-range Token() should return UNK")
	}
}

func TestSerializeDeterministic(t *testing.T) {
	db := starDB()
	a := Serialize(mkPlan(db, 0, 99, true), DefaultConfig())
	b := Serialize(mkPlan(db, 0, 99, true), DefaultConfig())
	if !equalToks(a, b) {
		t.Fatal("serialization not deterministic")
	}
}

func TestZeroBucketConfigDefaults(t *testing.T) {
	if (Config{}).buckets() != 32 {
		t.Fatal("zero config should default to 32 buckets")
	}
}

func TestVocabTokensRoundTrip(t *testing.T) {
	v := NewVocab()
	v.AddAll([]Token{"a", "b", "c"})
	v.Freeze()
	restored, err := VocabFromTokens(v.Tokens())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != v.Size() {
		t.Fatal("size mismatch after round trip")
	}
	ids1 := v.Encode([]Token{"a", "c", "zzz"})
	ids2 := restored.Encode([]Token{"a", "c", "zzz"})
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatal("restored vocab encodes differently")
		}
	}
	// Restored vocabularies are frozen.
	if restored.Encode([]Token{"brand-new"})[0] != restored.Encode([]Token{TokenUnk})[0] {
		t.Fatal("restored vocab not frozen")
	}
}

func TestVocabFromTokensRejectsBadInput(t *testing.T) {
	if _, err := VocabFromTokens(nil); err == nil {
		t.Fatal("empty token list accepted")
	}
	if _, err := VocabFromTokens([]string{"x", "y", "z"}); err == nil {
		t.Fatal("missing reserved prefix accepted")
	}
	if _, err := VocabFromTokens([]string{TokenPad, TokenUnk, TokenCLS, "a", "a"}); err == nil {
		t.Fatal("duplicate token accepted")
	}
}
