package quality

import (
	"fmt"
	"math"
)

// SketchBuckets is the fixed histogram width. 64 buckets keeps a Profile at
// ~1 KiB, small enough to ride the snapshot envelope and cheap to diff, while
// the DSB plan-token vocabulary (tens of distinct tokens per template family)
// still spreads enough for template-mix shifts to move mass between buckets.
const SketchBuckets = 64

// Sketch is a fixed-size hashed histogram: observations hash into one of
// SketchBuckets counters. It never allocates after construction, so the
// streaming update sits on the serving hot path and inside replay runs
// without perturbing either. Fields are exported for gob (the baseline
// persists inside the PYSNAP01 snapshot envelope).
type Sketch struct {
	Counts [SketchBuckets]uint64
	Total  uint64
}

// Observe hashes one item into its bucket.
//
//pythia:noalloc
func (s *Sketch) Observe(h uint64) {
	s.Counts[mix64(h)&(SketchBuckets-1)]++
	s.Total++
}

// decay halves every bucket, turning the accumulating histogram into an
// exponentially forgetting window (half-life = one evaluation period).
//
//pythia:noalloc
func (s *Sketch) decay() {
	var total uint64
	for i := range s.Counts {
		s.Counts[i] >>= 1
		total += s.Counts[i]
	}
	s.Total = total
}

// merge adds another sketch's mass into this one.
func (s *Sketch) merge(o *Sketch) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Total += o.Total
}

// psiLambda is the mixture-smoothing weight: each sketch's empirical
// distribution is blended with the uniform distribution as
// (1−λ)·cᵢ/T + λ/B before the PSI sum, so empty buckets contribute finite
// divergence instead of ±Inf. Mixture (not add-ε) smoothing is deliberate:
// it is invariant to sample size, so a small decaying live window compared
// against a large frozen baseline does not read as drift when their shapes
// match.
const psiLambda = 0.01

// PSI is the Population Stability Index between a baseline and a live
// sketch: Σ (pᵢ − qᵢ)·ln(pᵢ/qᵢ) over smoothed bucket probabilities, minus
// the small-sample bias. PSI is symmetric-ish and non-negative; the industry
// reading is <0.1 stable, 0.1–0.25 moderate shift, >0.25 significant shift.
// An empty sketch reads as uniform; two empty sketches score 0.
//
// The bias term matters because the live window is deliberately small (it
// decays every evaluation): under identical distributions the raw PSI
// estimator's expectation is ≈ (k−1)·(1/n_base + 1/n_live) — the χ²
// degrees-of-freedom term, with k the occupied bucket count — which for an
// 8-plan window over 5 plan shapes is ≈0.6, far above any sane alarm
// threshold. Subtracting it (clamped at 0) makes "no drift" read near 0
// regardless of window size, while real distribution shifts score orders of
// magnitude above the correction.
//
//pythia:noalloc
func PSI(base, live *Sketch) float64 {
	const uniform = 1.0 / SketchBuckets
	bT := float64(base.Total)
	lT := float64(live.Total)
	var psi float64
	occupied := 0
	for i := range base.Counts {
		if base.Counts[i] > 0 || live.Counts[i] > 0 {
			occupied++
		}
		p := psiLambda * uniform
		if bT > 0 {
			p += (1 - psiLambda) * float64(base.Counts[i]) / bT
		} else {
			p = uniform
		}
		q := psiLambda * uniform
		if lT > 0 {
			q += (1 - psiLambda) * float64(live.Counts[i]) / lT
		} else {
			q = uniform
		}
		psi += (p - q) * math.Log(p/q)
	}
	if occupied > 1 && bT > 0 && lT > 0 {
		psi -= float64(occupied-1) * (1/bT + 1/lT)
	}
	if psi < 0 {
		return 0
	}
	return psi
}

// Profile is the distributional signature of a plan stream: a token sketch
// (every serialized plan token, position-free) and a fingerprint sketch
// (one whole-plan hash per plan — sensitive to plan-shape changes even when
// the token bag stays similar). Training freezes one as the drift baseline;
// the Monitor maintains a decaying live one.
type Profile struct {
	Tokens Sketch
	Prints Sketch
	Plans  uint64
}

// ObserveTokens folds one plan's serialized token sequence into the profile:
// each token into the token sketch, and the FNV-64a chain over the plan's
// *shape* tokens into the fingerprint sketch. Value tokens (serialize's
// "v:…" quantized constants) are excluded from the fingerprint — they vary
// per instance within a template, and chaining them would make every plan's
// fingerprint unique, turning the fingerprint sketch into noise. Shape =
// operators, objects, predicate columns and comparison ops, so the
// fingerprint pins the template family while the token sketch still sees the
// full distribution including constants.
//
//pythia:noalloc
func (p *Profile) ObserveTokens(tokens []string) {
	fp := fnvOffset64
	for _, tok := range tokens {
		h := hashString(tok)
		p.Tokens.Observe(h)
		if len(tok) >= 2 && tok[0] == 'v' && tok[1] == ':' {
			continue
		}
		fp = (fp ^ h) * fnvPrime64
	}
	p.Prints.Observe(fp)
	p.Plans++
}

// Merge adds another profile's mass (used to combine per-workload training
// baselines into the system baseline).
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	p.Tokens.merge(&o.Tokens)
	p.Prints.merge(&o.Prints)
	p.Plans += o.Plans
}

// Clone returns a deep copy (Profile has no reference fields, so the value
// copy is one).
func (p *Profile) Clone() *Profile {
	if p == nil {
		return nil
	}
	c := *p
	return &c
}

// Hash is a stable identity over the profile's exact contents — the
// snapshot-baseline identity /stats and drift reports correlate on across
// model swaps.
func (p *Profile) Hash() uint64 {
	if p == nil {
		return 0
	}
	h := fnvOffset64
	mixIn := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (v >> s & 0xff)) * fnvPrime64
		}
	}
	for _, c := range p.Tokens.Counts {
		mixIn(c)
	}
	for _, c := range p.Prints.Counts {
		mixIn(c)
	}
	mixIn(p.Plans)
	return h
}

// HashString renders Hash as the fixed-width hex string used in /stats and
// reports.
func (p *Profile) HashString() string { return fmt.Sprintf("%016x", p.Hash()) }

// Divergence scores a live profile window against a baseline: the max of
// the token-sketch and fingerprint-sketch PSIs. Max (not mean) because the
// two sketches watch for different failure modes — a token-bag shift with
// stable shapes, or new plan shapes over a stable token bag — and either
// alone is drift.
//
//pythia:noalloc
func Divergence(base, live *Profile) float64 {
	t := PSI(&base.Tokens, &live.Tokens)
	f := PSI(&base.Prints, &live.Prints)
	return math.Max(t, f)
}

// FNV-64a, hand-rolled so hashing a token never allocates (mirrors
// predictor.Fingerprint).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

//pythia:noalloc
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: FNV output (and small integers) spread
// uniformly over buckets.
//
//pythia:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
